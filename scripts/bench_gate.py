#!/usr/bin/env python3
"""Perf-smoke gate: compare a freshly measured bench JSON artifact against
the committed baseline and fail when any throughput figure regresses past
the tolerance.

    bench_gate.py fresh.json committed_baseline.json [--tolerance 0.20]

Rules:
  * The two files must have the same structure (same keys, same array
    lengths) — a shape change means the baseline needs regenerating, which
    should be a deliberate commit, not a silent pass.
  * Every numeric field whose key ends in `_per_sec` is a throughput
    figure: fresh >= baseline * (1 - tolerance) or the gate fails.
  * All other fields are informational (counts, means, configs) and are
    only checked for structural presence, because they legitimately vary
    with machine speed (e.g. seeds completed within a wall-clock budget).

Exit 0 when every gate holds; exit 1 with a per-field report otherwise.
"""
import argparse
import json
import sys

RATE_SUFFIX = "_per_sec"


def walk(fresh, baseline, path, failures, checked):
    if isinstance(baseline, dict):
        if not isinstance(fresh, dict) or set(fresh) != set(baseline):
            failures.append(f"{path or '$'}: structure mismatch (keys differ)")
            return
        for key in baseline:
            walk(fresh[key], baseline[key], f"{path}.{key}" if path else key,
                 failures, checked)
    elif isinstance(baseline, list):
        if not isinstance(fresh, list) or len(fresh) != len(baseline):
            failures.append(f"{path}: structure mismatch (array length)")
            return
        for i, (f, b) in enumerate(zip(fresh, baseline)):
            walk(f, b, f"{path}[{i}]", failures, checked)
    elif isinstance(baseline, (int, float)) and not isinstance(baseline, bool):
        key = path.rsplit(".", 1)[-1]
        if key.endswith(RATE_SUFFIX):
            floor = baseline * (1.0 - ARGS.tolerance)
            status = "ok" if fresh >= floor else "REGRESSION"
            checked.append(
                f"  {status:>10}  {path}: {fresh:.3f} vs baseline "
                f"{baseline:.3f} (floor {floor:.3f})")
            if fresh < floor:
                failures.append(
                    f"{path}: {fresh:.3f} < {floor:.3f} "
                    f"(baseline {baseline:.3f}, tolerance {ARGS.tolerance:.0%})")


def main():
    global ARGS
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.20)
    ARGS = parser.parse_args()

    with open(ARGS.fresh) as fh:
        fresh = json.load(fh)
    with open(ARGS.baseline) as fh:
        baseline = json.load(fh)

    failures, checked = [], []
    walk(fresh, baseline, "", failures, checked)

    print(f"bench_gate: {ARGS.fresh} vs {ARGS.baseline} "
          f"(tolerance {ARGS.tolerance:.0%})")
    for line in checked:
        print(line)
    if failures:
        print(f"FAILED: {len(failures)} gate(s) tripped", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"ok: {len(checked)} throughput gate(s) hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
