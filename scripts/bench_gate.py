#!/usr/bin/env python3
"""Perf-smoke gate: compare a freshly measured bench JSON artifact against
the committed baseline and fail when any throughput figure regresses past
the tolerance.

    bench_gate.py fresh.json committed_baseline.json [--tolerance 0.20]
        [--scaling-floor 1.0] [--scaling-threads 8] [--scaling-min-cores 2]

Rules:
  * The two files must have the same structure (same keys, same array
    lengths) — a shape change means the baseline needs regenerating, which
    should be a deliberate commit, not a silent pass.
  * Every numeric field whose key ends in `_per_sec` is a throughput
    figure: fresh >= baseline * (1 - tolerance) or the gate fails.
  * Every numeric field whose key ends in `_per_round` is a wire-cost
    figure (bytes, syscalls) where LOWER is better:
    fresh <= baseline * (1 + tolerance) or the gate fails.
  * Keys starting with `recv_stall_` (BENCH_dist.json's blocked-receive
    milliseconds per round) are also LOWER-is-better, but they measure a
    genuine wall-clock wait: on a runner with fewer than
    --scaling-min-cores cores the figure is scheduler noise, so the check
    self-skips there with a notice — exactly like the `speedup_*` scaling
    keys.
  * All other fields are informational (counts, means, configs) and are
    only checked for structural presence, because they legitimately vary
    with machine speed (e.g. seeds completed within a wall-clock budget).
  * Scaling gate: when the FRESH artifact carries (n, threads,
    rounds_per_sec) cells (BENCH_parallel.json), every n must satisfy
    rate(threads=--scaling-threads) >= rate(threads=1) * --scaling-floor.
    The check measures the fresh run only (the committed file pins absolute
    throughput; this pins the parallel engine's shape) and is skipped — with
    a notice — on machines with fewer than --scaling-min-cores cores, where
    thread scaling is physically meaningless.
  * Coalescing gate: every fresh entry carrying a `syscall_coalescing_factor`
    (BENCH_fanout.json configs) must be at or above --coalescing-floor —
    the wire-slab framing's one-datagram-per-peer-per-round guarantee,
    measured as per-message deliveries / coalesced slab sends. Skipped with
    a notice when the fresh artifact carries no such field (older bench
    binaries).

Exit 0 when every gate holds; exit 1 with a per-field report otherwise.
"""
import argparse
import json
import os
import sys

RATE_SUFFIX = "_per_sec"
COST_SUFFIX = "_per_round"
# Wall-clock stall figures (blocked-receive wait): lower-is-better, but only
# meaningful with real parallelism — self-skipped below --scaling-min-cores.
STALL_PREFIX = "recv_stall_"
COALESCING_KEY = "syscall_coalescing_factor"
# Scaling-only keys that single-core runners legitimately omit (a 1-core
# bench binary cannot measure multi-worker speedup): their absence from one
# side of the comparison self-skips the scaling figure instead of tripping
# the structural gate.
SCALING_KEYS = {"speedup_vs_1t", "speedup_vs_1shard"}
SCALING_SELF_SKIPS = []
STALL_SELF_SKIPS = []


def walk(fresh, baseline, path, failures, checked):
    if isinstance(baseline, dict):
        if not isinstance(fresh, dict):
            failures.append(f"{path or '$'}: structure mismatch (keys differ)")
            return
        if set(fresh) != set(baseline):
            if set(fresh) ^ set(baseline) <= SCALING_KEYS:
                SCALING_SELF_SKIPS.append(path or "$")
            else:
                failures.append(
                    f"{path or '$'}: structure mismatch (keys differ)")
                return
        for key in baseline:
            if key not in fresh:
                continue  # tolerated scaling-only key
            walk(fresh[key], baseline[key], f"{path}.{key}" if path else key,
                 failures, checked)
    elif isinstance(baseline, list):
        if not isinstance(fresh, list) or len(fresh) != len(baseline):
            failures.append(f"{path}: structure mismatch (array length)")
            return
        for i, (f, b) in enumerate(zip(fresh, baseline)):
            walk(f, b, f"{path}[{i}]", failures, checked)
    elif isinstance(baseline, (int, float)) and not isinstance(baseline, bool):
        key = path.rsplit(".", 1)[-1]
        if key.startswith(STALL_PREFIX):
            if (os.cpu_count() or 1) < ARGS.scaling_min_cores:
                STALL_SELF_SKIPS.append(path)
                return
            ceiling = baseline * (1.0 + ARGS.tolerance)
            status = "ok" if fresh <= ceiling else "REGRESSION"
            checked.append(
                f"  {status:>10}  {path}: {fresh:.3f} vs baseline "
                f"{baseline:.3f} (ceiling {ceiling:.3f})")
            if fresh > ceiling:
                failures.append(
                    f"{path}: {fresh:.3f} > {ceiling:.3f} "
                    f"(baseline {baseline:.3f}, tolerance {ARGS.tolerance:.0%})")
        elif key.endswith(RATE_SUFFIX):
            floor = baseline * (1.0 - ARGS.tolerance)
            status = "ok" if fresh >= floor else "REGRESSION"
            checked.append(
                f"  {status:>10}  {path}: {fresh:.3f} vs baseline "
                f"{baseline:.3f} (floor {floor:.3f})")
            if fresh < floor:
                failures.append(
                    f"{path}: {fresh:.3f} < {floor:.3f} "
                    f"(baseline {baseline:.3f}, tolerance {ARGS.tolerance:.0%})")
        elif key.endswith(COST_SUFFIX):
            ceiling = baseline * (1.0 + ARGS.tolerance)
            status = "ok" if fresh <= ceiling else "REGRESSION"
            checked.append(
                f"  {status:>10}  {path}: {fresh:.3f} vs baseline "
                f"{baseline:.3f} (ceiling {ceiling:.3f})")
            if fresh > ceiling:
                failures.append(
                    f"{path}: {fresh:.3f} > {ceiling:.3f} "
                    f"(baseline {baseline:.3f}, tolerance {ARGS.tolerance:.0%})")


def check_scaling(fresh, failures, checked):
    """Thread-scaling gate on the fresh artifact's (n, threads) cells."""
    cells = fresh.get("cells") if isinstance(fresh, dict) else None
    if not isinstance(cells, list):
        return
    rates = {}
    for cell in cells:
        if not isinstance(cell, dict):
            return
        if not {"n", "threads", "rounds_per_sec"} <= set(cell):
            return
        rates[(cell["n"], cell["threads"])] = cell["rounds_per_sec"]
    cores = os.cpu_count() or 1
    if cores < ARGS.scaling_min_cores:
        print(f"scaling gate: skipped ({cores} core(s) < "
              f"--scaling-min-cores {ARGS.scaling_min_cores})")
        return
    for n in sorted({n for n, _ in rates}):
        base = rates.get((n, 1))
        wide = rates.get((n, ARGS.scaling_threads))
        if base is None or wide is None or base <= 0:
            continue
        ratio = wide / base
        status = "ok" if ratio >= ARGS.scaling_floor else "REGRESSION"
        checked.append(
            f"  {status:>10}  scaling n={n}: {ARGS.scaling_threads}t/1t = "
            f"{ratio:.2f}x (floor {ARGS.scaling_floor:.2f}x)")
        if ratio < ARGS.scaling_floor:
            failures.append(
                f"scaling n={n}: threads={ARGS.scaling_threads} at "
                f"{wide:.3f} is {ratio:.2f}x of threads=1 at {base:.3f} "
                f"(floor {ARGS.scaling_floor:.2f}x)")


def collect_coalescing(node, path, entries):
    """Find every fresh entry carrying a coalescing factor (any nesting)."""
    if isinstance(node, dict):
        if COALESCING_KEY in node and isinstance(
                node[COALESCING_KEY], (int, float)):
            entries.append((path or "$", node[COALESCING_KEY]))
        for key, value in node.items():
            collect_coalescing(value, f"{path}.{key}" if path else key,
                               entries)
    elif isinstance(node, list):
        for i, value in enumerate(node):
            collect_coalescing(value, f"{path}[{i}]", entries)


def check_coalescing(fresh, failures, checked):
    """Absolute floor on the fresh artifact's slab-coalescing factors."""
    entries = []
    collect_coalescing(fresh, "", entries)
    if not entries:
        print(f"coalescing gate: skipped (no {COALESCING_KEY} in fresh "
              "artifact)")
        return
    for path, factor in entries:
        status = "ok" if factor >= ARGS.coalescing_floor else "REGRESSION"
        checked.append(
            f"  {status:>10}  coalescing {path}: {factor:.2f}x "
            f"(floor {ARGS.coalescing_floor:.2f}x)")
        if factor < ARGS.coalescing_floor:
            failures.append(
                f"coalescing {path}: factor {factor:.2f} < floor "
                f"{ARGS.coalescing_floor:.2f}")


def main():
    global ARGS
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("fresh")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument("--scaling-floor", type=float, default=1.0,
                        help="minimum rate(scaling-threads)/rate(1t) per n")
    parser.add_argument("--scaling-threads", type=int, default=8)
    parser.add_argument("--scaling-min-cores", type=int, default=2,
                        help="skip the scaling gate below this core count")
    parser.add_argument("--coalescing-floor", type=float, default=5.0,
                        help="minimum deliveries/slab_sends per fresh entry")
    ARGS = parser.parse_args()

    with open(ARGS.fresh) as fh:
        fresh = json.load(fh)
    with open(ARGS.baseline) as fh:
        baseline = json.load(fh)

    print(f"bench_gate: {ARGS.fresh} vs {ARGS.baseline} "
          f"(tolerance {ARGS.tolerance:.0%})")
    failures, checked = [], []
    walk(fresh, baseline, "", failures, checked)
    if SCALING_SELF_SKIPS:
        print(f"scaling gate self-skipped: {len(SCALING_SELF_SKIPS)} "
              f"entr(ies) missing {sorted(SCALING_KEYS)} (single-core bench "
              "artifact)")
    if STALL_SELF_SKIPS:
        print(f"stall gate self-skipped: {len(STALL_SELF_SKIPS)} "
              f"{STALL_PREFIX}* figure(s) ({os.cpu_count() or 1} core(s) < "
              f"--scaling-min-cores {ARGS.scaling_min_cores})")
    check_scaling(fresh, failures, checked)
    check_coalescing(fresh, failures, checked)
    for line in checked:
        print(line)
    if failures:
        print(f"FAILED: {len(failures)} gate(s) tripped", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"ok: {len(checked)} throughput gate(s) hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
