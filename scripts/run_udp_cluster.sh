#!/usr/bin/env bash
# Launch an N-node consensus cluster as SEPARATE OS PROCESSES over UDP
# loopback. Usage: scripts/run_udp_cluster.sh [N] [base_port]
set -euo pipefail

N="${1:-5}"
BASE="${2:-9500}"
BIN="$(dirname "$0")/../build/examples/udp_node"
[ -x "$BIN" ] || { echo "build first: cmake --build build" >&2; exit 1; }

PEERS=""
for i in $(seq 1 "$N"); do
  PEERS="${PEERS:+$PEERS,}$((BASE + i))"
done

PIDS=()
for i in $(seq 1 "$N"); do
  "$BIN" --id $((100 + i)) --port $((BASE + i)) --peers "$PEERS" \
         --input $((i % 2)) --round-ms 50 --start-in-ms 1000 &
  PIDS+=($!)
done

STATUS=0
for pid in "${PIDS[@]}"; do
  wait "$pid" || STATUS=1
done
exit "$STATUS"
