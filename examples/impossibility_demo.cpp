// Why the paper assumes synchrony: the partition argument, executed.
// Two groups that don't know n or f, cross traffic slower than their
// patience — each is indistinguishable from a world where the other doesn't
// exist, so they decide alone. Then the same protocol with a timeout that
// covers the delay bound: agreement. The knife edge in between is swept.
//
//   $ ./impossibility_demo
#include <cstdio>

#include "impossibility/async_partition.hpp"

int main() {
  using namespace idonly;

  std::printf("the partition construction (4 nodes input 1 | 4 nodes input 0)\n\n");

  PartitionConfig config;
  config.n_a = 4;
  config.n_b = 4;
  config.intra_delay = 1.0;
  config.decide_timeout = 10.0;

  std::printf("%-18s %-12s %-14s\n", "cross delay", "decided", "outcome");
  for (double cross : {2.0, 8.0, 12.0, 100.0, 100000.0}) {
    config.cross_delay = cross;
    const auto result = run_partition_execution(config);
    std::printf("%-18.1f %-12s %-14s\n", cross, result.all_decided ? "all" : "some",
                result.disagreement ? "DISAGREEMENT" : "agreement");
  }

  std::printf("\nsemi-synchronous sweep: delay bound Δ unknown to nodes, timeout T = 10\n\n");
  std::printf("%-10s %-20s\n", "Δ/T", "disagreement rate");
  for (double ratio : {0.5, 0.9, 1.1, 1.5, 4.0, 20.0}) {
    const double rate = semi_sync_disagreement_rate(4, 4, ratio * 10.0, 10.0, 60, 7);
    std::printf("%-10.1f %.2f\n", ratio, rate);
  }

  std::printf(
      "\nno finite timeout survives an unknown delay bound — which is the paper's\n"
      "point: agreement without knowing n and f NEEDS the synchronous assumption\n"
      "(and systems like Nakamoto's blockchain implicitly make it).\n");
  return 0;
}
