// A real deployment: seven consensus nodes as seven threads, each with its
// own UDP socket on loopback, lock-step rounds paced by wall clock — no
// simulator anywhere. The nodes still know neither n nor f.
//
//   $ ./udp_cluster
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "core/consensus.hpp"
#include "runtime/round_driver.hpp"
#include "runtime/udp_transport.hpp"

int main() {
  using namespace idonly;
  using namespace std::chrono_literals;

  const std::vector<NodeId> ids{101, 215, 333, 478, 592, 667, 721};
  const auto ports = UdpTransport::pick_free_ports(ids.size());
  if (ports.size() != ids.size()) {
    std::fprintf(stderr, "could not allocate loopback ports\n");
    return 1;
  }

  RoundDriverConfig config;
  config.epoch = std::chrono::steady_clock::now() + 100ms;
  config.round_duration = 30ms;
  config.max_rounds = 80;

  std::printf("udp_cluster: %zu nodes on 127.0.0.1, %lld ms rounds, inputs 0/1\n", ids.size(),
              static_cast<long long>(config.round_duration.count()));

  std::vector<std::unique_ptr<RoundDriver>> drivers;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    drivers.push_back(std::make_unique<RoundDriver>(
        std::make_unique<ConsensusProcess>(ids[i], Value::real(static_cast<double>(i % 2))),
        std::make_unique<UdpTransport>(ports[i], ports), config));
  }
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (auto& driver : drivers) threads.emplace_back([&driver] { driver->run(); });
  for (auto& thread : threads) thread.join();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(std::chrono::steady_clock::now() - start);

  std::printf("\n%-8s %-8s %-10s %-8s %-8s %-6s\n", "node", "port", "decision", "rounds",
              "dropped", "late");
  bool ok = true;
  std::optional<Value> decided;
  for (std::size_t i = 0; i < drivers.size(); ++i) {
    auto& p = dynamic_cast<ConsensusProcess&>(drivers[i]->process());
    const bool has = p.output().has_value();
    if (has && !decided.has_value()) decided = *p.output();
    ok = ok && has && *p.output() == *decided;
    std::printf("%-8llu %-8u %-10s %-8lld %-8llu %-6llu\n",
                static_cast<unsigned long long>(ids[i]), ports[i],
                has ? p.output()->to_string().c_str() : "-",
                static_cast<long long>(drivers[i]->rounds_executed()),
                static_cast<unsigned long long>(drivers[i]->frames_dropped()),
                static_cast<unsigned long long>(drivers[i]->frames_late()));
  }
  std::printf("\nagreement over real UDP: %s (wall time %lld ms)\n", ok ? "yes" : "NO",
              static_cast<long long>(elapsed.count()));
  return ok ? 0 : 1;
}
