// Dynamic ledger: total ordering of client events in a network with churn —
// the paper's permissionless/blockchain motivation (§Application to Dynamic
// Networks). Nodes join and leave while events keep getting totally ordered
// into a chain with the chain-prefix and chain-growth guarantees.
//
//   $ ./dynamic_ledger
#include <cstdio>
#include <memory>
#include <vector>

#include "core/total_order.hpp"
#include "net/sync_simulator.hpp"

int main() {
  using namespace idonly;

  SyncSimulator sim;
  const std::vector<NodeId> founders{101, 215, 333, 478, 592};
  for (NodeId id : founders) {
    sim.add_process(std::make_unique<TotalOrderProcess>(id, /*founder=*/true));
  }
  sim.run_rounds(3);  // bootstrap

  auto node = [&sim](NodeId id) { return sim.get<TotalOrderProcess>(id); };

  std::printf("dynamic ledger: 5 founders, events submitted every round, churn mid-run\n\n");

  // Phase 1: founders submit a burst of transactions.
  double tx = 1.0;
  for (int i = 0; i < 8; ++i) {
    node(founders[static_cast<std::size_t>(i) % founders.size()])->submit_event(tx++);
    sim.step();
  }

  // Phase 2: node 733 joins; node 592 leaves; traffic continues.
  sim.add_process(std::make_unique<TotalOrderProcess>(733, /*founder=*/false));
  sim.run_rounds(5);
  node(592)->request_leave();
  for (int i = 0; i < 6; ++i) {
    node(101)->submit_event(tx++);
    if (auto* joiner = node(733); joiner != nullptr && i >= 3) joiner->submit_event(1000.0 + i);
    sim.step();
  }

  // Phase 3: drain until everything submitted is final.
  sim.run_rounds(80);

  const auto& chain = node(101)->chain();
  std::printf("%-8s %-10s %-10s\n", "seq", "witness", "event");
  for (std::size_t i = 0; i < chain.size(); ++i) {
    std::printf("%-8zu %-10llu %-10.1f\n", i + 1,
                static_cast<unsigned long long>(chain[i].witness), chain[i].event);
  }

  // Verify chain-prefix across the founders; the late joiner's chain starts
  // at its join round, so align it to the founder chain by instance number
  // and require entry-wise equality from there (a "suffix window" of the
  // founder chain).
  bool prefix_ok = true;
  for (NodeId id : {215u, 333u, 478u}) {
    auto* p = node(id);
    if (p == nullptr) continue;
    const auto& other = p->chain();
    const std::size_t k = std::min(chain.size(), other.size());
    for (std::size_t e = 0; e < k; ++e) prefix_ok = prefix_ok && chain[e] == other[e];
  }
  if (auto* joiner = node(733); joiner != nullptr && !joiner->chain().empty()) {
    const auto& jc = joiner->chain();
    std::size_t offset = 0;
    while (offset < chain.size() && !(chain[offset] == jc.front())) offset += 1;
    for (std::size_t e = 0; e < jc.size(); ++e) {
      prefix_ok = prefix_ok && offset + e < chain.size() && chain[offset + e] == jc[e];
    }
  }
  std::printf("\nchain length at node 101 : %zu\n", chain.size());
  std::printf("finalized up to round    : %lld\n",
              static_cast<long long>(node(101)->finalized_upto()));
  std::printf("chain-prefix consistent  : %s\n", prefix_ok ? "yes" : "NO");
  std::printf("node 592 exited cleanly  : %s\n",
              node(592) == nullptr || node(592)->done() ? "yes" : "still draining");
  return prefix_ok && chain.size() >= 14 ? 0 : 1;
}
