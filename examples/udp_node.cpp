// udp_node — ONE consensus node as its own OS process. Launch n of these
// (different --port, same --peers list) and they reach agreement over real
// UDP without any process knowing how many peers exist at the protocol
// level. The truly multi-process deployment (udp_cluster uses threads).
//
//   $ ./udp_node --id 101 --port 9101 --peers 9101,9102,9103,9104
//                --input 1 --round-ms 50 --start-in-ms 500   (one line)
//
// All nodes must share the same --start-in-ms wall-clock margin (the round
// epoch is "now + start-in-ms"; launch them within that margin, e.g. from
// one shell loop). Exit code 0 on decision.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/consensus.hpp"
#include "runtime/round_driver.hpp"
#include "runtime/udp_transport.hpp"

int main(int argc, char** argv) {
  using namespace idonly;
  using namespace std::chrono;

  NodeId id = 0;
  std::uint16_t port = 0;
  std::vector<std::uint16_t> peers;
  double input = 0.0;
  int round_ms = 50;
  int start_in_ms = 500;
  int max_rounds = 200;

  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--id") id = std::strtoull(next(), nullptr, 10);
    else if (flag == "--port") port = static_cast<std::uint16_t>(std::atoi(next()));
    else if (flag == "--peers") {
      std::string list = next();
      for (std::size_t pos = 0; pos < list.size();) {
        const std::size_t comma = list.find(',', pos);
        const std::string item = list.substr(pos, comma - pos);
        peers.push_back(static_cast<std::uint16_t>(std::atoi(item.c_str())));
        if (comma == std::string::npos) break;
        pos = comma + 1;
      }
    } else if (flag == "--input") input = std::atof(next());
    else if (flag == "--round-ms") round_ms = std::atoi(next());
    else if (flag == "--start-in-ms") start_in_ms = std::atoi(next());
    else if (flag == "--max-rounds") max_rounds = std::atoi(next());
    else {
      std::fprintf(stderr,
                   "usage: udp_node --id N --port P --peers P1,P2,... --input X "
                   "[--round-ms 50] [--start-in-ms 500] [--max-rounds 200]\n");
      return 2;
    }
  }
  if (id == 0 || port == 0 || peers.empty()) {
    std::fprintf(stderr, "--id, --port and --peers are required\n");
    return 2;
  }

  RoundDriverConfig config;
  config.epoch = steady_clock::now() + milliseconds(start_in_ms);
  config.round_duration = milliseconds(round_ms);
  config.max_rounds = max_rounds;

  RoundDriver driver(std::make_unique<ConsensusProcess>(id, Value::real(input)),
                     std::make_unique<UdpTransport>(port, peers), config);
  const Round rounds = driver.run();
  auto& p = dynamic_cast<ConsensusProcess&>(driver.process());
  if (p.output().has_value()) {
    std::printf("node %llu decided %s in %lld rounds (dropped=%llu late=%llu)\n",
                static_cast<unsigned long long>(id), p.output()->to_string().c_str(),
                static_cast<long long>(rounds),
                static_cast<unsigned long long>(driver.frames_dropped()),
                static_cast<unsigned long long>(driver.frames_late()));
    return 0;
  }
  std::printf("node %llu did NOT decide within %lld rounds\n",
              static_cast<unsigned long long>(id), static_cast<long long>(rounds));
  return 1;
}
