// Sensor fusion via iterated approximate agreement (paper's wireless-sensor
// motivation): a fleet of temperature sensors — population unknown, some
// faulty — converges to a common reading without any global configuration.
//
//   $ ./sensor_fusion
#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

#include "adversary/strategies.hpp"
#include "common/rng.hpp"
#include "core/approx_agreement.hpp"
#include "net/sync_simulator.hpp"

int main() {
  using namespace idonly;

  constexpr std::size_t kSensors = 12;
  constexpr std::size_t kFaulty = 3;   // n = 15 > 3f = 9
  constexpr int kIterations = 12;

  SyncSimulator sim;
  Rng rng(7);
  std::vector<NodeId> sensor_ids;
  std::vector<NodeId> all_ids;
  NodeId next_id = 1000;

  // Sparse ids, true readings clustered around 20.0 °C with noise.
  std::vector<double> readings;
  for (std::size_t i = 0; i < kSensors; ++i) {
    next_id += 1 + rng.below(50);
    sensor_ids.push_back(next_id);
    all_ids.push_back(next_id);
    readings.push_back(20.0 + rng.uniform(-2.5, 2.5));
  }
  std::vector<NodeId> faulty_ids;
  for (std::size_t i = 0; i < kFaulty; ++i) {
    next_id += 1 + rng.below(50);
    faulty_ids.push_back(next_id);
    all_ids.push_back(next_id);
  }

  for (std::size_t i = 0; i < kSensors; ++i) {
    sim.add_process(
        std::make_unique<ApproxAgreementProcess>(sensor_ids[i], readings[i], kIterations));
  }
  AdversaryContext context{all_ids, sensor_ids};
  for (NodeId id : faulty_ids) {
    // Faulty sensors report -40 to half the fleet and +85 to the other half.
    sim.add_process(std::make_unique<ExtremeValueAdversary>(id, context, -40.0, 85.0));
  }

  const auto [lo0, hi0] = std::minmax_element(readings.begin(), readings.end());
  std::printf("sensor fusion: %zu correct sensors, %zu faulty, readings in [%.2f, %.2f]\n\n",
              kSensors, kFaulty, *lo0, *hi0);
  std::printf("%-10s %-14s %-14s %s\n", "iteration", "min estimate", "max estimate", "spread");

  for (int it = 1; it <= kIterations; ++it) {
    sim.step();
    std::vector<double> estimates;
    for (NodeId id : sensor_ids) estimates.push_back(sim.get<ApproxAgreementProcess>(id)->value());
    const auto [lo, hi] = std::minmax_element(estimates.begin(), estimates.end());
    std::printf("%-10d %-14.6f %-14.6f %.3e\n", it, *lo, *hi, *hi - *lo);
  }

  std::vector<double> finals;
  for (NodeId id : sensor_ids) finals.push_back(sim.get<ApproxAgreementProcess>(id)->value());
  const auto [lo, hi] = std::minmax_element(finals.begin(), finals.end());
  const bool converged = (*hi - *lo) < (*hi0 - *lo0) / 1000.0;
  std::printf("\nfinal spread %.3e (inputs spread %.3f) — %s\n", *hi - *lo, *hi0 - *lo0,
              converged ? "converged" : "NOT converged");
  std::printf("all estimates stayed within the correct input range: %s\n",
              (*lo >= *lo0 - 1e-9 && *hi <= *hi0 + 1e-9) ? "yes" : "NO");
  return converged ? 0 : 1;
}
