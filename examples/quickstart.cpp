// Quickstart: Byzantine consensus among nodes that know NEITHER the system
// size n NOR the failure bound f — the paper's headline capability.
//
//   $ ./quickstart
//
// Ten correct nodes with mixed 0/1 inputs and three two-faced Byzantine
// nodes (n = 13, f = 3, n > 3f). Every correct node decides the same value,
// and that value is some correct node's input.
#include <cstdio>

#include "harness/runner.hpp"

int main() {
  using namespace idonly;

  ScenarioConfig config;
  config.n_correct = 10;
  config.n_byzantine = 3;
  config.adversary = AdversaryKind::kTwoFaced;  // strongest generic attack
  config.seed = 2020;

  // Inputs cycle over this pattern across the correct nodes.
  const std::vector<double> inputs{0.0, 1.0, 1.0, 0.0, 1.0};

  std::printf("id-only consensus: n=%zu (10 correct + 3 two-faced Byzantine), inputs 0/1\n",
              config.n_correct + config.n_byzantine);
  std::printf("nodes know neither n nor f; ids are sparse and non-consecutive\n\n");

  const ConsensusRun run = run_consensus(config, inputs);

  std::printf("all correct nodes decided : %s\n", run.all_decided ? "yes" : "NO");
  std::printf("agreement                 : %s\n", run.agreement ? "yes" : "NO");
  std::printf("validity                  : %s\n", run.validity ? "yes" : "NO");
  if (!run.outputs.empty()) {
    std::printf("decided value             : %s\n", run.outputs.front().to_string().c_str());
  }
  std::printf("phases to decide (slowest): %lld\n",
              static_cast<long long>(run.max_decision_phase));
  std::printf("simulated rounds          : %lld\n", static_cast<long long>(run.rounds));
  std::printf("messages delivered        : %llu\n", static_cast<unsigned long long>(run.messages));
  return run.all_decided && run.agreement && run.validity ? 0 : 1;
}
