// experiment_cli — run any library experiment from the command line and emit
// CSV, for scripting sweeps beyond the fixed benchmark grids.
//
//   experiment_cli consensus   --n-correct 10 --n-byz 3 --adversary twofaced --seeds 20
//   experiment_cli rb          --n-correct 7  --n-byz 2 --adversary forgedecho --byz-source
//   experiment_cli approx      --n-correct 13 --n-byz 4 --iterations 12
//   experiment_cli rotor       --n-correct 25 --n-byz 8 --adversary rotorstuffer
//   experiment_cli impossibility --delta 40 --timeout 10 --trials 200
//
// Every row is one seeded run; aggregate with your favourite tools.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "harness/runner.hpp"
#include "impossibility/async_partition.hpp"

namespace {

using namespace idonly;

struct Args {
  std::string experiment;
  std::size_t n_correct = 7;
  std::size_t n_byz = 2;
  std::string adversary = "silent";
  int seeds = 10;
  int iterations = 8;
  bool byz_source = false;
  bool aggregate = false;  ///< print mean/sd/percentile summaries instead of rows
  double delta = 40.0;
  double timeout = 10.0;
  int trials = 100;
};

AdversaryKind parse_adversary(const std::string& name) {
  for (AdversaryKind kind : all_adversaries()) {
    if (to_string(kind) == name) return kind;
  }
  if (name == "none") return AdversaryKind::kNone;
  std::fprintf(stderr, "unknown adversary '%s'\n", name.c_str());
  std::exit(2);
}

bool parse_args(int argc, char** argv, Args& args) {
  if (argc < 2) return false;
  args.experiment = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--n-correct") args.n_correct = std::strtoul(next(), nullptr, 10);
    else if (flag == "--n-byz") args.n_byz = std::strtoul(next(), nullptr, 10);
    else if (flag == "--adversary") args.adversary = next();
    else if (flag == "--seeds") args.seeds = std::atoi(next());
    else if (flag == "--iterations") args.iterations = std::atoi(next());
    else if (flag == "--byz-source") args.byz_source = true;
    else if (flag == "--aggregate") args.aggregate = true;
    else if (flag == "--delta") args.delta = std::atof(next());
    else if (flag == "--timeout") args.timeout = std::atof(next());
    else if (flag == "--trials") args.trials = std::atoi(next());
    else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

ScenarioConfig config_from(const Args& args, std::uint64_t seed) {
  ScenarioConfig config;
  config.n_correct = args.n_correct;
  config.n_byzantine = args.n_byz;
  config.adversary = parse_adversary(args.adversary);
  config.seed = seed;
  return config;
}

int run_consensus_cli(const Args& args) {
  if (args.aggregate) {
    std::vector<double> rounds;
    std::vector<double> messages;
    int correct_runs = 0;
    for (int s = 1; s <= args.seeds; ++s) {
      const auto run = run_consensus(config_from(args, s), {0.0, 1.0, 1.0, 0.0});
      rounds.push_back(static_cast<double>(run.rounds));
      messages.push_back(static_cast<double>(run.messages));
      correct_runs += run.all_decided && run.agreement && run.validity ? 1 : 0;
    }
    std::printf("correct_runs %d/%d\nrounds   %s\nmessages %s\n", correct_runs, args.seeds,
                summarize(rounds).to_string().c_str(),
                summarize(messages).to_string().c_str());
    return correct_runs == args.seeds ? 0 : 1;
  }
  std::printf("seed,decided,agreement,validity,phases,rounds,messages\n");
  for (int s = 1; s <= args.seeds; ++s) {
    const auto run = run_consensus(config_from(args, s), {0.0, 1.0, 1.0, 0.0});
    std::printf("%d,%d,%d,%d,%lld,%lld,%llu\n", s, run.all_decided, run.agreement, run.validity,
                static_cast<long long>(run.max_decision_phase),
                static_cast<long long>(run.rounds),
                static_cast<unsigned long long>(run.messages));
  }
  return 0;
}

int run_rb_cli(const Args& args) {
  std::printf("seed,accepted,agreement,relay_ok,first_accept,last_accept,messages\n");
  for (int s = 1; s <= args.seeds; ++s) {
    const auto run = run_reliable_broadcast(config_from(args, s), 42.0, args.byz_source);
    std::printf("%d,%zu,%d,%d,%lld,%lld,%llu\n", s, run.accepted_count, run.agreement,
                run.relay_ok, static_cast<long long>(run.first_accept_round.value_or(-1)),
                static_cast<long long>(run.last_accept_round.value_or(-1)),
                static_cast<unsigned long long>(run.messages));
  }
  return 0;
}

int run_approx_cli(const Args& args) {
  std::printf("seed,iteration,range\n");
  for (int s = 1; s <= args.seeds; ++s) {
    std::vector<double> inputs;
    for (std::size_t i = 0; i < args.n_correct; ++i) inputs.push_back(static_cast<double>(i));
    const auto run = run_approx_agreement(config_from(args, s), inputs, args.iterations);
    for (std::size_t it = 0; it < run.range_per_iteration.size(); ++it) {
      std::printf("%d,%zu,%.10g\n", s, it + 1, run.range_per_iteration[it]);
    }
  }
  return 0;
}

int run_rotor_cli(const Args& args) {
  std::printf("seed,terminated,termination_round,good_witnessed,first_good,messages\n");
  for (int s = 1; s <= args.seeds; ++s) {
    const auto run = run_rotor(config_from(args, s));
    std::printf("%d,%d,%lld,%d,%lld,%llu\n", s, run.all_terminated,
                static_cast<long long>(run.max_termination_round), run.good_round_witnessed,
                static_cast<long long>(run.first_good_round.value_or(-1)),
                static_cast<unsigned long long>(run.messages));
  }
  return 0;
}

int run_impossibility_cli(const Args& args) {
  std::printf("delta,timeout,trials,disagreement_rate\n");
  const double rate = semi_sync_disagreement_rate(args.n_correct / 2 + 1, args.n_correct / 2,
                                                  args.delta, args.timeout, args.trials, 1);
  std::printf("%.3f,%.3f,%d,%.4f\n", args.delta, args.timeout, args.trials, rate);
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: experiment_cli <consensus|rb|approx|rotor|impossibility> [flags]\n"
               "flags: --n-correct N --n-byz F --adversary KIND --seeds K --iterations I\n"
               "       --byz-source --aggregate --delta D --timeout T --trials T\n");
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  if (args.experiment == "consensus") return run_consensus_cli(args);
  if (args.experiment == "rb") return run_rb_cli(args);
  if (args.experiment == "approx") return run_approx_cli(args);
  if (args.experiment == "rotor") return run_rotor_cli(args);
  if (args.experiment == "impossibility") return run_impossibility_cli(args);
  usage();
  return 2;
}
