// Replicated key-value store — the paper's database-cluster motivation,
// end to end: five replicas totally order their writes without knowing the
// cluster size, a sixth scales in mid-run, one scales out, and every replica
// walks through the identical sequence of states.
//
//   $ ./replicated_kv_demo
#include <cstdio>
#include <memory>
#include <vector>

#include "app/replicated_kv.hpp"
#include "net/sync_simulator.hpp"

int main() {
  using namespace idonly;

  SyncSimulator sim;
  const std::vector<NodeId> founders{101, 215, 333, 478, 592};
  for (NodeId id : founders) {
    sim.add_process(std::make_unique<ReplicatedKvProcess>(id, /*founder=*/true));
  }
  auto node = [&sim](NodeId id) { return sim.get<ReplicatedKvProcess>(id); };
  sim.run_rounds(3);

  std::printf("replicated KV: 5 founders; writes while scaling in/out\n\n");

  // Burst of writes from different replicas, including same-key conflicts.
  node(101)->submit_set(1, 100);
  sim.run_rounds(1);
  node(215)->submit_set(2, 200);
  node(478)->submit_set(1, 150);  // same round as 215's write, different key
  sim.run_rounds(1);
  node(333)->submit_set(1, 175);  // later write to key 1 — must win
  sim.run_rounds(2);

  // Scale in a new replica; scale out an old one; keep writing.
  sim.add_process(std::make_unique<ReplicatedKvProcess>(733, /*founder=*/false));
  sim.run_rounds(6);
  node(592)->request_leave();
  node(215)->submit_set(3, 300);
  sim.run_rounds(80);

  std::printf("%-8s %-9s %-30s\n", "replica", "version", "store {key:value}");
  bool consistent = true;
  const auto& reference = node(101)->store();
  for (NodeId id : {101u, 215u, 333u, 478u, 733u}) {
    auto* replica = node(id);
    std::string dump;
    for (const auto& [key, value] : replica->store()) {
      dump += "{" + std::to_string(key) + ":" + std::to_string(value) + "} ";
    }
    std::printf("%-8llu %-9zu %-30s\n", static_cast<unsigned long long>(id),
                replica->version(), dump.c_str());
    if (id != 733u) consistent = consistent && replica->store() == reference;
  }

  const bool winner_ok = node(101)->get(1) == 175u;
  std::printf("\nfounder replicas identical : %s\n", consistent ? "yes" : "NO");
  std::printf("conflict winner (key 1)    : %s\n", winner_ok ? "175 (latest write)" : "WRONG");
  std::printf("scaled-out replica done    : %s\n",
              node(592) == nullptr || node(592)->done() ? "yes" : "draining");
  std::printf("note: the scaled-in replica orders the suffix from its join; a\n"
              "production system pairs this with a state snapshot (see app/).\n");
  return consistent && winner_ok ? 0 : 1;
}
