// Committee rotation: the rotor-coordinator as a leader-rotation service.
// With unknown n, f and sparse ids, electing "f+1 leaders so one is honest"
// is the paper's key subproblem — this example shows the selection schedule
// and the good round every node witnesses.
//
//   $ ./committee_rotation
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "adversary/strategies.hpp"
#include "core/rotor_coordinator.hpp"
#include "net/sync_simulator.hpp"

int main() {
  using namespace idonly;

  SyncSimulator sim;
  const std::vector<NodeId> honest{120, 245, 371, 406, 533, 667, 721};
  const std::vector<NodeId> byzantine{888, 999};  // n = 9 > 3f = 6
  std::vector<NodeId> all = honest;
  all.insert(all.end(), byzantine.begin(), byzantine.end());

  for (std::size_t i = 0; i < honest.size(); ++i) {
    sim.add_process(
        std::make_unique<RotorProcess>(honest[i], Value::real(static_cast<double>(i))));
  }
  // Byzantine pair: one joins the candidate pool then drips fake candidates,
  // one stays silent entirely.
  sim.add_process(std::make_unique<RotorStufferAdversary>(
      byzantine[0], std::vector<NodeId>{5001, 5002, 5003}));
  sim.add_process(std::make_unique<SilentAdversary>(byzantine[1]));

  sim.run_until_all_correct_done(100);

  std::printf("committee rotation: 7 honest + 2 Byzantine (1 stuffer, 1 silent)\n\n");
  std::printf("%-6s", "round");
  for (NodeId id : honest) std::printf(" %6llu", static_cast<unsigned long long>(id));
  std::printf("   common?  honest-coordinator?\n");

  const auto* reference = sim.get<RotorProcess>(honest[0]);
  const std::size_t rounds = reference->history().size();
  std::int64_t first_good = -1;
  for (std::size_t r = 0; r < rounds; ++r) {
    std::printf("%-6zu", r);
    bool common = true;
    std::optional<NodeId> selected;
    for (NodeId id : honest) {
      const auto& history = sim.get<RotorProcess>(id)->history();
      if (r < history.size() && history[r].selected.has_value()) {
        std::printf(" %6llu", static_cast<unsigned long long>(*history[r].selected));
        if (!selected.has_value()) selected = history[r].selected;
        common = common && history[r].selected == selected;
      } else {
        std::printf(" %6s", "-");
        common = false;
      }
    }
    const bool is_honest = selected.has_value() &&
                           std::find(honest.begin(), honest.end(), *selected) != honest.end();
    std::printf("   %-8s %s\n", common ? "yes" : "no", common && is_honest ? "yes" : "no");
    if (common && is_honest && first_good < 0) first_good = static_cast<std::int64_t>(r);
  }

  std::printf("\nfirst good round (common + honest coordinator): %lld\n",
              static_cast<long long>(first_good));
  std::printf("every honest node terminated: %s\n",
              sim.metrics().done_round.size() >= honest.size() ? "yes" : "NO");
  return first_good >= 0 ? 0 : 1;
}
