// scenario_fuzz — adversarial scenario fuzzing campaigns (src/fuzz/).
//
// Expands a contiguous seed range into generated scenarios (sizes at and
// inside the n > 3f resilience boundary, mixed adversaries, chaos phases,
// churn), runs each under the invariant monitor, and triages the outcomes.
// Failing scenarios are delta-debugged down to minimal repros and written
// as bundles CI can upload (see src/fuzz/campaign.hpp for the layout).
//
//   $ ./scenario_fuzz --campaign 500 --seed 1 --jobs 8
//   $ ./scenario_fuzz --campaign 200 --seed 9000 --minimize --out repro/
//   $ ./scenario_fuzz --emit 42                  # print seed 42's .scn
//
// Flags:
//   --campaign N        scenarios to run (default 100)
//   --seed S            base seed; scenario i uses seed S + i (default 1)
//   --jobs J            worker threads (default 1; results identical for any J)
//   --minimize          shrink every failure to a minimal repro
//   --out DIR           write repro bundles for failures under DIR
//   --boundary-probe P  probability of a deliberate n = 3f probe (default 0;
//                       such violations are counted, never fatal)
//   --max-nodes N       upper bound on scenario size (default 20)
//   --metrics           print the campaign's Prometheus text exposition
//   --emit SEED         print the generated scenario for SEED and exit
//
// Exit codes: 0 = campaign green (boundary-probe violations are expected and
// stay green), 1 = a resilient scenario failed or generation errored,
// 2 = usage error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "fuzz/campaign.hpp"

int main(int argc, char** argv) {
  using namespace idonly;
  CampaignOptions options;
  options.scenarios = 100;
  // The library default is minimize-on (programmatic callers want shrunk
  // repros); the CLI makes it opt-in so quick sweeps stay quick.
  options.minimize = false;
  bool print_metrics = false;
  std::optional<std::uint64_t> emit_seed;
  auto number = [&](int& i) -> std::uint64_t {
    return std::strtoull(argv[++i], nullptr, 10);
  };
  for (int i = 1; i < argc; ++i) {
    const bool has_value = i + 1 < argc;
    if (std::strcmp(argv[i], "--campaign") == 0 && has_value) {
      options.scenarios = static_cast<std::size_t>(number(i));
    } else if (std::strcmp(argv[i], "--seed") == 0 && has_value) {
      options.base_seed = number(i);
    } else if (std::strcmp(argv[i], "--jobs") == 0 && has_value) {
      options.jobs = static_cast<unsigned>(number(i));
    } else if (std::strcmp(argv[i], "--minimize") == 0) {
      options.minimize = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && has_value) {
      options.bundle_dir = argv[++i];
    } else if (std::strcmp(argv[i], "--boundary-probe") == 0 && has_value) {
      options.generator.past_boundary_probability = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--max-nodes") == 0 && has_value) {
      options.generator.max_nodes = static_cast<std::size_t>(number(i));
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      print_metrics = true;
    } else if (std::strcmp(argv[i], "--emit") == 0 && has_value) {
      emit_seed = number(i);
    } else {
      std::fprintf(stderr,
                   "usage: scenario_fuzz [--campaign N] [--seed S] [--jobs J] [--minimize] "
                   "[--out DIR] [--boundary-probe P] [--max-nodes N] [--metrics] "
                   "[--emit SEED]\n");
      return 2;
    }
  }

  if (emit_seed.has_value()) {
    try {
      const ScenarioGenerator generator(options.generator);
      const GeneratedScenario scenario = generator.generate(*emit_seed);
      std::printf("%s", scenario.text.c_str());
      return 0;
    } catch (const std::exception& error) {
      std::fprintf(stderr, "emit failed: %s\n", error.what());
      return 1;
    }
  }

  try {
    const CampaignRunner runner(options);
    const CampaignReport report = runner.run();
    std::printf("%s\n", report.summary().c_str());
    for (const CampaignFailure& failure : report.failures) {
      std::printf("  %s seed=%llu: %s\n",
                  failure.generator_error ? "ERROR"
                  : failure.past_boundary ? "boundary"
                                          : "FAIL",
                  static_cast<unsigned long long>(failure.seed), failure.summary.c_str());
      if (!failure.first_violation.empty()) {
        std::printf("    violation: %s\n", failure.first_violation.c_str());
      }
      if (!failure.minimized_text.empty()) {
        std::printf("    minimized (%zu attempts):\n", failure.minimize_attempts);
        std::printf("%s", failure.minimized_text.c_str());
      }
      if (!failure.bundle_path.empty()) {
        std::printf("    bundle: %s\n", failure.bundle_path.c_str());
      }
    }
    if (print_metrics) std::printf("%s", prometheus_exposition(report.counters).c_str());
    return report.ok ? 0 : 1;
  } catch (const std::exception& error) {
    std::fprintf(stderr, "campaign failed: %s\n", error.what());
    return 1;
  }
}
