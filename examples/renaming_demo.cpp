// Byzantine renaming: a cluster whose nodes carry huge sparse ids (think
// MAC-derived 64-bit addresses) agrees on a consistent dense numbering
// 1..|S| — without any node knowing how many participants exist.
//
//   $ ./renaming_demo
#include <cstdio>
#include <memory>
#include <vector>

#include "adversary/strategies.hpp"
#include "core/renaming.hpp"
#include "net/sync_simulator.hpp"

int main() {
  using namespace idonly;

  SyncSimulator sim;
  const std::vector<NodeId> sparse_ids{
      0x9F3A12ull, 0x0042FFull, 0xB00C17ull, 0x77A0D3ull, 0x1C8E55ull, 0xF1020Aull, 0x3D9B61ull};
  for (NodeId id : sparse_ids) sim.add_process(std::make_unique<RenamingProcess>(id));
  // Two Byzantine nodes: one announces itself (and thus legitimately joins
  // the namespace), one stays silent (and must NOT occupy a slot).
  sim.add_process(std::make_unique<RotorStufferAdversary>(0xEEEE01ull, std::vector<NodeId>{}));
  sim.add_process(std::make_unique<SilentAdversary>(0xEEEE02ull));

  const bool done = sim.run_until_all_correct_done(60);

  std::printf("Byzantine renaming: 7 correct nodes with sparse ids, 2 Byzantine\n\n");
  std::printf("%-12s %-10s\n", "old id", "new name");
  bool consistent = true;
  const RenamingProcess* reference = nullptr;
  for (NodeId id : sparse_ids) {
    const auto* p = sim.get<RenamingProcess>(id);
    if (reference == nullptr) reference = p;
    consistent = consistent && p->id_set() == reference->id_set();
    std::printf("0x%-10llX %zu\n", static_cast<unsigned long long>(id),
                p->new_name().value_or(0));
  }
  std::printf("\nall correct nodes terminated : %s\n", done ? "yes" : "NO");
  std::printf("identical agreed id sets     : %s\n", consistent ? "yes" : "NO");
  std::printf("namespace size |S|           : %zu (7 correct + announcing Byzantine)\n",
              reference->id_set().size());
  std::printf("rounds used                  : %lld\n", static_cast<long long>(sim.round()));
  return done && consistent ? 0 : 1;
}
