// Permissionless ballot processing with parallel consensus: each node
// submits the ballots it witnessed as (ballot-id, choice) pairs — nobody
// agrees up front on WHICH ballots exist, yet all correct nodes output the
// same accepted ballot set. This is Alg. 5 doing the work that makes the
// total-ordering ledger possible.
//
//   $ ./permissionless_vote
#include <cstdio>
#include <memory>
#include <vector>

#include "adversary/strategies.hpp"
#include "core/parallel_consensus.hpp"
#include "net/sync_simulator.hpp"

int main() {
  using namespace idonly;

  SyncSimulator sim;
  const std::vector<NodeId> nodes{210, 355, 471, 502, 668, 713, 894};

  // Ballot 1 reached every node; ballot 2 reached a majority; ballot 3 only
  // two nodes (its fate is adversary-dependent but must be uniform).
  auto inputs_for = [](std::size_t i) {
    std::vector<InputPair> inputs;
    inputs.push_back({.id = 1, .value = Value::real(1.0)});                  // choice "yes"
    if (i < 5) inputs.push_back({.id = 2, .value = Value::real(0.0)});       // choice "no"
    if (i < 2) inputs.push_back({.id = 3, .value = Value::real(1.0)});
    return inputs;
  };
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    sim.add_process(std::make_unique<ParallelConsensusProcess>(nodes[i], inputs_for(i)));
  }
  // Two Byzantine nodes whisper a GHOST ballot (id 99) to a minority — it
  // must never be accepted anywhere.
  sim.add_process(std::make_unique<WhisperAdversary>(901, /*pair=*/99, MsgKind::kInput,
                                                     Value::real(1.0), /*fire_round=*/3,
                                                     std::vector<NodeId>{210, 355}));
  sim.add_process(std::make_unique<WhisperAdversary>(902, /*pair=*/99, MsgKind::kPrefer,
                                                     Value::real(1.0), /*fire_round=*/4,
                                                     std::vector<NodeId>{210}));

  const bool done = sim.run_until_all_correct_done(200);

  std::printf("permissionless ballots: 7 nodes, partial ballot visibility, 2 whisperers\n\n");
  bool uniform = true;
  bool ghost = false;
  std::vector<OutputPair> reference;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    auto pairs = sim.get<ParallelConsensusProcess>(nodes[i])->outputs();
    std::sort(pairs.begin(), pairs.end());
    if (i == 0) reference = pairs;
    uniform = uniform && pairs == reference;
    for (const auto& pair : pairs) ghost = ghost || pair.id == 99;
  }
  std::printf("%-10s %-10s\n", "ballot", "choice");
  for (const auto& pair : reference) {
    std::printf("%-10llu %-10s\n", static_cast<unsigned long long>(pair.id),
                pair.value == Value::real(1.0) ? "yes" : "no");
  }
  std::printf("\nall nodes terminated      : %s\n", done ? "yes" : "NO");
  std::printf("identical accepted set    : %s\n", uniform ? "yes" : "NO");
  std::printf("ghost ballot rejected     : %s\n", ghost ? "NO" : "yes");
  std::printf("universally-seen ballot 1 : %s\n",
              !reference.empty() && reference[0].id == 1 ? "accepted" : "MISSING");
  return done && uniform && !ghost ? 0 : 1;
}
