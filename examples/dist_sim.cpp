// dist_sim — run a scenario-script file across N forked shard worker
// processes (src/dist/) and report each expectation, exactly as scenario_sim
// does for the in-process engines. For the same script and seed the merged
// canonical trace is byte-identical to `scenario_sim --threads 1` — the CI
// dist-smoke job byte-compares the two `--trace-canonical` exports.
//
// Exit codes extend scenario_sim's classes (docs/testing.md):
//   0  every expectation held, no invariant violations
//   1  an expectation failed
//   2  usage error, or a file could not be read/written
//   3  the script failed to parse
//   4  an invariant violation was observed — takes precedence over 1
//   5  run infrastructure failed — a shard worker crashed, wedged, or broke
//      protocol (takes precedence over everything; results are meaningless)
//
//   $ ./dist_sim ../scenarios/chaos_partition_heal.scn --shards 4
//
// --mesh (default) exchanges the round's shard slabs directly worker↔worker
// with double-buffered rounds; --no-mesh keeps the star relay through the
// coordinator. The merged result and canonical trace are byte-identical
// either way — only the overlap counters differ.
// --trace PATH / --trace-canonical PATH write the merged flight-recorder
// exports (full JSONL / canonical link family); --metrics prints the merged
// Prometheus exposition (including idonly_wire_faults_total for the shard
// transport and the idonly_overlap_* counters). --crash-shard S
// --crash-round R make worker S die abruptly before round R — the
// crash-detection smoke (expects exit 5, not a hang, in BOTH topologies).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <variant>

#include "dist/shard_coordinator.hpp"

namespace {

bool write_file(const char* path, const std::string& content) {
  std::ofstream file(path);
  if (!file) return false;
  file << content;
  return file.good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace idonly;
  const char* path = nullptr;
  const char* trace_path = nullptr;
  const char* canonical_path = nullptr;
  bool print_metrics = false;
  DistConfig config;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      config.shards = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-canonical") == 0 && i + 1 < argc) {
      canonical_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      print_metrics = true;
    } else if (std::strcmp(argv[i], "--mesh") == 0) {
      config.mesh = true;
    } else if (std::strcmp(argv[i], "--no-mesh") == 0) {
      config.mesh = false;
    } else if (std::strcmp(argv[i], "--crash-shard") == 0 && i + 1 < argc) {
      config.crash_shard = static_cast<std::uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--crash-round") == 0 && i + 1 < argc) {
      config.crash_at_round = static_cast<Round>(std::strtol(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--wedge-timeout-ms") == 0 && i + 1 < argc) {
      config.wedge_timeout_ms = static_cast<int>(std::strtol(argv[++i], nullptr, 10));
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr || config.shards == 0) {
    std::fprintf(stderr,
                 "usage: dist_sim <script-file> [--shards N] [--mesh|--no-mesh] "
                 "[--trace PATH] [--trace-canonical PATH] [--metrics] "
                 "[--crash-shard S --crash-round R] [--wedge-timeout-ms N]\n");
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();
  config.script_text = buffer.str();
  config.want_trace = trace_path != nullptr || canonical_path != nullptr;

  // Pre-parse for the dedicated exit code; run_dist re-parses the same text.
  {
    auto parsed = parse_script(config.script_text);
    if (const auto* error = std::get_if<ParseError>(&parsed)) {
      std::fprintf(stderr, "%s:%d: %s\n", path, error->line, error->message.c_str());
      return 3;
    }
  }

  const DistRun dist = run_dist(config);
  if (!dist.infra_ok) {
    std::fprintf(stderr, "dist infrastructure failure: %s\n", dist.infra_error.c_str());
    return 5;
  }
  const ScriptRun& run = dist.script;

  if (trace_path != nullptr && !write_file(trace_path, dist.trace->jsonl())) {
    std::fprintf(stderr, "cannot write %s\n", trace_path);
    return 2;
  }
  if (canonical_path != nullptr &&
      !write_file(canonical_path, dist.trace->canonical_jsonl())) {
    std::fprintf(stderr, "cannot write %s\n", canonical_path);
    return 2;
  }

  std::printf("%s [shards=%u]\n", run.summary.c_str(), config.shards);
  if (print_metrics && !run.metrics_exposition.empty()) {
    std::printf("%s", run.metrics_exposition.c_str());
  }
  if (!run.chaos_summary.empty()) std::printf("  chaos: %s\n", run.chaos_summary.c_str());
  for (const auto& violation : run.violations) {
    std::printf("  VIOLATION: %s\n", violation.c_str());
  }
  for (const auto& outcome : run.outcomes) {
    std::printf("  expect %-12s : %s (%s)\n", to_string(outcome.expectation).c_str(),
                outcome.satisfied ? "ok" : "FAILED", outcome.detail.c_str());
  }
  if (!run.violations.empty()) return 4;
  return run.all_satisfied ? 0 : 1;
}
