// trace_diff — compare two flight-recorder JSONL traces (canonical or full
// export, see common/trace.hpp) and report the first divergent canonical
// link record.
//
//   $ ./scenario_sim scenarios/chaos_partition_heal.scn --seed 5 --trace a.jsonl
//   $ ./scenario_sim scenarios/chaos_partition_heal.scn --seed 5 --trace b.jsonl
//   $ ./trace_diff a.jsonl b.jsonl
//   traces identical (1224 canonical records)
//
// Exit codes: 0 = identical, 1 = diverged, 2 = usage/IO error.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "check/trace_diff.hpp"

namespace {

bool read_file(const char* path, std::string& out) {
  std::ifstream file(path);
  if (!file) return false;
  std::stringstream buffer;
  buffer << file.rdbuf();
  out = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace idonly;
  if (argc != 3) {
    std::fprintf(stderr, "usage: trace_diff <left.jsonl> <right.jsonl>\n");
    return 2;
  }
  std::string left;
  std::string right;
  if (!read_file(argv[1], left)) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  if (!read_file(argv[2], right)) {
    std::fprintf(stderr, "cannot open %s\n", argv[2]);
    return 2;
  }
  const TraceDiffResult result = diff_canonical_traces(left, right);
  std::printf("%s\n", result.to_string().c_str());
  if (result.left_records == 0 && result.right_records == 0) {
    std::fprintf(stderr, "warning: neither trace contains canonical link records\n");
  }
  return result.diverged ? 1 : 0;
}
