// scenario_sim — run a scenario-script file (see src/harness/script.hpp for
// the DSL) and report each expectation. Exit code 0 iff all expectations
// hold. Sample scripts live in scenarios/.
//
//   $ ./scenario_sim ../scenarios/consensus_twofaced.scn
#include <cstdio>
#include <fstream>
#include <sstream>
#include <variant>

#include "harness/script.hpp"

int main(int argc, char** argv) {
  using namespace idonly;
  if (argc != 2) {
    std::fprintf(stderr, "usage: scenario_sim <script-file>\n");
    return 2;
  }
  std::ifstream file(argv[1]);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  const auto parsed = parse_script(buffer.str());
  if (const auto* error = std::get_if<ParseError>(&parsed)) {
    std::fprintf(stderr, "%s:%d: %s\n", argv[1], error->line, error->message.c_str());
    return 2;
  }
  const auto& script = std::get<ScenarioScript>(parsed);
  const ScriptRun run = run_script(script);

  std::printf("%s\n", run.summary.c_str());
  for (const auto& outcome : run.outcomes) {
    std::printf("  expect %-12s : %s (%s)\n", to_string(outcome.expectation).c_str(),
                outcome.satisfied ? "ok" : "FAILED", outcome.detail.c_str());
  }
  return run.all_satisfied ? 0 : 1;
}
