// scenario_sim — run a scenario-script file (see src/harness/script.hpp for
// the DSL) and report each expectation. Sample scripts live in scenarios/.
//
// Exit codes are distinct per failure class so scripts and CI can triage
// without parsing output (documented in docs/testing.md):
//   0  every expectation held, no invariant violations
//   1  an expectation failed (but no invariant violation was observed)
//   2  usage error, or a file could not be read/written
//   3  the script failed to parse
//   4  an invariant violation (agreement/validity/liveness/chain) was
//      observed — takes precedence over 1
//
//   $ ./scenario_sim ../scenarios/consensus_twofaced.scn
//   $ ./scenario_sim ../scenarios/chaos_jitter_storm.scn --seed 17
//
// --seed N overrides the script's seed — the CI chaos soak sweeps one
// script across seeds without editing the file.
// --trace PATH writes the run's flight-recorder JSONL export (replay it
// through trace_diff to compare two seeds' executions); --trace-canonical
// PATH writes the canonical link-family export (the byte-comparable form the
// dist-smoke CI job diffs against dist_sim); --trace-chrome PATH writes the
// chrome://tracing JSON view; --metrics prints the Prometheus text
// exposition of the run's counters.
// --threads N runs the round engine on N worker threads; the run — and its
// trace export — is bit-identical for every N (CI diffs them to prove it).
// --rb NAME overrides the script's reliable-broadcast backend (alg1 | imbs,
// rb protocol only) — the backend-ablation sweeps reuse one script file.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <variant>

#include "harness/script.hpp"

namespace {

bool write_file(const char* path, const std::string& content) {
  std::ofstream file(path);
  if (!file) return false;
  file << content;
  return file.good();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace idonly;
  const char* path = nullptr;
  const char* trace_path = nullptr;
  const char* canonical_path = nullptr;
  const char* chrome_path = nullptr;
  bool print_metrics = false;
  unsigned threads = 1;
  std::optional<std::uint64_t> seed_override;
  std::optional<RbBackendKind> rb_override;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed_override = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--rb") == 0 && i + 1 < argc) {
      rb_override = parse_rb_backend(argv[++i]);
      if (!rb_override.has_value()) {
        std::fprintf(stderr, "--rb: unknown backend '%s' (alg1 | imbs)\n", argv[i]);
        return 2;
      }
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<unsigned>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-canonical") == 0 && i + 1 < argc) {
      canonical_path = argv[++i];
    } else if (std::strcmp(argv[i], "--trace-chrome") == 0 && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      print_metrics = true;
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      path = nullptr;
      break;
    }
  }
  if (path == nullptr) {
    std::fprintf(stderr,
                 "usage: scenario_sim <script-file> [--seed N] [--rb alg1|imbs] [--threads N] "
                 "[--trace PATH] [--trace-canonical PATH] [--trace-chrome PATH] [--metrics]\n");
    return 2;
  }
  std::ifstream file(path);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return 2;
  }
  std::stringstream buffer;
  buffer << file.rdbuf();

  auto parsed = parse_script(buffer.str());
  if (const auto* error = std::get_if<ParseError>(&parsed)) {
    std::fprintf(stderr, "%s:%d: %s\n", path, error->line, error->message.c_str());
    return 3;
  }
  auto& script = std::get<ScenarioScript>(parsed);
  if (seed_override.has_value()) script.config.seed = *seed_override;
  if (rb_override.has_value()) {
    if (script.protocol != ScriptProtocol::kRb) {
      std::fprintf(stderr, "--rb is only meaningful for rb-protocol scripts\n");
      return 2;
    }
    script.rb_backend = *rb_override;
  }
  ScriptOptions options;
  options.threads = threads;
  if (trace_path != nullptr || canonical_path != nullptr || chrome_path != nullptr) {
    options.recorder = std::make_shared<TraceRecorder>(TraceEngine::kSync);
  }
  const ScriptRun run = run_script(script, options);

  if (trace_path != nullptr && !write_file(trace_path, options.recorder->jsonl())) {
    std::fprintf(stderr, "cannot write %s\n", trace_path);
    return 2;
  }
  if (canonical_path != nullptr &&
      !write_file(canonical_path, options.recorder->canonical_jsonl())) {
    std::fprintf(stderr, "cannot write %s\n", canonical_path);
    return 2;
  }
  if (chrome_path != nullptr && !write_file(chrome_path, options.recorder->chrome_trace_json())) {
    std::fprintf(stderr, "cannot write %s\n", chrome_path);
    return 2;
  }

  std::printf("%s\n", run.summary.c_str());
  if (print_metrics && !run.metrics_exposition.empty()) {
    std::printf("%s", run.metrics_exposition.c_str());
  }
  if (!run.chaos_summary.empty()) std::printf("  chaos: %s\n", run.chaos_summary.c_str());
  for (const auto& violation : run.violations) {
    std::printf("  VIOLATION: %s\n", violation.c_str());
  }
  for (const auto& outcome : run.outcomes) {
    std::printf("  expect %-12s : %s (%s)\n", to_string(outcome.expectation).c_str(),
                outcome.satisfied ? "ok" : "FAILED", outcome.detail.c_str());
  }
  if (!run.violations.empty()) return 4;
  return run.all_satisfied ? 0 : 1;
}
