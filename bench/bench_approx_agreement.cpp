// E4 — Approximate agreement: per-iteration contraction factor and
// iterations-to-ε, id-only vs. the classical known-f algorithm. Paper claim
// (Theorem 4 + §Discussion): range at least halves per iteration and the
// convergence rate matches the known-f algorithm.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>

#include "core/approx_agreement.hpp"
#include "harness/runner.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

std::vector<double> spread_inputs(std::size_t n, double width) {
  std::vector<double> inputs;
  for (std::size_t i = 0; i < n; ++i) {
    inputs.push_back(width * static_cast<double>(i) / static_cast<double>(n - 1));
  }
  return inputs;
}

void BM_IdOnlyApprox(benchmark::State& state) {
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  const auto n_byz = static_cast<std::size_t>(state.range(1));
  const int iterations = 10;
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = n_byz;
  config.adversary = n_byz == 0 ? AdversaryKind::kNone : AdversaryKind::kExtreme;
  const auto inputs = spread_inputs(n_correct, 1024.0);
  ApproxRun last;
  for (auto _ : state) {
    config.seed += 1;
    last = run_approx_agreement(config, inputs, iterations);
    benchmark::DoNotOptimize(last.output_range);
  }
  // Geometric-mean contraction per iteration.
  const double total = last.range_per_iteration.back() / last.input_range;
  state.counters["contraction"] = std::pow(total, 1.0 / iterations);
  state.counters["final_over_initial"] = total;
  state.counters["within_range"] = last.within_input_range ? 1 : 0;
  state.counters["msgs_per_iter"] =
      static_cast<double>(last.messages) / static_cast<double>(iterations);
}
BENCHMARK(BM_IdOnlyApprox)
    ->Args({7, 0})->Args({7, 2})->Args({13, 4})->Args({25, 8})->Args({49, 16})
    ->Unit(benchmark::kMicrosecond);

void BM_KnownFApprox(benchmark::State& state) {
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<std::size_t>(state.range(1));
  const int iterations = 10;
  const auto inputs = spread_inputs(n_correct, 1024.0);
  ApproxRun last;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    seed += 1;
    last = run_known_f_approx(n_correct, f, inputs, iterations, seed);
    benchmark::DoNotOptimize(last.output_range);
  }
  const double total = last.range_per_iteration.back() / last.input_range;
  state.counters["contraction"] = std::pow(total, 1.0 / iterations);
  state.counters["final_over_initial"] = total;
  state.counters["within_range"] = last.within_input_range ? 1 : 0;
  state.counters["msgs_per_iter"] =
      static_cast<double>(last.messages) / static_cast<double>(iterations);
}
BENCHMARK(BM_KnownFApprox)
    ->Args({7, 0})->Args({7, 2})->Args({13, 4})->Args({25, 8})->Args({49, 16})
    ->Unit(benchmark::kMicrosecond);

void BM_IterationsToEpsilon(benchmark::State& state) {
  // How many iterations until the correct range falls below ε = 1e-6 of the
  // initial width — both algorithms should need the same count (≈ log2).
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  const int iterations = 36;
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = 2;
  config.adversary = AdversaryKind::kExtreme;
  const auto inputs = spread_inputs(n_correct, 1.0);
  int iters_unknown = 0;
  int iters_known = 0;
  for (auto _ : state) {
    config.seed += 1;
    const auto unknown = run_approx_agreement(config, inputs, iterations);
    const auto known = run_known_f_approx(n_correct, 2, inputs, iterations, config.seed);
    auto first_below = [](const std::vector<double>& ranges, double eps) {
      for (std::size_t i = 0; i < ranges.size(); ++i) {
        if (ranges[i] < eps) return static_cast<int>(i) + 1;
      }
      return static_cast<int>(ranges.size());
    };
    iters_unknown = first_below(unknown.range_per_iteration, 1e-6);
    iters_known = first_below(known.range_per_iteration, 1e-6);
    benchmark::DoNotOptimize(iters_unknown);
  }
  state.counters["iters_idonly"] = iters_unknown;
  state.counters["iters_knownf"] = iters_known;
}
BENCHMARK(BM_IterationsToEpsilon)->Arg(7)->Arg(13)->Arg(25)
    ->Unit(benchmark::kMillisecond);

void BM_DynamicChurn(benchmark::State& state) {
  // One joiner per round (in-range values), one leaver per round — the
  // §Dynamic Networks setting. Counter: contraction achieved over 12 rounds
  // of continuous churn.
  const auto n_stable = static_cast<std::size_t>(state.range(0));
  double contraction = 0;
  for (auto _ : state) {
    SyncSimulator sim;
    std::vector<NodeId> stable;
    for (std::size_t i = 0; i < n_stable; ++i) {
      stable.push_back(10 * (i + 1));
      sim.add_process(std::make_unique<ApproxAgreementProcess>(
          stable.back(), static_cast<double>(i), /*iterations=*/40));
    }
    NodeId churn_id = 5000;
    std::optional<NodeId> leaver;
    for (int round = 0; round < 12; ++round) {
      if (leaver.has_value()) sim.remove_process(*leaver);
      sim.add_process(std::make_unique<ApproxAgreementProcess>(
          ++churn_id, static_cast<double>(n_stable) / 2.0, 40));
      leaver = churn_id;
      sim.step();
    }
    double lo = 1e300;
    double hi = -1e300;
    for (NodeId id : stable) {
      const double v = sim.get<ApproxAgreementProcess>(id)->value();
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    contraction = (hi - lo) / static_cast<double>(n_stable - 1);
    benchmark::DoNotOptimize(contraction);
  }
  state.counters["final_over_initial"] = contraction;
}
BENCHMARK(BM_DynamicChurn)->Arg(7)->Arg(13)->Arg(25)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace idonly

BENCHMARK_MAIN();
