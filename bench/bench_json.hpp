// Shared formatting for the machine-readable BENCH_*.json artifacts.
//
// Rates are rounded to fixed precision before emission: the artifacts are
// committed and diffed by the CI perf gate, and the default ostream
// formatting (6 significant digits, switching to scientific notation past
// 1e6) makes numeric comparison and human review needlessly noisy.
#pragma once

#include <cstdio>
#include <string>

namespace idonly::bench {

/// A rate (rounds/sec, deliveries/sec, ...) as a fixed three-decimal JSON
/// number, e.g. 12345.678. Never scientific notation, locale-independent.
inline std::string fixed3(double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

}  // namespace idonly::bench
