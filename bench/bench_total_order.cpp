// E7 — Dynamic total ordering: chain growth rate, finality lag (Theorem 6's
// 5|S|/2 + 2 envelope), and behaviour under churn and Byzantine presence.
#include <benchmark/benchmark.h>

#include <memory>

#include "adversary/strategies.hpp"
#include "core/total_order.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

struct LedgerResult {
  std::size_t chain_len = 0;
  Round finality_lag = 0;  // protocol round minus finalized_upto at the end
  std::uint64_t messages = 0;
};

LedgerResult run_ledger(std::size_t founders, std::size_t byzantine, int event_rounds,
                        bool churn) {
  SyncSimulator sim;
  std::vector<NodeId> ids;
  for (std::size_t i = 0; i < founders; ++i) {
    ids.push_back(100 + 13 * i);
    sim.add_process(std::make_unique<TotalOrderProcess>(ids.back(), /*founder=*/true));
  }
  for (std::size_t i = 0; i < byzantine; ++i) {
    sim.add_process(std::make_unique<SilentAdversary>(9000 + i));
  }
  sim.run_rounds(3);
  auto node = [&sim](NodeId id) { return sim.get<TotalOrderProcess>(id); };
  for (int i = 0; i < event_rounds; ++i) {
    node(ids[static_cast<std::size_t>(i) % ids.size()])->submit_event(static_cast<double>(i));
    if (churn && i == event_rounds / 2) {
      sim.add_process(std::make_unique<TotalOrderProcess>(777, /*founder=*/false));
    }
    sim.step();
  }
  sim.run_rounds(5 * static_cast<Round>(founders) / 2 + 12);
  LedgerResult result;
  result.chain_len = node(ids[0])->chain().size();
  result.finality_lag = node(ids[0])->protocol_round() - node(ids[0])->finalized_upto();
  result.messages = sim.metrics().messages.total_delivered();
  return result;
}

void BM_Ledger_Throughput(benchmark::State& state) {
  const auto founders = static_cast<std::size_t>(state.range(0));
  const int event_rounds = 15;
  LedgerResult result;
  for (auto _ : state) {
    result = run_ledger(founders, 0, event_rounds, /*churn=*/false);
    benchmark::DoNotOptimize(result.chain_len);
  }
  state.counters["chain_len"] = static_cast<double>(result.chain_len);
  state.counters["events_submitted"] = event_rounds;
  state.counters["finality_lag"] = static_cast<double>(result.finality_lag);
  state.counters["finality_bound"] = 5.0 * static_cast<double>(founders) / 2.0 + 2.0;
  state.counters["messages"] = static_cast<double>(result.messages);
}
BENCHMARK(BM_Ledger_Throughput)->Arg(4)->Arg(5)->Arg(7)->Arg(10)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Ledger_WithByzantine(benchmark::State& state) {
  const auto founders = static_cast<std::size_t>(state.range(0));
  const auto byz = static_cast<std::size_t>(state.range(1));
  LedgerResult result;
  for (auto _ : state) {
    result = run_ledger(founders, byz, 12, /*churn=*/false);
    benchmark::DoNotOptimize(result.chain_len);
  }
  state.counters["chain_len"] = static_cast<double>(result.chain_len);
  state.counters["finality_lag"] = static_cast<double>(result.finality_lag);
}
BENCHMARK(BM_Ledger_WithByzantine)->Args({7, 2})->Args({10, 3})
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_Ledger_WithChurn(benchmark::State& state) {
  const auto founders = static_cast<std::size_t>(state.range(0));
  LedgerResult result;
  for (auto _ : state) {
    result = run_ledger(founders, 0, 16, /*churn=*/true);
    benchmark::DoNotOptimize(result.chain_len);
  }
  state.counters["chain_len"] = static_cast<double>(result.chain_len);
  state.counters["finality_lag"] = static_cast<double>(result.finality_lag);
}
BENCHMARK(BM_Ledger_WithChurn)->Arg(5)->Arg(7)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace
}  // namespace idonly

BENCHMARK_MAIN();
