// Parallel round-engine benchmark with a machine-readable artifact: steps
// reliable broadcast (the broadcast-heaviest protocol, O(n²) message visits
// per round) at large n across a sweep of thread counts, and writes
// BENCH_parallel.json with rounds/sec per (n, threads) cell.
//
// Two numbers matter:
//   * rounds/sec at threads=1 — the hot-path container overhaul (flat quorum
//     sets, dispatch arena, cached member ids) against the committed
//     pre-overhaul baseline;
//   * the threads>1 cells — the deterministic parallel engine's scaling on
//     the machine at hand (ideal on multi-core; a wash on one core, by
//     design: the merge phase is sequential and the trace is bit-identical
//     at every thread count — that invariant is enforced by
//     test_parallel_exec, not here).
//
// Usage: bench_parallel [output.json]   (default: BENCH_parallel.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/reliable_broadcast.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

using Clock = std::chrono::steady_clock;

constexpr Round kRoundsPerRun = 8;
constexpr double kMinSeconds = 1.5;

struct Cell {
  std::size_t n = 0;
  unsigned threads = 0;
  /// rounds/sec at the pre-overhaul commit, threads=1, RelWithDebInfo, dev
  /// machine (0 = no baseline recorded for this cell).
  double seed_baseline_rounds_per_sec = 0;
  double rounds_per_sec = 0;
  double speedup_vs_seed = 0;
};

void run_cell(Cell& cell) {
  std::uint64_t rounds = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  std::uint64_t seed = 0;
  while (elapsed < kMinSeconds) {
    seed += 1;  // fresh simulator per run; seed only varies construction order
    SyncSimulator sim;
    sim.set_threads(cell.threads);
    for (std::size_t i = 0; i < cell.n; ++i) {
      sim.add_process(std::make_unique<ReliableBroadcastProcess>(
          static_cast<NodeId>(i + 1), /*source=*/1, Value::real(42.0)));
    }
    sim.run_rounds(kRoundsPerRun);
    rounds += kRoundsPerRun;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  cell.rounds_per_sec = static_cast<double>(rounds) / elapsed;
  cell.speedup_vs_seed = cell.seed_baseline_rounds_per_sec > 0
                             ? cell.rounds_per_sec / cell.seed_baseline_rounds_per_sec
                             : 0;
}

bool write_json(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"parallel\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\n"
        << "      \"n\": " << c.n << ",\n"
        << "      \"threads\": " << c.threads << ",\n"
        << "      \"rounds_per_sec\": " << bench::fixed3(c.rounds_per_sec) << ",\n"
        << "      \"seed_baseline_rounds_per_sec\": "
        << bench::fixed3(c.seed_baseline_rounds_per_sec) << ",\n"
        << "      \"speedup_vs_seed\": " << bench::fixed3(c.speedup_vs_seed) << "\n"
        << "    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

}  // namespace
}  // namespace idonly

int main(int argc, char** argv) {
  using namespace idonly;
  const std::string path = argc > 1 ? argv[1] : "BENCH_parallel.json";

  // threads=1 baselines: pre-overhaul rounds/sec on the dev machine
  // (reliable broadcast, 8 rounds/run, RelWithDebInfo). Threaded cells have
  // no seed baseline — the engine did not exist.
  std::vector<Cell> cells;
  for (const std::size_t n : {200UL, 400UL, 800UL}) {
    for (const unsigned threads : {1U, 2U, 4U, 8U}) {
      Cell cell;
      cell.n = n;
      cell.threads = threads;
      if (threads == 1) {
        cell.seed_baseline_rounds_per_sec = n == 200 ? 913.390 : n == 400 ? 248.920 : 0;
      }
      cells.push_back(cell);
    }
  }

  for (Cell& cell : cells) {
    run_cell(cell);
    std::printf("rb n=%zu threads=%u: %.2f rounds/sec (%.2fx vs seed)\n", cell.n, cell.threads,
                cell.rounds_per_sec, cell.speedup_vs_seed);
  }

  if (!write_json(path, cells)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
