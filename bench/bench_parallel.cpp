// Parallel round-engine benchmark with a machine-readable artifact: steps
// reliable broadcast (the broadcast-heaviest protocol, O(n²) message visits
// per round) at large n across a sweep of thread counts, and writes
// BENCH_parallel.json with rounds/sec per (n, threads) cell.
//
// Two numbers matter:
//   * rounds/sec at threads=1 — the hot-path container overhaul (flat quorum
//     sets, dispatch arena, cached member ids) against the committed
//     pre-overhaul baseline (`speedup_vs_seed`; the per-n baseline is
//     carried into every cell so threaded rows report it too);
//   * `speedup_vs_1t` — the lane-merged two-phase engine's scaling against
//     the threads=1 cell at the same n, on the machine at hand. Both the
//     outbox fill and the destination-lane merge run in parallel, so this
//     should track core count; the trace stays bit-identical at every
//     thread count — that invariant is enforced by test_parallel_exec, not
//     here.
//
// Usage: bench_parallel [output.json]   (default: BENCH_parallel.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "core/reliable_broadcast.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

using Clock = std::chrono::steady_clock;

constexpr Round kRoundsPerRun = 8;
constexpr double kMinSeconds = 1.5;

struct Cell {
  std::size_t n = 0;
  unsigned threads = 0;
  /// rounds/sec at the pre-overhaul commit, threads=1, RelWithDebInfo, dev
  /// machine (0 = no baseline recorded for this cell).
  double seed_baseline_rounds_per_sec = 0;
  double rounds_per_sec = 0;
  double speedup_vs_seed = 0;
  /// Scaling against the threads=1 cell at the same n (1.0 for that cell).
  double speedup_vs_1t = 0;
  /// Wire cost per protocol round (deterministic per n; thread-count
  /// invariant — the lane merge must not change what is delivered).
  double bytes_per_round = 0;
  double syscalls_per_round = 0;  ///< coalesced slab datagrams (mailbox model)
};

void run_cell(Cell& cell) {
  std::uint64_t rounds = 0;
  std::uint64_t bytes = 0;
  std::uint64_t slab_sends = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  std::uint64_t seed = 0;
  while (elapsed < kMinSeconds) {
    seed += 1;  // fresh simulator per run; seed only varies construction order
    SyncSimulator sim;
    sim.set_threads(cell.threads);
    for (std::size_t i = 0; i < cell.n; ++i) {
      sim.add_process(std::make_unique<ReliableBroadcastProcess>(
          static_cast<NodeId>(i + 1), /*source=*/1, Value::real(42.0)));
    }
    sim.run_rounds(kRoundsPerRun);
    rounds += kRoundsPerRun;
    bytes += sim.metrics().fanout.bytes_delivered;
    slab_sends += sim.metrics().fanout.slab_sends;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  cell.rounds_per_sec = static_cast<double>(rounds) / elapsed;
  cell.speedup_vs_seed = cell.seed_baseline_rounds_per_sec > 0
                             ? cell.rounds_per_sec / cell.seed_baseline_rounds_per_sec
                             : 0;
  cell.bytes_per_round = static_cast<double>(bytes) / static_cast<double>(rounds);
  cell.syscalls_per_round = static_cast<double>(slab_sends) / static_cast<double>(rounds);
}

bool write_json(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"parallel\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\n"
        << "      \"n\": " << c.n << ",\n"
        << "      \"threads\": " << c.threads << ",\n"
        << "      \"rounds_per_sec\": " << bench::fixed3(c.rounds_per_sec) << ",\n"
        << "      \"seed_baseline_rounds_per_sec\": "
        << bench::fixed3(c.seed_baseline_rounds_per_sec) << ",\n"
        << "      \"speedup_vs_seed\": " << bench::fixed3(c.speedup_vs_seed) << ",\n"
        << "      \"speedup_vs_1t\": " << bench::fixed3(c.speedup_vs_1t) << ",\n"
        << "      \"bytes_per_round\": " << bench::fixed3(c.bytes_per_round) << ",\n"
        << "      \"syscalls_per_round\": " << bench::fixed3(c.syscalls_per_round) << "\n"
        << "    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

}  // namespace
}  // namespace idonly

int main(int argc, char** argv) {
  using namespace idonly;
  const std::string path = argc > 1 ? argv[1] : "BENCH_parallel.json";

  // Per-n seed baselines: pre-overhaul rounds/sec on the dev machine
  // (reliable broadcast, threads=1, 8 rounds/run, RelWithDebInfo), carried
  // into every cell of that n so threaded rows compare against it too
  // (0 = no baseline recorded — n=800 predates the artifact).
  std::vector<Cell> cells;
  for (const std::size_t n : {200UL, 400UL, 800UL}) {
    const double seed_baseline = n == 200 ? 913.390 : n == 400 ? 248.920 : 0;
    for (const unsigned threads : {1U, 2U, 4U, 8U}) {
      Cell cell;
      cell.n = n;
      cell.threads = threads;
      cell.seed_baseline_rounds_per_sec = seed_baseline;
      cells.push_back(cell);
    }
  }

  std::map<std::size_t, double> one_thread_rate;  // n → threads=1 rounds/sec
  for (Cell& cell : cells) {
    run_cell(cell);
    if (cell.threads == 1) one_thread_rate[cell.n] = cell.rounds_per_sec;
    const double base_1t = one_thread_rate[cell.n];
    cell.speedup_vs_1t = base_1t > 0 ? cell.rounds_per_sec / base_1t : 0;
    std::printf("rb n=%zu threads=%u: %.2f rounds/sec (%.2fx vs seed, %.2fx vs 1t)\n", cell.n,
                cell.threads, cell.rounds_per_sec, cell.speedup_vs_seed, cell.speedup_vs_1t);
  }

  if (!write_json(path, cells)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
