// Distributed shard-engine benchmark with a machine-readable artifact:
// drives the consensus protocol (broadcast-heavy, superquadratic message
// visits per round, but bounded-size frames) through run_dist() across an
// (n, shards) sweep and writes BENCH_dist.json with rounds/sec per cell.
// Consensus, not totalorder: totalorder chains grow every round, so its
// per-round byte volume is O(n³·r) and a bench-sized n wedges the fleet on
// memory alone — consensus rounds cost the same no matter how many have run.
//
// Each repetition is a FULL fleet lifecycle — fork the workers, run the
// scripted rounds, collect results, reap — so the figure honestly includes
// the per-run fork/handshake overhead, not just the steady-state round rate.
// `speedup_vs_1shard` reports the fleet's scaling against the shards=1 cell
// at the same n on the machine at hand; on a single-core runner it hovers
// near (or below) 1.0, which is why the perf-smoke gate treats it as
// informational and self-skips scaling checks there. The run itself — and
// its canonical trace — is bit-identical at every shard count; that
// invariant is enforced by test_dist and the CI dist-smoke job, not here.
//
// Usage: bench_dist [output.json]   (default: BENCH_dist.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "dist/shard_coordinator.hpp"

namespace idonly {
namespace {

using Clock = std::chrono::steady_clock;

constexpr Round kMaxRounds = 40;  // decision lands well before this
constexpr double kMinSeconds = 1.0;

struct Cell {
  std::size_t n = 0;
  std::uint32_t shards = 0;
  double rounds_per_sec = 0;
  /// Scaling against the shards=1 cell at the same n (1.0 for that cell).
  double speedup_vs_1shard = 0;
};

std::string make_script(std::size_t n) {
  return "protocol consensus\nnodes " + std::to_string(n) +
         "\ninputs 0,1\nseed 3\nmax-rounds " + std::to_string(kMaxRounds) +
         "\nexpect termination\n";
}

bool run_cell(Cell& cell) {
  DistConfig config;
  config.script_text = make_script(cell.n);
  config.shards = cell.shards;
  std::uint64_t rounds = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  while (elapsed < kMinSeconds) {
    const DistRun run = run_dist(config);
    if (!run.infra_ok) {
      std::fprintf(stderr, "error: %s\n", run.infra_error.c_str());
      return false;
    }
    rounds += static_cast<std::uint64_t>(run.script.rounds);
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  cell.rounds_per_sec = static_cast<double>(rounds) / elapsed;
  return true;
}

bool write_json(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"dist\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\n"
        << "      \"n\": " << c.n << ",\n"
        << "      \"shards\": " << c.shards << ",\n"
        << "      \"rounds_per_sec\": " << bench::fixed3(c.rounds_per_sec) << ",\n"
        << "      \"speedup_vs_1shard\": " << bench::fixed3(c.speedup_vs_1shard) << "\n"
        << "    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

}  // namespace
}  // namespace idonly

int main(int argc, char** argv) {
  using namespace idonly;
  const std::string path = argc > 1 ? argv[1] : "BENCH_dist.json";

  std::vector<Cell> cells;
  for (const std::size_t n : {64UL, 128UL, 256UL}) {
    for (const std::uint32_t shards : {1U, 2U, 4U}) {
      Cell cell;
      cell.n = n;
      cell.shards = shards;
      cells.push_back(cell);
    }
  }

  std::map<std::size_t, double> one_shard_rate;  // n → shards=1 rounds/sec
  for (Cell& cell : cells) {
    if (!run_cell(cell)) return 1;
    if (cell.shards == 1) one_shard_rate[cell.n] = cell.rounds_per_sec;
    const double base = one_shard_rate[cell.n];
    cell.speedup_vs_1shard = base > 0 ? cell.rounds_per_sec / base : 0;
    std::printf("consensus n=%zu shards=%u: %.2f rounds/sec (%.2fx vs 1 shard)\n", cell.n,
                cell.shards, cell.rounds_per_sec, cell.speedup_vs_1shard);
  }

  if (!write_json(path, cells)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
