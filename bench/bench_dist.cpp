// Distributed shard-engine benchmark with a machine-readable artifact:
// drives the consensus protocol (broadcast-heavy, superquadratic message
// visits per round, but bounded-size frames) through run_dist() across an
// (n, shards, topology) sweep and writes BENCH_dist.json with rounds/sec and
// receive-stall per cell. Consensus, not totalorder: totalorder chains grow
// every round, so its per-round byte volume is O(n³·r) and a bench-sized n
// wedges the fleet on memory alone — consensus rounds cost the same no
// matter how many have run.
//
// Each repetition is a FULL fleet lifecycle — fork the workers, run the
// scripted rounds, collect results, reap — so the figure honestly includes
// the per-run fork/handshake overhead, not just the steady-state round rate.
// Columns:
//   * `speedup_vs_1shard` — scaling against the shards=1 cell at the same
//     (n, topology); on a single-core runner it hovers near (or below) 1.0,
//     which is why the perf-smoke gate treats it as informational and
//     self-skips scaling checks there.
//   * `recv_stall_ms_per_round` — fleet-total milliseconds workers spent
//     BLOCKED waiting for cross-shard traffic, per executed round. This is
//     the figure the mesh data plane exists to shrink: in relay mode it is
//     the wait for the coordinator's store-and-forward kDeliver; in mesh
//     mode only the genuine poll-waits for a peer slab count. The perf-smoke
//     gate checks it lower-is-better, self-skipping on single-core runners
//     where the wait is scheduling noise.
// The run itself — and its canonical trace — is bit-identical at every shard
// count and in both topologies; that invariant is enforced by test_dist and
// the CI dist-mesh-smoke job, not here.
//
// Usage: bench_dist [output.json]   (default: BENCH_dist.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.hpp"
#include "dist/shard_coordinator.hpp"

namespace idonly {
namespace {

using Clock = std::chrono::steady_clock;

constexpr Round kMaxRounds = 40;  // decision lands well before this
constexpr double kMinSeconds = 1.0;

struct Cell {
  std::size_t n = 0;
  std::uint32_t shards = 0;
  bool mesh = false;
  double rounds_per_sec = 0;
  /// Scaling against the shards=1 cell at the same (n, topology).
  double speedup_vs_1shard = 0;
  /// Fleet-total blocked-receive milliseconds per executed round.
  double recv_stall_ms_per_round = 0;
};

std::string make_script(std::size_t n) {
  return "protocol consensus\nnodes " + std::to_string(n) +
         "\ninputs 0,1\nseed 3\nmax-rounds " + std::to_string(kMaxRounds) +
         "\nexpect termination\n";
}

bool run_cell(Cell& cell) {
  DistConfig config;
  config.script_text = make_script(cell.n);
  config.shards = cell.shards;
  config.mesh = cell.mesh;
  std::uint64_t rounds = 0;
  std::uint64_t stall_ns = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  while (elapsed < kMinSeconds) {
    const DistRun run = run_dist(config);
    if (!run.infra_ok) {
      std::fprintf(stderr, "error: %s\n", run.infra_error.c_str());
      return false;
    }
    rounds += static_cast<std::uint64_t>(run.script.rounds);
    stall_ns += run.metrics.overlap.recv_stall_ns;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }
  cell.rounds_per_sec = static_cast<double>(rounds) / elapsed;
  cell.recv_stall_ms_per_round =
      rounds > 0 ? static_cast<double>(stall_ns) / 1e6 / static_cast<double>(rounds) : 0;
  return true;
}

bool write_json(const std::string& path, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"dist\",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\n"
        << "      \"n\": " << c.n << ",\n"
        << "      \"shards\": " << c.shards << ",\n"
        << "      \"mesh\": " << (c.mesh ? "true" : "false") << ",\n"
        << "      \"rounds_per_sec\": " << bench::fixed3(c.rounds_per_sec) << ",\n"
        << "      \"speedup_vs_1shard\": " << bench::fixed3(c.speedup_vs_1shard) << ",\n"
        << "      \"recv_stall_ms_per_round\": " << bench::fixed3(c.recv_stall_ms_per_round)
        << "\n"
        << "    }" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

}  // namespace
}  // namespace idonly

int main(int argc, char** argv) {
  using namespace idonly;
  const std::string path = argc > 1 ? argv[1] : "BENCH_dist.json";

  std::vector<Cell> cells;
  for (const std::size_t n : {64UL, 128UL, 256UL}) {
    for (const std::uint32_t shards : {1U, 2U, 4U}) {
      for (const bool mesh : {true, false}) {
        Cell cell;
        cell.n = n;
        cell.shards = shards;
        cell.mesh = mesh;
        cells.push_back(cell);
      }
    }
  }

  // (n, topology) → shards=1 rounds/sec, the speedup denominator.
  std::map<std::pair<std::size_t, bool>, double> one_shard_rate;
  for (Cell& cell : cells) {
    if (!run_cell(cell)) return 1;
    if (cell.shards == 1) one_shard_rate[{cell.n, cell.mesh}] = cell.rounds_per_sec;
    const double base = one_shard_rate[{cell.n, cell.mesh}];
    cell.speedup_vs_1shard = base > 0 ? cell.rounds_per_sec / base : 0;
    std::printf(
        "consensus n=%zu shards=%u %s: %.2f rounds/sec (%.2fx vs 1 shard, "
        "stall %.3f ms/round)\n",
        cell.n, cell.shards, cell.mesh ? "mesh" : "relay", cell.rounds_per_sec,
        cell.speedup_vs_1shard, cell.recv_stall_ms_per_round);
  }

  if (!write_json(path, cells)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
