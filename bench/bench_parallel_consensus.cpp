// E8 — Parallel consensus: rounds and messages vs. the number of concurrent
// instances (Theorem 5: termination stays O(f) regardless of instance
// count; message cost scales linearly with instances).
#include <benchmark/benchmark.h>

#include "harness/runner.hpp"

namespace idonly {
namespace {

void BM_Parallel_InstanceSweep(benchmark::State& state) {
  const auto instances = static_cast<std::size_t>(state.range(0));
  ScenarioConfig config;
  config.n_correct = 7;
  config.n_byzantine = 2;
  config.adversary = AdversaryKind::kNoise;
  std::vector<std::vector<InputPair>> inputs(config.n_correct);
  for (std::size_t i = 0; i < config.n_correct; ++i) {
    for (std::size_t k = 0; k < instances; ++k) {
      inputs[i].push_back({.id = 100 + k, .value = Value::real(static_cast<double>(k))});
    }
  }
  ParallelRun last;
  for (auto _ : state) {
    config.seed += 1;
    last = run_parallel_consensus(config, inputs);
    benchmark::DoNotOptimize(last.agreement);
  }
  state.counters["rounds"] = static_cast<double>(last.rounds);
  state.counters["messages"] = static_cast<double>(last.messages);
  state.counters["msgs_per_instance"] =
      static_cast<double>(last.messages) / static_cast<double>(instances);
  state.counters["decided_pairs"] = static_cast<double>(last.common_output.size());
}
BENCHMARK(BM_Parallel_InstanceSweep)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)->Arg(32)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

void BM_Parallel_PartialAwareness(benchmark::State& state) {
  // Half the nodes know each pair — exercises the adoption machinery at
  // scale.
  const auto instances = static_cast<std::size_t>(state.range(0));
  ScenarioConfig config;
  config.n_correct = 9;
  config.n_byzantine = 2;
  config.adversary = AdversaryKind::kSilent;
  std::vector<std::vector<InputPair>> inputs(config.n_correct);
  for (std::size_t k = 0; k < instances; ++k) {
    for (std::size_t i = k % 2; i < config.n_correct; i += 2) {
      inputs[i].push_back({.id = 500 + k, .value = Value::real(static_cast<double>(k))});
    }
  }
  ParallelRun last;
  for (auto _ : state) {
    config.seed += 1;
    last = run_parallel_consensus(config, inputs);
    benchmark::DoNotOptimize(last.agreement);
  }
  state.counters["rounds"] = static_cast<double>(last.rounds);
  state.counters["agreement"] = last.agreement ? 1 : 0;
}
BENCHMARK(BM_Parallel_PartialAwareness)->Arg(2)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace
}  // namespace idonly

BENCHMARK_MAIN();
