// Chaos benchmark with a machine-readable artifact: consensus (A3, nine
// correct nodes, mixed inputs) driven through deterministic burst-loss
// phases at 5 / 15 / 30 % drop probability, against a clean baseline.
//
// Two questions, one number each:
//   * rounds/sec — does the chaos layer slow the engine down? (The verdicts
//     are pure hash mixes; routing goes per-receiver when a schedule is
//     installed, so some cost is expected and this tracks it.)
//   * recovery rounds — how many EXTRA rounds does consensus need to
//     terminate because of the loss burst, averaged over a seed sweep. The
//     burst spans rounds 2-11; with n > 3f every run still terminates, it
//     just spends more 5-round phases re-converging.
//
// Usage: bench_chaos [output.json]   (default: BENCH_chaos.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "common/chaos.hpp"
#include "core/consensus.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kNodes = 9;
constexpr Round kMaxRounds = 500;
constexpr std::uint64_t kSeeds = 20;

struct LossResult {
  double loss = 0;
  double rounds_per_sec = 0;
  double mean_rounds_to_decide = 0;
  double mean_recovery_rounds = 0;  ///< extra rounds vs the clean baseline
  std::uint64_t faults_injected = 0;
  bool all_terminated = true;
};

/// One consensus run; returns rounds executed (0 when it failed to finish).
Round run_once(std::uint64_t seed, double loss, std::uint64_t* faults) {
  SyncSimulator sim;
  std::shared_ptr<ChaosSchedule> chaos;
  if (loss > 0.0) {
    ChaosPhase burst;
    burst.first_round = 2;
    burst.last_round = 11;
    burst.drop = loss;
    chaos = std::make_shared<ChaosSchedule>(ChaosPlan{{burst}}, seed);
    sim.set_chaos(chaos);
  }
  for (std::size_t i = 0; i < kNodes; ++i) {
    sim.add_process(std::make_unique<ConsensusProcess>(
        static_cast<NodeId>(i + 1), Value::real(static_cast<double>(i % 2))));
  }
  const bool done = sim.run_until_all_correct_done(kMaxRounds);
  if (faults != nullptr && chaos != nullptr) {
    *faults += chaos->counters().total_faults().total();
  }
  return done ? sim.round() : 0;
}

LossResult run_loss_level(double loss, const std::vector<Round>& clean_rounds) {
  LossResult result;
  result.loss = loss;
  std::uint64_t total_rounds = 0;
  double total_recovery = 0;
  const auto start = Clock::now();
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Round rounds = run_once(seed, loss, &result.faults_injected);
    if (rounds == 0) {
      result.all_terminated = false;
      continue;
    }
    total_rounds += static_cast<std::uint64_t>(rounds);
    total_recovery += static_cast<double>(rounds - clean_rounds[seed - 1]);
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  result.rounds_per_sec = elapsed > 0 ? static_cast<double>(total_rounds) / elapsed : 0;
  result.mean_rounds_to_decide = static_cast<double>(total_rounds) / kSeeds;
  result.mean_recovery_rounds = total_recovery / kSeeds;
  return result;
}

int run(const char* path) {
  // Clean baseline per seed (loss 0): the subtrahend for recovery rounds.
  std::vector<Round> clean_rounds;
  std::uint64_t clean_total = 0;
  const auto clean_start = Clock::now();
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const Round rounds = run_once(seed, 0.0, nullptr);
    if (rounds == 0) {
      std::fprintf(stderr, "clean baseline failed to terminate (seed %llu)\n",
                   static_cast<unsigned long long>(seed));
      return 1;
    }
    clean_rounds.push_back(rounds);
    clean_total += static_cast<std::uint64_t>(rounds);
  }
  const double clean_elapsed =
      std::chrono::duration<double>(Clock::now() - clean_start).count();

  std::vector<LossResult> results;
  for (double loss : {0.05, 0.15, 0.30}) {
    results.push_back(run_loss_level(loss, clean_rounds));
  }

  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return 1;
  }
  out << "{\n  \"bench\": \"chaos\",\n";
  out << "  \"nodes\": " << kNodes << ",\n  \"seeds\": " << kSeeds << ",\n";
  out << "  \"burst_rounds\": \"2-11\",\n";
  out << "  \"clean\": {\"rounds_per_sec\": "
      << bench::fixed3(clean_elapsed > 0 ? static_cast<double>(clean_total) / clean_elapsed : 0)
      << ", \"mean_rounds_to_decide\": "
      << bench::fixed3(static_cast<double>(clean_total) / kSeeds) << "},\n";
  out << "  \"loss_levels\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LossResult& r = results[i];
    out << "    {\"loss\": " << bench::fixed3(r.loss)
        << ", \"rounds_per_sec\": " << bench::fixed3(r.rounds_per_sec)
        << ", \"mean_rounds_to_decide\": " << bench::fixed3(r.mean_rounds_to_decide)
        << ", \"mean_recovery_rounds\": " << bench::fixed3(r.mean_recovery_rounds)
        << ", \"faults_injected\": " << r.faults_injected
        << ", \"all_terminated\": " << (r.all_terminated ? "true" : "false") << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";

  std::printf("bench_chaos: clean %.1f rounds to decide;",
              static_cast<double>(clean_total) / kSeeds);
  for (const LossResult& r : results) {
    std::printf(" %d%% loss -> +%.1f recovery rounds%s", static_cast<int>(r.loss * 100),
                r.mean_recovery_rounds, r.all_terminated ? "" : " (NON-TERMINATION!)");
  }
  std::printf("; wrote %s\n", path);
  return 0;
}

}  // namespace
}  // namespace idonly

int main(int argc, char** argv) {
  return idonly::run(argc > 1 ? argv[1] : "BENCH_chaos.json");
}
