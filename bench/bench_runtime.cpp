// Runtime-layer microbenchmarks: wire codec throughput, in-memory hub
// fan-out, and the driver's per-round overhead — the numbers that size a
// real deployment's round duration D.
#include <benchmark/benchmark.h>

#include <memory>

#include "net/codec.hpp"
#include "runtime/inmemory_transport.hpp"
#include "runtime/round_driver.hpp"

namespace idonly {
namespace {

Message sample_message() {
  Message m;
  m.sender = 0xABCDEF;
  m.kind = MsgKind::kStrongPrefer;
  m.subject = 42;
  m.instance = 3;
  m.value = Value::real(1.25);
  m.round_tag = 9;
  return m;
}

void BM_CodecEncode(benchmark::State& state) {
  const Message m = sample_message();
  std::vector<std::byte> buffer;
  for (auto _ : state) {
    buffer.clear();
    encode(m, buffer);
    benchmark::DoNotOptimize(buffer.data());
  }
  state.counters["frame_bytes"] = static_cast<double>(buffer.size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecEncode);

void BM_CodecDecode(benchmark::State& state) {
  const auto frame = encode(sample_message());
  for (auto _ : state) {
    auto decoded = decode(frame);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecDecode);

void BM_CodecRejectGarbage(benchmark::State& state) {
  std::vector<std::byte> garbage(32, std::byte{0xA7});
  for (auto _ : state) {
    auto decoded = decode(garbage);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CodecRejectGarbage);

void BM_HubFanOut(benchmark::State& state) {
  const auto endpoints_count = static_cast<std::size_t>(state.range(0));
  InMemoryHub hub;
  std::vector<std::unique_ptr<InMemoryTransport>> endpoints;
  for (std::size_t i = 0; i < endpoints_count; ++i) endpoints.push_back(hub.make_endpoint());
  const auto frame = encode(sample_message());
  for (auto _ : state) {
    endpoints[0]->broadcast(frame);
    for (auto& endpoint : endpoints) benchmark::DoNotOptimize(endpoint->drain());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(endpoints_count));
}
BENCHMARK(BM_HubFanOut)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_HubFanOutViews(benchmark::State& state) {
  // Same fan-out through drain_views(): the broadcast materialises one
  // ref-counted frame and every endpoint receives a view — the per-endpoint
  // cost is a reference bump, independent of frame size.
  const auto endpoints_count = static_cast<std::size_t>(state.range(0));
  InMemoryHub hub;
  std::vector<std::unique_ptr<InMemoryTransport>> endpoints;
  for (std::size_t i = 0; i < endpoints_count; ++i) endpoints.push_back(hub.make_endpoint());
  const auto frame = encode(sample_message());
  for (auto _ : state) {
    endpoints[0]->broadcast(frame);
    for (auto& endpoint : endpoints) benchmark::DoNotOptimize(endpoint->drain_views());
  }
  state.counters["bytes_delivered"] = static_cast<double>(hub.fanout().bytes_delivered);
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(endpoints_count));
}
BENCHMARK(BM_HubFanOutViews)->Arg(64)->Arg(256);

}  // namespace
}  // namespace idonly

BENCHMARK_MAIN();
