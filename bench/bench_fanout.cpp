// Fan-out benchmark with a machine-readable artifact: runs broadcast-heavy
// reliable-broadcast configs at large n (both RB backends) plus the runtime
// hub fan-out, and writes BENCH_fanout.json with per-config rounds/sec,
// deliveries/sec, and the wire-cost figures (bytes/round, syscalls/round,
// and the slab-coalescing factor that CI holds to an absolute floor).
// Each entry carries the seed-commit baseline (measured on the dev machine
// before the mailbox layer existed) so the speedup is tracked in-tree.
//
// Usage: bench_fanout [output.json]   (default: BENCH_fanout.json)
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.hpp"
#include "harness/runner.hpp"
#include "net/codec.hpp"
#include "runtime/inmemory_transport.hpp"

namespace idonly {
namespace {

using Clock = std::chrono::steady_clock;

struct FanoutConfig {
  std::size_t n_correct = 0;
  std::size_t n_byz = 0;
  /// rounds/sec at the pre-mailbox seed commit, same machine + build type.
  double seed_baseline_rounds_per_sec = 0;
  /// RB state machine (backend ablation rows set kImbs).
  RbBackendKind backend = RbBackendKind::kAlg1;
};

struct FanoutResult {
  FanoutConfig config;
  double rounds_per_sec = 0;
  double deliveries_per_sec = 0;
  double speedup_vs_seed = 0;
  /// Wire-cost figures, per protocol round (deterministic per config, so
  /// they gate at tight tolerance — see scripts/bench_gate.py).
  double bytes_per_round = 0;
  double syscalls_per_round = 0;           ///< coalesced slab datagrams
  double baseline_syscalls_per_round = 0;  ///< per-message sendto baseline
  /// deliveries / slab_sends — the factor the wire-slab coalescing saves;
  /// ~n for broadcast rounds. CI enforces an absolute floor on this.
  double syscall_coalescing_factor = 0;
};

FanoutResult run_config(const FanoutConfig& config) {
  constexpr Round kRoundsPerRun = 8;
  constexpr double kMinSeconds = 2.0;
  ScenarioConfig scenario;
  scenario.n_correct = config.n_correct;
  scenario.n_byzantine = config.n_byz;
  scenario.adversary = config.n_byz == 0 ? AdversaryKind::kNone : AdversaryKind::kForgedEcho;

  std::uint64_t rounds = 0;
  std::uint64_t deliveries = 0;
  FanoutCounters fanout;
  const auto start = Clock::now();
  double elapsed = 0;
  while (elapsed < kMinSeconds) {
    scenario.seed += 1;
    const ReliableBroadcastRun run =
        run_reliable_broadcast(scenario, 42.0, false, kRoundsPerRun, config.backend);
    rounds += kRoundsPerRun;
    deliveries += run.messages;  // per-recipient deliveries
    fanout += run.fanout;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }

  FanoutResult result;
  result.config = config;
  result.rounds_per_sec = static_cast<double>(rounds) / elapsed;
  result.deliveries_per_sec = static_cast<double>(deliveries) / elapsed;
  result.speedup_vs_seed = config.seed_baseline_rounds_per_sec > 0
                               ? result.rounds_per_sec / config.seed_baseline_rounds_per_sec
                               : 0;
  const auto per_round = [rounds](std::uint64_t total) {
    return rounds > 0 ? static_cast<double>(total) / static_cast<double>(rounds) : 0.0;
  };
  result.bytes_per_round = per_round(fanout.bytes_delivered);
  result.syscalls_per_round = per_round(fanout.slab_sends);
  result.baseline_syscalls_per_round = per_round(fanout.deliveries);
  result.syscall_coalescing_factor =
      fanout.slab_sends > 0
          ? static_cast<double>(fanout.deliveries) / static_cast<double>(fanout.slab_sends)
          : 0;
  return result;
}

struct HubResult {
  std::size_t endpoints = 0;
  double broadcasts_per_sec = 0;
  double deliveries_per_sec = 0;
  std::uint64_t unique_payloads = 0;
  std::uint64_t bytes_delivered = 0;
};

HubResult run_hub(std::size_t endpoint_count) {
  constexpr double kMinSeconds = 1.0;
  InMemoryHub hub;
  std::vector<std::unique_ptr<InMemoryTransport>> endpoints;
  endpoints.reserve(endpoint_count);
  for (std::size_t i = 0; i < endpoint_count; ++i) endpoints.push_back(hub.make_endpoint());

  Message msg;
  msg.sender = 7;
  msg.kind = MsgKind::kEcho;
  msg.value = Value::real(1.5);
  const auto frame = encode(msg);

  std::uint64_t broadcasts = 0;
  const auto start = Clock::now();
  double elapsed = 0;
  while (elapsed < kMinSeconds) {
    for (int burst = 0; burst < 64; ++burst) {
      endpoints[0]->broadcast(frame);
      broadcasts += 1;
      for (auto& endpoint : endpoints) {
        const auto views = endpoint->drain_views();
        if (views.empty()) std::abort();  // fan-out must reach every endpoint
      }
    }
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  }

  const FanoutCounters counters = hub.fanout();
  HubResult result;
  result.endpoints = endpoint_count;
  result.broadcasts_per_sec = static_cast<double>(broadcasts) / elapsed;
  result.deliveries_per_sec = static_cast<double>(counters.deliveries) / elapsed;
  result.unique_payloads = counters.unique_payloads;
  result.bytes_delivered = counters.bytes_delivered;
  return result;
}

bool write_json(const std::string& path, const std::vector<FanoutResult>& results,
                const std::vector<HubResult>& hub_results) {
  std::ofstream out(path);
  out << "{\n  \"benchmark\": \"fanout\",\n  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const FanoutResult& r = results[i];
    out << "    {\n"
        << "      \"n_correct\": " << r.config.n_correct << ",\n"
        << "      \"n_byzantine\": " << r.config.n_byz << ",\n"
        << "      \"rb_backend\": \"" << to_string(r.config.backend) << "\",\n"
        << "      \"rounds_per_sec\": " << bench::fixed3(r.rounds_per_sec) << ",\n"
        << "      \"deliveries_per_sec\": " << bench::fixed3(r.deliveries_per_sec) << ",\n"
        << "      \"bytes_per_round\": " << bench::fixed3(r.bytes_per_round) << ",\n"
        << "      \"syscalls_per_round\": " << bench::fixed3(r.syscalls_per_round) << ",\n"
        << "      \"baseline_syscalls_per_round\": "
        << bench::fixed3(r.baseline_syscalls_per_round) << ",\n"
        << "      \"syscall_coalescing_factor\": "
        << bench::fixed3(r.syscall_coalescing_factor) << ",\n"
        << "      \"seed_baseline_rounds_per_sec\": "
        << bench::fixed3(r.config.seed_baseline_rounds_per_sec) << ",\n"
        << "      \"speedup_vs_seed\": " << bench::fixed3(r.speedup_vs_seed) << "\n"
        << "    }" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"hub\": [\n";
  for (std::size_t i = 0; i < hub_results.size(); ++i) {
    const HubResult& r = hub_results[i];
    out << "    {\n"
        << "      \"endpoints\": " << r.endpoints << ",\n"
        << "      \"broadcasts_per_sec\": " << bench::fixed3(r.broadcasts_per_sec) << ",\n"
        << "      \"deliveries_per_sec\": " << bench::fixed3(r.deliveries_per_sec) << ",\n"
        << "      \"unique_payloads\": " << r.unique_payloads << ",\n"
        << "      \"bytes_delivered\": " << r.bytes_delivered << "\n"
        << "    }" << (i + 1 < hub_results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good();
}

}  // namespace
}  // namespace idonly

int main(int argc, char** argv) {
  using namespace idonly;
  const std::string path = argc > 1 ? argv[1] : "BENCH_fanout.json";

  // Seed baselines: pre-mailbox rounds/sec, RelWithDebInfo, same harness
  // (run_reliable_broadcast, 8 rounds, kNone adversary), dev machine. The
  // Imbs row is the backend ablation (no pre-mailbox baseline exists for
  // it): same n, two-phase witness machine instead of per-round re-echo.
  const std::vector<FanoutConfig> configs = {
      {200, 0, 497.73, RbBackendKind::kAlg1},
      {400, 0, 118.17, RbBackendKind::kAlg1},
      {400, 0, 0, RbBackendKind::kImbs},
  };

  std::vector<FanoutResult> results;
  for (const FanoutConfig& config : configs) {
    const FanoutResult r = run_config(config);
    std::printf(
        "rb n=%zu+%zu %s: %.2f rounds/sec, %.3g deliveries/sec (%.2fx vs seed), "
        "%.1f syscalls/round vs %.1f per-message (%.1fx coalescing)\n",
        r.config.n_correct, r.config.n_byz, to_string(r.config.backend), r.rounds_per_sec,
        r.deliveries_per_sec, r.speedup_vs_seed, r.syscalls_per_round,
        r.baseline_syscalls_per_round, r.syscall_coalescing_factor);
    results.push_back(r);
  }

  std::vector<HubResult> hub_results;
  for (const std::size_t endpoints : {64UL, 256UL}) {
    const HubResult r = run_hub(endpoints);
    std::printf("hub endpoints=%zu: %.3g broadcasts/sec, %.3g deliveries/sec\n", r.endpoints,
                r.broadcasts_per_sec, r.deliveries_per_sec);
    hub_results.push_back(r);
  }

  if (!write_json(path, results, hub_results)) {
    std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}
