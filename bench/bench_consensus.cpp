// E3 — Consensus: phases/rounds to decide vs. f (O(f), Theorem 3) and vs. n
// (flat), the unanimous-input fast path, and the known-n,f phase-king
// baseline the algorithm generalizes.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/phase_king.hpp"
#include "harness/runner.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

void BM_Consensus_VaryF(benchmark::State& state) {
  const auto f = static_cast<std::size_t>(state.range(0));
  ScenarioConfig config;
  config.n_correct = 2 * f + 1 + 8;  // keep n comfortably above 3f, grow with f
  config.n_byzantine = f;
  config.adversary = f == 0 ? AdversaryKind::kNone : AdversaryKind::kVoteSplit;
  ConsensusRun last;
  for (auto _ : state) {
    config.seed += 1;
    last = run_consensus(config, {0.0, 1.0, 1.0, 0.0});
    benchmark::DoNotOptimize(last.agreement);
  }
  state.counters["phases"] = static_cast<double>(last.max_decision_phase);
  state.counters["rounds"] = static_cast<double>(last.rounds);
  state.counters["agreement"] = last.agreement ? 1 : 0;
  state.counters["messages"] = static_cast<double>(last.messages);
}
BENCHMARK(BM_Consensus_VaryF)->Arg(0)->Arg(1)->Arg(2)->Arg(3)->Arg(4)->Arg(5)
    ->Unit(benchmark::kMillisecond);

void BM_Consensus_VaryN(benchmark::State& state) {
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = 2;
  config.adversary = AdversaryKind::kTwoFaced;
  ConsensusRun last;
  for (auto _ : state) {
    config.seed += 1;
    last = run_consensus(config, {0.0, 1.0});
    benchmark::DoNotOptimize(last.agreement);
  }
  state.counters["phases"] = static_cast<double>(last.max_decision_phase);
  state.counters["rounds"] = static_cast<double>(last.rounds);
  state.counters["messages"] = static_cast<double>(last.messages);
}
BENCHMARK(BM_Consensus_VaryN)->Arg(7)->Arg(13)->Arg(25)->Arg(49)
    ->Unit(benchmark::kMillisecond);

void BM_Consensus_UnanimousFastPath(benchmark::State& state) {
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = 2;
  config.adversary = AdversaryKind::kNoise;
  ConsensusRun last;
  for (auto _ : state) {
    config.seed += 1;
    last = run_consensus(config, {7.0});
    benchmark::DoNotOptimize(last.agreement);
  }
  state.counters["phases"] = static_cast<double>(last.max_decision_phase);  // expect 1
  state.counters["rounds"] = static_cast<double>(last.rounds);
}
BENCHMARK(BM_Consensus_UnanimousFastPath)->Arg(7)->Arg(13)->Arg(25)
    ->Unit(benchmark::kMillisecond);

void BM_PhaseKing_KnownNf(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<std::size_t>(state.range(1));
  Round rounds = 0;
  std::uint64_t messages = 0;
  std::int64_t phases = 0;
  for (auto _ : state) {
    SyncSimulator sim;
    std::vector<NodeId> roster;
    for (std::size_t i = 0; i < n; ++i) roster.push_back(100 + 3 * i);
    // f of the roster crash from the start (silent) — the classical model's
    // benign worst case for round counting.
    for (std::size_t i = 0; i < n - f; ++i) {
      sim.add_process(std::make_unique<PhaseKingProcess>(
          roster[i], Value::real(static_cast<double>(i % 2)), roster, f));
    }
    sim.run_until_all_correct_done(400);
    rounds = sim.round();
    messages = sim.metrics().messages.total_delivered();
    for (std::size_t i = 0; i < n - f; ++i) {
      auto* p = sim.get<PhaseKingProcess>(roster[i]);
      if (p->decision_phase().has_value()) phases = std::max(phases, *p->decision_phase());
    }
    benchmark::DoNotOptimize(rounds);
  }
  state.counters["phases"] = static_cast<double>(phases);
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["messages"] = static_cast<double>(messages);
}
BENCHMARK(BM_PhaseKing_KnownNf)->Args({7, 2})->Args({13, 4})->Args({25, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace idonly

BENCHMARK_MAIN();
