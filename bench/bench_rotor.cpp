// E2 — Rotor-coordinator: termination round (Theorem 2: O(n)) and the
// position of the first good round vs. system size and adversary strategy,
// including the dedicated rotor-stuffer attack.
#include <benchmark/benchmark.h>

#include "harness/runner.hpp"

namespace idonly {
namespace {

void run_rotor_bench(benchmark::State& state, AdversaryKind adversary) {
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  const auto n_byz = static_cast<std::size_t>(state.range(1));
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = n_byz;
  config.adversary = n_byz == 0 ? AdversaryKind::kNone : adversary;
  RotorRun last;
  for (auto _ : state) {
    config.seed += 1;
    last = run_rotor(config);
    benchmark::DoNotOptimize(last.all_terminated);
  }
  state.counters["termination_round"] = static_cast<double>(last.max_termination_round);
  state.counters["first_good_round"] = static_cast<double>(last.first_good_round.value_or(-1));
  state.counters["good_witnessed"] = last.good_round_witnessed ? 1 : 0;
  state.counters["rounds_per_n"] = static_cast<double>(last.max_termination_round) /
                                   static_cast<double>(n_correct + n_byz);
}

void BM_Rotor_NoFaults(benchmark::State& state) { run_rotor_bench(state, AdversaryKind::kNone); }
BENCHMARK(BM_Rotor_NoFaults)
    ->Args({4, 0})->Args({8, 0})->Args({16, 0})->Args({32, 0})
    ->Unit(benchmark::kMicrosecond);

void BM_Rotor_Silent(benchmark::State& state) { run_rotor_bench(state, AdversaryKind::kSilent); }
BENCHMARK(BM_Rotor_Silent)
    ->Args({7, 2})->Args({13, 4})->Args({25, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_Rotor_Stuffer(benchmark::State& state) {
  run_rotor_bench(state, AdversaryKind::kRotorStuffer);
}
BENCHMARK(BM_Rotor_Stuffer)
    ->Args({7, 2})->Args({13, 4})->Args({25, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_Rotor_TwoFaced(benchmark::State& state) {
  run_rotor_bench(state, AdversaryKind::kTwoFaced);
}
BENCHMARK(BM_Rotor_TwoFaced)
    ->Args({7, 2})->Args({13, 4})->Args({25, 8})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace idonly

BENCHMARK_MAIN();
