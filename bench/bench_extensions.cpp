// Extension algorithms (paper appendix/draft material): Byzantine renaming
// (O(f)-round termination, 4f+3 loop-round envelope), terminating reliable
// broadcast (O(f) via consensus), and the rotor-terminated king consensus
// (O(n)) — round/message series vs. n and f.
#include <benchmark/benchmark.h>

#include <memory>

#include "core/king_consensus.hpp"
#include "core/renaming.hpp"
#include "core/terminating_rb.hpp"
#include "harness/scenario.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

void BM_Renaming(benchmark::State& state) {
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<std::size_t>(state.range(1));
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = f;
  config.adversary = f == 0 ? AdversaryKind::kNone : AdversaryKind::kNoise;
  Round rounds = 0;
  std::uint64_t messages = 0;
  for (auto _ : state) {
    config.seed += 1;
    const Scenario scenario = make_scenario(config);
    SyncSimulator sim;
    auto factory = [](NodeId id, std::size_t) { return std::make_unique<RenamingProcess>(id); };
    populate(sim, scenario, factory);
    sim.run_until_all_correct_done(200);
    rounds = sim.round();
    messages = sim.metrics().messages.total_delivered();
    benchmark::DoNotOptimize(rounds);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["bound_4f_plus_3"] = static_cast<double>(4 * f + 3 + 2);
  state.counters["messages"] = static_cast<double>(messages);
}
BENCHMARK(BM_Renaming)->Args({7, 0})->Args({7, 2})->Args({13, 4})->Args({25, 8})
    ->Unit(benchmark::kMicrosecond);

void BM_TerminatingRb(benchmark::State& state) {
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  const bool byz_source = state.range(1) != 0;
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = 2;
  config.adversary = AdversaryKind::kTwoFaced;
  Round rounds = 0;
  for (auto _ : state) {
    config.seed += 1;
    const Scenario scenario = make_scenario(config);
    const NodeId source = byz_source ? scenario.byzantine_ids.front()
                                     : scenario.correct_ids.front();
    SyncSimulator sim;
    auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
      return std::make_unique<TerminatingRbProcess>(id, source,
                                                    Value::real(1.0 + double(index)));
    };
    populate(sim, scenario, factory);
    sim.run_until_all_correct_done(400);
    rounds = sim.round();
    benchmark::DoNotOptimize(rounds);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["byz_source"] = byz_source ? 1 : 0;
}
BENCHMARK(BM_TerminatingRb)->Args({7, 0})->Args({7, 1})->Args({13, 0})->Args({13, 1})
    ->Unit(benchmark::kMillisecond)->Iterations(10);

void BM_KingConsensus(benchmark::State& state) {
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = 2;
  config.adversary = AdversaryKind::kVoteSplit;
  Round rounds = 0;
  for (auto _ : state) {
    config.seed += 1;
    const Scenario scenario = make_scenario(config);
    SyncSimulator sim;
    auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
      return std::make_unique<KingConsensusProcess>(
          id, Value::real(static_cast<double>(index % 2)));
    };
    populate(sim, scenario, factory);
    sim.run_until_all_correct_done(3000);
    rounds = sim.round();
    benchmark::DoNotOptimize(rounds);
  }
  state.counters["rounds"] = static_cast<double>(rounds);
  state.counters["rounds_per_n"] =
      static_cast<double>(rounds) / static_cast<double>(n_correct + 2);
}
BENCHMARK(BM_KingConsensus)->Arg(7)->Arg(13)->Arg(25)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace
}  // namespace idonly

BENCHMARK_MAIN();
