// E9 — Ablation: the measured cost of NOT knowing n and f. Identical
// scenarios run through the id-only algorithms and their classical known-n,f
// counterparts; the deltas quantify the paper's §Discussion claim that
// "other metrics such as message complexity, round complexity, etc. do not
// change much either".
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/phase_king.hpp"
#include "baselines/st_broadcast.hpp"
#include "core/king_consensus.hpp"
#include "harness/runner.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

// Reliable broadcast: id-only adds one round of `present` announcements
// (n² messages) and replaces f+1/2f+1 with n_v-relative thresholds.
void BM_Ablation_RB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  std::uint64_t msgs_idonly = 0;
  std::uint64_t msgs_known = 0;
  Round accept_idonly = 0;
  Round accept_known = 0;
  for (auto _ : state) {
    {
      ScenarioConfig config;
      config.n_correct = n - f;
      config.n_byzantine = f;
      config.adversary = AdversaryKind::kSilent;
      config.seed += 1;
      const auto run = run_reliable_broadcast(config, 1.0, false, 6);
      msgs_idonly = run.messages;
      accept_idonly = run.first_accept_round.value_or(-1);
    }
    {
      SyncSimulator sim;
      std::vector<NodeId> ids;
      for (std::size_t i = 0; i < n - f; ++i) ids.push_back(100 + 5 * i);
      for (NodeId id : ids) {
        sim.add_process(std::make_unique<StBroadcastProcess>(id, ids[0], Value::real(1.0), f));
      }
      sim.run_rounds(6);
      msgs_known = sim.metrics().messages.total_delivered();
      accept_known = sim.get<StBroadcastProcess>(ids[1])->accept_round().value_or(-1);
    }
    benchmark::DoNotOptimize(msgs_idonly);
  }
  state.counters["msgs_idonly"] = static_cast<double>(msgs_idonly);
  state.counters["msgs_known"] = static_cast<double>(msgs_known);
  state.counters["msg_overhead"] =
      msgs_known == 0 ? 0 : static_cast<double>(msgs_idonly) / static_cast<double>(msgs_known);
  state.counters["accept_round_idonly"] = static_cast<double>(accept_idonly);
  state.counters["accept_round_known"] = static_cast<double>(accept_known);
}
BENCHMARK(BM_Ablation_RB)->Arg(7)->Arg(13)->Arg(25)->Arg(49)
    ->Unit(benchmark::kMicrosecond);

// Consensus: id-only pays 5-round phases + rotor traffic vs. the classical
// 4-round phases with a free coordinator schedule.
void BM_Ablation_Consensus(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  std::uint64_t msgs_idonly = 0;
  std::uint64_t msgs_known = 0;
  Round rounds_idonly = 0;
  Round rounds_known = 0;
  for (auto _ : state) {
    {
      ScenarioConfig config;
      config.n_correct = n - f;
      config.n_byzantine = f;
      config.adversary = AdversaryKind::kSilent;
      config.seed += 1;
      const auto run = run_consensus(config, {0.0, 1.0});
      msgs_idonly = run.messages;
      rounds_idonly = run.rounds;
    }
    {
      SyncSimulator sim;
      std::vector<NodeId> roster;
      for (std::size_t i = 0; i < n; ++i) roster.push_back(100 + 5 * i);
      for (std::size_t i = 0; i < n - f; ++i) {
        sim.add_process(std::make_unique<PhaseKingProcess>(
            roster[i], Value::real(static_cast<double>(i % 2)), roster, f));
      }
      sim.run_until_all_correct_done(400);
      msgs_known = sim.metrics().messages.total_delivered();
      rounds_known = sim.round();
    }
    benchmark::DoNotOptimize(msgs_idonly);
  }
  state.counters["msgs_idonly"] = static_cast<double>(msgs_idonly);
  state.counters["msgs_known"] = static_cast<double>(msgs_known);
  state.counters["rounds_idonly"] = static_cast<double>(rounds_idonly);
  state.counters["rounds_known"] = static_cast<double>(rounds_known);
}
BENCHMARK(BM_Ablation_Consensus)->Arg(7)->Arg(13)->Arg(25)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

// Approximate agreement: trimming ⌊n_v/3⌋ vs. exactly f — identical round
// and message pattern, so overhead should be ≈ 1.0 on both axes.
void BM_Ablation_Approx(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  const int iterations = 8;
  std::vector<double> inputs;
  for (std::size_t i = 0; i < n - f; ++i) inputs.push_back(static_cast<double>(i));
  double contraction_idonly = 0;
  double contraction_known = 0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    seed += 1;
    ScenarioConfig config;
    config.n_correct = n - f;
    config.n_byzantine = f;
    config.adversary = AdversaryKind::kExtreme;
    config.seed = seed;
    const auto unknown = run_approx_agreement(config, inputs, iterations);
    const auto known = run_known_f_approx(n - f, f, inputs, iterations, seed);
    contraction_idonly = unknown.range_per_iteration.back() / unknown.input_range;
    contraction_known = known.range_per_iteration.back() / known.input_range;
    benchmark::DoNotOptimize(contraction_idonly);
  }
  state.counters["final_ratio_idonly"] = contraction_idonly;
  state.counters["final_ratio_known"] = contraction_known;
}
BENCHMARK(BM_Ablation_Approx)->Arg(7)->Arg(13)->Arg(25)
    ->Unit(benchmark::kMicrosecond);

// Early termination (Alg. 3) vs. the rotor-terminated king construction:
// on unanimous inputs Alg. 3 decides in one phase; the king variant always
// runs its O(n) rotor schedule — the measured gap is the value of the
// early-exit rule.
void BM_Ablation_EarlyTermination(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t f = (n - 1) / 3;
  Round rounds_early = 0;
  Round rounds_king = 0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    seed += 1;
    {
      ScenarioConfig config;
      config.n_correct = n - f;
      config.n_byzantine = f;
      config.adversary = AdversaryKind::kSilent;
      config.seed = seed;
      rounds_early = run_consensus(config, {4.0}).rounds;
    }
    {
      ScenarioConfig config;
      config.n_correct = n - f;
      config.n_byzantine = f;
      config.adversary = AdversaryKind::kSilent;
      config.seed = seed;
      const Scenario scenario = make_scenario(config);
      SyncSimulator sim;
      auto factory = [&](NodeId id, std::size_t) -> std::unique_ptr<Process> {
        return std::make_unique<KingConsensusProcess>(id, Value::real(4.0));
      };
      populate(sim, scenario, factory);
      sim.run_until_all_correct_done(3000);
      rounds_king = sim.round();
    }
    benchmark::DoNotOptimize(rounds_early);
  }
  state.counters["rounds_early"] = static_cast<double>(rounds_early);
  state.counters["rounds_king"] = static_cast<double>(rounds_king);
  state.counters["speedup"] =
      rounds_early == 0 ? 0 : static_cast<double>(rounds_king) / static_cast<double>(rounds_early);
}
BENCHMARK(BM_Ablation_EarlyTermination)->Arg(7)->Arg(13)->Arg(25)
    ->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace
}  // namespace idonly

BENCHMARK_MAIN();
