// E5 — Resiliency boundary: property-violation frequency at n = 3f vs.
// n = 3f + 1 under the strongest adversaries. The paper's n > 3f is optimal:
// the violation rate must be positive at the bound and exactly zero above.
#include <benchmark/benchmark.h>

#include "harness/runner.hpp"

namespace idonly {
namespace {

void BM_ConsensusViolations(benchmark::State& state) {
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<std::size_t>(state.range(1));
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = f;
  config.adversary = AdversaryKind::kEchoChamber;
  int trials = 0;
  int violations = 0;
  for (auto _ : state) {
    config.seed += 1;
    trials += 1;
    const auto run = run_consensus(config, {0.0, 1.0}, /*max_rounds=*/150);
    if (!run.all_decided || !run.agreement || !run.validity) violations += 1;
    benchmark::DoNotOptimize(run.agreement);
  }
  state.counters["violation_rate"] =
      trials == 0 ? 0 : static_cast<double>(violations) / trials;
  state.counters["n"] = static_cast<double>(n_correct + f);
  state.counters["three_f"] = static_cast<double>(3 * f);
}
// n = 3f (expected violations) vs. n = 3f+1 (expected none).
BENCHMARK(BM_ConsensusViolations)
    ->Args({2, 1})->Args({3, 1})   // f = 1: n = 3 vs. 4
    ->Args({4, 2})->Args({5, 2})   // f = 2: n = 6 vs. 7
    ->Args({6, 3})->Args({7, 3})   // f = 3: n = 9 vs. 10
    ->Unit(benchmark::kMillisecond)->Iterations(20);

void BM_ApproxViolations(benchmark::State& state) {
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<std::size_t>(state.range(1));
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = f;
  config.adversary = AdversaryKind::kExtreme;
  int trials = 0;
  int violations = 0;
  for (auto _ : state) {
    config.seed += 1;
    trials += 1;
    const auto run = run_approx_agreement(config, {0.0, 0.4, 0.6, 1.0});
    const bool violated =
        !run.within_input_range || run.output_range > run.input_range / 2.0 + 1e-12;
    if (violated) violations += 1;
    benchmark::DoNotOptimize(run.output_range);
  }
  state.counters["violation_rate"] =
      trials == 0 ? 0 : static_cast<double>(violations) / trials;
  state.counters["n"] = static_cast<double>(n_correct + f);
  state.counters["three_f"] = static_cast<double>(3 * f);
}
BENCHMARK(BM_ApproxViolations)
    ->Args({2, 1})->Args({3, 1})
    ->Args({4, 2})->Args({5, 2})
    ->Unit(benchmark::kMicrosecond)->Iterations(20);

void BM_RbSplitAttempts(benchmark::State& state) {
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<std::size_t>(state.range(1));
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = f;
  config.adversary = AdversaryKind::kTwoFaced;
  int trials = 0;
  int violations = 0;
  for (auto _ : state) {
    config.seed += 1;
    trials += 1;
    const auto run = run_reliable_broadcast(config, 5.0, /*byzantine_source=*/true, 25);
    if (!run.agreement || !run.relay_ok) violations += 1;
    benchmark::DoNotOptimize(run.agreement);
  }
  state.counters["violation_rate"] =
      trials == 0 ? 0 : static_cast<double>(violations) / trials;
  state.counters["n"] = static_cast<double>(n_correct + f);
}
BENCHMARK(BM_RbSplitAttempts)
    ->Args({2, 1})->Args({3, 1})->Args({4, 2})->Args({5, 2})
    ->Unit(benchmark::kMicrosecond)->Iterations(20);

}  // namespace
}  // namespace idonly

BENCHMARK_MAIN();
