// E1 — Reliable broadcast: accept-round and message complexity vs. n,
// id-only (unknown n, f) vs. the classical Srikanth–Toueg baseline that
// knows both. Paper claim (§Discussion): message complexity is unaffected;
// acceptance still lands in round 3 with a correct source.
#include <benchmark/benchmark.h>

#include <memory>

#include "baselines/st_broadcast.hpp"
#include "harness/runner.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

void BM_IdOnlyRB_CorrectSource(benchmark::State& state) {
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  const auto n_byz = static_cast<std::size_t>(state.range(1));
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = n_byz;
  config.adversary = n_byz == 0 ? AdversaryKind::kNone : AdversaryKind::kForgedEcho;
  ReliableBroadcastRun last;
  std::uint64_t rounds = 0;
  std::uint64_t deliveries = 0;
  for (auto _ : state) {
    config.seed += 1;
    last = run_reliable_broadcast(config, 42.0, false, /*run_rounds=*/8);
    benchmark::DoNotOptimize(last.accepted_count);
    rounds += 8;
    deliveries += last.messages;
  }
  const double n = static_cast<double>(n_correct + n_byz);
  state.counters["accept_round"] = last.first_accept_round.value_or(-1);
  state.counters["msgs_per_node"] = static_cast<double>(last.messages) / n;
  state.counters["accepted_frac"] = static_cast<double>(last.accepted_count) / n_correct;
  state.counters["rounds_per_sec"] =
      benchmark::Counter(static_cast<double>(rounds), benchmark::Counter::kIsRate);
  state.counters["deliveries_per_sec"] =
      benchmark::Counter(static_cast<double>(deliveries), benchmark::Counter::kIsRate);
}
// The large-n broadcast-heavy configs (n ≥ 200) exercise the mailbox layer's
// shared fan-out path; the small ones track protocol-level complexity.
BENCHMARK(BM_IdOnlyRB_CorrectSource)
    ->Args({4, 0})->Args({7, 2})->Args({13, 4})->Args({25, 8})->Args({49, 16})
    ->Args({200, 0})->Args({300, 100})->Args({400, 0})
    ->Unit(benchmark::kMicrosecond);

void BM_KnownNfRB_CorrectSource(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto f = static_cast<std::size_t>(state.range(1));
  std::uint64_t messages = 0;
  Round accept_round = 0;
  for (auto _ : state) {
    SyncSimulator sim;
    std::vector<NodeId> ids;
    for (std::size_t i = 0; i < n - f; ++i) ids.push_back(100 + 7 * i);
    for (NodeId id : ids) {
      sim.add_process(std::make_unique<StBroadcastProcess>(id, ids[0], Value::real(42.0), f));
    }
    sim.run_rounds(8);
    messages = sim.metrics().messages.total_delivered();
    accept_round = sim.get<StBroadcastProcess>(ids[1])->accept_round().value_or(-1);
    benchmark::DoNotOptimize(messages);
  }
  state.counters["accept_round"] = static_cast<double>(accept_round);
  state.counters["msgs_per_node"] = static_cast<double>(messages) / static_cast<double>(n);
}
BENCHMARK(BM_KnownNfRB_CorrectSource)
    ->Args({4, 0})->Args({9, 2})->Args({17, 4})->Args({33, 8})->Args({65, 16})
    ->Unit(benchmark::kMicrosecond);

void BM_IdOnlyRB_ByzantineSource(benchmark::State& state) {
  const auto n_correct = static_cast<std::size_t>(state.range(0));
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = 2;
  config.adversary = AdversaryKind::kTwoFaced;
  ReliableBroadcastRun last;
  for (auto _ : state) {
    config.seed += 1;
    last = run_reliable_broadcast(config, 1.0, /*byzantine_source=*/true, 12);
    benchmark::DoNotOptimize(last.agreement);
  }
  state.counters["agreement"] = last.agreement ? 1 : 0;
  state.counters["accepted"] = static_cast<double>(last.accepted_count);
}
BENCHMARK(BM_IdOnlyRB_ByzantineSource)->Arg(7)->Arg(13)->Arg(25)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace idonly

BENCHMARK_MAIN();
