// E6 — Synchrony is necessary: disagreement probability of the best-effort
// timeout protocol as the (unknown) delay bound Δ sweeps through the
// decision timeout T. The paper's two lemmas predict: ~0 when T covers Δ,
// → 1 when Δ outruns T (asynchronous limit).
#include <benchmark/benchmark.h>

#include <memory>

#include "common/rng.hpp"
#include "core/consensus.hpp"
#include "harness/scenario.hpp"
#include "impossibility/async_partition.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

void BM_SemiSyncSweep(benchmark::State& state) {
  // Δ = ratio/10 × T, T = 10.
  const double ratio = static_cast<double>(state.range(0)) / 10.0;
  const double timeout = 10.0;
  const double delta = ratio * timeout;
  double rate = 0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    seed += 1;
    rate = semi_sync_disagreement_rate(4, 4, delta, timeout, /*trials=*/40, seed);
    benchmark::DoNotOptimize(rate);
  }
  state.counters["delta_over_T"] = ratio;
  state.counters["disagreement_rate"] = rate;
}
BENCHMARK(BM_SemiSyncSweep)
    ->Arg(2)->Arg(5)->Arg(8)->Arg(10)->Arg(12)->Arg(15)->Arg(20)->Arg(50)->Arg(200)
    ->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_AsyncPartitionDeterministic(benchmark::State& state) {
  PartitionConfig config;
  config.n_a = static_cast<std::size_t>(state.range(0));
  config.n_b = static_cast<std::size_t>(state.range(0));
  config.cross_delay = 1e6;  // effectively unbounded — the async lemma
  config.decide_timeout = 10.0;
  bool disagreement = false;
  for (auto _ : state) {
    const auto result = run_partition_execution(config);
    disagreement = result.disagreement;
    benchmark::DoNotOptimize(disagreement);
  }
  state.counters["disagreement"] = disagreement ? 1 : 0;
}
BENCHMARK(BM_AsyncPartitionDeterministic)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMicrosecond);

// E6b — the constructive companion: run the paper's OWN consensus algorithm
// while a fault injector delays a fraction p of all messages by 1–3 rounds
// (violating the synchronous model). Both liveness and safety decay with p;
// p = 0 is the in-model control.
void BM_DesyncedConsensus(benchmark::State& state) {
  const double p = static_cast<double>(state.range(0)) / 100.0;
  int trials = 0;
  int undecided = 0;
  int disagreements = 0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    seed += 1;
    trials += 1;
    ScenarioConfig config;
    config.n_correct = 7;
    config.n_byzantine = 2;
    config.adversary = AdversaryKind::kSilent;
    config.seed = seed;
    const Scenario scenario = make_scenario(config);
    SyncSimulator sim;
    auto rng = std::make_shared<Rng>(derive_seed(seed, 0xDE1A));
    if (p > 0) {
      sim.set_delay_hook([rng, p](NodeId, NodeId, const Message&, Round) -> Round {
        return rng->chance(p) ? static_cast<Round>(1 + rng->below(3)) : 0;
      });
    }
    auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
      return std::make_unique<ConsensusProcess>(id, Value::real(static_cast<double>(index % 2)));
    };
    populate(sim, scenario, factory);
    const bool decided = sim.run_until_all_correct_done(250);
    if (!decided) undecided += 1;
    std::optional<Value> first;
    bool agreement = true;
    for (NodeId id : scenario.correct_ids) {
      auto* proc = sim.get<ConsensusProcess>(id);
      if (proc == nullptr || !proc->output().has_value()) continue;
      if (!first.has_value()) first = *proc->output();
      agreement = agreement && *proc->output() == *first;
    }
    if (!agreement) disagreements += 1;
    benchmark::DoNotOptimize(decided);
  }
  state.counters["delay_prob"] = p;
  state.counters["undecided_rate"] = trials == 0 ? 0 : static_cast<double>(undecided) / trials;
  state.counters["disagreement_rate"] =
      trials == 0 ? 0 : static_cast<double>(disagreements) / trials;
}
BENCHMARK(BM_DesyncedConsensus)->Arg(0)->Arg(2)->Arg(5)->Arg(10)->Arg(25)->Arg(50)
    ->Unit(benchmark::kMillisecond)->Iterations(20);

}  // namespace
}  // namespace idonly

BENCHMARK_MAIN();
