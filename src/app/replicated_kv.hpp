// Replicated key-value store on top of the dynamic total-ordering protocol —
// the paper's opening motivation ("a database cluster that requires frequent
// node scaling") made concrete.
//
// Every replica submits its writes as events; the total-order chain
// (chain-prefix + chain-growth, Theorem 6) is applied in order to a local
// map, so all replicas pass through the SAME sequence of states. Writes are
// last-writer-wins in chain order; concurrent writes in one round are
// ordered deterministically by witness id (the protocol's tie-break).
//
// Scope note: a replica that joins late orders and applies only the suffix
// of the chain from its join round — production systems pair this with a
// state-transfer snapshot, which is orthogonal to the agreement layer and
// out of scope here (the tests pin the exact guarantee: suffix-consistency).
#pragma once

#include <cstdint>
#include <map>
#include <optional>

#include "core/total_order.hpp"
#include "net/process.hpp"

namespace idonly {

/// Writes travel as event payloads (doubles). Key and value are packed into
/// the 2^53-exact integer range: op = key · 2^24 + value.
struct KvOp {
  std::uint32_t key = 0;    ///< < 2^24
  std::uint32_t value = 0;  ///< < 2^24
};

[[nodiscard]] double encode_op(KvOp op) noexcept;
[[nodiscard]] KvOp decode_op(double payload) noexcept;

class ReplicatedKvProcess final : public Process {
 public:
  ReplicatedKvProcess(NodeId self, bool founder);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;
  [[nodiscard]] bool done() const override { return ordering_.done(); }

  /// Queue a write; it is broadcast next round and lands in the store once
  /// its chain position is final.
  void submit_set(std::uint32_t key, std::uint32_t value);
  void request_leave() { ordering_.request_leave(); }

  [[nodiscard]] std::optional<std::uint32_t> get(std::uint32_t key) const;
  [[nodiscard]] const std::map<std::uint32_t, std::uint32_t>& store() const noexcept {
    return store_;
  }
  /// Number of chain entries applied so far (the replica's state version).
  [[nodiscard]] std::size_t version() const noexcept { return applied_; }
  [[nodiscard]] const TotalOrderProcess& ordering() const noexcept { return ordering_; }

 private:
  TotalOrderProcess ordering_;
  std::map<std::uint32_t, std::uint32_t> store_;
  std::size_t applied_ = 0;
};

}  // namespace idonly
