#include "app/replicated_kv.hpp"

#include <cmath>

namespace idonly {

namespace {
constexpr double kKeyScale = 16777216.0;  // 2^24
}

double encode_op(KvOp op) noexcept {
  return static_cast<double>(op.key) * kKeyScale + static_cast<double>(op.value);
}

KvOp decode_op(double payload) noexcept {
  const auto raw = static_cast<std::uint64_t>(payload);
  KvOp op;
  op.key = static_cast<std::uint32_t>(raw / static_cast<std::uint64_t>(kKeyScale));
  op.value = static_cast<std::uint32_t>(raw % static_cast<std::uint64_t>(kKeyScale));
  return op;
}

ReplicatedKvProcess::ReplicatedKvProcess(NodeId self, bool founder)
    : Process(self), ordering_(self, founder) {}

void ReplicatedKvProcess::submit_set(std::uint32_t key, std::uint32_t value) {
  ordering_.submit_event(encode_op(KvOp{key, value}));
}

std::optional<std::uint32_t> ReplicatedKvProcess::get(std::uint32_t key) const {
  const auto it = store_.find(key);
  return it == store_.end() ? std::nullopt : std::optional<std::uint32_t>(it->second);
}

void ReplicatedKvProcess::on_round(RoundInfo round, std::span<const Message> inbox,
                                   std::vector<Outgoing>& out) {
  ordering_.on_round(round, inbox, out);
  // Apply newly finalized chain entries in order. The chain is append-only
  // up to finality, so replaying from `applied_` is exact.
  const auto& chain = ordering_.chain();
  for (; applied_ < chain.size(); ++applied_) {
    const KvOp op = decode_op(chain[applied_].event);
    store_[op.key] = op.value;
  }
}

}  // namespace idonly
