// Event-driven simulator for asynchronous and semi-synchronous executions.
//
// Used by the impossibility experiments (paper §"Synchrony is Necessary"):
// when nodes do not know n and f, consensus is impossible — even with
// probabilistic termination — once message delays are unbounded
// (asynchronous) or bounded by an unknown Δ (semi-synchronous). The lemmas
// are proved by indistinguishability/partition arguments; this engine lets
// us *realize* those executions: a delay model assigns each (from, to)
// message a latency, and nodes act on local (wall-clock) timers instead of
// rounds.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <queue>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "common/types.hpp"
#include "net/mailbox.hpp"
#include "net/message.hpp"
#include "net/parallel_exec.hpp"

namespace idonly {

/// Continuous simulated time (arbitrary units).
using Time = double;

/// Outgoing traffic in the async model.
struct AsyncOutgoing {
  std::optional<NodeId> to;  ///< empty → broadcast
  Message msg;
};

/// A process in the async model reacts to message arrivals and timer fires.
class AsyncProcess {
 public:
  explicit AsyncProcess(NodeId id) noexcept : id_(id) {}
  virtual ~AsyncProcess();

  AsyncProcess(const AsyncProcess&) = delete;
  AsyncProcess& operator=(const AsyncProcess&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Called once at time 0; may send and arm a timer.
  virtual void on_start(Time now, std::vector<AsyncOutgoing>& out) = 0;
  virtual void on_message(Time now, const Message& msg, std::vector<AsyncOutgoing>& out) = 0;
  virtual void on_timer(Time now, std::vector<AsyncOutgoing>& out) = 0;

  /// Next requested timer fire time; nullopt when no timer armed. Queried
  /// after every callback.
  [[nodiscard]] virtual std::optional<Time> timer_deadline() const = 0;

  [[nodiscard]] virtual bool decided() const = 0;
  [[nodiscard]] virtual Value decision() const = 0;

 private:
  NodeId id_;
};

/// Delay model: latency assigned to each individual message. Returning a
/// very large value models the adversary holding the message back (legal in
/// an asynchronous system; bounded by Δ in a semi-synchronous one).
using DelayModel = std::function<Time(NodeId from, NodeId to, const Message& msg, Time send_time)>;

class AsyncSimulator {
 public:
  explicit AsyncSimulator(DelayModel delay);

  void add_process(std::unique_ptr<AsyncProcess> process);

  /// Run until the event queue drains or `horizon` simulated time elapses.
  void run(Time horizon);

  /// Shard callback execution across `threads` threads (1 = sequential, the
  /// default). Events sharing one timestamp form a batch; per-node event
  /// groups run concurrently — including sender-stamping and content-hashing
  /// of every emitted message (the wrap cost) — while latency draws, queue
  /// pushes, timer re-arms, and trace records are applied sequentially in
  /// event-sequence order. The DelayModel therefore may be stateful (the
  /// chaos delay model is — it counts per-link sequence numbers) and the
  /// observable execution (delivery order, latency draws, traces) is still
  /// identical for every thread count (DESIGN.md §8).
  void set_threads(unsigned threads);
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  [[nodiscard]] Time now() const noexcept { return now_; }
  [[nodiscard]] AsyncProcess* find(NodeId id);
  [[nodiscard]] std::vector<NodeId> ids() const;

  /// Mailbox-layer accounting: a broadcast is wrapped once and fanned out
  /// as reference bumps; deliveries are counted when handed to a process.
  [[nodiscard]] const FanoutCounters& fanout() const noexcept { return fanout_; }

  /// Attach a flight recorder: sends and deliveries are captured (round 0 —
  /// the async model has no rounds; link verdicts come from a
  /// recorder-aware chaos delay model, see net/chaos_hooks.hpp).
  void set_trace_recorder(std::shared_ptr<TraceRecorder> recorder) {
    recorder_ = std::move(recorder);
  }

 private:
  struct Event {
    Time at;
    std::uint64_t seq;  // FIFO tie-break for determinism
    NodeId to;
    bool is_timer;
    MessageRef msg;  // null for timers; shared across a broadcast's n events
    friend bool operator>(const Event& a, const Event& b) {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };

  /// Draw latencies and enqueue delivery events for `out`. `wrapped` (when
  /// non-null) carries refs pre-stamped and pre-hashed by the parallel
  /// phase, one per outgoing, so the sequential merge skips the wrap cost.
  void dispatch_out(NodeId from, const std::vector<AsyncOutgoing>& out,
                    const std::vector<MessageRef>* wrapped = nullptr);
  void rearm_timer(AsyncProcess& p);
  void run_sequential(Time horizon);
  void run_batched(Time horizon);

  DelayModel delay_;
  std::map<NodeId, std::unique_ptr<AsyncProcess>> processes_;
  std::map<NodeId, Time> armed_timer_;  // currently scheduled deadline per node
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  bool started_ = false;
  unsigned threads_ = 1;
  std::unique_ptr<ParallelExecutor> executor_;  // live iff threads_ > 1
  FanoutCounters fanout_;
  std::shared_ptr<TraceRecorder> recorder_;
};

}  // namespace idonly
