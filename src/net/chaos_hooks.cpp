#include "net/chaos_hooks.hpp"

#include <cmath>
#include <map>
#include <tuple>

namespace idonly {

DelayModel make_chaos_delay_model(std::shared_ptr<ChaosSchedule> chaos, Time round_duration) {
  using LinkKey = std::tuple<Round, NodeId, NodeId>;
  auto seqs = std::make_shared<std::map<LinkKey, std::uint64_t>>();
  return [chaos = std::move(chaos), seqs, round_duration](NodeId from, NodeId to,
                                                          const Message& /*msg*/,
                                                          Time send_time) -> Time {
    const auto round = static_cast<Round>(std::floor(send_time / round_duration)) + 1;
    const std::uint64_t seq = (*seqs)[LinkKey{round, from, to}]++;
    const FaultDecision verdict = chaos->decide(LinkEvent{round, from, to, seq});
    if (verdict.drop) return -1.0;
    return static_cast<Time>(1 + verdict.delay_rounds) * round_duration;
  };
}

}  // namespace idonly
