#include "net/chaos_hooks.hpp"

#include <cmath>
#include <map>
#include <tuple>

namespace idonly {

DelayModel make_chaos_delay_model(std::shared_ptr<ChaosSchedule> chaos, Time round_duration) {
  return make_chaos_delay_model(std::move(chaos), round_duration, nullptr);
}

DelayModel make_chaos_delay_model(std::shared_ptr<ChaosSchedule> chaos, Time round_duration,
                                  std::shared_ptr<TraceRecorder> recorder) {
  using LinkKey = std::tuple<Round, NodeId, NodeId>;
  auto seqs = std::make_shared<std::map<LinkKey, std::uint64_t>>();
  return [chaos = std::move(chaos), seqs, round_duration, recorder = std::move(recorder)](
             NodeId from, NodeId to, const Message& /*msg*/, Time send_time) -> Time {
    const auto round = static_cast<Round>(std::floor(send_time / round_duration)) + 1;
    const std::uint64_t seq = (*seqs)[LinkKey{round, from, to}]++;
    const LinkEvent event{round, from, to, seq};
    const FaultDecision verdict = chaos->decide(event);
    if (recorder != nullptr) recorder->record_link_verdict(event, verdict);
    if (verdict.drop) return -1.0;
    return static_cast<Time>(1 + verdict.delay_rounds) * round_duration;
  };
}

}  // namespace idonly
