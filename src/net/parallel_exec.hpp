// Deterministic parallel round execution: a persistent worker pool.
//
// The engines are all-to-all per round, so the expensive part of a round is
// stepping n independent process state machines over Θ(n)-message inboxes —
// embarrassingly parallel work that the simulators used to run on one core.
// ParallelExecutor shards an index space [0, n) across a fixed set of
// persistent threads (plus the calling thread, which always participates).
//
// Determinism contract: the executor parallelises only *which thread* runs
// each index; it makes no ordering promises between indices and must never
// be used for work whose side effects depend on cross-index order. The
// engines therefore split a round into two PARALLEL phases:
//   1. fill — each process steps into a PRIVATE outbox slab (per-index, no
//      shared mutation), and
//   2. lane merge — destination slots are partitioned into contiguous
//      per-worker lanes; each lane routes every slab's messages for ITS
//      receivers using precomputed deterministic ordering keys (per-slab
//      prefix sums over the send sequence, per-link chaos counters).
// Every order-sensitive effect is either a pure function of those keys or
// staged per lane and committed in lane order, so the observable execution
// is bit-identical for any thread count — with no sequential replay pass.
// DESIGN.md §8 spells out the argument; tests/test_parallel_exec.cpp
// enforces it via full + canonical trace comparison across --threads 1/2/8.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace idonly {

class ParallelExecutor {
 public:
  /// `threads` is the TOTAL parallelism (including the calling thread);
  /// values < 2 degenerate to inline execution with no pool at all.
  explicit ParallelExecutor(unsigned threads);
  ~ParallelExecutor();

  ParallelExecutor(const ParallelExecutor&) = delete;
  ParallelExecutor& operator=(const ParallelExecutor&) = delete;

  [[nodiscard]] unsigned thread_count() const noexcept { return threads_; }

  /// Invoke `fn(i)` for every i in [0, n) across the pool and block until
  /// all invocations returned. Indices are claimed dynamically in small
  /// contiguous chunks off a lock-free atomic cursor, so stragglers don't
  /// serialise the round and short batches don't thrash the cursor line. If
  /// any invocation throws, one of the exceptions is rethrown on the calling
  /// thread after the batch drains. Not reentrant: one run() at a time per
  /// executor.
  void run(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();
  void work();

  unsigned threads_ = 1;
  std::vector<std::thread> pool_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::uint64_t generation_ = 0;  // bumped per run(); workers wake on change
  bool stopping_ = false;

  // Current batch (valid while busy_workers_ > 0 or the caller is in work()).
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t batch_size_ = 0;
  std::size_t chunk_ = 1;         // indices claimed per cursor bump
  std::atomic<std::size_t> cursor_{0};  // next unclaimed index (lock-free)
  unsigned busy_workers_ = 0;     // pool threads still inside work()
  std::exception_ptr first_error_;
};

}  // namespace idonly
