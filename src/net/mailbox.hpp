// The mailbox layer: zero-copy message fan-out shared by every engine.
//
// All-to-all protocols make the engines route Θ(n²) deliveries per round;
// before this layer existed each engine (sync simulator, async simulator,
// runtime in-memory hub) implemented that fan-out as a deep copy per
// receiver plus a per-receiver content rehash for duplicate suppression.
// This file centralises the pattern:
//
//   * `MessageRef` — an immutable, ref-counted message. The engine stamps
//     the sender and wraps exactly once per send; the content hash (for
//     dedup) and wire size (for byte accounting) are computed at wrap time
//     and cached, so fanning out to n receivers costs n reference bumps,
//     never n rehashes.
//   * `BroadcastLane` — the per-round broadcast buffer of a synchronous
//     engine. A broadcast is deposited ONCE (dedup against the cached hash
//     happens once per message, not once per receiver) and every member of
//     the round reads the same contiguous materialised view, so the common
//     all-broadcast round does zero per-receiver work.
//   * `ShardedLane` — the parallel engine's view of the same idea: one
//     `BroadcastLane` segment per merge lane, each filled lock-free by its
//     owning worker (senders are partitioned across lanes, so per-segment
//     dedup sees exactly the deposits the global set would), then `seal()`ed
//     once per round into a single contiguous send-ordered view shared by
//     every receiver. Segments cover ascending sender ranges and sequence
//     keys are globally ordered, so concatenation in segment order IS send
//     order — no sort, no merge.
//   * `Mailbox` — the per-receiver buffer for traffic that is genuinely
//     receiver-specific (unicasts, delayed redeliveries). `collect()` merges
//     it with the shared lane in send order; when a receiver has no private
//     traffic the returned span aliases the lane view directly.
//   * `FrameRef`/`FrameView`/`FrameMailbox` — the same idea one level down,
//     for the runtime's byte frames: a broadcast domain shares one
//     ref-counted frame and each endpoint's mailbox holds views into it.
//
// Ownership rules: a MessageRef/FrameRef keeps its payload alive for as long
// as any holder exists; payloads are immutable after wrapping. Spans returned
// by `Mailbox::collect` (and the frame `bytes` of a FrameView) are valid
// until the owning lane/ref is cleared or released — for the synchronous
// engine that means "for the duration of the current round's callbacks",
// matching the pre-existing `Process::on_round` inbox contract.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_set>
#include <vector>

#include "common/metrics.hpp"
#include "net/message.hpp"

namespace idonly {

/// Immutable, ref-counted message with its content hash and wire size
/// computed once at wrap time. Copying a MessageRef is a reference bump.
class MessageRef {
 public:
  MessageRef() = default;

  /// Wrap a message (after the engine stamped the sender — the hash covers
  /// identity + content, so stamp first). Computes hash and wire size once.
  [[nodiscard]] static MessageRef wrap(Message msg);

  [[nodiscard]] const Message& get() const noexcept { return cell_->msg; }
  const Message& operator*() const noexcept { return cell_->msg; }
  const Message* operator->() const noexcept { return &cell_->msg; }

  /// Content hash (identity included), cached — never recomputed per receiver.
  [[nodiscard]] std::size_t content_hash() const noexcept { return cell_->hash; }
  /// Codec frame size this message would occupy on the wire, cached.
  [[nodiscard]] std::size_t wire_bytes() const noexcept { return cell_->wire_bytes; }

  [[nodiscard]] explicit operator bool() const noexcept { return cell_ != nullptr; }
  [[nodiscard]] long use_count() const noexcept { return cell_.use_count(); }

  /// Cached-hash fast path, full content comparison on hash agreement.
  friend bool operator==(const MessageRef& a, const MessageRef& b) noexcept {
    return a.cell_ == b.cell_ ||
           (a.cell_ != nullptr && b.cell_ != nullptr && a.cell_->hash == b.cell_->hash &&
            a.cell_->msg == b.cell_->msg);
  }

 private:
  struct Cell {
    Message msg;
    std::size_t hash = 0;
    std::uint32_t wire_bytes = 0;
  };
  std::shared_ptr<const Cell> cell_;
};

/// Hashes through the cached content hash — a dedup-set probe never touches
/// the message fields again.
struct MessageRefHash {
  [[nodiscard]] std::size_t operator()(const MessageRef& r) const noexcept {
    return r.content_hash();
  }
};

/// Per-round broadcast buffer shared by every member of a synchronous round.
/// Deposit once; all receivers read the same contiguous view. Duplicate
/// suppression (identical sender + content within the round) happens at
/// deposit, once per message — the engine's model semantics, hoisted out of
/// the per-receiver loop.
class BroadcastLane {
 public:
  /// Deposit a broadcast with its send-order sequence number. Returns false
  /// when an identical message was already deposited this round (the
  /// duplicate is suppressed for every receiver at once).
  bool deposit(MessageRef ref, std::uint64_t seq);

  /// The round's broadcasts as contiguous storage, materialised lazily once
  /// per round and shared by all receivers. Valid until clear().
  [[nodiscard]] std::span<const Message> view() const;

  [[nodiscard]] bool contains(const MessageRef& ref) const { return seen_.contains(ref); }
  [[nodiscard]] std::span<const MessageRef> refs() const noexcept { return entries_; }
  [[nodiscard]] std::span<const std::uint64_t> seqs() const noexcept { return seqs_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  /// Per-kind deposit counts and total wire bytes — lets a receiver account
  /// a whole lane in O(kinds) instead of O(messages).
  [[nodiscard]] const std::array<std::uint64_t, MessageCounters::kKinds>& kind_counts()
      const noexcept {
    return kind_counts_;
  }
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept { return wire_bytes_; }

  /// Start a new round. Keeps capacity (steady-state rounds allocate nothing).
  void clear();

  /// Move this segment's entries/seqs into `refs`/`seqs` (appending) and
  /// reset them, KEEPING the dedup set — `contains()` keeps answering for
  /// everything deposited this round. Used by ShardedLane::seal(); after
  /// draining, `view()`/`refs()` on the segment are empty.
  void drain_into(std::vector<MessageRef>& refs, std::vector<std::uint64_t>& seqs);

 private:
  std::vector<MessageRef> entries_;
  std::vector<std::uint64_t> seqs_;
  std::unordered_set<MessageRef, MessageRefHash> seen_;
  std::array<std::uint64_t, MessageCounters::kKinds> kind_counts_{};
  std::uint64_t wire_bytes_ = 0;
  mutable std::vector<Message> view_;  // materialised prefix of entries_
};

/// The parallel round engine's broadcast buffer: one BroadcastLane segment
/// per merge lane. During the lane-merge phase each worker deposits its own
/// senders' broadcasts into its own segment — no locks, and per-segment
/// dedup is exact because duplicate suppression is per (sender, content) and
/// a sender belongs to exactly one lane. `seal()` (sequential, once per
/// round) concatenates the segments into one contiguous send-ordered view:
/// segments cover ascending sender ranges and deposit keys are globally
/// ordered, so segment order IS send order. After seal the read side is
/// BroadcastLane-compatible and shared by every receiver's collect().
class ShardedLane {
 public:
  /// Start a new round with `segments` lane segments (capacity reused).
  void reset(std::size_t segments);

  [[nodiscard]] BroadcastLane& segment(std::size_t k) { return segments_[k]; }
  [[nodiscard]] std::size_t segment_count() const noexcept { return active_segments_; }

  /// Concatenate segments (in segment order) into the sealed view and
  /// materialise the shared Message span eagerly — receivers collect from
  /// concurrent lanes next round, so no lazy mutation is allowed after this.
  void seal();

  // Sealed read interface (mirrors BroadcastLane).
  [[nodiscard]] bool contains(const MessageRef& ref) const;
  [[nodiscard]] std::span<const MessageRef> refs() const noexcept { return entries_; }
  [[nodiscard]] std::span<const std::uint64_t> seqs() const noexcept { return seqs_; }
  [[nodiscard]] std::span<const Message> view() const noexcept { return view_; }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] const std::array<std::uint64_t, MessageCounters::kKinds>& kind_counts()
      const noexcept {
    return kind_counts_;
  }
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept { return wire_bytes_; }

 private:
  std::vector<BroadcastLane> segments_;
  std::size_t active_segments_ = 0;
  // Sealed concatenation (entries moved out of the segments; the segments
  // keep their dedup sets so contains() still probes them).
  std::vector<MessageRef> entries_;
  std::vector<std::uint64_t> seqs_;
  std::array<std::uint64_t, MessageCounters::kKinds> kind_counts_{};
  std::uint64_t wire_bytes_ = 0;
  std::vector<Message> view_;
};

/// Per-receiver buffer for receiver-specific traffic: unicasts, delayed
/// redeliveries, and (when a delay hook forces per-receiver routing)
/// broadcasts. Holds references, not copies.
class Mailbox {
 public:
  /// Deposit with a send-order sequence number; dedups (cached hash) against
  /// everything deposited since the last collect(). Returns false when
  /// suppressed as a duplicate.
  bool deposit(MessageRef ref, std::uint64_t seq);

  /// Assemble this receiver's round inbox: the shared lane (may be null)
  /// merged with private traffic in send order, duplicates across the two
  /// suppressed. Fast path: with no private traffic the returned span
  /// aliases the lane's shared view — zero per-receiver work. Slow path:
  /// merges into `scratch` (reused across rounds by the caller).
  /// Updates `fanout` / `counters` with per-recipient delivery stats when
  /// non-null. Resets the private buffer.
  std::span<const Message> collect(const BroadcastLane* lane, std::vector<Message>& scratch,
                                   FanoutCounters* fanout = nullptr,
                                   MessageCounters* counters = nullptr);
  /// Same merge against a sealed ShardedLane (the parallel engine's round
  /// buffer). Safe to run concurrently for DIFFERENT receivers: the sealed
  /// lane is read-only and each Mailbox is owned by one merge lane.
  std::span<const Message> collect(const ShardedLane* lane, std::vector<Message>& scratch,
                                   FanoutCounters* fanout = nullptr,
                                   MessageCounters* counters = nullptr);

  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

 private:
  std::vector<MessageRef> entries_;
  std::vector<std::uint64_t> seqs_;
  std::unordered_set<MessageRef, MessageRefHash> seen_;
};

// --------------------------------------------------------------- frames --
// The byte-level half of the layer, used by the runtime transports. A Frame
// is wrapped into a ref-counted FrameRef once per broadcast; endpoints hold
// FrameViews (owner + byte span), so fan-out, decorator tag-stripping, and
// duplication are all reference operations, never buffer copies.

using Frame = std::vector<std::byte>;
using FrameRef = std::shared_ptr<const Frame>;

/// A window into a ref-counted frame. `bytes` stays valid while `owner`
/// lives; decorators narrow `bytes` (e.g. stripping an auth tag) without
/// touching the underlying buffer.
struct FrameView {
  FrameRef owner;
  std::span<const std::byte> bytes;
};

/// Copy `bytes` into a freshly allocated shared frame (the ONE copy a
/// broadcast pays, after which all receivers share it).
[[nodiscard]] FrameRef make_frame_ref(std::span<const std::byte> bytes);
[[nodiscard]] FrameView make_frame_view(std::span<const std::byte> bytes);
/// View over an already-shared frame — no copy at all.
[[nodiscard]] FrameView make_frame_view(FrameRef owner);

/// Thread-safe endpoint mailbox of frame views — the runtime analogue of
/// Mailbox, shared by the in-memory hub's endpoints.
class FrameMailbox {
 public:
  void deposit(FrameView view);
  [[nodiscard]] std::vector<FrameView> drain();
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::vector<FrameView> views_;
};

}  // namespace idonly
