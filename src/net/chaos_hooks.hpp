// ChaosSchedule adapters for the simulators' fault-injection surfaces.
//
// The schedule itself is engine-agnostic (a pure verdict per LinkEvent);
// these helpers translate each engine's native hook into link events so the
// SAME schedule replays the SAME faults everywhere. The sync simulator's
// adapter lives on the class (SyncSimulator::set_chaos — it needs the
// per-receiver routing internals); this header covers the async engine.
#pragma once

#include <memory>

#include "common/chaos.hpp"
#include "common/trace.hpp"
#include "net/async_simulator.hpp"

namespace idonly {

/// Build a DelayModel for AsyncSimulator that consults `chaos`. Simulated
/// time is mapped onto rounds by `round_duration`: a message sent at time t
/// belongs to round floor(t / round_duration) + 1, and the baseline latency
/// is one round_duration (sent in round r ⇒ delivered in round r+1 — the
/// synchronous model realised on the async engine). Verdicts translate as:
/// drop ⇒ negative latency (never delivered), delay of k rounds ⇒ latency
/// (1 + k) · round_duration. Duplication and corruption cannot be expressed
/// through a latency return; the verdicts still land in the shared trace —
/// the cross-engine reproducibility contract — and the engine applies the
/// subset it can represent.
///
/// Sequence numbers count per (round, from, to) link inside the returned
/// closure, so the k-th send on a link keys identically to the other
/// engines. The model is stateful; use one instance per simulator run.
[[nodiscard]] DelayModel make_chaos_delay_model(std::shared_ptr<ChaosSchedule> chaos,
                                                Time round_duration);

/// Same, with a flight recorder: every verdict the model asks for is also
/// recorded as a canonical link record, so the async engine's
/// `canonical_jsonl()` is byte-comparable with the other engines' traces.
/// Pass a null recorder to get the plain model.
[[nodiscard]] DelayModel make_chaos_delay_model(std::shared_ptr<ChaosSchedule> chaos,
                                                Time round_duration,
                                                std::shared_ptr<TraceRecorder> recorder);

}  // namespace idonly
