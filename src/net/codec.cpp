#include "net/codec.hpp"

#include <bit>
#include <cstring>
#include <limits>

namespace idonly {

namespace {
constexpr std::uint8_t kFlagBot = 0x01;
constexpr int kMaxKind = 15;  // MsgKind is a dense enum 0..15
}  // namespace

void put_varint(std::uint64_t value, std::vector<std::byte>& out) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::byte>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::byte>(value));
}

std::optional<std::uint64_t> get_varint(std::span<const std::byte> bytes, std::size_t& offset) {
  std::uint64_t value = 0;
  int shift = 0;
  while (offset < bytes.size()) {
    const auto b = static_cast<std::uint8_t>(bytes[offset]);
    offset += 1;
    if (shift == 63 && (b & 0x7E) != 0) return std::nullopt;  // overflow
    if (shift > 63) return std::nullopt;
    value |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      if (b == 0 && shift != 0) return std::nullopt;  // non-canonical padding
      return value;
    }
    shift += 7;
  }
  return std::nullopt;  // truncated
}

std::size_t encode(const Message& msg, std::vector<std::byte>& out) {
  const std::size_t start = out.size();
  out.push_back(static_cast<std::byte>(kWireVersion));
  out.push_back(static_cast<std::byte>(msg.kind));
  out.push_back(static_cast<std::byte>(msg.value.is_bot() ? kFlagBot : 0));
  put_varint(msg.sender, out);
  put_varint(msg.subject, out);
  put_varint(msg.instance, out);
  put_varint(msg.round_tag, out);
  if (!msg.value.is_bot()) {
    const auto bits = std::bit_cast<std::uint64_t>(msg.value.as_real());
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<std::byte>((bits >> (8 * i)) & 0xFF));
    }
  }
  return out.size() - start;
}

std::vector<std::byte> encode(const Message& msg) {
  std::vector<std::byte> out;
  encode(msg, out);
  return out;
}

std::size_t encoded_size(const Message& msg) noexcept {
  const auto varint_size = [](std::uint64_t v) noexcept {
    std::size_t n = 1;
    while (v >= 0x80) {
      v >>= 7;
      n += 1;
    }
    return n;
  };
  return 3 + varint_size(msg.sender) + varint_size(msg.subject) + varint_size(msg.instance) +
         varint_size(msg.round_tag) + (msg.value.is_bot() ? 0 : 8);
}

std::optional<Message> decode(std::span<const std::byte> bytes) {
  if (bytes.size() < 3) return std::nullopt;
  if (static_cast<std::uint8_t>(bytes[0]) != kWireVersion) return std::nullopt;
  const auto kind_raw = static_cast<std::uint8_t>(bytes[1]);
  if (kind_raw > kMaxKind) return std::nullopt;
  const auto flags = static_cast<std::uint8_t>(bytes[2]);
  if ((flags & ~kFlagBot) != 0) return std::nullopt;

  Message msg;
  msg.kind = static_cast<MsgKind>(kind_raw);
  std::size_t offset = 3;
  const auto sender = get_varint(bytes, offset);
  const auto subject = get_varint(bytes, offset);
  const auto instance = get_varint(bytes, offset);
  const auto round_tag = get_varint(bytes, offset);
  if (!sender || !subject || !instance || !round_tag) return std::nullopt;
  if (*instance > std::numeric_limits<InstanceTag>::max()) return std::nullopt;
  if (*round_tag > std::numeric_limits<std::uint32_t>::max()) return std::nullopt;
  msg.sender = *sender;
  msg.subject = *subject;
  msg.instance = static_cast<InstanceTag>(*instance);
  msg.round_tag = static_cast<std::uint32_t>(*round_tag);

  if ((flags & kFlagBot) != 0) {
    msg.value = Value::bot();
  } else {
    if (bytes.size() - offset < 8) return std::nullopt;
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i) {
      bits |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(bytes[offset + i])) << (8 * i);
    }
    offset += 8;
    msg.value = Value::real(std::bit_cast<double>(bits));
  }
  if (offset != bytes.size()) return std::nullopt;  // trailing bytes
  return msg;
}

void SlabWriter::reset(Round round) {
  buffer_.clear();
  frames_ = 0;
  buffer_.push_back(static_cast<std::byte>(kSlabMagic));
  put_varint(static_cast<std::uint64_t>(round), buffer_);
}

void SlabWriter::add(const Message& msg) {
  put_varint(encoded_size(msg), buffer_);
  encode(msg, buffer_);
  frames_ += 1;
}

void ShardSlabWriter::reset(std::uint32_t shard, Round round) {
  shard_ = shard;
  round_ = round;
  body_.clear();
  buffer_.clear();
  frames_ = 0;
}

void ShardSlabWriter::add(std::optional<NodeId> to, const Message& msg) {
  put_varint(to.has_value() ? *to + 1 : 0, body_);
  put_varint(encoded_size(msg), body_);
  encode(msg, body_);
  frames_ += 1;
  buffer_.clear();  // header depends on the frame count; reassemble lazily
}

std::span<const std::byte> ShardSlabWriter::bytes() const {
  if (buffer_.empty()) {
    buffer_.push_back(static_cast<std::byte>(kShardSlabMagic));
    put_varint(shard_, buffer_);
    put_varint(static_cast<std::uint64_t>(round_), buffer_);
    put_varint(frames_, buffer_);
    buffer_.insert(buffer_.end(), body_.begin(), body_.end());
  }
  return buffer_;
}

std::optional<ShardSlabView> parse_shard_slab(std::span<const std::byte> bytes) {
  if (bytes.empty() || static_cast<std::uint8_t>(bytes[0]) != kShardSlabMagic) {
    return std::nullopt;
  }
  std::size_t offset = 1;
  const auto shard = get_varint(bytes, offset);
  const auto round = get_varint(bytes, offset);
  const auto count = get_varint(bytes, offset);
  if (!shard || !round || !count) return std::nullopt;
  if (*shard > std::numeric_limits<std::uint32_t>::max()) return std::nullopt;
  if (*round == 0 || *round > static_cast<std::uint64_t>(std::numeric_limits<Round>::max())) {
    return std::nullopt;  // rounds are 1-based and must fit Round
  }
  if (*count == 0) return std::nullopt;  // an empty shard slab is never sent
  ShardSlabView view;
  view.shard = static_cast<std::uint32_t>(*shard);
  view.round = static_cast<Round>(*round);
  for (std::uint64_t i = 0; i < *count; ++i) {
    const auto to_tag = get_varint(bytes, offset);
    if (!to_tag) return std::nullopt;
    const auto length = get_varint(bytes, offset);
    if (!length) return std::nullopt;
    if (*length == 0 || *length > bytes.size() - offset) return std::nullopt;
    ShardSlabView::Entry entry;
    if (*to_tag != 0) entry.to = *to_tag - 1;
    entry.frame = bytes.subspan(offset, *length);
    offset += *length;
    view.entries.push_back(entry);
  }
  if (offset != bytes.size()) return std::nullopt;  // trailing bytes
  return view;
}

std::vector<std::byte> encode_peer_hello(std::uint32_t shard, std::uint32_t shards) {
  std::vector<std::byte> out;
  out.push_back(static_cast<std::byte>(kPeerHelloMagic));
  put_varint(shard, out);
  put_varint(shards, out);
  return out;
}

std::optional<PeerHello> parse_peer_hello(std::span<const std::byte> bytes) {
  if (bytes.empty() || static_cast<std::uint8_t>(bytes[0]) != kPeerHelloMagic) {
    return std::nullopt;
  }
  std::size_t offset = 1;
  const auto shard = get_varint(bytes, offset);
  const auto shards = get_varint(bytes, offset);
  if (!shard || !shards) return std::nullopt;
  if (*shards == 0 || *shards > std::numeric_limits<std::uint32_t>::max()) return std::nullopt;
  if (*shard >= *shards) return std::nullopt;
  if (offset != bytes.size()) return std::nullopt;  // trailing bytes
  return PeerHello{static_cast<std::uint32_t>(*shard), static_cast<std::uint32_t>(*shards)};
}

std::vector<std::byte> encode_peer_beacon(std::uint32_t shard, Round round) {
  std::vector<std::byte> out;
  out.push_back(static_cast<std::byte>(kPeerBeaconMagic));
  put_varint(shard, out);
  put_varint(static_cast<std::uint64_t>(round), out);
  return out;
}

std::optional<PeerBeacon> parse_peer_beacon(std::span<const std::byte> bytes) {
  if (bytes.empty() || static_cast<std::uint8_t>(bytes[0]) != kPeerBeaconMagic) {
    return std::nullopt;
  }
  std::size_t offset = 1;
  const auto shard = get_varint(bytes, offset);
  const auto round = get_varint(bytes, offset);
  if (!shard || !round) return std::nullopt;
  if (*shard > std::numeric_limits<std::uint32_t>::max()) return std::nullopt;
  if (*round == 0 || *round > static_cast<std::uint64_t>(std::numeric_limits<Round>::max())) {
    return std::nullopt;  // rounds are 1-based and must fit Round
  }
  if (offset != bytes.size()) return std::nullopt;  // trailing bytes
  return PeerBeacon{static_cast<std::uint32_t>(*shard), static_cast<Round>(*round)};
}

std::optional<SlabView> parse_slab(std::span<const std::byte> bytes) {
  if (bytes.empty() || static_cast<std::uint8_t>(bytes[0]) != kSlabMagic) return std::nullopt;
  std::size_t offset = 1;
  const auto round = get_varint(bytes, offset);
  if (!round) return std::nullopt;
  if (*round == 0 || *round > static_cast<std::uint64_t>(std::numeric_limits<Round>::max())) {
    return std::nullopt;  // rounds are 1-based and must fit Round
  }
  SlabView view;
  view.round = static_cast<Round>(*round);
  while (offset < bytes.size()) {
    const auto length = get_varint(bytes, offset);
    if (!length) return std::nullopt;
    if (*length == 0 || *length > bytes.size() - offset) return std::nullopt;
    view.frames.push_back(bytes.subspan(offset, *length));
    offset += *length;
  }
  if (view.frames.empty()) return std::nullopt;  // an empty slab is never sent
  return view;
}

}  // namespace idonly
