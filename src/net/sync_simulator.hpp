// Synchronous round-based network simulator — the paper's system model.
//
// Semantics (paper §Model):
//   * Computation proceeds in lock-step rounds; a message sent in round r is
//     delivered at the start of round r+1.
//   * Broadcast reaches *every* current member, including the sender (the
//     self-inclusive reading is explicit in Alg. 4 and implicit in every
//     quorum count of the proofs).
//   * Duplicate identical messages from one sender within a round are
//     discarded at the receiver.
//   * Membership may change between rounds (dynamic networks, §Application
//     to Dynamic Networks): joins become effective at the start of the next
//     round, removals at the end of the current one.
//
// Determinism: processes are stepped in ascending id order and all protocol
// randomness flows from explicit seeds, so a (scenario, seed) pair replays
// bit-identically. With set_threads(k > 1) BOTH halves of a round run on a
// persistent worker pool (net/parallel_exec.hpp): processes fill private
// outbox slabs in parallel, then the destination slots are partitioned into
// contiguous per-worker merge LANES and every lane routes its receivers'
// traffic concurrently. There is no sequential replay pass — order-sensitive
// effects are reconstructed from precomputed deterministic keys (per-slab
// prefix sums over the global send order, per-link chaos sequence counters)
// or staged per lane and committed in lane order, so sequence stamps, chaos
// verdicts, and trace records are bit-identical to the sequential engine for
// every thread count (DESIGN.md §8 gives the argument).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/flat_set.hpp"

#include "common/chaos.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "common/types.hpp"
#include "net/mailbox.hpp"
#include "net/parallel_exec.hpp"
#include "net/process.hpp"

namespace idonly {

class SyncSimulator {
 public:
  SyncSimulator() = default;

  /// Register a process; it participates from the next executed round.
  /// Throws std::invalid_argument when a live or already-queued process
  /// holds the same id. Re-using the id of a process queued for removal is
  /// allowed (the removal lands first at the next step).
  void add_process(std::unique_ptr<Process> process);

  /// Remove a process after the current round (its messages already sent
  /// this round are still delivered). No-op when the id is unknown.
  void remove_process(NodeId id);

  /// Execute one synchronous round.
  void step();

  /// Shard the per-round process stepping across `threads` threads (1 =
  /// sequential, the default). The observable execution — delivery order,
  /// sequence stamps, chaos verdicts, traces — is identical for every
  /// value; only wall-clock changes. May be called between rounds.
  void set_threads(unsigned threads);
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }

  /// Execute rounds until `pred()` is true or `max_rounds` elapse; returns
  /// true when the predicate fired.
  bool run_until(const std::function<bool()>& pred, Round max_rounds);

  /// Execute until every non-Byzantine process reports done(); returns true
  /// on success within `max_rounds`.
  bool run_until_all_correct_done(Round max_rounds);

  void run_rounds(Round count);

  [[nodiscard]] Round round() const noexcept { return round_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  /// One routed message as observed by the engine (post sender-stamping).
  struct TraceEntry {
    Round round = 0;                ///< round in which the message was SENT
    NodeId from = 0;
    std::optional<NodeId> to;       ///< empty → broadcast
    Message msg;
  };

  /// Synchrony-fault injection: return how many EXTRA rounds to delay this
  /// message (0 = normal next-round delivery). Delaying traffic between
  /// correct nodes deliberately violates the paper's model — the hook exists
  /// to demonstrate, constructively, that the algorithms *need* the
  /// synchrony assumption (experiment E6). Unset by default.
  using DelayHook =
      std::function<Round(NodeId from, NodeId to, const Message& msg, Round sent_round)>;
  void set_delay_hook(DelayHook hook) { delay_hook_ = std::move(hook); }

  /// Install a shared chaos schedule (common/chaos.hpp). Every delivery
  /// attempt — broadcast fan-out and unicast alike — is keyed as a
  /// LinkEvent{sent_round, from, to, per-link seq} and the schedule's
  /// verdict applied: drops skip the deposit, delays reuse the delayed_
  /// queue, duplicates deposit a second copy (the model's per-round dedup
  /// suppresses it — the verdict still lands in the shared trace, which is
  /// the cross-engine contract). Corruption cannot mangle a typed Message;
  /// it is recorded in the trace only. Self-delivery is never faulted.
  void set_chaos(std::shared_ptr<ChaosSchedule> chaos) { chaos_ = std::move(chaos); }
  [[nodiscard]] const std::shared_ptr<ChaosSchedule>& chaos() const noexcept { return chaos_; }

  /// Attach a flight recorder (common/trace.hpp): every send, every
  /// delivery, and — when a chaos schedule is installed — every link
  /// verdict is recorded. Off (null) by default; the broadcast fast path is
  /// untouched when no recorder is set.
  void set_trace_recorder(std::shared_ptr<TraceRecorder> recorder) {
    recorder_ = std::move(recorder);
  }
  [[nodiscard]] const std::shared_ptr<TraceRecorder>& trace_recorder() const noexcept {
    return recorder_;
  }

  /// Start recording every routed message (ring-buffered at `capacity`).
  /// Intended for tests and debugging; off by default.
  void enable_trace(std::size_t capacity = 1 << 20);
  [[nodiscard]] const std::deque<TraceEntry>& trace() const noexcept { return trace_; }
  /// Render the trace (optionally restricted to one round) for debugging.
  [[nodiscard]] std::string dump_trace(std::optional<Round> only_round = std::nullopt) const;

  /// Live process lookup (nullptr when absent). The returned pointer stays
  /// valid until the process is removed.
  [[nodiscard]] Process* find(NodeId id);
  [[nodiscard]] const Process* find(NodeId id) const;

  /// Typed convenience lookup: `sim.get<ConsensusProcess>(id)`.
  template <typename T>
  [[nodiscard]] T* get(NodeId id) {
    return dynamic_cast<T*>(find(id));
  }

  /// Sorted live-member ids. Served from a cache invalidated on membership
  /// change (run_until predicates may call this every round).
  [[nodiscard]] const std::vector<NodeId>& member_ids() const;
  [[nodiscard]] std::size_t member_count() const noexcept { return members_.size(); }

  /// Iterate live correct (non-Byzantine) processes.
  void for_each_correct(const std::function<void(Process&)>& fn);

 private:
  struct Member {
    std::unique_ptr<Process> process;
    Round joined_round = 0;        // global round of first participation
    Mailbox mailbox;               // receiver-specific traffic (unicasts, delays)
    std::vector<Message> scratch;  // merge buffer, reused across rounds
  };

  /// One member's slice of a round, assembled before anyone steps. The
  /// outbox slab, wrapped refs, and done flags live here so the parallel
  /// phases touch only private state; dispatches_ persists across rounds
  /// (the round arena — slab/scratch capacity is reused, steady-state rounds
  /// allocate nothing).
  struct Dispatch {
    NodeId id = 0;
    Member* member = nullptr;
    std::span<const Message> inbox;
    std::vector<Outgoing> outbox;     // private slab filled by on_round
    std::vector<MessageRef> refs;     // outbox wrapped (stamped + hashed), same order
    std::uint64_t msg_base = 0;       // global send ordinal of outbox[0] this round
    bool became_done = false;
  };

  /// Per-lane scratch state for the parallel merge: every order-sensitive
  /// side effect a lane produces is either keyed deterministically (mailbox
  /// deposits) or staged here lock-free and folded into the shared engine
  /// state in lane order by the sequential epilogue. Cache-line aligned so
  /// concurrent lanes never false-share counters.
  struct alignas(64) LaneArena {
    MessageCounters messages;  // delivered (inbox phase) + sent (merge phase)
    FanoutCounters fanout;
    FlatMap<std::pair<NodeId, NodeId>, std::uint64_t> link_seq;  // per round, lane-owned links
    std::vector<TraceRecord> trace_stage;       // recorder records, per-ring order
    std::vector<std::pair<LinkEvent, FaultDecision>> chaos_stage;  // faulted verdicts only
    struct Delayed {
      Round due = 0;
      NodeId to = 0;
      MessageRef ref;
    };
    std::vector<Delayed> delayed_stage;
    std::vector<TraceEntry> debug_stage;        // enable_trace() ring entries
  };

  /// Run `fn(0..count)` on the pool when it exists (and count warrants it),
  /// inline otherwise.
  void run_tasks(std::size_t count, const std::function<void(std::size_t)>& fn);
  /// Dispatch slot of a live member (dispatches_ is ascending by id), or
  /// dispatches_.size() when the id is not a member this round.
  [[nodiscard]] std::size_t slot_of(NodeId id) const noexcept;
  /// Phase 3 for one lane: walk every message in global send order and apply
  /// the effects this lane owns (sender-side bookkeeping for its senders,
  /// deposits/chaos/trace for its receivers). See DESIGN.md §8.
  void merge_lane(std::size_t lane_index);

  std::map<NodeId, Member> members_;                 // ordered → deterministic stepping
  std::vector<std::unique_ptr<Process>> pending_joins_;
  std::vector<NodeId> pending_removals_;
  std::vector<Dispatch> dispatches_;                 // round arena, reused across rounds
  std::vector<LaneArena> arenas_;                    // lane arenas, reused across rounds
  std::vector<std::size_t> lane_starts_;  // lane l owns slots [starts[l], starts[l+1])
  unsigned threads_ = 1;
  std::unique_ptr<ParallelExecutor> executor_;       // live iff threads_ > 1
  mutable std::vector<NodeId> member_ids_cache_;
  mutable bool member_ids_dirty_ = true;
  Round round_ = 0;
  Metrics metrics_;
  bool tracing_ = false;
  std::size_t trace_capacity_ = 0;
  std::deque<TraceEntry> trace_;
  DelayHook delay_hook_;
  std::shared_ptr<ChaosSchedule> chaos_;
  std::shared_ptr<TraceRecorder> recorder_;
  // Broadcast fan-out goes through the shared mailbox layer: one deposit per
  // broadcast instead of a copy per receiver. Two sharded lanes alternate:
  // the one sealed last step is consumed (all members read its flat view)
  // while this step's merge lanes fill the other, one segment per lane.
  ShardedLane lanes_[2];
  int fill_lane_ = 0;    // index of the lane collecting this step's sends
  std::uint64_t seq_ = 0;  // global send-order stamp for lane/mailbox merging
  std::map<Round, std::vector<std::pair<NodeId, MessageRef>>> delayed_;  // due round → deliveries
};

}  // namespace idonly
