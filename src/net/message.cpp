#include "net/message.hpp"

#include <sstream>

namespace idonly {

std::string to_string(MsgKind kind) {
  switch (kind) {
    case MsgKind::kPresent: return "present";
    case MsgKind::kInit: return "init";
    case MsgKind::kEcho: return "echo";
    case MsgKind::kPayload: return "payload";
    case MsgKind::kOpinion: return "opinion";
    case MsgKind::kInput: return "input";
    case MsgKind::kPrefer: return "prefer";
    case MsgKind::kStrongPrefer: return "strongprefer";
    case MsgKind::kNoPreference: return "nopreference";
    case MsgKind::kNoStrongPref: return "nostrongpreference";
    case MsgKind::kAck: return "ack";
    case MsgKind::kAbsent: return "absent";
    case MsgKind::kEvent: return "event";
    case MsgKind::kTerminate: return "terminate";
    case MsgKind::kApproxValue: return "approxvalue";
    case MsgKind::kNoise: return "noise";
  }
  return "unknown";
}

std::string Message::to_string() const {
  std::ostringstream os;
  os << idonly::to_string(kind) << "{from=" << sender;
  if (subject != 0) os << " subj=" << subject;
  if (instance != 0) os << " inst=" << instance;
  if (!value.is_bot()) os << " val=" << value.to_string();
  if (round_tag != 0) os << " rtag=" << round_tag;
  os << "}";
  return os.str();
}

}  // namespace idonly
