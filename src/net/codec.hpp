// Wire codec for Message.
//
// The simulators exchange in-memory structs, but a deployment of these
// protocols sends bytes; this codec fixes the frame format so protocol state
// machines can be lifted onto a real transport unchanged. Format (version-
// prefixed, little-endian varints):
//
//   byte 0      format version (kWireVersion)
//   byte 1      MsgKind
//   byte 2      flags (bit 0: value is ⊥)
//   varint      sender
//   varint      subject
//   varint      instance
//   varint      round_tag
//   8 bytes     IEEE-754 value payload (omitted when ⊥)
//
// decode() is total: any input that is not a well-formed frame yields
// nullopt (never UB, never a partial message) — a Byzantine peer controls
// these bytes.
//
// Slab format (frame coalescing): the runtime sends ONE datagram per peer per
// round instead of one per message. A slab is:
//
//   byte 0      kSlabMagic (0xAB — never a valid frame: version byte is 1)
//   varint      round the slab was sent in
//   repeated:   varint frame length (> 0), then that many frame bytes
//
// parse_slab() is structural only — it slices the payload into per-frame
// subspans without decoding them, so receivers can reuse zero-copy FrameViews
// and apply the normal per-frame decode()/drop accounting. It is total like
// decode(): any malformation (bad magic, zero/overlong length, trailing or
// missing bytes, zero frames) yields nullopt so callers can fall back to the
// legacy one-frame-per-datagram format.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"

namespace idonly {

inline constexpr std::uint8_t kWireVersion = 1;

/// First byte of a coalesced slab datagram. Distinct from kWireVersion so a
/// receiver can tell slab and legacy frames apart from byte 0 (a legacy
/// varint round header can also start with 0xAB — e.g. varint(171) — which is
/// why slab detection is "magic byte AND structurally valid", with a legacy
/// fallback on parse failure).
inline constexpr std::uint8_t kSlabMagic = 0xAB;

/// Append the encoded frame to `out`; returns the encoded size.
std::size_t encode(const Message& msg, std::vector<std::byte>& out);

/// Encode into a fresh buffer.
[[nodiscard]] std::vector<std::byte> encode(const Message& msg);

/// Decode one frame occupying the whole span. Returns nullopt on any
/// malformation: wrong version, unknown kind, truncation, trailing bytes,
/// or non-canonical varints.
[[nodiscard]] std::optional<Message> decode(std::span<const std::byte> bytes);

/// Size encode() would produce, without encoding (pure arithmetic — safe on
/// a hot path; the mailbox layer caches it per message for byte accounting).
[[nodiscard]] std::size_t encoded_size(const Message& msg) noexcept;

/// LEB128-style unsigned varint used by the codec (exposed for tests).
void put_varint(std::uint64_t value, std::vector<std::byte>& out);
/// Reads a varint at `offset`, advancing it; nullopt on truncation/overflow.
[[nodiscard]] std::optional<std::uint64_t> get_varint(std::span<const std::byte> bytes,
                                                      std::size_t& offset);

/// Builds one coalesced slab datagram: magic + round header + length-prefixed
/// encoded frames. Reusable across rounds via reset() so the send path does
/// not reallocate per round.
class SlabWriter {
 public:
  /// Drops any accumulated frames and starts a slab for `round`.
  void reset(Round round);
  /// Appends one length-prefixed encoded frame.
  void add(const Message& msg);
  /// Number of frames added since the last reset().
  [[nodiscard]] std::size_t frame_count() const noexcept { return frames_; }
  /// The full slab datagram (magic + header + frames added so far).
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept { return buffer_; }

 private:
  std::vector<std::byte> buffer_;
  std::size_t frames_ = 0;
};

/// Result of a structural slab parse: the round header plus one subspan of
/// the input per contained frame (zero-copy — spans alias the parsed bytes).
struct SlabView {
  Round round = 0;
  std::vector<std::span<const std::byte>> frames;
};

/// Structurally parse a slab. Total: nullopt on bad magic, malformed or
/// out-of-range round, zero frames, zero-length or overlong frame prefixes,
/// or trailing bytes. Does NOT decode the contained frames.
[[nodiscard]] std::optional<SlabView> parse_slab(std::span<const std::byte> bytes);

// ------------------------------------------------------------ shard slab --
// Cross-shard batch format used by the distributed shard engine (src/dist/):
// one slab per (source shard, destination shard) per round, carrying every
// frame the destination shard must merge. Extends the plain slab with a
// shard header and per-frame routing tags:
//
//   byte 0      kShardSlabMagic (0xAC — distinct from frames and plain slabs)
//   varint      source shard id
//   varint      round the frames were sent in
//   varint      frame count (> 0 — an empty shard slab is never sent)
//   repeated:   varint destination tag (0 = broadcast, id+1 = unicast to id),
//               varint frame length (> 0), then that many frame bytes
//
// The explicit frame count (plain slabs rely on "until end of buffer") lets
// a receiver distinguish truncation from completion before touching any
// frame — a shard slab crosses a process boundary, where a short read is a
// wedged or dying peer, not background noise.

/// First byte of a cross-shard slab. Never a valid frame (version byte is 1)
/// and never a plain slab (kSlabMagic is 0xAB); like kSlabMagic, detection
/// is "magic AND structurally valid".
inline constexpr std::uint8_t kShardSlabMagic = 0xAC;

/// Builds one cross-shard slab: shard header + routed length-prefixed
/// frames. Reusable across rounds via reset().
class ShardSlabWriter {
 public:
  /// Drops any accumulated frames and starts a slab from `shard` for `round`.
  void reset(std::uint32_t shard, Round round);
  /// Appends one frame routed to `to` (nullopt = broadcast).
  void add(std::optional<NodeId> to, const Message& msg);
  [[nodiscard]] std::size_t frame_count() const noexcept { return frames_; }
  [[nodiscard]] bool empty() const noexcept { return frames_ == 0; }
  /// The full slab (header with the final frame count + frames). Valid
  /// until the next reset()/add().
  [[nodiscard]] std::span<const std::byte> bytes() const;

 private:
  std::uint32_t shard_ = 0;
  Round round_ = 0;
  std::vector<std::byte> body_;
  mutable std::vector<std::byte> buffer_;  // assembled lazily by bytes()
  std::size_t frames_ = 0;
};

/// Result of a structural shard-slab parse: the header plus one routed
/// subspan per frame (zero-copy — spans alias the parsed bytes).
struct ShardSlabView {
  std::uint32_t shard = 0;
  Round round = 0;
  struct Entry {
    std::optional<NodeId> to;  ///< empty → broadcast
    std::span<const std::byte> frame;
  };
  std::vector<Entry> entries;
};

/// Structurally parse a shard slab. Total like parse_slab(): nullopt on bad
/// magic, malformed header, a frame count that disagrees with the body,
/// zero frames, zero-length or overlong frame prefixes, or trailing bytes.
[[nodiscard]] std::optional<ShardSlabView> parse_shard_slab(std::span<const std::byte> bytes);

// ---------------------------------------------------------- mesh peering --
// The distributed shard engine's direct worker↔worker mesh (src/dist/)
// carries two more payload kinds on its peer sockets, both sharing the
// shard-slab header prefix (magic, varint shard, varint round where
// applicable) so a receiver can route any mesh payload from its first
// bytes:
//
//   peer hello (handshake, once per socket at fork time):
//     byte 0    kPeerHelloMagic (0xAD)
//     varint    sender's shard id
//     varint    total shard count (echoed so both ends pin ONE topology)
//
//   empty-round beacon (one per peer per round with no cross-shard traffic):
//     byte 0    kPeerBeaconMagic (0xAE)
//     varint    sender's shard id
//     varint    round (1-based)
//
// An empty shard slab is never sent (see above), but a mesh receiver must
// still distinguish "peer has nothing for me this round" from "slab still in
// flight" — the beacon is that explicit absence, which is what lets the
// boundary merge start the moment every peer has spoken. Both parsers are
// total: a garbled handshake or beacon is rejected before any slab is
// parsed, exactly like a malformed slab.

/// First byte of a mesh handshake payload.
inline constexpr std::uint8_t kPeerHelloMagic = 0xAD;
/// First byte of a mesh empty-round beacon.
inline constexpr std::uint8_t kPeerBeaconMagic = 0xAE;

struct PeerHello {
  std::uint32_t shard = 0;
  std::uint32_t shards = 0;
};

[[nodiscard]] std::vector<std::byte> encode_peer_hello(std::uint32_t shard,
                                                       std::uint32_t shards);
/// Total parse: nullopt on bad magic, truncation, trailing bytes, overflow,
/// a zero shard count, or a shard id outside [0, shards).
[[nodiscard]] std::optional<PeerHello> parse_peer_hello(std::span<const std::byte> bytes);

struct PeerBeacon {
  std::uint32_t shard = 0;
  Round round = 0;
};

[[nodiscard]] std::vector<std::byte> encode_peer_beacon(std::uint32_t shard, Round round);
/// Total parse: nullopt on bad magic, truncation, trailing bytes, overflow,
/// or a round that is zero or does not fit Round.
[[nodiscard]] std::optional<PeerBeacon> parse_peer_beacon(std::span<const std::byte> bytes);

}  // namespace idonly
