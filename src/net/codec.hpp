// Wire codec for Message.
//
// The simulators exchange in-memory structs, but a deployment of these
// protocols sends bytes; this codec fixes the frame format so protocol state
// machines can be lifted onto a real transport unchanged. Format (version-
// prefixed, little-endian varints):
//
//   byte 0      format version (kWireVersion)
//   byte 1      MsgKind
//   byte 2      flags (bit 0: value is ⊥)
//   varint      sender
//   varint      subject
//   varint      instance
//   varint      round_tag
//   8 bytes     IEEE-754 value payload (omitted when ⊥)
//
// decode() is total: any input that is not a well-formed frame yields
// nullopt (never UB, never a partial message) — a Byzantine peer controls
// these bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/message.hpp"

namespace idonly {

inline constexpr std::uint8_t kWireVersion = 1;

/// Append the encoded frame to `out`; returns the encoded size.
std::size_t encode(const Message& msg, std::vector<std::byte>& out);

/// Encode into a fresh buffer.
[[nodiscard]] std::vector<std::byte> encode(const Message& msg);

/// Decode one frame occupying the whole span. Returns nullopt on any
/// malformation: wrong version, unknown kind, truncation, trailing bytes,
/// or non-canonical varints.
[[nodiscard]] std::optional<Message> decode(std::span<const std::byte> bytes);

/// Size encode() would produce, without encoding (pure arithmetic — safe on
/// a hot path; the mailbox layer caches it per message for byte accounting).
[[nodiscard]] std::size_t encoded_size(const Message& msg) noexcept;

/// LEB128-style unsigned varint used by the codec (exposed for tests).
void put_varint(std::uint64_t value, std::vector<std::byte>& out);
/// Reads a varint at `offset`, advancing it; nullopt on truncation/overflow.
[[nodiscard]] std::optional<std::uint64_t> get_varint(std::span<const std::byte> bytes,
                                                      std::size_t& offset);

}  // namespace idonly
