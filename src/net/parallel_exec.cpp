#include "net/parallel_exec.hpp"

namespace idonly {

ParallelExecutor::ParallelExecutor(unsigned threads) : threads_(threads < 1 ? 1 : threads) {
  // The calling thread participates in every batch, so spawn threads-1.
  for (unsigned i = 1; i < threads_; ++i) {
    pool_.emplace_back([this] { worker_loop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : pool_) t.join();
}

void ParallelExecutor::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || generation_ != seen_generation; });
      if (stopping_) return;
      seen_generation = generation_;
    }
    work();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_workers_ -= 1;
    }
    done_.notify_one();
  }
}

void ParallelExecutor::work() {
  while (true) {
    std::size_t index;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (cursor_ >= batch_size_) return;
      index = cursor_++;
    }
    try {
      (*fn_)(index);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (first_error_ == nullptr) first_error_ = std::current_exception();
    }
  }
}

void ParallelExecutor::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (pool_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    batch_size_ = n;
    cursor_ = 0;
    first_error_ = nullptr;
    busy_workers_ = static_cast<unsigned>(pool_.size());
    generation_ += 1;
  }
  wake_.notify_all();
  work();  // the caller claims indices too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return busy_workers_ == 0; });
    fn_ = nullptr;
    error = first_error_;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace idonly
