#include "net/parallel_exec.hpp"

#include <algorithm>

namespace idonly {

ParallelExecutor::ParallelExecutor(unsigned threads) : threads_(threads < 1 ? 1 : threads) {
  // The calling thread participates in every batch, so spawn threads-1.
  for (unsigned i = 1; i < threads_; ++i) {
    pool_.emplace_back([this] { worker_loop(); });
  }
}

ParallelExecutor::~ParallelExecutor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : pool_) t.join();
}

void ParallelExecutor::worker_loop() {
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stopping_ || generation_ != seen_generation; });
      if (stopping_) return;
      seen_generation = generation_;
    }
    work();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      busy_workers_ -= 1;
    }
    done_.notify_one();
  }
}

void ParallelExecutor::work() {
  // Claim contiguous chunks with one atomic bump each: n can be tens of
  // thousands of slots per round, and a mutex (or per-index fetch_add) on
  // that path costs more than the work it hands out.
  while (true) {
    const std::size_t begin = cursor_.fetch_add(chunk_, std::memory_order_relaxed);
    if (begin >= batch_size_) return;
    const std::size_t end = std::min(begin + chunk_, batch_size_);
    for (std::size_t index = begin; index < end; ++index) {
      try {
        (*fn_)(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (first_error_ == nullptr) first_error_ = std::current_exception();
      }
    }
  }
}

void ParallelExecutor::run(std::size_t n, const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (pool_.empty()) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    batch_size_ = n;
    // ~4 chunks per thread balances straggler re-claiming against cursor
    // contention; tiny batches fall back to index-at-a-time.
    chunk_ = std::max<std::size_t>(1, n / (static_cast<std::size_t>(threads_) * 4));
    cursor_.store(0, std::memory_order_relaxed);
    first_error_ = nullptr;
    busy_workers_ = static_cast<unsigned>(pool_.size());
    generation_ += 1;
  }
  wake_.notify_all();
  work();  // the caller claims indices too
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] { return busy_workers_ == 0; });
    fn_ = nullptr;
    error = first_error_;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace idonly
