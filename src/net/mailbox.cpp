#include "net/mailbox.hpp"

#include "net/codec.hpp"

namespace idonly {

MessageRef MessageRef::wrap(Message msg) {
  const std::size_t hash = MessageHash{}(msg);
  const auto wire = static_cast<std::uint32_t>(encoded_size(msg));
  MessageRef out;
  out.cell_ = std::make_shared<const Cell>(Cell{std::move(msg), hash, wire});
  return out;
}

bool BroadcastLane::deposit(MessageRef ref, std::uint64_t seq) {
  if (!seen_.insert(ref).second) return false;
  kind_counts_[static_cast<std::size_t>(ref->kind)] += 1;
  wire_bytes_ += ref.wire_bytes();
  entries_.push_back(std::move(ref));
  seqs_.push_back(seq);
  return true;
}

std::span<const Message> BroadcastLane::view() const {
  while (view_.size() < entries_.size()) view_.push_back(entries_[view_.size()].get());
  return view_;
}

void BroadcastLane::clear() {
  entries_.clear();
  seqs_.clear();
  seen_.clear();
  kind_counts_.fill(0);
  wire_bytes_ = 0;
  view_.clear();
}

void BroadcastLane::drain_into(std::vector<MessageRef>& refs, std::vector<std::uint64_t>& seqs) {
  refs.insert(refs.end(), std::make_move_iterator(entries_.begin()),
              std::make_move_iterator(entries_.end()));
  seqs.insert(seqs.end(), seqs_.begin(), seqs_.end());
  entries_.clear();
  seqs_.clear();
  view_.clear();
}

void ShardedLane::reset(std::size_t segments) {
  if (segments_.size() < segments) segments_.resize(segments);
  active_segments_ = segments;
  for (std::size_t k = 0; k < active_segments_; ++k) segments_[k].clear();
  entries_.clear();
  seqs_.clear();
  kind_counts_.fill(0);
  wire_bytes_ = 0;
  view_.clear();
}

void ShardedLane::seal() {
  for (std::size_t k = 0; k < active_segments_; ++k) {
    BroadcastLane& segment = segments_[k];
    const auto& kinds = segment.kind_counts();
    for (std::size_t i = 0; i < kinds.size(); ++i) kind_counts_[i] += kinds[i];
    wire_bytes_ += segment.wire_bytes();
    segment.drain_into(entries_, seqs_);
  }
  view_.reserve(entries_.size());
  for (const MessageRef& ref : entries_) view_.push_back(ref.get());
}

bool ShardedLane::contains(const MessageRef& ref) const {
  for (std::size_t k = 0; k < active_segments_; ++k) {
    if (segments_[k].contains(ref)) return true;
  }
  return false;
}

bool Mailbox::deposit(MessageRef ref, std::uint64_t seq) {
  if (!seen_.insert(ref).second) return false;
  entries_.push_back(std::move(ref));
  seqs_.push_back(seq);
  return true;
}

namespace {

/// The merge shared by both lane flavours: Lane needs the BroadcastLane read
/// interface (empty/view/refs/seqs/contains/kind_counts/wire_bytes).
template <typename Lane>
std::span<const Message> collect_impl(std::vector<MessageRef>& entries,
                                      std::vector<std::uint64_t>& seqs,
                                      std::unordered_set<MessageRef, MessageRefHash>& seen,
                                      const Lane* lane, std::vector<Message>& scratch,
                                      FanoutCounters* fanout, MessageCounters* counters) {
  // Fast path: nothing receiver-specific — share the lane's view outright.
  if (entries.empty()) {
    if (lane == nullptr || lane->empty()) return {};
    const auto view = lane->view();
    if (fanout != nullptr) {
      fanout->deliveries += view.size();
      fanout->bytes_delivered += lane->wire_bytes();
      // One non-empty per-receiver round inbox = one coalesced slab datagram
      // on a real wire (net/codec.hpp); deliveries is the per-message
      // syscall baseline the benches compare against.
      fanout->slab_sends += 1;
    }
    if (counters != nullptr) {
      const auto& kinds = lane->kind_counts();
      for (std::size_t k = 0; k < kinds.size(); ++k) counters->delivered[k] += kinds[k];
    }
    return view;
  }

  // Slow path: merge lane and private entries by send order. A private
  // entry whose content already sits in the lane is the "broadcast + unicast
  // of the same message" duplicate — suppressed, like the per-receiver dedup
  // of old, but against the cached hash.
  const std::span<const MessageRef> lane_refs =
      lane != nullptr ? lane->refs() : std::span<const MessageRef>{};
  const std::span<const std::uint64_t> lane_seqs =
      lane != nullptr ? lane->seqs() : std::span<const std::uint64_t>{};
  scratch.clear();
  scratch.reserve(lane_refs.size() + entries.size());
  const auto push = [&](const MessageRef& ref) {
    scratch.push_back(ref.get());
    if (fanout != nullptr) {
      fanout->deliveries += 1;
      fanout->bytes_delivered += ref.wire_bytes();
    }
    if (counters != nullptr) counters->delivered[static_cast<std::size_t>(ref->kind)] += 1;
  };
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < lane_refs.size() || j < entries.size()) {
    const bool take_lane = j >= entries.size() || (i < lane_refs.size() && lane_seqs[i] < seqs[j]);
    if (take_lane) {
      push(lane_refs[i]);
      i += 1;
    } else {
      if (lane != nullptr && lane->contains(entries[j])) {
        if (fanout != nullptr) fanout->dedup_hits += 1;
      } else {
        push(entries[j]);
      }
      j += 1;
    }
  }
  entries.clear();
  seqs.clear();
  seen.clear();
  if (fanout != nullptr && !scratch.empty()) fanout->slab_sends += 1;
  return scratch;
}

}  // namespace

std::span<const Message> Mailbox::collect(const BroadcastLane* lane,
                                          std::vector<Message>& scratch, FanoutCounters* fanout,
                                          MessageCounters* counters) {
  return collect_impl(entries_, seqs_, seen_, lane, scratch, fanout, counters);
}

std::span<const Message> Mailbox::collect(const ShardedLane* lane,
                                          std::vector<Message>& scratch, FanoutCounters* fanout,
                                          MessageCounters* counters) {
  return collect_impl(entries_, seqs_, seen_, lane, scratch, fanout, counters);
}

FrameRef make_frame_ref(std::span<const std::byte> bytes) {
  return std::make_shared<const Frame>(bytes.begin(), bytes.end());
}

FrameView make_frame_view(std::span<const std::byte> bytes) {
  return make_frame_view(make_frame_ref(bytes));
}

FrameView make_frame_view(FrameRef owner) {
  const std::span<const std::byte> span(*owner);
  return FrameView{std::move(owner), span};
}

void FrameMailbox::deposit(FrameView view) {
  std::scoped_lock lock(mutex_);
  views_.push_back(std::move(view));
}

std::vector<FrameView> FrameMailbox::drain() {
  std::scoped_lock lock(mutex_);
  std::vector<FrameView> out;
  out.swap(views_);
  return out;
}

std::size_t FrameMailbox::size() const {
  std::scoped_lock lock(mutex_);
  return views_.size();
}

}  // namespace idonly
