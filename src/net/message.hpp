// The wire format of the id-only model.
//
// Model constraints (paper §Model) encoded here and in the simulator:
//   * The sender id travels with every message and is stamped by the
//     *engine*, never by the process — a Byzantine node cannot forge its own
//     identity on a direct send.
//   * Everything else is payload: a Byzantine node may claim echoes for
//     non-existent ids (`subject`), attach arbitrary values, or tag arbitrary
//     consensus instances. Protocols must tolerate all of it.
//   * Duplicate identical messages from the same sender within one round are
//     discarded by the receiver (the engine implements this).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/types.hpp"
#include "common/value.hpp"

namespace idonly {

/// Message kinds across all protocols in the library. One flat enum keeps
/// the simulator's metric counters trivial; each protocol uses its subset.
enum class MsgKind : std::uint8_t {
  kPresent = 0,        ///< "I exist" (RB round 1 of non-senders; dynamic join)
  kInit = 1,           ///< rotor/renaming round-1 announcement
  kEcho = 2,           ///< echo(subject[, value]) — RB / rotor / renaming
  kPayload = 3,        ///< the broadcast message (m, s): subject = s, value = m
  kOpinion = 4,        ///< coordinator opinion (rotor; subject = pair id in A5)
  kInput = 5,          ///< consensus phase round 1
  kPrefer = 6,         ///< consensus phase round 2
  kStrongPrefer = 7,   ///< consensus phase round 3
  kNoPreference = 8,   ///< A5 explicit "no 2/3 input quorum" marker
  kNoStrongPref = 9,   ///< A5 explicit "no 2/3 prefer quorum" marker
  kAck = 10,           ///< dynamic membership: (ack, round)
  kAbsent = 11,        ///< dynamic membership: leave announcement
  kEvent = 12,         ///< total ordering: witnessed event (m, round)
  kTerminate = 13,     ///< renaming termination proposal terminate(k)
  kApproxValue = 14,   ///< approximate agreement value broadcast
  kNoise = 15,         ///< adversarial garbage with no protocol meaning
};

[[nodiscard]] std::string to_string(MsgKind kind);

struct Message {
  NodeId sender = 0;        ///< stamped by the simulator; unforgeable
  MsgKind kind = MsgKind::kPresent;
  NodeId subject = 0;       ///< echo(p) → p; (m,s) → s; A5 pair id
  InstanceTag instance = 0; ///< parallel-consensus instance (0 = untagged)
  Value value;              ///< opinion / input / event payload
  std::uint32_t round_tag = 0;  ///< ack(r), terminate(k), event round

  friend bool operator==(const Message& a, const Message& b) noexcept = default;

  [[nodiscard]] std::string to_string() const;
};

/// Hash over full message content (including sender) — used by the engine's
/// per-round duplicate suppression.
struct MessageHash {
  [[nodiscard]] std::size_t operator()(const Message& m) const noexcept {
    std::size_t h = std::hash<std::uint64_t>{}(m.sender);
    auto mix = [&h](std::size_t x) { h ^= x + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2); };
    mix(static_cast<std::size_t>(m.kind));
    mix(std::hash<std::uint64_t>{}(m.subject));
    mix(m.instance);
    mix(ValueHash{}(m.value));
    mix(m.round_tag);
    return h;
  }
};

}  // namespace idonly
