// The process interface run by the synchronous simulator.
//
// A process is invoked exactly once per round with the messages delivered to
// it this round (i.e. sent in the previous round) and appends its outgoing
// traffic to `out`. Correct protocol implementations and Byzantine
// strategies implement the same interface; the only privilege difference is
// *behavioural*: correct code follows the algorithms, adversaries may emit
// arbitrary (possibly per-recipient, conflicting) messages. The engine stamps
// the true sender id on everything, so identity is unforgeable either way.
#pragma once

#include <optional>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "net/message.hpp"

namespace idonly {

/// One outgoing message: broadcast when `to` is empty, unicast otherwise.
struct Outgoing {
  std::optional<NodeId> to;
  Message msg;
};

/// Helper for protocol code: queue a broadcast.
inline void broadcast(std::vector<Outgoing>& out, Message msg) {
  out.push_back(Outgoing{std::nullopt, std::move(msg)});
}

/// Helper for protocol code: queue a unicast.
inline void unicast(std::vector<Outgoing>& out, NodeId to, Message msg) {
  out.push_back(Outgoing{to, std::move(msg)});
}

/// Round numbers handed to a process. `global` is the simulator clock;
/// `local` counts from 1 starting at the process's first round (they differ
/// for nodes that join a dynamic network late).
struct RoundInfo {
  Round global = 0;
  Round local = 0;
};

class Process {
 public:
  explicit Process(NodeId id) noexcept : id_(id) {}
  virtual ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }

  /// Execute one synchronous round.
  virtual void on_round(RoundInfo round, std::span<const Message> inbox,
                        std::vector<Outgoing>& out) = 0;

  /// True once the process has terminated its protocol (it may still be
  /// invoked; terminated correct processes stay silent).
  [[nodiscard]] virtual bool done() const { return false; }

  /// True for adversarial processes; used by the harness to separate the
  /// correct nodes when checking agreement properties.
  [[nodiscard]] virtual bool byzantine() const { return false; }

 private:
  NodeId id_;
};

}  // namespace idonly
