#include "net/async_simulator.hpp"

#include <cassert>

namespace idonly {

AsyncProcess::~AsyncProcess() = default;

AsyncSimulator::AsyncSimulator(DelayModel delay) : delay_(std::move(delay)) {
  assert(delay_ != nullptr);
}

void AsyncSimulator::add_process(std::unique_ptr<AsyncProcess> process) {
  assert(!started_ && "add processes before run()");
  const NodeId id = process->id();
  processes_.emplace(id, std::move(process));
}

void AsyncSimulator::dispatch_out(NodeId from, const std::vector<AsyncOutgoing>& out) {
  for (const AsyncOutgoing& o : out) {
    Message msg = o.msg;
    msg.sender = from;
    // Wrap once; a broadcast's n events share the payload by reference.
    const MessageRef ref = MessageRef::wrap(std::move(msg));
    fanout_.unique_payloads += 1;
    if (recorder_) recorder_->record_send(from, /*round=*/0, o.to);
    auto deliver_to = [&](NodeId to) {
      const Time latency = delay_(from, to, ref.get(), now_);
      if (latency < 0) return;  // delay model may drop (models "never delivered" in a run prefix)
      queue_.push(Event{now_ + latency, seq_++, to, /*is_timer=*/false, ref});
    };
    if (o.to.has_value()) {
      deliver_to(*o.to);
    } else {
      for (const auto& [id, p] : processes_) deliver_to(id);
    }
  }
}

void AsyncSimulator::rearm_timer(AsyncProcess& p) {
  const auto deadline = p.timer_deadline();
  if (!deadline.has_value()) {
    armed_timer_.erase(p.id());
    return;
  }
  auto it = armed_timer_.find(p.id());
  if (it != armed_timer_.end() && it->second == *deadline) return;  // already queued
  armed_timer_[p.id()] = *deadline;
  queue_.push(Event{*deadline, seq_++, p.id(), /*is_timer=*/true, MessageRef{}});
}

void AsyncSimulator::run(Time horizon) {
  std::vector<AsyncOutgoing> out;
  if (!started_) {
    started_ = true;
    for (auto& [id, p] : processes_) {
      out.clear();
      p->on_start(now_, out);
      dispatch_out(id, out);
      rearm_timer(*p);
    }
  }
  while (!queue_.empty()) {
    Event ev = queue_.top();
    if (ev.at > horizon) break;
    queue_.pop();
    now_ = ev.at;
    auto it = processes_.find(ev.to);
    if (it == processes_.end()) continue;
    AsyncProcess& p = *it->second;
    out.clear();
    if (ev.is_timer) {
      // Stale timer events (deadline was re-armed since) are skipped.
      auto armed = armed_timer_.find(ev.to);
      if (armed == armed_timer_.end() || armed->second != ev.at) continue;
      armed_timer_.erase(armed);
      p.on_timer(now_, out);
    } else {
      fanout_.deliveries += 1;
      fanout_.bytes_delivered += ev.msg.wire_bytes();
      if (recorder_) recorder_->record_deliver(ev.to, /*round=*/0, ev.msg.get().sender);
      p.on_message(now_, ev.msg.get(), out);
    }
    dispatch_out(ev.to, out);
    rearm_timer(p);
  }
}

AsyncProcess* AsyncSimulator::find(NodeId id) {
  auto it = processes_.find(id);
  return it == processes_.end() ? nullptr : it->second.get();
}

std::vector<NodeId> AsyncSimulator::ids() const {
  std::vector<NodeId> out;
  out.reserve(processes_.size());
  for (const auto& [id, p] : processes_) out.push_back(id);
  return out;
}

}  // namespace idonly
