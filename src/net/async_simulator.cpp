#include "net/async_simulator.hpp"

#include <cassert>

namespace idonly {

AsyncProcess::~AsyncProcess() = default;

AsyncSimulator::AsyncSimulator(DelayModel delay) : delay_(std::move(delay)) {
  assert(delay_ != nullptr);
}

void AsyncSimulator::add_process(std::unique_ptr<AsyncProcess> process) {
  assert(!started_ && "add processes before run()");
  const NodeId id = process->id();
  processes_.emplace(id, std::move(process));
}

void AsyncSimulator::dispatch_out(NodeId from, const std::vector<AsyncOutgoing>& out,
                                  const std::vector<MessageRef>* wrapped) {
  for (std::size_t j = 0; j < out.size(); ++j) {
    const AsyncOutgoing& o = out[j];
    // Wrap once; a broadcast's n events share the payload by reference. The
    // batched engine wraps in its parallel phase and hands the refs in.
    MessageRef ref;
    if (wrapped != nullptr) {
      ref = (*wrapped)[j];
    } else {
      Message msg = o.msg;
      msg.sender = from;
      ref = MessageRef::wrap(std::move(msg));
    }
    fanout_.unique_payloads += 1;
    if (recorder_) recorder_->record_send(from, /*round=*/0, o.to);
    auto deliver_to = [&](NodeId to) {
      const Time latency = delay_(from, to, ref.get(), now_);
      if (latency < 0) return;  // delay model may drop (models "never delivered" in a run prefix)
      queue_.push(Event{now_ + latency, seq_++, to, /*is_timer=*/false, ref});
    };
    if (o.to.has_value()) {
      deliver_to(*o.to);
    } else {
      for (const auto& [id, p] : processes_) deliver_to(id);
    }
  }
}

void AsyncSimulator::rearm_timer(AsyncProcess& p) {
  const auto deadline = p.timer_deadline();
  if (!deadline.has_value()) {
    armed_timer_.erase(p.id());
    return;
  }
  auto it = armed_timer_.find(p.id());
  if (it != armed_timer_.end() && it->second == *deadline) return;  // already queued
  armed_timer_[p.id()] = *deadline;
  queue_.push(Event{*deadline, seq_++, p.id(), /*is_timer=*/true, MessageRef{}});
}

void AsyncSimulator::set_threads(unsigned threads) {
  if (threads < 1) threads = 1;
  if (threads == threads_) return;
  threads_ = threads;
  executor_ = threads_ > 1 ? std::make_unique<ParallelExecutor>(threads_) : nullptr;
}

void AsyncSimulator::run(Time horizon) {
  if (!started_) {
    started_ = true;
    std::vector<AsyncOutgoing> out;
    for (auto& [id, p] : processes_) {
      out.clear();
      p->on_start(now_, out);
      dispatch_out(id, out);
      rearm_timer(*p);
    }
  }
  if (executor_ != nullptr) {
    run_batched(horizon);
  } else {
    run_sequential(horizon);
  }
}

void AsyncSimulator::run_sequential(Time horizon) {
  std::vector<AsyncOutgoing> out;
  while (!queue_.empty()) {
    Event ev = queue_.top();
    if (ev.at > horizon) break;
    queue_.pop();
    now_ = ev.at;
    auto it = processes_.find(ev.to);
    if (it == processes_.end()) continue;
    AsyncProcess& p = *it->second;
    out.clear();
    if (ev.is_timer) {
      // Stale timer events (deadline was re-armed since) are skipped.
      auto armed = armed_timer_.find(ev.to);
      if (armed == armed_timer_.end() || armed->second != ev.at) continue;
      armed_timer_.erase(armed);
      p.on_timer(now_, out);
    } else {
      fanout_.deliveries += 1;
      fanout_.bytes_delivered += ev.msg.wire_bytes();
      if (recorder_) recorder_->record_deliver(ev.to, /*round=*/0, ev.msg.get().sender);
      p.on_message(now_, ev.msg.get(), out);
    }
    dispatch_out(ev.to, out);
    rearm_timer(p);
  }
}

void AsyncSimulator::run_batched(Time horizon) {
  // Parallel-phase / sequential-merge: all events sharing one timestamp form
  // a batch (the ready set); callbacks run concurrently, grouped per target
  // node so each process is driven by one thread in event-sequence order,
  // and each group stamps + hashes its sends on its own thread. The
  // order-sensitive effects — latency draws (the DelayModel may be
  // stateful), event-queue pushes, timer re-arms, trace records — are
  // applied afterwards, sequentially, in the exact order the sequential
  // engine used.
  // Events a callback emits at the SAME timestamp carry fresher sequence
  // numbers, so both engines process them after the whole current batch.
  struct Group {
    AsyncProcess* process = nullptr;
    std::vector<std::size_t> events;  // indices into the batch, ascending seq
  };
  std::vector<Event> batch;
  std::vector<Group> groups;
  std::vector<std::vector<AsyncOutgoing>> outs;
  std::vector<std::vector<MessageRef>> staged;      // outs stamped + wrapped in parallel
  std::vector<std::optional<Time>> deadline_after;  // post-callback timer ask
  std::vector<char> ran;                            // 0 → skipped (stale timer)
  while (!queue_.empty()) {
    const Time at = queue_.top().at;
    if (at > horizon) break;
    now_ = at;
    batch.clear();
    while (!queue_.empty() && queue_.top().at == at) {
      batch.push_back(queue_.top());  // popped in ascending seq order
      queue_.pop();
    }
    outs.assign(batch.size(), {});
    staged.assign(batch.size(), {});
    deadline_after.assign(batch.size(), std::nullopt);
    ran.assign(batch.size(), 0);
    groups.clear();
    std::map<NodeId, std::size_t> group_of;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      auto it = processes_.find(batch[i].to);
      if (it == processes_.end()) continue;
      auto [slot, inserted] = group_of.try_emplace(batch[i].to, groups.size());
      if (inserted) groups.push_back(Group{it->second.get(), {}});
      groups[slot->second].events.push_back(i);
    }

    const auto run_group = [&](std::size_t group_index) {
      Group& group = groups[group_index];
      AsyncProcess& p = *group.process;
      // Local shadow of this node's armed deadline: a timer consumed (or
      // re-armed) by an earlier event in the batch must be visible to the
      // stale-timer check of a later one, exactly as in the sequential
      // engine. Only this group touches the node, so the shadow is exact.
      std::optional<Time> armed;
      if (auto it = armed_timer_.find(p.id()); it != armed_timer_.end()) armed = it->second;
      for (std::size_t i : group.events) {
        const Event& ev = batch[i];
        if (ev.is_timer) {
          if (!armed.has_value() || *armed != ev.at) continue;  // stale — skip
          armed.reset();
          p.on_timer(now_, outs[i]);
        } else {
          p.on_message(now_, ev.msg.get(), outs[i]);
        }
        ran[i] = 1;
        deadline_after[i] = p.timer_deadline();
        armed = deadline_after[i];
        // Stamp and hash this event's sends here, on the group's thread —
        // the wrap is pure per message, so hoisting it out of the merge
        // changes nothing observable, only who pays the hashing.
        staged[i].reserve(outs[i].size());
        for (AsyncOutgoing& o : outs[i]) {
          Message msg = std::move(o.msg);
          msg.sender = ev.to;
          staged[i].push_back(MessageRef::wrap(std::move(msg)));
        }
      }
    };
    if (groups.size() > 1) {
      executor_->run(groups.size(), run_group);
    } else {
      for (std::size_t i = 0; i < groups.size(); ++i) run_group(i);
    }

    // Sequential merge in event-sequence order.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (ran[i] == 0) continue;
      const Event& ev = batch[i];
      if (ev.is_timer) {
        armed_timer_.erase(ev.to);  // consumed (the callback fired)
      } else {
        fanout_.deliveries += 1;
        fanout_.bytes_delivered += ev.msg.wire_bytes();
        if (recorder_) recorder_->record_deliver(ev.to, /*round=*/0, ev.msg.get().sender);
      }
      dispatch_out(ev.to, outs[i], &staged[i]);
      if (deadline_after[i].has_value()) {
        const Time deadline = *deadline_after[i];
        auto it = armed_timer_.find(ev.to);
        if (it == armed_timer_.end() || it->second != deadline) {
          armed_timer_[ev.to] = deadline;
          queue_.push(Event{deadline, seq_++, ev.to, /*is_timer=*/true, MessageRef{}});
        }
      } else {
        armed_timer_.erase(ev.to);
      }
    }
  }
}

AsyncProcess* AsyncSimulator::find(NodeId id) {
  auto it = processes_.find(id);
  return it == processes_.end() ? nullptr : it->second.get();
}

std::vector<NodeId> AsyncSimulator::ids() const {
  std::vector<NodeId> out;
  out.reserve(processes_.size());
  for (const auto& [id, p] : processes_) out.push_back(id);
  return out;
}

}  // namespace idonly
