#include "net/sync_simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace idonly {

void SyncSimulator::add_process(std::unique_ptr<Process> process) {
  if (process == nullptr) throw std::invalid_argument("add_process: null process");
  const NodeId id = process->id();
  const bool leaving =
      std::find(pending_removals_.begin(), pending_removals_.end(), id) != pending_removals_.end();
  if (leaving) {
    // Re-use of an id whose removal is queued: make that removal effective
    // now — old member, any stale queued join, and in-flight delayed
    // messages all die — so the replacement joins cleanly next round
    // (instead of step() mistaking it for the departing node).
    members_.erase(id);
    member_ids_dirty_ = true;
    std::erase_if(pending_joins_,
                  [id](const std::unique_ptr<Process>& p) { return p->id() == id; });
    for (auto& [due, entries] : delayed_) {
      std::erase_if(entries, [id](const auto& entry) { return entry.first == id; });
    }
    std::erase(pending_removals_, id);
  } else {
    const bool queued = std::any_of(pending_joins_.begin(), pending_joins_.end(),
                                    [id](const auto& p) { return p->id() == id; });
    if (members_.contains(id) || queued) {
      throw std::invalid_argument("add_process: duplicate live node id " + std::to_string(id));
    }
  }
  pending_joins_.push_back(std::move(process));
}

void SyncSimulator::remove_process(NodeId id) { pending_removals_.push_back(id); }

void SyncSimulator::set_threads(unsigned threads) {
  if (threads < 1) threads = 1;
  if (threads == threads_) return;
  threads_ = threads;
  executor_ = threads_ > 1 ? std::make_unique<ParallelExecutor>(threads_) : nullptr;
}

void SyncSimulator::route(NodeId from, const std::vector<Outgoing>& outbox) {
  // Each outgoing message is stamped (unforgeable identity), wrapped into a
  // MessageRef exactly once — content hash and wire size cached there — and
  // fanned out by reference. Duplicate suppression ("duplicate messages from
  // the same node in a round are simply discarded") runs once per message at
  // lane deposit for broadcasts, per receiver only for private traffic.
  for (const Outgoing& out : outbox) {
    Message msg = out.msg;
    msg.sender = from;  // unforgeable identity
    const auto kind_idx = static_cast<std::size_t>(msg.kind);
    metrics_.messages.sent[kind_idx] += 1;  // one send per message, broadcast or not
    metrics_.fanout.unique_payloads += 1;
    const MessageRef ref = MessageRef::wrap(std::move(msg));
    if (tracing_) {
      if (trace_.size() >= trace_capacity_) trace_.pop_front();
      trace_.push_back(TraceEntry{round_, from, out.to, ref.get()});
    }
    if (recorder_) recorder_->record_send(from, round_, out.to);
    auto deposit_private = [&](NodeId to, Member& member) {
      Round extra = 0;
      if (chaos_) {
        const std::uint64_t link_seq = chaos_seq_[{from, to}]++;
        const LinkEvent event{round_, from, to, link_seq};
        const FaultDecision verdict = chaos_->decide(event);
        if (recorder_) recorder_->record_link_verdict(event, verdict);
        if (verdict.drop) return;
        if (verdict.duplicate) {
          // Second copy: the model discards duplicate identical messages
          // from one sender within a round, so it dies in mailbox dedup —
          // the decision is what must reproduce, and it is in the trace.
          if (!member.mailbox.deposit(ref, seq_++)) metrics_.fanout.dedup_hits += 1;
        }
        extra = verdict.delay_rounds;
      }
      if (extra == 0 && delay_hook_) extra = delay_hook_(from, to, ref.get(), round_);
      if (extra > 0) {
        delayed_[round_ + 1 + extra].emplace_back(to, ref);
        return;
      }
      if (!member.mailbox.deposit(ref, seq_++)) metrics_.fanout.dedup_hits += 1;
    };
    if (out.to.has_value()) {
      auto it = members_.find(*out.to);
      if (it == members_.end()) continue;  // recipient gone — message lost
      deposit_private(*out.to, it->second);
    } else if (delay_hook_ || chaos_) {
      // A delay hook or chaos schedule may fault per (from, to) pair, so the
      // broadcast is no longer uniform across receivers — route it per
      // receiver (both are fault-injection probes; perf is irrelevant).
      for (auto& [id, member] : members_) deposit_private(id, member);
    } else {
      if (!lanes_[fill_lane_].deposit(ref, seq_++)) metrics_.fanout.dedup_hits += 1;
    }
  }
}

void SyncSimulator::step() {
  // Departures announced during the previous round take effect before this
  // one begins: messages the leaver already sent were routed then, but it
  // neither acts nor receives from here on. A node that was added and
  // removed before ever stepping is purged from the pending-join queue too,
  // and in-flight delayed messages addressed to the leaver die with it — a
  // later process re-using the id must not inherit them.
  for (NodeId id : pending_removals_) {
    members_.erase(id);
    member_ids_dirty_ = true;
    std::erase_if(pending_joins_,
                  [id](const std::unique_ptr<Process>& p) { return p->id() == id; });
    for (auto& [due, entries] : delayed_) {
      std::erase_if(entries, [id](const auto& entry) { return entry.first == id; });
    }
  }
  pending_removals_.clear();

  // Joins announced before this round become effective now (the dynamic
  // model lets the adversary admit nodes "before every round starts").
  for (auto& joiner : pending_joins_) {
    const NodeId id = joiner->id();
    assert(members_.find(id) == members_.end() && "duplicate live node id");
    Member member;
    member.process = std::move(joiner);
    member.joined_round = round_ + 1;
    members_.emplace(id, std::move(member));
    member_ids_dirty_ = true;
  }
  pending_joins_.clear();

  round_ += 1;
  metrics_.rounds_executed = round_;
  chaos_seq_.clear();  // link-event sequence numbers are per sent-round

  // Deliver synchrony-fault-delayed messages that are due this round. They
  // land in the receiver's private mailbox AFTER last round's routed
  // traffic (their sequence numbers are fresher), preserving the historical
  // "delayed messages arrive at the back of the inbox" order.
  for (auto it = delayed_.begin(); it != delayed_.end() && it->first <= round_;) {
    for (auto& [to, ref] : it->second) {
      auto member = members_.find(to);
      if (member == members_.end()) continue;
      if (!member->second.mailbox.deposit(ref, seq_++)) metrics_.fanout.dedup_hits += 1;
    }
    it = delayed_.erase(it);
  }

  // Flip lanes: the lane filled last step is consumed by every member this
  // step; this step's sends fill the other. Then assemble every member's
  // inbox BEFORE stepping anyone — lock-step semantics (no same-round
  // delivery), and the spans stay valid because routing only touches the
  // fill lane and already-collected mailboxes.
  BroadcastLane& deliver_lane = lanes_[fill_lane_];
  fill_lane_ ^= 1;
  lanes_[fill_lane_].clear();

  // The dispatch arena persists across rounds: slab/scratch capacity from
  // the previous round is reused, so steady-state rounds allocate nothing.
  if (dispatches_.size() > members_.size()) dispatches_.resize(members_.size());
  dispatches_.reserve(members_.size());
  std::size_t slot = 0;
  for (auto& [id, member] : members_) {
    if (slot == dispatches_.size()) dispatches_.emplace_back();
    Dispatch& dispatch = dispatches_[slot++];
    dispatch.id = id;
    dispatch.member = &member;
    dispatch.outbox.clear();
    dispatch.became_done = false;
    // A member admitted at the start of THIS step was not a receiver of last
    // round's broadcasts — it gets no lane, and its mailbox is empty.
    const BroadcastLane* lane = member.joined_round == round_ ? nullptr : &deliver_lane;
    dispatch.inbox =
        member.mailbox.collect(lane, member.scratch, &metrics_.fanout, &metrics_.messages);
    if (recorder_) {
      for (const Message& msg : dispatch.inbox) {
        recorder_->record_deliver(id, round_, msg.sender);
      }
    }
  }

  // Parallel phase: each process steps into its private outbox slab. No
  // shared engine state is touched — inbox spans stay valid because routing
  // hasn't started, and each process owns its own slab and RNG.
  const auto step_one = [this](std::size_t index) {
    Dispatch& dispatch = dispatches_[index];
    Member& member = *dispatch.member;
    const bool was_done = member.process->done();
    RoundInfo info{round_, round_ - member.joined_round + 1};
    member.process->on_round(info, dispatch.inbox, dispatch.outbox);
    dispatch.became_done = !was_done && member.process->done();
  };
  if (executor_ != nullptr && dispatches_.size() > 1) {
    executor_->run(dispatches_.size(), step_one);
  } else {
    for (std::size_t i = 0; i < dispatches_.size(); ++i) step_one(i);
  }

  // Sequential merge in ascending-id order: every order-sensitive effect —
  // send sequence stamps, chaos verdicts, trace records, metrics — happens
  // here, in exactly the order the sequential engine used.
  for (Dispatch& dispatch : dispatches_) {
    route(dispatch.id, dispatch.outbox);
    if (dispatch.became_done) metrics_.done_round[dispatch.id] = round_;
  }
}

bool SyncSimulator::run_until(const std::function<bool()>& pred, Round max_rounds) {
  for (Round i = 0; i < max_rounds; ++i) {
    if (pred()) return true;
    step();
  }
  return pred();
}

bool SyncSimulator::run_until_all_correct_done(Round max_rounds) {
  return run_until(
      [this] {
        bool all = true;
        bool any = false;
        for (const auto& [id, member] : members_) {
          if (member.process->byzantine()) continue;
          any = true;
          all = all && member.process->done();
        }
        return any && all;
      },
      max_rounds);
}

void SyncSimulator::run_rounds(Round count) {
  for (Round i = 0; i < count; ++i) step();
}

Process* SyncSimulator::find(NodeId id) {
  auto it = members_.find(id);
  if (it != members_.end()) return it->second.process.get();
  // Processes added but not yet stepped (joins become effective next round)
  // are still addressable — callers often inspect state right after add.
  for (const auto& pending : pending_joins_) {
    if (pending->id() == id) return pending.get();
  }
  return nullptr;
}

const Process* SyncSimulator::find(NodeId id) const {
  auto it = members_.find(id);
  if (it != members_.end()) return it->second.process.get();
  for (const auto& pending : pending_joins_) {
    if (pending->id() == id) return pending.get();
  }
  return nullptr;
}

const std::vector<NodeId>& SyncSimulator::member_ids() const {
  // Rebuilt only after membership changes — run_until predicates call this
  // every round, and at large n the fresh-vector-per-call cost was visible.
  if (member_ids_dirty_) {
    member_ids_cache_.clear();
    member_ids_cache_.reserve(members_.size());
    for (const auto& [id, member] : members_) member_ids_cache_.push_back(id);
    member_ids_dirty_ = false;
  }
  return member_ids_cache_;
}

void SyncSimulator::enable_trace(std::size_t capacity) {
  tracing_ = true;
  trace_capacity_ = capacity == 0 ? 1 : capacity;
}

std::string SyncSimulator::dump_trace(std::optional<Round> only_round) const {
  std::string out;
  for (const TraceEntry& entry : trace_) {
    if (only_round.has_value() && entry.round != *only_round) continue;
    out += "r" + std::to_string(entry.round) + " " + std::to_string(entry.from) + " -> ";
    out += entry.to.has_value() ? std::to_string(*entry.to) : std::string("*");
    out += " " + entry.msg.to_string() + "\n";
  }
  return out;
}

void SyncSimulator::for_each_correct(const std::function<void(Process&)>& fn) {
  for (auto& [id, member] : members_) {
    if (!member.process->byzantine()) fn(*member.process);
  }
}

}  // namespace idonly
