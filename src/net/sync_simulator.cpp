#include "net/sync_simulator.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace idonly {

void SyncSimulator::add_process(std::unique_ptr<Process> process) {
  if (process == nullptr) throw std::invalid_argument("add_process: null process");
  const NodeId id = process->id();
  const bool leaving =
      std::find(pending_removals_.begin(), pending_removals_.end(), id) != pending_removals_.end();
  if (leaving) {
    // Re-use of an id whose removal is queued: make that removal effective
    // now — old member, any stale queued join, and in-flight delayed
    // messages all die — so the replacement joins cleanly next round
    // (instead of step() mistaking it for the departing node).
    members_.erase(id);
    member_ids_dirty_ = true;
    std::erase_if(pending_joins_,
                  [id](const std::unique_ptr<Process>& p) { return p->id() == id; });
    for (auto& [due, entries] : delayed_) {
      std::erase_if(entries, [id](const auto& entry) { return entry.first == id; });
    }
    std::erase(pending_removals_, id);
  } else {
    const bool queued = std::any_of(pending_joins_.begin(), pending_joins_.end(),
                                    [id](const auto& p) { return p->id() == id; });
    if (members_.contains(id) || queued) {
      throw std::invalid_argument("add_process: duplicate live node id " + std::to_string(id));
    }
  }
  pending_joins_.push_back(std::move(process));
}

void SyncSimulator::remove_process(NodeId id) { pending_removals_.push_back(id); }

void SyncSimulator::set_threads(unsigned threads) {
  if (threads < 1) threads = 1;
  if (threads == threads_) return;
  threads_ = threads;
  executor_ = threads_ > 1 ? std::make_unique<ParallelExecutor>(threads_) : nullptr;
}

void SyncSimulator::run_tasks(std::size_t count, const std::function<void(std::size_t)>& fn) {
  if (executor_ != nullptr && count > 1) {
    executor_->run(count, fn);
  } else {
    for (std::size_t i = 0; i < count; ++i) fn(i);
  }
}

std::size_t SyncSimulator::slot_of(NodeId id) const noexcept {
  // dispatches_ is built from the ordered member map, so it is ascending by
  // id — a unicast target resolves with one binary search.
  const auto it = std::lower_bound(dispatches_.begin(), dispatches_.end(), id,
                                   [](const Dispatch& d, NodeId v) { return d.id < v; });
  if (it == dispatches_.end() || it->id != id) return dispatches_.size();
  return static_cast<std::size_t>(it - dispatches_.begin());
}

void SyncSimulator::merge_lane(std::size_t lane_index) {
  // One lane of the parallel merge. The lane owns a contiguous range of
  // destination slots: their mailboxes, their per-(from,to) chaos sequence
  // counters, and their trace rings are touched by THIS lane only. It walks
  // every message of the round in global send order (ascending sender slot,
  // then outbox position) and applies exactly the effects it owns, so each
  // receiver observes the same deposit order as the sequential engine —
  // regardless of how the other lanes interleave in real time.
  LaneArena& arena = arenas_[lane_index];
  const std::size_t begin = lane_starts_[lane_index];
  const std::size_t end = lane_starts_[lane_index + 1];
  BroadcastLane& segment = lanes_[fill_lane_].segment(lane_index);
  // A chaos schedule or delay hook may fault per (from, to) pair, so a
  // broadcast is no longer uniform across receivers — route it per receiver
  // (both are fault-injection probes; perf is irrelevant there).
  const bool per_receiver = chaos_ != nullptr || delay_hook_ != nullptr;
  const std::size_t n = dispatches_.size();

  const auto deposit_private = [&](NodeId from, NodeId to, Member& member,
                                   const MessageRef& ref, std::uint64_t key) {
    Round extra = 0;
    if (chaos_) {
      const std::uint64_t link_seq = arena.link_seq[{from, to}]++;
      const LinkEvent event{round_, from, to, link_seq};
      const FaultDecision verdict = chaos_->peek(event);
      if (verdict.faulted()) arena.chaos_stage.emplace_back(event, verdict);
      if (recorder_) arena.trace_stage.push_back(make_link_verdict_record(event, verdict));
      if (verdict.drop) return;
      if (verdict.duplicate) {
        // Second copy: the model discards duplicate identical messages from
        // one sender within a round, so it dies in mailbox dedup — the
        // decision is what must reproduce, and it is in the trace.
        if (!member.mailbox.deposit(ref, key)) arena.fanout.dedup_hits += 1;
      }
      extra = verdict.delay_rounds;
    }
    if (extra == 0 && delay_hook_) extra = delay_hook_(from, to, ref.get(), round_);
    if (extra > 0) {
      arena.delayed_stage.push_back({round_ + 1 + extra, to, ref});
      return;
    }
    if (!member.mailbox.deposit(ref, key + 1)) arena.fanout.dedup_hits += 1;
  };

  for (std::size_t s = 0; s < n; ++s) {
    Dispatch& sender = dispatches_[s];
    const bool own_sender = s >= begin && s < end;
    if (!own_sender && sender.outbox.empty()) continue;
    for (std::size_t m = 0; m < sender.outbox.size(); ++m) {
      const Outgoing& out = sender.outbox[m];
      const MessageRef& ref = sender.refs[m];
      // Two deposit keys per global message ordinal: a chaos duplicate copy
      // takes `key`, the primary copy `key + 1` — duplicate-before-primary,
      // exactly the sequential engine's deposit order. Only relative order
      // is observable, so the gaps left by unfaulted messages are free.
      const std::uint64_t key = seq_ + 2 * (sender.msg_base + m);
      if (own_sender) {
        arena.messages.sent[static_cast<std::size_t>(ref->kind)] += 1;
        arena.fanout.unique_payloads += 1;
        if (tracing_) arena.debug_stage.push_back(TraceEntry{round_, sender.id, out.to, ref.get()});
        if (recorder_) arena.trace_stage.push_back(make_send_record(sender.id, round_, out.to));
        if (!out.to.has_value() && !per_receiver) {
          // Clean broadcast: one deposit into this lane's segment. Segments
          // cover ascending sender ranges, so seal()'s concatenation is
          // globally key-ordered.
          if (!segment.deposit(ref, key)) arena.fanout.dedup_hits += 1;
        }
      }
      if (out.to.has_value()) {
        const std::size_t t = slot_of(*out.to);
        if (t >= begin && t < end) {  // recipient gone → no lane owns it; message lost
          deposit_private(sender.id, *out.to, *dispatches_[t].member, ref, key);
        }
      } else if (per_receiver) {
        for (std::size_t t = begin; t < end; ++t) {
          deposit_private(sender.id, dispatches_[t].id, *dispatches_[t].member, ref, key);
        }
      }
    }
  }
}

void SyncSimulator::step() {
  // Departures announced during the previous round take effect before this
  // one begins: messages the leaver already sent were routed then, but it
  // neither acts nor receives from here on. A node that was added and
  // removed before ever stepping is purged from the pending-join queue too,
  // and in-flight delayed messages addressed to the leaver die with it — a
  // later process re-using the id must not inherit them.
  for (NodeId id : pending_removals_) {
    members_.erase(id);
    member_ids_dirty_ = true;
    std::erase_if(pending_joins_,
                  [id](const std::unique_ptr<Process>& p) { return p->id() == id; });
    for (auto& [due, entries] : delayed_) {
      std::erase_if(entries, [id](const auto& entry) { return entry.first == id; });
    }
  }
  pending_removals_.clear();

  // Joins announced before this round become effective now (the dynamic
  // model lets the adversary admit nodes "before every round starts").
  for (auto& joiner : pending_joins_) {
    const NodeId id = joiner->id();
    assert(members_.find(id) == members_.end() && "duplicate live node id");
    Member member;
    member.process = std::move(joiner);
    member.joined_round = round_ + 1;
    members_.emplace(id, std::move(member));
    member_ids_dirty_ = true;
  }
  pending_joins_.clear();

  round_ += 1;
  metrics_.rounds_executed = round_;

  // Deliver synchrony-fault-delayed messages that are due this round. They
  // land in the receiver's private mailbox AFTER last round's routed
  // traffic (their sequence numbers are fresher), preserving the historical
  // "delayed messages arrive at the back of the inbox" order.
  for (auto it = delayed_.begin(); it != delayed_.end() && it->first <= round_;) {
    for (auto& [to, ref] : it->second) {
      auto member = members_.find(to);
      if (member == members_.end()) continue;
      if (!member->second.mailbox.deposit(ref, seq_++)) metrics_.fanout.dedup_hits += 1;
    }
    it = delayed_.erase(it);
  }

  // Flip lanes: the lane sealed last step is consumed by every member this
  // step; this step's merge lanes fill the other.
  ShardedLane& deliver_lane = lanes_[fill_lane_];
  fill_lane_ ^= 1;

  // The dispatch arena persists across rounds: slab/scratch capacity from
  // the previous round is reused, so steady-state rounds allocate nothing.
  if (dispatches_.size() > members_.size()) dispatches_.resize(members_.size());
  dispatches_.reserve(members_.size());
  std::size_t slot = 0;
  for (auto& [id, member] : members_) {
    if (slot == dispatches_.size()) dispatches_.emplace_back();
    Dispatch& dispatch = dispatches_[slot++];
    dispatch.id = id;
    dispatch.member = &member;
    dispatch.outbox.clear();
    dispatch.refs.clear();
    dispatch.msg_base = 0;
    dispatch.became_done = false;
  }
  const std::size_t n = dispatches_.size();

  // Lane plan: contiguous destination-slot ranges, one per worker. A user
  // delay hook is an arbitrary (possibly stateful) std::function, so it must
  // see deposits in the sequential order — collapse the merge to one lane
  // (the fill phase still parallelises; the hook only runs in the merge).
  std::size_t lane_count =
      (executor_ != nullptr && delay_hook_ == nullptr) ? std::min<std::size_t>(threads_, n) : 1;
  if (lane_count == 0) lane_count = 1;
  lane_starts_.assign(lane_count + 1, 0);
  for (std::size_t l = 0; l <= lane_count; ++l) lane_starts_[l] = n * l / lane_count;
  if (arenas_.size() < lane_count) arenas_.resize(lane_count);
  for (std::size_t l = 0; l < lane_count; ++l) {
    LaneArena& arena = arenas_[l];
    arena.messages = MessageCounters{};
    arena.fanout.reset();
    arena.link_seq.clear();  // link-event sequence numbers are per sent-round
    arena.trace_stage.clear();
    arena.chaos_stage.clear();
    arena.delayed_stage.clear();
    arena.debug_stage.clear();
  }
  lanes_[fill_lane_].reset(lane_count);

  // Phase 1 — parallel inbox assembly, one task per lane: every member's
  // inbox is built BEFORE anyone steps (lock-step semantics, no same-round
  // delivery). Each lane collects only its own slots' mailboxes against the
  // sealed (read-only) deliver lane, staging delivery records and counters
  // in its arena.
  run_tasks(lane_count, [&](std::size_t l) {
    LaneArena& arena = arenas_[l];
    for (std::size_t s = lane_starts_[l]; s < lane_starts_[l + 1]; ++s) {
      Dispatch& dispatch = dispatches_[s];
      Member& member = *dispatch.member;
      // A member admitted at the start of THIS step was not a receiver of
      // last round's broadcasts — it gets no lane, and its mailbox is empty.
      const ShardedLane* lane = member.joined_round == round_ ? nullptr : &deliver_lane;
      dispatch.inbox =
          member.mailbox.collect(lane, member.scratch, &arena.fanout, &arena.messages);
      if (recorder_) {
        for (const Message& msg : dispatch.inbox) {
          arena.trace_stage.push_back(make_deliver_record(dispatch.id, round_, msg.sender));
        }
      }
    }
  });
  if (recorder_) {
    // Flush delivery records before the merge stages send/verdict records
    // into the same buffers. A node's records are staged by exactly one lane,
    // so per-ring order (what every export is built from) is lane-local and
    // thread-count-independent; flushing in lane order keeps it fully
    // deterministic.
    for (std::size_t l = 0; l < lane_count; ++l) {
      recorder_->record_batch(arenas_[l].trace_stage);
      arenas_[l].trace_stage.clear();
    }
  }

  // Phase 2 — parallel stepping, one task per process: each steps into its
  // private outbox slab, then stamps and wraps its messages (the content
  // hashing is the round's other big CPU sink). No shared engine state is
  // touched; inbox spans stay valid because routing hasn't started.
  run_tasks(n, [this](std::size_t index) {
    Dispatch& dispatch = dispatches_[index];
    Member& member = *dispatch.member;
    const bool was_done = member.process->done();
    RoundInfo info{round_, round_ - member.joined_round + 1};
    member.process->on_round(info, dispatch.inbox, dispatch.outbox);
    dispatch.became_done = !was_done && member.process->done();
    dispatch.refs.reserve(dispatch.outbox.size());
    for (Outgoing& out : dispatch.outbox) {
      Message msg = std::move(out.msg);
      msg.sender = dispatch.id;  // unforgeable identity
      dispatch.refs.push_back(MessageRef::wrap(std::move(msg)));
    }
  });

  // Sequential prefix pass: assign every message its global send ordinal.
  // All deposit keys derive from these, so they are thread-count-invariant.
  std::uint64_t total_msgs = 0;
  for (Dispatch& dispatch : dispatches_) {
    dispatch.msg_base = total_msgs;
    total_msgs += dispatch.outbox.size();
  }

  // Phase 3 — parallel lane merge: no sequential replay pass. Each lane
  // routes the whole round's traffic for its own destination slots.
  run_tasks(lane_count, [this](std::size_t l) { merge_lane(l); });

  // Sequential epilogue: fold the lane arenas into the shared engine state
  // in lane order (deterministic), advance the global send stamp past every
  // key handed out this round, and seal the fill lane so next round's
  // concurrent collectors see one flat immutable view.
  for (std::size_t l = 0; l < lane_count; ++l) {
    LaneArena& arena = arenas_[l];
    for (std::size_t k = 0; k < MessageCounters::kKinds; ++k) {
      metrics_.messages.sent[k] += arena.messages.sent[k];
      metrics_.messages.delivered[k] += arena.messages.delivered[k];
    }
    metrics_.fanout.deliveries += arena.fanout.deliveries;
    metrics_.fanout.unique_payloads += arena.fanout.unique_payloads;
    metrics_.fanout.dedup_hits += arena.fanout.dedup_hits;
    metrics_.fanout.bytes_delivered += arena.fanout.bytes_delivered;
    metrics_.fanout.slab_sends += arena.fanout.slab_sends;
    metrics_.fanout.send_failures += arena.fanout.send_failures;
    if (chaos_) chaos_->commit_batch(arena.chaos_stage);
    if (recorder_) recorder_->record_batch(arena.trace_stage);
    for (LaneArena::Delayed& delayed : arena.delayed_stage) {
      delayed_[delayed.due].emplace_back(delayed.to, std::move(delayed.ref));
    }
    if (tracing_) {
      for (TraceEntry& entry : arena.debug_stage) {
        if (trace_.size() >= trace_capacity_) trace_.pop_front();
        trace_.push_back(std::move(entry));
      }
    }
  }
  for (Dispatch& dispatch : dispatches_) {
    if (dispatch.became_done) metrics_.done_round[dispatch.id] = round_;
  }
  seq_ += 2 * total_msgs;
  lanes_[fill_lane_].seal();
}

bool SyncSimulator::run_until(const std::function<bool()>& pred, Round max_rounds) {
  for (Round i = 0; i < max_rounds; ++i) {
    if (pred()) return true;
    step();
  }
  return pred();
}

bool SyncSimulator::run_until_all_correct_done(Round max_rounds) {
  return run_until(
      [this] {
        bool all = true;
        bool any = false;
        for (const auto& [id, member] : members_) {
          if (member.process->byzantine()) continue;
          any = true;
          all = all && member.process->done();
        }
        return any && all;
      },
      max_rounds);
}

void SyncSimulator::run_rounds(Round count) {
  for (Round i = 0; i < count; ++i) step();
}

Process* SyncSimulator::find(NodeId id) {
  auto it = members_.find(id);
  if (it != members_.end()) return it->second.process.get();
  // Processes added but not yet stepped (joins become effective next round)
  // are still addressable — callers often inspect state right after add.
  for (const auto& pending : pending_joins_) {
    if (pending->id() == id) return pending.get();
  }
  return nullptr;
}

const Process* SyncSimulator::find(NodeId id) const {
  auto it = members_.find(id);
  if (it != members_.end()) return it->second.process.get();
  for (const auto& pending : pending_joins_) {
    if (pending->id() == id) return pending.get();
  }
  return nullptr;
}

const std::vector<NodeId>& SyncSimulator::member_ids() const {
  // Rebuilt only after membership changes — run_until predicates call this
  // every round, and at large n the fresh-vector-per-call cost was visible.
  if (member_ids_dirty_) {
    member_ids_cache_.clear();
    member_ids_cache_.reserve(members_.size());
    for (const auto& [id, member] : members_) member_ids_cache_.push_back(id);
    member_ids_dirty_ = false;
  }
  return member_ids_cache_;
}

void SyncSimulator::enable_trace(std::size_t capacity) {
  tracing_ = true;
  trace_capacity_ = capacity == 0 ? 1 : capacity;
}

std::string SyncSimulator::dump_trace(std::optional<Round> only_round) const {
  std::string out;
  for (const TraceEntry& entry : trace_) {
    if (only_round.has_value() && entry.round != *only_round) continue;
    out += "r" + std::to_string(entry.round) + " " + std::to_string(entry.from) + " -> ";
    out += entry.to.has_value() ? std::to_string(*entry.to) : std::string("*");
    out += " " + entry.msg.to_string() + "\n";
  }
  return out;
}

void SyncSimulator::for_each_correct(const std::function<void(Process&)>& fn) {
  for (auto& [id, member] : members_) {
    if (!member.process->byzantine()) fn(*member.process);
  }
}

}  // namespace idonly
