#include "net/sync_simulator.hpp"

#include <algorithm>
#include <cassert>
#include <unordered_set>

namespace idonly {

void SyncSimulator::add_process(std::unique_ptr<Process> process) {
  assert(process != nullptr);
  pending_joins_.push_back(std::move(process));
}

void SyncSimulator::remove_process(NodeId id) { pending_removals_.push_back(id); }

void SyncSimulator::route(NodeId from, const std::vector<Outgoing>& outbox) {
  // Per-receiver duplicate suppression within this round: the model says
  // "duplicate messages from the same node in a round are simply discarded".
  // We stamp the sender first so the dedup key covers identity + content.
  for (const Outgoing& out : outbox) {
    Message msg = out.msg;
    msg.sender = from;  // unforgeable identity
    if (tracing_) {
      if (trace_.size() >= trace_capacity_) trace_.pop_front();
      trace_.push_back(TraceEntry{round_, from, out.to, msg});
    }
    const auto kind_idx = static_cast<std::size_t>(msg.kind);
    auto deliver = [&](NodeId to, Member& member) {
      metrics_.messages.sent[kind_idx] += 1;
      if (delay_hook_) {
        const Round extra = delay_hook_(from, to, msg, round_);
        if (extra > 0) {
          delayed_[round_ + 1 + extra].emplace_back(to, msg);
          return;
        }
      }
      member.inbox.push_back(msg);
    };
    if (out.to.has_value()) {
      auto it = members_.find(*out.to);
      if (it == members_.end()) continue;  // recipient gone — message lost
      deliver(*out.to, it->second);
    } else {
      for (auto& [id, member] : members_) deliver(id, member);
    }
  }
}

void SyncSimulator::step() {
  // Departures announced during the previous round take effect before this
  // one begins: messages the leaver already sent were routed then, but it
  // neither acts nor receives from here on. A node that was added and
  // removed before ever stepping is purged from the pending-join queue too.
  for (NodeId id : pending_removals_) {
    members_.erase(id);
    std::erase_if(pending_joins_,
                  [id](const std::unique_ptr<Process>& p) { return p->id() == id; });
  }
  pending_removals_.clear();

  // Joins announced before this round become effective now (the dynamic
  // model lets the adversary admit nodes "before every round starts").
  for (auto& joiner : pending_joins_) {
    const NodeId id = joiner->id();
    assert(members_.find(id) == members_.end() && "duplicate live node id");
    Member member;
    member.process = std::move(joiner);
    member.joined_round = round_ + 1;
    members_.emplace(id, std::move(member));
  }
  pending_joins_.clear();

  round_ += 1;
  metrics_.rounds_executed = round_;

  // Deliver synchrony-fault-delayed messages that are due this round.
  for (auto it = delayed_.begin(); it != delayed_.end() && it->first <= round_;) {
    for (auto& [to, msg] : it->second) {
      auto member = members_.find(to);
      if (member != members_.end()) member->second.inbox.push_back(std::move(msg));
    }
    it = delayed_.erase(it);
  }

  // Swap out each member's pending inbox, then step in ascending id order.
  // All sends of this round are routed after every process ran, preserving
  // lock-step semantics (no same-round delivery).
  std::vector<std::pair<NodeId, std::vector<Message>>> inboxes;
  inboxes.reserve(members_.size());
  for (auto& [id, member] : members_) {
    // Receiver-side dedup: identical (sender, content) within one round.
    std::unordered_set<Message, MessageHash> seen;
    std::vector<Message> inbox;
    inbox.reserve(member.inbox.size());
    for (Message& m : member.inbox) {
      if (seen.insert(m).second) inbox.push_back(std::move(m));
    }
    member.inbox.clear();
    for (const Message& m : inbox) {
      metrics_.messages.delivered[static_cast<std::size_t>(m.kind)] += 1;
    }
    inboxes.emplace_back(id, std::move(inbox));
  }

  std::vector<Outgoing> outbox;
  for (auto& [id, inbox] : inboxes) {
    auto it = members_.find(id);
    if (it == members_.end()) continue;
    Member& member = it->second;
    const bool was_done = member.process->done();
    outbox.clear();
    RoundInfo info{round_, round_ - member.joined_round + 1};
    member.process->on_round(info, std::span<const Message>(inbox), outbox);
    route(id, outbox);
    if (!was_done && member.process->done()) metrics_.done_round[id] = round_;
  }
}

bool SyncSimulator::run_until(const std::function<bool()>& pred, Round max_rounds) {
  for (Round i = 0; i < max_rounds; ++i) {
    if (pred()) return true;
    step();
  }
  return pred();
}

bool SyncSimulator::run_until_all_correct_done(Round max_rounds) {
  return run_until(
      [this] {
        bool all = true;
        bool any = false;
        for (const auto& [id, member] : members_) {
          if (member.process->byzantine()) continue;
          any = true;
          all = all && member.process->done();
        }
        return any && all;
      },
      max_rounds);
}

void SyncSimulator::run_rounds(Round count) {
  for (Round i = 0; i < count; ++i) step();
}

Process* SyncSimulator::find(NodeId id) {
  auto it = members_.find(id);
  if (it != members_.end()) return it->second.process.get();
  // Processes added but not yet stepped (joins become effective next round)
  // are still addressable — callers often inspect state right after add.
  for (const auto& pending : pending_joins_) {
    if (pending->id() == id) return pending.get();
  }
  return nullptr;
}

const Process* SyncSimulator::find(NodeId id) const {
  auto it = members_.find(id);
  if (it != members_.end()) return it->second.process.get();
  for (const auto& pending : pending_joins_) {
    if (pending->id() == id) return pending.get();
  }
  return nullptr;
}

std::vector<NodeId> SyncSimulator::member_ids() const {
  std::vector<NodeId> ids;
  ids.reserve(members_.size());
  for (const auto& [id, member] : members_) ids.push_back(id);
  return ids;
}

void SyncSimulator::enable_trace(std::size_t capacity) {
  tracing_ = true;
  trace_capacity_ = capacity == 0 ? 1 : capacity;
}

std::string SyncSimulator::dump_trace(std::optional<Round> only_round) const {
  std::string out;
  for (const TraceEntry& entry : trace_) {
    if (only_round.has_value() && entry.round != *only_round) continue;
    out += "r" + std::to_string(entry.round) + " " + std::to_string(entry.from) + " -> ";
    out += entry.to.has_value() ? std::to_string(*entry.to) : std::string("*");
    out += " " + entry.msg.to_string() + "\n";
  }
  return out;
}

void SyncSimulator::for_each_correct(const std::function<void(Process&)>& fn) {
  for (auto& [id, member] : members_) {
    if (!member.process->byzantine()) fn(*member.process);
  }
}

}  // namespace idonly
