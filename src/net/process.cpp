#include "net/process.hpp"

namespace idonly {

Process::~Process() = default;

}  // namespace idonly
