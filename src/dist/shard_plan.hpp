// Node-id → shard partitioning for the distributed shard engine.
//
// The plan slices the INITIAL sorted id list into contiguous ranges with the
// same lane math the in-process parallel engine uses for its merge lanes
// (slice k covers indices [n*k/S, n*(k+1)/S) — see net/parallel_exec.hpp and
// SyncSimulator::step's lane plan), so a node's shard is a pure function of
// (initial ids, shard count). Churn-admitted joiners draw ids ABOVE every
// initial id (harness ChurnDriver), so any id past the initial range maps by
// modulo — a deterministic spread that every worker computes identically.
//
// The assignment rule is NOT part of the determinism argument: cross-shard
// ordering comes from the ascending-sender merge at the receiving shard
// (src/dist/shard_engine.hpp), which is correct for ANY deterministic
// partition. The plan only has to be identical across workers and balanced
// enough to be useful.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"

namespace idonly {

class ShardPlan {
 public:
  /// Partition `initial_ids` (any order; sorted internally) across `shards`
  /// workers. shards >= 1; shards may exceed the id count (the tail slices
  /// are empty).
  [[nodiscard]] static ShardPlan build(std::span<const NodeId> initial_ids,
                                       std::uint32_t shards);

  [[nodiscard]] std::uint32_t shards() const noexcept { return shards_; }

  /// The owning shard of `id`: initial ids by their contiguous slice,
  /// anything else (churn joiners, adversary-invented targets) by modulo.
  [[nodiscard]] std::uint32_t owner(NodeId id) const noexcept;

  /// The initial ids owned by shard `k`, ascending.
  [[nodiscard]] std::span<const NodeId> initial_slice(std::uint32_t k) const noexcept;

  [[nodiscard]] const std::vector<NodeId>& initial_ids() const noexcept { return ids_; }

 private:
  std::uint32_t shards_ = 1;
  std::vector<NodeId> ids_;          ///< initial ids, sorted
  std::vector<std::size_t> starts_;  ///< shards_+1 slice boundaries into ids_
};

}  // namespace idonly
