#include "dist/shard_worker.hpp"

#include <unistd.h>

#include <chrono>
#include <stdexcept>
#include <utility>
#include <variant>

#include "core/consensus.hpp"
#include "dist/shard_mesh.hpp"
#include "net/codec.hpp"

namespace idonly {

ShardWorker::ShardWorker(const ShardInit& init) : shard_(init.shard), shards_(init.shards) {
  auto parsed = parse_script(init.script_text);
  if (const auto* err = std::get_if<ParseError>(&parsed)) {
    throw std::invalid_argument("script parse error at line " + std::to_string(err->line) +
                                ": " + err->message);
  }
  script_ = std::get<ScenarioScript>(std::move(parsed));
  if (script_.protocol != ScriptProtocol::kConsensus &&
      script_.protocol != ScriptProtocol::kTotalOrder) {
    throw std::invalid_argument("distributed runner supports consensus and totalorder only");
  }

  scenario_ = make_scenario(script_.config);
  const std::vector<NodeId> all_ids = scenario_.all_ids();
  plan_ = ShardPlan::build(all_ids, shards_);

  if (!script_.chaos_phases.empty()) {
    chaos_ = std::make_shared<ChaosSchedule>(
        materialize_chaos_plan(script_.chaos_phases, all_ids), script_.config.seed);
    engine_.set_chaos(chaos_);
  }
  if (init.want_trace) {
    recorder_ = std::make_shared<TraceRecorder>(TraceEngine::kSync);
    engine_.set_trace_recorder(recorder_);
    observer_ = std::make_unique<TraceObserver>(recorder_);
  }

  const bool consensus = script_.protocol == ScriptProtocol::kConsensus;
  auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
    if (consensus) {
      const double input = script_.inputs[index % script_.inputs.size()];
      return std::make_unique<ConsensusProcess>(id, Value::real(input));
    }
    return std::make_unique<TotalOrderProcess>(id, /*founder=*/true);
  };
  // Construct EVERY process (correct and adversary — the adversaries share
  // one seed-derived Rng stream, so skipping any would shift the rest) and
  // keep only this shard's slice.
  build_processes(scenario_, factory, [&](std::unique_ptr<Process> process) {
    if (plan_.owner(process->id()) == shard_) {
      engine_.add_process(std::move(process));
      initial_members_ += 1;
    }
  });

  if (consensus && observer_ != nullptr) {
    // Initial correct nodes report protocol events into the flight recorder;
    // churn joiners stay unobserved — exactly the single-process wiring.
    for (NodeId id : scenario_.correct_ids) {
      if (auto* p = engine_.get<ConsensusProcess>(id)) p->set_observer(observer_.get());
    }
  }
  if (!consensus) {
    for (std::size_t i = 0; i < scenario_.correct_ids.size(); ++i) {
      auto* p = engine_.get<TotalOrderProcess>(scenario_.correct_ids[i]);
      if (p == nullptr) continue;
      for (int k = 0; k < 4; ++k) p->submit_event(static_cast<double>(i * 10 + k));
    }
  }

  churn_ = std::make_unique<ChurnDriver>(script_, scenario_);
  writers_.resize(shards_);
}

std::vector<ShardWorker::OutboundSlab> ShardWorker::begin_round() {
  const Round next = engine_.round() + 1;
  const bool consensus = script_.protocol == ScriptProtocol::kConsensus;
  auto make_joiner = [&](NodeId id, std::size_t joiner_index) -> std::unique_ptr<Process> {
    if (consensus) {
      const double input =
          script_.inputs[(scenario_.correct_ids.size() + joiner_index) % script_.inputs.size()];
      return std::make_unique<ConsensusProcess>(id, Value::real(input));
    }
    return std::make_unique<TotalOrderProcess>(id, /*founder=*/false);
  };
  churn_->apply(
      next, make_joiner,
      [&](std::unique_ptr<Process> process) {
        if (process != nullptr && plan_.owner(process->id()) == shard_) {
          engine_.add_process(std::move(process));
        }
      },
      [&](NodeId id) { engine_.remove_process(id); });

  engine_.begin_round();

  for (std::uint32_t s = 0; s < shards_; ++s) {
    if (s != shard_) writers_[s].reset(shard_, engine_.round());
  }
  for (const ShardEngine::Send& send : engine_.local_sends()) {
    if (send.to.has_value()) {
      const std::uint32_t dest = plan_.owner(*send.to);
      if (dest != shard_) writers_[dest].add(send.to, send.ref.get());
    } else {
      for (std::uint32_t s = 0; s < shards_; ++s) {
        if (s != shard_) writers_[s].add(std::nullopt, send.ref.get());
      }
    }
  }
  std::vector<OutboundSlab> out;
  for (std::uint32_t s = 0; s < shards_; ++s) {
    if (s != shard_ && !writers_[s].empty()) out.push_back({s, writers_[s].bytes()});
  }
  return out;
}

bool ShardWorker::decode_peer_slab(std::span<const std::byte> bytes,
                                   std::vector<ShardEngine::Send>& stream) {
  const auto view = parse_shard_slab(bytes);
  if (!view.has_value()) {
    wire_faults_.truncations += 1;
    error_ = "shard " + std::to_string(shard_) + ": malformed shard slab in round " +
             std::to_string(engine_.round());
    return false;
  }
  if (view->round != engine_.round() || view->shard == shard_ || view->shard >= shards_) {
    wire_faults_.truncations += 1;
    error_ = "shard " + std::to_string(shard_) + ": shard slab header mismatch (from shard " +
             std::to_string(view->shard) + ", round " + std::to_string(view->round) +
             ", local round " + std::to_string(engine_.round()) + ")";
    return false;
  }
  stream.reserve(view->entries.size());
  for (const ShardSlabView::Entry& entry : view->entries) {
    auto msg = decode(entry.frame);
    if (!msg.has_value()) {
      wire_faults_.corrupts += 1;
      error_ = "shard " + std::to_string(shard_) + ": undecodable frame from shard " +
               std::to_string(view->shard) + " in round " + std::to_string(engine_.round());
      return false;
    }
    stream.push_back({entry.to, MessageRef::wrap(*std::move(msg))});
  }
  return true;
}

void ShardWorker::merge_round(std::span<const std::vector<ShardEngine::Send>> streams) {
  engine_.finish_round(streams);
}

bool ShardWorker::finish_round(std::span<const std::vector<std::byte>> peer_slabs) {
  std::vector<std::vector<ShardEngine::Send>> streams;
  streams.reserve(peer_slabs.size());
  for (const std::vector<std::byte>& bytes : peer_slabs) {
    std::vector<ShardEngine::Send> stream;
    if (!decode_peer_slab(bytes, stream)) return false;
    streams.push_back(std::move(stream));
  }
  merge_round(streams);
  return true;
}

ShardStatus ShardWorker::status() {
  ShardStatus out;
  for (NodeId id : engine_.member_ids()) {
    Process* p = engine_.find(id);
    if (p == nullptr || p->byzantine()) continue;
    out.done.emplace_back(id, p->done());
  }
  return out;
}

ShardResult ShardWorker::finalize() {
  ShardResult result;
  result.rounds = engine_.round();
  result.metrics = engine_.metrics();
  result.metrics.overlap = overlap_;
  if (chaos_ != nullptr) {
    result.has_chaos = true;
    result.chaos = chaos_->counters();
  }
  result.wire_faults = wire_faults_;
  const bool consensus = script_.protocol == ScriptProtocol::kConsensus;
  for (NodeId id : engine_.member_ids()) {
    Process* p = engine_.find(id);
    if (p == nullptr || p->byzantine()) continue;
    if (consensus) {
      auto* c = dynamic_cast<ConsensusProcess*>(p);
      if (c == nullptr) continue;
      ShardResult::Decision d;
      d.id = id;
      d.done = c->done();
      d.has_output = c->output().has_value();
      d.output = d.has_output ? *c->output() : Value::bot();
      result.decisions.push_back(d);
    } else {
      auto* t = dynamic_cast<TotalOrderProcess*>(p);
      if (t == nullptr) continue;
      result.chains.push_back({id, t->chain()});
    }
  }
  if (recorder_ != nullptr) {
    // Records come out of snapshot() grouped by node in capture order — the
    // exact slices absorb_ring() wants on the coordinator side.
    const std::vector<TraceRecord> records = recorder_->snapshot();
    for (const TraceRecorder::RingStats& stats : recorder_->ring_stats()) {
      ShardResult::Ring ring;
      ring.node = stats.node;
      ring.next_seq = stats.next_seq;
      ring.evicted = stats.evicted;
      for (const TraceRecord& rec : records) {
        if (rec.node == stats.node) ring.records.push_back(rec);
      }
      result.rings.push_back(std::move(ring));
    }
  }
  return result;
}

int run_worker_loop(int fd, std::vector<int> peer_fds) {
  using Clock = std::chrono::steady_clock;
  std::vector<std::byte> payload;
  ShardMsgType type{};
  const auto fail = [fd](const std::string& message) {
    ByteWriter w;
    w.str(message);
    (void)send_frame(fd, ShardMsgType::kError, w.bytes());
    return 1;
  };

  if (recv_frame(fd, type, payload, -1) != RecvStatus::kOk || type != ShardMsgType::kInit) {
    return 1;
  }
  const auto init = decode_init(payload);
  if (!init.has_value()) return fail("malformed init payload");
  std::unique_ptr<ShardWorker> worker;
  try {
    worker = std::make_unique<ShardWorker>(*init);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  // The mesh handshake runs BEFORE the kHello reply, so a bad peer wiring
  // surfaces inside the coordinator's initialisation wait, not mid-round.
  std::unique_ptr<MeshExchange> mesh;
  if (init->mesh && init->shards > 1) {
    mesh = std::make_unique<MeshExchange>(init->shard, init->shards, std::move(peer_fds));
    std::string mesh_error;
    if (!mesh->handshake(mesh_error)) return fail(mesh_error);
  }
  {
    ByteWriter w;
    w.u32(worker->shard());
    w.u64(worker->member_count());
    if (!send_frame(fd, ShardMsgType::kHello, w.bytes())) return 1;
  }

  bool awaiting_deliver = false;  // relay mode: the next frame should be kDeliver
  for (;;) {
    const auto recv_start = Clock::now();
    if (recv_frame(fd, type, payload, -1) != RecvStatus::kOk) return 1;
    if (awaiting_deliver) {
      // Relay mode's counterpart of the mesh collect wait: the time blocked
      // until the coordinator finished gathering and re-sending the slabs.
      worker->overlap().recv_stall_ns += static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - recv_start)
              .count());
      awaiting_deliver = false;
    }
    switch (type) {
      case ShardMsgType::kStep: {
        if (init->crash_at_round > 0 && worker->round() + 1 >= init->crash_at_round) {
          // Crash test hook: die without a word — no kError, no reply. The
          // coordinator must turn the resulting EOF into a clean failure,
          // and in mesh mode the peers must turn the socket EOF into
          // kError, not a hang.
          _exit(13);
        }
        const auto slabs = worker->begin_round();
        if (mesh != nullptr) {
          // Mesh round: post outbound slabs (beacons for quiet peers)
          // without blocking, decode peer slabs in arrival order, merge,
          // status. The coordinator never sees a slab byte.
          const Round round = worker->round();
          std::vector<std::span<const std::byte>> by_shard(worker->shards());
          for (const ShardWorker::OutboundSlab& slab : slabs) by_shard[slab.dest] = slab.bytes;
          std::string mesh_error;
          std::vector<std::vector<ShardEngine::Send>> streams;
          streams.reserve(mesh->peer_count());
          bool ok = mesh->post_round(round, by_shard, mesh_error);
          if (ok) {
            ok = mesh->collect_round(
                round,
                [&](std::uint32_t, std::span<const std::byte> bytes) {
                  std::vector<ShardEngine::Send> stream;
                  if (!worker->decode_peer_slab(bytes, stream)) return false;
                  streams.push_back(std::move(stream));
                  return true;
                },
                mesh_error);
          }
          if (!ok) return fail(worker->error().empty() ? mesh_error : worker->error());
          worker->merge_round(streams);
          if (!send_frame(fd, ShardMsgType::kStatus, encode_status(worker->status()))) return 1;
        } else if (worker->shards() == 1) {
          // Single shard: no cross-shard traffic either way; keep the relay
          // frames so the coordinator drives one uniform protocol.
          ByteWriter w;
          w.u32(0);
          if (!send_frame(fd, ShardMsgType::kSlabs, w.bytes())) return 1;
          awaiting_deliver = true;
        } else {
          ByteWriter w;
          w.u32(static_cast<std::uint32_t>(slabs.size()));
          for (const ShardWorker::OutboundSlab& slab : slabs) {
            w.u32(slab.dest);
            w.blob(slab.bytes);
          }
          if (!send_frame(fd, ShardMsgType::kSlabs, w.bytes())) return 1;
          awaiting_deliver = true;
        }
        break;
      }
      case ShardMsgType::kDeliver: {
        ByteReader r(payload);
        const std::uint32_t count = r.u32();
        std::vector<std::vector<std::byte>> slabs;
        for (std::uint32_t i = 0; i < count && !r.failed(); ++i) slabs.push_back(r.blob());
        if (!r.done()) return fail("malformed deliver payload");
        if (!worker->finish_round(slabs)) return fail(worker->error());
        if (!send_frame(fd, ShardMsgType::kStatus, encode_status(worker->status()))) return 1;
        break;
      }
      case ShardMsgType::kFinish: {
        if (mesh != nullptr) worker->overlap() += mesh->counters();
        if (!send_frame(fd, ShardMsgType::kResult, encode_result(worker->finalize()))) return 1;
        return 0;
      }
      default:
        return fail("unexpected control frame");
    }
  }
}

}  // namespace idonly
