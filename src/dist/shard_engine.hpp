// One shard's slice of the synchronous round engine.
//
// A ShardEngine holds the processes a shard worker owns and replays exactly
// the per-receiver round semantics of SyncSimulator (net/sync_simulator.hpp)
// restricted to its local members. A round splits in two:
//
//   begin_round()   removals → joins → delayed flush → inbox assembly →
//                   process stepping → local outboxes wrapped and exposed as
//                   local_sends() (ascending sender id, outbox order)
//   finish_round()  merge the round's GLOBAL traffic — the local sends plus
//                   one decoded stream per remote shard — and deposit into
//                   local mailboxes with the same deterministic keys the
//                   in-process engines use.
//
// Determinism argument (DESIGN.md §12): the global send order is "ascending
// sender id, then outbox position". Each stream (local, or one per remote
// shard) is internally ascending by sender and shards own disjoint senders,
// so a k-way merge on sender id reconstructs the exact subsequence of the
// global order that is visible to this shard (all broadcasts + unicasts to
// local nodes). Deposit keys are 2·ordinal offsets off a local counter —
// only their RELATIVE order per mailbox is observable, so the gaps left by
// traffic this shard never sees are free, exactly like the gaps unfaulted
// messages leave in the parallel engine's key space. Chaos verdicts are pure
// functions of (seed, round, from, to, per-link seq) and the per-link seq is
// counted at the receiving shard over that same merged order, so verdicts,
// link trace records, and the canonical export reproduce the single-process
// run byte for byte.
//
// The engine always routes per receiver (no shared broadcast lane): that is
// the path SyncSimulator forces whenever a chaos schedule is installed, so
// inboxes — and with a recorder, per-node trace rings — match the reference
// engine on chaos scenarios exactly; on chaos-free scenarios the inbox
// CONTENT still matches (only the dedup-hit counter can differ, since lane
// dedup is global and mailbox dedup is per receiver).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/chaos.hpp"
#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "common/types.hpp"
#include "net/mailbox.hpp"
#include "net/process.hpp"

namespace idonly {

class ShardEngine {
 public:
  /// One message of the round's global traffic: `to` empty → broadcast.
  /// The sender is stamped inside the ref'd message.
  struct Send {
    std::optional<NodeId> to;
    MessageRef ref;
  };

  /// Register a process; it participates from the next begun round. Throws
  /// std::invalid_argument on a duplicate live or queued id.
  void add_process(std::unique_ptr<Process> process);
  /// Remove a process at the start of the next begun round.
  void remove_process(NodeId id);

  void set_chaos(std::shared_ptr<ChaosSchedule> chaos) { chaos_ = std::move(chaos); }
  void set_trace_recorder(std::shared_ptr<TraceRecorder> recorder) {
    recorder_ = std::move(recorder);
  }

  /// First half of a round: membership changes, delayed-message flush,
  /// inbox collection, process stepping, outbox wrapping.
  void begin_round();

  /// The local processes' sends of the current round, in global send order
  /// restricted to local senders (ascending sender id, then outbox
  /// position). Valid until finish_round() returns.
  [[nodiscard]] std::span<const Send> local_sends() const noexcept { return local_sends_; }

  /// Second half: merge the local stream with one stream per remote shard
  /// (each ascending by sender id; sender sets pairwise disjoint — any
  /// number of streams, order of the spans irrelevant) and deposit into the
  /// local mailboxes for delivery at the next begin_round().
  void finish_round(std::span<const std::vector<Send>> remote_streams);

  [[nodiscard]] Round round() const noexcept { return round_; }
  [[nodiscard]] const Metrics& metrics() const noexcept { return metrics_; }

  [[nodiscard]] Process* find(NodeId id);
  template <typename T>
  [[nodiscard]] T* get(NodeId id) {
    return dynamic_cast<T*>(find(id));
  }
  [[nodiscard]] std::vector<NodeId> member_ids() const;
  [[nodiscard]] std::size_t member_count() const noexcept { return members_.size(); }

 private:
  struct Member {
    std::unique_ptr<Process> process;
    Mailbox mailbox;
    std::vector<Message> scratch;
    Round joined_round = 0;
  };
  struct Dispatch {
    NodeId id = 0;
    Member* member = nullptr;
    std::span<const Message> inbox;
    std::vector<Outgoing> outbox;
    bool became_done = false;
  };

  void deposit_private(NodeId from, NodeId to, Member& member, const MessageRef& ref,
                       std::uint64_t key);

  std::map<NodeId, Member> members_;
  std::vector<std::unique_ptr<Process>> pending_joins_;
  std::vector<NodeId> pending_removals_;
  std::vector<Dispatch> dispatches_;
  std::vector<Send> local_sends_;

  Round round_ = 0;
  std::uint64_t seq_ = 0;  ///< local deposit-key counter (relative order only)
  Metrics metrics_;
  std::shared_ptr<ChaosSchedule> chaos_;
  std::shared_ptr<TraceRecorder> recorder_;

  // Per-round staging, folded in finish_round (mirrors SyncSimulator's
  // single-lane arena).
  std::map<std::pair<NodeId, NodeId>, std::uint64_t> link_seq_;
  std::vector<TraceRecord> trace_stage_;
  std::vector<std::pair<LinkEvent, FaultDecision>> chaos_stage_;
  struct Delayed {
    Round due = 0;
    NodeId to = 0;
    MessageRef ref;
  };
  std::vector<Delayed> delayed_stage_;
  std::map<Round, std::vector<std::pair<NodeId, MessageRef>>> delayed_;
};

}  // namespace idonly
