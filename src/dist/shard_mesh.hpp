// Direct worker↔worker data plane for the distributed shard engine.
//
// In mesh mode the coordinator plumbs one AF_UNIX stream socketpair per
// shard PAIR at fork time; each worker keeps the ends that involve it and
// exchanges the round's 0xAC shard slabs peer-to-peer, so no slab byte ever
// transits the coordinator. Mesh framing is minimal: `u32 LE payload length
// + payload`, where the payload is one of the net/codec mesh payloads —
// a peer hello (0xAD, handshake), a shard slab (0xAC), or an empty-round
// beacon (0xAE). Every peer sends EXACTLY ONE frame per round (slab or
// beacon), which is what lets the receiver tell "nothing for me this round"
// from "still in flight" without a barrier.
//
// Overlap model (double-buffered rounds):
//   * post_round() frames this round's outbound payloads and drives them
//     with NON-BLOCKING sends, draining inbound frames between partial
//     writes — full-duplex, so two peers posting large slabs to each other
//     cannot deadlock on full socket buffers.
//   * a poll-driven receiver stages arriving payloads per round; because a
//     peer may legitimately run ONE round ahead (it cannot post round r+1
//     before it has this worker's round-r slab), the staging area holds two
//     rounds — the current one and the next.
//   * collect_round() hands staged payloads to the caller IN ARRIVAL ORDER
//     the moment they are available (the boundary merge is order-blind
//     across peer streams — see DESIGN.md §12), so slab decode overlaps
//     with the remaining peers' transfers. It blocks only when a payload is
//     genuinely missing; that wait is the round's `recv_stall_ns`, and a
//     round with zero wait increments `rounds_overlapped`.
//
// Failure model: a peer that closes its mesh socket (or writes a malformed
// frame) fails the ROUND — collect_round()/post_round() return false with a
// message naming the peer, and the worker escalates kError to the
// coordinator. There is no partial-peer path, for the same reason the
// coordinator has none: a run missing one shard's traffic is a different
// run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/types.hpp"

namespace idonly {

class MeshExchange {
 public:
  /// `peer_fds` is indexed by shard id; entry `shard` (self) and absent
  /// peers are -1. Takes ownership of the fds (closed on destruction) and
  /// switches them to non-blocking mode.
  MeshExchange(std::uint32_t shard, std::uint32_t shards, std::vector<int> peer_fds);
  ~MeshExchange();

  MeshExchange(const MeshExchange&) = delete;
  MeshExchange& operator=(const MeshExchange&) = delete;

  /// Exchange peer hellos (net/codec.hpp, 0xAD) with every peer and verify
  /// each one echoes the expected shard id and total shard count. A garbled
  /// or mismatched hello rejects the PEER before any slab from it would be
  /// parsed. False on failure (`error` explains).
  [[nodiscard]] bool handshake(std::string& error);

  /// Post round `round`'s outbound payload to every peer: entry `s` of
  /// `payload_by_shard` is the slab for shard s (empty → an empty-round
  /// beacon is sent instead; the self entry is ignored). Non-blocking and
  /// full-duplex: inbound frames arriving while the sends drain are staged.
  /// Rounds must be posted consecutively starting at 1.
  [[nodiscard]] bool post_round(Round round,
                                std::span<const std::span<const std::byte>> payload_by_shard,
                                std::string& error);

  /// Invoked once per peer payload of the collected round, in ARRIVAL
  /// order; return false to abort the collection (the worker failed to
  /// decode the payload).
  using PayloadSink =
      std::function<bool(std::uint32_t shard, std::span<const std::byte> payload)>;

  /// Deliver every peer's round-`round` payload to `sink`, each as soon as
  /// it is available. Blocks (accumulating `recv_stall_ns`) only while a
  /// payload is still in flight; a fully-overlapped round — every payload
  /// already staged when the first one is wanted — counts into
  /// `rounds_overlapped`.
  [[nodiscard]] bool collect_round(Round round, const PayloadSink& sink, std::string& error);

  [[nodiscard]] const OverlapCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] std::size_t peer_count() const noexcept { return peer_count_; }

 private:
  struct Peer {
    std::uint32_t shard = 0;
    int fd = -1;
    // Outbound: one length-framed buffer, drained by non-blocking sends.
    std::vector<std::byte> out;
    std::size_t out_pos = 0;
    // Inbound: raw stream bytes, sliced into frames as they complete.
    std::vector<std::byte> in;
    std::size_t in_pos = 0;
    /// Highest round this peer has sent a frame for (one frame per round).
    Round last_round = 0;
    bool hello_seen = false;
  };

  struct Staged {
    std::uint32_t shard = 0;
    std::vector<std::byte> payload;
  };

  /// One round's staging: slab payloads in arrival order, plus the count of
  /// peers heard from (beacons bump `arrived` but stage no payload).
  struct Slot {
    std::vector<Staged> payloads;
    std::size_t arrived = 0;
  };

  /// Drain whatever is readable on `peer` without blocking; slices complete
  /// frames and routes them (hello during handshake, slab/beacon after).
  [[nodiscard]] bool drain(Peer& peer, std::string& error);
  [[nodiscard]] bool route_frame(Peer& peer, std::vector<std::byte> payload, std::string& error);
  [[nodiscard]] bool flush_and_drain(std::string& error);

  std::uint32_t shard_ = 0;
  std::uint32_t shards_ = 1;
  std::vector<Peer> peers_;  // peers only, ascending shard id
  std::size_t peer_count_ = 0;
  Round current_round_ = 0;  // round of the last post_round()
  bool handshaken_ = false;
  /// Per-round staging, keyed by round. Holds at most the current round and
  /// the next (the ≤1-round skew bound).
  std::map<Round, Slot> staged_;
  OverlapCounters counters_;
};

}  // namespace idonly
