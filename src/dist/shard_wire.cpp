#include "dist/shard_wire.hpp"

#include <limits.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace idonly {

namespace {

using Clock = std::chrono::steady_clock;

/// Remaining budget in ms against `deadline`; nullopt = block indefinitely.
int remaining_ms(const std::optional<Clock::time_point>& deadline) {
  if (!deadline.has_value()) return -1;
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(*deadline - Clock::now()).count();
  return left <= 0 ? 0 : static_cast<int>(left);
}

bool send_all(int fd, const std::byte* data, std::size_t size) {
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

RecvStatus recv_all(int fd, std::byte* data, std::size_t size,
                    const std::optional<Clock::time_point>& deadline) {
  std::size_t got = 0;
  while (got < size) {
    pollfd pfd{fd, POLLIN, 0};
    const int budget = remaining_ms(deadline);
    if (deadline.has_value() && budget == 0) return RecvStatus::kTimeout;
    const int ready = ::poll(&pfd, 1, budget);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return RecvStatus::kError;
    }
    if (ready == 0) return RecvStatus::kTimeout;
    const ssize_t n = ::recv(fd, data + got, size - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      // A reset from a killed peer reads the same as an orderly close here:
      // either way the worker is gone.
      if (errno == ECONNRESET) return RecvStatus::kEof;
      return RecvStatus::kError;
    }
    if (n == 0) return RecvStatus::kEof;
    got += static_cast<std::size_t>(n);
  }
  return RecvStatus::kOk;
}

/// Control payloads top out at one round's cross-shard traffic plus the
/// final trace shipment; 1 GiB is a generous sanity bound, not a tuning knob.
constexpr std::uint32_t kMaxPayload = 1u << 30;

}  // namespace

bool send_frame(int fd, ShardMsgType type, std::span<const std::byte> payload) {
  if (payload.size() > kMaxPayload) return false;
  std::byte header[5];
  const auto len = static_cast<std::uint32_t>(payload.size());
  header[0] = static_cast<std::byte>(len & 0xFF);
  header[1] = static_cast<std::byte>((len >> 8) & 0xFF);
  header[2] = static_cast<std::byte>((len >> 16) & 0xFF);
  header[3] = static_cast<std::byte>((len >> 24) & 0xFF);
  header[4] = static_cast<std::byte>(type);
  if (!send_all(fd, header, sizeof header)) return false;
  return payload.empty() || send_all(fd, payload.data(), payload.size());
}

bool send_frame_gather(int fd, ShardMsgType type,
                       std::span<const std::span<const std::byte>> chunks) {
  std::size_t total = 0;
  for (const auto& chunk : chunks) total += chunk.size();
  if (total > kMaxPayload) return false;
  std::byte header[5];
  const auto len = static_cast<std::uint32_t>(total);
  header[0] = static_cast<std::byte>(len & 0xFF);
  header[1] = static_cast<std::byte>((len >> 8) & 0xFF);
  header[2] = static_cast<std::byte>((len >> 16) & 0xFF);
  header[3] = static_cast<std::byte>((len >> 24) & 0xFF);
  header[4] = static_cast<std::byte>(type);

  std::vector<iovec> iov;
  iov.reserve(1 + chunks.size());
  iov.push_back({header, sizeof header});
  for (const auto& chunk : chunks) {
    if (chunk.empty()) continue;
    iov.push_back({const_cast<std::byte*>(chunk.data()), chunk.size()});
  }
  std::size_t first = 0;  // first iovec with bytes left
  while (first < iov.size()) {
    // sendmsg caps the vector at IOV_MAX entries; feed it windows.
    const std::size_t window = std::min<std::size_t>(iov.size() - first, IOV_MAX);
    msghdr msg{};
    msg.msg_iov = iov.data() + first;
    msg.msg_iovlen = window;
    const ssize_t n = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    std::size_t sent = static_cast<std::size_t>(n);
    while (first < iov.size() && sent >= iov[first].iov_len) {
      sent -= iov[first].iov_len;
      first += 1;
    }
    if (sent > 0) {
      iov[first].iov_base = static_cast<std::byte*>(iov[first].iov_base) + sent;
      iov[first].iov_len -= sent;
    }
  }
  return true;
}

RecvStatus recv_frame(int fd, ShardMsgType& type, std::vector<std::byte>& payload,
                      int timeout_ms) {
  std::optional<Clock::time_point> deadline;
  if (timeout_ms >= 0) deadline = Clock::now() + std::chrono::milliseconds(timeout_ms);
  std::byte header[5];
  RecvStatus status = recv_all(fd, header, sizeof header, deadline);
  if (status != RecvStatus::kOk) return status;
  const std::uint32_t len = static_cast<std::uint32_t>(header[0]) |
                            (static_cast<std::uint32_t>(header[1]) << 8) |
                            (static_cast<std::uint32_t>(header[2]) << 16) |
                            (static_cast<std::uint32_t>(header[3]) << 24);
  if (len > kMaxPayload) return RecvStatus::kError;
  type = static_cast<ShardMsgType>(header[4]);
  payload.resize(len);
  if (len == 0) return RecvStatus::kOk;
  return recv_all(fd, payload.data(), len, deadline);
}

// -------------------------------------------------------- serialization --

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xFF));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::str(const std::string& v) {
  u64(v.size());
  const auto* data = reinterpret_cast<const std::byte*>(v.data());
  buf_.insert(buf_.end(), data, data + v.size());
}

void ByteWriter::blob(std::span<const std::byte> v) {
  u64(v.size());
  buf_.insert(buf_.end(), v.begin(), v.end());
}

bool ByteReader::take(std::size_t n) noexcept {
  if (failed_ || data_.size() - pos_ < n) {
    failed_ = true;
    return false;
  }
  return true;
}

std::uint8_t ByteReader::u8() {
  if (!take(1)) return 0;
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return failed_ ? 0.0 : v;
}

std::string ByteReader::str() {
  const std::uint64_t n = u64();
  if (!take(n)) return {};
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
  pos_ += n;
  return out;
}

std::vector<std::byte> ByteReader::blob() {
  const std::uint64_t n = u64();
  if (!take(n)) return {};
  std::vector<std::byte> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                             data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

// ------------------------------------------------------ typed payloads --

std::vector<std::byte> encode_init(const ShardInit& init) {
  ByteWriter w;
  w.u32(init.shard);
  w.u32(init.shards);
  w.u8(init.want_trace ? 1 : 0);
  w.u8(init.mesh ? 1 : 0);
  w.i64(init.crash_at_round);
  w.str(init.script_text);
  return w.take();
}

std::optional<ShardInit> decode_init(std::span<const std::byte> payload) {
  ByteReader r(payload);
  ShardInit init;
  init.shard = r.u32();
  init.shards = r.u32();
  init.want_trace = r.u8() != 0;
  init.mesh = r.u8() != 0;
  init.crash_at_round = r.i64();
  init.script_text = r.str();
  if (!r.done() || init.shards == 0 || init.shard >= init.shards) return std::nullopt;
  return init;
}

std::vector<std::byte> encode_status(const ShardStatus& status) {
  ByteWriter w;
  w.u64(status.done.size());
  for (const auto& [id, done] : status.done) {
    w.u64(id);
    w.u8(done ? 1 : 0);
  }
  return w.take();
}

std::optional<ShardStatus> decode_status(std::span<const std::byte> payload) {
  ByteReader r(payload);
  ShardStatus status;
  const std::uint64_t n = r.u64();
  for (std::uint64_t i = 0; i < n && !r.failed(); ++i) {
    const NodeId id = r.u64();
    const bool done = r.u8() != 0;
    status.done.emplace_back(id, done);
  }
  if (!r.done()) return std::nullopt;
  return status;
}

namespace {

void encode_fault_counters(ByteWriter& w, const FaultCounters& f) {
  w.u64(f.drops);
  w.u64(f.duplicates);
  w.u64(f.delays);
  w.u64(f.corrupts);
  w.u64(f.partition_drops);
  w.u64(f.crash_drops);
  w.u64(f.truncations);
}

FaultCounters decode_fault_counters(ByteReader& r) {
  FaultCounters f;
  f.drops = r.u64();
  f.duplicates = r.u64();
  f.delays = r.u64();
  f.corrupts = r.u64();
  f.partition_drops = r.u64();
  f.crash_drops = r.u64();
  f.truncations = r.u64();
  return f;
}

}  // namespace

std::vector<std::byte> encode_result(const ShardResult& result) {
  ByteWriter w;
  w.i64(result.rounds);
  for (std::uint64_t v : result.metrics.messages.sent) w.u64(v);
  for (std::uint64_t v : result.metrics.messages.delivered) w.u64(v);
  w.u64(result.metrics.fanout.deliveries);
  w.u64(result.metrics.fanout.unique_payloads);
  w.u64(result.metrics.fanout.dedup_hits);
  w.u64(result.metrics.fanout.bytes_delivered);
  w.u64(result.metrics.fanout.slab_sends);
  w.u64(result.metrics.fanout.send_failures);
  w.u64(result.metrics.fanout.coordinator_relay_bytes);
  w.u64(result.metrics.overlap.rounds_overlapped);
  w.u64(result.metrics.overlap.recv_stall_ns);
  w.u64(result.metrics.overlap.slabs_direct);
  w.i64(result.metrics.rounds_executed);
  w.u64(result.metrics.done_round.size());
  for (const auto& [id, round] : result.metrics.done_round) {
    w.u64(id);
    w.i64(round);
  }
  w.u8(result.has_chaos ? 1 : 0);
  if (result.has_chaos) {
    w.u64(result.chaos.per_phase.size());
    for (const FaultCounters& f : result.chaos.per_phase) encode_fault_counters(w, f);
    w.u64(result.chaos.backoffs);
    w.u64(result.chaos.shrinks);
    w.u64(result.chaos.resyncs);
    w.u64(result.chaos.restarts);
  }
  encode_fault_counters(w, result.wire_faults);
  w.u64(result.decisions.size());
  for (const ShardResult::Decision& d : result.decisions) {
    w.u64(d.id);
    w.u8(d.done ? 1 : 0);
    w.u8(d.has_output ? 1 : 0);
    w.u8(d.output.is_bot() ? 1 : 0);
    w.f64(d.output.real_or(0.0));
  }
  w.u64(result.chains.size());
  for (const ShardResult::Chain& c : result.chains) {
    w.u64(c.id);
    w.u64(c.chain.size());
    for (const ChainEntry& entry : c.chain) {
      w.i64(entry.instance);
      w.u64(entry.witness);
      w.f64(entry.event);
    }
  }
  w.u64(result.rings.size());
  for (const ShardResult::Ring& ring : result.rings) {
    w.u64(ring.node);
    w.u64(ring.next_seq);
    w.u64(ring.evicted);
    w.u64(ring.records.size());
    for (const TraceRecord& rec : ring.records) {
      w.u8(static_cast<std::uint8_t>(rec.kind));
      w.u64(rec.node);
      w.i64(rec.round);
      w.u64(rec.seq);
      w.u64(rec.from);
      w.u64(rec.to);
      w.u64(rec.link_seq);
      w.i64(rec.extra);
      w.str(rec.detail);
    }
  }
  return w.take();
}

std::optional<ShardResult> decode_result(std::span<const std::byte> payload) {
  ByteReader r(payload);
  ShardResult result;
  result.rounds = r.i64();
  for (std::uint64_t& v : result.metrics.messages.sent) v = r.u64();
  for (std::uint64_t& v : result.metrics.messages.delivered) v = r.u64();
  result.metrics.fanout.deliveries = r.u64();
  result.metrics.fanout.unique_payloads = r.u64();
  result.metrics.fanout.dedup_hits = r.u64();
  result.metrics.fanout.bytes_delivered = r.u64();
  result.metrics.fanout.slab_sends = r.u64();
  result.metrics.fanout.send_failures = r.u64();
  result.metrics.fanout.coordinator_relay_bytes = r.u64();
  result.metrics.overlap.rounds_overlapped = r.u64();
  result.metrics.overlap.recv_stall_ns = r.u64();
  result.metrics.overlap.slabs_direct = r.u64();
  result.metrics.rounds_executed = r.i64();
  const std::uint64_t done_count = r.u64();
  for (std::uint64_t i = 0; i < done_count && !r.failed(); ++i) {
    const NodeId id = r.u64();
    const Round round = r.i64();
    result.metrics.done_round.emplace(id, round);
  }
  result.has_chaos = r.u8() != 0;
  if (result.has_chaos) {
    const std::uint64_t phases = r.u64();
    for (std::uint64_t i = 0; i < phases && !r.failed(); ++i) {
      result.chaos.per_phase.push_back(decode_fault_counters(r));
    }
    result.chaos.backoffs = r.u64();
    result.chaos.shrinks = r.u64();
    result.chaos.resyncs = r.u64();
    result.chaos.restarts = r.u64();
  }
  result.wire_faults = decode_fault_counters(r);
  const std::uint64_t decisions = r.u64();
  for (std::uint64_t i = 0; i < decisions && !r.failed(); ++i) {
    ShardResult::Decision d;
    d.id = r.u64();
    d.done = r.u8() != 0;
    d.has_output = r.u8() != 0;
    const bool is_bot = r.u8() != 0;
    const double real = r.f64();
    d.output = is_bot ? Value::bot() : Value::real(real);
    result.decisions.push_back(d);
  }
  const std::uint64_t chains = r.u64();
  for (std::uint64_t i = 0; i < chains && !r.failed(); ++i) {
    ShardResult::Chain c;
    c.id = r.u64();
    const std::uint64_t len = r.u64();
    for (std::uint64_t k = 0; k < len && !r.failed(); ++k) {
      ChainEntry entry;
      entry.instance = r.i64();
      entry.witness = r.u64();
      entry.event = r.f64();
      c.chain.push_back(entry);
    }
    result.chains.push_back(std::move(c));
  }
  const std::uint64_t rings = r.u64();
  for (std::uint64_t i = 0; i < rings && !r.failed(); ++i) {
    ShardResult::Ring ring;
    ring.node = r.u64();
    ring.next_seq = r.u64();
    ring.evicted = r.u64();
    const std::uint64_t records = r.u64();
    for (std::uint64_t k = 0; k < records && !r.failed(); ++k) {
      TraceRecord rec;
      rec.kind = static_cast<TraceEventKind>(r.u8());
      rec.node = r.u64();
      rec.round = r.i64();
      rec.seq = r.u64();
      rec.from = r.u64();
      rec.to = r.u64();
      rec.link_seq = r.u64();
      rec.extra = r.i64();
      rec.detail = r.str();
      ring.records.push_back(std::move(rec));
    }
    result.rings.push_back(std::move(ring));
  }
  if (!r.done()) return std::nullopt;
  return result;
}

}  // namespace idonly
