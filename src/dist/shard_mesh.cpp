#include "dist/shard_mesh.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sched.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <utility>

#include "net/codec.hpp"

namespace idonly {

namespace {

using Clock = std::chrono::steady_clock;

/// Same sanity bound as the control plane's kMaxPayload: a mesh frame tops
/// out at one round's (source → destination) slab.
constexpr std::uint32_t kMeshMaxPayload = 1u << 30;

void append_frame(std::vector<std::byte>& out, std::span<const std::byte> payload) {
  const auto len = static_cast<std::uint32_t>(payload.size());
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::byte>((len >> (8 * i)) & 0xFF));
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

MeshExchange::MeshExchange(std::uint32_t shard, std::uint32_t shards, std::vector<int> peer_fds)
    : shard_(shard), shards_(shards) {
  for (std::uint32_t s = 0; s < peer_fds.size(); ++s) {
    const int fd = peer_fds[s];
    if (s == shard || fd < 0) continue;
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    Peer peer;
    peer.shard = s;
    peer.fd = fd;
    peers_.push_back(std::move(peer));
  }
  peer_count_ = peers_.size();
}

MeshExchange::~MeshExchange() {
  for (Peer& peer : peers_) {
    if (peer.fd >= 0) ::close(peer.fd);
    peer.fd = -1;
  }
}

bool MeshExchange::route_frame(Peer& peer, std::vector<std::byte> payload, std::string& error) {
  const auto peer_name = "mesh peer shard " + std::to_string(peer.shard);
  if (!handshaken_) {
    // Only a well-formed hello that echoes this topology admits the peer;
    // anything else rejects it before any slab from it would be parsed.
    const auto hello = parse_peer_hello(payload);
    if (!hello.has_value() || hello->shard != peer.shard || hello->shards != shards_ ||
        peer.hello_seen) {
      error = peer_name + " sent a bad handshake";
      return false;
    }
    peer.hello_seen = true;
    return true;
  }
  // Data plane: a shard slab or an empty-round beacon, exactly one per
  // round, rounds strictly ascending and at most one ahead of ours.
  if (payload.empty()) {
    error = peer_name + " sent an empty mesh frame";
    return false;
  }
  const auto magic = static_cast<std::uint8_t>(payload[0]);
  std::uint64_t frame_round = 0;
  if (magic == kPeerBeaconMagic) {
    const auto beacon = parse_peer_beacon(payload);
    if (!beacon.has_value() || beacon->shard != peer.shard) {
      error = peer_name + " sent a malformed beacon";
      return false;
    }
    frame_round = static_cast<std::uint64_t>(beacon->round);
  } else if (magic == kShardSlabMagic) {
    // Structural peek only — the slab header shares the beacon's layout
    // (magic, varint shard, varint round); the full parse happens in the
    // worker's decode sink.
    std::size_t offset = 1;
    const auto from = get_varint(payload, offset);
    const auto round = get_varint(payload, offset);
    if (!from || !round || *from != peer.shard || *round == 0) {
      error = peer_name + " sent a malformed slab header";
      return false;
    }
    frame_round = *round;
  } else {
    error = peer_name + " sent an unknown mesh payload";
    return false;
  }
  const auto round = static_cast<Round>(frame_round);
  if (round <= peer.last_round || round > current_round_ + 1) {
    error = peer_name + " broke round order (frame round " + std::to_string(round) +
            ", local round " + std::to_string(current_round_) + ")";
    return false;
  }
  peer.last_round = round;
  auto& slot = staged_[round];
  slot.arrived += 1;
  if (magic == kShardSlabMagic) slot.payloads.push_back({peer.shard, std::move(payload)});
  return true;
}

bool MeshExchange::drain(Peer& peer, std::string& error) {
  std::byte chunk[65536];
  for (;;) {
    const ssize_t n = ::recv(peer.fd, chunk, sizeof chunk, MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      error = "mesh peer shard " + std::to_string(peer.shard) + " socket error";
      return false;
    }
    if (n == 0) {
      error = "mesh peer shard " + std::to_string(peer.shard) + " closed its socket" +
              (current_round_ > 0 ? " in round " + std::to_string(current_round_) : "");
      return false;
    }
    peer.in.insert(peer.in.end(), chunk, chunk + n);
    // Slice complete `u32 len + payload` frames off the stream.
    for (;;) {
      const std::size_t avail = peer.in.size() - peer.in_pos;
      if (avail < 4) break;
      std::uint32_t len = 0;
      for (int i = 0; i < 4; ++i) {
        len |= static_cast<std::uint32_t>(peer.in[peer.in_pos + i]) << (8 * i);
      }
      if (len > kMeshMaxPayload) {
        error = "mesh peer shard " + std::to_string(peer.shard) + " sent an oversized frame";
        return false;
      }
      if (avail < 4 + static_cast<std::size_t>(len)) break;
      std::vector<std::byte> payload(peer.in.begin() + static_cast<std::ptrdiff_t>(peer.in_pos + 4),
                                     peer.in.begin() +
                                         static_cast<std::ptrdiff_t>(peer.in_pos + 4 + len));
      peer.in_pos += 4 + len;
      if (!route_frame(peer, std::move(payload), error)) return false;
    }
    if (peer.in_pos == peer.in.size()) {
      peer.in.clear();
      peer.in_pos = 0;
    }
  }
  return true;
}

bool MeshExchange::flush_and_drain(std::string& error) {
  for (;;) {
    bool pending = false;
    std::vector<pollfd> pfds;
    pfds.reserve(peers_.size());
    for (Peer& peer : peers_) {
      short events = POLLIN;
      if (peer.out_pos < peer.out.size()) {
        events |= POLLOUT;
        pending = true;
      }
      pfds.push_back({peer.fd, events, 0});
    }
    if (!pending) return true;
    const int ready = ::poll(pfds.data(), pfds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      error = "mesh poll failed";
      return false;
    }
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      Peer& peer = peers_[i];
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        if (!drain(peer, error)) return false;
      }
      if ((pfds[i].revents & POLLOUT) != 0 && peer.out_pos < peer.out.size()) {
        const ssize_t n = ::send(peer.fd, peer.out.data() + peer.out_pos,
                                 peer.out.size() - peer.out_pos, MSG_NOSIGNAL | MSG_DONTWAIT);
        if (n < 0) {
          if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
          error = "mesh peer shard " + std::to_string(peer.shard) + " is unwritable" +
                  (current_round_ > 0 ? " in round " + std::to_string(current_round_) : "");
          return false;
        }
        peer.out_pos += static_cast<std::size_t>(n);
        if (peer.out_pos == peer.out.size()) {
          peer.out.clear();
          peer.out_pos = 0;
        }
      }
    }
  }
}

bool MeshExchange::handshake(std::string& error) {
  if (peer_count_ + 1 != shards_) {
    error = "mesh wiring mismatch: shard " + std::to_string(shard_) + " holds " +
            std::to_string(peer_count_) + " peer sockets for " + std::to_string(shards_) +
            " shards";
    return false;
  }
  const std::vector<std::byte> hello = encode_peer_hello(shard_, shards_);
  for (Peer& peer : peers_) append_frame(peer.out, hello);
  // Everyone writes first, then reads: the hellos are tiny, so the kernel
  // buffers absorb them and the symmetric exchange cannot deadlock.
  for (;;) {
    if (!flush_and_drain(error)) return false;
    bool all = true;
    for (const Peer& peer : peers_) all = all && peer.hello_seen;
    if (all) break;
    std::vector<pollfd> pfds;
    for (const Peer& peer : peers_) {
      if (!peer.hello_seen) pfds.push_back({peer.fd, POLLIN, 0});
    }
    const int ready = ::poll(pfds.data(), pfds.size(), -1);
    if (ready < 0 && errno != EINTR) {
      error = "mesh poll failed during handshake";
      return false;
    }
    for (Peer& peer : peers_) {
      if (!peer.hello_seen && !drain(peer, error)) return false;
    }
  }
  handshaken_ = true;
  return true;
}

bool MeshExchange::post_round(Round round,
                              std::span<const std::span<const std::byte>> payload_by_shard,
                              std::string& error) {
  if (!handshaken_ || round != current_round_ + 1) {
    error = "mesh post_round called out of order";
    return false;
  }
  current_round_ = round;
  for (Peer& peer : peers_) {
    const std::span<const std::byte> payload =
        peer.shard < payload_by_shard.size() ? payload_by_shard[peer.shard]
                                             : std::span<const std::byte>{};
    if (payload.empty()) {
      append_frame(peer.out, encode_peer_beacon(shard_, round));
    } else {
      append_frame(peer.out, payload);
      counters_.slabs_direct += 1;
    }
  }
  if (!flush_and_drain(error)) return false;
  // Our round-`round` frames are now visible to every peer. On an
  // oversubscribed host a peer blocked in its collect poll becomes runnable
  // the moment the send lands but only gets the CPU when we next block —
  // which would charge OUR merge time to ITS stall ledger. Yield at the
  // data-availability point so blocked peers wake here; with a core to
  // spare this is a no-op.
  ::sched_yield();
  return true;
}

bool MeshExchange::collect_round(Round round, const PayloadSink& sink, std::string& error) {
  if (round != current_round_) {
    error = "mesh collect_round called out of order";
    return false;
  }
  auto& slot = staged_[round];  // std::map: reference stays valid across drains
  bool stalled = false;
  std::size_t delivered = 0;
  for (;;) {
    while (delivered < slot.payloads.size()) {
      Staged& staged = slot.payloads[delivered];
      delivered += 1;
      if (!sink(staged.shard, staged.payload)) {
        error = "mesh peer shard " + std::to_string(staged.shard) +
                " payload rejected by the merge";
        return false;
      }
      staged.payload.clear();
      staged.payload.shrink_to_fit();
    }
    if (slot.arrived == peer_count_) break;
    // Opportunistic pass first: anything already in the kernel buffers does
    // not count as stall.
    const std::size_t before = slot.arrived;
    for (Peer& peer : peers_) {
      if (!drain(peer, error)) return false;
    }
    if (slot.arrived != before || delivered < slot.payloads.size()) continue;
    // Genuinely missing a peer's round — this wait is the stall the mesh
    // exists to shrink.
    std::vector<pollfd> pfds;
    pfds.reserve(peers_.size());
    for (const Peer& peer : peers_) pfds.push_back({peer.fd, POLLIN, 0});
    const auto wait_start = Clock::now();
    const int ready = ::poll(pfds.data(), pfds.size(), -1);
    counters_.recv_stall_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - wait_start).count());
    stalled = true;
    if (ready < 0 && errno != EINTR) {
      error = "mesh poll failed";
      return false;
    }
    for (std::size_t i = 0; i < peers_.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
        if (!drain(peers_[i], error)) return false;
      }
    }
  }
  if (!stalled) counters_.rounds_overlapped += 1;
  staged_.erase(round);
  return true;
}

}  // namespace idonly
