// Multi-process distributed simulation: fork N shard workers, drive the
// round protocol, and merge the results into the same ScriptRun a
// single-process run_script() produces.
//
// Two data-plane topologies (DESIGN.md §12):
//
//   * mesh (default): the coordinator plumbs one AF_UNIX socketpair per
//     shard PAIR at fork time and the workers exchange the round's slabs
//     peer-to-peer (dist/shard_mesh.hpp). The coordinator is a pure CONTROL
//     plane — round pacing, the early-exit policy, the crash watchdog, and
//     the merged counters; no slab byte transits it. For totalorder (round
//     count data-independent) it runs the round loop with lookahead 2:
//     kStep r+1 is broadcast before round r's statuses are harvested, so
//     workers double-buffer rounds instead of barriering on the
//     coordinator. Consensus keeps strict alternation — its early exit
//     depends on every round's statuses.
//   * relay (--no-mesh): the PR-8 star — workers upload kSlabs, the
//     coordinator re-sends each destination's slabs as ONE gathered
//     kDeliver (no payload copy; Metrics::fanout counts the relayed bytes).
//
// Either way the coordinator owns the ROUND LOOP POLICY — replicated from
// the harness chaos runners (harness/script.cpp), with the worker statuses
// standing in for direct process inspection. Its own ChurnDriver instance
// (engine-agnostic, same seed stream as the workers') tracks the evolving
// set of nodes the expectations quantify over.
//
// Failure handling: a worker that closes its socket (crash) or stops
// answering (wedge) fails the RUN, not the coordinator — every worker is
// SIGKILLed, reaped, and the result carries `infra_ok = false` plus a
// message naming the shard and the failure mode. The wedge budget reuses
// the runtime watchdog's retirement policy (runtime/watchdog.hpp): a silent
// worker is granted WatchdogConfig::max_restarts_per_slot extra polling
// grace periods — restarting a deterministic shard mid-round is
// meaningless, so "restart budget spent" maps to "retire the run". There is
// deliberately no partial-result path: a run missing one shard's traffic
// would be a DIFFERENT run, silently.
//
// Determinism: for the same script and seed, the merged canonical trace
// (flight-recorder link verdicts) is byte-identical to
// `run_script(..., threads=1)` with a recorder — the CI dist-smoke job
// byte-compares the two exports. See DESIGN.md §12 for the argument.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "dist/shard_trace.hpp"
#include "harness/script.hpp"

namespace idonly {

struct DistConfig {
  std::string script_text;
  std::uint32_t shards = 1;
  /// Capture the flight-recorder trace (workers record their own nodes; the
  /// coordinator splices the rings).
  bool want_trace = false;
  /// Data plane: true = direct worker↔worker mesh with a double-buffered
  /// round loop; false = star relay through the coordinator. Same merged
  /// result and byte-identical canonical trace either way.
  bool mesh = true;
  /// Whole-frame receive budget per worker reply before the worker counts
  /// as wedged (then the watchdog-style grace retries start).
  int wedge_timeout_ms = 60000;
  /// Test hook: worker `crash_shard` dies abruptly before executing round
  /// `crash_at_round` (0 = never). The run must fail cleanly, not hang.
  Round crash_at_round = 0;
  std::uint32_t crash_shard = 0;
};

struct DistRun {
  /// False when the RUN INFRASTRUCTURE failed — a worker crashed, wedged,
  /// or broke protocol. `script` is meaningless in that case.
  bool infra_ok = true;
  std::string infra_error;
  /// The merged run result, same shape and summary format as run_script().
  ScriptRun script;
  /// Merged fleet metrics — message/fanout counters summed across shards,
  /// plus the overlap counters (rounds_overlapped, recv_stall_ns,
  /// slabs_direct) and, in relay mode, fanout.coordinator_relay_bytes.
  Metrics metrics;
  /// Sharded flight-recorder epilogue (null unless want_trace and
  /// infra_ok): each worker's rings absorbed as one per-shard stream,
  /// exports k-way merged — byte-identical to the recorder-based exports.
  std::shared_ptr<ShardedTrace> trace;
};

/// Execute the scripted run across `config.shards` forked worker processes.
/// Supports the consensus and totalorder protocols (the chaos/churn loop
/// harnesses). Never throws on worker failure — that is an infra_ok=false
/// result; throws only on programmer error (e.g. empty script text).
[[nodiscard]] DistRun run_dist(const DistConfig& config);

}  // namespace idonly
