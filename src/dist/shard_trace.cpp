#include "dist/shard_trace.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace idonly {

void ShardedTrace::absorb_shard(std::vector<ShardResult::Ring> rings) {
  Shard shard;
  shard.rings = std::move(rings);
  std::sort(shard.rings.begin(), shard.rings.end(),
            [](const ShardResult::Ring& a, const ShardResult::Ring& b) { return a.node < b.node; });
  for (const ShardResult::Ring& ring : shard.rings) {
    if (!nodes_.insert(ring.node).second) {
      throw std::invalid_argument("ShardedTrace: node " + std::to_string(ring.node) +
                                  " appears in two shards");
    }
    records_ += ring.records.size();
    evicted_ += ring.evicted;
    for (const TraceRecord& rec : ring.records) {
      if (!is_canonical(rec.kind)) continue;
      if (rec.from == rec.to) continue;  // loopback: engine-dependent, never faulted
      shard.canonical.push_back(&rec);
    }
  }
  // O(ring/k): each shard sorts only its own canonical stream; the exports
  // merge the pre-sorted streams.
  std::sort(shard.canonical.begin(), shard.canonical.end(),
            [](const TraceRecord* a, const TraceRecord* b) {
              return canonical_record_less(*a, *b);
            });
  shards_.push_back(std::move(shard));
}

std::string ShardedTrace::jsonl() const {
  std::ostringstream os;
  os << "{\"idonly_trace\":1,\"engine\":\"" << to_string(engine_)
     << "\",\"records\":" << records_ << ",\"evicted\":" << evicted_ << "}\n";
  // K-way merge by ring node id: node sets are disjoint and each shard's
  // rings are ascending, so emitting the globally-smallest head ring
  // reproduces snapshot()'s group-by-ascending-node order.
  std::vector<std::size_t> next(shards_.size(), 0);
  for (;;) {
    std::size_t pick = shards_.size();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (next[s] >= shards_[s].rings.size()) continue;
      if (pick == shards_.size() ||
          shards_[s].rings[next[s]].node < shards_[pick].rings[next[pick]].node) {
        pick = s;
      }
    }
    if (pick == shards_.size()) break;
    const ShardResult::Ring& ring = shards_[pick].rings[next[pick]];
    for (const TraceRecord& rec : ring.records) os << to_jsonl_line(rec, engine_) << "\n";
    next[pick] += 1;
  }
  return os.str();
}

std::string ShardedTrace::canonical_jsonl() const {
  std::ostringstream os;
  std::vector<std::size_t> next(shards_.size(), 0);
  for (;;) {
    std::size_t pick = shards_.size();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      if (next[s] >= shards_[s].canonical.size()) continue;
      if (pick == shards_.size() ||
          canonical_record_less(*shards_[s].canonical[next[s]],
                                *shards_[pick].canonical[next[pick]])) {
        pick = s;
      }
    }
    if (pick == shards_.size()) break;
    os << to_canonical_line(*shards_[pick].canonical[next[pick]]) << "\n";
    next[pick] += 1;
  }
  return os.str();
}

}  // namespace idonly
