// Sharded end-of-run trace epilogue for the distributed coordinator.
//
// PR 8's coordinator rebuilt a single TraceRecorder by absorb_ring()-ing
// every worker's rings — one serial pass copying every record into per-node
// deques, then snapshot()/sort over the FULL record set at export. This
// class keeps the epilogue sharded instead: each worker's rings are moved
// in as ONE per-shard stream (no per-record copy), the canonical family is
// filtered and sorted per shard — O(ring/k) each — and the exports run a
// k-way merge over the pre-sorted shard streams.
//
// Byte-identity with the recorder-based exports is structural:
//   * full jsonl groups records by ascending node id with capture order
//     within a node. Workers own DISJOINT node sets and ship rings in
//     ascending node order, so emitting whole rings in ascending-node order
//     across shards reproduces snapshot() order exactly.
//   * canonical export sorts by (round, from, to, link_seq, kind). A
//     canonical record's node is its receiver, and a receiver lives in
//     exactly one shard, so no key ever ties across shards and merging the
//     per-shard sorted streams IS the global sort. Both exports use the
//     recorder's own serializers (to_jsonl_line / to_canonical_line) and
//     comparator (canonical_record_less) — there is no second format to
//     drift.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "common/trace.hpp"
#include "dist/shard_wire.hpp"

namespace idonly {

class ShardedTrace {
 public:
  explicit ShardedTrace(TraceEngine engine = TraceEngine::kSync) noexcept : engine_(engine) {}

  /// Move one worker's rings in as a shard stream; filters and sorts the
  /// shard's canonical records. Node sets must be disjoint across shards
  /// (shard workers own disjoint id ranges); throws std::invalid_argument
  /// when a node repeats.
  void absorb_shard(std::vector<ShardResult::Ring> rings);

  [[nodiscard]] std::size_t size() const noexcept { return records_; }
  [[nodiscard]] std::uint64_t evicted() const noexcept { return evicted_; }

  /// Full export, byte-identical to TraceRecorder::jsonl() over the same
  /// rings: header line, then every record grouped by ascending node id.
  [[nodiscard]] std::string jsonl() const;
  /// Canonical export, byte-identical to TraceRecorder::canonical_jsonl():
  /// link-verdict family only, self-links removed, globally sorted.
  [[nodiscard]] std::string canonical_jsonl() const;

 private:
  struct Shard {
    std::vector<ShardResult::Ring> rings;           ///< ascending node id
    std::vector<const TraceRecord*> canonical;      ///< per-shard sorted stream
  };

  TraceEngine engine_;
  std::vector<Shard> shards_;
  std::set<NodeId> nodes_;
  std::size_t records_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace idonly
