#include "dist/shard_engine.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace idonly {

void ShardEngine::add_process(std::unique_ptr<Process> process) {
  if (process == nullptr) throw std::invalid_argument("add_process: null process");
  const NodeId id = process->id();
  const bool queued = std::any_of(pending_joins_.begin(), pending_joins_.end(),
                                  [id](const auto& p) { return p->id() == id; });
  if (members_.contains(id) || queued) {
    throw std::invalid_argument("add_process: duplicate live node id " + std::to_string(id));
  }
  pending_joins_.push_back(std::move(process));
}

void ShardEngine::remove_process(NodeId id) { pending_removals_.push_back(id); }

void ShardEngine::begin_round() {
  // Departures announced during the previous round take effect before this
  // one begins; in-flight delayed messages addressed to the leaver die with
  // it. Identical prologue to SyncSimulator::step.
  for (NodeId id : pending_removals_) {
    members_.erase(id);
    std::erase_if(pending_joins_,
                  [id](const std::unique_ptr<Process>& p) { return p->id() == id; });
    for (auto& [due, entries] : delayed_) {
      std::erase_if(entries, [id](const auto& entry) { return entry.first == id; });
    }
  }
  pending_removals_.clear();

  for (auto& joiner : pending_joins_) {
    const NodeId id = joiner->id();
    assert(members_.find(id) == members_.end() && "duplicate live node id");
    Member member;
    member.process = std::move(joiner);
    member.joined_round = round_ + 1;
    members_.emplace(id, std::move(member));
  }
  pending_joins_.clear();

  round_ += 1;
  metrics_.rounds_executed = round_;

  // Synchrony-fault-delayed messages land AFTER last round's routed traffic
  // (fresh keys off the advanced counter), preserving back-of-inbox order.
  for (auto it = delayed_.begin(); it != delayed_.end() && it->first <= round_;) {
    for (auto& [to, ref] : it->second) {
      auto member = members_.find(to);
      if (member == members_.end()) continue;
      if (!member->second.mailbox.deposit(ref, seq_++)) metrics_.fanout.dedup_hits += 1;
    }
    it = delayed_.erase(it);
  }

  // Dispatch arena, ascending by id (std::map order). Capacity reused.
  if (dispatches_.size() > members_.size()) dispatches_.resize(members_.size());
  dispatches_.reserve(members_.size());
  std::size_t slot = 0;
  for (auto& [id, member] : members_) {
    if (slot == dispatches_.size()) dispatches_.emplace_back();
    Dispatch& dispatch = dispatches_[slot++];
    dispatch.id = id;
    dispatch.member = &member;
    dispatch.outbox.clear();
    dispatch.became_done = false;
  }

  // Inbox assembly for every member BEFORE anyone steps (lock-step
  // semantics). There is no shared broadcast lane — every deposit went
  // through the per-receiver path — so collect() runs against a null lane.
  // Delivery records flush before the merge stages send/verdict records,
  // matching the reference engine's per-ring capture order.
  for (Dispatch& dispatch : dispatches_) {
    Member& member = *dispatch.member;
    dispatch.inbox = member.mailbox.collect(static_cast<const BroadcastLane*>(nullptr),
                                            member.scratch, &metrics_.fanout,
                                            &metrics_.messages);
    if (recorder_) {
      for (const Message& msg : dispatch.inbox) {
        trace_stage_.push_back(make_deliver_record(dispatch.id, round_, msg.sender));
      }
    }
  }
  if (recorder_) {
    recorder_->record_batch(trace_stage_);
    trace_stage_.clear();
  }

  // Step every local process, stamp identities, wrap, and lay the round's
  // local traffic out in global send order restricted to local senders.
  local_sends_.clear();
  for (Dispatch& dispatch : dispatches_) {
    Member& member = *dispatch.member;
    const bool was_done = member.process->done();
    RoundInfo info{round_, round_ - member.joined_round + 1};
    member.process->on_round(info, dispatch.inbox, dispatch.outbox);
    dispatch.became_done = !was_done && member.process->done();
    for (Outgoing& out : dispatch.outbox) {
      Message msg = std::move(out.msg);
      msg.sender = dispatch.id;  // unforgeable identity
      local_sends_.push_back(Send{out.to, MessageRef::wrap(std::move(msg))});
    }
  }
}

void ShardEngine::deposit_private(NodeId from, NodeId to, Member& member,
                                  const MessageRef& ref, std::uint64_t key) {
  Round extra = 0;
  if (chaos_) {
    const std::uint64_t link_seq = link_seq_[{from, to}]++;
    const LinkEvent event{round_, from, to, link_seq};
    const FaultDecision verdict = chaos_->peek(event);
    if (verdict.faulted()) chaos_stage_.emplace_back(event, verdict);
    if (recorder_) trace_stage_.push_back(make_link_verdict_record(event, verdict));
    if (verdict.drop) return;
    if (verdict.duplicate) {
      // Second copy at `key`: duplicate-before-primary, the sequential
      // engine's deposit order. It dies in mailbox dedup; the decision is
      // what must reproduce, and it is in the trace.
      if (!member.mailbox.deposit(ref, key)) metrics_.fanout.dedup_hits += 1;
    }
    extra = verdict.delay_rounds;
  }
  if (extra > 0) {
    delayed_stage_.push_back({round_ + 1 + extra, to, ref});
    return;
  }
  if (!member.mailbox.deposit(ref, key + 1)) metrics_.fanout.dedup_hits += 1;
}

void ShardEngine::finish_round(std::span<const std::vector<Send>> remote_streams) {
  // K-way merge on sender id. Stream 0 is the local traffic; each remote
  // stream is one shard's visible slab. Streams are internally ascending by
  // sender and sender sets are disjoint, so repeatedly taking the stream
  // with the smallest head sender replays the exact visible subsequence of
  // the global send order.
  const std::size_t k = remote_streams.size() + 1;
  std::vector<std::span<const Send>> streams(k);
  streams[0] = local_sends_;
  for (std::size_t s = 0; s < remote_streams.size(); ++s) streams[s + 1] = remote_streams[s];
  std::vector<std::size_t> heads(k, 0);

  std::uint64_t ordinal = 0;
  for (;;) {
    std::size_t pick = k;
    NodeId best = 0;
    for (std::size_t s = 0; s < k; ++s) {
      if (heads[s] >= streams[s].size()) continue;
      const NodeId sender = streams[s][heads[s]].ref->sender;
      if (pick == k || sender < best) {
        pick = s;
        best = sender;
      }
    }
    if (pick == k) break;
    const Send& send = streams[pick][heads[pick]++];
    const bool local_sender = pick == 0;
    const NodeId from = send.ref->sender;
    // Two deposit keys per visible ordinal: chaos duplicate at `key`,
    // primary at `key + 1`. Only relative order per mailbox is observable,
    // so the gaps left by traffic this shard never sees are free.
    const std::uint64_t key = seq_ + 2 * ordinal;
    ordinal += 1;
    if (local_sender) {
      metrics_.messages.sent[static_cast<std::size_t>(send.ref->kind)] += 1;
      metrics_.fanout.unique_payloads += 1;
      if (recorder_) trace_stage_.push_back(make_send_record(from, round_, send.to));
    }
    if (send.to.has_value()) {
      // Unicast: deposited only when this shard hosts the recipient. A
      // recipient that is remote — or gone — gets nothing here.
      const auto it = std::lower_bound(
          dispatches_.begin(), dispatches_.end(), *send.to,
          [](const Dispatch& d, NodeId v) { return d.id < v; });
      if (it != dispatches_.end() && it->id == *send.to) {
        deposit_private(from, *send.to, *it->member, send.ref, key);
      }
    } else {
      for (Dispatch& dispatch : dispatches_) {
        deposit_private(from, dispatch.id, *dispatch.member, send.ref, key);
      }
    }
  }

  // Sequential epilogue, mirroring SyncSimulator's lane fold.
  if (chaos_) chaos_->commit_batch(chaos_stage_);
  if (recorder_) recorder_->record_batch(trace_stage_);
  for (Delayed& delayed : delayed_stage_) {
    delayed_[delayed.due].emplace_back(delayed.to, std::move(delayed.ref));
  }
  for (const Dispatch& dispatch : dispatches_) {
    if (dispatch.became_done) metrics_.done_round[dispatch.id] = round_;
  }
  seq_ += 2 * ordinal;

  link_seq_.clear();  // link-event sequence numbers are per sent-round
  trace_stage_.clear();
  chaos_stage_.clear();
  delayed_stage_.clear();
  local_sends_.clear();
}

Process* ShardEngine::find(NodeId id) {
  auto it = members_.find(id);
  if (it != members_.end()) return it->second.process.get();
  for (const auto& pending : pending_joins_) {
    if (pending->id() == id) return pending.get();
  }
  return nullptr;
}

std::vector<NodeId> ShardEngine::member_ids() const {
  std::vector<NodeId> out;
  out.reserve(members_.size());
  for (const auto& [id, member] : members_) out.push_back(id);
  return out;
}

}  // namespace idonly
