#include "dist/shard_plan.hpp"

#include <algorithm>

namespace idonly {

ShardPlan ShardPlan::build(std::span<const NodeId> initial_ids, std::uint32_t shards) {
  ShardPlan plan;
  plan.shards_ = shards == 0 ? 1 : shards;
  plan.ids_.assign(initial_ids.begin(), initial_ids.end());
  std::sort(plan.ids_.begin(), plan.ids_.end());
  const std::size_t n = plan.ids_.size();
  plan.starts_.resize(plan.shards_ + 1);
  for (std::uint32_t k = 0; k <= plan.shards_; ++k) plan.starts_[k] = n * k / plan.shards_;
  return plan;
}

std::uint32_t ShardPlan::owner(NodeId id) const noexcept {
  const auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it != ids_.end() && *it == id) {
    const auto index = static_cast<std::size_t>(it - ids_.begin());
    // Slices are contiguous index ranges; find the one containing `index`.
    const auto slice = std::upper_bound(starts_.begin(), starts_.end(), index) - 1;
    return static_cast<std::uint32_t>(slice - starts_.begin());
  }
  return static_cast<std::uint32_t>(id % shards_);
}

std::span<const NodeId> ShardPlan::initial_slice(std::uint32_t k) const noexcept {
  if (k >= shards_) return {};
  return std::span<const NodeId>(ids_).subspan(starts_[k], starts_[k + 1] - starts_[k]);
}

}  // namespace idonly
