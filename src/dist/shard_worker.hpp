// One shard worker: a script-driven slice of a distributed simulation run.
//
// The worker owns the processes its ShardPlan slice assigns to it, drives
// them through a ShardEngine, and speaks the coordinator's round protocol
// (dist/shard_wire.hpp). It reconstructs the ENTIRE run description from the
// shipped script text — scenario, chaos plan, churn stream — because the
// determinism of the whole scheme rests on every worker deriving identical
// plans from identical inputs:
//
//   * build_processes() constructs EVERY process (all adversaries draw from
//     one shared seed stream) and the worker keeps only its own slice;
//   * the ChurnDriver runs in every worker, so joiner ids and tracked sets
//     agree everywhere; a joiner is kept only when the plan assigns it here;
//   * the chaos schedule is pure in (seed, link event), so each worker
//     evaluates verdicts for ITS receivers and the union over workers equals
//     the single-process run.
//
// The worker never decides when the run ends — the coordinator owns the
// round loop and the early-exit policy; the worker executes kStep/kDeliver
// commands until kFinish.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/chaos.hpp"
#include "common/trace.hpp"
#include "net/codec.hpp"
#include "dist/shard_engine.hpp"
#include "dist/shard_plan.hpp"
#include "dist/shard_wire.hpp"
#include "harness/script.hpp"

namespace idonly {

class ShardWorker {
 public:
  /// Builds the worker's slice of the run described by `init`. Throws
  /// std::invalid_argument on a script parse failure or an unsupported
  /// protocol (the distributed runner covers consensus and totalorder — the
  /// protocols with chaos/churn loop harnesses).
  explicit ShardWorker(const ShardInit& init);

  [[nodiscard]] std::uint32_t shard() const noexcept { return shard_; }
  [[nodiscard]] std::uint32_t shards() const noexcept { return shards_; }
  /// Local process count (initial slice, before churn).
  [[nodiscard]] std::size_t member_count() const noexcept { return initial_members_; }
  [[nodiscard]] Round round() const noexcept { return engine_.round(); }

  /// One outbound cross-shard slab; `bytes` is valid until the next
  /// begin_round() call.
  struct OutboundSlab {
    std::uint32_t dest = 0;
    std::span<const std::byte> bytes;
  };

  /// First half of the next round: apply the round's churn events, run the
  /// engine's local half, and batch the outbound traffic into one slab per
  /// destination shard (empty slabs omitted — absence of traffic is itself
  /// deterministic, so the peer needs no placeholder).
  [[nodiscard]] std::vector<OutboundSlab> begin_round();

  /// Second half: decode the peers' slabs and run the deterministic merge.
  /// False on a malformed slab or frame (error() explains; wire-fault
  /// counters record what was rejected) — the caller must abort the run, as
  /// dropping cross-shard traffic would silently fork determinism.
  [[nodiscard]] bool finish_round(std::span<const std::vector<std::byte>> peer_slabs);

  /// Decode ONE peer slab into a merge stream — the mesh path's incremental
  /// half of finish_round(): the boundary merge is order-blind across peer
  /// streams, so each slab can be decoded the moment it arrives (overlapping
  /// with the remaining peers' transfers) and merged once all are in. Same
  /// failure contract as finish_round().
  [[nodiscard]] bool decode_peer_slab(std::span<const std::byte> bytes,
                                      std::vector<ShardEngine::Send>& stream);
  /// Run the deterministic boundary merge over already-decoded streams
  /// (stream order is irrelevant — the merge orders by sender id).
  void merge_round(std::span<const std::vector<ShardEngine::Send>> streams);

  /// Compute/communication overlap accounting, folded into finalize()'s
  /// metrics. The protocol loop (and its MeshExchange) owns the timing; the
  /// worker owns the ledger.
  [[nodiscard]] OverlapCounters& overlap() noexcept { return overlap_; }

  /// Done flags for the local correct nodes (the coordinator's early-exit
  /// and liveness inputs).
  [[nodiscard]] ShardStatus status();

  /// Final outputs/chains, metrics, chaos counters, and trace rings.
  [[nodiscard]] ShardResult finalize();

  [[nodiscard]] const std::string& error() const noexcept { return error_; }
  [[nodiscard]] const ScenarioScript& script() const noexcept { return script_; }

 private:
  std::uint32_t shard_ = 0;
  std::uint32_t shards_ = 1;
  ScenarioScript script_;
  Scenario scenario_;
  ShardPlan plan_;
  ShardEngine engine_;
  std::shared_ptr<ChaosSchedule> chaos_;
  std::shared_ptr<TraceRecorder> recorder_;
  std::unique_ptr<TraceObserver> observer_;
  std::unique_ptr<ChurnDriver> churn_;
  std::vector<ShardSlabWriter> writers_;  // indexed by destination shard
  FaultCounters wire_faults_;
  OverlapCounters overlap_;
  std::size_t initial_members_ = 0;
  std::string error_;
};

/// Child-side protocol loop: reads kInit, answers kHello, then executes
/// coordinator commands until kFinish (reply kResult, return 0). Any
/// protocol or worker failure sends kError when possible and returns
/// non-zero. Honors ShardInit::crash_at_round by dying abruptly (_exit)
/// before executing that round — the coordinator's crash-detection test
/// hook.
///
/// `peer_fds` (indexed by shard id, -1 for self) are this worker's ends of
/// the mesh socketpairs; required when the init says mesh and shards > 1.
/// In mesh mode a kStep runs the WHOLE round — post slabs to peers, drain
/// theirs, merge — and kSlabs/kDeliver never appear on the control socket.
[[nodiscard]] int run_worker_loop(int fd, std::vector<int> peer_fds = {});

}  // namespace idonly
