#include "dist/shard_coordinator.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <sstream>
#include <utility>
#include <variant>
#include <vector>

#include "common/invariants.hpp"
#include "dist/shard_wire.hpp"
#include "dist/shard_worker.hpp"
#include "runtime/watchdog.hpp"

namespace idonly {

namespace {

struct Worker {
  std::uint32_t shard = 0;
  pid_t pid = -1;
  int fd = -1;
  bool reaped = false;
  int exit_status = 0;
};

/// Owns the fleet: closes sockets, SIGKILLs and reaps whatever is still
/// alive when the run leaves scope — no path may leak a child.
struct Fleet {
  std::vector<Worker> workers;

  ~Fleet() {
    for (Worker& w : workers) {
      if (w.fd >= 0) ::close(w.fd);
      w.fd = -1;
    }
    kill_all();
    reap_all();
  }

  void kill_all() {
    for (const Worker& w : workers) {
      if (!w.reaped && w.pid > 0) ::kill(w.pid, SIGKILL);
    }
  }

  void reap_all() {
    for (Worker& w : workers) {
      if (w.reaped || w.pid <= 0) continue;
      int status = 0;
      if (::waitpid(w.pid, &status, 0) == w.pid) {
        w.exit_status = status;
        w.reaped = true;
      }
    }
  }
};

std::string describe_exit(int status) {
  if (WIFEXITED(status)) return "exit code " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) return "killed by signal " + std::to_string(WTERMSIG(status));
  return "status " + std::to_string(status);
}

/// Receive one frame with the watchdog-style wedge budget: the base timeout
/// plus WatchdogConfig::max_restarts_per_slot grace retries (restarting a
/// deterministic shard mid-round is meaningless, so a spent restart budget
/// retires the run instead of the slot).
RecvStatus recv_with_grace(int fd, ShardMsgType& type, std::vector<std::byte>& payload,
                           int timeout_ms) {
  const std::size_t attempts = 1 + WatchdogConfig{}.max_restarts_per_slot;
  RecvStatus status = RecvStatus::kTimeout;
  for (std::size_t i = 0; i < attempts; ++i) {
    status = recv_frame(fd, type, payload, timeout_ms);
    if (status != RecvStatus::kTimeout) return status;
  }
  return status;
}

/// A worker's failure to answer, rendered with what the wait() learned.
std::string worker_failure(Fleet& fleet, Worker& worker, RecvStatus status,
                           const std::string& when) {
  std::ostringstream out;
  out << "shard worker " << worker.shard << " (pid " << worker.pid << ") ";
  if (status == RecvStatus::kEof) {
    out << "died " << when;
    // The socket EOF means the child is gone (or going); reap it so the
    // message can carry the real exit status.
    int wait_status = 0;
    if (::waitpid(worker.pid, &wait_status, 0) == worker.pid) {
      worker.exit_status = wait_status;
      worker.reaped = true;
      out << " (" << describe_exit(wait_status) << ")";
    }
  } else if (status == RecvStatus::kTimeout) {
    out << "wedged " << when << " (no reply; watchdog grace budget of "
        << WatchdogConfig{}.max_restarts_per_slot << " retries exhausted)";
  } else {
    out << "socket error " << when;
  }
  fleet.kill_all();
  return out.str();
}

DistRun infra_failure(std::string message) {
  DistRun run;
  run.infra_ok = false;
  run.infra_error = std::move(message);
  run.script.all_satisfied = false;
  run.script.summary = "dist: " + run.infra_error;
  return run;
}

void check(ScriptRun& run, Expectation expectation, bool satisfied, std::string detail) {
  run.outcomes.push_back(ExpectationOutcome{expectation, satisfied, std::move(detail)});
  run.all_satisfied = run.all_satisfied && satisfied;
}

bool wants(const ScenarioScript& script, Expectation expectation) {
  return std::find(script.expectations.begin(), script.expectations.end(), expectation) !=
         script.expectations.end();
}

}  // namespace

DistRun run_dist(const DistConfig& config) {
  if (config.script_text.empty()) throw std::invalid_argument("run_dist: empty script text");
  const std::uint32_t shards = config.shards == 0 ? 1 : config.shards;

  auto parsed = parse_script(config.script_text);
  if (const auto* err = std::get_if<ParseError>(&parsed)) {
    return infra_failure("script parse error at line " + std::to_string(err->line) + ": " +
                        err->message);
  }
  const ScenarioScript script = std::get<ScenarioScript>(std::move(parsed));
  if (script.protocol != ScriptProtocol::kConsensus &&
      script.protocol != ScriptProtocol::kTotalOrder) {
    return infra_failure("distributed runner supports consensus and totalorder only");
  }
  const bool consensus = script.protocol == ScriptProtocol::kConsensus;
  const Scenario scenario = make_scenario(script.config);

  // ---------------------------------------------------------- spawn fleet --
  // Every socket — control pairs AND the mesh matrix — is created BEFORE the
  // first fork, so each child keeps exactly the ends it owns and closes the
  // rest: a uniform rule instead of "close earlier siblings'". mesh_fd[s][t]
  // is shard s's end of the (s,t) pair; each fd appears in the matrix once.
  const bool mesh_on = config.mesh && shards > 1;
  Fleet fleet;
  fleet.workers.resize(shards);
  std::vector<std::array<int, 2>> control(shards, {-1, -1});
  std::vector<std::vector<int>> mesh_fd(shards, std::vector<int>(shards, -1));
  const auto close_prefork = [&] {
    for (auto& sv : control) {
      for (int& fd : sv) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
    }
    for (auto& row : mesh_fd) {
      for (int& fd : row) {
        if (fd >= 0) ::close(fd);
        fd = -1;
      }
    }
  };
  for (std::uint32_t s = 0; s < shards; ++s) {
    int sv[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      close_prefork();
      return infra_failure("socketpair failed for shard " + std::to_string(s));
    }
    control[s] = {sv[0], sv[1]};  // [0] = coordinator end, [1] = worker end
  }
  if (mesh_on) {
    for (std::uint32_t a = 0; a < shards; ++a) {
      for (std::uint32_t b = a + 1; b < shards; ++b) {
        int sv[2] = {-1, -1};
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
          close_prefork();
          return infra_failure("mesh socketpair failed for shards " + std::to_string(a) + "/" +
                              std::to_string(b));
        }
        // Ask for buffers big enough to hold a whole round's slab in flight:
        // a post then completes without the peer's cooperation and the
        // collect side finds complete frames instead of ping-ponging the
        // transfer 200KB at a time. The kernel clamps the request to
        // net.core.wmem_max — at the stock ~208KB limit this is a no-op and
        // the chunked path below still works, just with more wakeups.
        constexpr int kMeshBufBytes = 4 << 20;
        for (const int fd : sv) {
          (void)::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &kMeshBufBytes, sizeof kMeshBufBytes);
          (void)::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &kMeshBufBytes, sizeof kMeshBufBytes);
        }
        mesh_fd[a][b] = sv[0];
        mesh_fd[b][a] = sv[1];
      }
    }
  }
  for (std::uint32_t s = 0; s < shards; ++s) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      close_prefork();
      return infra_failure("fork failed for shard " + std::to_string(s));
    }
    if (pid == 0) {
      // Child: keep control[s][1] and mesh row s, close everything else so
      // a dead coordinator or peer reads EOF instead of hanging.
      fleet.workers.clear();  // the child must not kill/reap its siblings
      for (std::uint32_t t = 0; t < shards; ++t) {
        if (control[t][0] >= 0) ::close(control[t][0]);
        if (t != s && control[t][1] >= 0) ::close(control[t][1]);
        if (t != s) {
          for (int fd : mesh_fd[t]) {
            if (fd >= 0) ::close(fd);
          }
        }
      }
      ::_exit(run_worker_loop(control[s][1], std::move(mesh_fd[s])));
    }
    fleet.workers[s] = Worker{s, pid, -1, false, 0};
  }
  for (std::uint32_t s = 0; s < shards; ++s) {
    fleet.workers[s].fd = control[s][0];
    control[s][0] = -1;
    ::close(control[s][1]);
    control[s][1] = -1;
  }
  for (auto& row : mesh_fd) {
    for (int& fd : row) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }

  for (Worker& worker : fleet.workers) {
    ShardInit init;
    init.shard = worker.shard;
    init.shards = shards;
    init.want_trace = config.want_trace;
    init.mesh = mesh_on;
    init.crash_at_round = worker.shard == config.crash_shard ? config.crash_at_round : 0;
    init.script_text = config.script_text;
    if (!send_frame(worker.fd, ShardMsgType::kInit, encode_init(init))) {
      return infra_failure(
          worker_failure(fleet, worker, RecvStatus::kEof, "during initialisation"));
    }
  }
  std::size_t total_members = 0;
  for (Worker& worker : fleet.workers) {
    ShardMsgType type{};
    std::vector<std::byte> payload;
    const RecvStatus status = recv_with_grace(worker.fd, type, payload, config.wedge_timeout_ms);
    if (status != RecvStatus::kOk) {
      return infra_failure(worker_failure(fleet, worker, status, "during initialisation"));
    }
    if (type == ShardMsgType::kError) {
      ByteReader r(payload);
      fleet.kill_all();
      return infra_failure("shard worker " + std::to_string(worker.shard) + " failed: " +
                          r.str());
    }
    if (type != ShardMsgType::kHello) {
      fleet.kill_all();
      return infra_failure("shard worker " + std::to_string(worker.shard) +
                          " broke protocol during initialisation");
    }
    ByteReader r(payload);
    (void)r.u32();
    total_members += r.u64();
  }
  if (total_members != scenario.n()) {
    fleet.kill_all();
    return infra_failure("shard plan mismatch: workers own " + std::to_string(total_members) +
                        " processes, scenario has " + std::to_string(scenario.n()));
  }

  // ----------------------------------------------------------- round loop --
  // The coordinator replays the harness runners' loop policy
  // (harness/script.cpp run_chaos_consensus / run_chaos_totalorder) with
  // worker statuses standing in for direct process inspection, and its own
  // ChurnDriver tracking the expectation set. The discard-everything
  // callbacks keep its id stream aligned with the workers'.
  ChurnDriver churn(script, scenario);
  const ChurnDriver::JoinerFactory null_factory = [](NodeId, std::size_t) {
    return std::unique_ptr<Process>{};
  };
  const ChurnDriver::AddFn null_add = [](std::unique_ptr<Process>) {};
  const ChurnDriver::RemoveFn null_remove = [](NodeId) {};

  std::map<NodeId, bool> done_status;
  const auto tracked_done = [&] {
    bool any = false;
    for (NodeId id : churn.tracked()) {
      const auto it = done_status.find(id);
      if (it == done_status.end() || !it->second) return false;
      any = true;
    }
    return any;
  };

  Round round = 0;
  std::uint64_t relay_bytes = 0;
  std::optional<DistRun> failed;

  const auto broadcast_step = [&](Round r) -> bool {
    // The coordinator's churn stream must advance once per STEPPED round —
    // the workers apply the same events inside begin_round().
    churn.apply(r, null_factory, null_add, null_remove);
    for (Worker& worker : fleet.workers) {
      if (!send_frame(worker.fd, ShardMsgType::kStep, {})) {
        failed = infra_failure(worker_failure(fleet, worker, RecvStatus::kEof,
                                              "when commanded to step"));
        return false;
      }
    }
    return true;
  };

  // One full round of kStatus replies, in worker order. Statuses carry no
  // round number: the control sockets deliver in order and every kStep is
  // answered by exactly one kStatus, so the i-th status from a worker IS its
  // round-i status even when the mesh loop runs a round ahead.
  const auto harvest_statuses = [&](Round r) -> bool {
    for (Worker& worker : fleet.workers) {
      ShardMsgType type{};
      std::vector<std::byte> payload;
      const RecvStatus status =
          recv_with_grace(worker.fd, type, payload, config.wedge_timeout_ms);
      if (status != RecvStatus::kOk) {
        failed = infra_failure(
            worker_failure(fleet, worker, status, "merging round " + std::to_string(r)));
        return false;
      }
      if (type == ShardMsgType::kError) {
        ByteReader er(payload);
        fleet.kill_all();
        failed = infra_failure("shard worker " + std::to_string(worker.shard) +
                               " failed: " + er.str());
        return false;
      }
      const auto worker_status =
          type == ShardMsgType::kStatus ? decode_status(payload) : std::nullopt;
      if (!worker_status.has_value()) {
        fleet.kill_all();
        failed = infra_failure("shard worker " + std::to_string(worker.shard) +
                               " broke protocol in round " + std::to_string(r));
        return false;
      }
      for (const auto& [id, done] : worker_status->done) done_status[id] = done;
    }
    round = r;
    return true;
  };

  // Relay data plane: gather kSlabs, re-send each destination's slabs as ONE
  // gathered kDeliver (no payload copy — the frame is scattered straight
  // from the received slab buffers).
  const auto relay_slabs = [&](Round r) -> bool {
    // Slab gather: outbox[t] collects every (s → t) slab of the round.
    std::vector<std::vector<std::vector<std::byte>>> outbox(shards);
    for (Worker& worker : fleet.workers) {
      ShardMsgType type{};
      std::vector<std::byte> payload;
      const RecvStatus status =
          recv_with_grace(worker.fd, type, payload, config.wedge_timeout_ms);
      if (status != RecvStatus::kOk) {
        failed = infra_failure(
            worker_failure(fleet, worker, status, "in round " + std::to_string(r)));
        return false;
      }
      if (type == ShardMsgType::kError) {
        ByteReader er(payload);
        fleet.kill_all();
        failed = infra_failure("shard worker " + std::to_string(worker.shard) +
                               " failed: " + er.str());
        return false;
      }
      ByteReader r2(payload);
      const std::uint32_t count = type == ShardMsgType::kSlabs ? r2.u32() : 0;
      for (std::uint32_t i = 0; i < count && !r2.failed(); ++i) {
        const std::uint32_t dest = r2.u32();
        std::vector<std::byte> slab = r2.blob();
        if (dest < shards && dest != worker.shard) outbox[dest].push_back(std::move(slab));
      }
      if (type != ShardMsgType::kSlabs || !r2.done()) {
        fleet.kill_all();
        failed = infra_failure("shard worker " + std::to_string(worker.shard) +
                               " broke protocol in round " + std::to_string(r));
        return false;
      }
    }
    for (Worker& worker : fleet.workers) {
      const std::vector<std::vector<std::byte>>& slabs = outbox[worker.shard];
      // Byte-identical to ByteWriter{u32 count; blob each}: a 4-byte count
      // chunk, then per slab an 8-byte LE length chunk and the slab itself.
      ByteWriter head;
      head.u32(static_cast<std::uint32_t>(slabs.size()));
      std::vector<std::byte> lens(8 * slabs.size());
      std::vector<std::span<const std::byte>> chunks;
      chunks.reserve(1 + 2 * slabs.size());
      chunks.emplace_back(head.bytes());
      std::uint64_t bytes = head.bytes().size();
      for (std::size_t i = 0; i < slabs.size(); ++i) {
        const auto len = static_cast<std::uint64_t>(slabs[i].size());
        for (int b = 0; b < 8; ++b) {
          lens[8 * i + static_cast<std::size_t>(b)] =
              static_cast<std::byte>((len >> (8 * b)) & 0xFF);
        }
        chunks.emplace_back(lens.data() + 8 * i, 8);
        chunks.emplace_back(slabs[i]);
        bytes += 8 + len;
      }
      if (!send_frame_gather(worker.fd, ShardMsgType::kDeliver, chunks)) {
        failed = infra_failure(worker_failure(fleet, worker, RecvStatus::kEof,
                                              "when delivering round " + std::to_string(r)));
        return false;
      }
      relay_bytes += bytes;
    }
    return true;
  };

  // Round loop. In mesh mode the coordinator is control-plane only; for
  // totalorder (round count data-independent) it keeps up to TWO rounds
  // stepped-but-unharvested, so a worker can post round r+1's slabs while
  // its slowest peer still merges round r — the double-buffering the mesh
  // staging was built for. Consensus keeps lookahead 1: its early exit
  // reads every round's statuses before deciding to step again. The relay
  // path is inherently alternating (the coordinator sits inside the round).
  const Round lookahead = (mesh_on && !consensus) ? 2 : 1;
  Round stepped = 0;
  bool all_decided = false;
  for (;;) {
    if (consensus && tracked_done()) {
      all_decided = true;
      break;
    }
    if (round >= script.max_rounds) break;
    while (stepped < std::min<Round>(round + lookahead, script.max_rounds)) {
      stepped += 1;
      if (!broadcast_step(stepped)) return *std::move(failed);
      if (!mesh_on && !relay_slabs(stepped)) return *std::move(failed);
    }
    if (!harvest_statuses(round + 1)) return *std::move(failed);
  }
  if (consensus && !all_decided) all_decided = tracked_done();

  // -------------------------------------------------------------- results --
  std::vector<ShardResult> results;
  for (Worker& worker : fleet.workers) {
    if (!send_frame(worker.fd, ShardMsgType::kFinish, {})) {
      return infra_failure(
          worker_failure(fleet, worker, RecvStatus::kEof, "when commanded to finish"));
    }
  }
  for (Worker& worker : fleet.workers) {
    ShardMsgType type{};
    std::vector<std::byte> payload;
    const RecvStatus status = recv_with_grace(worker.fd, type, payload, config.wedge_timeout_ms);
    if (status != RecvStatus::kOk) {
      return infra_failure(worker_failure(fleet, worker, status, "while finalizing"));
    }
    auto result = type == ShardMsgType::kResult ? decode_result(payload) : std::nullopt;
    if (!result.has_value()) {
      fleet.kill_all();
      return infra_failure("shard worker " + std::to_string(worker.shard) +
                          " sent a malformed result");
    }
    results.push_back(*std::move(result));
  }
  for (Worker& worker : fleet.workers) {
    int wait_status = 0;
    if (::waitpid(worker.pid, &wait_status, 0) == worker.pid) {
      worker.exit_status = wait_status;
      worker.reaped = true;
    }
    if (!WIFEXITED(worker.exit_status) || WEXITSTATUS(worker.exit_status) != 0) {
      fleet.kill_all();
      return infra_failure("shard worker " + std::to_string(worker.shard) +
                          " finished with " + describe_exit(worker.exit_status));
    }
  }

  // ---------------------------------------------------------------- merge --
  DistRun run;
  Metrics metrics;
  ChaosCounters chaos;
  bool has_chaos = false;
  FaultCounters wire_faults;
  std::map<NodeId, ShardResult::Decision> decisions;
  std::map<NodeId, std::vector<ChainEntry>> chains;
  if (config.want_trace) run.trace = std::make_shared<ShardedTrace>(TraceEngine::kSync);
  for (ShardResult& result : results) {
    for (std::size_t k = 0; k < MessageCounters::kKinds; ++k) {
      metrics.messages.sent[k] += result.metrics.messages.sent[k];
      metrics.messages.delivered[k] += result.metrics.messages.delivered[k];
    }
    metrics.fanout += result.metrics.fanout;
    metrics.overlap += result.metrics.overlap;
    metrics.rounds_executed = std::max(metrics.rounds_executed, result.metrics.rounds_executed);
    for (const auto& [id, done_round] : result.metrics.done_round) {
      metrics.done_round.emplace(id, done_round);
    }
    if (result.has_chaos) {
      has_chaos = true;
      if (chaos.per_phase.size() < result.chaos.per_phase.size()) {
        chaos.per_phase.resize(result.chaos.per_phase.size());
      }
      for (std::size_t p = 0; p < result.chaos.per_phase.size(); ++p) {
        chaos.per_phase[p] += result.chaos.per_phase[p];
      }
      chaos.backoffs += result.chaos.backoffs;
      chaos.shrinks += result.chaos.shrinks;
      chaos.resyncs += result.chaos.resyncs;
      chaos.restarts += result.chaos.restarts;
    }
    wire_faults += result.wire_faults;
    for (const ShardResult::Decision& d : result.decisions) decisions.emplace(d.id, d);
    for (ShardResult::Chain& c : result.chains) chains.emplace(c.id, std::move(c.chain));
    if (run.trace != nullptr) run.trace->absorb_shard(std::move(result.rings));
  }
  metrics.fanout.coordinator_relay_bytes += relay_bytes;

  ScriptRun& script_run = run.script;
  script_run.rounds = round;
  script_run.messages = metrics.messages.total_delivered();
  if (has_chaos) {
    script_run.chaos_summary = chaos.summary();
    script_run.metrics_exposition = prometheus_exposition(metrics, &chaos, &wire_faults);
  } else {
    script_run.metrics_exposition = prometheus_exposition(metrics, nullptr, &wire_faults);
  }
  run.metrics = metrics;

  if (consensus) {
    // Replayed verdict logic from run_chaos_consensus, with the monitor fed
    // from the merged decision set (decide rounds from the merged metrics)
    // so the liveness probe's verdict — and its violation string — match.
    std::vector<Value> correct_inputs;
    for (std::size_t i = 0; i < scenario.correct_ids.size(); ++i) {
      correct_inputs.push_back(Value::real(script.inputs[i % script.inputs.size()]));
    }
    InvariantMonitor monitor(wants(script, Expectation::kValidity) ? correct_inputs
                                                                   : std::vector<Value>{});
    if (script.liveness_budget > 0) monitor.set_termination_probe(script.liveness_budget);
    for (const auto& [id, d] : decisions) {
      if (!d.has_output) continue;
      ProtocolEvent event;
      event.type = ProtocolEvent::Type::kDecided;
      event.node = id;
      const auto it = metrics.done_round.find(id);
      event.round = it != metrics.done_round.end() ? it->second : round;
      event.value = d.output;
      monitor.on_event(event);
    }
    monitor.finish(round);
    script_run.violations = monitor.violations();

    std::optional<Value> first;
    bool agreement = true;
    bool validity = false;
    for (NodeId id : churn.tracked()) {
      const auto it = decisions.find(id);
      if (it == decisions.end() || !it->second.has_output) continue;
      if (!first.has_value()) first = it->second.output;
      agreement = agreement && it->second.output == *first;
    }
    if (first.has_value()) {
      for (const Value& input : correct_inputs) validity = validity || input == *first;
    }
    if (wants(script, Expectation::kTermination)) {
      check(script_run, Expectation::kTermination, all_decided, "all correct nodes decided");
    }
    if (wants(script, Expectation::kAgreement)) {
      check(script_run, Expectation::kAgreement, agreement && all_decided,
            "identical outputs");
    }
    if (wants(script, Expectation::kValidity)) {
      check(script_run, Expectation::kValidity, validity, "output is a correct input");
    }
    if (wants(script, Expectation::kNoViolations)) {
      check(script_run, Expectation::kNoViolations, monitor.ok() && agreement,
            script_run.violations.empty() ? "invariant monitor clean"
                                          : script_run.violations.front());
    }
  } else {
    bool growth = !churn.tracked().empty();
    bool prefix_ok = true;
    const std::vector<ChainEntry>* longest = nullptr;
    for (NodeId id : churn.tracked()) {
      const auto it = chains.find(id);
      if (it == chains.end()) continue;
      growth = growth && !it->second.empty();
      if (longest == nullptr || it->second.size() > longest->size()) longest = &it->second;
    }
    for (NodeId id : churn.tracked()) {
      const auto it = chains.find(id);
      if (it == chains.end() || longest == nullptr) continue;
      const std::vector<ChainEntry>& chain = it->second;
      const bool is_prefix = std::equal(chain.begin(), chain.end(), longest->begin());
      if (!is_prefix) {
        prefix_ok = false;
        script_run.violations.push_back("node " + std::to_string(id) +
                                        "'s chain is not a prefix of the longest chain");
      }
    }
    if (wants(script, Expectation::kTermination)) {
      check(script_run, Expectation::kTermination, growth, "every correct chain grew");
    }
    if (wants(script, Expectation::kAgreement)) {
      check(script_run, Expectation::kAgreement, prefix_ok, "chains prefix-comparable");
    }
    if (wants(script, Expectation::kNoViolations)) {
      check(script_run, Expectation::kNoViolations, prefix_ok,
            script_run.violations.empty() ? "chain-prefix invariant clean"
                                          : script_run.violations.front());
    }
  }

  std::ostringstream summary;
  summary << to_string(script.protocol) << " n=" << script.config.n_correct << "+"
          << script.config.n_byzantine << " seed=" << script.config.seed
          << " rounds=" << script_run.rounds << " msgs=" << script_run.messages << " — "
          << (script_run.all_satisfied ? "OK" : "EXPECTATION FAILED");
  script_run.summary = summary.str();
  return run;
}

}  // namespace idonly
