#include "dist/shard_coordinator.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <optional>
#include <sstream>
#include <utility>
#include <variant>
#include <vector>

#include "common/invariants.hpp"
#include "dist/shard_wire.hpp"
#include "dist/shard_worker.hpp"
#include "runtime/watchdog.hpp"

namespace idonly {

namespace {

struct Worker {
  std::uint32_t shard = 0;
  pid_t pid = -1;
  int fd = -1;
  bool reaped = false;
  int exit_status = 0;
};

/// Owns the fleet: closes sockets, SIGKILLs and reaps whatever is still
/// alive when the run leaves scope — no path may leak a child.
struct Fleet {
  std::vector<Worker> workers;

  ~Fleet() {
    for (Worker& w : workers) {
      if (w.fd >= 0) ::close(w.fd);
      w.fd = -1;
    }
    kill_all();
    reap_all();
  }

  void kill_all() {
    for (const Worker& w : workers) {
      if (!w.reaped && w.pid > 0) ::kill(w.pid, SIGKILL);
    }
  }

  void reap_all() {
    for (Worker& w : workers) {
      if (w.reaped || w.pid <= 0) continue;
      int status = 0;
      if (::waitpid(w.pid, &status, 0) == w.pid) {
        w.exit_status = status;
        w.reaped = true;
      }
    }
  }
};

std::string describe_exit(int status) {
  if (WIFEXITED(status)) return "exit code " + std::to_string(WEXITSTATUS(status));
  if (WIFSIGNALED(status)) return "killed by signal " + std::to_string(WTERMSIG(status));
  return "status " + std::to_string(status);
}

/// Receive one frame with the watchdog-style wedge budget: the base timeout
/// plus WatchdogConfig::max_restarts_per_slot grace retries (restarting a
/// deterministic shard mid-round is meaningless, so a spent restart budget
/// retires the run instead of the slot).
RecvStatus recv_with_grace(int fd, ShardMsgType& type, std::vector<std::byte>& payload,
                           int timeout_ms) {
  const std::size_t attempts = 1 + WatchdogConfig{}.max_restarts_per_slot;
  RecvStatus status = RecvStatus::kTimeout;
  for (std::size_t i = 0; i < attempts; ++i) {
    status = recv_frame(fd, type, payload, timeout_ms);
    if (status != RecvStatus::kTimeout) return status;
  }
  return status;
}

/// A worker's failure to answer, rendered with what the wait() learned.
std::string worker_failure(Fleet& fleet, Worker& worker, RecvStatus status,
                           const std::string& when) {
  std::ostringstream out;
  out << "shard worker " << worker.shard << " (pid " << worker.pid << ") ";
  if (status == RecvStatus::kEof) {
    out << "died " << when;
    // The socket EOF means the child is gone (or going); reap it so the
    // message can carry the real exit status.
    int wait_status = 0;
    if (::waitpid(worker.pid, &wait_status, 0) == worker.pid) {
      worker.exit_status = wait_status;
      worker.reaped = true;
      out << " (" << describe_exit(wait_status) << ")";
    }
  } else if (status == RecvStatus::kTimeout) {
    out << "wedged " << when << " (no reply; watchdog grace budget of "
        << WatchdogConfig{}.max_restarts_per_slot << " retries exhausted)";
  } else {
    out << "socket error " << when;
  }
  fleet.kill_all();
  return out.str();
}

DistRun infra_failure(std::string message) {
  DistRun run;
  run.infra_ok = false;
  run.infra_error = std::move(message);
  run.script.all_satisfied = false;
  run.script.summary = "dist: " + run.infra_error;
  return run;
}

void check(ScriptRun& run, Expectation expectation, bool satisfied, std::string detail) {
  run.outcomes.push_back(ExpectationOutcome{expectation, satisfied, std::move(detail)});
  run.all_satisfied = run.all_satisfied && satisfied;
}

bool wants(const ScenarioScript& script, Expectation expectation) {
  return std::find(script.expectations.begin(), script.expectations.end(), expectation) !=
         script.expectations.end();
}

}  // namespace

DistRun run_dist(const DistConfig& config) {
  if (config.script_text.empty()) throw std::invalid_argument("run_dist: empty script text");
  const std::uint32_t shards = config.shards == 0 ? 1 : config.shards;

  auto parsed = parse_script(config.script_text);
  if (const auto* err = std::get_if<ParseError>(&parsed)) {
    return infra_failure("script parse error at line " + std::to_string(err->line) + ": " +
                        err->message);
  }
  const ScenarioScript script = std::get<ScenarioScript>(std::move(parsed));
  if (script.protocol != ScriptProtocol::kConsensus &&
      script.protocol != ScriptProtocol::kTotalOrder) {
    return infra_failure("distributed runner supports consensus and totalorder only");
  }
  const bool consensus = script.protocol == ScriptProtocol::kConsensus;
  const Scenario scenario = make_scenario(script.config);

  // ---------------------------------------------------------- spawn fleet --
  Fleet fleet;
  fleet.workers.resize(shards);
  for (std::uint32_t s = 0; s < shards; ++s) {
    int sv[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      return infra_failure("socketpair failed for shard " + std::to_string(s));
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      return infra_failure("fork failed for shard " + std::to_string(s));
    }
    if (pid == 0) {
      // Child: drop every coordinator-side fd (including earlier siblings')
      // so an exiting coordinator reads EOF, then run the worker protocol.
      ::close(sv[0]);
      for (std::uint32_t prev = 0; prev < s; ++prev) {
        if (fleet.workers[prev].fd >= 0) ::close(fleet.workers[prev].fd);
      }
      fleet.workers.clear();  // the child must not kill/reap its siblings
      ::_exit(run_worker_loop(sv[1]));
    }
    ::close(sv[1]);
    fleet.workers[s] = Worker{s, pid, sv[0], false, 0};
  }

  for (Worker& worker : fleet.workers) {
    ShardInit init;
    init.shard = worker.shard;
    init.shards = shards;
    init.want_trace = config.want_trace;
    init.crash_at_round = worker.shard == config.crash_shard ? config.crash_at_round : 0;
    init.script_text = config.script_text;
    if (!send_frame(worker.fd, ShardMsgType::kInit, encode_init(init))) {
      return infra_failure(
          worker_failure(fleet, worker, RecvStatus::kEof, "during initialisation"));
    }
  }
  std::size_t total_members = 0;
  for (Worker& worker : fleet.workers) {
    ShardMsgType type{};
    std::vector<std::byte> payload;
    const RecvStatus status = recv_with_grace(worker.fd, type, payload, config.wedge_timeout_ms);
    if (status != RecvStatus::kOk) {
      return infra_failure(worker_failure(fleet, worker, status, "during initialisation"));
    }
    if (type == ShardMsgType::kError) {
      ByteReader r(payload);
      fleet.kill_all();
      return infra_failure("shard worker " + std::to_string(worker.shard) + " failed: " +
                          r.str());
    }
    if (type != ShardMsgType::kHello) {
      fleet.kill_all();
      return infra_failure("shard worker " + std::to_string(worker.shard) +
                          " broke protocol during initialisation");
    }
    ByteReader r(payload);
    (void)r.u32();
    total_members += r.u64();
  }
  if (total_members != scenario.n()) {
    fleet.kill_all();
    return infra_failure("shard plan mismatch: workers own " + std::to_string(total_members) +
                        " processes, scenario has " + std::to_string(scenario.n()));
  }

  // ----------------------------------------------------------- round loop --
  // The coordinator replays the harness runners' loop policy
  // (harness/script.cpp run_chaos_consensus / run_chaos_totalorder) with
  // worker statuses standing in for direct process inspection, and its own
  // ChurnDriver tracking the expectation set. The discard-everything
  // callbacks keep its id stream aligned with the workers'.
  ChurnDriver churn(script, scenario);
  const ChurnDriver::JoinerFactory null_factory = [](NodeId, std::size_t) {
    return std::unique_ptr<Process>{};
  };
  const ChurnDriver::AddFn null_add = [](std::unique_ptr<Process>) {};
  const ChurnDriver::RemoveFn null_remove = [](NodeId) {};

  std::map<NodeId, bool> done_status;
  const auto tracked_done = [&] {
    bool any = false;
    for (NodeId id : churn.tracked()) {
      const auto it = done_status.find(id);
      if (it == done_status.end() || !it->second) return false;
      any = true;
    }
    return any;
  };

  Round round = 0;
  std::optional<DistRun> failed;
  const auto do_round = [&]() -> bool {
    for (Worker& worker : fleet.workers) {
      if (!send_frame(worker.fd, ShardMsgType::kStep, {})) {
        failed = infra_failure(worker_failure(fleet, worker, RecvStatus::kEof,
                                              "when commanded to step"));
        return false;
      }
    }
    // Slab gather: outbox[t] collects every (s → t) slab of the round.
    std::vector<std::vector<std::vector<std::byte>>> outbox(shards);
    for (Worker& worker : fleet.workers) {
      ShardMsgType type{};
      std::vector<std::byte> payload;
      const RecvStatus status =
          recv_with_grace(worker.fd, type, payload, config.wedge_timeout_ms);
      if (status != RecvStatus::kOk) {
        failed = infra_failure(worker_failure(fleet, worker, status,
                                              "in round " + std::to_string(round + 1)));
        return false;
      }
      if (type == ShardMsgType::kError) {
        ByteReader r(payload);
        fleet.kill_all();
        failed = infra_failure("shard worker " + std::to_string(worker.shard) +
                               " failed: " + r.str());
        return false;
      }
      ByteReader r(payload);
      const std::uint32_t count = type == ShardMsgType::kSlabs ? r.u32() : 0;
      for (std::uint32_t i = 0; i < count && !r.failed(); ++i) {
        const std::uint32_t dest = r.u32();
        std::vector<std::byte> slab = r.blob();
        if (dest < shards && dest != worker.shard) outbox[dest].push_back(std::move(slab));
      }
      if (type != ShardMsgType::kSlabs || !r.done()) {
        fleet.kill_all();
        failed = infra_failure("shard worker " + std::to_string(worker.shard) +
                               " broke protocol in round " + std::to_string(round + 1));
        return false;
      }
    }
    for (Worker& worker : fleet.workers) {
      ByteWriter w;
      w.u32(static_cast<std::uint32_t>(outbox[worker.shard].size()));
      for (const std::vector<std::byte>& slab : outbox[worker.shard]) w.blob(slab);
      if (!send_frame(worker.fd, ShardMsgType::kDeliver, w.bytes())) {
        failed = infra_failure(worker_failure(fleet, worker, RecvStatus::kEof,
                                              "when delivering round " +
                                                  std::to_string(round + 1)));
        return false;
      }
    }
    for (Worker& worker : fleet.workers) {
      ShardMsgType type{};
      std::vector<std::byte> payload;
      const RecvStatus status =
          recv_with_grace(worker.fd, type, payload, config.wedge_timeout_ms);
      if (status != RecvStatus::kOk) {
        failed = infra_failure(worker_failure(fleet, worker, status,
                                              "merging round " + std::to_string(round + 1)));
        return false;
      }
      if (type == ShardMsgType::kError) {
        ByteReader r(payload);
        fleet.kill_all();
        failed = infra_failure("shard worker " + std::to_string(worker.shard) +
                               " failed: " + r.str());
        return false;
      }
      const auto worker_status =
          type == ShardMsgType::kStatus ? decode_status(payload) : std::nullopt;
      if (!worker_status.has_value()) {
        fleet.kill_all();
        failed = infra_failure("shard worker " + std::to_string(worker.shard) +
                               " broke protocol in round " + std::to_string(round + 1));
        return false;
      }
      for (const auto& [id, done] : worker_status->done) done_status[id] = done;
    }
    round += 1;
    return true;
  };

  bool all_decided = false;
  for (Round i = 0; i < script.max_rounds; ++i) {
    if (consensus && tracked_done()) {
      all_decided = true;
      break;
    }
    churn.apply(round + 1, null_factory, null_add, null_remove);
    if (!do_round()) return *std::move(failed);
  }
  if (consensus && !all_decided) all_decided = tracked_done();

  // -------------------------------------------------------------- results --
  std::vector<ShardResult> results;
  for (Worker& worker : fleet.workers) {
    if (!send_frame(worker.fd, ShardMsgType::kFinish, {})) {
      return infra_failure(
          worker_failure(fleet, worker, RecvStatus::kEof, "when commanded to finish"));
    }
  }
  for (Worker& worker : fleet.workers) {
    ShardMsgType type{};
    std::vector<std::byte> payload;
    const RecvStatus status = recv_with_grace(worker.fd, type, payload, config.wedge_timeout_ms);
    if (status != RecvStatus::kOk) {
      return infra_failure(worker_failure(fleet, worker, status, "while finalizing"));
    }
    auto result = type == ShardMsgType::kResult ? decode_result(payload) : std::nullopt;
    if (!result.has_value()) {
      fleet.kill_all();
      return infra_failure("shard worker " + std::to_string(worker.shard) +
                          " sent a malformed result");
    }
    results.push_back(*std::move(result));
  }
  for (Worker& worker : fleet.workers) {
    int wait_status = 0;
    if (::waitpid(worker.pid, &wait_status, 0) == worker.pid) {
      worker.exit_status = wait_status;
      worker.reaped = true;
    }
    if (!WIFEXITED(worker.exit_status) || WEXITSTATUS(worker.exit_status) != 0) {
      fleet.kill_all();
      return infra_failure("shard worker " + std::to_string(worker.shard) +
                          " finished with " + describe_exit(worker.exit_status));
    }
  }

  // ---------------------------------------------------------------- merge --
  DistRun run;
  Metrics metrics;
  ChaosCounters chaos;
  bool has_chaos = false;
  FaultCounters wire_faults;
  std::map<NodeId, ShardResult::Decision> decisions;
  std::map<NodeId, std::vector<ChainEntry>> chains;
  if (config.want_trace) run.recorder = std::make_shared<TraceRecorder>(TraceEngine::kSync);
  for (ShardResult& result : results) {
    for (std::size_t k = 0; k < MessageCounters::kKinds; ++k) {
      metrics.messages.sent[k] += result.metrics.messages.sent[k];
      metrics.messages.delivered[k] += result.metrics.messages.delivered[k];
    }
    metrics.fanout += result.metrics.fanout;
    metrics.rounds_executed = std::max(metrics.rounds_executed, result.metrics.rounds_executed);
    for (const auto& [id, done_round] : result.metrics.done_round) {
      metrics.done_round.emplace(id, done_round);
    }
    if (result.has_chaos) {
      has_chaos = true;
      if (chaos.per_phase.size() < result.chaos.per_phase.size()) {
        chaos.per_phase.resize(result.chaos.per_phase.size());
      }
      for (std::size_t p = 0; p < result.chaos.per_phase.size(); ++p) {
        chaos.per_phase[p] += result.chaos.per_phase[p];
      }
      chaos.backoffs += result.chaos.backoffs;
      chaos.shrinks += result.chaos.shrinks;
      chaos.resyncs += result.chaos.resyncs;
      chaos.restarts += result.chaos.restarts;
    }
    wire_faults += result.wire_faults;
    for (const ShardResult::Decision& d : result.decisions) decisions.emplace(d.id, d);
    for (ShardResult::Chain& c : result.chains) chains.emplace(c.id, std::move(c.chain));
    if (run.recorder != nullptr) {
      for (ShardResult::Ring& ring : result.rings) {
        run.recorder->absorb_ring(ring.node, std::move(ring.records), ring.next_seq,
                                  ring.evicted);
      }
    }
  }

  ScriptRun& script_run = run.script;
  script_run.rounds = round;
  script_run.messages = metrics.messages.total_delivered();
  if (has_chaos) {
    script_run.chaos_summary = chaos.summary();
    script_run.metrics_exposition = prometheus_exposition(metrics, &chaos, &wire_faults);
  } else {
    script_run.metrics_exposition = prometheus_exposition(metrics, nullptr, &wire_faults);
  }

  if (consensus) {
    // Replayed verdict logic from run_chaos_consensus, with the monitor fed
    // from the merged decision set (decide rounds from the merged metrics)
    // so the liveness probe's verdict — and its violation string — match.
    std::vector<Value> correct_inputs;
    for (std::size_t i = 0; i < scenario.correct_ids.size(); ++i) {
      correct_inputs.push_back(Value::real(script.inputs[i % script.inputs.size()]));
    }
    InvariantMonitor monitor(wants(script, Expectation::kValidity) ? correct_inputs
                                                                   : std::vector<Value>{});
    if (script.liveness_budget > 0) monitor.set_termination_probe(script.liveness_budget);
    for (const auto& [id, d] : decisions) {
      if (!d.has_output) continue;
      ProtocolEvent event;
      event.type = ProtocolEvent::Type::kDecided;
      event.node = id;
      const auto it = metrics.done_round.find(id);
      event.round = it != metrics.done_round.end() ? it->second : round;
      event.value = d.output;
      monitor.on_event(event);
    }
    monitor.finish(round);
    script_run.violations = monitor.violations();

    std::optional<Value> first;
    bool agreement = true;
    bool validity = false;
    for (NodeId id : churn.tracked()) {
      const auto it = decisions.find(id);
      if (it == decisions.end() || !it->second.has_output) continue;
      if (!first.has_value()) first = it->second.output;
      agreement = agreement && it->second.output == *first;
    }
    if (first.has_value()) {
      for (const Value& input : correct_inputs) validity = validity || input == *first;
    }
    if (wants(script, Expectation::kTermination)) {
      check(script_run, Expectation::kTermination, all_decided, "all correct nodes decided");
    }
    if (wants(script, Expectation::kAgreement)) {
      check(script_run, Expectation::kAgreement, agreement && all_decided,
            "identical outputs");
    }
    if (wants(script, Expectation::kValidity)) {
      check(script_run, Expectation::kValidity, validity, "output is a correct input");
    }
    if (wants(script, Expectation::kNoViolations)) {
      check(script_run, Expectation::kNoViolations, monitor.ok() && agreement,
            script_run.violations.empty() ? "invariant monitor clean"
                                          : script_run.violations.front());
    }
  } else {
    bool growth = !churn.tracked().empty();
    bool prefix_ok = true;
    const std::vector<ChainEntry>* longest = nullptr;
    for (NodeId id : churn.tracked()) {
      const auto it = chains.find(id);
      if (it == chains.end()) continue;
      growth = growth && !it->second.empty();
      if (longest == nullptr || it->second.size() > longest->size()) longest = &it->second;
    }
    for (NodeId id : churn.tracked()) {
      const auto it = chains.find(id);
      if (it == chains.end() || longest == nullptr) continue;
      const std::vector<ChainEntry>& chain = it->second;
      const bool is_prefix = std::equal(chain.begin(), chain.end(), longest->begin());
      if (!is_prefix) {
        prefix_ok = false;
        script_run.violations.push_back("node " + std::to_string(id) +
                                        "'s chain is not a prefix of the longest chain");
      }
    }
    if (wants(script, Expectation::kTermination)) {
      check(script_run, Expectation::kTermination, growth, "every correct chain grew");
    }
    if (wants(script, Expectation::kAgreement)) {
      check(script_run, Expectation::kAgreement, prefix_ok, "chains prefix-comparable");
    }
    if (wants(script, Expectation::kNoViolations)) {
      check(script_run, Expectation::kNoViolations, prefix_ok,
            script_run.violations.empty() ? "chain-prefix invariant clean"
                                          : script_run.violations.front());
    }
  }

  std::ostringstream summary;
  summary << to_string(script.protocol) << " n=" << script.config.n_correct << "+"
          << script.config.n_byzantine << " seed=" << script.config.seed
          << " rounds=" << script_run.rounds << " msgs=" << script_run.messages << " — "
          << (script_run.all_satisfied ? "OK" : "EXPECTATION FAILED");
  script_run.summary = summary.str();
  return run;
}

}  // namespace idonly
