// Control-plane framing between the shard coordinator and its workers.
//
// Each worker talks to the coordinator over one AF_UNIX stream socketpair.
// Control frames are `u32 LE payload length + u8 type + payload`; payloads
// use fixed-width little-endian scalars (ByteWriter/ByteReader below — the
// control plane is coordinator↔worker on one host, so the compactness of the
// codec varints buys nothing here). The DATA plane — the inter-shard message
// slabs themselves — rides inside kSlabs/kDeliver payloads in the
// shard-slab wire format (net/codec.hpp, kShardSlabMagic), i.e. exactly the
// bytes a UDP fan-out would carry.
//
// Round protocol (coordinator-driven; the worker is purely reactive):
//
//   coordinator → worker   kInit     script text + shard/shards + options
//   worker → coordinator   kHello    shard + local member count
//   per round (relay topology, ShardInit::mesh == false):
//     c → w  kStep         run membership churn + the round's first half
//     w → c  kSlabs        outbound shard slabs, one per destination shard
//     c → w  kDeliver      the slabs the other shards addressed to this one
//     w → c  kStatus       per local correct node: done flag
//   per round (mesh topology, ShardInit::mesh == true):
//     c → w  kStep         the worker runs the WHOLE round — it posts its
//                          slabs straight to its peers over the mesh
//                          socketpairs (net/codec.hpp shard slabs / beacons,
//                          u32 LE length-prefixed) and merges their replies
//     w → c  kStatus       per local correct node: done flag
//   c → w  kFinish         finalize
//   w → c  kResult         ShardResult (outputs/chains, metrics, trace rings)
//   w → c  kError          fatal worker-side failure (detail = message)
//
// In mesh mode kSlabs/kDeliver are never sent: the coordinator is a pure
// control plane (round pacing, early-exit policy, crash watchdog, merged
// counters) and the data plane is the worker↔worker mesh (dist/shard_mesh).
//
// recv_frame distinguishes timeout (wedged worker) from EOF (crashed
// worker) so the coordinator can report the difference.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "common/trace.hpp"
#include "common/types.hpp"
#include "common/value.hpp"
#include "core/total_order.hpp"

namespace idonly {

enum class ShardMsgType : std::uint8_t {
  kInit = 1,
  kHello = 2,
  kStep = 3,
  kSlabs = 4,
  kDeliver = 5,
  kStatus = 6,
  kFinish = 7,
  kResult = 8,
  kError = 9,
};

// ------------------------------------------------------------- framing --

/// Write one `length + type + payload` frame; retries EINTR/partial sends,
/// suppresses SIGPIPE. False on any unrecoverable send error.
[[nodiscard]] bool send_frame(int fd, ShardMsgType type, std::span<const std::byte> payload);

/// Write one frame whose payload is scattered across `chunks`, header and
/// payload gathered into (as few as possible) writev-style sendmsg calls —
/// the relay's kDeliver path sends the count header plus every slab without
/// first copying them into one contiguous payload. Same failure contract as
/// send_frame.
[[nodiscard]] bool send_frame_gather(int fd, ShardMsgType type,
                                     std::span<const std::span<const std::byte>> chunks);

enum class RecvStatus : std::uint8_t { kOk, kEof, kTimeout, kError };

/// Read one frame. `timeout_ms < 0` blocks indefinitely; otherwise the WHOLE
/// frame must arrive within the budget (a worker that stalls mid-frame is as
/// wedged as one that never writes). kEof = orderly close or reset (the peer
/// died); kTimeout = budget exhausted with the peer still alive.
[[nodiscard]] RecvStatus recv_frame(int fd, ShardMsgType& type, std::vector<std::byte>& payload,
                                    int timeout_ms);

// -------------------------------------------------------- serialization --

/// Append-only little-endian scalar writer for control payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  /// u64 length + raw bytes.
  void str(const std::string& v);
  void blob(std::span<const std::byte> v);

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() noexcept { return std::move(buf_); }

 private:
  std::vector<std::byte> buf_;
};

/// Bounds-checked reader over a control payload. A short or malformed read
/// latches `failed()` and every subsequent read returns zero/empty — check
/// failed() once after decoding instead of after every field.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> data) noexcept : data_(data) {}

  [[nodiscard]] std::uint8_t u8();
  [[nodiscard]] std::uint32_t u32();
  [[nodiscard]] std::uint64_t u64();
  [[nodiscard]] std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  [[nodiscard]] double f64();
  [[nodiscard]] std::string str();
  [[nodiscard]] std::vector<std::byte> blob();

  [[nodiscard]] bool failed() const noexcept { return failed_; }
  /// True when the payload was consumed exactly (no trailing garbage).
  [[nodiscard]] bool done() const noexcept { return !failed_ && pos_ == data_.size(); }

 private:
  [[nodiscard]] bool take(std::size_t n) noexcept;

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// ------------------------------------------------------ typed payloads --

/// kInit: everything a worker needs to reconstruct its slice of the run.
/// Shipping the script TEXT (not a path) keeps the worker independent of the
/// coordinator's filesystem view and pins both ends to one parse.
struct ShardInit {
  std::uint32_t shard = 0;
  std::uint32_t shards = 1;
  bool want_trace = false;
  /// Data plane topology: true = direct worker↔worker mesh (the worker owns
  /// one socketpair per peer shard and the coordinator never sees a slab),
  /// false = star relay through the coordinator (kSlabs/kDeliver).
  bool mesh = true;
  /// Test hook: > 0 makes the worker _exit(uncleanly) instead of executing
  /// that round — the coordinator must detect the death, not hang.
  Round crash_at_round = 0;
  std::string script_text;
};

[[nodiscard]] std::vector<std::byte> encode_init(const ShardInit& init);
[[nodiscard]] std::optional<ShardInit> decode_init(std::span<const std::byte> payload);

/// kStatus: done flags for the worker's local correct nodes this round.
struct ShardStatus {
  std::vector<std::pair<NodeId, bool>> done;
};

[[nodiscard]] std::vector<std::byte> encode_status(const ShardStatus& status);
[[nodiscard]] std::optional<ShardStatus> decode_status(std::span<const std::byte> payload);

/// kResult: one worker's final state, everything the coordinator merges.
struct ShardResult {
  Round rounds = 0;
  Metrics metrics;
  bool has_chaos = false;
  ChaosCounters chaos;
  /// Transport-observed faults (frames the worker failed to decode, slabs it
  /// had to reject) — exported as idonly_wire_faults_total by the merged
  /// exposition. All-zero in a healthy run, and that zero is the signal.
  FaultCounters wire_faults;
  struct Decision {
    NodeId id = 0;
    bool done = false;
    bool has_output = false;
    Value output;
  };
  std::vector<Decision> decisions;  ///< consensus: local correct nodes
  struct Chain {
    NodeId id = 0;
    std::vector<ChainEntry> chain;
  };
  std::vector<Chain> chains;  ///< totalorder: local correct nodes
  struct Ring {
    NodeId node = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t evicted = 0;
    std::vector<TraceRecord> records;
  };
  std::vector<Ring> rings;  ///< want_trace: the worker's per-node trace rings
};

[[nodiscard]] std::vector<std::byte> encode_result(const ShardResult& result);
[[nodiscard]] std::optional<ShardResult> decode_result(std::span<const std::byte> payload);

}  // namespace idonly
