// Classical approximate agreement (Dolev et al.) with KNOWN f.
//
// Baseline for experiment E4: one exchange round per iteration, discard
// exactly f smallest and f largest received values (f is known), output the
// midpoint of the rest. Comparing iterations-to-ε against the id-only
// variant (which trims ⌊n_v/3⌋ ≥ f per side) measures the paper's claim
// that the convergence rate is unchanged.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "net/process.hpp"

namespace idonly {

/// Pure rule: trim `f` per side and take the midpoint.
[[nodiscard]] std::optional<double> known_f_approx_step(std::vector<double> received,
                                                        std::size_t f);

class KnownFApproxProcess final : public Process {
 public:
  KnownFApproxProcess(NodeId self, double input, std::size_t f, int iterations = 1);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] const std::vector<double>& trajectory() const noexcept { return trajectory_; }

 private:
  double value_;
  std::size_t f_;
  int iterations_;
  int completed_ = 0;
  bool done_ = false;
  std::vector<double> trajectory_;
};

}  // namespace idonly
