#include "baselines/st_broadcast.hpp"

namespace idonly {

StBroadcastProcess::StBroadcastProcess(NodeId self, NodeId source, Value payload, std::size_t f)
    : Process(self), source_(source), payload_(payload), f_(f) {}

void StBroadcastProcess::on_round(RoundInfo round, std::span<const Message> inbox,
                                  std::vector<Outgoing>& out) {
  for (const Message& m : inbox) {
    if (m.kind == MsgKind::kEcho && m.subject == source_) echoes_.add(m.value, m.sender);
  }

  auto echo_msg = [this](const Value& v) {
    Message m;
    m.kind = MsgKind::kEcho;
    m.subject = source_;
    m.value = v;
    return m;
  };

  if (round.local == 1) {
    if (id() == source_) {
      Message m;
      m.kind = MsgKind::kPayload;
      m.subject = source_;
      m.value = payload_;
      broadcast(out, m);
    }
    // Known n: no `present` announcement needed.
    return;
  }
  if (round.local == 2) {
    for (const Message& m : inbox) {
      if (m.kind == MsgKind::kPayload && m.sender == source_ && m.subject == source_) {
        broadcast(out, echo_msg(m.value));
        break;
      }
    }
    return;
  }
  for (const auto& [payload, senders] : echoes_.all()) {
    if (accepted_payload_.has_value()) break;
    if (senders.size() >= f_ + 1) broadcast(out, echo_msg(payload));
    if (senders.size() >= 2 * f_ + 1) {
      accepted_payload_ = payload;
      accept_round_ = round.local;
    }
  }
}

}  // namespace idonly
