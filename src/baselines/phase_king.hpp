// Classical phase-king consensus (Berman–Garay style) with KNOWN n, f and a
// KNOWN roster of identifiers.
//
// Baseline for experiments E3/E9. Same phase skeleton as the paper's Alg. 3
// (which generalizes it), but with the classical constants: prefer at n−f
// matching inputs, adopt at f+1 prefers, strong-prefer at n−f prefers,
// decide at n−f strong-prefers; the coordinator of phase p is simply the
// p-th id of the known roster — the whole rotor machinery disappears when n,
// f and the roster are common knowledge, which is exactly the gap the paper
// closes.
//
// Phases are 4 rounds: input / prefer / strongprefer+king-opinion / resolve.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "common/value.hpp"
#include "core/participant_tracker.hpp"
#include "net/process.hpp"

namespace idonly {

class PhaseKingProcess final : public Process {
 public:
  /// `roster` must be identical (same order) at every node.
  PhaseKingProcess(NodeId self, Value input, std::vector<NodeId> roster, std::size_t f);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

  [[nodiscard]] bool done() const override { return output_.has_value(); }
  [[nodiscard]] std::optional<Value> output() const noexcept { return output_; }
  [[nodiscard]] std::optional<std::int64_t> decision_phase() const noexcept {
    return decision_phase_;
  }

 private:
  [[nodiscard]] QuorumCounter<Value> tally(std::span<const Message> inbox, MsgKind kind) const;

  Value x_v_;
  std::vector<NodeId> roster_;
  std::size_t n_;
  std::size_t f_;
  QuorumCounter<Value> strongprefer_tally_;
  std::optional<Value> output_;
  std::optional<std::int64_t> decision_phase_;
};

}  // namespace idonly
