#include "baselines/phase_king.hpp"

namespace idonly {

PhaseKingProcess::PhaseKingProcess(NodeId self, Value input, std::vector<NodeId> roster,
                                   std::size_t f)
    : Process(self), x_v_(input), roster_(std::move(roster)), n_(roster_.size()), f_(f) {}

QuorumCounter<Value> PhaseKingProcess::tally(std::span<const Message> inbox, MsgKind kind) const {
  QuorumCounter<Value> counts;
  for (const Message& m : inbox) {
    if (m.kind == kind) counts.add(m.value, m.sender);
  }
  return counts;
}

void PhaseKingProcess::on_round(RoundInfo round, std::span<const Message> inbox,
                                std::vector<Outgoing>& out) {
  if (output_.has_value()) return;

  const std::int64_t phase = (round.local - 1) / 4 + 1;
  const std::int64_t phase_round = (round.local - 1) % 4 + 1;
  const NodeId king = roster_[static_cast<std::size_t>(phase - 1) % roster_.size()];

  auto send = [&out](MsgKind kind, const Value& v) {
    Message m;
    m.kind = kind;
    m.value = v;
    broadcast(out, m);
  };

  switch (phase_round) {
    case 1:
      send(MsgKind::kInput, x_v_);
      break;
    case 2: {
      const auto best = tally(inbox, MsgKind::kInput).best();
      if (best.has_value() && best->second >= n_ - f_) send(MsgKind::kPrefer, best->first);
      break;
    }
    case 3: {
      const auto best = tally(inbox, MsgKind::kPrefer).best();
      if (best.has_value() && best->second >= f_ + 1) x_v_ = best->first;
      if (best.has_value() && best->second >= n_ - f_) send(MsgKind::kStrongPrefer, best->first);
      if (id() == king) send(MsgKind::kOpinion, x_v_);
      break;
    }
    case 4: {
      strongprefer_tally_ = tally(inbox, MsgKind::kStrongPrefer);
      const auto best = strongprefer_tally_.best();
      const std::size_t count = best.has_value() ? best->second : 0;
      if (count < f_ + 1) {
        for (const Message& m : inbox) {
          if (m.kind == MsgKind::kOpinion && m.sender == king) {
            x_v_ = m.value;
            break;
          }
        }
      }
      if (best.has_value() && count >= n_ - f_) {
        output_ = best->first;
        decision_phase_ = phase;
      }
      break;
    }
    default: break;
  }
}

}  // namespace idonly
