#include "baselines/known_f_approx.hpp"

#include <algorithm>

#include "common/flat_set.hpp"
#include "common/value.hpp"

namespace idonly {

std::optional<double> known_f_approx_step(std::vector<double> received, std::size_t f) {
  if (received.size() <= 2 * f) return std::nullopt;  // cannot trim safely
  std::sort(received.begin(), received.end());
  const double lo = received[f];
  const double hi = received[received.size() - 1 - f];
  return (lo + hi) / 2.0;
}

KnownFApproxProcess::KnownFApproxProcess(NodeId self, double input, std::size_t f, int iterations)
    : Process(self), value_(input), f_(f), iterations_(iterations) {}

void KnownFApproxProcess::on_round(RoundInfo round, std::span<const Message> inbox,
                                   std::vector<Outgoing>& out) {
  if (done_) return;
  if (round.local >= 2) {
    std::vector<double> received;
    FlatSet<NodeId> seen;
    for (const Message& m : inbox) {
      if (m.kind != MsgKind::kApproxValue || m.value.is_bot()) continue;
      if (!seen.insert(m.sender)) continue;
      received.push_back(m.value.as_real());
    }
    if (const auto next = known_f_approx_step(std::move(received), f_); next.has_value()) {
      value_ = *next;
    }
    trajectory_.push_back(value_);
    completed_ += 1;
    if (completed_ >= iterations_) {
      done_ = true;
      return;
    }
  }
  Message m;
  m.kind = MsgKind::kApproxValue;
  m.value = Value::real(value_);
  broadcast(out, m);
}

}  // namespace idonly
