// Classical Srikanth–Toueg reliable broadcast with KNOWN n and f.
//
// Baseline for experiment E1: identical message pattern to Alg. 1 except the
// relay/accept thresholds are the classical f+1 / 2f+1 constants (and no
// `present` round is needed — n is known, so the protocol does not have to
// manufacture the n_v ≥ g guarantee). Comparing this against the id-only
// algorithm quantifies the paper's §Discussion claim that "the message
// complexity of reliable broadcast is unaffected".
#pragma once

#include <optional>

#include "common/types.hpp"
#include "common/value.hpp"
#include "core/participant_tracker.hpp"
#include "net/process.hpp"

namespace idonly {

class StBroadcastProcess final : public Process {
 public:
  StBroadcastProcess(NodeId self, NodeId source, Value payload, std::size_t f);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

  [[nodiscard]] bool accepted() const noexcept { return accepted_payload_.has_value(); }
  [[nodiscard]] std::optional<Value> accepted_payload() const noexcept { return accepted_payload_; }
  [[nodiscard]] std::optional<Round> accept_round() const noexcept { return accept_round_; }

 private:
  NodeId source_;
  Value payload_;
  std::size_t f_;
  QuorumCounter<Value> echoes_;
  std::optional<Value> accepted_payload_;
  std::optional<Round> accept_round_;
};

}  // namespace idonly
