// Bounded-exhaustive adversary exploration ("model checker lite").
//
// The property sweeps and the randomized fuzzer sample the adversary's
// behaviour space; for tiny configurations we can do better and enumerate it
// EXHAUSTIVELY over a bounded horizon: the Byzantine node picks, each round,
// one action from a menu (a message and a recipient subset — per-recipient
// equivocation included), and every possible schedule is executed against a
// fresh simulation whose verdict callback checks the protocol's properties.
//
// A pass means: no adversary strategy expressible in the menu violates the
// property within the horizon — much stronger evidence than sampling, and
// exactly the kind of check a theory-paper reproduction owes its lemmas.
// (The menus are still a subspace of full Byzantine behaviour: exhaustive
// checking of the unrestricted space is exponential in message *content*
// too; the menus capture the decisive choices — which lie, to whom, when.)
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "adversary/strategies.hpp"
#include "common/types.hpp"
#include "net/process.hpp"

namespace idonly {

/// One adversary action: send `msg` to every id in `targets` (empty targets
/// = stay silent this round).
struct ByzAction {
  Message msg;
  std::vector<NodeId> targets;
};

/// One complete adversary behaviour over the horizon: schedule[r] is the
/// action taken in local round r+1.
using ByzSchedule = std::vector<ByzAction>;

/// Replays a fixed schedule inside the engine.
class ScriptedByzantine final : public ByzantineProcess {
 public:
  ScriptedByzantine(NodeId id, ByzSchedule schedule);
  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

 private:
  ByzSchedule schedule_;
};

/// Per-round action menus: menus[r] lists the actions available in local
/// round r+1. The exploration space is Π |menus[r]|.
struct ExplorationConfig {
  std::vector<std::vector<ByzAction>> menus;
  /// Safety valve: abort (and report) after this many schedules.
  std::uint64_t max_schedules = 10'000'000;
};

struct ExplorationResult {
  std::uint64_t schedules_explored = 0;
  std::uint64_t violations = 0;
  std::optional<ByzSchedule> first_violation;  ///< a witness, for debugging
  bool exhausted = true;                       ///< false if max_schedules hit
};

/// Runs `verdict` (true = properties hold) on every schedule in the menu
/// space.
[[nodiscard]] ExplorationResult explore_all(
    const ExplorationConfig& config, const std::function<bool(const ByzSchedule&)>& verdict);

/// Shrink a violating schedule: greedily replace each round's action with
/// the first action of that round's menu (conventionally silence) while the
/// verdict still fails, iterating to a fixpoint. The result is a minimal-ish
/// witness — the actual decisive messages of the attack.
[[nodiscard]] ByzSchedule shrink_witness(const ExplorationConfig& config, ByzSchedule witness,
                                         const std::function<bool(const ByzSchedule&)>& verdict);

/// Convenience: all non-empty subsets of `ids` plus the empty subset — the
/// recipient-choice dimension of a menu.
[[nodiscard]] std::vector<std::vector<NodeId>> all_subsets(const std::vector<NodeId>& ids);

/// Build a menu where each of `messages` may go to each subset of
/// `recipients` (plus the all-silent action, once).
[[nodiscard]] std::vector<ByzAction> menu_from(const std::vector<Message>& messages,
                                               const std::vector<NodeId>& recipients);

}  // namespace idonly
