#include "check/trace_diff.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <vector>

namespace idonly {

namespace {

/// One parsed link record in normalized form.
struct LinkRecord {
  Round round = 0;
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t seq = 0;
  std::string kind;
  std::int64_t extra = 0;

  [[nodiscard]] std::string normalized() const {
    std::ostringstream os;
    os << "r" << round << " " << from << "->" << to << " #" << seq << " " << kind;
    if (extra != 0) os << "+" << extra;
    return os.str();
  }

  friend bool operator==(const LinkRecord&, const LinkRecord&) = default;
};

bool record_less(const LinkRecord& a, const LinkRecord& b) noexcept {
  if (a.round != b.round) return a.round < b.round;
  if (a.from != b.from) return a.from < b.from;
  if (a.to != b.to) return a.to < b.to;
  if (a.seq != b.seq) return a.seq < b.seq;
  return a.kind < b.kind;
}

/// Extract the integer following `"key":` in a JSON object line. Tolerant
/// by design: these lines come from our own exporters, not arbitrary JSON.
std::optional<std::int64_t> extract_int(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  try {
    return std::stoll(line.substr(pos + needle.size()));
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<std::string> extract_string(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const auto start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(start, end - start);
}

/// Parse every link-family record out of a JSONL export (canonical or
/// full); other lines — the header, engine-local events — are skipped.
std::vector<LinkRecord> parse_link_records(const std::string& jsonl) {
  std::vector<LinkRecord> out;
  std::istringstream stream(jsonl);
  std::string line;
  while (std::getline(stream, line)) {
    const auto kind = extract_string(line, "kind");
    if (!kind.has_value() || kind->rfind("link_", 0) != 0) continue;
    LinkRecord rec;
    rec.kind = *kind;
    const auto round = extract_int(line, "round");
    const auto from = extract_int(line, "from");
    const auto to = extract_int(line, "to");
    if (!round.has_value() || !from.has_value() || !to.has_value()) continue;
    rec.round = *round;
    rec.from = static_cast<NodeId>(*from);
    rec.to = static_cast<NodeId>(*to);
    if (rec.from == rec.to) continue;  // loopback: never part of the contract
    // Full-export lines carry both the capture "seq" and the "link_seq";
    // canonical lines carry the link sequence as "seq".
    const auto link_seq = extract_int(line, "link_seq");
    const auto seq = link_seq.has_value() ? link_seq : extract_int(line, "seq");
    rec.seq = static_cast<std::uint64_t>(seq.value_or(0));
    rec.extra = extract_int(line, "extra").value_or(0);
    out.push_back(std::move(rec));
  }
  std::sort(out.begin(), out.end(), record_less);
  return out;
}

}  // namespace

std::string TraceDiffResult::to_string() const {
  std::ostringstream os;
  if (!diverged) {
    os << "traces identical (" << left_records << " canonical records)";
    return os.str();
  }
  os << "first divergence at record " << index << ": node=" << node << " round=" << round
     << " seq=" << seq << "\n  left : " << (left.empty() ? "<missing>" : left)
     << "\n  right: " << (right.empty() ? "<missing>" : right);
  return os.str();
}

TraceDiffResult diff_canonical_traces(const std::string& left_jsonl,
                                      const std::string& right_jsonl) {
  const std::vector<LinkRecord> left = parse_link_records(left_jsonl);
  const std::vector<LinkRecord> right = parse_link_records(right_jsonl);
  TraceDiffResult result;
  result.left_records = left.size();
  result.right_records = right.size();

  const std::size_t common = std::min(left.size(), right.size());
  for (std::size_t i = 0; i < common; ++i) {
    if (left[i] == right[i]) continue;
    // The earlier record (in canonical order) is where divergence enters.
    const LinkRecord& first = record_less(left[i], right[i]) ? left[i] : right[i];
    result.diverged = true;
    result.index = i;
    result.node = first.to;
    result.round = first.round;
    result.from = first.from;
    result.seq = first.seq;
    result.left = left[i].normalized();
    result.right = right[i].normalized();
    return result;
  }
  if (left.size() != right.size()) {
    const LinkRecord& first = left.size() > right.size() ? left[common] : right[common];
    result.diverged = true;
    result.index = common;
    result.node = first.to;
    result.round = first.round;
    result.from = first.from;
    result.seq = first.seq;
    result.left = left.size() > right.size() ? left[common].normalized() : "";
    result.right = right.size() > left.size() ? right[common].normalized() : "";
  }
  return result;
}

}  // namespace idonly
