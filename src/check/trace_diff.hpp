// Trace divergence diff: turn the chaos-determinism guarantee into a
// debugging workflow.
//
// Two runs of the same seed must produce byte-identical canonical link
// records (common/trace.hpp). When they do not, the interesting question is
// not "are they different" but "what is the FIRST divergent record": the
// earliest (round, from, to, seq) where the two executions took different
// chaos verdicts is where the bug (or the non-determinism) entered.
//
// diff_canonical_traces() accepts either export format — the canonical
// JSONL or the full JSONL (header and engine-local records are skipped, so
// a sync-engine flight recording can be compared directly against a
// runtime one). Records are re-sorted into canonical order before
// comparison, so trace concatenation order cannot produce false positives.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace idonly {

struct TraceDiffResult {
  bool diverged = false;
  /// Position of the first divergent record in the canonical order.
  std::size_t index = 0;
  // The first divergent record's identity (the receiver is the node whose
  // flight recorder holds the record).
  NodeId node = 0;
  Round round = 0;
  NodeId from = 0;
  std::uint64_t seq = 0;  ///< per-(round, from, to) link sequence
  /// The normalized records at the divergence ("" = that trace ran out).
  std::string left;
  std::string right;
  /// Link records recognized on each side (0+0 ⇒ nothing to compare).
  std::size_t left_records = 0;
  std::size_t right_records = 0;

  /// "traces identical (N records)" or "first divergence at ...".
  [[nodiscard]] std::string to_string() const;
};

/// Compare two traces' canonical link records; see file comment.
[[nodiscard]] TraceDiffResult diff_canonical_traces(const std::string& left_jsonl,
                                                    const std::string& right_jsonl);

}  // namespace idonly
