#include "check/explorer.hpp"

namespace idonly {

ScriptedByzantine::ScriptedByzantine(NodeId id, ByzSchedule schedule)
    : ByzantineProcess(id), schedule_(std::move(schedule)) {}

void ScriptedByzantine::on_round(RoundInfo round, std::span<const Message>,
                                 std::vector<Outgoing>& out) {
  const auto idx = static_cast<std::size_t>(round.local - 1);
  if (idx >= schedule_.size()) return;
  const ByzAction& action = schedule_[idx];
  for (NodeId target : action.targets) unicast(out, target, action.msg);
}

ExplorationResult explore_all(const ExplorationConfig& config,
                              const std::function<bool(const ByzSchedule&)>& verdict) {
  ExplorationResult result;
  const std::size_t rounds = config.menus.size();
  for (const auto& menu : config.menus) {
    if (menu.empty()) return result;  // empty menu ⇒ empty space
  }

  // Odometer enumeration over the product of the per-round menus.
  std::vector<std::size_t> index(rounds, 0);
  ByzSchedule schedule(rounds);
  while (true) {
    for (std::size_t r = 0; r < rounds; ++r) schedule[r] = config.menus[r][index[r]];
    result.schedules_explored += 1;
    if (!verdict(schedule)) {
      result.violations += 1;
      if (!result.first_violation.has_value()) result.first_violation = schedule;
    }
    if (result.schedules_explored >= config.max_schedules) {
      result.exhausted = false;
      return result;
    }
    // Increment the odometer.
    std::size_t r = 0;
    while (r < rounds) {
      index[r] += 1;
      if (index[r] < config.menus[r].size()) break;
      index[r] = 0;
      r += 1;
    }
    if (r == rounds) return result;  // wrapped — space exhausted
  }
}

ByzSchedule shrink_witness(const ExplorationConfig& config, ByzSchedule witness,
                           const std::function<bool(const ByzSchedule&)>& verdict) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t r = 0; r < witness.size() && r < config.menus.size(); ++r) {
      if (config.menus[r].empty()) continue;
      const ByzAction& neutral = config.menus[r].front();
      // Already neutral? (Compare by message + targets.)
      if (witness[r].msg == neutral.msg && witness[r].targets == neutral.targets) continue;
      ByzSchedule candidate = witness;
      candidate[r] = neutral;
      if (!verdict(candidate)) {  // still violating — keep the simpler one
        witness = std::move(candidate);
        changed = true;
      }
    }
  }
  return witness;
}

std::vector<std::vector<NodeId>> all_subsets(const std::vector<NodeId>& ids) {
  std::vector<std::vector<NodeId>> subsets;
  const std::size_t count = std::size_t{1} << ids.size();
  subsets.reserve(count);
  for (std::size_t mask = 0; mask < count; ++mask) {
    std::vector<NodeId> subset;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if ((mask >> i) & 1) subset.push_back(ids[i]);
    }
    subsets.push_back(std::move(subset));
  }
  return subsets;
}

std::vector<ByzAction> menu_from(const std::vector<Message>& messages,
                                 const std::vector<NodeId>& recipients) {
  std::vector<ByzAction> menu;
  menu.push_back(ByzAction{});  // silence
  for (const Message& msg : messages) {
    for (auto& subset : all_subsets(recipients)) {
      if (subset.empty()) continue;  // silence already included once
      menu.push_back(ByzAction{msg, subset});
    }
  }
  return menu;
}

}  // namespace idonly
