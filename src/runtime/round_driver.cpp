#include "runtime/round_driver.hpp"

#include <thread>

#include "net/codec.hpp"

namespace idonly {

RoundDriver::RoundDriver(std::unique_ptr<Process> process, std::unique_ptr<Transport> transport,
                         RoundDriverConfig config)
    : process_(std::move(process)), transport_(std::move(transport)), config_(config) {}

Round RoundDriver::run() {
  std::this_thread::sleep_until(config_.epoch);
  for (Round r = 1; r <= config_.max_rounds; ++r) {
    // Sort arrivals into per-round buffers by their round header. Views are
    // decoded in place — the shared frame buffer is never copied here.
    for (const FrameView& view : transport_->drain_views()) {
      std::size_t offset = 0;
      const auto header = get_varint(view.bytes, offset);
      if (!header.has_value()) {
        frames_dropped_ += 1;
        continue;
      }
      const auto msg = decode(view.bytes.subspan(offset));
      if (!msg.has_value()) {
        frames_dropped_ += 1;
        continue;
      }
      const auto sent_round = static_cast<Round>(*header);
      if (sent_round < r - 1) {
        frames_late_ += 1;  // synchrony violated for this frame
        continue;
      }
      buffered_[sent_round].push_back(*msg);
    }

    // This round's inbox: exactly the frames our peers sent in round r-1.
    std::vector<Message> inbox;
    if (auto it = buffered_.find(r - 1); it != buffered_.end()) {
      inbox = std::move(it->second);
      buffered_.erase(it);
    }

    std::vector<Outgoing> out;
    process_->on_round(RoundInfo{r, r}, inbox, out);
    rounds_executed_ = r;

    for (Outgoing& o : out) {
      o.msg.sender = process_->id();  // stamp our identity (see header note)
      // The runtime wire is a broadcast domain; engine-level unicast
      // degrades to broadcast + receiver-side relevance.
      Frame frame;
      put_varint(static_cast<std::uint64_t>(r), frame);
      encode(o.msg, frame);
      transport_->broadcast(frame);
    }

    if (process_->done()) return rounds_executed_;
    std::this_thread::sleep_until(config_.epoch + r * config_.round_duration);
  }
  return rounds_executed_;
}

}  // namespace idonly
