#include "runtime/round_driver.hpp"

#include <algorithm>
#include <thread>

#include "net/codec.hpp"

namespace idonly {

RoundDriver::RoundDriver(std::unique_ptr<Process> process, std::unique_ptr<Transport> transport,
                         RoundDriverConfig config)
    : process_(std::move(process)), transport_(std::move(transport)), config_(config) {
  current_duration_ms_.store(config_.round_duration.count(), std::memory_order_relaxed);
}

void RoundDriver::interruptible_sleep_until(std::chrono::steady_clock::time_point deadline) {
  constexpr auto kSlice = std::chrono::milliseconds(5);
  while (!stop_requested()) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    std::this_thread::sleep_for(std::min<std::chrono::steady_clock::duration>(
        kSlice, deadline - now));
  }
}

Round RoundDriver::run() {
  interruptible_sleep_until(config_.epoch);

  // The adaptive clock paces by an accumulated deadline so a grown duration
  // stretches only the rounds it covers; the fixed clock keeps the exact
  // epoch + r·D schedule (no accumulation drift).
  auto duration = config_.round_duration;
  auto deadline = config_.epoch;
  Round clean_streak = 0;
  TraceRecorder* const rec = config_.recorder.get();
  const NodeId self = process_->id();

  for (Round r = 1; r <= config_.max_rounds; ++r) {
    if (stop_requested()) return rounds_executed();
    heartbeat_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t late_before = frames_late_.load(std::memory_order_relaxed);

    // Sort arrivals into per-round buffers by their round header. Views are
    // decoded in place — the shared frame buffer is never copied here.
    // `route` handles one codec frame already stripped of its round tag; it
    // is shared by the slab and legacy paths below.
    const auto route = [&](Round sent_round, std::span<const std::byte> frame_bytes) {
      const auto msg = decode(frame_bytes);
      if (!msg.has_value()) {
        frames_dropped_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (sent_round < r - 1) {
        frames_late_.fetch_add(1, std::memory_order_relaxed);  // synchrony violated
        if (rec != nullptr) {
          rec->record(TraceRecord{.kind = TraceEventKind::kLateFrame,
                                  .node = self,
                                  .round = r,
                                  .seq = 0,
                                  .from = msg->sender,
                                  .to = self,
                                  .link_seq = 0,
                                  .extra = sent_round,
                                  .detail = {}});
        }
        return;
      }
      buffered_[sent_round].push_back(*msg);
    };
    for (const FrameView& view : transport_->drain_views()) {
      // Coalesced slab (one datagram per peer per round): magic byte + round
      // header + length-prefixed frames, sliced zero-copy. A legacy varint
      // header can also start with 0xAB, so slab detection requires the
      // structural parse to succeed — otherwise fall through to legacy.
      if (!view.bytes.empty() && static_cast<std::uint8_t>(view.bytes[0]) == kSlabMagic) {
        if (const auto slab = parse_slab(view.bytes)) {
          for (const auto frame : slab->frames) route(slab->round, frame);
          continue;
        }
      }
      // Legacy one-frame-per-datagram format: varint round + codec frame.
      std::size_t offset = 0;
      const auto header = get_varint(view.bytes, offset);
      if (!header.has_value()) {
        frames_dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      route(static_cast<Round>(*header), view.bytes.subspan(offset));
    }

    // This round's inbox: exactly the frames our peers sent in round r-1.
    std::vector<Message> inbox;
    if (auto it = buffered_.find(r - 1); it != buffered_.end()) {
      inbox = std::move(it->second);
      buffered_.erase(it);
    }
    if (rec != nullptr) {
      for (const Message& msg : inbox) rec->record_deliver(self, r, msg.sender);
    }

    std::vector<Outgoing> out;
    process_->on_round(RoundInfo{r, r}, inbox, out);
    rounds_executed_.store(r, std::memory_order_relaxed);

    // Coalesce the round's sends into ONE slab datagram per peer: the
    // runtime wire is a broadcast domain (engine-level unicast degrades to
    // broadcast + receiver-side relevance), so one broadcast() carries the
    // whole round — syscalls per round drop from |out| to 1.
    slab_.reset(r);
    for (Outgoing& o : out) {
      o.msg.sender = self;  // stamp our identity (see header note)
      slab_.add(o.msg);
      if (rec != nullptr) rec->record_send(self, r, o.to);
    }
    if (slab_.frame_count() > 0) transport_->broadcast(slab_.bytes());

    const std::uint64_t late_this_round =
        frames_late_.load(std::memory_order_relaxed) - late_before;
    frames_late_last_round_.store(late_this_round, std::memory_order_relaxed);

    if (process_->done()) return rounds_executed();

    if (!config_.adaptive) {
      interruptible_sleep_until(config_.epoch + r * config_.round_duration);
      continue;
    }

    // --- self-healing clock -------------------------------------------
    if (late_this_round >= config_.backoff_late_threshold) {
      const auto grown = std::min(
          std::chrono::milliseconds(static_cast<std::int64_t>(
              static_cast<double>(duration.count()) * config_.backoff_factor)),
          config_.max_round_duration);
      if (grown > duration) {
        duration = grown;
        backoffs_.fetch_add(1, std::memory_order_relaxed);
        if (rec != nullptr) {
          rec->record_clock(self, TraceEventKind::kClockBackoff, r, duration.count());
        }
      }
      clean_streak = 0;
    } else if (late_this_round == 0) {
      clean_streak += 1;
      if (clean_streak >= config_.shrink_after_clean_rounds &&
          duration > config_.round_duration) {
        duration = std::max(
            config_.round_duration,
            std::chrono::milliseconds(static_cast<std::int64_t>(
                static_cast<double>(duration.count()) / config_.backoff_factor)));
        shrinks_.fetch_add(1, std::memory_order_relaxed);
        if (rec != nullptr) {
          rec->record_clock(self, TraceEventKind::kClockShrink, r, duration.count());
        }
        clean_streak = 0;
      }
    } else {
      clean_streak = 0;
    }
    current_duration_ms_.store(duration.count(), std::memory_order_relaxed);

    deadline += duration;
    // Header-based resync: buffered traffic from rounds AHEAD of ours means
    // peers' clocks are already there and we are the laggard — skip the
    // sleep and catch up instead of letting every subsequent inbox be late.
    const bool peers_ahead = !buffered_.empty() && buffered_.rbegin()->first > r;
    if (peers_ahead) {
      resyncs_.fetch_add(1, std::memory_order_relaxed);
      if (rec != nullptr) {
        rec->record_clock(self, TraceEventKind::kClockResync, r, buffered_.rbegin()->first);
      }
    } else {
      interruptible_sleep_until(deadline);
    }
  }
  return rounds_executed();
}

}  // namespace idonly
