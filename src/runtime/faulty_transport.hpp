// Chaos decorator for any Transport: drops, duplicates, delays (holds until
// a later drain), or corrupts frames with configured probabilities. Used to
// test the runtime's behaviour when the wire misbehaves — corrupted frames
// must die in decode(), duplicated ones in the engine-level per-round dedup
// (or be harmless by protocol design), and delayed/lost ones consume the
// f-budget like Byzantine omissions.
#pragma once

#include <memory>
#include <mutex>

#include "common/rng.hpp"
#include "runtime/transport.hpp"

namespace idonly {

struct FaultModel {
  double drop = 0.0;       ///< probability a frame disappears
  double duplicate = 0.0;  ///< probability a frame is delivered twice
  double delay = 0.0;      ///< probability a frame is held one drain cycle
  double corrupt = 0.0;    ///< probability one byte is flipped
};

class FaultyTransport final : public Transport {
 public:
  /// Throws std::invalid_argument when any probability is outside [0, 1].
  FaultyTransport(std::unique_ptr<Transport> inner, FaultModel model, Rng rng);

  void broadcast(std::span<const std::byte> frame) override;
  [[nodiscard]] std::vector<FrameView> drain_views() override;

  [[nodiscard]] std::uint64_t frames_dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::uint64_t frames_corrupted() const noexcept { return corrupted_; }
  [[nodiscard]] std::uint64_t frames_duplicated() const noexcept { return duplicated_; }
  [[nodiscard]] std::uint64_t frames_delayed() const noexcept { return delayed_; }

 private:
  std::unique_ptr<Transport> inner_;
  FaultModel model_;
  std::mutex mutex_;
  Rng rng_;
  std::vector<FrameView> held_;  ///< delayed frames, released next drain
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  std::uint64_t duplicated_ = 0;
  std::uint64_t delayed_ = 0;
};

}  // namespace idonly
