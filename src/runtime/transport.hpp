// Transport abstraction for the deployment runtime.
//
// The simulators deliver Message structs; the runtime moves opaque FRAMES
// (codec-encoded messages) over a byte transport. A transport knows the
// addresses of the broadcast domain's endpoints — that sits BELOW the
// id-only abstraction line, like an Ethernet segment: the transport can
// reach "everyone on the wire" without the protocol layer ever learning how
// many participants exist or which ids are live.
//
// Trust note: the paper's model makes the *sender id* unforgeable. The
// simulator enforces this by stamping; a real deployment must enforce it
// cryptographically (per-sender signatures). The runtime ships without
// authentication — frames are trusted to carry the true sender — and the
// hook to add it is a Transport decorator; see DESIGN.md.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "net/mailbox.hpp"  // Frame, FrameRef, FrameView — the shared mailbox layer

namespace idonly {

class Transport {
 public:
  virtual ~Transport();

  /// Fire-and-forget to every endpoint on the wire (including self — the
  /// model's broadcast is self-inclusive).
  virtual void broadcast(std::span<const std::byte> frame) = 0;

  /// Fetch everything received since the last drain (order unspecified) as
  /// zero-copy views: each view shares ownership of a ref-counted frame, so
  /// a broadcast domain materialises one buffer no matter how many
  /// endpoints receive it, and decorators narrow views instead of copying.
  [[nodiscard]] virtual std::vector<FrameView> drain_views() = 0;

  /// Materialising convenience drain: copies each view's bytes into an
  /// owned Frame. Prefer drain_views() on hot paths.
  [[nodiscard]] std::vector<Frame> drain();
};

}  // namespace idonly
