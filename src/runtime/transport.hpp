// Transport abstraction for the deployment runtime.
//
// The simulators deliver Message structs; the runtime moves opaque FRAMES
// (codec-encoded messages) over a byte transport. A transport knows the
// addresses of the broadcast domain's endpoints — that sits BELOW the
// id-only abstraction line, like an Ethernet segment: the transport can
// reach "everyone on the wire" without the protocol layer ever learning how
// many participants exist or which ids are live.
//
// Trust note: the paper's model makes the *sender id* unforgeable. The
// simulator enforces this by stamping; a real deployment must enforce it
// cryptographically (per-sender signatures). The runtime ships without
// authentication — frames are trusted to carry the true sender — and the
// hook to add it is a Transport decorator; see DESIGN.md.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace idonly {

using Frame = std::vector<std::byte>;

class Transport {
 public:
  virtual ~Transport();

  /// Fire-and-forget to every endpoint on the wire (including self — the
  /// model's broadcast is self-inclusive).
  virtual void broadcast(std::span<const std::byte> frame) = 0;

  /// Fetch everything received since the last drain (order unspecified).
  [[nodiscard]] virtual std::vector<Frame> drain() = 0;
};

}  // namespace idonly
