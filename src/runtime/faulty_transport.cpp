#include "runtime/faulty_transport.hpp"

namespace idonly {

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner, FaultModel model, Rng rng)
    : inner_(std::move(inner)), model_(model), rng_(rng) {}

void FaultyTransport::broadcast(std::span<const std::byte> frame) {
  // Faults are applied on the SEND side so every receiver sees the same
  // mangled frame (wire-level corruption, not per-receiver Byzantine
  // behaviour — that is what the adversary library is for).
  std::scoped_lock lock(mutex_);
  if (rng_.chance(model_.drop)) {
    dropped_ += 1;
    return;
  }
  Frame copy(frame.begin(), frame.end());
  if (!copy.empty() && rng_.chance(model_.corrupt)) {
    const std::size_t pos = rng_.below(copy.size());
    copy[pos] ^= static_cast<std::byte>(1u << rng_.below(8));
    corrupted_ += 1;
  }
  inner_->broadcast(copy);
  if (rng_.chance(model_.duplicate)) inner_->broadcast(copy);
}

std::vector<FrameView> FaultyTransport::drain_views() {
  std::scoped_lock lock(mutex_);
  std::vector<FrameView> out = std::move(held_);
  held_.clear();
  for (FrameView& view : inner_->drain_views()) {
    if (rng_.chance(model_.delay)) {
      held_.push_back(std::move(view));
    } else {
      out.push_back(std::move(view));
    }
  }
  return out;
}

}  // namespace idonly
