#include "runtime/faulty_transport.hpp"

#include <stdexcept>

namespace idonly {

namespace {

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("FaultModel: ") + what +
                                " probability must be in [0, 1]");
  }
}

}  // namespace

FaultyTransport::FaultyTransport(std::unique_ptr<Transport> inner, FaultModel model, Rng rng)
    : inner_(std::move(inner)), model_(model), rng_(rng) {
  check_probability(model_.drop, "drop");
  check_probability(model_.duplicate, "duplicate");
  check_probability(model_.delay, "delay");
  check_probability(model_.corrupt, "corrupt");
}

void FaultyTransport::broadcast(std::span<const std::byte> frame) {
  // Faults are applied on the SEND side so every receiver sees the same
  // mangled frame (wire-level corruption, not per-receiver Byzantine
  // behaviour — that is what the adversary library is for).
  std::scoped_lock lock(mutex_);
  if (rng_.chance(model_.drop)) {
    dropped_ += 1;
    return;
  }
  Frame copy(frame.begin(), frame.end());
  if (!copy.empty() && rng_.chance(model_.corrupt)) {
    const std::size_t pos = rng_.below(copy.size());
    copy[pos] ^= static_cast<std::byte>(1u << rng_.below(8));
    corrupted_ += 1;
  }
  inner_->broadcast(copy);
  if (rng_.chance(model_.duplicate)) {
    inner_->broadcast(copy);
    duplicated_ += 1;
  }
}

std::vector<FrameView> FaultyTransport::drain_views() {
  std::scoped_lock lock(mutex_);
  std::vector<FrameView> out = std::move(held_);
  held_.clear();
  for (FrameView& view : inner_->drain_views()) {
    if (rng_.chance(model_.delay)) {
      delayed_ += 1;
      // A held view must stay valid across drain cycles, but the inner
      // transport only guarantees its bytes until the NEXT drain (a view
      // with no owner aliases a reusable receive buffer). Materialise such
      // views into an owned frame before holding them.
      if (view.owner == nullptr) {
        const FrameRef owned = make_frame_ref(view.bytes);
        view = FrameView{owned, std::span<const std::byte>(owned->data(), owned->size())};
      }
      held_.push_back(std::move(view));
    } else {
      out.push_back(std::move(view));
    }
  }
  return out;
}

}  // namespace idonly
