// UDP broadcast-domain transport (loopback-friendly).
//
// Each endpoint binds one UDP socket; `broadcast` fans the frame out to the
// configured peer ports (its own included — self-inclusive broadcast).
// Non-blocking receives; oversized datagrams are detected via MSG_TRUNC and
// counted (never delivered truncated), failed sends are counted — the
// accounting the codec's total decode() and the chaos soak harness expect
// from a hostile wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "runtime/transport.hpp"

namespace idonly {

class UdpTransport final : public Transport {
 public:
  /// Large enough for any UDP payload (max datagram is 65507 bytes), so the
  /// default never truncates; tests shrink it to exercise MSG_TRUNC.
  static constexpr std::size_t kDefaultRecvBufferSize = 65535;

  /// Binds 127.0.0.1:`port`. `peer_ports` lists every endpoint on the wire
  /// (this one included). `recv_buffer_size` bounds the largest datagram
  /// accepted whole; anything larger is counted as a truncation and dropped.
  /// Throws std::runtime_error on socket/bind failure.
  UdpTransport(std::uint16_t port, std::vector<std::uint16_t> peer_ports,
               std::size_t recv_buffer_size = kDefaultRecvBufferSize);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  void broadcast(std::span<const std::byte> frame) override;
  [[nodiscard]] std::vector<FrameView> drain_views() override;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Real-wire send accounting: slab_sends counts datagrams the kernel
  /// accepted in full, send_failures the ones it refused or shortened.
  [[nodiscard]] const FanoutCounters& fanout() const noexcept { return fanout_; }
  /// Receive-side fault accounting (truncations = MSG_TRUNC datagrams).
  [[nodiscard]] const FaultCounters& faults() const noexcept { return faults_; }

  /// Find `count` free loopback ports (best effort; binds and releases).
  [[nodiscard]] static std::vector<std::uint16_t> pick_free_ports(std::size_t count);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::uint16_t> peer_ports_;
  std::vector<std::byte> recv_buffer_;
  // Single-driver-thread counters (one RoundDriver owns a transport).
  FanoutCounters fanout_;
  FaultCounters faults_;
};

}  // namespace idonly
