// UDP broadcast-domain transport (loopback-friendly).
//
// Each endpoint binds one UDP socket; `broadcast` fans the frame out to the
// configured peer ports (its own included — self-inclusive broadcast).
// Non-blocking receives; oversized or failed datagrams are dropped, exactly
// the robustness the codec's total decode() expects from a hostile wire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/transport.hpp"

namespace idonly {

class UdpTransport final : public Transport {
 public:
  /// Binds 127.0.0.1:`port`. `peer_ports` lists every endpoint on the wire
  /// (this one included). Throws std::runtime_error on socket/bind failure.
  UdpTransport(std::uint16_t port, std::vector<std::uint16_t> peer_ports);
  ~UdpTransport() override;

  UdpTransport(const UdpTransport&) = delete;
  UdpTransport& operator=(const UdpTransport&) = delete;

  void broadcast(std::span<const std::byte> frame) override;
  [[nodiscard]] std::vector<FrameView> drain_views() override;

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Find `count` free loopback ports (best effort; binds and releases).
  [[nodiscard]] static std::vector<std::uint16_t> pick_free_ports(std::size_t count);

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::vector<std::uint16_t> peer_ports_;
};

}  // namespace idonly
