#include "runtime/chaos_transport.hpp"

#include "net/codec.hpp"

namespace idonly {

namespace {

/// A held view must survive the inner transport's buffer reuse: copy the
/// bytes into an owned ref when the view does not share ownership already.
FrameView materialize(FrameView view) {
  if (view.owner != nullptr) return view;
  const FrameRef owned = make_frame_ref(view.bytes);
  return FrameView{owned, std::span<const std::byte>(owned->data(), owned->size())};
}

}  // namespace

ChaosTransport::ChaosTransport(std::unique_ptr<Transport> inner,
                               std::shared_ptr<ChaosSchedule> chaos, NodeId self)
    : inner_(std::move(inner)), chaos_(std::move(chaos)), self_(self) {}

void ChaosTransport::broadcast(std::span<const std::byte> frame) {
  // Faults are receive-side (see header) — sends pass through untouched.
  inner_->broadcast(frame);
}

std::vector<FrameView> ChaosTransport::drain_views() {
  std::scoped_lock lock(mutex_);
  std::vector<FrameView> out;

  // Release delayed frames whose hold expired; one drain ≈ one round.
  std::vector<Held> still_held;
  for (Held& held : held_) {
    if (--held.remaining_drains <= 0) {
      out.push_back(std::move(held.view));
    } else {
      still_held.push_back(std::move(held));
    }
  }
  held_ = std::move(still_held);

  // Per-frame fault application on a LEGACY-format frame (varint round +
  // codec frame): the verdict key and seq accounting are per message, so
  // slabs are exploded below before reaching this point — keeping per-link
  // seq counters (and therefore whole fault traces) byte-identical to the
  // simulators, which decide per message.
  const auto apply = [&](FrameView view) {
    // Recover the link key from the frame: round header + codec sender.
    std::size_t offset = 0;
    const auto header = get_varint(view.bytes, offset);
    const auto msg = header.has_value() ? decode(view.bytes.subspan(offset)) : std::nullopt;
    if (!msg.has_value()) {
      out.push_back(std::move(view));  // unparseable — the driver drops it anyway
      return;
    }
    const auto round = static_cast<Round>(*header);
    const NodeId from = msg->sender;
    const std::uint64_t seq = seq_[{round, from}]++;
    const LinkEvent event{round, from, self_, seq};
    const FaultDecision verdict = chaos_->decide(event);
    if (recorder_ != nullptr) recorder_->record_link_verdict(event, verdict);
    if (verdict.drop) return;

    if (verdict.corrupt && view.bytes.size() > offset) {
      // Flip one payload byte past the round header in a private copy —
      // wire corruption that decode() (or the protocol) must survive.
      auto corrupted = std::make_shared<Frame>(view.bytes.begin(), view.bytes.end());
      const std::size_t pos = offset + verdict.entropy % (corrupted->size() - offset);
      (*corrupted)[pos] ^= static_cast<std::byte>(1u << ((verdict.entropy >> 8) % 8));
      view = FrameView{corrupted,
                       std::span<const std::byte>(corrupted->data(), corrupted->size())};
    }

    const int copies = verdict.duplicate ? 2 : 1;
    for (int i = 0; i < copies; ++i) {
      if (verdict.delay_rounds > 0) {
        held_.push_back(Held{materialize(view), verdict.delay_rounds});
      } else {
        out.push_back(view);
      }
    }
  };

  for (FrameView& view : inner_->drain_views()) {
    if (!view.bytes.empty() && static_cast<std::uint8_t>(view.bytes[0]) == kSlabMagic) {
      if (const auto slab = parse_slab(view.bytes)) {
        // Explode the slab into owned legacy frames in slab order so each
        // message gets its own verdict (see `apply` above).
        for (const auto frame : slab->frames) {
          Frame legacy;
          legacy.reserve(frame.size() + 10);
          put_varint(static_cast<std::uint64_t>(slab->round), legacy);
          legacy.insert(legacy.end(), frame.begin(), frame.end());
          apply(make_frame_view(std::make_shared<const Frame>(std::move(legacy))));
        }
        continue;
      }
    }
    apply(std::move(view));
  }
  return out;
}

std::size_t ChaosTransport::held_count() const {
  std::scoped_lock lock(mutex_);
  return held_.size();
}

}  // namespace idonly
