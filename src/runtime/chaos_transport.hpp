// ChaosSchedule decorator for the runtime's byte transports.
//
// Unlike FaultyTransport (an independent coin per frame, send-side), this
// decorator keys every fault off the shared deterministic schedule so a
// runtime run reproduces the exact fault trace of a simulator run. Faults
// are applied on the RECEIVE side: the decorator knows its own endpoint id
// (`self` = the link's `to`) and recovers the sender and sent round from the
// frame itself — the varint round header the RoundDriver prepends plus the
// codec sender field — so the LinkEvent{round, from, to, seq} it hands the
// schedule is identical to the one the simulators build for the same
// logical message. Frames that do not parse (no header / codec reject)
// pass through unfaulted; they are already dying in the driver's decode.
//
// Verdicts: drop ⇒ frame vanishes; delay of k rounds ⇒ the view is held for
// k drain cycles (the driver drains once per round); duplicate ⇒ the view is
// delivered twice this drain; corrupt ⇒ one payload byte (past the round
// header, chosen by the verdict's entropy) is flipped in a private copy.
// Held views are materialised — copied into an owned frame when their
// backing buffer is not ref-counted — so delaying across the inner
// transport's buffer reuse is safe.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "common/chaos.hpp"
#include "common/trace.hpp"
#include "runtime/transport.hpp"

namespace idonly {

class ChaosTransport final : public Transport {
 public:
  ChaosTransport(std::unique_ptr<Transport> inner, std::shared_ptr<ChaosSchedule> chaos,
                 NodeId self);

  void broadcast(std::span<const std::byte> frame) override;
  [[nodiscard]] std::vector<FrameView> drain_views() override;

  [[nodiscard]] NodeId self() const noexcept { return self_; }
  [[nodiscard]] const std::shared_ptr<ChaosSchedule>& schedule() const noexcept { return chaos_; }
  /// Frames currently held back by delay verdicts.
  [[nodiscard]] std::size_t held_count() const;

  /// Attach a flight recorder: every verdict this transport asks the
  /// schedule for is recorded as a canonical link record (node = self).
  void set_trace_recorder(std::shared_ptr<TraceRecorder> recorder) {
    std::scoped_lock lock(mutex_);
    recorder_ = std::move(recorder);
  }

 private:
  struct Held {
    FrameView view;
    Round remaining_drains = 0;
  };

  std::unique_ptr<Transport> inner_;
  std::shared_ptr<ChaosSchedule> chaos_;
  std::shared_ptr<TraceRecorder> recorder_;
  NodeId self_ = 0;
  mutable std::mutex mutex_;
  std::vector<Held> held_;
  // Per (sent-round, sender) sequence counters; `to` is always self_.
  std::map<std::pair<Round, NodeId>, std::uint64_t> seq_;
};

}  // namespace idonly
