#include "runtime/inmemory_transport.hpp"

namespace idonly {

void InMemoryTransport::broadcast(std::span<const std::byte> frame) { hub_->fan_out(frame); }

std::vector<FrameView> InMemoryTransport::drain_views() { return mailbox_.drain(); }

std::unique_ptr<InMemoryTransport> InMemoryHub::make_endpoint() {
  // Private constructor — can't use make_unique.
  auto endpoint = std::unique_ptr<InMemoryTransport>(new InMemoryTransport(this));
  std::scoped_lock lock(mutex_);
  endpoints_.push_back(endpoint.get());
  return endpoint;
}

void InMemoryHub::fan_out(std::span<const std::byte> frame) {
  // One shared buffer per broadcast; every endpoint gets a view (ref bump).
  const FrameView shared = make_frame_view(frame);
  std::scoped_lock lock(mutex_);
  fanout_.unique_payloads += 1;
  fanout_.deliveries += endpoints_.size();
  fanout_.bytes_delivered += static_cast<std::uint64_t>(frame.size()) * endpoints_.size();
  for (InMemoryTransport* endpoint : endpoints_) {
    endpoint->mailbox_.deposit(shared);
  }
}

FanoutCounters InMemoryHub::fanout() const {
  std::scoped_lock lock(mutex_);
  return fanout_;
}

}  // namespace idonly
