#include "runtime/inmemory_transport.hpp"

namespace idonly {

void InMemoryTransport::broadcast(std::span<const std::byte> frame) { hub_->fan_out(frame); }

std::vector<Frame> InMemoryTransport::drain() {
  std::scoped_lock lock(mutex_);
  std::vector<Frame> out;
  out.swap(mailbox_);
  return out;
}

void InMemoryTransport::deliver(Frame frame) {
  std::scoped_lock lock(mutex_);
  mailbox_.push_back(std::move(frame));
}

std::unique_ptr<InMemoryTransport> InMemoryHub::make_endpoint() {
  // Private constructor — can't use make_unique.
  auto endpoint = std::unique_ptr<InMemoryTransport>(new InMemoryTransport(this));
  std::scoped_lock lock(mutex_);
  endpoints_.push_back(endpoint.get());
  return endpoint;
}

void InMemoryHub::fan_out(std::span<const std::byte> frame) {
  std::scoped_lock lock(mutex_);
  for (InMemoryTransport* endpoint : endpoints_) {
    endpoint->deliver(Frame(frame.begin(), frame.end()));
  }
}

}  // namespace idonly
