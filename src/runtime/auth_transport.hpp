// Group-key frame authentication for the runtime.
//
// Appends a SipHash-2-4 tag (keyed with a shared GROUP key) to every
// outgoing frame and silently drops inbound frames whose tag does not
// verify. Threat model — stated precisely, because it matters:
//
//   * PROTECTS against non-members injecting or corrupting traffic on the
//     wire (the UDP spammer scenario): they lack the key, so their frames
//     die here, before the codec even runs.
//   * DOES NOT protect members from each other: a shared group key lets any
//     key holder tag any sender id, so a Byzantine MEMBER can still forge
//     identities at the wire level. The id-only model's unforgeable sender
//     ids need per-sender asymmetric signatures in a hostile deployment —
//     out of scope here; this decorator marks exactly where they plug in.
#pragma once

#include <memory>

#include "common/siphash.hpp"
#include "runtime/transport.hpp"

namespace idonly {

class AuthTransport final : public Transport {
 public:
  AuthTransport(std::unique_ptr<Transport> inner, SipHashKey group_key);

  void broadcast(std::span<const std::byte> frame) override;
  [[nodiscard]] std::vector<FrameView> drain_views() override;

  /// Inbound frames rejected for a missing/incorrect tag.
  [[nodiscard]] std::uint64_t frames_rejected() const noexcept { return rejected_; }

 private:
  std::unique_ptr<Transport> inner_;
  SipHashKey key_;
  std::uint64_t rejected_ = 0;
};

}  // namespace idonly
