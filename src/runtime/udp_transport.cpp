#include "runtime/udp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace idonly {

namespace {

sockaddr_in loopback_addr(std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

int make_bound_socket(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) throw std::runtime_error("socket() failed");
  const sockaddr_in addr = loopback_addr(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("bind() failed for port " + std::to_string(port));
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  // Generous buffers: a synchronous round can burst n frames at once.
  const int buf = 1 << 20;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &buf, sizeof(buf));
  return fd;
}

}  // namespace

UdpTransport::UdpTransport(std::uint16_t port, std::vector<std::uint16_t> peer_ports,
                           std::size_t recv_buffer_size)
    : fd_(make_bound_socket(port)),
      port_(port),
      peer_ports_(std::move(peer_ports)),
      recv_buffer_(recv_buffer_size) {}

UdpTransport::~UdpTransport() {
  if (fd_ >= 0) ::close(fd_);
}

void UdpTransport::broadcast(std::span<const std::byte> frame) {
  for (std::uint16_t peer : peer_ports_) {
    const sockaddr_in addr = loopback_addr(peer);
    while (true) {
      const ssize_t sent = ::sendto(fd_, frame.data(), frame.size(), 0,
                                    reinterpret_cast<const sockaddr*>(&addr), sizeof(addr));
      if (sent < 0 && errno == EINTR) continue;  // interrupted — retry this peer
      // Best effort beyond that: UDP may drop (ENOBUFS, full queues); the
      // protocols' quorum logic tolerates the resulting silence exactly like
      // a Byzantine omission (within f). But COUNT it, so soak runs can tell
      // kernel-side loss apart from injected chaos faults.
      if (sent == static_cast<ssize_t>(frame.size())) {
        fanout_.slab_sends += 1;
      } else {
        fanout_.send_failures += 1;
      }
      break;
    }
  }
}

std::vector<FrameView> UdpTransport::drain_views() {
  std::vector<FrameView> frames;
  while (true) {
    iovec iov{recv_buffer_.data(), recv_buffer_.size()};
    msghdr msg{};
    msg.msg_iov = &iov;
    msg.msg_iovlen = 1;
    const ssize_t got = ::recvmsg(fd_, &msg, 0);
    if (got < 0) {
      if (errno == EINTR) continue;  // interrupted — keep draining
      break;                         // EAGAIN/EWOULDBLOCK (or real error): drained
    }
    if ((msg.msg_flags & MSG_TRUNC) != 0) {
      // Datagram exceeded the buffer — the tail is gone, the prefix would
      // decode as garbage (or worse, as a shorter valid frame). Drop whole.
      faults_.truncations += 1;
      continue;
    }
    // Each datagram is its own buffer — no sharing to exploit on receive.
    auto owned = std::make_shared<const Frame>(recv_buffer_.data(), recv_buffer_.data() + got);
    frames.push_back(make_frame_view(std::move(owned)));
  }
  return frames;
}

std::vector<std::uint16_t> UdpTransport::pick_free_ports(std::size_t count) {
  std::vector<std::uint16_t> ports;
  std::vector<int> held;
  for (std::size_t i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_DGRAM, 0);
    if (fd < 0) break;
    sockaddr_in addr = loopback_addr(0);  // ephemeral
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      break;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports.push_back(ntohs(addr.sin_port));
    held.push_back(fd);  // hold until all picked so ports are distinct
  }
  for (int fd : held) ::close(fd);
  return ports;
}

}  // namespace idonly
