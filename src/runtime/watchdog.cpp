#include "runtime/watchdog.hpp"

namespace idonly {

DriverPool::DriverPool(WatchdogConfig config) : config_(config) {}

std::size_t DriverPool::add(DriverFactory factory) {
  Slot slot;
  slot.factory = std::move(factory);
  slot.driver = slot.factory();
  slots_.push_back(std::move(slot));
  return slots_.size() - 1;
}

void DriverPool::launch(Slot& slot) {
  slot.finished = std::make_shared<std::atomic<bool>>(false);
  slot.last_heartbeat = slot.driver->heartbeat();
  slot.last_progress = std::chrono::steady_clock::now();
  // The thread captures the raw driver pointer and its own finished flag —
  // the watchdog only swaps slot.driver AFTER joining this thread, so the
  // pointer outlives every dereference.
  RoundDriver* driver = slot.driver.get();
  auto finished = slot.finished;
  slot.thread = std::thread([driver, finished] {
    driver->run();
    finished->store(true, std::memory_order_release);
  });
}

void DriverPool::run() {
  for (Slot& slot : slots_) launch(slot);

  for (;;) {
    bool all_done = true;
    for (Slot& slot : slots_) {
      if (slot.finished->load(std::memory_order_acquire)) continue;
      all_done = false;
      const auto now = std::chrono::steady_clock::now();
      const std::uint64_t beat = slot.driver->heartbeat();
      if (beat != slot.last_heartbeat) {
        slot.last_heartbeat = beat;
        slot.last_progress = now;
        continue;
      }
      if (now - slot.last_progress < config_.stall_timeout) continue;
      if (slot.restarts >= config_.max_restarts_per_slot) {
        // Restart budget spent and wedged again: retire the slot so the
        // pool still terminates (the node is simply down from here on).
        slot.driver->request_stop();
        slot.thread.join();
        slot.finished->store(true, std::memory_order_release);
        continue;
      }
      // Wedged: stop, join, rebuild via the factory, rejoin as late node.
      slot.driver->request_stop();
      slot.thread.join();
      const NodeId wedged_id = slot.driver->process().id();
      const Round wedged_round = slot.driver->rounds_executed();
      slot.driver = slot.factory();
      slot.restarts += 1;
      restarts_total_.fetch_add(1, std::memory_order_relaxed);
      if (config_.recorder != nullptr) {
        config_.recorder->record_clock(wedged_id, TraceEventKind::kWatchdogRestart, wedged_round,
                                       static_cast<std::int64_t>(slot.restarts));
      }
      launch(slot);
    }
    if (all_done) break;
    std::this_thread::sleep_for(config_.poll_interval);
  }

  for (Slot& slot : slots_) {
    if (slot.thread.joinable()) slot.thread.join();
  }
}

}  // namespace idonly
