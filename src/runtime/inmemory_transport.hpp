// Thread-safe in-process broadcast domain: every endpoint's broadcast lands
// in every endpoint's mailbox (its own included). The runtime analogue of a
// LAN segment, used for multi-threaded runtime tests without sockets.
//
// Fan-out goes through the shared mailbox layer (net/mailbox.hpp): a
// broadcast materialises ONE ref-counted frame and each endpoint's
// FrameMailbox takes a view into it — n reference bumps, not n buffer
// copies. The hub's FanoutCounters make the sharing observable.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "common/metrics.hpp"
#include "runtime/transport.hpp"

namespace idonly {

class InMemoryHub;

class InMemoryTransport final : public Transport {
 public:
  void broadcast(std::span<const std::byte> frame) override;
  [[nodiscard]] std::vector<FrameView> drain_views() override;

 private:
  friend class InMemoryHub;
  explicit InMemoryTransport(InMemoryHub* hub) : hub_(hub) {}

  InMemoryHub* hub_;
  FrameMailbox mailbox_;
};

/// Owns the endpoints; outlive every transport handed out.
class InMemoryHub {
 public:
  /// Create a new endpoint on this wire.
  [[nodiscard]] std::unique_ptr<InMemoryTransport> make_endpoint();

  /// Fan-out accounting: unique frames broadcast, per-endpoint deliveries,
  /// and bytes as delivered (shared payloads counted once per receiver).
  [[nodiscard]] FanoutCounters fanout() const;

 private:
  friend class InMemoryTransport;
  void fan_out(std::span<const std::byte> frame);

  mutable std::mutex mutex_;
  std::vector<InMemoryTransport*> endpoints_;
  FanoutCounters fanout_;
};

}  // namespace idonly
