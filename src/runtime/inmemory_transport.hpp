// Thread-safe in-process broadcast domain: every endpoint's broadcast lands
// in every endpoint's mailbox (its own included). The runtime analogue of a
// LAN segment, used for multi-threaded runtime tests without sockets.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "runtime/transport.hpp"

namespace idonly {

class InMemoryHub;

class InMemoryTransport final : public Transport {
 public:
  void broadcast(std::span<const std::byte> frame) override;
  [[nodiscard]] std::vector<Frame> drain() override;

 private:
  friend class InMemoryHub;
  explicit InMemoryTransport(InMemoryHub* hub) : hub_(hub) {}
  void deliver(Frame frame);

  InMemoryHub* hub_;
  std::mutex mutex_;
  std::vector<Frame> mailbox_;
};

/// Owns the endpoints; outlive every transport handed out.
class InMemoryHub {
 public:
  /// Create a new endpoint on this wire.
  [[nodiscard]] std::unique_ptr<InMemoryTransport> make_endpoint();

 private:
  friend class InMemoryTransport;
  void fan_out(std::span<const std::byte> frame);

  std::mutex mutex_;
  std::vector<InMemoryTransport*> endpoints_;
};

}  // namespace idonly
