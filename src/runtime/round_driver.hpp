// Wall-clock round driver: runs one Process over a Transport in lock-step
// rounds paced by real time.
//
// Deployment of a synchronous protocol = agreeing on a round clock. All
// drivers share an `epoch` timestamp and a `round_duration`; round r spans
// [epoch + (r-1)·D, epoch + r·D). Every frame carries a ROUND HEADER; the
// receiver buffers by header and hands the process, in its round r, exactly
// the frames tagged r-1 — so scheduling jitter inside a slot can never smear
// one peer's round r+1 traffic into another's round r inbox. Frames arriving
// after their delivery round are dropped and counted (`frames_late()`): with
// D comfortably above latency + jitter that counter stays 0 and the runtime
// realizes the paper's synchronous model; the E6 experiments quantify what
// happens when it does not.
//
// ON THE WIRE the driver COALESCES: all of a round's outgoing messages go
// into one slab datagram (kSlabMagic + varint round + length-prefixed codec
// frames, see net/codec.hpp) and a single broadcast() ships it — syscalls
// per round drop from one-per-message to one-per-peer. Receive slices slabs
// into zero-copy frame subspans and still accepts the legacy
// one-frame-per-datagram format (varint round + codec frame) so mixed-build
// fleets interoperate; a datagram whose first byte happens to be the slab
// magic but fails the structural parse falls back to the legacy decoder.
//
// SELF-HEALING (config.adaptive): instead of treating a smeared clock as a
// terminal condition, the driver heals it. When one round sees
// `backoff_late_threshold` or more late frames, the round duration grows by
// `backoff_factor` (bounded by `max_round_duration`) — bounded exponential
// backoff, trading round rate for restored synchrony. After
// `shrink_after_clean_rounds` consecutive clean rounds it shrinks back
// toward the configured base. Re-synchronisation uses the round headers
// already on the wire: when drained frames carry headers AHEAD of the local
// round the driver is the laggard, so it skips its end-of-round sleep and
// catches up (counted in `resyncs()`). Invariant: current duration always
// stays within [round_duration, max_round_duration], and with no late
// frames the adaptive clock is byte-identical to the fixed one.
//
// The driver is also stoppable and observable for the watchdog
// (runtime/watchdog.hpp): `request_stop()` interrupts the end-of-round
// sleep (sliced, ≤5 ms latency) and `heartbeat()` ticks once per executed
// round so a wedged thread — e.g. sleeping toward a misconfigured epoch —
// is distinguishable from a slow one.
//
// Sender identity: frames carry the sender field. The driver stamps its own
// outgoing frames but — unlike the simulator — cannot police incoming ones
// without an authentication layer (see transport.hpp). Runtime tests include
// a forgery probe documenting this boundary.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <vector>

#include "common/trace.hpp"
#include "common/types.hpp"
#include "net/codec.hpp"
#include "net/process.hpp"
#include "runtime/transport.hpp"

namespace idonly {

struct RoundDriverConfig {
  std::chrono::steady_clock::time_point epoch;  ///< common round-0 boundary
  std::chrono::milliseconds round_duration{20};
  Round max_rounds = 100;

  // Self-healing round clock (off by default: the fixed schedule below is
  // the paper's model and what the existing runtime tests pin down).
  bool adaptive = false;
  /// Late frames within ONE round that trigger a duration growth.
  std::uint64_t backoff_late_threshold = 3;
  /// Multiplier applied on growth and divided out on shrink; > 1.
  double backoff_factor = 2.0;
  /// Upper bound for the grown duration (bounded backoff).
  std::chrono::milliseconds max_round_duration{200};
  /// Consecutive clean (zero-late) rounds before one shrink step.
  Round shrink_after_clean_rounds = 2;

  /// Optional flight recorder (common/trace.hpp): sends, deliveries, late
  /// frames, and every self-healing clock transition are captured. May be
  /// shared across drivers — the recorder is thread-safe.
  std::shared_ptr<TraceRecorder> recorder;
};

class RoundDriver {
 public:
  RoundDriver(std::unique_ptr<Process> process, std::unique_ptr<Transport> transport,
              RoundDriverConfig config);

  /// Blocks until the process reports done(), max_rounds elapse, or
  /// request_stop() is observed. Returns the number of rounds executed.
  /// Call from a dedicated thread.
  Round run();

  /// Ask a running driver to return at the next stop point (start of round
  /// or inside the sliced end-of-round sleep). Thread-safe, idempotent.
  void request_stop() noexcept { stop_requested_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_requested_.load(std::memory_order_relaxed);
  }

  /// Ticks once per executed round; a stuck value while the thread lives
  /// means the driver is wedged (watchdog criterion).
  [[nodiscard]] std::uint64_t heartbeat() const noexcept {
    return heartbeat_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Process& process() noexcept { return *process_; }
  // All counters below are written by the driver thread and routinely read
  // by other threads (watchdog, chaos soak pollers, benches) while run() is
  // live, so they are atomics — relaxed is enough, they are monotonic
  // statistics with no ordering contract.
  [[nodiscard]] Round rounds_executed() const noexcept {
    return rounds_executed_.load(std::memory_order_relaxed);
  }
  /// Malformed frames (bad header or codec reject).
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept {
    return frames_dropped_.load(std::memory_order_relaxed);
  }
  /// Frames that arrived after their delivery round — synchrony was violated.
  [[nodiscard]] std::uint64_t frames_late() const noexcept {
    return frames_late_.load(std::memory_order_relaxed);
  }
  /// Late frames observed in the most recently executed round (0 after a
  /// clean round — the "healed" signal the chaos soak asserts on).
  [[nodiscard]] std::uint64_t frames_late_last_round() const noexcept {
    return frames_late_last_round_.load(std::memory_order_relaxed);
  }

  // Recovery accounting (see ChaosCounters in common/metrics.hpp).
  [[nodiscard]] std::uint64_t backoffs() const noexcept {
    return backoffs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t shrinks() const noexcept {
    return shrinks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t resyncs() const noexcept {
    return resyncs_.load(std::memory_order_relaxed);
  }
  /// Current adapted duration (== config round_duration when not adaptive
  /// or fully healed). Thread-safe snapshot in milliseconds.
  [[nodiscard]] std::chrono::milliseconds current_round_duration() const noexcept {
    return std::chrono::milliseconds(current_duration_ms_.load(std::memory_order_relaxed));
  }

 private:
  /// Sleep toward `deadline` in ≤5 ms slices, returning early on stop.
  void interruptible_sleep_until(std::chrono::steady_clock::time_point deadline);

  std::unique_ptr<Process> process_;
  std::unique_ptr<Transport> transport_;
  RoundDriverConfig config_;
  std::map<Round, std::vector<Message>> buffered_;  // by sender round header
  SlabWriter slab_;  // reused send buffer: one coalesced datagram per round
  std::atomic<Round> rounds_executed_{0};
  std::atomic<std::uint64_t> frames_dropped_{0};
  std::atomic<std::uint64_t> frames_late_{0};
  std::atomic<std::uint64_t> backoffs_{0};
  std::atomic<std::uint64_t> shrinks_{0};
  std::atomic<std::uint64_t> resyncs_{0};
  std::atomic<std::uint64_t> frames_late_last_round_{0};
  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> heartbeat_{0};
  std::atomic<std::int64_t> current_duration_ms_{0};
};

}  // namespace idonly
