// Wall-clock round driver: runs one Process over a Transport in lock-step
// rounds paced by real time.
//
// Deployment of a synchronous protocol = agreeing on a round clock. All
// drivers share an `epoch` timestamp and a `round_duration`; round r spans
// [epoch + (r-1)·D, epoch + r·D). Every outgoing frame carries a ROUND
// HEADER (varint r prepended to the codec frame); the receiver buffers by
// header and hands the process, in its round r, exactly the frames tagged
// r-1 — so scheduling jitter inside a slot can never smear one peer's round
// r+1 traffic into another's round r inbox. Frames arriving after their
// delivery round are dropped and counted (`frames_late()`): with D
// comfortably above latency + jitter that counter stays 0 and the runtime
// realizes the paper's synchronous model; the E6 experiments quantify what
// happens when it does not.
//
// Sender identity: frames carry the sender field. The driver stamps its own
// outgoing frames but — unlike the simulator — cannot police incoming ones
// without an authentication layer (see transport.hpp). Runtime tests include
// a forgery probe documenting this boundary.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <vector>

#include "common/types.hpp"
#include "net/process.hpp"
#include "runtime/transport.hpp"

namespace idonly {

struct RoundDriverConfig {
  std::chrono::steady_clock::time_point epoch;  ///< common round-0 boundary
  std::chrono::milliseconds round_duration{20};
  Round max_rounds = 100;
};

class RoundDriver {
 public:
  RoundDriver(std::unique_ptr<Process> process, std::unique_ptr<Transport> transport,
              RoundDriverConfig config);

  /// Blocks until the process reports done() or max_rounds elapse. Returns
  /// the number of rounds executed. Call from a dedicated thread.
  Round run();

  [[nodiscard]] Process& process() noexcept { return *process_; }
  [[nodiscard]] Round rounds_executed() const noexcept { return rounds_executed_; }
  /// Malformed frames (bad header or codec reject).
  [[nodiscard]] std::uint64_t frames_dropped() const noexcept { return frames_dropped_; }
  /// Frames that arrived after their delivery round — synchrony was violated.
  [[nodiscard]] std::uint64_t frames_late() const noexcept { return frames_late_; }

 private:
  std::unique_ptr<Process> process_;
  std::unique_ptr<Transport> transport_;
  RoundDriverConfig config_;
  std::map<Round, std::vector<Message>> buffered_;  // by sender round header
  Round rounds_executed_ = 0;
  std::uint64_t frames_dropped_ = 0;
  std::uint64_t frames_late_ = 0;
};

}  // namespace idonly
