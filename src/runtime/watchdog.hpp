// Watchdog-supervised pool of RoundDriver threads.
//
// A deployment runs one RoundDriver thread per local process. A thread can
// wedge — a misconfigured epoch far in the future, a transport that never
// returns, an OS-level stall — and the paper's model already tells us the
// remedy: the id-only protocols explicitly tolerate a node that announces
// itself late, so a wedged process can simply be killed and RELAUNCHED as a
// late joiner instead of taking the whole run down.
//
// The pool launches every registered driver, then polls heartbeats (one
// tick per executed round). When a driver's heartbeat stalls for
// `stall_timeout` while its thread is still live, the watchdog stops it
// (RoundDriver::request_stop — the sliced sleep observes it within ~5 ms),
// joins the thread, builds a FRESH driver via the slot's factory, and
// relaunches. The factory decides what rejoining means: typically a new
// process instance (losing in-flight state, like a crashed host) on a new
// transport endpoint, with an epoch that drops it into the current round.
//
// `stall_timeout` must comfortably exceed the slowest legitimate round —
// with the adaptive clock that is `max_round_duration` — or healthy slow
// drivers get recycled.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>

#include "common/trace.hpp"
#include "runtime/round_driver.hpp"

namespace idonly {

struct WatchdogConfig {
  std::chrono::milliseconds poll_interval{5};
  /// Heartbeat silence after which a live thread counts as wedged.
  std::chrono::milliseconds stall_timeout{500};
  /// Restart budget per slot; a slot that wedges again after spending it is
  /// stopped and retired (the node stays down — no unbounded relaunch
  /// loops, and the pool still terminates).
  std::size_t max_restarts_per_slot = 1;
  /// Optional flight recorder: every watchdog restart is captured as a
  /// kWatchdogRestart record on the restarted node.
  std::shared_ptr<TraceRecorder> recorder;
};

class DriverPool {
 public:
  /// Invoked for the initial launch and again for every watchdog restart.
  using DriverFactory = std::function<std::unique_ptr<RoundDriver>()>;

  explicit DriverPool(WatchdogConfig config = {});

  /// Register a driver slot before run(). Returns the slot index.
  std::size_t add(DriverFactory factory);

  /// Launch all drivers plus the watchdog loop (runs on the calling
  /// thread); blocks until every driver finished. Restarted drivers count —
  /// run() returns only when the final incarnation of each slot is done.
  void run();

  /// Thread-safe: written by the watchdog loop, routinely polled from other
  /// threads while run() is live.
  [[nodiscard]] std::uint64_t restarts() const noexcept {
    return restarts_total_.load(std::memory_order_relaxed);
  }
  /// The slot's current (post-run: final) driver. Valid between add() and
  /// destruction; during run() the pointer may be swapped by a restart, so
  /// only poke it from the watchdog thread or after run() returns.
  [[nodiscard]] RoundDriver& driver(std::size_t slot) { return *slots_.at(slot).driver; }
  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

 private:
  struct Slot {
    DriverFactory factory;
    std::unique_ptr<RoundDriver> driver;
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> finished;  // owned per incarnation
    std::uint64_t last_heartbeat = 0;
    std::chrono::steady_clock::time_point last_progress{};
    std::size_t restarts = 0;
  };

  void launch(Slot& slot);

  WatchdogConfig config_;
  std::deque<Slot> slots_;  // deque: slots hold threads, addresses must be stable
  std::atomic<std::uint64_t> restarts_total_{0};
};

}  // namespace idonly
