#include "runtime/transport.hpp"

namespace idonly {

Transport::~Transport() = default;

}  // namespace idonly
