#include "runtime/transport.hpp"

namespace idonly {

Transport::~Transport() = default;

std::vector<Frame> Transport::drain() {
  std::vector<Frame> out;
  for (const FrameView& view : drain_views()) {
    out.emplace_back(view.bytes.begin(), view.bytes.end());
  }
  return out;
}

}  // namespace idonly
