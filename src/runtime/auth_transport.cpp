#include "runtime/auth_transport.hpp"

namespace idonly {

namespace {
constexpr std::size_t kTagBytes = 8;
}

AuthTransport::AuthTransport(std::unique_ptr<Transport> inner, SipHashKey group_key)
    : inner_(std::move(inner)), key_(group_key) {}

void AuthTransport::broadcast(std::span<const std::byte> frame) {
  Frame tagged(frame.begin(), frame.end());
  const std::uint64_t tag = siphash24(frame, key_);
  for (std::size_t i = 0; i < kTagBytes; ++i) {
    tagged.push_back(static_cast<std::byte>((tag >> (8 * i)) & 0xFF));
  }
  inner_->broadcast(tagged);
}

std::vector<FrameView> AuthTransport::drain_views() {
  std::vector<FrameView> out;
  for (FrameView& view : inner_->drain_views()) {
    if (view.bytes.size() < kTagBytes) {
      rejected_ += 1;
      continue;
    }
    const std::size_t body = view.bytes.size() - kTagBytes;
    std::uint64_t tag = 0;
    for (std::size_t i = 0; i < kTagBytes; ++i) {
      tag |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(view.bytes[body + i])) << (8 * i);
    }
    if (siphash24(view.bytes.first(body), key_) != tag) {
      rejected_ += 1;
      continue;
    }
    // Strip the tag by narrowing the view — the frame buffer stays shared.
    out.push_back(FrameView{std::move(view.owner), view.bytes.first(body)});
  }
  return out;
}

}  // namespace idonly
