// Early-terminating consensus in the id-only model (paper §Consensus, Alg. 3).
//
// Every correct node holds a real-valued input; all correct nodes must
// output a common value that was some correct node's input (validity +
// agreement), within O(f) rounds, without knowing n or f.
//
// Structure: two rotor-coordinator initialization rounds, then 5-round
// phases:
//   P1  broadcast input(x_v)
//   P2  some x reached 2n_v/3 inputs → broadcast prefer(x)
//   P3  x reached n_v/3 prefers → adopt x; 2n_v/3 → broadcast strongprefer(x)
//   P4  one rotor-coordinator step (coordinator broadcasts opinion x_v);
//       strongprefer counts (sent in P3) are collected here
//   P5  opinion c arrives; fewer than n_v/3 strongprefers → x_v = c;
//       2n_v/3 strongprefer(x) → terminate with output x
//
// Membership discipline (Alg. 3 caption): n_v is frozen after
// initialization; messages from unknown ids are discarded; and if a member
// goes COMPLETELY silent, v substitutes *its own* previous-round message for
// the missing one — this is what makes already-terminated correct nodes
// harmless to stragglers.
//
// Disambiguation (found by the bounded-exhaustive checker, see DESIGN.md):
// the caption's substitution must apply only to members that sent *nothing*,
// not to members that merely lacked a quorum this round — otherwise a single
// node can manufacture a 2n_v/3 quorum out of its own substituted copies and
// violate agreement. We therefore use the explicit `nopreference` /
// `nostrongpreference` markers the paper itself introduces for Alg. 5: a
// node without a quorum says so, and substitution only ever fills in for
// terminated/crashed members.
#pragma once

#include <optional>

#include "common/observer.hpp"
#include "common/types.hpp"
#include "common/value.hpp"
#include "core/participant_tracker.hpp"
#include "core/rotor_coordinator.hpp"
#include "net/process.hpp"

namespace idonly {

class ConsensusProcess final : public Process {
 public:
  ConsensusProcess(NodeId self, Value input);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

  [[nodiscard]] bool done() const override { return output_.has_value(); }
  [[nodiscard]] std::optional<Value> output() const noexcept { return output_; }
  /// Phase in which the node terminated (1-based), for the round-complexity
  /// experiments.
  [[nodiscard]] std::optional<std::int64_t> decision_phase() const noexcept {
    return decision_phase_;
  }
  [[nodiscard]] std::size_t n_v() const noexcept { return membership_.n_v(); }
  [[nodiscard]] Value current_opinion() const noexcept { return x_v_; }

  /// Non-owning; must outlive the process. Receives kOpinionAdopted and
  /// kDecided events.
  void set_observer(ProtocolObserver* observer) noexcept { observer_ = observer; }

 private:
  /// Count `kind` messages from members in this inbox. Members that sent
  /// `heard_marker` instead are considered heard (no substitution); members
  /// that sent neither get this node's own previous-round message of the
  /// kind substituted. Returns per-value distinct-member counts.
  [[nodiscard]] QuorumCounter<Value> count_phase_messages(
      std::span<const Message> inbox, MsgKind kind,
      std::optional<MsgKind> heard_marker) const;

  Value x_v_;
  RotorCore rotor_;
  ParticipantTracker membership_;  // frozen after initialization
  bool membership_frozen_ = false;

  // What this node itself sent in the previous round, per opinion-bearing
  // kind — the substitution source. Reset as the phase advances.
  std::optional<Value> my_last_input_;
  std::optional<Value> my_last_prefer_;
  std::optional<Value> my_last_strongprefer_;

  // Strongprefer tally collected in P4 (messages were sent in P3), consumed
  // in P5.
  QuorumCounter<Value> strongprefer_tally_;
  std::optional<NodeId> phase_coordinator_;  // selected in P4 of this phase

  std::optional<Value> output_;
  std::optional<std::int64_t> decision_phase_;
  ProtocolObserver* observer_ = nullptr;
};

}  // namespace idonly
