#include "core/terminating_rb.hpp"

namespace idonly {

TerminatingRbProcess::TerminatingRbProcess(NodeId self, NodeId source, Value payload)
    : Process(self), source_(source), payload_(payload) {}

bool TerminatingRbProcess::done() const { return consensus_ != nullptr && consensus_->done(); }

std::optional<Value> TerminatingRbProcess::output() const {
  return consensus_ != nullptr ? consensus_->output() : std::nullopt;
}

void TerminatingRbProcess::on_round(RoundInfo round, std::span<const Message> inbox,
                                    std::vector<Outgoing>& out) {
  if (round.local == 1) {
    if (id() == source_) {
      Message m;
      m.kind = MsgKind::kPayload;
      m.subject = source_;
      m.value = payload_;
      broadcast(out, m);
    } else {
      broadcast(out, Message{.kind = MsgKind::kPresent});
    }
    return;
  }
  if (consensus_ == nullptr) {
    // Round 2: fix the consensus input from what (if anything) the source
    // sent us directly, then run Alg. 3 with a one-round offset.
    Value x = Value::bot();
    for (const Message& m : inbox) {
      if (m.kind == MsgKind::kPayload && m.sender == source_ && m.subject == source_) {
        x = m.value;
        break;
      }
    }
    consensus_ = std::make_unique<ConsensusProcess>(id(), x);
  }
  RoundInfo shifted{round.global, round.local - 1};
  consensus_->on_round(shifted, inbox, out);
}

}  // namespace idonly
