#include "core/consensus.hpp"

#include "common/thresholds.hpp"

namespace idonly {

namespace {
Message opinion_msg(MsgKind kind, const Value& v) {
  Message m;
  m.kind = kind;
  m.value = v;
  return m;
}
}  // namespace

ConsensusProcess::ConsensusProcess(NodeId self, Value input)
    : Process(self), x_v_(input), rotor_(self) {}

QuorumCounter<Value> ConsensusProcess::count_phase_messages(
    std::span<const Message> inbox, MsgKind kind, std::optional<MsgKind> heard_marker) const {
  QuorumCounter<Value> tally;
  FlatSet<NodeId> heard;  // inbox senders arrive ascending → append fast path
  for (const Message& m : inbox) {
    if (!membership_.knows(m.sender)) continue;  // discard non-members (Alg. 3 caption)
    if (m.kind == kind) {
      tally.add(m.value, m.sender);
      heard.insert(m.sender);
    } else if (heard_marker.has_value() && m.kind == *heard_marker) {
      heard.insert(m.sender);  // explicit "no quorum" — do NOT substitute
    }
  }
  // Substitution: every member that stayed COMPLETELY silent (terminated or
  // crashed — live nodes always send the kind or its marker) is assumed to
  // have sent the same message v itself sent in the previous round (if v
  // sent one of this kind).
  const std::optional<Value>* mine = nullptr;
  switch (kind) {
    case MsgKind::kInput: mine = &my_last_input_; break;
    case MsgKind::kPrefer: mine = &my_last_prefer_; break;
    case MsgKind::kStrongPrefer: mine = &my_last_strongprefer_; break;
    default: return tally;
  }
  if (mine->has_value()) {
    for (NodeId member : membership_.ids()) {
      if (!heard.contains(member)) tally.add(**mine, member);
    }
  }
  return tally;
}

void ConsensusProcess::on_round(RoundInfo round, std::span<const Message> inbox,
                                std::vector<Outgoing>& out) {
  if (output_.has_value()) return;  // terminated — stay silent

  rotor_.absorb(inbox);
  if (!membership_frozen_) membership_.note(inbox);

  std::vector<Message> msgs;

  // Rounds 1–2: rotor-coordinator initialization; everyone transmits, which
  // is what seeds every node's membership view.
  if (round.local == 1) {
    rotor_.round1(msgs);
    for (Message& m : msgs) broadcast(out, std::move(m));
    return;
  }
  if (round.local == 2) {
    rotor_.round2(inbox, msgs);
    for (Message& m : msgs) broadcast(out, std::move(m));
    return;
  }

  // Round 3 starts phase 1; membership is frozen once the full set of
  // initialization-round senders has been observed (round-2 echoes arrive
  // in round 3's inbox).
  if (!membership_frozen_) membership_frozen_ = true;

  const std::size_t n_v = membership_.n_v();
  const std::int64_t phase = (round.local - 3) / 5 + 1;
  const std::int64_t phase_round = (round.local - 3) % 5 + 1;

  switch (phase_round) {
    case 1: {  // P1: broadcast input
      broadcast(out, opinion_msg(MsgKind::kInput, x_v_));
      my_last_input_ = x_v_;
      my_last_prefer_.reset();
      my_last_strongprefer_.reset();
      strongprefer_tally_.clear();
      phase_coordinator_.reset();
      break;
    }
    case 2: {  // P2: 2n_v/3 input(x) → prefer(x), else say "no preference"
      const auto tally = count_phase_messages(inbox, MsgKind::kInput, std::nullopt);
      const auto best = tally.best();
      if (best.has_value() && at_least_two_thirds(best->second, n_v)) {
        broadcast(out, opinion_msg(MsgKind::kPrefer, best->first));
        my_last_prefer_ = best->first;
      } else {
        broadcast(out, opinion_msg(MsgKind::kNoPreference, Value::bot()));
      }
      my_last_input_.reset();
      break;
    }
    case 3: {  // P3: n_v/3 prefer → adopt; 2n_v/3 prefer → strongprefer
      const auto tally = count_phase_messages(inbox, MsgKind::kPrefer, MsgKind::kNoPreference);
      const auto best = tally.best();
      if (best.has_value() && at_least_one_third(best->second, n_v)) {
        if (observer_ != nullptr && !(x_v_ == best->first)) {
          observer_->on_event({ProtocolEvent::Type::kOpinionAdopted, id(), round.local,
                               best->first, 0, phase});
        }
        x_v_ = best->first;
      }
      if (best.has_value() && at_least_two_thirds(best->second, n_v)) {
        broadcast(out, opinion_msg(MsgKind::kStrongPrefer, best->first));
        my_last_strongprefer_ = best->first;
      } else {
        broadcast(out, opinion_msg(MsgKind::kNoStrongPref, Value::bot()));
      }
      my_last_prefer_.reset();
      break;
    }
    case 4: {  // P4: rotor step (+ collect strongprefer counts sent in P3)
      strongprefer_tally_ =
          count_phase_messages(inbox, MsgKind::kStrongPrefer, MsgKind::kNoStrongPref);
      my_last_strongprefer_.reset();
      auto result = rotor_.step(n_v, phase - 1);
      phase_coordinator_ = result.coordinator;
      msgs = std::move(result.relay);
      // Embedded rotor never terminates on re-selection; the consensus
      // termination rule owns the exit.
      if (result.coordinator == id()) {
        msgs.push_back(opinion_msg(MsgKind::kOpinion, x_v_));
      }
      for (Message& m : msgs) broadcast(out, std::move(m));
      break;
    }
    case 5: {  // P5: resolve via coordinator or terminate
      std::optional<Value> coordinator_opinion;
      if (phase_coordinator_.has_value()) {
        for (const Message& m : inbox) {
          if (m.kind == MsgKind::kOpinion && m.sender == *phase_coordinator_) {
            coordinator_opinion = m.value;
            break;
          }
        }
      }
      const auto best = strongprefer_tally_.best();
      const std::size_t best_count = best.has_value() ? best->second : 0;
      if (less_than_one_third(best_count, n_v)) {
        // No strong preference anywhere near quorum — defer to the
        // coordinator. A silent/fake coordinator yields no opinion; keeping
        // x_v then is equivalent to a Byzantine coordinator echoing x_v.
        if (coordinator_opinion.has_value()) {
          if (observer_ != nullptr && !(x_v_ == *coordinator_opinion)) {
            observer_->on_event({ProtocolEvent::Type::kOpinionAdopted, id(), round.local,
                                 *coordinator_opinion, phase_coordinator_.value_or(0), phase});
          }
          x_v_ = *coordinator_opinion;
        }
      }
      if (best.has_value() && at_least_two_thirds(best_count, n_v)) {
        output_ = best->first;
        decision_phase_ = phase;
        if (observer_ != nullptr) {
          observer_->on_event(
              {ProtocolEvent::Type::kDecided, id(), round.local, *output_, 0, phase});
        }
      }
      break;
    }
    default: break;
  }
}

}  // namespace idonly
