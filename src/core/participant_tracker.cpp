#include "core/participant_tracker.hpp"

namespace idonly {

void ParticipantTracker::note(std::span<const Message> inbox) {
  for (const Message& m : inbox) seen_.insert(m.sender);
}

}  // namespace idonly
