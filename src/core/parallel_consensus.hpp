// Parallel consensus in the id-only model (paper §Parallel Consensus, Alg. 5).
//
// Every correct node inputs a SET of (pair-id, value) pairs; nodes need not
// agree up front on which pair-ids exist. Guarantees:
//   * Validity    — a pair (id, x), x ≠ ⊥, input at EVERY correct node is
//                   output by every correct node;
//   * Agreement   — any pair output by one correct node is output by all;
//   * Termination — finite rounds (O(f) per instance).
//
// One EarlyConsensus(id) instance runs per pair-id, all sharing a common
// round/phase clock and one rotor-coordinator. The machinery that removes
// the "agree on the instance set first" chicken-and-egg:
//   * explicit id:nopreference / id:nostrongpreference markers so silence
//     is distinguishable from "no quorum";
//   * ⊥-filling — during phase 1, a node that first hears a message type for
//     an id fills the missing copies from other members with that type's ⊥
//     message; in later phases it fills with what it itself sent last;
//   * late adoption — a node unaware of id starts the instance if it first
//     hears id:input / id:prefer / id:strongprefer in rounds 2 / 3 / 5 of
//     phase 1; anything about an unknown id after phase 1 is discarded.
//
// ParallelConsensusMachine is the embeddable engine (the dynamic
// total-ordering protocol runs one machine per round, tagged by instance);
// ParallelConsensusProcess adapts it to the simulator.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "common/flat_set.hpp"
#include "common/types.hpp"
#include "common/value.hpp"
#include "core/participant_tracker.hpp"
#include "core/rotor_coordinator.hpp"
#include "net/process.hpp"

namespace idonly {

struct InputPair {
  PairId id = 0;
  Value value;
};

struct OutputPair {
  PairId id = 0;
  Value value;
  friend bool operator==(const OutputPair&, const OutputPair&) = default;
  friend bool operator<(const OutputPair& a, const OutputPair& b) {
    if (a.id != b.id) return a.id < b.id;
    return a.value < b.value;
  }
};

class ParallelConsensusMachine {
 public:
  /// `membership_restriction` — the total-ordering protocol records its view
  /// S at instance start and only accepts messages from S; empty optional
  /// means "no restriction" (standalone use).
  ParallelConsensusMachine(NodeId self, InstanceTag tag, std::vector<InputPair> inputs,
                           std::optional<FlatSet<NodeId>> membership_restriction = std::nullopt);

  /// Advance one local round. `inbox` is this round's full inbox (the
  /// machine filters by instance tag and membership itself); outgoing
  /// messages (already instance-tagged) are appended to `out`.
  void on_round(std::span<const Message> inbox, std::vector<Message>& out);

  [[nodiscard]] bool terminated() const noexcept;
  /// Agreed output pairs, sorted by pair id (⊥-valued pairs already
  /// discarded). Stable once terminated().
  [[nodiscard]] std::vector<OutputPair> outputs() const;

  [[nodiscard]] Round local_round() const noexcept { return local_round_; }
  [[nodiscard]] std::size_t n_v() const noexcept { return membership_.n_v(); }
  [[nodiscard]] std::size_t instance_count() const noexcept { return instances_.size(); }

 private:
  struct Instance {
    Value x;                  ///< current opinion (⊥ allowed)
    bool terminated = false;
    std::optional<Value> decided;            ///< set at termination (may be ⊥)
    std::optional<Value> my_last_prefer;     ///< what I sent in P2 (prefer only)
    std::optional<Value> my_last_strongpref; ///< what I sent in P3
    QuorumCounter<Value> sp_tally;           ///< strongprefers collected in P4
  };

  [[nodiscard]] bool accepts(const Message& m) const;
  Instance& activate(PairId id, Value initial);
  /// Tally `kind` messages (by pair id) from this inbox for one instance,
  /// with heard-markers and the fill rule. `fill` is the value attributed to
  /// silent members (nullopt → no filling).
  [[nodiscard]] QuorumCounter<Value> tally(std::span<const Message> inbox, PairId pair,
                                           MsgKind kind, std::optional<MsgKind> heard_marker,
                                           std::optional<Value> fill) const;

  void phase_round_1(std::vector<Message>& out);
  void phase_round_2(std::span<const Message> inbox, std::int64_t phase,
                     std::vector<Message>& out);
  void phase_round_3(std::span<const Message> inbox, std::int64_t phase,
                     std::vector<Message>& out);
  void phase_round_4(std::span<const Message> inbox, std::int64_t phase,
                     std::vector<Message>& out);
  void phase_round_5(std::span<const Message> inbox, std::int64_t phase);

  NodeId self_;
  InstanceTag tag_;
  std::vector<InputPair> pending_inputs_;
  std::optional<FlatSet<NodeId>> restriction_;
  RotorCore rotor_;
  ParticipantTracker membership_;
  bool membership_frozen_ = false;
  Round local_round_ = 0;
  std::map<PairId, Instance> instances_;
  std::optional<NodeId> phase_coordinator_;
};

/// Standalone Alg. 5 as a simulator process.
class ParallelConsensusProcess final : public Process {
 public:
  ParallelConsensusProcess(NodeId self, std::vector<InputPair> inputs);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;
  [[nodiscard]] bool done() const override { return machine_.terminated(); }
  [[nodiscard]] std::vector<OutputPair> outputs() const { return machine_.outputs(); }
  [[nodiscard]] const ParallelConsensusMachine& machine() const noexcept { return machine_; }

 private:
  ParallelConsensusMachine machine_;
};

}  // namespace idonly
