#include "core/king_consensus.hpp"

#include "common/thresholds.hpp"

namespace idonly {

KingConsensusProcess::KingConsensusProcess(NodeId self, Value input)
    : Process(self), x_v_(input), rotor_(self) {}

void KingConsensusProcess::on_round(RoundInfo round, std::span<const Message> inbox,
                                    std::vector<Outgoing>& out) {
  if (output_.has_value()) return;

  rotor_.absorb(inbox);
  if (!membership_frozen_) membership_.note(inbox);

  std::vector<Message> msgs;
  if (round.local == 1) {
    rotor_.round1(msgs);
    for (Message& m : msgs) broadcast(out, std::move(m));
    return;
  }
  if (round.local == 2) {
    rotor_.round2(inbox, msgs);
    for (Message& m : msgs) broadcast(out, std::move(m));
    return;
  }
  if (!membership_frozen_) membership_frozen_ = true;

  // Tally helper with the same silent-member substitution discipline as
  // Alg. 3 (markers make "no quorum" distinguishable from "terminated";
  // substitution only fills for the latter — see consensus.hpp).
  auto tally = [&](MsgKind kind, std::optional<MsgKind> marker,
                   const std::optional<Value>& mine) {
    QuorumCounter<Value> counts;
    FlatSet<NodeId> heard;  // inbox senders arrive ascending → append fast path
    for (const Message& m : inbox) {
      if (!membership_.knows(m.sender)) continue;
      if (m.kind == kind) {
        counts.add(m.value, m.sender);
        heard.insert(m.sender);
      } else if (marker.has_value() && m.kind == *marker) {
        heard.insert(m.sender);
      }
    }
    if (mine.has_value()) {
      for (NodeId member : membership_.ids()) {
        if (!heard.contains(member)) counts.add(*mine, member);
      }
    }
    return counts;
  };

  const std::size_t n_v = membership_.n_v();
  const std::int64_t phase = (round.local - 3) / 5 + 1;
  const std::int64_t phase_round = (round.local - 3) % 5 + 1;

  switch (phase_round) {
    case 1: {
      Message m;
      m.kind = MsgKind::kInput;
      m.value = x_v_;
      broadcast(out, m);
      my_last_input_ = x_v_;
      my_last_support_.reset();
      support_tally_.clear();
      phase_coordinator_.reset();
      break;
    }
    case 2: {
      const auto counts = tally(MsgKind::kInput, std::nullopt, my_last_input_);
      const auto best = counts.best();
      if (best.has_value() && at_least_two_thirds(best->second, n_v)) {
        Message m;
        m.kind = MsgKind::kPrefer;  // "support" in the draft; reuse the kPrefer slot
        m.value = best->first;
        broadcast(out, m);
        my_last_support_ = best->first;
      } else {
        Message m;
        m.kind = MsgKind::kNoPreference;
        broadcast(out, m);
      }
      my_last_input_.reset();
      break;
    }
    case 3: {
      support_tally_ = tally(MsgKind::kPrefer, MsgKind::kNoPreference, my_last_support_);
      const auto best = support_tally_.best();
      if (best.has_value() && at_least_one_third(best->second, n_v)) x_v_ = best->first;
      my_last_support_.reset();
      break;
    }
    case 4: {
      auto result = rotor_.step(n_v, phase - 1);
      if (result.repeated) {
        // Rotor termination rule — the algorithm's own exit.
        output_ = x_v_;
        decision_phase_ = phase;
        return;
      }
      phase_coordinator_ = result.coordinator;
      msgs = std::move(result.relay);
      if (result.coordinator == id()) {
        Message m;
        m.kind = MsgKind::kOpinion;
        m.value = x_v_;
        msgs.push_back(m);
      }
      for (Message& m : msgs) broadcast(out, std::move(m));
      break;
    }
    case 5: {
      const auto best = support_tally_.best();
      const std::size_t count = best.has_value() ? best->second : 0;
      if (!at_least_two_thirds(count, n_v)) {
        if (phase_coordinator_.has_value()) {
          for (const Message& m : inbox) {
            if (m.kind == MsgKind::kOpinion && m.sender == *phase_coordinator_) {
              x_v_ = m.value;
              break;
            }
          }
        }
      }
      break;
    }
    default: break;
  }
}

}  // namespace idonly
