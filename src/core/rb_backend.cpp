#include "core/rb_backend.hpp"

#include "common/flat_set.hpp"
#include "common/thresholds.hpp"
#include "core/participant_tracker.hpp"

namespace idonly {

namespace {

Message make_payload(NodeId source, const Value& payload) {
  Message m;
  m.kind = MsgKind::kPayload;
  m.subject = source;
  m.value = payload;
  return m;
}

Message make_echo(NodeId source, const Value& payload) {
  Message m;
  m.kind = MsgKind::kEcho;
  m.subject = source;
  m.value = payload;
  return m;
}

/// Paper Alg. 1 (n > 3f): round 1 payload/present, round 2 echo on direct
/// payload, rounds 3+ amplification — ≥ n_v/3 echoes re-echo every round,
/// ≥ 2n_v/3 accept.
class Alg1Backend final : public RbBackend {
 public:
  Alg1Backend(NodeId self, NodeId source, Value payload)
      : self_(self), source_(source), payload_(payload) {}

  std::optional<Value> on_round(RoundInfo round, std::span<const Message> inbox,
                                std::size_t n_v, std::vector<Outgoing>& out) override {
    // Accumulate echo(m, s) senders from every round (cumulative distinct
    // counting). A Byzantine source may put several payloads m in flight;
    // each is tracked independently.
    for (const Message& m : inbox) {
      if (m.kind == MsgKind::kEcho && m.subject == source_) echoes_.add(m.value, m.sender);
    }

    if (round.local == 1) {
      // Round 1: the source broadcasts (m, s); everyone else announces
      // `present` so that n_v at every node includes all correct nodes.
      if (self_ == source_) {
        broadcast(out, make_payload(source_, payload_));
      } else {
        broadcast(out, Message{.kind = MsgKind::kPresent});
      }
      return std::nullopt;
    }

    if (round.local == 2) {
      // Round 2: echo the payload if it arrived directly from s.
      for (const Message& m : inbox) {
        if (m.kind == MsgKind::kPayload && m.sender == source_ && m.subject == source_) {
          broadcast(out, make_echo(source_, m.value));
          break;  // a correct source sends one payload; take the first
        }
      }
      return std::nullopt;
    }

    // Rounds 3..∞: the amplification loop.
    std::optional<Value> newly_accepted;
    for (const auto& [payload, senders] : echoes_.all()) {
      if (accepted_) break;
      if (at_least_one_third(senders.size(), n_v)) {
        broadcast(out, make_echo(source_, payload));
      }
      if (at_least_two_thirds(senders.size(), n_v)) {
        accepted_ = true;
        newly_accepted = payload;
      }
    }
    return newly_accepted;
  }

 private:
  NodeId self_;
  NodeId source_;
  Value payload_;
  /// Distinct senders of echo(m, s), keyed by the echoed payload m.
  QuorumCounter<Value> echoes_;
  bool accepted_ = false;
};

/// Imbs–Raynal 2-phase backend under the unknown-n adaptation (n > 5f, see
/// common/thresholds.hpp): round 1 payload/present as in Alg. 1; a node
/// WITNESSES a payload at most once — on direct receipt from s (round 2) or
/// on seeing witnesses from ≥ 3n_v/5 distinct nodes (join); it accepts at
/// ≥ 4n_v/5 witnesses. Versus Alg. 1 this removes the every-round re-echo:
/// steady-state rounds after everyone has witnessed carry no RB traffic.
/// A correct source still yields acceptance in round 3; a Byzantine partial
/// send can make relay take two rounds (witness cascade, then the joiners'
/// witnesses landing), which is why Imbs scenarios assert agreement rather
/// than the one-round relay bound.
class ImbsBackend final : public RbBackend {
 public:
  ImbsBackend(NodeId self, NodeId source, Value payload)
      : self_(self), source_(source), payload_(payload) {}

  std::optional<Value> on_round(RoundInfo round, std::span<const Message> inbox,
                                std::size_t n_v, std::vector<Outgoing>& out) override {
    // Witness messages reuse the kEcho kind (see header): cumulative
    // distinct-sender counting per payload, exactly like Alg. 1 echoes.
    for (const Message& m : inbox) {
      if (m.kind == MsgKind::kEcho && m.subject == source_) witnesses_.add(m.value, m.sender);
    }

    if (round.local == 1) {
      if (self_ == source_) {
        broadcast(out, make_payload(source_, payload_));
      } else {
        broadcast(out, Message{.kind = MsgKind::kPresent});
      }
      return std::nullopt;
    }

    if (round.local == 2) {
      // Phase 1 → phase 2: witness the payload received directly from s.
      for (const Message& m : inbox) {
        if (m.kind == MsgKind::kPayload && m.sender == source_ && m.subject == source_) {
          if (witnessed_.insert(m.value)) broadcast(out, make_echo(source_, m.value));
          break;  // a correct source sends one payload; take the first
        }
      }
      return std::nullopt;
    }

    // Rounds 3..∞: join the witness quorum (once per payload) and accept.
    std::optional<Value> newly_accepted;
    for (const auto& [payload, senders] : witnesses_.all()) {
      if (accepted_) break;
      if (at_least_three_fifths(senders.size(), n_v) && !witnessed_.contains(payload)) {
        witnessed_.insert(payload);
        broadcast(out, make_echo(source_, payload));
      }
      if (at_least_four_fifths(senders.size(), n_v)) {
        accepted_ = true;
        newly_accepted = payload;
      }
    }
    return newly_accepted;
  }

 private:
  NodeId self_;
  NodeId source_;
  Value payload_;
  /// Distinct senders of witness(m, s), keyed by the witnessed payload m.
  QuorumCounter<Value> witnesses_;
  /// Payloads this node has already witnessed (witness-once policy).
  FlatSet<Value> witnessed_;
  bool accepted_ = false;
};

}  // namespace

const char* to_string(RbBackendKind kind) noexcept {
  switch (kind) {
    case RbBackendKind::kAlg1:
      return "alg1";
    case RbBackendKind::kImbs:
      return "imbs";
  }
  return "alg1";
}

std::optional<RbBackendKind> parse_rb_backend(std::string_view name) noexcept {
  if (name == "alg1") return RbBackendKind::kAlg1;
  if (name == "imbs") return RbBackendKind::kImbs;
  return std::nullopt;
}

std::unique_ptr<RbBackend> make_rb_backend(RbBackendKind kind, NodeId self, NodeId source,
                                           Value payload) {
  if (kind == RbBackendKind::kImbs) {
    return std::make_unique<ImbsBackend>(self, source, payload);
  }
  return std::make_unique<Alg1Backend>(self, source, payload);
}

}  // namespace idonly
