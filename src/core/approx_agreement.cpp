#include "core/approx_agreement.hpp"

#include <algorithm>

#include "common/flat_set.hpp"
#include "common/thresholds.hpp"

namespace idonly {

std::optional<double> approx_agree_step(std::vector<double> received) {
  if (received.empty()) return std::nullopt;
  std::sort(received.begin(), received.end());
  const std::size_t n_v = received.size();
  const std::size_t trim = floor_third(n_v);
  // n_v - 2*trim >= 1 for all n_v >= 1, so the window below is non-empty.
  const double lo = received[trim];
  const double hi = received[n_v - 1 - trim];
  return (lo + hi) / 2.0;
}

ApproxAgreementProcess::ApproxAgreementProcess(NodeId self, double input, int iterations)
    : Process(self), value_(input), iterations_(iterations) {}

void ApproxAgreementProcess::reduce(std::span<const Message> inbox) {
  // One value per sender: a Byzantine node sending several distinct values
  // in a round only gets its first counted (any fixed rule is equivalent —
  // the adversary controls the value either way).
  std::vector<double> received;
  FlatSet<NodeId> seen;
  for (const Message& m : inbox) {
    if (m.kind != MsgKind::kApproxValue || m.value.is_bot()) continue;
    if (!seen.insert(m.sender)) continue;
    received.push_back(m.value.as_real());
  }
  if (const auto next = approx_agree_step(std::move(received)); next.has_value()) {
    value_ = *next;
  }
  trajectory_.push_back(value_);
  completed_ += 1;
  if (completed_ >= iterations_) done_ = true;
}

void ApproxAgreementProcess::on_round(RoundInfo round, std::span<const Message> inbox,
                                      std::vector<Outgoing>& out) {
  if (done_) return;
  // Each iteration: fold in the previous round's values (rounds >= 2), then
  // broadcast the current estimate for the next iteration.
  if (round.local >= 2) {
    reduce(inbox);
    if (done_) return;
  }
  Message m;
  m.kind = MsgKind::kApproxValue;
  m.value = Value::real(value_);
  broadcast(out, m);
}

}  // namespace idonly
