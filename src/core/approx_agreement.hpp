// Approximate agreement in the id-only model (paper §Approximate Agreement,
// Alg. 4).
//
// Each correct node holds a real input; outputs must (1) lie within the
// range of correct inputs and (2) span a strictly smaller range than the
// inputs did. The id-only algorithm is one exchange round: broadcast your
// value, receive the multiset R_v (one value per sender, n_v = |R_v|),
// discard the ⌊n_v/3⌋ smallest and ⌊n_v/3⌋ largest, output the midpoint of
// what remains. Theorem 4: with n > 3f the output range is at most HALF the
// input range — iterating the rule converges exponentially, which is what
// experiment E4 measures (and compares against the classical known-f
// algorithm).
//
// The same process works unchanged in dynamic networks (§Application to
// Dynamic Networks): membership may change between iterations, the
// guarantees hold per-round as long as n > 3f holds per-round.
#pragma once

#include <optional>
#include <vector>

#include "common/types.hpp"
#include "common/value.hpp"
#include "net/process.hpp"

namespace idonly {

/// Pure single-round reduction rule, exposed for direct use and testing:
/// given the received values (one per sender), apply the trim-and-midpoint
/// rule. Returns nullopt when the input is empty.
[[nodiscard]] std::optional<double> approx_agree_step(std::vector<double> received);

class ApproxAgreementProcess final : public Process {
 public:
  /// Runs `iterations` exchange rounds (1 = the paper's single-shot
  /// algorithm), then reports done() with output().
  ApproxAgreementProcess(NodeId self, double input, int iterations = 1);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

  [[nodiscard]] bool done() const override { return done_; }
  [[nodiscard]] std::optional<double> output() const noexcept {
    return done_ ? std::optional<double>(value_) : std::nullopt;
  }
  /// Current estimate (after however many iterations ran so far).
  [[nodiscard]] double value() const noexcept { return value_; }
  /// Estimates after each completed iteration, for convergence-rate
  /// experiments.
  [[nodiscard]] const std::vector<double>& trajectory() const noexcept { return trajectory_; }

 private:
  void reduce(std::span<const Message> inbox);

  double value_;
  int iterations_;
  int completed_ = 0;
  bool done_ = false;
  std::vector<double> trajectory_;
};

}  // namespace idonly
