#include "core/reliable_broadcast.hpp"

namespace idonly {

ReliableBroadcastProcess::ReliableBroadcastProcess(NodeId self, NodeId source, Value payload)
    : ReliableBroadcastProcess(self, source, payload, RbBackendKind::kAlg1) {}

ReliableBroadcastProcess::ReliableBroadcastProcess(NodeId self, NodeId source, Value payload,
                                                   RbBackendKind backend)
    : Process(self),
      source_(source),
      backend_(make_rb_backend(backend, self, source, payload)) {}

void ReliableBroadcastProcess::on_round(RoundInfo round, std::span<const Message> inbox,
                                        std::vector<Outgoing>& out) {
  tracker_.note(inbox);
  const auto accepted = backend_->on_round(round, inbox, tracker_.n_v(), out);
  if (accepted.has_value() && !accepted_payload_.has_value()) {
    accepted_payload_ = *accepted;
    accept_round_ = round.local;
    if (observer_ != nullptr) {
      observer_->on_event(
          {ProtocolEvent::Type::kAccepted, id(), round.local, *accepted, source_, 0});
    }
  }
}

}  // namespace idonly
