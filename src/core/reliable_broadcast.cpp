#include "core/reliable_broadcast.hpp"

#include "common/thresholds.hpp"

namespace idonly {

namespace {
Message make_payload(NodeId source, const Value& payload) {
  Message m;
  m.kind = MsgKind::kPayload;
  m.subject = source;
  m.value = payload;
  return m;
}

Message make_echo(NodeId source, const Value& payload) {
  Message m;
  m.kind = MsgKind::kEcho;
  m.subject = source;
  m.value = payload;
  return m;
}
}  // namespace

ReliableBroadcastProcess::ReliableBroadcastProcess(NodeId self, NodeId source, Value payload)
    : Process(self), source_(source), payload_(payload) {}

void ReliableBroadcastProcess::on_round(RoundInfo round, std::span<const Message> inbox,
                                        std::vector<Outgoing>& out) {
  tracker_.note(inbox);

  // Accumulate echo(m, s) senders from every round (cumulative distinct
  // counting — see header). A Byzantine source may put several payloads m in
  // flight; each is tracked independently.
  for (const Message& m : inbox) {
    if (m.kind == MsgKind::kEcho && m.subject == source_) echoes_.add(m.value, m.sender);
  }

  if (round.local == 1) {
    // Round 1: the source broadcasts (m, s); everyone else announces
    // `present` so that n_v at every node includes all correct nodes.
    if (id() == source_) {
      broadcast(out, make_payload(source_, payload_));
    } else {
      broadcast(out, Message{.kind = MsgKind::kPresent});
    }
    return;
  }

  if (round.local == 2) {
    // Round 2: echo the payload if it arrived directly from s.
    for (const Message& m : inbox) {
      if (m.kind == MsgKind::kPayload && m.sender == source_ && m.subject == source_) {
        broadcast(out, make_echo(source_, m.value));
        sent_initial_echo_ = true;
        break;  // a correct source sends one payload; take the first
      }
    }
    return;
  }

  // Rounds 3..∞: the amplification loop.
  const std::size_t n_v = tracker_.n_v();
  for (const auto& [payload, senders] : echoes_.all()) {
    if (accepted_payload_.has_value()) break;
    if (at_least_one_third(senders.size(), n_v)) {
      broadcast(out, make_echo(source_, payload));
    }
    if (at_least_two_thirds(senders.size(), n_v)) {
      accepted_payload_ = payload;
      accept_round_ = round.local;
      if (observer_ != nullptr) {
        observer_->on_event(
            {ProtocolEvent::Type::kAccepted, id(), round.local, payload, source_, 0});
      }
    }
  }
}

}  // namespace idonly
