// Terminating reliable broadcast (reconstructed from the paper's appendix
// draft).
//
// Plain reliable broadcast (Alg. 1) never terminates — with a Byzantine
// source, correct nodes cannot know whether an acceptance is still coming.
// The terminating variant adds a common *decision*: every correct node
// outputs the same (possibly empty, ⊥) payload within O(f) rounds:
//   round 1: the source broadcasts (m, s); everyone else announces;
//   round 2: x_v = m if (m, s) arrived directly from s, else ⊥;
//   then run Alg. 3 consensus on x_v.
// Correctness/unforgeability/relay follow from consensus validity/agreement
// (appendix lemma); termination from Theorem 3.
#pragma once

#include <memory>
#include <optional>

#include "common/types.hpp"
#include "common/value.hpp"
#include "core/consensus.hpp"
#include "net/process.hpp"

namespace idonly {

class TerminatingRbProcess final : public Process {
 public:
  TerminatingRbProcess(NodeId self, NodeId source, Value payload);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

  [[nodiscard]] bool done() const override;
  /// The agreed payload; Value::bot() means "the source broadcast nothing".
  [[nodiscard]] std::optional<Value> output() const;

 private:
  NodeId source_;
  Value payload_;
  std::unique_ptr<ConsensusProcess> consensus_;  // created in round 2
};

}  // namespace idonly
