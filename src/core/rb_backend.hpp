// Pluggable reliable-broadcast backends.
//
// The paper's Alg. 1 is one point in a design space: Imbs & Raynal's "Simple
// and Efficient Reliable Broadcast" (see PAPERS.md) trades resiliency
// (n > 5f instead of n > 3f) for a 2-phase message flow in which each node
// sends its witness ONCE per payload instead of re-amplifying every round.
// To ablate the two under identical harness/chaos/trace conditions, the
// per-round protocol logic lives behind this interface and
// ReliableBroadcastProcess owns only what is common to both: participant
// tracking (n_v), acceptance bookkeeping, and observer events.
//
// Both backends speak the SAME message vocabulary — kPayload for the
// source's initial broadcast, kEcho for echo/witness, kPresent for the
// round-1 presence announcement — so every existing adversary strategy
// (forged echoes, two-faced payloads, partial sends) applies to either
// backend unchanged; only the thresholds and re-send policy differ.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "common/types.hpp"
#include "common/value.hpp"
#include "net/message.hpp"
#include "net/process.hpp"

namespace idonly {

enum class RbBackendKind {
  kAlg1,  ///< paper Alg. 1: n > 3f, ≥n_v/3 re-echo every round, ≥2n_v/3 accept
  kImbs,  ///< Imbs–Raynal 2-phase: n > 5f, witness once at ≥3n_v/5, ≥4n_v/5 accept
};

/// Lowercase stable name used by the scenario DSL and CLIs ("alg1"/"imbs").
[[nodiscard]] const char* to_string(RbBackendKind kind) noexcept;
/// Inverse of to_string(); nullopt on unknown names.
[[nodiscard]] std::optional<RbBackendKind> parse_rb_backend(std::string_view name) noexcept;

/// One reliable-broadcast state machine for a fixed (source, payload)
/// instance at one node. Stepped once per round by ReliableBroadcastProcess,
/// which supplies the current n_v (distinct nodes heard from).
class RbBackend {
 public:
  virtual ~RbBackend() = default;

  /// Executes one round: consumes the inbox, queues outgoing messages, and
  /// returns the accepted payload on the round acceptance first fires
  /// (nullopt before and after that round).
  virtual std::optional<Value> on_round(RoundInfo round, std::span<const Message> inbox,
                                        std::size_t n_v, std::vector<Outgoing>& out) = 0;
};

/// Factory. `self` is the running node, `source` the designated sender s,
/// `payload` the broadcast value m (only read when self == source).
[[nodiscard]] std::unique_ptr<RbBackend> make_rb_backend(RbBackendKind kind, NodeId self,
                                                         NodeId source, Value payload);

}  // namespace idonly
