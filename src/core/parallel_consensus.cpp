#include "core/parallel_consensus.hpp"

#include "common/thresholds.hpp"

namespace idonly {

namespace {
Message pair_msg(MsgKind kind, InstanceTag tag, PairId pair, const Value& v) {
  Message m;
  m.kind = kind;
  m.subject = pair;
  m.instance = tag;
  m.value = v;
  return m;
}
}  // namespace

ParallelConsensusMachine::ParallelConsensusMachine(
    NodeId self, InstanceTag tag, std::vector<InputPair> inputs,
    std::optional<FlatSet<NodeId>> membership_restriction)
    : self_(self),
      tag_(tag),
      pending_inputs_(std::move(inputs)),
      restriction_(std::move(membership_restriction)),
      rotor_(self, tag) {}

bool ParallelConsensusMachine::accepts(const Message& m) const {
  if (m.instance != tag_) return false;
  if (restriction_.has_value() && !restriction_->contains(m.sender)) return false;
  if (membership_frozen_ && !membership_.knows(m.sender)) return false;
  return true;
}

ParallelConsensusMachine::Instance& ParallelConsensusMachine::activate(PairId id, Value initial) {
  auto [it, inserted] = instances_.try_emplace(id);
  if (inserted) it->second.x = initial;
  return it->second;
}

QuorumCounter<Value> ParallelConsensusMachine::tally(std::span<const Message> inbox, PairId pair,
                                                     MsgKind kind, std::optional<MsgKind> heard_marker,
                                                     std::optional<Value> fill) const {
  QuorumCounter<Value> counts;
  FlatSet<NodeId> heard;  // inbox senders arrive ascending → append fast path
  for (const Message& m : inbox) {
    if (!accepts(m) || m.subject != pair) continue;
    if (m.kind == kind) {
      counts.add(m.value, m.sender);
      heard.insert(m.sender);
    } else if (heard_marker.has_value() && m.kind == *heard_marker) {
      heard.insert(m.sender);  // explicit "no quorum" — do not fill for this member
    }
  }
  if (fill.has_value()) {
    for (NodeId member : membership_.ids()) {
      if (!heard.contains(member)) counts.add(*fill, member);
    }
  }
  return counts;
}

void ParallelConsensusMachine::phase_round_1(std::vector<Message>& out) {
  // Own input pairs activate their instances at the start of phase 1.
  for (const InputPair& input : pending_inputs_) activate(input.id, input.value);
  pending_inputs_.clear();
  for (auto& [id, inst] : instances_) {
    if (inst.terminated) continue;
    if (!inst.x.is_bot()) out.push_back(pair_msg(MsgKind::kInput, tag_, id, inst.x));
    inst.my_last_prefer.reset();
    inst.my_last_strongpref.reset();
    inst.sp_tally.clear();
  }
  phase_coordinator_.reset();
}

void ParallelConsensusMachine::phase_round_2(std::span<const Message> inbox, std::int64_t phase,
                                             std::vector<Message>& out) {
  // Late adoption: an id first heard via id:input in round 2 of phase 1
  // starts an instance here with opinion ⊥.
  if (phase == 1) {
    for (const Message& m : inbox) {
      if (accepts(m) && m.kind == MsgKind::kInput && !instances_.contains(m.subject)) {
        activate(m.subject, Value::bot());
      }
    }
  }
  for (auto& [id, inst] : instances_) {
    if (inst.terminated) continue;
    // Fill rule: phase 1 → input(⊥) for silent members (first hearing of the
    // type); later phases → my own current opinion (what I broadcast — or
    // stayed silent with — in the previous round).
    const Value fill = phase == 1 ? Value::bot() : inst.x;
    const auto counts = tally(inbox, id, MsgKind::kInput, std::nullopt, fill);
    const auto best = counts.best();
    if (best.has_value() && at_least_two_thirds(best->second, membership_.n_v())) {
      out.push_back(pair_msg(MsgKind::kPrefer, tag_, id, best->first));
      inst.my_last_prefer = best->first;
    } else {
      out.push_back(pair_msg(MsgKind::kNoPreference, tag_, id, Value::bot()));
      inst.my_last_prefer.reset();
    }
  }
}

void ParallelConsensusMachine::phase_round_3(std::span<const Message> inbox, std::int64_t phase,
                                             std::vector<Message>& out) {
  if (phase == 1) {
    for (const Message& m : inbox) {
      if (accepts(m) && m.kind == MsgKind::kPrefer && !instances_.contains(m.subject)) {
        activate(m.subject, Value::bot());
      }
    }
  }
  for (auto& [id, inst] : instances_) {
    if (inst.terminated) continue;
    const std::optional<Value> fill = phase == 1 ? std::optional<Value>(Value::bot())
                                                 : inst.my_last_prefer;
    const auto counts = tally(inbox, id, MsgKind::kPrefer, MsgKind::kNoPreference, fill);
    const auto best = counts.best();
    const std::size_t n_v = membership_.n_v();
    if (best.has_value() && at_least_one_third(best->second, n_v)) inst.x = best->first;
    if (best.has_value() && at_least_two_thirds(best->second, n_v)) {
      out.push_back(pair_msg(MsgKind::kStrongPrefer, tag_, id, best->first));
      inst.my_last_strongpref = best->first;
    } else {
      out.push_back(pair_msg(MsgKind::kNoStrongPref, tag_, id, Value::bot()));
      inst.my_last_strongpref.reset();
    }
  }
}

void ParallelConsensusMachine::phase_round_4(std::span<const Message> inbox, std::int64_t phase,
                                             std::vector<Message>& out) {
  // Strongprefers sent in round 3 arrive here; collect them per instance.
  // Ids first heard via strongprefer at the rotor round are discarded (they
  // become adoption triggers only in round 5).
  for (auto& [id, inst] : instances_) {
    if (inst.terminated) continue;
    const std::optional<Value> fill = phase == 1 ? std::optional<Value>(Value::bot())
                                                 : inst.my_last_strongpref;
    inst.sp_tally = tally(inbox, id, MsgKind::kStrongPrefer, MsgKind::kNoStrongPref, fill);
  }
  // One shared rotor step per phase; the coordinator publishes its opinion
  // for every live instance.
  auto result = rotor_.step(membership_.n_v(), phase - 1);
  phase_coordinator_ = result.coordinator;
  for (Message& m : result.relay) out.push_back(std::move(m));
  if (result.coordinator == self_) {
    for (auto& [id, inst] : instances_) {
      if (!inst.terminated) out.push_back(pair_msg(MsgKind::kOpinion, tag_, id, inst.x));
    }
  }
}

void ParallelConsensusMachine::phase_round_5(std::span<const Message> inbox, std::int64_t phase) {
  // Late adoption via strongprefer (round 5 of phase 1 only): the node joins,
  // fills strongprefer(⊥) for every silent member, and — since only
  // Byzantine nodes ever sent anything for this id — terminates without
  // output below.
  if (phase == 1) {
    for (const Message& m : inbox) {
      if (accepts(m) && m.kind == MsgKind::kStrongPrefer && !instances_.contains(m.subject)) {
        Instance& inst = activate(m.subject, Value::bot());
        inst.sp_tally =
            tally(inbox, m.subject, MsgKind::kStrongPrefer, MsgKind::kNoStrongPref, Value::bot());
      }
    }
  }
  for (auto& [id, inst] : instances_) {
    if (inst.terminated) continue;
    std::optional<Value> coordinator_opinion;
    if (phase_coordinator_.has_value()) {
      for (const Message& m : inbox) {
        if (accepts(m) && m.kind == MsgKind::kOpinion && m.subject == id &&
            m.sender == *phase_coordinator_) {
          coordinator_opinion = m.value;
          break;
        }
      }
    }
    const auto best = inst.sp_tally.best();
    const std::size_t n_v = membership_.n_v();
    const std::size_t best_count = best.has_value() ? best->second : 0;
    if (less_than_one_third(best_count, n_v)) {
      if (coordinator_opinion.has_value()) inst.x = *coordinator_opinion;
    }
    if (best.has_value() && at_least_two_thirds(best_count, n_v)) {
      inst.terminated = true;
      inst.decided = best->first;
    }
  }
}

void ParallelConsensusMachine::on_round(std::span<const Message> inbox, std::vector<Message>& out) {
  local_round_ += 1;
  rotor_.absorb(inbox);  // rotor echoes are tagged; absorb filters by tag
  if (!membership_frozen_) {
    for (const Message& m : inbox) {
      if (restriction_.has_value() && !restriction_->contains(m.sender)) continue;
      membership_.note(m.sender);
    }
  }

  if (local_round_ == 1) {
    rotor_.round1(out);
    return;
  }
  if (local_round_ == 2) {
    std::vector<Message> echoes;
    rotor_.round2(inbox, echoes);
    for (Message& m : echoes) {
      if (!restriction_.has_value() || restriction_->contains(m.subject)) out.push_back(m);
    }
    return;
  }
  if (!membership_frozen_) {
    membership_.note(self_);  // self always counts (broadcast is self-inclusive)
    membership_frozen_ = true;
  }

  const std::int64_t phase = (local_round_ - 3) / 5 + 1;
  const std::int64_t phase_round = (local_round_ - 3) % 5 + 1;
  switch (phase_round) {
    case 1: phase_round_1(out); break;
    case 2: phase_round_2(inbox, phase, out); break;
    case 3: phase_round_3(inbox, phase, out); break;
    case 4: phase_round_4(inbox, phase, out); break;
    case 5: phase_round_5(inbox, phase); break;
    default: break;
  }
}

bool ParallelConsensusMachine::terminated() const noexcept {
  // No new instance can appear after phase 1 (local rounds 3..7), and every
  // known instance must have decided.
  if (local_round_ < 7) return false;
  for (const auto& [id, inst] : instances_) {
    if (!inst.terminated) return false;
  }
  return true;
}

std::vector<OutputPair> ParallelConsensusMachine::outputs() const {
  std::vector<OutputPair> out;
  for (const auto& [id, inst] : instances_) {
    if (inst.terminated && inst.decided.has_value() && !inst.decided->is_bot()) {
      out.push_back(OutputPair{id, *inst.decided});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------

ParallelConsensusProcess::ParallelConsensusProcess(NodeId self, std::vector<InputPair> inputs)
    : Process(self), machine_(self, /*tag=*/0, std::move(inputs)) {}

void ParallelConsensusProcess::on_round(RoundInfo, std::span<const Message> inbox,
                                        std::vector<Outgoing>& out) {
  if (machine_.terminated()) return;
  std::vector<Message> msgs;
  machine_.on_round(inbox, msgs);
  for (Message& m : msgs) broadcast(out, std::move(m));
}

}  // namespace idonly
