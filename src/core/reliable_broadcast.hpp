// Reliable broadcast in the id-only model (paper §Reliable Broadcast, Alg. 1).
//
// A designated node s broadcasts (m, s); the abstraction guarantees, for
// n > 3f and WITHOUT any node knowing n or f:
//   * Correctness   — if s is correct, every correct node accepts (m, s)
//                     (by round 3);
//   * Unforgeability — if a correct node accepts (m, s) and s is correct,
//                     then s really broadcast (m, s);
//   * Relay         — if a correct node accepts in round r, every correct
//                     node accepts by round r+1.
//
// The unknown-n trick: thresholds use n_v — the number of distinct nodes v
// has heard from so far — in place of n. Round 1 makes every correct node
// transmit (`present` from non-senders), which is what makes n_v ≥ g and the
// Lemma 2/4 counting work.
//
// The algorithm deliberately never terminates (it is a building block; the
// callers — rotor, renaming — own termination), so the process just runs
// until the simulator stops stepping it.
#pragma once

#include <optional>

#include "common/observer.hpp"
#include "common/types.hpp"
#include "common/value.hpp"
#include "core/participant_tracker.hpp"
#include "net/process.hpp"

namespace idonly {

class ReliableBroadcastProcess final : public Process {
 public:
  /// `source` is the designated sender s; `payload` is m (only read when
  /// self == source).
  ReliableBroadcastProcess(NodeId self, NodeId source, Value payload);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

  /// Whether (m, s) has been accepted, for which m (Byzantine sources can
  /// get an arbitrary — but then *unique per node pair run* — m accepted).
  [[nodiscard]] bool accepted() const noexcept { return accepted_payload_.has_value(); }
  [[nodiscard]] std::optional<Value> accepted_payload() const noexcept { return accepted_payload_; }
  [[nodiscard]] std::optional<Round> accept_round() const noexcept { return accept_round_; }

  /// Current n_v — exposed for tests asserting the counting lemmas.
  [[nodiscard]] std::size_t n_v() const noexcept { return tracker_.n_v(); }

  /// Non-owning; must outlive the process. Receives kAccepted events.
  void set_observer(ProtocolObserver* observer) noexcept { observer_ = observer; }

 private:
  NodeId source_;
  Value payload_;
  ParticipantTracker tracker_;
  /// Distinct senders of echo(m, s), keyed by the echoed payload m (the
  /// source s is fixed per run; Byzantine sources may put several m in
  /// flight, each counted independently).
  QuorumCounter<Value> echoes_;
  bool sent_initial_echo_ = false;
  std::optional<Value> accepted_payload_;
  std::optional<Round> accept_round_;
  ProtocolObserver* observer_ = nullptr;
};

}  // namespace idonly
