// Reliable broadcast in the id-only model (paper §Reliable Broadcast, Alg. 1).
//
// A designated node s broadcasts (m, s); the abstraction guarantees, for
// n > 3f and WITHOUT any node knowing n or f:
//   * Correctness   — if s is correct, every correct node accepts (m, s)
//                     (by round 3);
//   * Unforgeability — if a correct node accepts (m, s) and s is correct,
//                     then s really broadcast (m, s);
//   * Relay         — if a correct node accepts in round r, every correct
//                     node accepts by round r+1.
//
// The unknown-n trick: thresholds use n_v — the number of distinct nodes v
// has heard from so far — in place of n. Round 1 makes every correct node
// transmit (`present` from non-senders), which is what makes n_v ≥ g and the
// Lemma 2/4 counting work.
//
// The algorithm deliberately never terminates (it is a building block; the
// callers — rotor, renaming — own termination), so the process just runs
// until the simulator stops stepping it.
//
// The per-round protocol logic is pluggable (core/rb_backend.hpp): the
// default backend is the paper's Alg. 1; RbBackendKind::kImbs selects the
// Imbs–Raynal 2-phase variant (n > 5f, witness-once) for ablation. The
// process owns what is common to both: n_v tracking, acceptance
// bookkeeping, and observer events.
#pragma once

#include <memory>
#include <optional>

#include "common/observer.hpp"
#include "common/types.hpp"
#include "common/value.hpp"
#include "core/participant_tracker.hpp"
#include "core/rb_backend.hpp"
#include "net/process.hpp"

namespace idonly {

class ReliableBroadcastProcess final : public Process {
 public:
  /// `source` is the designated sender s; `payload` is m (only read when
  /// self == source). Runs the paper's Alg. 1.
  ReliableBroadcastProcess(NodeId self, NodeId source, Value payload);
  /// Same, with an explicit backend selection.
  ReliableBroadcastProcess(NodeId self, NodeId source, Value payload, RbBackendKind backend);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

  /// Whether (m, s) has been accepted, for which m (Byzantine sources can
  /// get an arbitrary — but then *unique per node pair run* — m accepted).
  [[nodiscard]] bool accepted() const noexcept { return accepted_payload_.has_value(); }
  [[nodiscard]] std::optional<Value> accepted_payload() const noexcept { return accepted_payload_; }
  [[nodiscard]] std::optional<Round> accept_round() const noexcept { return accept_round_; }

  /// Current n_v — exposed for tests asserting the counting lemmas.
  [[nodiscard]] std::size_t n_v() const noexcept { return tracker_.n_v(); }

  /// Non-owning; must outlive the process. Receives kAccepted events.
  void set_observer(ProtocolObserver* observer) noexcept { observer_ = observer; }

 private:
  NodeId source_;
  ParticipantTracker tracker_;
  /// The per-round protocol state machine (echo/witness bookkeeping lives
  /// inside — see core/rb_backend.hpp).
  std::unique_ptr<RbBackend> backend_;
  std::optional<Value> accepted_payload_;
  std::optional<Round> accept_round_;
  ProtocolObserver* observer_ = nullptr;
};

}  // namespace idonly
