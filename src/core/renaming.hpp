// Byzantine renaming in the id-only model (reconstructed from the paper's
// appendix draft).
//
// Nodes have unique but possibly huge, sparse identifiers; the task is to
// consistently assign every correct node a small name in 1..|S|. Each node
// reliably-broadcast-accumulates announced ids into an ordered set S; once S
// has been quiet for two consecutive rounds the node proposes termination
// with a terminate(k) message, which itself propagates in reliable-broadcast
// fashion (n_v/3 relay, 2n_v/3 accept). The appendix lemma shows all correct
// nodes terminate within O(f) rounds holding identical S, so "my rank in S"
// is a consistent renaming.
#pragma once

#include <optional>
#include <set>
#include <vector>

#include "common/types.hpp"
#include "core/participant_tracker.hpp"
#include "net/process.hpp"

namespace idonly {

class RenamingProcess final : public Process {
 public:
  explicit RenamingProcess(NodeId self);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

  [[nodiscard]] bool done() const override { return terminated_; }
  /// This node's new name (1-based rank of its id in the agreed S).
  [[nodiscard]] std::optional<std::size_t> new_name() const;
  /// The agreed id set (meaningful once done()).
  [[nodiscard]] const std::set<NodeId>& id_set() const noexcept { return s_; }

 private:
  ParticipantTracker tracker_;
  QuorumCounter<NodeId> echoes_;              // announced id -> distinct echoers
  QuorumCounter<std::uint32_t> terminates_;   // k -> distinct terminate(k) senders
  std::set<NodeId> s_;
  Round last_change_round_ = 0;  // latest loop round in which S grew
  bool terminated_ = false;
};

}  // namespace idonly
