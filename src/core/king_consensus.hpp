// Rotor-based "king" consensus — the paper draft's original consensus
// construction (reconstructed from the authors' cut appendix material): the
// Berman–Garay king algorithm with f+1 known kings replaced by the
// rotor-coordinator, terminating when the rotor terminates (O(n) rounds)
// rather than early (O(f), Alg. 3).
//
// Phase structure (5 local rounds, after the 2 rotor init rounds):
//   P1  broadcast input(x_v)
//   P2  some x reached 2n_v/3 inputs → broadcast support(x)
//   P3  x reached n_v/3 supports → adopt x (support tally recorded)
//   P4  rotor step: coordinator broadcasts opinion; if the rotor re-selects
//       a coordinator (its termination rule) → output x_v and stop
//   P5  support tally below 2n_v/3 → adopt the coordinator's opinion c
//
// Kept in the library as (a) the second consensus construction the paper
// describes, and (b) the ablation partner for Alg. 3's early-termination
// claim: on unanimous inputs Alg. 3 finishes in 1 phase while this runs a
// full O(n) rotor schedule.
#pragma once

#include <optional>

#include "common/types.hpp"
#include "common/value.hpp"
#include "core/participant_tracker.hpp"
#include "core/rotor_coordinator.hpp"
#include "net/process.hpp"

namespace idonly {

class KingConsensusProcess final : public Process {
 public:
  KingConsensusProcess(NodeId self, Value input);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

  [[nodiscard]] bool done() const override { return output_.has_value(); }
  [[nodiscard]] std::optional<Value> output() const noexcept { return output_; }
  [[nodiscard]] std::optional<std::int64_t> decision_phase() const noexcept {
    return decision_phase_;
  }

 private:
  Value x_v_;
  RotorCore rotor_;
  ParticipantTracker membership_;
  bool membership_frozen_ = false;
  std::optional<Value> my_last_input_;
  std::optional<Value> my_last_support_;
  QuorumCounter<Value> support_tally_;
  std::optional<NodeId> phase_coordinator_;
  std::optional<Value> output_;
  std::optional<std::int64_t> decision_phase_;
};

}  // namespace idonly
