#include "core/total_order.hpp"

#include <algorithm>

namespace idonly {

TotalOrderProcess::TotalOrderProcess(NodeId self, bool founder)
    : Process(self), founder_(founder) {
  members_.insert(self);  // S = {v} initially
}

bool TotalOrderProcess::done() const {
  if (!announced_leave_) return false;
  for (const auto& [round, run] : instances_) {
    if (!run.machine.terminated()) return false;
  }
  return true;
}

std::size_t TotalOrderProcess::live_instances() const noexcept {
  std::size_t live = 0;
  for (const auto& [round, run] : instances_) {
    if (!run.machine.terminated()) live += 1;
  }
  return live;
}

void TotalOrderProcess::on_round(RoundInfo round, std::span<const Message> inbox,
                                 std::vector<Outgoing>& out) {
  // Scheduled S-additions become effective at the start of the round where
  // the joiner's own main loop begins (see header note). Keys are global
  // rounds; entries scheduled for earlier rounds (we joined late) apply too.
  for (auto it = scheduled_adds_.begin();
       it != scheduled_adds_.end() && it->first <= round.global;) {
    for (NodeId id : it->second) members_.insert(id);
    it = scheduled_adds_.erase(it);
  }

  if (round.local == 1) {
    // "If v wants to participate: broadcast present."
    broadcast(out, Message{.kind = MsgKind::kPresent});
    return;
  }

  if (!joined_) {
    // Discovery of concurrent joiners (and, for founders, of each other).
    for (const Message& m : inbox) {
      if (m.kind == MsgKind::kPresent) {
        if (founder_) {
          members_.insert(m.sender);  // bootstrap: all founders align at round 3
        } else {
          scheduled_adds_[round.global + 2].push_back(m.sender);
        }
      } else if (m.kind == MsgKind::kAbsent) {
        members_.erase(m.sender);
      }
    }
    if (founder_) {
      // r = 0 here; the first main-loop round (local 3) increments it to 1.
      joined_ = true;
      return;
    }
    // Joiner: wait for the ack round (local round 3): adopt majority ack
    // round + 1; S = ack senders (plus self and concurrent joiners).
    std::map<std::uint32_t, std::size_t> votes;
    for (const Message& m : inbox) {
      if (m.kind != MsgKind::kAck) continue;
      votes[m.round_tag] += 1;
      members_.insert(m.sender);
    }
    if (votes.empty()) return;  // keep waiting (e.g. acks delayed by churn)
    auto majority = votes.begin();
    for (auto it = votes.begin(); it != votes.end(); ++it) {
      if (it->second >= majority->second) majority = it;  // ties → larger round
    }
    r_ = static_cast<Round>(majority->first) + 1;
    joined_ = true;
    return;
  }

  main_loop_round(round, inbox, out);
}

void TotalOrderProcess::main_loop_round(RoundInfo round, std::span<const Message> inbox,
                                        std::vector<Outgoing>& out) {
  r_ += 1;

  // Membership traffic and event collection.
  std::vector<InputPair> inputs;
  for (const Message& m : inbox) {
    switch (m.kind) {
      case MsgKind::kPresent: {
        Message ack;
        ack.kind = MsgKind::kAck;
        ack.round_tag = static_cast<std::uint32_t>(r_);
        unicast(out, m.sender, ack);
        // Effective two rounds out — the joiner's loop alignment.
        scheduled_adds_[round.global + 2].push_back(m.sender);
        break;
      }
      case MsgKind::kAbsent:
        members_.erase(m.sender);
        break;
      case MsgKind::kEvent:
        if (members_.contains(m.sender) && !m.value.is_bot() &&
            m.round_tag == static_cast<std::uint32_t>(r_ - 1)) {
          inputs.push_back(InputPair{m.sender, m.value});
        }
        break;
      default:
        break;
    }
  }

  const bool announce_now = leaving_ && !announced_leave_;
  if (announce_now) {
    broadcast(out, Message{.kind = MsgKind::kAbsent});
    announced_leave_ = true;
  }

  // Broadcast one witnessed event (tagged with the current round) unless we
  // are on the way out.
  if (!announced_leave_ && !pending_events_.empty()) {
    Message ev;
    ev.kind = MsgKind::kEvent;
    ev.value = Value::real(pending_events_.front());
    ev.round_tag = static_cast<std::uint32_t>(r_);
    pending_events_.pop_front();
    broadcast(out, ev);
  }

  // Start the parallel-consensus instance for this round with the recorded
  // membership. A leaver still starts the instance in its announcement round
  // (everyone else's S for this round still contains it) but none after.
  if (!announced_leave_ || announce_now) {
    const auto tag = static_cast<InstanceTag>(r_);
    instances_.try_emplace(
        r_, InstanceRun{ParallelConsensusMachine(id(), tag, std::move(inputs), members_),
                        members_.size()});
  }

  // Drive every outstanding instance with this round's inbox.
  std::vector<Message> machine_out;
  for (auto& [instance_round, run] : instances_) {
    if (run.machine.terminated()) continue;
    machine_out.clear();
    run.machine.on_round(inbox, machine_out);
    for (Message& m : machine_out) broadcast(out, std::move(m));
  }

  refresh_chain();
}

void TotalOrderProcess::refresh_chain() {
  // Round r' is final once r − r' > 5·|S^{r'}|/2 + 2  ⇔  2(r − r') > 5|S| + 4.
  // Finalization happens strictly in instance order (the chain is a prefix),
  // so finalized_ keys always precede every live instance; once finalized,
  // the machine is garbage-collected down to its outputs.
  const std::size_t previous_length = chain_.size();
  for (auto it = instances_.begin(); it != instances_.end();) {
    const Round instance_round = it->first;
    const InstanceRun& run = it->second;
    const bool final_round =
        2 * (r_ - instance_round) > 5 * static_cast<Round>(run.s_size) + 4;
    if (!final_round || !run.machine.terminated()) break;  // prefix ends here
    if (!finalized_.empty() && std::prev(finalized_.end())->first > instance_round) break;
    finalized_.emplace(instance_round, FinalizedInstance{run.machine.outputs()});
    it = instances_.erase(it);
  }
  chain_.clear();
  finalized_upto_ = 0;
  for (const auto& [instance_round, done] : finalized_) {
    for (const OutputPair& pair : done.outputs) {
      chain_.push_back(ChainEntry{instance_round, pair.id, pair.value.real_or(0.0)});
    }
    finalized_upto_ = instance_round;
  }
  if (observer_ != nullptr && chain_.size() > previous_length) {
    observer_->on_event({ProtocolEvent::Type::kChainExtended, id(), r_,
                         Value::real(chain_.back().event), chain_.back().witness,
                         static_cast<std::int64_t>(chain_.size())});
  }
}

}  // namespace idonly
