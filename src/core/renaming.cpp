#include "core/renaming.hpp"

#include <algorithm>

#include "common/thresholds.hpp"

namespace idonly {

RenamingProcess::RenamingProcess(NodeId self) : Process(self) {}

std::optional<std::size_t> RenamingProcess::new_name() const {
  if (!terminated_) return std::nullopt;
  const auto it = s_.find(id());
  if (it == s_.end()) return std::nullopt;
  return static_cast<std::size_t>(std::distance(s_.begin(), it)) + 1;
}

void RenamingProcess::on_round(RoundInfo round, std::span<const Message> inbox,
                               std::vector<Outgoing>& out) {
  if (terminated_) return;
  tracker_.note(inbox);
  for (const Message& m : inbox) {
    if (m.kind == MsgKind::kEcho && m.value.is_bot()) echoes_.add(m.subject, m.sender);
    if (m.kind == MsgKind::kTerminate) terminates_.add(m.round_tag, m.sender);
  }

  if (round.local == 1) {
    broadcast(out, Message{.kind = MsgKind::kInit});
    return;
  }
  if (round.local == 2) {
    for (const Message& m : inbox) {
      if (m.kind != MsgKind::kInit) continue;
      Message echo;
      echo.kind = MsgKind::kEcho;
      echo.subject = m.sender;
      broadcast(out, echo);
    }
    return;
  }

  const Round r = round.local - 2;  // loop rounds are 1-based
  const std::size_t n_v = tracker_.n_v();
  std::vector<Message> m_out;
  bool changed = false;

  // Id accumulation in reliable-broadcast fashion.
  for (const auto& [candidate, senders] : echoes_.all()) {
    if (s_.contains(candidate)) continue;
    if (at_least_one_third(senders.size(), n_v)) {
      Message echo;
      echo.kind = MsgKind::kEcho;
      echo.subject = candidate;
      m_out.push_back(echo);
    }
    if (at_least_two_thirds(senders.size(), n_v)) {
      s_.insert(candidate);
      changed = true;
    }
  }
  if (changed) last_change_round_ = r;

  // Termination proposal: S unchanged through the previous and current loop
  // rounds. (r >= 2 so there IS a previous round to be quiet in.)
  if (r >= 2 && last_change_round_ < r - 1) {
    Message t;
    t.kind = MsgKind::kTerminate;
    t.round_tag = static_cast<std::uint32_t>(r - 1);
    m_out.push_back(t);
  }

  // terminate(k) relay and acceptance.
  for (const auto& [k, senders] : terminates_.all()) {
    if (at_least_one_third(senders.size(), n_v)) {
      Message t;
      t.kind = MsgKind::kTerminate;
      t.round_tag = k;
      m_out.push_back(t);
    }
    if (at_least_two_thirds(senders.size(), n_v)) terminated_ = true;
  }

  // Dedup within this round's outbox (relay + proposal may coincide).
  std::sort(m_out.begin(), m_out.end(), [](const Message& a, const Message& b) {
    return std::tie(a.kind, a.subject, a.round_tag) < std::tie(b.kind, b.subject, b.round_tag);
  });
  m_out.erase(std::unique(m_out.begin(), m_out.end()), m_out.end());
  for (Message& m : m_out) broadcast(out, std::move(m));
}

}  // namespace idonly
