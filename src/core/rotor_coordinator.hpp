// Rotor-coordinator in the id-only model (paper §Rotor-Coordinator, Alg. 2).
//
// Problem: rotate through coordinators so that every correct node, before it
// terminates, witnesses at least one *good round* — a round in which all
// correct nodes select the SAME coordinator and that coordinator is correct.
// With known f and consecutive ids this is trivial (rotate through ids
// 1..f+1); with unknown n, f and sparse ids it is the paper's key technical
// contribution.
//
// Mechanism: every node announces itself (`init`); candidate ids propagate
// into each node's ordered candidate set C_v in reliable-broadcast fashion
// (n_v/3 relay, 2n_v/3 accept), so by Lemma 5 any candidate accepted by one
// correct node is accepted by all within one round. Each rotor round r
// selects C_v[r mod |C_v|]; a node terminates when it re-selects a node.
// Lemma 6 shows the adversary can force at most 2f non-silent and f silent
// bad rounds, so |C_v| > r holds until a good round has been witnessed.
//
// RotorCore is the embeddable state machine (consensus/parallel consensus
// execute one rotor step per phase); RotorProcess is the standalone
// algorithm with the termination rule and an audit log used by tests.
#pragma once

#include <optional>
#include <vector>

#include "common/flat_set.hpp"
#include "common/observer.hpp"
#include "common/types.hpp"
#include "common/value.hpp"
#include "core/participant_tracker.hpp"
#include "net/process.hpp"

namespace idonly {

class RotorCore {
 public:
  /// `instance` tags all emitted messages (0 = untagged) so multiple rotors
  /// can coexist (total ordering runs one per parallel-consensus instance).
  explicit RotorCore(NodeId self, InstanceTag instance = 0) noexcept
      : self_(self), instance_(instance) {}

  /// Local round 1: emit `init`.
  void round1(std::vector<Message>& out) const;

  /// Local round 2: emit echo(p) for every init received.
  void round2(std::span<const Message> inbox, std::vector<Message>& out) const;

  /// Absorb candidate echoes from an inbox. Call every round — embedded in
  /// consensus, relay echoes sent at one rotor step arrive in the *next*
  /// protocol round and must not be lost before the next rotor step.
  void absorb(std::span<const Message> inbox);

  struct StepResult {
    std::optional<NodeId> coordinator;  ///< selected this step (C_v empty → none)
    bool repeated = false;              ///< coordinator already in S_v (Alg. 2 break)
    std::vector<Message> relay;         ///< echo relays to broadcast this round
  };

  /// One rotor loop iteration (Alg. 2 loop body, minus opinion handling
  /// which the caller owns). `r` is the 0-based rotor round index, `n_v` the
  /// caller's participant count. If `repeated` is returned, the coordinator
  /// was NOT re-added to S_v (pseudocode breaks before the insert).
  [[nodiscard]] StepResult step(std::size_t n_v, std::int64_t r);

  /// Sorted candidate set C_v.
  [[nodiscard]] const std::vector<NodeId>& candidates() const noexcept {
    return candidates_.values();
  }
  [[nodiscard]] const FlatSet<NodeId>& selected() const noexcept { return selected_; }

 private:
  NodeId self_;
  InstanceTag instance_;
  QuorumCounter<NodeId> echoes_;  // candidate id -> distinct echoers
  FlatSet<NodeId> candidates_;    // C_v, ascending (selection indexes .values())
  FlatSet<NodeId> selected_;      // S_v
};

/// Standalone Alg. 2: selects coordinators until one repeats; records what
/// happened each rotor round so tests can verify Theorem 2 (a good round is
/// witnessed before termination).
class RotorProcess final : public Process {
 public:
  RotorProcess(NodeId self, Value opinion);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;
  [[nodiscard]] bool done() const override { return terminated_; }

  struct RoundRecord {
    std::int64_t rotor_round = 0;               ///< r
    std::optional<NodeId> selected;              ///< coordinator chosen at r
    std::optional<Value> accepted_opinion;       ///< opinion accepted at r (from r-1's coordinator)
    std::optional<NodeId> accepted_from;         ///< who that opinion came from
  };

  [[nodiscard]] const std::vector<RoundRecord>& history() const noexcept { return history_; }
  [[nodiscard]] const RotorCore& core() const noexcept { return core_; }
  [[nodiscard]] Value opinion() const noexcept { return opinion_; }

  /// Non-owning; must outlive the process. Receives kCoordinatorSelected
  /// and kGoodOpinionAccepted events.
  void set_observer(ProtocolObserver* observer) noexcept { observer_ = observer; }

 private:
  Value opinion_;
  RotorCore core_;
  ParticipantTracker tracker_;
  std::optional<NodeId> prev_coordinator_;
  std::vector<RoundRecord> history_;
  bool terminated_ = false;
  ProtocolObserver* observer_ = nullptr;
};

}  // namespace idonly
