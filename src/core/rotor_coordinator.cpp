#include "core/rotor_coordinator.hpp"

#include <utility>

#include "common/thresholds.hpp"

namespace idonly {

void RotorCore::round1(std::vector<Message>& out) const {
  Message init;
  init.kind = MsgKind::kInit;
  init.instance = instance_;
  out.push_back(init);
}

void RotorCore::round2(std::span<const Message> inbox, std::vector<Message>& out) const {
  for (const Message& m : inbox) {
    if (m.kind != MsgKind::kInit || m.instance != instance_) continue;
    Message echo;
    echo.kind = MsgKind::kEcho;
    echo.subject = m.sender;  // candidate id — taken from the unforgeable sender stamp
    echo.instance = instance_;
    out.push_back(echo);
  }
}

void RotorCore::absorb(std::span<const Message> inbox) {
  for (const Message& m : inbox) {
    if (m.kind == MsgKind::kEcho && m.instance == instance_ && m.value.is_bot()) {
      echoes_.add(m.subject, m.sender);
    }
  }
}

RotorCore::StepResult RotorCore::step(std::size_t n_v, std::int64_t r) {
  StepResult result;

  // Candidate maintenance in reliable-broadcast fashion (Alg. 2 lines 8–11).
  for (const auto& [candidate, senders] : echoes_.all()) {
    if (candidates_.contains(candidate)) continue;
    if (at_least_one_third(senders.size(), n_v)) {
      Message echo;
      echo.kind = MsgKind::kEcho;
      echo.subject = candidate;
      echo.instance = instance_;
      result.relay.push_back(echo);
    }
    if (at_least_two_thirds(senders.size(), n_v)) candidates_.insert(candidate);
  }

  // Selection: p = C_v[r mod |C_v|] (Alg. 2 line 12).
  if (!candidates_.empty()) {
    const std::size_t idx =
        static_cast<std::size_t>(r % static_cast<std::int64_t>(candidates_.size()));
    const NodeId p = candidates_.values()[idx];
    result.coordinator = p;
    if (!selected_.insert(p)) {
      result.repeated = true;  // caller decides whether to terminate
    }
  }
  return result;
}

// ---------------------------------------------------------------------------

RotorProcess::RotorProcess(NodeId self, Value opinion)
    : Process(self), opinion_(opinion), core_(self) {}

void RotorProcess::on_round(RoundInfo round, std::span<const Message> inbox,
                            std::vector<Outgoing>& out) {
  if (terminated_) return;
  tracker_.note(inbox);
  core_.absorb(inbox);

  std::vector<Message> msgs;
  if (round.local == 1) {
    core_.round1(msgs);
  } else if (round.local == 2) {
    core_.round2(inbox, msgs);
  } else {
    const std::int64_t r = round.local - 3;  // rotor rounds are 0-based
    RoundRecord record;
    record.rotor_round = r;

    // Accept the previous coordinator's opinion (Alg. 2 lines 14–16): this
    // happens BEFORE the termination check, so the opinion from the last
    // distinct coordinator still lands.
    if (prev_coordinator_.has_value()) {
      for (const Message& m : inbox) {
        if (m.kind == MsgKind::kOpinion && m.sender == *prev_coordinator_) {
          record.accepted_opinion = m.value;
          record.accepted_from = m.sender;
          if (observer_ != nullptr) {
            observer_->on_event({ProtocolEvent::Type::kGoodOpinionAccepted, id(), round.local,
                                 m.value, m.sender, r});
          }
          break;
        }
      }
    }

    RotorCore::StepResult result = core_.step(tracker_.n_v(), r);
    record.selected = result.coordinator;
    msgs = std::move(result.relay);
    if (observer_ != nullptr && result.coordinator.has_value()) {
      observer_->on_event({ProtocolEvent::Type::kCoordinatorSelected, id(), round.local, Value{},
                           *result.coordinator, r});
    }

    if (result.repeated) {
      history_.push_back(record);
      terminated_ = true;
      return;  // break — B_v of this round is not sent (matches Alg. 2)
    }
    prev_coordinator_ = result.coordinator;
    if (result.coordinator == id()) {
      Message op;
      op.kind = MsgKind::kOpinion;
      op.value = opinion_;
      msgs.push_back(op);
    }
    history_.push_back(record);
  }

  for (Message& m : msgs) broadcast(out, std::move(m));
}

}  // namespace idonly
