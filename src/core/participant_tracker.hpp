// Quorum bookkeeping shared by every protocol in the library.
//
// The paper's central observation is that the unknown quantity n can be
// replaced by n_v — "the number of nodes that sent at least one message to v
// until the current round" — and f by n_v/3. ParticipantTracker maintains
// n_v; QuorumCounter counts *distinct* senders per key (message identity),
// cumulatively across rounds, which is the reading under which Lemmas 1–4 of
// the paper hold (a correct node echoes a given message once per round at
// most, and per-round duplicates are already dropped by the engine).
//
// Both sit on sorted-vector flat containers (common/flat_set.hpp): they are
// probed once per message per round — Θ(n²) probes per round network-wide —
// and inbox senders arrive in ascending id order, so inserts hit the flat
// set's append fast path instead of allocating tree nodes.
#pragma once

#include <optional>
#include <span>
#include <utility>

#include "common/flat_set.hpp"
#include "common/types.hpp"
#include "net/message.hpp"

namespace idonly {

/// Tracks the set of nodes v has ever heard from; n_v = size().
class ParticipantTracker {
 public:
  /// Record the senders of this round's inbox (call once per round, before
  /// evaluating any threshold).
  void note(std::span<const Message> inbox);

  /// Record a single id (e.g. self — a node always counts itself once it
  /// broadcast, because broadcast is self-inclusive).
  void note(NodeId id) { seen_.insert(id); }

  [[nodiscard]] std::size_t n_v() const noexcept { return seen_.size(); }
  [[nodiscard]] bool knows(NodeId id) const { return seen_.contains(id); }
  /// Ascending-id iteration.
  [[nodiscard]] const FlatSet<NodeId>& ids() const noexcept { return seen_; }

 private:
  FlatSet<NodeId> seen_;
};

/// Counts distinct senders per key, cumulatively across rounds. Key is the
/// message identity relevant to a protocol: (s, m) for reliable broadcast,
/// candidate id p for the rotor, an opinion Value for consensus phases, ...
template <typename Key, typename Compare = std::less<Key>>
class QuorumCounter {
 public:
  /// Returns true when this (key, sender) pair is new.
  bool add(const Key& key, NodeId sender) { return senders_[key].insert(sender); }

  [[nodiscard]] std::size_t count(const Key& key) const {
    auto it = senders_.find(key);
    return it == senders_.end() ? 0 : it->second.size();
  }

  /// Key with the largest distinct-sender count (ties → smallest key), or
  /// nothing when empty. Used for "received at least t copies of *some*
  /// message m" style rules where at most one m can pass the threshold.
  [[nodiscard]] std::optional<std::pair<Key, std::size_t>> best() const {
    std::optional<std::pair<Key, std::size_t>> out;
    for (const auto& [key, senders] : senders_) {
      if (!out.has_value() || senders.size() > out->second) out = {key, senders.size()};
    }
    return out;
  }

  /// Ascending-key iteration of (key, distinct-sender set) pairs.
  [[nodiscard]] const FlatMap<Key, FlatSet<NodeId>, Compare>& all() const noexcept {
    return senders_;
  }

  void clear() { senders_.clear(); }

 private:
  FlatMap<Key, FlatSet<NodeId>, Compare> senders_;
};

}  // namespace idonly
