// Total ordering of events in a dynamic network (paper §Application to
// Dynamic Networks, Alg. 6).
//
// Participants may join and leave (adversary-scheduled, subject to n > 3f in
// every round); correct nodes maintain a totally ordered chain of events
// satisfying
//   * chain-prefix — any two correct chains are prefix-comparable;
//   * chain-growth — the chain keeps growing while events are submitted.
//
// Mechanism: every round r, each node broadcasts the event it witnessed
// (tagged with r); events (m, r-1) collected from members form the input
// pairs of a fresh parallel-consensus instance tagged r, run "with respect
// to" the membership view S recorded at instance start (only S members'
// messages are accepted). Round r' becomes FINAL once
// r − r' > 5·|S^{r'}|/2 + 2 (every instance terminates within 5f+2 rounds of
// its start, and |S| > 2f); the chain is the concatenation of the outputs of
// all final instances in increasing instance order.
//
// Round-number agreement for joiners uses the present/ack handshake: a
// joiner adopts majority ack round + 1. Faithfulness note (documented in
// DESIGN.md): incumbents add a joiner to S effective two rounds after its
// `present` arrives, which is exactly the round the joiner's own main loop
// starts — the paper's sketch leaves this alignment implicit.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "common/flat_set.hpp"
#include "common/observer.hpp"
#include "common/types.hpp"
#include "common/value.hpp"
#include "core/parallel_consensus.hpp"
#include "net/process.hpp"

namespace idonly {

/// One agreed event in the output chain.
struct ChainEntry {
  Round instance = 0;   ///< the protocol round whose instance agreed on it
  PairId witness = 0;   ///< node that submitted the event
  double event = 0.0;
  friend bool operator==(const ChainEntry&, const ChainEntry&) = default;
};

class TotalOrderProcess final : public Process {
 public:
  /// `founder` nodes bootstrap together at simulation start (they exchange
  /// `present` in their first round and begin the main loop in their third);
  /// non-founders run the join handshake.
  TotalOrderProcess(NodeId self, bool founder);

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

  /// Queue an event to broadcast in the next round (one event per round is
  /// drained, matching the paper's "v witnesses an event m in round r").
  void submit_event(double event) { pending_events_.push_back(event); }

  /// Announce departure next round; the node keeps participating in
  /// outstanding instances until they terminate, then reports done().
  void request_leave() { leaving_ = true; }

  [[nodiscard]] bool done() const override;

  /// The finalized chain (instances ≤ the largest all-final round R).
  [[nodiscard]] const std::vector<ChainEntry>& chain() const noexcept { return chain_; }
  /// Largest round R such that every instance ≤ R is final (0 = none yet).
  [[nodiscard]] Round finalized_upto() const noexcept { return finalized_upto_; }
  [[nodiscard]] Round protocol_round() const noexcept { return r_; }
  [[nodiscard]] const FlatSet<NodeId>& membership() const noexcept { return members_; }
  [[nodiscard]] std::size_t live_instances() const noexcept;

  /// Non-owning; must outlive the process. Receives kChainExtended events.
  void set_observer(ProtocolObserver* observer) noexcept { observer_ = observer; }

  /// Parallel-consensus machines still held in memory (live instances).
  /// Finalized instances are garbage-collected down to their outputs, so
  /// this stays bounded by the finality lag regardless of run length.
  [[nodiscard]] std::size_t retained_machines() const noexcept { return instances_.size(); }

 private:
  void main_loop_round(RoundInfo round, std::span<const Message> inbox,
                       std::vector<Outgoing>& out);
  void refresh_chain();

  struct InstanceRun {
    ParallelConsensusMachine machine;
    std::size_t s_size = 0;  ///< |S| recorded at start — the finality clock
  };

  /// A finalized instance: the machine is gone, only the agreed outputs
  /// (already chain-ordered) remain.
  struct FinalizedInstance {
    std::vector<OutputPair> outputs;
  };

  bool founder_;
  bool joined_ = false;     ///< main loop running
  bool announced_leave_ = false;
  bool leaving_ = false;
  Round r_ = 0;             ///< protocol round counter (shared across nodes)
  FlatSet<NodeId> members_;                     ///< S
  std::map<Round, std::vector<NodeId>> scheduled_adds_;  ///< S-adds by effective round
  std::deque<double> pending_events_;
  std::map<Round, InstanceRun> instances_;          ///< live (non-final) instances
  std::map<Round, FinalizedInstance> finalized_;    ///< GC'd, outputs only
  std::vector<ChainEntry> chain_;
  Round finalized_upto_ = 0;
  ProtocolObserver* observer_ = nullptr;
};

}  // namespace idonly
