#include "harness/scenario.hpp"

#include <algorithm>
#include <cassert>
#include <set>

namespace idonly {

std::string to_string(AdversaryKind kind) {
  switch (kind) {
    case AdversaryKind::kNone: return "none";
    case AdversaryKind::kSilent: return "silent";
    case AdversaryKind::kCrash: return "crash";
    case AdversaryKind::kTwoFaced: return "twofaced";
    case AdversaryKind::kNoise: return "noise";
    case AdversaryKind::kForgedEcho: return "forgedecho";
    case AdversaryKind::kRotorStuffer: return "rotorstuffer";
    case AdversaryKind::kVoteSplit: return "votesplit";
    case AdversaryKind::kExtreme: return "extreme";
    case AdversaryKind::kEchoChamber: return "echochamber";
    case AdversaryKind::kReplay: return "replay";
  }
  return "unknown";
}

const std::vector<AdversaryKind>& all_adversaries() {
  static const std::vector<AdversaryKind> kinds = {
      AdversaryKind::kSilent,     AdversaryKind::kCrash,        AdversaryKind::kTwoFaced,
      AdversaryKind::kNoise,      AdversaryKind::kForgedEcho,   AdversaryKind::kRotorStuffer,
      AdversaryKind::kVoteSplit,  AdversaryKind::kExtreme,      AdversaryKind::kEchoChamber,
      AdversaryKind::kReplay};
  return kinds;
}

std::vector<NodeId> Scenario::all_ids() const {
  std::vector<NodeId> ids = correct_ids;
  ids.insert(ids.end(), byzantine_ids.begin(), byzantine_ids.end());
  std::sort(ids.begin(), ids.end());
  return ids;
}

AdversaryContext Scenario::context() const {
  return AdversaryContext{all_ids(), correct_ids};
}

Scenario make_scenario(const ScenarioConfig& config) {
  Scenario scenario;
  scenario.config = config;
  const std::size_t n_byz =
      (config.adversary == AdversaryKind::kNone && config.adversary_mix.empty())
          ? 0
          : config.n_byzantine;
  const std::size_t total = config.n_correct + n_byz;

  // Sparse, non-consecutive ids in [100, 100 + 64*total): deterministic in
  // the seed, strictly increasing gaps of 1..64.
  Rng rng(derive_seed(config.seed, 0xabcdef));
  std::set<NodeId> ids;
  NodeId next = 100;
  while (ids.size() < total) {
    next += 1 + rng.below(64);
    ids.insert(next);
  }
  // Interleave correct/Byzantine assignment pseudo-randomly so Byzantine
  // nodes hold both small and large ids across seeds (id order matters to
  // the rotor's schedule).
  std::vector<NodeId> shuffled(ids.begin(), ids.end());
  rng.shuffle(shuffled);
  scenario.correct_ids.assign(shuffled.begin(),
                              shuffled.begin() + static_cast<std::ptrdiff_t>(config.n_correct));
  scenario.byzantine_ids.assign(shuffled.begin() + static_cast<std::ptrdiff_t>(config.n_correct),
                                shuffled.end());
  std::sort(scenario.correct_ids.begin(), scenario.correct_ids.end());
  std::sort(scenario.byzantine_ids.begin(), scenario.byzantine_ids.end());
  return scenario;
}

AdversaryKind adversary_kind_for(const ScenarioConfig& config, std::size_t byz_index) {
  if (!config.adversary_mix.empty()) {
    return config.adversary_mix[byz_index % config.adversary_mix.size()];
  }
  return config.adversary;
}

std::unique_ptr<Process> make_adversary(const Scenario& scenario, AdversaryKind kind, NodeId id,
                                        std::size_t byz_index, Rng& rng,
                                        const CorrectFactory& correct_factory) {
  const AdversaryContext context = scenario.context();
  const std::size_t n_correct = scenario.correct_ids.size();
  switch (kind) {
    case AdversaryKind::kNone:
    case AdversaryKind::kSilent:
      return std::make_unique<SilentAdversary>(id);
    case AdversaryKind::kCrash: {
      // Behaves like a correct node with a synthetic input, then crashes.
      auto inner = correct_factory(id, n_correct + byz_index);
      return std::make_unique<CrashAdversary>(std::move(inner), scenario.config.crash_round);
    }
    case AdversaryKind::kTwoFaced: {
      auto face_a = correct_factory(id, n_correct + 2 * byz_index);
      auto face_b = correct_factory(id, n_correct + 2 * byz_index + 1);
      // Partition recipients by parity of their rank among all ids — a
      // stable split independent of id magnitudes.
      std::vector<NodeId> all = scenario.all_ids();
      auto side_a = [all](NodeId to) {
        const auto it = std::lower_bound(all.begin(), all.end(), to);
        return it != all.end() && ((it - all.begin()) % 2 == 0);
      };
      return std::make_unique<TwoFacedAdversary>(std::move(face_a), std::move(face_b),
                                                 std::move(side_a), context);
    }
    case AdversaryKind::kNoise:
      return std::make_unique<RandomNoiseAdversary>(id, context, rng.fork());
    case AdversaryKind::kForgedEcho: {
      // Forge on behalf of the smallest correct id (a node that exists but
      // never sent the forged payload).
      const NodeId victim = scenario.correct_ids.front();
      return std::make_unique<ForgedEchoAdversary>(id, victim, Value::real(666.0));
    }
    case AdversaryKind::kRotorStuffer: {
      std::vector<NodeId> fakes;
      for (std::uint64_t i = 0; i < 8; ++i) fakes.push_back(5'000'000 + 64 * byz_index + i);
      return std::make_unique<RotorStufferAdversary>(id, std::move(fakes));
    }
    case AdversaryKind::kVoteSplit:
      return std::make_unique<VoteSplitAdversary>(id, context);
    case AdversaryKind::kExtreme:
      return std::make_unique<ExtremeValueAdversary>(id, context, -1e6, 1e6);
    case AdversaryKind::kEchoChamber:
      return std::make_unique<EchoChamberAdversary>(id, context);
    case AdversaryKind::kReplay:
      return std::make_unique<ReplayAdversary>(id, /*lag=*/2 + byz_index);
  }
  return std::make_unique<SilentAdversary>(id);
}

void build_processes(const Scenario& scenario, const CorrectFactory& correct_factory,
                     const ProcessSink& sink) {
  for (std::size_t i = 0; i < scenario.correct_ids.size(); ++i) {
    sink(correct_factory(scenario.correct_ids[i], i));
  }
  Rng rng(derive_seed(scenario.config.seed, 0x5eed));
  for (std::size_t i = 0; i < scenario.byzantine_ids.size(); ++i) {
    const AdversaryKind kind = adversary_kind_for(scenario.config, i);
    sink(make_adversary(scenario, kind, scenario.byzantine_ids[i], i, rng, correct_factory));
  }
}

void populate(SyncSimulator& sim, const Scenario& scenario,
              const CorrectFactory& correct_factory) {
  build_processes(scenario, correct_factory,
                  [&sim](std::unique_ptr<Process> process) { sim.add_process(std::move(process)); });
}

}  // namespace idonly
