#include "harness/runner.hpp"

#include <algorithm>
#include <cmath>

#include "core/approx_agreement.hpp"
#include "core/consensus.hpp"
#include "core/reliable_broadcast.hpp"
#include "baselines/known_f_approx.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {

namespace {
/// Range (max - min) of a non-empty vector.
double range_of(const std::vector<double>& xs) {
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  return *hi - *lo;
}
}  // namespace

ConsensusRun run_consensus(const ScenarioConfig& config, const std::vector<double>& inputs,
                           Round max_rounds) {
  const Scenario scenario = make_scenario(config);
  SyncSimulator sim;
  auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
    const double input = index < config.n_correct
                             ? inputs[index % inputs.size()]
                             : static_cast<double>(index % 2);  // adversary faces alternate
    return std::make_unique<ConsensusProcess>(id, Value::real(input));
  };
  populate(sim, scenario, factory);
  ConsensusRun run;
  run.all_decided = sim.run_until_all_correct_done(max_rounds);
  run.rounds = sim.round();
  run.messages = sim.metrics().messages.total_delivered();

  for (NodeId id : scenario.correct_ids) {
    auto* p = sim.get<ConsensusProcess>(id);
    if (p == nullptr || !p->output().has_value()) continue;
    run.outputs.push_back(*p->output());
    if (p->decision_phase().has_value()) {
      run.max_decision_phase = std::max(run.max_decision_phase, *p->decision_phase());
    }
  }
  run.agreement = run.outputs.size() == scenario.correct_ids.size() &&
                  std::all_of(run.outputs.begin(), run.outputs.end(),
                              [&](const Value& v) { return v == run.outputs.front(); });
  if (run.agreement && !run.outputs.empty()) {
    const Value& decided = run.outputs.front();
    run.validity = false;
    for (std::size_t i = 0; i < config.n_correct; ++i) {
      if (Value::real(inputs[i % inputs.size()]) == decided) run.validity = true;
    }
  }
  return run;
}

ReliableBroadcastRun run_reliable_broadcast(const ScenarioConfig& config, double payload,
                                            bool byzantine_source, Round run_rounds,
                                            RbBackendKind backend) {
  const Scenario scenario = make_scenario(config);
  const NodeId source = byzantine_source && !scenario.byzantine_ids.empty()
                            ? scenario.byzantine_ids.front()
                            : scenario.correct_ids.front();
  SyncSimulator sim;
  auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
    // Adversary faces (crash inners, two-faced personas) get distinct
    // payloads so an equivocating source really equivocates.
    const double p = index < config.n_correct
                         ? payload
                         : payload + 100.0 * static_cast<double>(index - config.n_correct + 1);
    return std::make_unique<ReliableBroadcastProcess>(id, source, Value::real(p), backend);
  };
  populate(sim, scenario, factory);
  sim.run_rounds(run_rounds);

  ReliableBroadcastRun run;
  run.source_correct = !byzantine_source;
  run.rounds = sim.round();
  run.messages = sim.metrics().messages.total_delivered();
  run.fanout = sim.metrics().fanout;
  std::vector<Value> payloads;
  for (NodeId id : scenario.correct_ids) {
    auto* p = sim.get<ReliableBroadcastProcess>(id);
    if (p == nullptr || !p->accepted()) continue;
    run.accepted_count += 1;
    payloads.push_back(*p->accepted_payload());
    const Round accept = *p->accept_round();
    run.first_accept_round = run.first_accept_round.has_value()
                                 ? std::min(*run.first_accept_round, accept)
                                 : accept;
    run.last_accept_round =
        run.last_accept_round.has_value() ? std::max(*run.last_accept_round, accept) : accept;
  }
  run.agreement = std::all_of(payloads.begin(), payloads.end(),
                              [&](const Value& v) { return v == payloads.front(); });
  run.relay_ok = !run.first_accept_round.has_value() ||
                 (run.accepted_count == scenario.correct_ids.size() &&
                  *run.last_accept_round - *run.first_accept_round <= 1);
  return run;
}

ApproxRun run_approx_agreement(const ScenarioConfig& config, const std::vector<double>& inputs,
                               int iterations) {
  const Scenario scenario = make_scenario(config);
  SyncSimulator sim;
  auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
    const double input = inputs[index % inputs.size()];
    return std::make_unique<ApproxAgreementProcess>(id, input, iterations);
  };
  populate(sim, scenario, factory);
  sim.run_until_all_correct_done(/*max_rounds=*/iterations + 4);

  ApproxRun run;
  run.rounds = sim.round();
  run.messages = sim.metrics().messages.total_delivered();
  std::vector<double> correct_inputs;
  for (std::size_t i = 0; i < config.n_correct; ++i) {
    correct_inputs.push_back(inputs[i % inputs.size()]);
  }
  run.input_range = range_of(correct_inputs);

  std::vector<std::vector<double>> trajectories;
  std::vector<double> outputs;
  for (NodeId id : scenario.correct_ids) {
    auto* p = sim.get<ApproxAgreementProcess>(id);
    if (p == nullptr) continue;
    outputs.push_back(p->value());
    trajectories.push_back(p->trajectory());
  }
  run.output_range = outputs.empty() ? 0.0 : range_of(outputs);
  const double lo = *std::min_element(correct_inputs.begin(), correct_inputs.end());
  const double hi = *std::max_element(correct_inputs.begin(), correct_inputs.end());
  run.within_input_range = std::all_of(outputs.begin(), outputs.end(), [&](double o) {
    return o >= lo - 1e-12 && o <= hi + 1e-12;
  });
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> at_iter;
    for (const auto& trajectory : trajectories) {
      if (static_cast<std::size_t>(it) < trajectory.size()) at_iter.push_back(trajectory[it]);
    }
    if (!at_iter.empty()) run.range_per_iteration.push_back(range_of(at_iter));
  }
  return run;
}

ApproxRun run_known_f_approx(std::size_t n_correct, std::size_t f,
                             const std::vector<double>& inputs, int iterations,
                             std::uint64_t seed) {
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = f;
  config.adversary = f == 0 ? AdversaryKind::kNone : AdversaryKind::kExtreme;
  config.seed = seed;
  const Scenario scenario = make_scenario(config);
  SyncSimulator sim;
  auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
    return std::make_unique<KnownFApproxProcess>(id, inputs[index % inputs.size()],
                                                 config.n_byzantine, iterations);
  };
  populate(sim, scenario, factory);
  sim.run_until_all_correct_done(/*max_rounds=*/iterations + 4);

  ApproxRun run;
  run.rounds = sim.round();
  run.messages = sim.metrics().messages.total_delivered();
  std::vector<double> correct_inputs;
  for (std::size_t i = 0; i < n_correct; ++i) correct_inputs.push_back(inputs[i % inputs.size()]);
  run.input_range = range_of(correct_inputs);
  std::vector<std::vector<double>> trajectories;
  std::vector<double> outputs;
  for (NodeId id : scenario.correct_ids) {
    auto* p = sim.get<KnownFApproxProcess>(id);
    if (p == nullptr) continue;
    outputs.push_back(p->value());
    trajectories.push_back(p->trajectory());
  }
  run.output_range = outputs.empty() ? 0.0 : range_of(outputs);
  const double lo = *std::min_element(correct_inputs.begin(), correct_inputs.end());
  const double hi = *std::max_element(correct_inputs.begin(), correct_inputs.end());
  run.within_input_range = std::all_of(outputs.begin(), outputs.end(), [&](double o) {
    return o >= lo - 1e-12 && o <= hi + 1e-12;
  });
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> at_iter;
    for (const auto& trajectory : trajectories) {
      if (static_cast<std::size_t>(it) < trajectory.size()) at_iter.push_back(trajectory[it]);
    }
    if (!at_iter.empty()) run.range_per_iteration.push_back(range_of(at_iter));
  }
  return run;
}

RotorRun run_rotor(const ScenarioConfig& config, Round max_rounds) {
  const Scenario scenario = make_scenario(config);
  SyncSimulator sim;
  auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
    return std::make_unique<RotorProcess>(id, Value::real(static_cast<double>(index)));
  };
  populate(sim, scenario, factory);
  RotorRun run;
  run.all_terminated = sim.run_until_all_correct_done(max_rounds);
  run.rounds = sim.round();
  run.messages = sim.metrics().messages.total_delivered();

  // Collect per-node histories to find a good round: a rotor round where
  // every correct node selected the same CORRECT coordinator.
  std::vector<const RotorProcess*> nodes;
  for (NodeId id : scenario.correct_ids) {
    if (auto* p = sim.get<RotorProcess>(id); p != nullptr) nodes.push_back(p);
  }
  if (nodes.empty()) return run;
  std::size_t min_len = nodes.front()->history().size();
  for (const auto* p : nodes) min_len = std::min(min_len, p->history().size());
  const auto is_correct = [&](NodeId id) {
    return std::binary_search(scenario.correct_ids.begin(), scenario.correct_ids.end(), id);
  };
  for (std::size_t r = 0; r < min_len && !run.good_round_witnessed; ++r) {
    const auto& first = nodes.front()->history()[r].selected;
    if (!first.has_value() || !is_correct(*first)) continue;
    bool common = true;
    for (const auto* p : nodes) {
      common = common && p->history()[r].selected == first;
    }
    if (!common) continue;
    run.good_round_witnessed = true;
    run.first_good_round = static_cast<std::int64_t>(r);
    // Theorem 2's payoff: in the round after a good round, every correct
    // node accepts the good coordinator's opinion.
    bool all_accepted = true;
    for (const auto* p : nodes) {
      const bool has_next = r + 1 < p->history().size();
      all_accepted = all_accepted && has_next &&
                     p->history()[r + 1].accepted_from == first &&
                     p->history()[r + 1].accepted_opinion.has_value();
    }
    run.good_opinion_accepted = all_accepted;
  }
  for (const auto& [id, round] : sim.metrics().done_round) {
    if (is_correct(id)) run.max_termination_round = std::max(run.max_termination_round, round);
  }
  return run;
}

ParallelRun run_parallel_consensus(const ScenarioConfig& config,
                                   const std::vector<std::vector<InputPair>>& inputs_per_node,
                                   Round max_rounds) {
  const Scenario scenario = make_scenario(config);
  SyncSimulator sim;
  auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
    std::vector<InputPair> inputs;
    if (index < inputs_per_node.size()) inputs = inputs_per_node[index];
    return std::make_unique<ParallelConsensusProcess>(id, std::move(inputs));
  };
  populate(sim, scenario, factory);
  ParallelRun run;
  run.all_terminated = sim.run_until_all_correct_done(max_rounds);
  run.rounds = sim.round();
  run.messages = sim.metrics().messages.total_delivered();

  std::vector<std::vector<OutputPair>> outputs;
  for (NodeId id : scenario.correct_ids) {
    if (auto* p = sim.get<ParallelConsensusProcess>(id); p != nullptr) {
      auto pairs = p->outputs();
      std::sort(pairs.begin(), pairs.end());
      outputs.push_back(std::move(pairs));
    }
  }
  run.agreement = !outputs.empty() &&
                  std::all_of(outputs.begin(), outputs.end(),
                              [&](const auto& o) { return o == outputs.front(); });
  if (run.agreement) run.common_output = outputs.front();
  return run;
}

}  // namespace idonly
