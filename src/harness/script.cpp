#include "harness/script.hpp"

#include <memory>
#include <sstream>
#include <variant>

#include "core/king_consensus.hpp"
#include "core/renaming.hpp"
#include "harness/runner.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {

std::string to_string(ScriptProtocol protocol) {
  switch (protocol) {
    case ScriptProtocol::kConsensus: return "consensus";
    case ScriptProtocol::kKing: return "king";
    case ScriptProtocol::kRb: return "rb";
    case ScriptProtocol::kApprox: return "approx";
    case ScriptProtocol::kRotor: return "rotor";
    case ScriptProtocol::kRenaming: return "renaming";
  }
  return "unknown";
}

std::string to_string(Expectation expectation) {
  switch (expectation) {
    case Expectation::kTermination: return "termination";
    case Expectation::kAgreement: return "agreement";
    case Expectation::kValidity: return "validity";
    case Expectation::kAcceptance: return "acceptance";
    case Expectation::kGoodRound: return "good-round";
    case Expectation::kWithinRange: return "within-range";
    case Expectation::kContraction: return "contraction";
  }
  return "unknown";
}

namespace {

std::optional<ScriptProtocol> parse_protocol(const std::string& word) {
  if (word == "consensus") return ScriptProtocol::kConsensus;
  if (word == "king") return ScriptProtocol::kKing;
  if (word == "rb") return ScriptProtocol::kRb;
  if (word == "approx") return ScriptProtocol::kApprox;
  if (word == "rotor") return ScriptProtocol::kRotor;
  if (word == "renaming") return ScriptProtocol::kRenaming;
  return std::nullopt;
}

std::optional<Expectation> parse_expectation(const std::string& word) {
  if (word == "termination") return Expectation::kTermination;
  if (word == "agreement") return Expectation::kAgreement;
  if (word == "validity") return Expectation::kValidity;
  if (word == "acceptance") return Expectation::kAcceptance;
  if (word == "good-round") return Expectation::kGoodRound;
  if (word == "within-range") return Expectation::kWithinRange;
  if (word == "contraction") return Expectation::kContraction;
  return std::nullopt;
}

std::optional<AdversaryKind> parse_adversary_name(const std::string& word) {
  for (AdversaryKind kind : all_adversaries()) {
    if (to_string(kind) == word) return kind;
  }
  if (word == "none") return AdversaryKind::kNone;
  return std::nullopt;
}

std::vector<std::string> split(const std::string& text, char separator) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream stream(text);
  while (std::getline(stream, part, separator)) parts.push_back(part);
  return parts;
}

}  // namespace

std::variant<ScenarioScript, ParseError> parse_script(const std::string& text) {
  ScenarioScript script;
  script.config.n_byzantine = 0;
  script.config.adversary = AdversaryKind::kNone;

  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  auto fail = [&](const std::string& message) {
    return ParseError{line_number, message};
  };

  while (std::getline(stream, line)) {
    line_number += 1;
    // Strip comments and whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string keyword;
    if (!(words >> keyword)) continue;  // blank line

    if (keyword == "protocol") {
      std::string name;
      if (!(words >> name)) return fail("protocol: missing name");
      const auto protocol = parse_protocol(name);
      if (!protocol.has_value()) return fail("protocol: unknown '" + name + "'");
      script.protocol = *protocol;
    } else if (keyword == "nodes") {
      // Note: istream happily wraps "-3" into a huge unsigned value, so a
      // sanity ceiling doubles as the negative-input check.
      if (!(words >> script.config.n_correct) || script.config.n_correct == 0 ||
          script.config.n_correct > 10'000) {
        return fail("nodes: expected a positive count (at most 10000)");
      }
    } else if (keyword == "inputs") {
      std::string list;
      if (!(words >> list)) return fail("inputs: missing list");
      script.inputs.clear();
      for (const std::string& item : split(list, ',')) {
        try {
          script.inputs.push_back(std::stod(item));
        } catch (...) {
          return fail("inputs: bad number '" + item + "'");
        }
      }
      if (script.inputs.empty()) return fail("inputs: empty list");
    } else if (keyword == "byzantine") {
      std::string kinds;
      if (!(words >> script.config.n_byzantine) || !(words >> kinds)) {
        return fail("byzantine: expected <count> <kind>[,<kind>...]");
      }
      script.config.adversary_mix.clear();
      for (const std::string& name : split(kinds, ',')) {
        const auto kind = parse_adversary_name(name);
        if (!kind.has_value()) return fail("byzantine: unknown adversary '" + name + "'");
        script.config.adversary_mix.push_back(*kind);
      }
      if (!script.config.adversary_mix.empty()) {
        script.config.adversary = script.config.adversary_mix.front();
      }
    } else if (keyword == "seed") {
      if (!(words >> script.config.seed)) return fail("seed: expected a number");
    } else if (keyword == "max-rounds") {
      if (!(words >> script.max_rounds) || script.max_rounds <= 0) {
        return fail("max-rounds: expected a positive number");
      }
    } else if (keyword == "iterations") {
      if (!(words >> script.iterations) || script.iterations <= 0) {
        return fail("iterations: expected a positive number");
      }
    } else if (keyword == "crash-round") {
      if (!(words >> script.config.crash_round)) return fail("crash-round: expected a number");
    } else if (keyword == "byz-source") {
      script.byz_source = true;
    } else if (keyword == "expect") {
      std::string name;
      if (!(words >> name)) return fail("expect: missing expectation");
      const auto expectation = parse_expectation(name);
      if (!expectation.has_value()) return fail("expect: unknown '" + name + "'");
      script.expectations.push_back(*expectation);
    } else {
      return fail("unknown keyword '" + keyword + "'");
    }
    std::string extra;
    if (words >> extra) return fail("trailing token '" + extra + "'");
  }
  return script;
}

namespace {

void check(ScriptRun& run, Expectation expectation, bool satisfied, std::string detail) {
  run.outcomes.push_back(ExpectationOutcome{expectation, satisfied, std::move(detail)});
  run.all_satisfied = run.all_satisfied && satisfied;
}

bool wants(const ScenarioScript& script, Expectation expectation) {
  for (Expectation e : script.expectations) {
    if (e == expectation) return true;
  }
  return false;
}

ScriptRun run_consensus_like(const ScenarioScript& script) {
  ScriptRun result;
  // The king variant shares the harness shape; run it through a local
  // simulator, the early-terminating one through the standard runner.
  bool all_decided = false;
  bool agreement = false;
  bool validity = false;
  if (script.protocol == ScriptProtocol::kConsensus) {
    const auto run = run_consensus(script.config, script.inputs, script.max_rounds);
    all_decided = run.all_decided;
    agreement = run.agreement;
    validity = run.validity;
    result.rounds = run.rounds;
    result.messages = run.messages;
  } else {
    const Scenario scenario = make_scenario(script.config);
    SyncSimulator sim;
    auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
      const double input = script.inputs[index % script.inputs.size()];
      return std::make_unique<KingConsensusProcess>(id, Value::real(input));
    };
    populate(sim, scenario, factory);
    all_decided = sim.run_until_all_correct_done(script.max_rounds);
    result.rounds = sim.round();
    result.messages = sim.metrics().messages.total_delivered();
    std::optional<Value> first;
    agreement = true;
    for (NodeId id : scenario.correct_ids) {
      auto* p = sim.get<KingConsensusProcess>(id);
      if (p == nullptr || !p->output().has_value()) continue;
      if (!first.has_value()) first = *p->output();
      agreement = agreement && *p->output() == *first;
    }
    if (first.has_value()) {
      for (double input : script.inputs) {
        validity = validity || Value::real(input) == *first;
      }
    }
    agreement = agreement && all_decided;
  }
  if (wants(script, Expectation::kTermination)) {
    check(result, Expectation::kTermination, all_decided, "all correct nodes decided");
  }
  if (wants(script, Expectation::kAgreement)) {
    check(result, Expectation::kAgreement, agreement, "identical outputs");
  }
  if (wants(script, Expectation::kValidity)) {
    check(result, Expectation::kValidity, validity, "output is a correct input");
  }
  return result;
}

}  // namespace

ScriptRun run_script(const ScenarioScript& script) {
  ScriptRun result;
  switch (script.protocol) {
    case ScriptProtocol::kConsensus:
    case ScriptProtocol::kKing:
      result = run_consensus_like(script);
      break;
    case ScriptProtocol::kRb: {
      const auto run = run_reliable_broadcast(script.config, script.inputs.front(),
                                              script.byz_source,
                                              std::min<Round>(script.max_rounds, 60));
      result.rounds = run.rounds;
      result.messages = run.messages;
      if (wants(script, Expectation::kAcceptance)) {
        check(result, Expectation::kAcceptance, run.accepted_count == script.config.n_correct,
              "all correct nodes accepted");
      }
      if (wants(script, Expectation::kAgreement)) {
        check(result, Expectation::kAgreement, run.agreement && run.relay_ok,
              "acceptance uniform within one round");
      }
      break;
    }
    case ScriptProtocol::kApprox: {
      const auto run = run_approx_agreement(script.config, script.inputs, script.iterations);
      result.rounds = run.rounds;
      result.messages = run.messages;
      if (wants(script, Expectation::kWithinRange)) {
        check(result, Expectation::kWithinRange, run.within_input_range,
              "outputs inside correct input range");
      }
      if (wants(script, Expectation::kContraction)) {
        const bool contracted =
            run.input_range == 0.0 || run.output_range <= run.input_range / 2.0 + 1e-12;
        check(result, Expectation::kContraction, contracted, "range at least halved");
      }
      break;
    }
    case ScriptProtocol::kRotor: {
      const auto run = run_rotor(script.config, script.max_rounds);
      result.rounds = run.rounds;
      result.messages = run.messages;
      if (wants(script, Expectation::kTermination)) {
        check(result, Expectation::kTermination, run.all_terminated, "rotor terminated");
      }
      if (wants(script, Expectation::kGoodRound)) {
        check(result, Expectation::kGoodRound,
              run.good_round_witnessed && run.good_opinion_accepted,
              "common correct coordinator witnessed and its opinion accepted");
      }
      break;
    }
    case ScriptProtocol::kRenaming: {
      const Scenario scenario = make_scenario(script.config);
      SyncSimulator sim;
      auto factory = [](NodeId id, std::size_t) { return std::make_unique<RenamingProcess>(id); };
      populate(sim, scenario, factory);
      const bool done = sim.run_until_all_correct_done(script.max_rounds);
      result.rounds = sim.round();
      result.messages = sim.metrics().messages.total_delivered();
      bool consistent = done;
      std::optional<std::set<NodeId>> reference;
      for (NodeId id : scenario.correct_ids) {
        auto* p = sim.get<RenamingProcess>(id);
        if (p == nullptr || !p->done()) {
          consistent = false;
          continue;
        }
        if (!reference.has_value()) reference = p->id_set();
        consistent = consistent && p->id_set() == *reference;
      }
      if (wants(script, Expectation::kTermination)) {
        check(result, Expectation::kTermination, done, "all renamed");
      }
      if (wants(script, Expectation::kAgreement)) {
        check(result, Expectation::kAgreement, consistent, "identical id sets");
      }
      break;
    }
  }

  std::ostringstream summary;
  summary << to_string(script.protocol) << " n=" << script.config.n_correct << "+"
          << script.config.n_byzantine << " seed=" << script.config.seed
          << " rounds=" << result.rounds << " msgs=" << result.messages << " — "
          << (result.all_satisfied ? "OK" : "EXPECTATION FAILED");
  result.summary = summary.str();
  return result;
}

}  // namespace idonly
