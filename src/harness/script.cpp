#include "harness/script.hpp"

#include <algorithm>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <variant>

#include "common/invariants.hpp"
#include "common/rng.hpp"
#include "core/consensus.hpp"
#include "core/king_consensus.hpp"
#include "core/renaming.hpp"
#include "core/total_order.hpp"
#include "harness/runner.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {

std::string to_string(ScriptProtocol protocol) {
  switch (protocol) {
    case ScriptProtocol::kConsensus: return "consensus";
    case ScriptProtocol::kKing: return "king";
    case ScriptProtocol::kRb: return "rb";
    case ScriptProtocol::kApprox: return "approx";
    case ScriptProtocol::kRotor: return "rotor";
    case ScriptProtocol::kRenaming: return "renaming";
    case ScriptProtocol::kTotalOrder: return "totalorder";
  }
  return "unknown";
}

std::string to_string(Expectation expectation) {
  switch (expectation) {
    case Expectation::kTermination: return "termination";
    case Expectation::kAgreement: return "agreement";
    case Expectation::kValidity: return "validity";
    case Expectation::kAcceptance: return "acceptance";
    case Expectation::kGoodRound: return "good-round";
    case Expectation::kWithinRange: return "within-range";
    case Expectation::kContraction: return "contraction";
    case Expectation::kNoViolations: return "no-violations";
  }
  return "unknown";
}

namespace {

std::optional<ScriptProtocol> parse_protocol(const std::string& word) {
  if (word == "consensus") return ScriptProtocol::kConsensus;
  if (word == "king") return ScriptProtocol::kKing;
  if (word == "rb") return ScriptProtocol::kRb;
  if (word == "approx") return ScriptProtocol::kApprox;
  if (word == "rotor") return ScriptProtocol::kRotor;
  if (word == "renaming") return ScriptProtocol::kRenaming;
  if (word == "totalorder") return ScriptProtocol::kTotalOrder;
  return std::nullopt;
}

std::optional<Expectation> parse_expectation(const std::string& word) {
  if (word == "termination") return Expectation::kTermination;
  if (word == "agreement") return Expectation::kAgreement;
  if (word == "validity") return Expectation::kValidity;
  if (word == "acceptance") return Expectation::kAcceptance;
  if (word == "good-round") return Expectation::kGoodRound;
  if (word == "within-range") return Expectation::kWithinRange;
  if (word == "contraction") return Expectation::kContraction;
  if (word == "no-violations") return Expectation::kNoViolations;
  return std::nullopt;
}

std::optional<AdversaryKind> parse_adversary_name(const std::string& word) {
  for (AdversaryKind kind : all_adversaries()) {
    if (to_string(kind) == word) return kind;
  }
  if (word == "none") return AdversaryKind::kNone;
  return std::nullopt;
}

std::vector<std::string> split(const std::string& text, char separator) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream stream(text);
  while (std::getline(stream, part, separator)) parts.push_back(part);
  return parts;
}

/// "3-8" → (3, 8). Used for round windows and id-index ranges.
std::optional<std::pair<long long, long long>> parse_dash_range(const std::string& text) {
  const auto dash = text.find('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= text.size()) return std::nullopt;
  try {
    const long long a = std::stoll(text.substr(0, dash));
    const long long b = std::stoll(text.substr(dash + 1));
    if (a < 0 || b < 0 || b < a) return std::nullopt;
    return std::make_pair(a, b);
  } catch (...) {
    return std::nullopt;
  }
}

std::optional<double> parse_probability(const std::string& text) {
  try {
    const double p = std::stod(text);
    if (p < 0.0 || p > 1.0) return std::nullopt;
    return p;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

std::variant<ScenarioScript, ParseError> parse_script(const std::string& text) {
  ScenarioScript script;
  script.config.n_byzantine = 0;
  script.config.adversary = AdversaryKind::kNone;

  std::istringstream stream(text);
  std::string line;
  int line_number = 0;
  auto fail = [&](const std::string& message) {
    return ParseError{line_number, message};
  };

  while (std::getline(stream, line)) {
    line_number += 1;
    // Strip comments and whitespace.
    if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
    std::istringstream words(line);
    std::string keyword;
    if (!(words >> keyword)) continue;  // blank line

    if (keyword == "protocol") {
      std::string name;
      if (!(words >> name)) return fail("protocol: missing name");
      const auto protocol = parse_protocol(name);
      if (!protocol.has_value()) return fail("protocol: unknown '" + name + "'");
      script.protocol = *protocol;
    } else if (keyword == "nodes") {
      // Note: istream happily wraps "-3" into a huge unsigned value, so a
      // sanity ceiling doubles as the negative-input check.
      if (!(words >> script.config.n_correct) || script.config.n_correct == 0 ||
          script.config.n_correct > 10'000) {
        return fail("nodes: expected a positive count (at most 10000)");
      }
    } else if (keyword == "inputs") {
      std::string list;
      if (!(words >> list)) return fail("inputs: missing list");
      script.inputs.clear();
      for (const std::string& item : split(list, ',')) {
        try {
          script.inputs.push_back(std::stod(item));
        } catch (...) {
          return fail("inputs: bad number '" + item + "'");
        }
      }
      if (script.inputs.empty()) return fail("inputs: empty list");
    } else if (keyword == "byzantine") {
      std::string kinds;
      if (!(words >> script.config.n_byzantine) || !(words >> kinds)) {
        return fail("byzantine: expected <count> <kind>[,<kind>...]");
      }
      script.config.adversary_mix.clear();
      for (const std::string& name : split(kinds, ',')) {
        const auto kind = parse_adversary_name(name);
        if (!kind.has_value()) return fail("byzantine: unknown adversary '" + name + "'");
        script.config.adversary_mix.push_back(*kind);
      }
      if (!script.config.adversary_mix.empty()) {
        script.config.adversary = script.config.adversary_mix.front();
      }
    } else if (keyword == "seed") {
      if (!(words >> script.config.seed)) return fail("seed: expected a number");
    } else if (keyword == "max-rounds") {
      if (!(words >> script.max_rounds) || script.max_rounds <= 0) {
        return fail("max-rounds: expected a positive number");
      }
    } else if (keyword == "iterations") {
      if (!(words >> script.iterations) || script.iterations <= 0) {
        return fail("iterations: expected a positive number");
      }
    } else if (keyword == "crash-round") {
      if (!(words >> script.config.crash_round)) return fail("crash-round: expected a number");
    } else if (keyword == "byz-source") {
      script.byz_source = true;
    } else if (keyword == "rb") {
      std::string name;
      if (!(words >> name)) return fail("rb: missing backend name");
      const auto backend = parse_rb_backend(name);
      if (!backend.has_value()) return fail("rb: unknown backend '" + name + "'");
      script.rb_backend = *backend;
    } else if (keyword == "chaos") {
      std::string window;
      if (!(words >> window)) return fail("chaos: expected <first>-<last> round window");
      const auto rounds = parse_dash_range(window);
      if (!rounds.has_value() || rounds->first < 1) {
        return fail("chaos: bad round window '" + window + "'");
      }
      ChaosPhaseSpec phase;
      phase.first_round = rounds->first;
      phase.last_round = rounds->second;
      bool any_fault = false;
      std::string token;
      while (words >> token) {
        const auto eq = token.find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
          return fail("chaos: expected <fault>=<spec>, got '" + token + "'");
        }
        const std::string key = token.substr(0, eq);
        const std::string value = token.substr(eq + 1);
        any_fault = true;
        if (key == "drop" || key == "dup" || key == "corrupt") {
          const auto p = parse_probability(value);
          if (!p.has_value()) return fail("chaos: " + key + " needs a probability in [0,1]");
          (key == "drop" ? phase.drop : key == "dup" ? phase.duplicate : phase.corrupt) = *p;
        } else if (key == "delay") {
          // delay=<p>:<max extra rounds>
          const auto parts = split(value, ':');
          const auto p = parse_probability(parts.front());
          if (parts.size() != 2 || !p.has_value()) {
            return fail("chaos: delay needs <probability>:<max-extra-rounds>");
          }
          try {
            phase.delay_max_extra = std::stoll(parts[1]);
          } catch (...) {
            return fail("chaos: delay needs <probability>:<max-extra-rounds>");
          }
          if (phase.delay_max_extra < 1) return fail("chaos: delay max extra rounds must be >= 1");
          phase.delay_probability = *p;
        } else if (key == "partition") {
          const auto range = parse_dash_range(value);
          if (!range.has_value()) return fail("chaos: partition needs <index>-<index>");
          phase.partition = std::make_pair(static_cast<std::size_t>(range->first),
                                           static_cast<std::size_t>(range->second));
        } else if (key == "crash") {
          // crash=<index>:<first>-<last>
          const auto parts = split(value, ':');
          if (parts.size() != 2) return fail("chaos: crash needs <index>:<first>-<last>");
          const auto crash_rounds = parse_dash_range(parts[1]);
          if (!crash_rounds.has_value() || crash_rounds->first < 1) {
            return fail("chaos: crash needs <index>:<first>-<last>");
          }
          ChaosPhaseSpec::CrashSpec crash;
          try {
            crash.index = static_cast<std::size_t>(std::stoull(parts[0]));
          } catch (...) {
            return fail("chaos: crash needs <index>:<first>-<last>");
          }
          crash.first = crash_rounds->first;
          crash.last = crash_rounds->second;
          phase.crashes.push_back(crash);
        } else {
          return fail("chaos: unknown fault '" + key + "'");
        }
      }
      if (!any_fault) return fail("chaos: phase declares no faults");
      script.chaos_phases.push_back(std::move(phase));
    } else if (keyword == "churn") {
      ChurnEventSpec event;
      long long round = 0;
      if (!(words >> round) || round < 1) return fail("churn: expected a round >= 1");
      event.round = round;
      std::string token;
      if (!(words >> token)) return fail("churn: expected join=<count> or leave=<index>");
      const auto eq = token.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) {
        return fail("churn: expected join=<count> or leave=<index>, got '" + token + "'");
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      try {
        if (key == "join") {
          event.is_join = true;
          event.join_count = static_cast<std::size_t>(std::stoull(value));
          if (event.join_count == 0 || event.join_count > 100) {
            return fail("churn: join count must be in [1, 100]");
          }
        } else if (key == "leave") {
          event.is_join = false;
          event.leave_index = static_cast<std::size_t>(std::stoull(value));
        } else {
          return fail("churn: unknown event '" + key + "'");
        }
      } catch (...) {
        return fail("churn: bad number '" + value + "'");
      }
      script.churn_events.push_back(event);
    } else if (keyword == "liveness") {
      if (!(words >> script.liveness_budget) || script.liveness_budget <= 0) {
        return fail("liveness: expected a positive round budget");
      }
    } else if (keyword == "expect") {
      std::string name;
      if (!(words >> name)) return fail("expect: missing expectation");
      const auto expectation = parse_expectation(name);
      if (!expectation.has_value()) return fail("expect: unknown '" + name + "'");
      script.expectations.push_back(*expectation);
    } else {
      return fail("unknown keyword '" + keyword + "'");
    }
    std::string extra;
    if (words >> extra) return fail("trailing token '" + extra + "'");
  }
  if (!script.chaos_phases.empty() && script.protocol != ScriptProtocol::kConsensus &&
      script.protocol != ScriptProtocol::kTotalOrder) {
    return ParseError{0, "chaos phases are supported for the consensus and totalorder protocols"};
  }
  if (!script.churn_events.empty() && script.protocol != ScriptProtocol::kConsensus &&
      script.protocol != ScriptProtocol::kTotalOrder) {
    return ParseError{0, "churn events are supported for the consensus and totalorder protocols"};
  }
  if (script.rb_backend != RbBackendKind::kAlg1 && script.protocol != ScriptProtocol::kRb) {
    return ParseError{0, "rb backend selection is supported for the rb protocol only"};
  }
  return script;
}

ChaosPlan materialize_chaos_plan(const std::vector<ChaosPhaseSpec>& specs,
                                 const std::vector<NodeId>& all_ids) {
  ChaosPlan plan;
  auto id_at = [&](std::size_t index) {
    if (index >= all_ids.size()) {
      throw std::invalid_argument("chaos phase references node index " + std::to_string(index) +
                                  " but the scenario has only " +
                                  std::to_string(all_ids.size()) + " nodes");
    }
    return all_ids[index];
  };
  for (const ChaosPhaseSpec& spec : specs) {
    ChaosPhase phase;
    phase.first_round = spec.first_round;
    phase.last_round = spec.last_round;
    phase.drop = spec.drop;
    phase.duplicate = spec.duplicate;
    phase.corrupt = spec.corrupt;
    phase.delay.probability = spec.delay_probability;
    phase.delay.max_extra_rounds = spec.delay_max_extra;
    if (spec.partition.has_value()) {
      ChaosPartition partition;
      for (std::size_t i = spec.partition->first; i <= spec.partition->second; ++i) {
        partition.side_a.push_back(id_at(i));
      }
      for (std::size_t i = 0; i < all_ids.size(); ++i) {
        if (i < spec.partition->first || i > spec.partition->second) {
          partition.side_b.push_back(all_ids[i]);
        }
      }
      phase.partitions.push_back(std::move(partition));
    }
    for (const ChaosPhaseSpec::CrashSpec& crash : spec.crashes) {
      phase.crashes.push_back(CrashWindow{id_at(crash.index), crash.first, crash.last});
    }
    plan.phases.push_back(std::move(phase));
  }
  return plan;
}

ChurnDriver::ChurnDriver(const ScenarioScript& script, const Scenario& scenario)
    : events_(script.churn_events),
      initial_correct_(scenario.correct_ids),
      tracked_(scenario.correct_ids),
      rng_(derive_seed(script.config.seed, 0xC1124)) {
  for (NodeId id : scenario.correct_ids) next_id_ = std::max(next_id_, id + 1);
  for (NodeId id : scenario.byzantine_ids) next_id_ = std::max(next_id_, id + 1);
}

void ChurnDriver::apply(Round round, const JoinerFactory& make_joiner, const AddFn& add,
                        const RemoveFn& remove) {
  for (const ChurnEventSpec& event : events_) {
    if (event.round != round) continue;
    if (event.is_join) {
      for (std::size_t k = 0; k < event.join_count; ++k) {
        next_id_ += rng_.below(7);  // sparse ids, like make_scenario's draw
        add(make_joiner(next_id_, joiners_));
        next_id_ += 1;
        joiners_ += 1;
      }
    } else {
      if (event.leave_index >= initial_correct_.size()) {
        throw std::invalid_argument("churn leave references correct-node index " +
                                    std::to_string(event.leave_index) +
                                    " but the scenario has only " +
                                    std::to_string(initial_correct_.size()) + " correct nodes");
      }
      const NodeId id = initial_correct_[event.leave_index];
      remove(id);
      std::erase(tracked_, id);
    }
  }
}

void ChurnDriver::apply(SyncSimulator& sim, Round round, const JoinerFactory& make_joiner) {
  apply(
      round, make_joiner,
      [&sim](std::unique_ptr<Process> process) { sim.add_process(std::move(process)); },
      [&sim](NodeId id) { sim.remove_process(id); });
}

namespace {

void check(ScriptRun& run, Expectation expectation, bool satisfied, std::string detail) {
  run.outcomes.push_back(ExpectationOutcome{expectation, satisfied, std::move(detail)});
  run.all_satisfied = run.all_satisfied && satisfied;
}

bool wants(const ScenarioScript& script, Expectation expectation) {
  for (Expectation e : script.expectations) {
    if (e == expectation) return true;
  }
  return false;
}

ScriptRun run_consensus_like(const ScenarioScript& script, const ScriptOptions& options) {
  ScriptRun result;
  // The king variant shares the harness shape; run it through a local
  // simulator, the early-terminating one through the standard runner.
  bool all_decided = false;
  bool agreement = false;
  bool validity = false;
  if (script.protocol == ScriptProtocol::kConsensus) {
    const auto run = run_consensus(script.config, script.inputs, script.max_rounds);
    all_decided = run.all_decided;
    agreement = run.agreement;
    validity = run.validity;
    result.rounds = run.rounds;
    result.messages = run.messages;
  } else {
    const Scenario scenario = make_scenario(script.config);
    SyncSimulator sim;
    sim.set_trace_recorder(options.recorder);
    sim.set_threads(options.threads);
    auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
      const double input = script.inputs[index % script.inputs.size()];
      return std::make_unique<KingConsensusProcess>(id, Value::real(input));
    };
    populate(sim, scenario, factory);
    all_decided = sim.run_until_all_correct_done(script.max_rounds);
    result.rounds = sim.round();
    result.messages = sim.metrics().messages.total_delivered();
    result.metrics_exposition = prometheus_exposition(sim.metrics());
    std::optional<Value> first;
    agreement = true;
    for (NodeId id : scenario.correct_ids) {
      auto* p = sim.get<KingConsensusProcess>(id);
      if (p == nullptr || !p->output().has_value()) continue;
      if (!first.has_value()) first = *p->output();
      agreement = agreement && *p->output() == *first;
    }
    if (first.has_value()) {
      for (double input : script.inputs) {
        validity = validity || Value::real(input) == *first;
      }
    }
    agreement = agreement && all_decided;
  }
  if (wants(script, Expectation::kTermination)) {
    check(result, Expectation::kTermination, all_decided, "all correct nodes decided");
  }
  if (wants(script, Expectation::kAgreement)) {
    check(result, Expectation::kAgreement, agreement, "identical outputs");
  }
  if (wants(script, Expectation::kValidity)) {
    check(result, Expectation::kValidity, validity, "output is a correct input");
  }
  return result;
}

/// Consensus (A3) under a chaos schedule and/or churn stream, with the
/// invariant monitor wired through: every initial correct process reports
/// its decisions into one InvariantMonitor, and the run's verdicts come
/// from BOTH the output inspection (as in the clean path) and the monitor's
/// online probes — including the bounded-termination probe when the script
/// arms it with `liveness`.
ScriptRun run_chaos_consensus(const ScenarioScript& script, const ScriptOptions& options) {
  ScriptRun result;
  const Scenario scenario = make_scenario(script.config);
  SyncSimulator sim;
  sim.set_trace_recorder(options.recorder);
  sim.set_threads(options.threads);
  std::shared_ptr<ChaosSchedule> chaos;
  if (!script.chaos_phases.empty()) {
    chaos = std::make_shared<ChaosSchedule>(
        materialize_chaos_plan(script.chaos_phases, scenario.all_ids()), script.config.seed);
    sim.set_chaos(chaos);
  }

  std::vector<Value> correct_inputs;
  for (std::size_t i = 0; i < scenario.correct_ids.size(); ++i) {
    correct_inputs.push_back(Value::real(script.inputs[i % script.inputs.size()]));
  }
  // The validity probe (decided value ∈ correct inputs — STRONG validity)
  // arms only when the script expects validity: with split real-valued
  // inputs and f at the tolerance ceiling, A3's coordinator-adoption step
  // can legitimately land on an adversary value (EXPERIMENTS.md E11), so
  // scripts probing that regime must be able to watch agreement/liveness
  // without the strong-validity probe tripping no-violations.
  InvariantMonitor monitor(wants(script, Expectation::kValidity) ? correct_inputs
                                                                 : std::vector<Value>{});
  if (script.liveness_budget > 0) monitor.set_termination_probe(script.liveness_budget);
  // With a recorder, protocol events flow into the flight recording AND on
  // to the invariant monitor (TraceObserver chains).
  TraceObserver trace_observer(options.recorder, &monitor);
  ProtocolObserver* observer =
      options.recorder != nullptr ? static_cast<ProtocolObserver*>(&trace_observer)
                                  : static_cast<ProtocolObserver*>(&monitor);

  auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
    const double input = script.inputs[index % script.inputs.size()];
    return std::make_unique<ConsensusProcess>(id, Value::real(input));
  };
  populate(sim, scenario, factory);
  for (NodeId id : scenario.correct_ids) {
    if (auto* p = sim.get<ConsensusProcess>(id)) p->set_observer(observer);
  }

  ChurnDriver churn(script, scenario);
  auto make_joiner = [&](NodeId id, std::size_t joiner_index) -> std::unique_ptr<Process> {
    const double input =
        script.inputs[(scenario.correct_ids.size() + joiner_index) % script.inputs.size()];
    return std::make_unique<ConsensusProcess>(id, Value::real(input));
  };
  auto tracked_done = [&] {
    bool any = false;
    for (NodeId id : churn.tracked()) {
      const Process* p = sim.find(id);
      if (p == nullptr || !p->done()) return false;
      any = true;
    }
    return any;
  };
  bool all_decided = false;
  for (Round i = 0; i < script.max_rounds; ++i) {
    if (tracked_done()) {
      all_decided = true;
      break;
    }
    churn.apply(sim, sim.round() + 1, make_joiner);
    sim.step();
  }
  if (!all_decided) all_decided = tracked_done();
  monitor.finish(sim.round());
  result.rounds = sim.round();
  result.messages = sim.metrics().messages.total_delivered();
  if (chaos != nullptr) {
    const ChaosCounters chaos_counters = chaos->counters();
    result.chaos_summary = chaos_counters.summary();
    result.metrics_exposition = prometheus_exposition(sim.metrics(), &chaos_counters);
  } else {
    result.metrics_exposition = prometheus_exposition(sim.metrics());
  }
  result.violations = monitor.violations();

  std::optional<Value> first;
  bool agreement = true;
  bool validity = false;
  for (NodeId id : churn.tracked()) {
    auto* p = sim.get<ConsensusProcess>(id);
    if (p == nullptr || !p->output().has_value()) continue;
    if (!first.has_value()) first = *p->output();
    agreement = agreement && *p->output() == *first;
  }
  if (first.has_value()) {
    for (const Value& input : correct_inputs) validity = validity || input == *first;
  }

  if (wants(script, Expectation::kTermination)) {
    check(result, Expectation::kTermination, all_decided, "all correct nodes decided");
  }
  if (wants(script, Expectation::kAgreement)) {
    check(result, Expectation::kAgreement, agreement && all_decided, "identical outputs");
  }
  if (wants(script, Expectation::kValidity)) {
    check(result, Expectation::kValidity, validity, "output is a correct input");
  }
  if (wants(script, Expectation::kNoViolations)) {
    check(result, Expectation::kNoViolations, monitor.ok() && agreement,
          result.violations.empty() ? "invariant monitor clean"
                                    : result.violations.front());
  }
  return result;
}

/// Total ordering (A6) — with or without chaos. Every correct node submits a
/// small batch of events; the run checks the paper's chain-prefix and
/// chain-growth properties over the finalized chains.
ScriptRun run_chaos_totalorder(const ScenarioScript& script, const ScriptOptions& options) {
  ScriptRun result;
  const Scenario scenario = make_scenario(script.config);
  SyncSimulator sim;
  sim.set_trace_recorder(options.recorder);
  sim.set_threads(options.threads);
  std::shared_ptr<ChaosSchedule> chaos;
  if (!script.chaos_phases.empty()) {
    chaos = std::make_shared<ChaosSchedule>(
        materialize_chaos_plan(script.chaos_phases, scenario.all_ids()), script.config.seed);
    sim.set_chaos(chaos);
  }

  auto factory = [](NodeId id, std::size_t) -> std::unique_ptr<Process> {
    return std::make_unique<TotalOrderProcess>(id, /*founder=*/true);
  };
  populate(sim, scenario, factory);
  for (std::size_t i = 0; i < scenario.correct_ids.size(); ++i) {
    auto* p = sim.get<TotalOrderProcess>(scenario.correct_ids[i]);
    if (p == nullptr) continue;
    for (int k = 0; k < 4; ++k) p->submit_event(static_cast<double>(i * 10 + k));
  }

  ChurnDriver churn(script, scenario);
  auto make_joiner = [](NodeId id, std::size_t) -> std::unique_ptr<Process> {
    return std::make_unique<TotalOrderProcess>(id, /*founder=*/false);
  };
  for (Round i = 0; i < script.max_rounds; ++i) {
    churn.apply(sim, sim.round() + 1, make_joiner);
    sim.step();
  }
  result.rounds = sim.round();
  result.messages = sim.metrics().messages.total_delivered();
  if (chaos != nullptr) {
    const ChaosCounters chaos_counters = chaos->counters();
    result.chaos_summary = chaos_counters.summary();
    result.metrics_exposition = prometheus_exposition(sim.metrics(), &chaos_counters);
  } else {
    result.metrics_exposition = prometheus_exposition(sim.metrics());
  }

  // Chain-prefix: any two tracked correct chains must be prefix-comparable
  // (the shorter one is a literal prefix of the longer). Chain-growth: every
  // tracked correct node finalized something by the end of the run. Late
  // joiners' chains start at their join round, so they are exempt (the
  // dynamic_ledger example shows how to align them by instance number).
  bool growth = !churn.tracked().empty();
  bool prefix_ok = true;
  const std::vector<ChainEntry>* longest = nullptr;
  for (NodeId id : churn.tracked()) {
    auto* p = sim.get<TotalOrderProcess>(id);
    if (p == nullptr) continue;
    const auto& chain = p->chain();
    growth = growth && !chain.empty();
    if (longest == nullptr || chain.size() > longest->size()) longest = &chain;
  }
  for (NodeId id : churn.tracked()) {
    auto* p = sim.get<TotalOrderProcess>(id);
    if (p == nullptr || longest == nullptr) continue;
    const auto& chain = p->chain();
    const bool is_prefix = std::equal(chain.begin(), chain.end(), longest->begin());
    if (!is_prefix) {
      prefix_ok = false;
      result.violations.push_back("node " + std::to_string(id) +
                                  "'s chain is not a prefix of the longest chain");
    }
  }

  if (wants(script, Expectation::kTermination)) {
    check(result, Expectation::kTermination, growth, "every correct chain grew");
  }
  if (wants(script, Expectation::kAgreement)) {
    check(result, Expectation::kAgreement, prefix_ok, "chains prefix-comparable");
  }
  if (wants(script, Expectation::kNoViolations)) {
    check(result, Expectation::kNoViolations, prefix_ok,
          result.violations.empty() ? "chain-prefix invariant clean"
                                    : result.violations.front());
  }
  return result;
}

}  // namespace

ScriptRun run_script(const ScenarioScript& script) { return run_script(script, ScriptOptions{}); }

ScriptRun run_script(const ScenarioScript& script, const ScriptOptions& options) {
  ScriptRun result;
  switch (script.protocol) {
    case ScriptProtocol::kConsensus:
      // Chaos, churn, and the liveness probe all need the instrumented
      // simulator loop; plain scripts keep the one-call harness path.
      result = script.chaos_phases.empty() && script.churn_events.empty() &&
                       script.liveness_budget <= 0
                   ? run_consensus_like(script, options)
                   : run_chaos_consensus(script, options);
      break;
    case ScriptProtocol::kKing:
      result = run_consensus_like(script, options);
      break;
    case ScriptProtocol::kTotalOrder:
      result = run_chaos_totalorder(script, options);
      break;
    case ScriptProtocol::kRb: {
      const auto run = run_reliable_broadcast(script.config, script.inputs.front(),
                                              script.byz_source,
                                              std::min<Round>(script.max_rounds, 60),
                                              script.rb_backend);
      result.rounds = run.rounds;
      result.messages = run.messages;
      if (wants(script, Expectation::kAcceptance)) {
        check(result, Expectation::kAcceptance, run.accepted_count == script.config.n_correct,
              "all correct nodes accepted");
      }
      if (wants(script, Expectation::kAgreement)) {
        check(result, Expectation::kAgreement, run.agreement && run.relay_ok,
              "acceptance uniform within one round");
      }
      break;
    }
    case ScriptProtocol::kApprox: {
      const auto run = run_approx_agreement(script.config, script.inputs, script.iterations);
      result.rounds = run.rounds;
      result.messages = run.messages;
      if (wants(script, Expectation::kWithinRange)) {
        check(result, Expectation::kWithinRange, run.within_input_range,
              "outputs inside correct input range");
      }
      if (wants(script, Expectation::kContraction)) {
        const bool contracted =
            run.input_range == 0.0 || run.output_range <= run.input_range / 2.0 + 1e-12;
        check(result, Expectation::kContraction, contracted, "range at least halved");
      }
      break;
    }
    case ScriptProtocol::kRotor: {
      const auto run = run_rotor(script.config, script.max_rounds);
      result.rounds = run.rounds;
      result.messages = run.messages;
      if (wants(script, Expectation::kTermination)) {
        check(result, Expectation::kTermination, run.all_terminated, "rotor terminated");
      }
      if (wants(script, Expectation::kGoodRound)) {
        check(result, Expectation::kGoodRound,
              run.good_round_witnessed && run.good_opinion_accepted,
              "common correct coordinator witnessed and its opinion accepted");
      }
      break;
    }
    case ScriptProtocol::kRenaming: {
      const Scenario scenario = make_scenario(script.config);
      SyncSimulator sim;
      auto factory = [](NodeId id, std::size_t) { return std::make_unique<RenamingProcess>(id); };
      populate(sim, scenario, factory);
      const bool done = sim.run_until_all_correct_done(script.max_rounds);
      result.rounds = sim.round();
      result.messages = sim.metrics().messages.total_delivered();
      bool consistent = done;
      std::optional<std::set<NodeId>> reference;
      for (NodeId id : scenario.correct_ids) {
        auto* p = sim.get<RenamingProcess>(id);
        if (p == nullptr || !p->done()) {
          consistent = false;
          continue;
        }
        if (!reference.has_value()) reference = p->id_set();
        consistent = consistent && p->id_set() == *reference;
      }
      if (wants(script, Expectation::kTermination)) {
        check(result, Expectation::kTermination, done, "all renamed");
      }
      if (wants(script, Expectation::kAgreement)) {
        check(result, Expectation::kAgreement, consistent, "identical id sets");
      }
      break;
    }
  }

  std::ostringstream summary;
  summary << to_string(script.protocol) << " n=" << script.config.n_correct << "+"
          << script.config.n_byzantine << " seed=" << script.config.seed
          << " rounds=" << result.rounds << " msgs=" << result.messages << " — "
          << (result.all_satisfied ? "OK" : "EXPECTATION FAILED");
  result.summary = summary.str();
  return result;
}

}  // namespace idonly
