// Scenario script DSL: a tiny line-oriented language describing a run —
// protocol, sizes, adversary, seed, expectations — so experiments and bug
// reports are a text file instead of a C++ program.
//
//   # seven nodes, two two-faced Byzantine, mixed inputs
//   protocol consensus
//   nodes 7
//   inputs 0,1
//   byzantine 2 twofaced
//   seed 42
//   max-rounds 200
//   expect termination
//   expect agreement
//   expect validity
//
// Keywords:
//   protocol  consensus | king | rb | approx | rotor | renaming | totalorder
//   nodes     <count of correct nodes>
//   inputs    <comma-separated reals, cycled over nodes>   (consensus/king/approx)
//   byzantine <count> <adversary-name>[,<adversary-name>…] (mix round-robins)
//   seed, max-rounds, iterations, crash-round              (numbers)
//   byz-source                                             (rb: Byzantine sender)
//   rb        alg1 | imbs                                  (rb: backend; default alg1)
//   chaos     <first>-<last> <fault>=<spec> ...            (one phase per line)
//   churn     <round> join=<count> | leave=<index>         (one event per line)
//   liveness  <round budget>  (bounded-termination probe, chaos consensus)
//   expect    termination | agreement | validity | acceptance | good-round |
//             within-range | contraction | no-violations
//
// A `chaos` line declares one ChaosSchedule phase (common/chaos.hpp) active
// over the inclusive round window. Fault specs:
//   drop=<p>           phase-wide loss probability
//   dup=<p>            duplication probability
//   corrupt=<p>        one-byte corruption probability (trace-only in sims)
//   delay=<p>:<max>    jitter — probability and max extra rounds
//   partition=<a>-<b>  bidirectional partition: sorted all_ids[a..b] vs rest
//   crash=<i>:<f>-<l>  crash window — all_ids[i] is down rounds f..l
// Node references are INDICES into the scenario's sorted id list (ids are
// seed-derived, so scripts cannot name them directly); the runner
// materialises the plan once the scenario ids exist. Chaos lines are
// accepted for the consensus and totalorder protocols.
//
// A `churn` line declares one membership event. `join=<count>` adds count
// fresh correct processes before the given round executes (seed-derived
// sparse ids, inputs cycled off the script's input list); `leave=<index>`
// removes the index-th node of the sorted CORRECT id list before that round.
// Late joiners run the protocol but are excluded from expectations (the
// paper's guarantees quantify over initial participants; a joiner is load
// and membership pressure). A departed node is likewise dropped from the
// termination/agreement checks from its leave round on — a correct leave is
// a crash, so the generator budgets leaves against the n > 3f bound. Churn
// lines are accepted for the consensus and totalorder protocols.
//
// `liveness <budget>` arms the InvariantMonitor's bounded-termination probe
// (chaos/churn consensus runs): if no tracked correct node decides within
// `budget` rounds the run records a liveness violation — fuzz campaigns
// catch wedges, not just safety breaks.
//
// parse() reports errors with line numbers; run() executes and evaluates
// every expectation.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "common/chaos.hpp"
#include "common/trace.hpp"
#include "core/rb_backend.hpp"
#include "harness/scenario.hpp"

namespace idonly {

enum class ScriptProtocol { kConsensus, kKing, kRb, kApprox, kRotor, kRenaming, kTotalOrder };

enum class Expectation {
  kTermination,
  kAgreement,
  kValidity,
  kAcceptance,
  kGoodRound,
  kWithinRange,
  kContraction,
  kNoViolations,
};

[[nodiscard]] std::string to_string(ScriptProtocol protocol);
[[nodiscard]] std::string to_string(Expectation expectation);

/// One parsed `chaos` line. Node references are indices into the sorted
/// all_ids list; materialize_chaos_plan turns them into concrete NodeIds.
struct ChaosPhaseSpec {
  Round first_round = 1;
  Round last_round = 1;
  double drop = 0.0;
  double duplicate = 0.0;
  double corrupt = 0.0;
  double delay_probability = 0.0;
  Round delay_max_extra = 1;
  /// ids[first..second] (inclusive) form one partition side, the rest the other.
  std::optional<std::pair<std::size_t, std::size_t>> partition;
  struct CrashSpec {
    std::size_t index = 0;
    Round first = 1;
    Round last = 1;

    friend bool operator==(const CrashSpec&, const CrashSpec&) = default;
  };
  std::vector<CrashSpec> crashes;

  friend bool operator==(const ChaosPhaseSpec&, const ChaosPhaseSpec&) = default;
};

/// One parsed `churn` line: a membership event applied before `round`
/// executes. Exactly one of join_count / leave_index is meaningful.
struct ChurnEventSpec {
  Round round = 1;
  bool is_join = false;
  std::size_t join_count = 0;   ///< joins: number of fresh correct processes
  std::size_t leave_index = 0;  ///< leaves: index into the sorted correct ids

  friend bool operator==(const ChurnEventSpec&, const ChurnEventSpec&) = default;
};

struct ScenarioScript {
  ScriptProtocol protocol = ScriptProtocol::kConsensus;
  ScenarioConfig config;
  std::vector<double> inputs{0.0, 1.0};
  int iterations = 1;
  bool byz_source = false;
  /// rb protocol only: which reliable-broadcast state machine to run
  /// (core/rb_backend.hpp). kImbs needs n > 5f for its guarantees.
  RbBackendKind rb_backend = RbBackendKind::kAlg1;
  Round max_rounds = 500;
  /// Bounded-termination probe budget; 0 = probe off.
  Round liveness_budget = 0;
  std::vector<ChaosPhaseSpec> chaos_phases;
  std::vector<ChurnEventSpec> churn_events;
  std::vector<Expectation> expectations;

  friend bool operator==(const ScenarioScript&, const ScenarioScript&) = default;
};

/// Resolve index-based phase specs against the scenario's sorted id list.
/// Throws std::invalid_argument when an index is out of range.
[[nodiscard]] ChaosPlan materialize_chaos_plan(const std::vector<ChaosPhaseSpec>& specs,
                                               const std::vector<NodeId>& all_ids);

/// Membership churn during a manual round loop. Joins draw fresh sparse ids
/// from a seed-derived stream; leaves resolve indices against the INITIAL
/// sorted correct id list. tracked() is the set expectations quantify over:
/// the initial correct ids minus departures. Late joiners run the protocol
/// but carry no obligations (the paper's guarantees quantify over initial
/// participants; a joiner is load and membership pressure).
///
/// The id stream and tracked() evolution depend only on (script, scenario),
/// never on the engine — the distributed shard engine runs one ChurnDriver
/// per worker and every worker sees identical joiner ids and tracked sets.
class ChurnDriver {
 public:
  using JoinerFactory = std::function<std::unique_ptr<Process>(NodeId, std::size_t)>;
  using AddFn = std::function<void(std::unique_ptr<Process>)>;
  using RemoveFn = std::function<void(NodeId)>;

  ChurnDriver(const ScenarioScript& script, const Scenario& scenario);

  /// Apply every event scheduled for `round` (the round about to execute)
  /// through engine-agnostic callbacks. The joiner factory is invoked for
  /// EVERY join — a caller that does not own the joiner discards the
  /// process, keeping the id stream and joiner indices aligned everywhere.
  void apply(Round round, const JoinerFactory& make_joiner, const AddFn& add,
             const RemoveFn& remove);
  /// Convenience overload targeting a SyncSimulator.
  void apply(SyncSimulator& sim, Round round, const JoinerFactory& make_joiner);

  [[nodiscard]] const std::vector<NodeId>& tracked() const { return tracked_; }

 private:
  std::vector<ChurnEventSpec> events_;
  std::vector<NodeId> initial_correct_;
  std::vector<NodeId> tracked_;
  Rng rng_;
  NodeId next_id_ = 0;
  std::size_t joiners_ = 0;
};

struct ParseError {
  int line = 0;
  std::string message;
};

/// Parse the DSL; on failure returns the first error.
[[nodiscard]] std::variant<ScenarioScript, ParseError> parse_script(const std::string& text);

struct ExpectationOutcome {
  Expectation expectation;
  bool satisfied = false;
  std::string detail;
};

struct ScriptRun {
  bool all_satisfied = true;
  std::vector<ExpectationOutcome> outcomes;
  Round rounds = 0;
  std::uint64_t messages = 0;
  std::string summary;  ///< human-readable result line
  /// Chaos runs only: injected-fault accounting and observed safety
  /// violations (empty when the run was clean / chaos-free).
  std::string chaos_summary;
  std::vector<std::string> violations;
  /// Prometheus-style snapshot of the run's metrics counters. Filled by the
  /// runs that own their simulator (consensus/king/totalorder, chaos or
  /// not); empty for the protocols routed through the one-call harness.
  std::string metrics_exposition;
};

/// Optional instrumentation for run_script.
struct ScriptOptions {
  /// Flight recorder (common/trace.hpp) wired through the run's engine:
  /// sends, deliveries, link verdicts (chaos runs), and protocol events are
  /// captured for the runs that own their simulator — the same set that
  /// fills ScriptRun::metrics_exposition.
  std::shared_ptr<TraceRecorder> recorder;
  /// Worker threads for the round engine (net/parallel_exec.hpp). Applies
  /// to the runs that own their simulator; results — including the trace —
  /// are bit-identical for every value, so this is purely a speed knob.
  unsigned threads = 1;
};

/// Execute a parsed script and evaluate its expectations.
[[nodiscard]] ScriptRun run_script(const ScenarioScript& script);
[[nodiscard]] ScriptRun run_script(const ScenarioScript& script, const ScriptOptions& options);

}  // namespace idonly
