// Scenario script DSL: a tiny line-oriented language describing a run —
// protocol, sizes, adversary, seed, expectations — so experiments and bug
// reports are a text file instead of a C++ program.
//
//   # seven nodes, two two-faced Byzantine, mixed inputs
//   protocol consensus
//   nodes 7
//   inputs 0,1
//   byzantine 2 twofaced
//   seed 42
//   max-rounds 200
//   expect termination
//   expect agreement
//   expect validity
//
// Keywords:
//   protocol  consensus | king | rb | approx | rotor | renaming
//   nodes     <count of correct nodes>
//   inputs    <comma-separated reals, cycled over nodes>   (consensus/king/approx)
//   byzantine <count> <adversary-name>[,<adversary-name>…] (mix round-robins)
//   seed, max-rounds, iterations, crash-round              (numbers)
//   byz-source                                             (rb: Byzantine sender)
//   expect    termination | agreement | validity | acceptance | good-round |
//             within-range | contraction
//
// parse() reports errors with line numbers; run() executes and evaluates
// every expectation.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "harness/scenario.hpp"

namespace idonly {

enum class ScriptProtocol { kConsensus, kKing, kRb, kApprox, kRotor, kRenaming };

enum class Expectation {
  kTermination,
  kAgreement,
  kValidity,
  kAcceptance,
  kGoodRound,
  kWithinRange,
  kContraction,
};

[[nodiscard]] std::string to_string(ScriptProtocol protocol);
[[nodiscard]] std::string to_string(Expectation expectation);

struct ScenarioScript {
  ScriptProtocol protocol = ScriptProtocol::kConsensus;
  ScenarioConfig config;
  std::vector<double> inputs{0.0, 1.0};
  int iterations = 1;
  bool byz_source = false;
  Round max_rounds = 500;
  std::vector<Expectation> expectations;
};

struct ParseError {
  int line = 0;
  std::string message;
};

/// Parse the DSL; on failure returns the first error.
[[nodiscard]] std::variant<ScenarioScript, ParseError> parse_script(const std::string& text);

struct ExpectationOutcome {
  Expectation expectation;
  bool satisfied = false;
  std::string detail;
};

struct ScriptRun {
  bool all_satisfied = true;
  std::vector<ExpectationOutcome> outcomes;
  Round rounds = 0;
  std::uint64_t messages = 0;
  std::string summary;  ///< human-readable result line
};

/// Execute a parsed script and evaluate its expectations.
[[nodiscard]] ScriptRun run_script(const ScenarioScript& script);

}  // namespace idonly
