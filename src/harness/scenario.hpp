// Scenario construction shared by tests, benchmarks, and examples.
//
// A scenario fixes: the correct/Byzantine split, sparse non-consecutive node
// ids (the id-only model never grants consecutive ids, so neither do we),
// the adversary strategy, and the randomness seed. Everything downstream is
// deterministic in (config, seed).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "adversary/strategies.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/process.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {

enum class AdversaryKind {
  kNone,         ///< n_byzantine ignored — all-correct run
  kSilent,       ///< never announces itself
  kCrash,        ///< correct behaviour, then silence mid-protocol
  kTwoFaced,     ///< split-brain equivocation (strongest generic attack)
  kNoise,        ///< random well-formed garbage
  kForgedEcho,   ///< reliable-broadcast forgery attempt
  kRotorStuffer, ///< fake-candidate drip against the rotor
  kVoteSplit,    ///< consensus quorum splitting
  kExtreme,      ///< approximate-agreement range pulling
  kEchoChamber,  ///< per-target opinion mirroring (breaks consensus at n = 3f)
  kReplay,       ///< re-broadcasts stale traffic a few rounds late
};

[[nodiscard]] std::string to_string(AdversaryKind kind);

/// All adversary kinds, for parameterized property sweeps.
[[nodiscard]] const std::vector<AdversaryKind>& all_adversaries();

struct ScenarioConfig {
  std::size_t n_correct = 7;
  std::size_t n_byzantine = 2;
  AdversaryKind adversary = AdversaryKind::kSilent;
  /// When non-empty, overrides `adversary`: Byzantine node i runs
  /// adversary_mix[i % size()] — heterogeneous attacks in one run.
  std::vector<AdversaryKind> adversary_mix;
  std::uint64_t seed = 1;
  /// Crash round for kCrash adversaries (local round at which they go mute).
  Round crash_round = 5;

  friend bool operator==(const ScenarioConfig&, const ScenarioConfig&) = default;
};

struct Scenario {
  ScenarioConfig config;
  std::vector<NodeId> correct_ids;    ///< sorted, sparse
  std::vector<NodeId> byzantine_ids;  ///< sorted, sparse, disjoint from correct
  [[nodiscard]] std::vector<NodeId> all_ids() const;
  [[nodiscard]] AdversaryContext context() const;
  [[nodiscard]] std::size_t n() const { return correct_ids.size() + byzantine_ids.size(); }
};

/// Deterministically draw sparse distinct ids and split them.
[[nodiscard]] Scenario make_scenario(const ScenarioConfig& config);

/// Factory producing the correct-protocol process for a node; `index` is the
/// node's position among correct nodes (handy for assigning inputs).
using CorrectFactory = std::function<std::unique_ptr<Process>(NodeId id, std::size_t index)>;

/// Build one adversary instance of the given kind. For kCrash and kTwoFaced
/// the adversary wraps instances produced by `correct_factory` (fed
/// adversarial inputs via distinct indices beyond the correct range).
[[nodiscard]] std::unique_ptr<Process> make_adversary(const Scenario& scenario,
                                                      AdversaryKind kind, NodeId id,
                                                      std::size_t byz_index, Rng& rng,
                                                      const CorrectFactory& correct_factory);

/// Kind assigned to Byzantine node `byz_index` under this config (respects
/// adversary_mix).
[[nodiscard]] AdversaryKind adversary_kind_for(const ScenarioConfig& config,
                                               std::size_t byz_index);

/// Construct EVERY process of the scenario — correct processes from the
/// factory, adversaries per the config — in the canonical deterministic
/// order, handing each to `sink`. Callers that only want a subset (a shard
/// worker owns a slice of the id space) must still let every process be
/// constructed and discard the rest: the adversaries draw from one shared
/// seed-derived Rng stream, so skipping construction would shift every
/// later adversary's randomness.
using ProcessSink = std::function<void(std::unique_ptr<Process>)>;
void build_processes(const Scenario& scenario, const CorrectFactory& correct_factory,
                     const ProcessSink& sink);

/// Populate a simulator with the full scenario: correct processes from the
/// factory plus adversaries per the config.
void populate(SyncSimulator& sim, const Scenario& scenario,
              const CorrectFactory& correct_factory);

}  // namespace idonly
