// One-call experiment runners: build the scenario, run the protocol to
// completion, and return a structured result with the properties the paper
// claims. Tests assert on these; benchmarks time/print them.
#pragma once

#include <optional>
#include <vector>

#include "common/metrics.hpp"
#include "common/types.hpp"
#include "common/value.hpp"
#include "core/rb_backend.hpp"
#include "core/rotor_coordinator.hpp"
#include "core/parallel_consensus.hpp"
#include "harness/scenario.hpp"

namespace idonly {

// -------------------------------------------------------------- consensus --
struct ConsensusRun {
  bool all_decided = false;
  bool agreement = false;   ///< all correct outputs equal
  bool validity = false;    ///< common output is some correct node's input
  std::vector<Value> outputs;          ///< per correct node, decision order of correct_ids
  std::int64_t max_decision_phase = 0; ///< slowest correct node's phase
  Round rounds = 0;
  std::uint64_t messages = 0;
};

/// Inputs are assigned per correct-node index: inputs[i % inputs.size()].
/// Adversary faces (crash/two-faced inner protocols) draw alternating 0/1.
[[nodiscard]] ConsensusRun run_consensus(const ScenarioConfig& config,
                                         const std::vector<double>& inputs,
                                         Round max_rounds = 2000);

// ----------------------------------------------------- reliable broadcast --
struct ReliableBroadcastRun {
  bool source_correct = false;
  std::size_t accepted_count = 0;       ///< correct nodes that accepted
  bool agreement = false;               ///< all acceptors agree on payload
  bool relay_ok = false;                ///< accept rounds within 1 of each other
  std::optional<Round> first_accept_round;
  std::optional<Round> last_accept_round;
  Round rounds = 0;
  std::uint64_t messages = 0;
  FanoutCounters fanout;                ///< engine fan-out/coalescing counters
};

/// When `byzantine_source` is true the designated source is the first
/// Byzantine id (it behaves per the scenario's adversary kind). `backend`
/// selects the RB state machine (core/rb_backend.hpp) — note kImbs needs
/// n > 5f for its guarantees.
[[nodiscard]] ReliableBroadcastRun run_reliable_broadcast(
    const ScenarioConfig& config, double payload, bool byzantine_source = false,
    Round run_rounds = 30, RbBackendKind backend = RbBackendKind::kAlg1);

// ---------------------------------------------------- approximate agreement --
struct ApproxRun {
  double input_range = 0;   ///< max - min over correct inputs
  double output_range = 0;  ///< max - min over correct outputs
  bool within_input_range = false;
  std::vector<double> range_per_iteration;  ///< range after each iteration
  Round rounds = 0;
  std::uint64_t messages = 0;
};

[[nodiscard]] ApproxRun run_approx_agreement(const ScenarioConfig& config,
                                             const std::vector<double>& inputs,
                                             int iterations = 1);

/// Classical known-f baseline on the same inputs (no Byzantine strategies
/// beyond value-reporting — the baseline assumes known membership).
[[nodiscard]] ApproxRun run_known_f_approx(std::size_t n_correct, std::size_t f,
                                           const std::vector<double>& inputs, int iterations,
                                           std::uint64_t seed);

// -------------------------------------------------------------------- rotor --
struct RotorRun {
  bool all_terminated = false;
  Round max_termination_round = 0;       ///< slowest correct node (local rounds)
  bool good_round_witnessed = false;     ///< Theorem 2's guarantee
  std::optional<std::int64_t> first_good_round;
  bool good_opinion_accepted = false;    ///< everyone accepted the good coordinator's opinion
  Round rounds = 0;
  std::uint64_t messages = 0;
};

[[nodiscard]] RotorRun run_rotor(const ScenarioConfig& config, Round max_rounds = 500);

// -------------------------------------------------------- parallel consensus --
struct ParallelRun {
  bool all_terminated = false;
  bool agreement = false;  ///< identical output sets at all correct nodes
  std::vector<OutputPair> common_output;  ///< the agreed set (valid if agreement)
  Round rounds = 0;
  std::uint64_t messages = 0;
};

/// `inputs_per_node[i]` are node i's input pairs (i over correct nodes).
[[nodiscard]] ParallelRun run_parallel_consensus(
    const ScenarioConfig& config, const std::vector<std::vector<InputPair>>& inputs_per_node,
    Round max_rounds = 2000);

}  // namespace idonly
