#include "fuzz/scn_writer.hpp"

#include <cstdio>
#include <sstream>
#include <string>
#include <variant>

namespace idonly {

std::string format_double(double value) {
  char buffer[64];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof(buffer), "%.*g", precision, value);
    try {
      if (std::stod(buffer) == value) return buffer;
    } catch (...) {
      break;  // inf/nan cannot round-trip through the parser anyway
    }
  }
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string write_script(const ScenarioScript& script) {
  std::ostringstream os;
  os << "protocol " << to_string(script.protocol) << "\n";
  os << "nodes " << script.config.n_correct << "\n";
  os << "inputs ";
  for (std::size_t i = 0; i < script.inputs.size(); ++i) {
    if (i > 0) os << ",";
    os << format_double(script.inputs[i]);
  }
  os << "\n";
  // The byzantine line carries both the count and the mix; parsing it sets
  // `adversary` to the mix's front, so a script with a count or mix needs
  // the line even when the count is zero.
  if (script.config.n_byzantine > 0 || !script.config.adversary_mix.empty()) {
    os << "byzantine " << script.config.n_byzantine << " ";
    if (script.config.adversary_mix.empty()) {
      os << to_string(script.config.adversary);
    } else {
      for (std::size_t i = 0; i < script.config.adversary_mix.size(); ++i) {
        if (i > 0) os << ",";
        os << to_string(script.config.adversary_mix[i]);
      }
    }
    os << "\n";
  }
  os << "seed " << script.config.seed << "\n";
  os << "max-rounds " << script.max_rounds << "\n";
  os << "iterations " << script.iterations << "\n";
  os << "crash-round " << script.config.crash_round << "\n";
  if (script.liveness_budget > 0) os << "liveness " << script.liveness_budget << "\n";
  if (script.byz_source) os << "byz-source\n";
  // Default-backend scripts omit the line so the shipped corpus stays stable.
  if (script.rb_backend != RbBackendKind::kAlg1) {
    os << "rb " << to_string(script.rb_backend) << "\n";
  }
  for (const ChaosPhaseSpec& phase : script.chaos_phases) {
    os << "chaos " << phase.first_round << "-" << phase.last_round;
    bool any_fault = false;
    if (phase.drop != 0.0) {
      os << " drop=" << format_double(phase.drop);
      any_fault = true;
    }
    if (phase.duplicate != 0.0) {
      os << " dup=" << format_double(phase.duplicate);
      any_fault = true;
    }
    if (phase.corrupt != 0.0) {
      os << " corrupt=" << format_double(phase.corrupt);
      any_fault = true;
    }
    if (phase.delay_probability != 0.0 || phase.delay_max_extra != 1) {
      os << " delay=" << format_double(phase.delay_probability) << ":" << phase.delay_max_extra;
      any_fault = true;
    }
    if (phase.partition.has_value()) {
      os << " partition=" << phase.partition->first << "-" << phase.partition->second;
      any_fault = true;
    }
    for (const ChaosPhaseSpec::CrashSpec& crash : phase.crashes) {
      os << " crash=" << crash.index << ":" << crash.first << "-" << crash.last;
      any_fault = true;
    }
    // The parser rejects a fault-free phase; an all-defaults spec is
    // expressible as an explicit zero-probability drop.
    if (!any_fault) os << " drop=0";
    os << "\n";
  }
  for (const ChurnEventSpec& event : script.churn_events) {
    os << "churn " << event.round << " ";
    if (event.is_join) {
      os << "join=" << event.join_count;
    } else {
      os << "leave=" << event.leave_index;
    }
    os << "\n";
  }
  for (Expectation expectation : script.expectations) {
    os << "expect " << to_string(expectation) << "\n";
  }
  return os.str();
}

bool round_trips(const ScenarioScript& script) {
  const auto reparsed = parse_script(write_script(script));
  const auto* parsed = std::get_if<ScenarioScript>(&reparsed);
  return parsed != nullptr && *parsed == script;
}

}  // namespace idonly
