// Fuzz campaigns: thousands of generated scenarios under the invariant
// monitor, with deterministic accounting and repro bundles.
//
// A campaign is a contiguous seed range [base_seed, base_seed + scenarios):
// each seed is expanded by the ScenarioGenerator, executed via run_script
// (which wires the InvariantMonitor and the bounded-termination probe), and
// classified. Execution fans out over a ParallelExecutor worker pool, but
// results are committed in seed order and every run is single-threaded and
// seed-deterministic, so the report — counters, failure list, minimized
// scripts — is byte-identical for any --jobs value.
//
// Verdict policy: a failure in a RESILIENT scenario (n > 3f) makes the
// campaign red. Past-boundary probes (n = 3f) are the control group — their
// violations are counted (boundary_violations) and still minimized/bundled,
// because a minimized boundary repro is the paper's impossibility argument
// made executable, but they never fail the campaign.
//
// On failure, when minimization is enabled, the failing script is shrunk by
// the delta-debugging minimizer, and when an output directory is set a repro
// bundle is written for CI to upload:
//   <out>/seed-<seed>/original.scn   the generated scenario as fuzzed
//   <out>/seed-<seed>/minimized.scn  the shrunk still-failing scenario
//   <out>/seed-<seed>/trace.jsonl    canonical flight recording of the repro
//   <out>/seed-<seed>/report.txt     seed, signature, violations, and the
//                                    threads-1-vs-2 trace diff (first
//                                    divergent (node, round, seq) if the
//                                    determinism contract ever breaks)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/minimizer.hpp"

namespace idonly {

struct CampaignOptions {
  std::size_t scenarios = 500;
  std::uint64_t base_seed = 1;
  /// Worker pool size (total, including the caller). Purely a speed knob.
  unsigned jobs = 1;
  bool minimize = true;
  /// Repro-bundle directory; empty disables bundle writing.
  std::string bundle_dir;
  GeneratorOptions generator;
  MinimizerOptions minimizer;
};

/// One failing scenario, fully reproducible from `seed` alone.
struct CampaignFailure {
  std::uint64_t seed = 0;
  bool past_boundary = false;
  bool generator_error = false;  ///< generate/run threw instead of failing
  FailureSignature signature;
  std::string summary;          ///< the run's one-line summary (or the error)
  std::string first_violation;  ///< first invariant violation, "" if none
  std::string scenario_text;    ///< the generated .scn
  std::string minimized_text;   ///< shrunk .scn ("" when minimization is off)
  std::size_t minimize_attempts = 0;
  std::string bundle_path;      ///< where the repro bundle went ("" if none)
};

struct CampaignReport {
  CampaignCounters counters;
  /// Seed-ordered; includes past-boundary probes (flagged, non-fatal).
  std::vector<CampaignFailure> failures;
  /// False iff a resilient scenario failed or a generator error occurred.
  bool ok = true;

  [[nodiscard]] std::string summary() const { return counters.summary(); }
};

/// Write `failure`'s repro bundle under `dir` (created if missing); returns
/// the bundle directory. Replays the minimized (else original) script twice
/// — threads 1 and 2 — records the canonical trace, and embeds the
/// check/trace_diff verdict in report.txt. Throws std::runtime_error on I/O
/// failure.
[[nodiscard]] std::string write_repro_bundle(const CampaignFailure& failure,
                                             const std::string& dir);

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignOptions options);

  /// Execute the campaign. Deterministic for fixed (options, seed range).
  [[nodiscard]] CampaignReport run() const;

  [[nodiscard]] const CampaignOptions& options() const noexcept { return options_; }

 private:
  CampaignOptions options_;
};

}  // namespace idonly
