// Automatic failure minimization for scenario scripts.
//
// A fuzz campaign that finds a violation in a 20-node, 3-phase, 4-churn
// scenario has found a needle wrapped in hay. The minimizer runs greedy
// delta debugging over the SCRIPT, not the trace: each pass proposes a
// structurally smaller candidate, re-runs it, and keeps the reduction only
// when the candidate still fails the same way (same failure class —
// invariant violation, expectation failure — and, for violations, the same
// violated invariant: agreement, validity, or liveness).
//
// Pass order (documented in DESIGN.md §9; each pass loops to fixpoint
// before the next, and the whole schedule repeats until no pass improves):
//   1. drop whole chaos phases
//   2. drop churn events
//   3. reduce n and f (halve correct nodes, then decrement; decrement
//      Byzantine count; shrink the adversary mix)
//   4. simplify surviving chaos phases (drop individual faults, shrink
//      round windows, drop crash windows)
//   5. shorten the round budget (halve max-rounds toward the failure)
//   6. shrink the input list
//
// Candidates that fail to build (e.g. a partition index no longer in
// range) or fail differently are rejected, and so are candidates that
// change the RESILIENCE CLASS: a resilient (n > 3f) failure must not shrink
// across the wall into a past-boundary config — same symptom, different
// cause (the impossibility result, not the bug being chased). Every
// accepted candidate is checked to round-trip through the DSL writer so the
// final artifact is guaranteed replayable via `scenario_sim <minimized.scn>`.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "harness/script.hpp"

namespace idonly {

/// How a script run failed. Ordered by triage severity.
enum class FailureClass {
  kNone,                ///< all expectations held, no violations
  kExpectationFailure,  ///< an expectation failed but no invariant tripped
  kViolation,           ///< the invariant monitor (or chain check) tripped
};

/// Failure fingerprint used to decide "still fails the same way".
struct FailureSignature {
  FailureClass cls = FailureClass::kNone;
  /// For kViolation: which invariant family tripped first — "agreement",
  /// "validity", "liveness", or "chain" (totalorder prefix).
  std::string invariant;

  friend bool operator==(const FailureSignature&, const FailureSignature&) = default;
};

/// Classify a finished run. Exposed for the campaign runner's triage.
[[nodiscard]] FailureSignature classify_failure(const ScriptRun& run);

struct MinimizeResult {
  ScenarioScript script;            ///< the smallest still-failing script
  std::string text;                 ///< write_script(script)
  FailureSignature signature;       ///< failure class preserved throughout
  ScriptRun final_run;              ///< the minimized script's run
  std::size_t attempts = 0;         ///< candidate runs executed
  std::size_t improvements = 0;     ///< candidates accepted
};

struct MinimizerOptions {
  /// Hard cap on candidate executions (each is a full protocol run).
  std::size_t max_attempts = 600;
};

class ScenarioMinimizer {
 public:
  explicit ScenarioMinimizer(MinimizerOptions options = {}) : options_(options) {}

  /// Shrink `failing`, which must actually fail when run (throws
  /// std::invalid_argument otherwise).
  [[nodiscard]] MinimizeResult minimize(const ScenarioScript& failing) const;

 private:
  MinimizerOptions options_;
};

}  // namespace idonly
