// Scenario-script DSL writer: the inverse of harness/script.cpp's parser.
//
// The fuzz generator composes scenarios as ScenarioScript values, but the
// repro artifact users care about is a `.scn` FILE — something scenario_sim
// can replay standalone and a bug report can quote. write_script() renders a
// script as DSL text with the round-trip contract
//
//     parse_script(write_script(s)) == s
//
// for every script the parser itself can produce (checked for all shipped
// scenarios by the golden test, and for every generated scenario at
// generation time). Doubles are printed with the shortest representation
// that parses back to the identical bit pattern, so probabilities and
// inputs survive arbitrarily many parse/write cycles byte-for-byte.
#pragma once

#include <string>

#include "harness/script.hpp"

namespace idonly {

/// Render `script` as scenario-DSL text (trailing newline included).
[[nodiscard]] std::string write_script(const ScenarioScript& script);

/// Shortest decimal rendering of `value` that std::stod parses back to the
/// identical double. Exposed for tests.
[[nodiscard]] std::string format_double(double value);

/// parse(write(script)) == script. Returns false when the writer cannot
/// round-trip `script` (a writer/parser drift bug — the golden test and the
/// generator both assert on it).
[[nodiscard]] bool round_trips(const ScenarioScript& script);

}  // namespace idonly
