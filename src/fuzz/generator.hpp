// Seed-driven adversarial scenario generation.
//
// ROADMAP item 4: the eight hand-written `.scn` files exercise eight points
// in an enormous space — sizes × fault ratios × adversary mixes × churn
// patterns × chaos plans. The ScenarioGenerator composes, from a single
// 64-bit seed, a full adversarial scenario in that space and renders it as
// DSL text (fuzz/scn_writer.hpp) that round-trips through the parser, so
// every generated case is simultaneously a runnable experiment and a
// standalone repro file.
//
// Sampling policy (all draws flow from the seed via common/rng.hpp):
//   * n and f are drawn across the resilient region AND deliberately at its
//     edge: with `boundary_probability`, f is the maximum the paper
//     tolerates (n = 3f + 1); with `past_boundary_probability`, the config
//     is pushed to n = 3f — beyond the bound, where the guarantees are
//     EXPECTED to break ("Beyond One Third Byzantine Failures" motivates
//     probing the wall, not just the safe side).
//   * the adversary mix round-robins 1-3 kinds over the Byzantine nodes,
//     drawn from every AdversaryKind in the library.
//   * churn: leave events for consensus, join + leave for total order
//     ("Dynamic Byzantine Reliable Broadcast" motivates randomized
//     join/leave streams as the breaking workload). Correct leaves consume
//     fault budget — a departed correct node is a crash — so resilient
//     scenarios keep n > 3 * (f + leaves).
//   * chaos: up to `max_chaos_phases` phases of burst loss, duplication,
//     jitter, short partitions (strictly shorter than one 5-round consensus
//     phase, the recoverable regime established by E10), and crash-rejoin
//     windows; crash windows also consume fault budget.
//
// Resilient scenarios carry the full expectation set plus the bounded-
// termination probe; past-boundary probes carry the same expectations — the
// point is to OBSERVE the violation — but are flagged so campaigns can
// count them separately instead of going red.
#pragma once

#include <cstdint>
#include <string>

#include "harness/script.hpp"

namespace idonly {

struct GeneratorOptions {
  std::size_t min_nodes = 4;   ///< total nodes (correct + Byzantine), lower bound
  std::size_t max_nodes = 20;  ///< ... upper bound (inclusive)
  /// Probability that f is pushed to the resilience boundary (n = 3f + 1).
  double boundary_probability = 0.35;
  /// Probability of a deliberately non-resilient probe (n = 3f). 0 keeps
  /// every scenario inside the paper's assumption (the CI campaign mode).
  double past_boundary_probability = 0.0;
  /// Probability of generating a totalorder scenario instead of consensus.
  double totalorder_probability = 0.25;
  std::size_t max_chaos_phases = 3;
  std::size_t max_churn_events = 3;
};

struct GeneratedScenario {
  std::uint64_t seed = 0;      ///< the one number that reproduces everything
  ScenarioScript script;
  std::string text;            ///< write_script(script); parses back to `script`
  bool past_boundary = false;  ///< n <= 3f: violations are expected, not bugs
};

class ScenarioGenerator {
 public:
  explicit ScenarioGenerator(GeneratorOptions options = {});

  /// Compose the scenario `seed` denotes. Pure: the same seed always yields
  /// a byte-identical GeneratedScenario. Throws std::logic_error if the
  /// generated script fails to round-trip through the parser (a writer or
  /// generator bug, never a function of the seed).
  [[nodiscard]] GeneratedScenario generate(std::uint64_t seed) const;

  [[nodiscard]] const GeneratorOptions& options() const noexcept { return options_; }

 private:
  GeneratorOptions options_;
};

}  // namespace idonly
