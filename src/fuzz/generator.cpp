#include "fuzz/generator.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/rng.hpp"
#include "common/thresholds.hpp"
#include "fuzz/scn_writer.hpp"

namespace idonly {

namespace {

/// Fault-rate ceilings keeping RESILIENT scenarios inside the recoverable
/// regime established experimentally (EXPERIMENTS.md E10 and the shipped
/// chaos scenarios run drop=0.10 bursts): message loss is an omission fault
/// OUTSIDE the Byzantine budget, so sustained high drop legitimately breaks
/// agreement even at n > 3f — the ceilings keep generated faults inside
/// what the protocols recover from, and phases are non-overlapping so rates
/// never compound. Partitions must stay shorter than one 5-round consensus
/// phase (E10: 3-round cuts heal, 5-round cuts fork).
struct ChaosCeilings {
  double drop;
  double duplicate;
  double delay_probability;
  Round max_partition_rounds;
};

constexpr ChaosCeilings kConsensusCeilings{0.12, 0.30, 0.10, 3};
constexpr ChaosCeilings kTotalOrderCeilings{0.06, 0.30, 0.05, 0};

std::vector<double> draw_inputs(Rng& rng) {
  std::vector<double> inputs;
  const std::size_t count = 1 + rng.below(4);
  for (std::size_t i = 0; i < count; ++i) {
    inputs.push_back(rng.chance(0.6) ? static_cast<double>(rng.below(2))
                                     : rng.uniform(-10.0, 10.0));
  }
  return inputs;
}

std::vector<AdversaryKind> draw_mix(Rng& rng) {
  const auto& kinds = all_adversaries();
  std::vector<AdversaryKind> mix;
  const std::size_t count = 1 + rng.below(3);
  for (std::size_t i = 0; i < count; ++i) mix.push_back(kinds[rng.below(kinds.size())]);
  return mix;
}

}  // namespace

ScenarioGenerator::ScenarioGenerator(GeneratorOptions options) : options_(options) {
  if (options_.min_nodes < 4 || options_.max_nodes < options_.min_nodes ||
      options_.max_nodes > 10'000) {
    throw std::invalid_argument("ScenarioGenerator: need 4 <= min_nodes <= max_nodes <= 10000");
  }
}

GeneratedScenario ScenarioGenerator::generate(std::uint64_t seed) const {
  Rng rng(derive_seed(seed, 0xF5A9));
  GeneratedScenario out;
  out.seed = seed;
  ScenarioScript& script = out.script;
  script.config.seed = seed;
  script.config.adversary = AdversaryKind::kNone;
  script.config.n_byzantine = 0;

  const bool totalorder = rng.chance(options_.totalorder_probability);
  script.protocol = totalorder ? ScriptProtocol::kTotalOrder : ScriptProtocol::kConsensus;
  const ChaosCeilings& ceilings = totalorder ? kTotalOrderCeilings : kConsensusCeilings;

  std::size_t n =
      options_.min_nodes + rng.below(options_.max_nodes - options_.min_nodes + 1);
  std::size_t f = 0;
  // `budget` is how many additional CORRECT-node failures (leaves, crash
  // windows) the resiliency bound n > 3f leaves room for after the
  // Byzantine share is chosen; past-boundary probes get none — the
  // violation should be attributable to f alone.
  std::size_t budget = 0;
  out.past_boundary = rng.chance(options_.past_boundary_probability);
  if (out.past_boundary) {
    f = 1 + rng.below(std::max<std::size_t>(n / 3, 1));
    n = 3 * f;  // exactly AT the wall: n = 3f violates n > 3f
  } else {
    const std::size_t max_f = max_tolerated_faults(n);
    f = rng.chance(options_.boundary_probability) ? max_f
                                                  : rng.below(max_f + 1);
    // A correct node that leaves (or sits in a crash window) is a crash
    // fault; count the whole failure mix against one budget.
    budget = max_tolerated_faults(n) - f;
  }
  script.config.n_correct = n - f;
  script.config.n_byzantine = f;
  if (f > 0) {
    script.config.adversary_mix = draw_mix(rng);
    script.config.adversary = script.config.adversary_mix.front();
  }
  script.config.crash_round = 2 + rng.below(12);
  script.inputs = draw_inputs(rng);

  // --- chaos plan -----------------------------------------------------
  // Phases are laid out sequentially with quiet gaps, and no phase starts
  // before round 6: overlapping phases would compound their fault rates
  // past the ceilings, and ANY loss-like fault during the discovery rounds
  // (1-5) can split the participant view and break safety even far inside
  // the resilient region — both failure modes found by this very fuzzer.
  // Loss faults (drop/delay) additionally need fault slack to spare: an
  // omission is a fault, and at f = max_tolerated the quorums have no room
  // left — 5% drop forks the totalorder chain (n=7, f=2, votesplit) and a
  // 4% delay storm hands votesplit a validity break at n=5, f=1.
  const bool loss_ok = budget > 0;
  bool loss_drawn = false;
  Round last_faulty = 0;
  Round next_free_round = 6;
  const std::size_t phases = rng.below(options_.max_chaos_phases + 1);
  for (std::size_t p = 0; p < phases; ++p) {
    ChaosPhaseSpec phase;
    phase.first_round = next_free_round + rng.below(6);
    Round length = 1 + rng.below(8);
    bool any_fault = false;
    if (loss_ok && rng.chance(0.6)) {
      phase.drop = rng.uniform(0.02, ceilings.drop);
      any_fault = true;
      loss_drawn = true;
    }
    if (rng.chance(0.35)) {
      phase.duplicate = rng.uniform(0.05, ceilings.duplicate);
      any_fault = true;
    }
    if (rng.chance(0.25)) {
      phase.corrupt = rng.uniform(0.05, 0.20);
      any_fault = true;
    }
    if (loss_ok && rng.chance(0.3)) {
      // Delay is loss-like near a phase boundary (a message that arrives
      // after its round is as good as dropped), so drop and delay share ONE
      // loss ceiling per phase: 4.5% drop + 3% delay forked the totalorder
      // chain at n=19, f=4 even though each rate alone is recoverable.
      const double loss_left = ceilings.drop - phase.drop;
      if (loss_left >= 0.01) {
        phase.delay_probability =
            rng.uniform(0.01, std::min(ceilings.delay_probability, loss_left));
        phase.delay_max_extra = 1 + rng.below(2);
        any_fault = true;
        loss_drawn = true;
      }
    }
    if (ceilings.max_partition_rounds > 0 && budget > 0 && phase.first_round >= 6 &&
        rng.chance(0.25) && n >= 4) {
      // Short bidirectional partition: a cut node is omission-faulty for the
      // window, so the isolated side consumes fault budget node-for-node,
      // and the cut must land AFTER the discovery rounds — an early cut lets
      // the isolated side lock a smaller membership and decide alone (the
      // id-only failure mode this fuzzer found at rounds 2-5). The window
      // also stays shorter than one 5-round consensus phase (E10).
      const std::size_t side = 1 + rng.below(std::min(budget, n / 2 - 1));
      phase.partition = std::make_pair(std::size_t{0}, side - 1);
      budget -= side;
      length = std::min(length, ceilings.max_partition_rounds);
      any_fault = true;
    }
    if (!totalorder && budget > 0 && rng.chance(0.25)) {
      // Crash-rejoin window on one node; conservatively budgeted as a
      // correct-node crash even when the sorted index lands on an attacker.
      // Consensus-only: a totalorder member that goes silent and returns
      // votes from a stale view and forks its chain (leave events cover the
      // departure axis for the chain protocol instead). The window is capped
      // at 2 rounds: a 3+-round window aligned on a phase head swallows the
      // phase's broadcast+prefer rounds yet returns before the decide round,
      // and the rejoiner then decides from stale state — with any
      // value-injecting adversary present that breaks agreement (found at
      // n=19, f=1, crash rounds 8-10 of the phase spanning 8-12).
      ChaosPhaseSpec::CrashSpec crash;
      crash.index = rng.below(n);
      crash.first = phase.first_round;
      crash.last = phase.first_round + rng.below(2);
      phase.crashes.push_back(crash);
      budget -= 1;
      any_fault = true;
    }
    if (!any_fault) {
      if (loss_ok) {
        phase.drop = rng.uniform(0.02, ceilings.drop);
        loss_drawn = true;
      } else {
        phase.duplicate = rng.uniform(0.05, ceilings.duplicate);
      }
    }
    phase.last_round = phase.first_round + length - 1;
    next_free_round = phase.last_round + 1;
    last_faulty = std::max(last_faulty, phase.last_round);
    script.chaos_phases.push_back(phase);
  }

  // --- churn stream ---------------------------------------------------
  const std::size_t churn_events = rng.below(options_.max_churn_events + 1);
  std::vector<std::size_t> left;  // leave indices already spent
  for (std::size_t c = 0; c < churn_events; ++c) {
    ChurnEventSpec event;
    // Churn stays clear of the discovery rounds for the same reason chaos
    // does: a correct node departing mid-discovery splits the locked view.
    event.round = 6 + rng.below(15);
    const bool join = totalorder && rng.chance(0.5);
    if (join) {
      event.is_join = true;
      event.join_count = 1 + rng.below(2);
    } else {
      // A leave is a crash fault sharing the loss phases' slack budget, and
      // churn is drawn AFTER the phases: a leave that spends the LAST slack
      // unit would retroactively strand already-drawn loss faults at slack 0
      // (leave@7 + 3.4% drop forked the chain at n=4, f=0, budget 1 even
      // though each passes alone). Loss keeps one reserved unit.
      const std::size_t reserve = loss_drawn ? 1 : 0;
      if (budget <= reserve || left.size() >= script.config.n_correct) continue;
      std::size_t index = rng.below(script.config.n_correct);
      if (std::find(left.begin(), left.end(), index) != left.end()) continue;
      event.is_join = false;
      event.leave_index = index;
      left.push_back(index);
      budget -= 1;
    }
    script.churn_events.push_back(event);
  }

  // --- budgets and expectations ---------------------------------------
  if (totalorder) {
    // run_rounds has no early exit, so the budget is the run length. Chain
    // finalization slows with membership (empirically n=15 needs >40 rounds
    // even fault-free, and every joiner adds sync load), so the budget
    // scales with the member count; chaos additionally needs post-fault
    // quiet for the chain to re-converge.
    std::size_t members = n;
    for (const ChurnEventSpec& event : script.churn_events) {
      if (event.is_join) members += event.join_count;
    }
    script.max_rounds = std::max<Round>(30 + 2 * static_cast<Round>(members),
                                        last_faulty + 25);
    script.expectations = {Expectation::kTermination, Expectation::kAgreement,
                           Expectation::kNoViolations};
  } else {
    script.max_rounds = std::max<Round>(200, last_faulty + 120);
    script.liveness_budget = script.max_rounds;
    script.expectations = {Expectation::kTermination, Expectation::kAgreement};
    // STRONG validity (decide some correct node's input) is only on the
    // menu when the adversary cannot steer the coordinator-adoption step to
    // a foreign value: with f > 0 and split non-binary inputs, a Byzantine
    // coordinator phase can legitimately decide e.g. votesplit's 0
    // (EXPERIMENTS.md E11 — this fuzzer's first catch). Binary inputs keep
    // every injectable value inside the input set, so validity stays
    // checkable across the whole adversary sweep (E3's measured regime).
    const bool binary_inputs =
        std::all_of(script.inputs.begin(), script.inputs.end(),
                    [](double v) { return v == 0.0 || v == 1.0; });
    if (f == 0 || binary_inputs) script.expectations.push_back(Expectation::kValidity);
    script.expectations.push_back(Expectation::kNoViolations);
  }

  out.text = write_script(script);
  const auto reparsed = parse_script(out.text);
  const auto* parsed = std::get_if<ScenarioScript>(&reparsed);
  if (parsed == nullptr || !(*parsed == script)) {
    throw std::logic_error("generated scenario does not round-trip through the parser (seed " +
                           std::to_string(seed) + ")");
  }
  return out;
}

}  // namespace idonly
