#include "fuzz/minimizer.hpp"

#include <stdexcept>
#include <utility>

#include "common/thresholds.hpp"
#include "fuzz/scn_writer.hpp"

namespace idonly {

FailureSignature classify_failure(const ScriptRun& run) {
  FailureSignature signature;
  if (!run.violations.empty()) {
    signature.cls = FailureClass::kViolation;
    // The monitor's strings carry no uniform family prefix, so classify by
    // their fixed phrasing (common/invariants.cpp, harness/script.cpp).
    const std::string& first = run.violations.front();
    if (first.rfind("liveness:", 0) == 0) {
      signature.invariant = "liveness";
    } else if (first.find("chain") != std::string::npos) {
      signature.invariant = "chain";
    } else if (first.find("no correct node's input") != std::string::npos) {
      signature.invariant = "validity";
    } else {
      signature.invariant = "agreement";
    }
    return signature;
  }
  if (!run.all_satisfied) signature.cls = FailureClass::kExpectationFailure;
  return signature;
}

MinimizeResult ScenarioMinimizer::minimize(const ScenarioScript& failing) const {
  MinimizeResult result;
  result.script = failing;
  result.final_run = run_script(failing);
  result.signature = classify_failure(result.final_run);
  if (result.signature.cls == FailureClass::kNone) {
    throw std::invalid_argument("ScenarioMinimizer: the input script does not fail");
  }

  // A shrink that crosses the n > 3f wall trades the original bug for the
  // paper's impossibility result — same symptom, different cause. Freeze the
  // resilience class: candidates must stay on the input's side of the bound
  // (correct leaves count as crash faults, like the generator budgets them).
  auto is_resilient = [](const ScenarioScript& script) {
    std::size_t faults = script.config.n_byzantine;
    for (const ChurnEventSpec& event : script.churn_events) {
      if (!event.is_join) faults += 1;
    }
    return resilient(script.config.n_correct + script.config.n_byzantine, faults);
  };
  const bool keep_resilient = is_resilient(failing);

  auto budget_left = [&] { return result.attempts < options_.max_attempts; };

  // Run one candidate; accept it as the new best iff it still fails with the
  // baseline signature. Candidates that cannot even run (out-of-range
  // partition / crash / leave indices after a node reduction) are rejected
  // the same way as candidates that pass.
  auto attempt = [&](ScenarioScript candidate) -> bool {
    if (!budget_left()) return false;
    if (keep_resilient && !is_resilient(candidate)) return false;
    result.attempts += 1;
    try {
      ScriptRun run = run_script(candidate);
      if (!(classify_failure(run) == result.signature)) return false;
      result.script = std::move(candidate);
      result.final_run = std::move(run);
      result.improvements += 1;
      return true;
    } catch (const std::exception&) {
      return false;
    }
  };

  // Pass 1: drop whole chaos phases. On acceptance the same index now names
  // the next phase, so only advance on rejection.
  auto drop_chaos_phases = [&] {
    bool improved = false;
    for (std::size_t i = 0; i < result.script.chaos_phases.size() && budget_left();) {
      ScenarioScript candidate = result.script;
      candidate.chaos_phases.erase(candidate.chaos_phases.begin() + static_cast<long>(i));
      if (attempt(std::move(candidate))) {
        improved = true;
      } else {
        i += 1;
      }
    }
    return improved;
  };

  // Pass 2: drop churn events.
  auto drop_churn_events = [&] {
    bool improved = false;
    for (std::size_t i = 0; i < result.script.churn_events.size() && budget_left();) {
      ScenarioScript candidate = result.script;
      candidate.churn_events.erase(candidate.churn_events.begin() + static_cast<long>(i));
      if (attempt(std::move(candidate))) {
        improved = true;
      } else {
        i += 1;
      }
    }
    return improved;
  };

  // Pass 3: reduce the population. Halve the correct side first (log-many
  // steps across most of the range), then creep by one; then shed Byzantine
  // nodes and shrink the adversary mix from the back (the parser keeps
  // `adversary` = mix.front(), so popping the back preserves round-trip).
  auto reduce_population = [&] {
    bool improved = false;
    while (budget_left() && result.script.config.n_correct > 1) {
      ScenarioScript candidate = result.script;
      candidate.config.n_correct /= 2;
      if (candidate.config.n_correct == 0 || !attempt(std::move(candidate))) break;
      improved = true;
    }
    while (budget_left() && result.script.config.n_correct > 1) {
      ScenarioScript candidate = result.script;
      candidate.config.n_correct -= 1;
      if (!attempt(std::move(candidate))) break;
      improved = true;
    }
    while (budget_left() && result.script.config.n_byzantine > 0) {
      ScenarioScript candidate = result.script;
      candidate.config.n_byzantine -= 1;
      if (candidate.config.n_byzantine == 0) {
        candidate.config.adversary_mix.clear();
        candidate.config.adversary = AdversaryKind::kNone;
      }
      if (!attempt(std::move(candidate))) break;
      improved = true;
    }
    while (budget_left() && result.script.config.adversary_mix.size() > 1) {
      ScenarioScript candidate = result.script;
      candidate.config.adversary_mix.pop_back();
      if (!attempt(std::move(candidate))) break;
      improved = true;
    }
    return improved;
  };

  // Pass 4: simplify the surviving phases — drop individual faults and
  // shrink round windows. A phase whose every fault gets zeroed is inert
  // DSL-wise (`drop=0`); the next schedule iteration's pass 1 removes it.
  auto simplify_phases = [&] {
    bool improved = false;
    for (std::size_t i = 0; i < result.script.chaos_phases.size() && budget_left(); ++i) {
      auto mutate = [&](auto&& edit) {
        ScenarioScript candidate = result.script;
        edit(candidate.chaos_phases[i]);
        if (candidate == result.script) return;
        if (attempt(std::move(candidate))) improved = true;
      };
      mutate([](ChaosPhaseSpec& p) { p.crashes.clear(); });
      mutate([](ChaosPhaseSpec& p) { p.partition.reset(); });
      mutate([](ChaosPhaseSpec& p) { p.corrupt = 0.0; });
      mutate([](ChaosPhaseSpec& p) { p.duplicate = 0.0; });
      mutate([](ChaosPhaseSpec& p) {
        p.delay_probability = 0.0;
        p.delay_max_extra = 1;
      });
      mutate([](ChaosPhaseSpec& p) { p.drop = 0.0; });
      mutate([](ChaosPhaseSpec& p) {
        // Halve the window length, keeping the phase anchored at its start.
        const Round length = p.last_round - p.first_round + 1;
        if (length > 1) p.last_round = p.first_round + (length / 2) - 1;
      });
    }
    return improved;
  };

  // Pass 5: shorten the round budget (and the liveness budget with it — the
  // probe only fires when the run actually reaches it).
  auto shorten_rounds = [&] {
    bool improved = false;
    while (budget_left() && result.script.max_rounds > 1) {
      ScenarioScript candidate = result.script;
      candidate.max_rounds /= 2;
      if (candidate.liveness_budget > candidate.max_rounds) {
        candidate.liveness_budget = candidate.max_rounds;
      }
      if (!attempt(std::move(candidate))) break;
      improved = true;
    }
    return improved;
  };

  // Pass 6: shrink the input list from the back.
  auto shrink_inputs = [&] {
    bool improved = false;
    while (budget_left() && result.script.inputs.size() > 1) {
      ScenarioScript candidate = result.script;
      candidate.inputs.pop_back();
      if (!attempt(std::move(candidate))) break;
      improved = true;
    }
    return improved;
  };

  bool improved = true;
  while (improved && budget_left()) {
    improved = false;
    improved = drop_chaos_phases() || improved;
    improved = drop_churn_events() || improved;
    improved = reduce_population() || improved;
    improved = simplify_phases() || improved;
    improved = shorten_rounds() || improved;
    improved = shrink_inputs() || improved;
  }

  result.text = write_script(result.script);
  if (!round_trips(result.script)) {
    throw std::logic_error("minimized scenario does not round-trip through the parser");
  }
  return result;
}

}  // namespace idonly
