#include "fuzz/campaign.hpp"

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <variant>

#include "check/trace_diff.hpp"
#include "common/trace.hpp"
#include "fuzz/scn_writer.hpp"
#include "net/parallel_exec.hpp"

namespace idonly {

namespace {

void write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path.string() + " for writing");
  out << content;
  if (!out) throw std::runtime_error("failed writing " + path.string());
}

/// Replay `text` with the flight recorder on. Returns the canonical trace
/// ("" when the script cannot be parsed — a bundle for a generator error).
std::string replay_canonical_trace(const std::string& text, unsigned threads) {
  const auto parsed = parse_script(text);
  const auto* script = std::get_if<ScenarioScript>(&parsed);
  if (script == nullptr) return "";
  ScriptOptions options;
  options.recorder = std::make_shared<TraceRecorder>(TraceEngine::kSync);
  options.threads = threads;
  (void)run_script(*script, options);
  return options.recorder->canonical_jsonl();
}

}  // namespace

std::string write_repro_bundle(const CampaignFailure& failure, const std::string& dir) {
  namespace fs = std::filesystem;
  const fs::path bundle = fs::path(dir) / ("seed-" + std::to_string(failure.seed));
  std::error_code ec;
  fs::create_directories(bundle, ec);
  if (ec) throw std::runtime_error("cannot create " + bundle.string() + ": " + ec.message());

  write_file(bundle / "original.scn", failure.scenario_text);
  const std::string& repro =
      failure.minimized_text.empty() ? failure.scenario_text : failure.minimized_text;
  write_file(bundle / "minimized.scn", repro);

  // Replay the repro twice at different thread counts: the trace is both
  // the debugging artifact and a determinism check — a divergence here names
  // the first (node, round, seq) where the engine contract broke.
  const std::string trace_1 = replay_canonical_trace(repro, 1);
  const std::string trace_2 = replay_canonical_trace(repro, 2);
  write_file(bundle / "trace.jsonl", trace_1);

  std::ostringstream report;
  report << "seed: " << failure.seed << "\n";
  report << "class: "
         << (failure.generator_error ? "generator-error"
             : failure.signature.cls == FailureClass::kViolation
                 ? "invariant-violation"
                 : "expectation-failure")
         << "\n";
  if (!failure.signature.invariant.empty()) {
    report << "invariant: " << failure.signature.invariant << "\n";
  }
  report << "boundary-probe: " << (failure.past_boundary ? "yes (n = 3f, expected)" : "no")
         << "\n";
  report << "summary: " << failure.summary << "\n";
  if (!failure.first_violation.empty()) {
    report << "violation: " << failure.first_violation << "\n";
  }
  if (failure.minimize_attempts > 0) {
    report << "minimize-attempts: " << failure.minimize_attempts << "\n";
  }
  report << "replay: scenario_sim minimized.scn\n";
  report << "trace-diff (threads 1 vs 2): "
         << diff_canonical_traces(trace_1, trace_2).to_string() << "\n";
  write_file(bundle / "report.txt", report.str());
  return bundle.string();
}

CampaignRunner::CampaignRunner(CampaignOptions options) : options_(std::move(options)) {
  if (options_.scenarios == 0) {
    throw std::invalid_argument("CampaignRunner: need at least one scenario");
  }
}

CampaignReport CampaignRunner::run() const {
  // Phase 1 — fan out: generate + execute + classify, one slot per seed.
  // Slots are preallocated and touched only by their own index, so the pool
  // needs no locking and the result is independent of scheduling.
  struct Slot {
    std::uint64_t seed = 0;
    bool past_boundary = false;
    bool generator_error = false;
    bool timed_out = false;
    FailureSignature signature;
    ScenarioScript script;
    std::string text;
    std::string summary;
    std::string first_violation;
  };
  std::vector<Slot> slots(options_.scenarios);
  const ScenarioGenerator generator(options_.generator);
  ParallelExecutor pool(options_.jobs);
  pool.run(options_.scenarios, [&](std::size_t i) {
    Slot& slot = slots[i];
    slot.seed = options_.base_seed + i;
    try {
      GeneratedScenario scenario = generator.generate(slot.seed);
      slot.past_boundary = scenario.past_boundary;
      slot.script = std::move(scenario.script);
      slot.text = std::move(scenario.text);
      const ScriptRun run = run_script(slot.script);
      slot.signature = classify_failure(run);
      slot.summary = run.summary;
      if (!run.violations.empty()) slot.first_violation = run.violations.front();
      for (const ExpectationOutcome& outcome : run.outcomes) {
        if (outcome.expectation == Expectation::kTermination && !outcome.satisfied) {
          slot.timed_out = true;
        }
      }
    } catch (const std::exception& error) {
      slot.generator_error = true;
      slot.summary = error.what();
    }
  });

  // Phase 2 — serial triage in seed order: counters, minimization, bundles.
  // Minimization re-runs scripts many times, so it stays out of the pool;
  // failures are rare by construction, so the serial tail is short.
  CampaignReport report;
  const ScenarioMinimizer minimizer(options_.minimizer);
  for (Slot& slot : slots) {
    CampaignCounters& counters = report.counters;
    counters.scenarios += 1;
    if (slot.generator_error) {
      counters.generator_errors += 1;
      report.ok = false;
      CampaignFailure failure;
      failure.seed = slot.seed;
      failure.generator_error = true;
      failure.summary = slot.summary;
      failure.scenario_text = slot.text;
      report.failures.push_back(std::move(failure));
      continue;
    }
    if (slot.past_boundary) counters.boundary_probes += 1;
    if (slot.signature.cls == FailureClass::kNone) {
      counters.passed += 1;
      continue;
    }
    if (slot.signature.cls == FailureClass::kViolation) {
      counters.violations += 1;
    } else {
      counters.expectation_failures += 1;
    }
    if (slot.timed_out) counters.timeouts += 1;
    if (slot.past_boundary) {
      counters.boundary_violations += 1;
    } else {
      report.ok = false;
    }

    CampaignFailure failure;
    failure.seed = slot.seed;
    failure.past_boundary = slot.past_boundary;
    failure.signature = slot.signature;
    failure.summary = slot.summary;
    failure.first_violation = slot.first_violation;
    failure.scenario_text = slot.text;
    if (options_.minimize) {
      try {
        MinimizeResult minimized = minimizer.minimize(slot.script);
        failure.minimized_text = std::move(minimized.text);
        failure.minimize_attempts = minimized.attempts;
        counters.minimized += 1;
      } catch (const std::exception&) {
        // A flaky failure (passed on re-run) keeps its original text; the
        // bundle is still a repro of the campaign's observation.
      }
    }
    if (!options_.bundle_dir.empty()) {
      failure.bundle_path = write_repro_bundle(failure, options_.bundle_dir);
    }
    report.failures.push_back(std::move(failure));
  }
  return report;
}

}  // namespace idonly
