// Realizing the paper's impossibility arguments (§Synchrony is Necessary).
//
// Both lemmas are indistinguishability constructions: partition the network
// into A (inputs 1) and B (inputs 0), delay all cross-partition traffic past
// each side's decision point, and each side — unable to distinguish the run
// from one where the other side does not exist, because it knows neither n
// nor f — decides its own value. This module builds those executions on the
// AsyncSimulator and measures how often they produce disagreement:
//   * asynchronous case: cross delays unbounded → disagreement certain once
//     both sides decide locally;
//   * semi-synchronous case: delays bounded by Δ unknown to the nodes; any
//     finite local decision timeout T loses once Δ > T (the lemma's
//     inductive construction), while T ≥ Δ would be safe — but no node can
//     know Δ, so no safe T exists. The experiment sweeps Δ/T and shows the
//     sharp transition.
//
// The protocol under test is the natural "decide after a quiet window"
// rule — the best a node can do without n or f: broadcast the input, collect
// values, decide the majority of everything heard by the timeout.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "common/value.hpp"
#include "net/async_simulator.hpp"

namespace idonly {

/// Timeout-based consensus attempt (knows neither n nor f): broadcast input,
/// decide the majority of received values at time T.
class TimeoutConsensusProcess final : public AsyncProcess {
 public:
  TimeoutConsensusProcess(NodeId id, double input, Time timeout);

  void on_start(Time now, std::vector<AsyncOutgoing>& out) override;
  void on_message(Time now, const Message& msg, std::vector<AsyncOutgoing>& out) override;
  void on_timer(Time now, std::vector<AsyncOutgoing>& out) override;
  [[nodiscard]] std::optional<Time> timer_deadline() const override;
  [[nodiscard]] bool decided() const override { return decision_.has_value(); }
  [[nodiscard]] Value decision() const override { return decision_.value_or(Value::bot()); }

 private:
  double input_;
  Time timeout_;
  std::vector<double> heard_;
  std::optional<Value> decision_;
};

struct PartitionConfig {
  std::size_t n_a = 4;          ///< nodes with input 1
  std::size_t n_b = 4;          ///< nodes with input 0
  Time intra_delay = 1.0;       ///< latency within a partition
  Time cross_delay = 1000.0;    ///< latency across partitions (Δ_s in the lemma)
  Time decide_timeout = 10.0;   ///< the nodes' quiet-window guess T
  Time horizon = 5000.0;
};

struct PartitionResult {
  bool all_decided = false;
  bool disagreement = false;
  std::vector<double> decisions_a;
  std::vector<double> decisions_b;
};

/// Deterministic single execution of the partition construction.
[[nodiscard]] PartitionResult run_partition_execution(const PartitionConfig& config);

/// Randomized semi-synchronous trials: message delays uniform in
/// (0, delta] — cross-partition traffic near the bound — against timeout T;
/// returns the fraction of trials ending in disagreement.
[[nodiscard]] double semi_sync_disagreement_rate(std::size_t n_a, std::size_t n_b, Time delta,
                                                 Time timeout, int trials, std::uint64_t seed);

}  // namespace idonly
