#include "impossibility/async_partition.hpp"

#include <algorithm>
#include <map>

#include "common/rng.hpp"

namespace idonly {

TimeoutConsensusProcess::TimeoutConsensusProcess(NodeId id, double input, Time timeout)
    : AsyncProcess(id), input_(input), timeout_(timeout) {}

void TimeoutConsensusProcess::on_start(Time, std::vector<AsyncOutgoing>& out) {
  Message m;
  m.kind = MsgKind::kInput;
  m.value = Value::real(input_);
  out.push_back(AsyncOutgoing{std::nullopt, m});
  heard_.push_back(input_);  // a node knows its own input
}

void TimeoutConsensusProcess::on_message(Time, const Message& msg, std::vector<AsyncOutgoing>&) {
  if (decision_.has_value()) return;
  if (msg.kind == MsgKind::kInput && !msg.value.is_bot() && msg.sender != id()) {
    heard_.push_back(msg.value.as_real());
  }
}

void TimeoutConsensusProcess::on_timer(Time, std::vector<AsyncOutgoing>&) {
  if (decision_.has_value()) return;
  // Majority of everything heard; ties broken toward the smaller value so
  // all nodes break ties identically.
  std::map<double, std::size_t> votes;
  for (double v : heard_) votes[v] += 1;
  auto best = votes.begin();
  for (auto it = votes.begin(); it != votes.end(); ++it) {
    if (it->second > best->second) best = it;
  }
  decision_ = Value::real(best->first);
}

std::optional<Time> TimeoutConsensusProcess::timer_deadline() const {
  return decision_.has_value() ? std::nullopt : std::optional<Time>(timeout_);
}

PartitionResult run_partition_execution(const PartitionConfig& config) {
  // Ids 1..n_a are partition A (input 1); n_a+1 .. n_a+n_b are B (input 0).
  const auto in_a = [&](NodeId id) { return id <= config.n_a; };
  DelayModel delay = [&](NodeId from, NodeId to, const Message&, Time) -> Time {
    return in_a(from) == in_a(to) ? config.intra_delay : config.cross_delay;
  };
  AsyncSimulator sim(delay);
  for (std::size_t i = 1; i <= config.n_a + config.n_b; ++i) {
    const double input = i <= config.n_a ? 1.0 : 0.0;
    sim.add_process(std::make_unique<TimeoutConsensusProcess>(i, input, config.decide_timeout));
  }
  sim.run(config.horizon);

  PartitionResult result;
  result.all_decided = true;
  for (NodeId id : sim.ids()) {
    auto* p = sim.find(id);
    if (!p->decided()) {
      result.all_decided = false;
      continue;
    }
    const double d = p->decision().real_or(-1.0);
    (in_a(id) ? result.decisions_a : result.decisions_b).push_back(d);
  }
  auto disagrees = [](const std::vector<double>& xs, double v) {
    return std::any_of(xs.begin(), xs.end(), [v](double x) { return x != v; });
  };
  if (!result.decisions_a.empty()) {
    const double first = result.decisions_a.front();
    result.disagreement = disagrees(result.decisions_a, first) ||
                          disagrees(result.decisions_b, first);
  }
  return result;
}

double semi_sync_disagreement_rate(std::size_t n_a, std::size_t n_b, Time delta, Time timeout,
                                   int trials, std::uint64_t seed) {
  int disagreements = 0;
  for (int t = 0; t < trials; ++t) {
    Rng rng(derive_seed(seed, static_cast<std::uint64_t>(t)));
    const auto in_a = [&](NodeId id) { return id <= n_a; };
    // Semi-synchronous adversary: intra-partition messages are fast; the
    // adversary stretches cross-partition delays toward the (legal) bound Δ.
    DelayModel delay = [&](NodeId from, NodeId to, const Message&, Time) -> Time {
      if (in_a(from) == in_a(to)) return rng.uniform(0.01, 0.1 * delta);
      return rng.uniform(0.8 * delta, delta);
    };
    AsyncSimulator sim(delay);
    for (std::size_t i = 1; i <= n_a + n_b; ++i) {
      const double input = i <= n_a ? 1.0 : 0.0;
      sim.add_process(std::make_unique<TimeoutConsensusProcess>(i, input, timeout));
    }
    sim.run(/*horizon=*/10.0 * (delta + timeout));
    std::optional<double> common;
    bool disagreement = false;
    for (NodeId id : sim.ids()) {
      auto* p = sim.find(id);
      if (!p->decided()) continue;
      const double d = p->decision().real_or(-1.0);
      if (!common.has_value()) {
        common = d;
      } else if (*common != d) {
        disagreement = true;
      }
    }
    disagreements += disagreement ? 1 : 0;
  }
  return trials == 0 ? 0.0 : static_cast<double>(disagreements) / trials;
}

}  // namespace idonly
