// SipHash-2-4 — the standard short-input keyed PRF (Aumasson & Bernstein),
// implemented from the reference specification, no external dependencies.
// Used by the runtime's authenticating transport to tag frames with a group
// key. Tested against the reference test vectors.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace idonly {

using SipHashKey = std::array<std::uint8_t, 16>;

/// 64-bit SipHash-2-4 of `data` under `key`.
[[nodiscard]] std::uint64_t siphash24(std::span<const std::byte> data, const SipHashKey& key);

/// Convenience for raw byte buffers.
[[nodiscard]] std::uint64_t siphash24(const void* data, std::size_t size, const SipHashKey& key);

}  // namespace idonly
