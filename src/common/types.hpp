// Fundamental identifier and round types shared by every module.
//
// The paper's "id-only" model gives each node a unique but *not necessarily
// consecutive* identifier; all protocol logic must work with an arbitrary
// sparse id space, so NodeId is a plain 64-bit integer and nothing in the
// library ever assumes ids form a contiguous range.
#pragma once

#include <cstdint>

namespace idonly {

/// Unique node identifier. Unforgeable on direct sends (the simulator stamps
/// it); Byzantine nodes may still *claim* things about other ids in payloads.
using NodeId = std::uint64_t;

/// 1-based synchronous round counter. Round r messages are delivered at r+1.
using Round = std::int64_t;

/// Tag distinguishing concurrently running consensus instances (the dynamic
/// total-ordering protocol starts one parallel-consensus instance per round
/// and tags its messages with the starting round). 0 means "untagged".
using InstanceTag = std::uint32_t;

/// Identifier of an input pair in parallel consensus ((id, x) pairs, paper
/// §"Parallel Consensus"). In the total-ordering application this is the id
/// of the node that witnessed the event.
using PairId = std::uint64_t;

}  // namespace idonly
