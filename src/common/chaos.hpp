// Deterministic chaos-injection schedules shared by every engine.
//
// The flat FaultModel (runtime/faulty_transport.hpp) flips an independent
// coin per frame, which makes failures impossible to reproduce across
// engines: the sync simulator, the async simulator, and the runtime each
// consume randomness in a different order. A ChaosSchedule fixes that by
// making every fault verdict a PURE FUNCTION of (seed, link event): the
// engines merely describe each delivery attempt as a LinkEvent{round, from,
// to, seq} and ask `decide()` for the verdict. Same seed + same logical
// traffic ⇒ byte-identical fault trace, no matter which engine replays it or
// in which order its threads drain mailboxes.
//
// A schedule is a sequence of PHASES, each active over an inclusive round
// window: burst loss, duplication, delay distributions (jitter), one-byte
// corruption, bidirectional partitions between id sets, per-link asymmetric
// faults, and crash windows on endpoints (crash-and-rejoin: every frame to
// or from the node dies while the window is open, then traffic resumes —
// the id-only model explicitly tolerates the late rejoin). Self-delivery
// (from == to) is never faulted: a node's loopback is local memory, not
// wire, and every protocol in the library assumes it.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.hpp"
#include "common/types.hpp"

namespace idonly {

/// Jitter/delay distribution: with `probability`, hold the frame for a
/// uniform 1..max_extra_rounds extra rounds (the extra count is itself a
/// pure function of the link event, so it reproduces too).
struct DelaySpec {
  double probability = 0.0;
  Round max_extra_rounds = 1;
};

/// Bidirectional partition: every frame crossing between `side_a` and
/// `side_b` (either direction) is dropped while the phase is active. Nodes
/// listed on neither side are unaffected.
struct ChaosPartition {
  std::vector<NodeId> side_a;
  std::vector<NodeId> side_b;
};

/// Asymmetric per-link fault: extra probabilities applied ONLY to frames
/// from → to (not the reverse direction).
struct LinkFaultSpec {
  NodeId from = 0;
  NodeId to = 0;
  double drop = 0.0;
  double duplicate = 0.0;
  double delay = 0.0;
};

/// Crash window on an endpoint: while `first <= round <= last` every frame
/// from or to `node` is dropped. After `last` the node rejoins as a late
/// participant.
struct CrashWindow {
  NodeId node = 0;
  Round first = 1;
  Round last = 1;
};

/// One phase of a fault plan, active for rounds in [first_round, last_round]
/// inclusive. Probabilities compose: partition and crash verdicts are
/// checked first (deterministic, no coin), then drop, duplicate, delay, and
/// corrupt coins in that fixed order.
struct ChaosPhase {
  Round first_round = 1;
  Round last_round = 1;
  double drop = 0.0;
  double duplicate = 0.0;
  double corrupt = 0.0;
  DelaySpec delay;
  std::vector<ChaosPartition> partitions;
  std::vector<LinkFaultSpec> link_faults;
  std::vector<CrashWindow> crashes;
};

struct ChaosPlan {
  std::vector<ChaosPhase> phases;
};

/// One delivery attempt as described by an engine. `round` is the round the
/// message was SENT in (the sync simulator's current round; the runtime's
/// frame round header). `seq` disambiguates multiple sends over the same
/// (round, from, to) link — engines count it per link per round, so the
/// k-th send on a link gets the same verdict everywhere.
struct LinkEvent {
  Round round = 0;
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t seq = 0;
};

enum class FaultKind : std::uint8_t {
  kDrop,
  kDuplicate,
  kDelay,
  kCorrupt,
  kPartitionDrop,
  kCrashDrop,
};

[[nodiscard]] const char* to_string(FaultKind kind) noexcept;

/// Verdict for one delivery attempt. At most one of drop/duplicate is set;
/// delay and corrupt may combine with duplicate (both copies delayed /
/// corrupted — wire-level faults hit the frame, not a copy).
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  Round delay_rounds = 0;   ///< extra rounds to hold the frame (0 = on time)
  int phase = -1;           ///< active phase index, -1 when no phase covers the round
  std::uint64_t entropy = 0;  ///< deterministic per-event word (corrupt position/bit)
  /// Which drop flavour fired (meaningful only when `drop`): crash window,
  /// partition, or the plain drop coin. Lets commit() reconstruct the exact
  /// fault records a verdict implies without re-deriving them.
  FaultKind drop_kind = FaultKind::kDrop;

  /// True when the verdict implies at least one fault record.
  [[nodiscard]] bool faulted() const noexcept {
    return drop || duplicate || corrupt || delay_rounds > 0;
  }
};

/// One recorded fault, in the order the engine asked. `canonical_trace()`
/// sorts these so drain order / thread interleaving cannot perturb the
/// byte-identical comparison across engines.
struct FaultRecord {
  Round round = 0;
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t seq = 0;
  FaultKind kind{};
  Round extra = 0;  ///< delay length for kDelay, 0 otherwise

  friend bool operator==(const FaultRecord&, const FaultRecord&) = default;
};

class ChaosSchedule {
 public:
  /// Validates the plan: all probabilities must be in [0, 1], round windows
  /// non-empty (first <= last), delay max_extra_rounds >= 1. Throws
  /// std::invalid_argument on violation.
  ChaosSchedule(ChaosPlan plan, std::uint64_t seed);

  /// Verdict for one delivery attempt — pure in (seed, plan, event); the
  /// only mutation is trace/counter recording (thread-safe). Equivalent to
  /// peek() + commit().
  [[nodiscard]] FaultDecision decide(const LinkEvent& event);

  /// The verdict alone — PURE and lock-free, safe to call concurrently from
  /// any number of merge lanes. Records nothing: pair with commit() /
  /// commit_batch() so the fault trace and counters still fill in.
  [[nodiscard]] FaultDecision peek(const LinkEvent& event) const noexcept;

  /// Record the fault trace entries and counters `verdict` implies (no-op
  /// for clean verdicts). One lock acquisition.
  void commit(const LinkEvent& event, const FaultDecision& verdict);

  /// Bulk commit under ONE lock — the merge lanes' flush path. Per-link
  /// record order is preserved within a batch; cross-batch order is
  /// engine-dependent, exactly like interleaved decide() calls (the
  /// canonical trace sorts it away).
  void commit_batch(std::span<const std::pair<LinkEvent, FaultDecision>> staged);

  /// Phase index covering `round`, or nullopt. Later phases win overlaps.
  [[nodiscard]] std::optional<std::size_t> phase_for(Round round) const noexcept;

  [[nodiscard]] const ChaosPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  /// Last round any phase is active; quiet after this (recovery window).
  [[nodiscard]] Round last_faulty_round() const noexcept { return last_faulty_round_; }

  /// Faults in the order they were decided (engine-dependent).
  [[nodiscard]] std::vector<FaultRecord> trace() const;
  /// Faults sorted by (round, from, to, seq, kind) — engine-independent.
  [[nodiscard]] std::vector<FaultRecord> canonical_trace() const;
  /// One line per canonical record — byte-comparable across runs/engines.
  [[nodiscard]] std::string canonical_trace_string() const;

  /// Injected-fault counters, one FaultCounters per phase (recovery fields
  /// are left zero — those belong to the runtime's drivers).
  [[nodiscard]] ChaosCounters counters() const;

  void clear_trace();

  /// The deterministic coin: uniform double in [0, 1) from (seed, event,
  /// salt). Exposed for tests; every verdict in decide() flows from it.
  [[nodiscard]] static double coin(std::uint64_t seed, const LinkEvent& event,
                                   std::uint64_t salt) noexcept;
  /// Deterministic 64-bit word from the same keying (delay lengths, corrupt
  /// positions).
  [[nodiscard]] static std::uint64_t word(std::uint64_t seed, const LinkEvent& event,
                                          std::uint64_t salt) noexcept;

 private:
  void commit_locked(const LinkEvent& event, const FaultDecision& verdict);
  void record_locked(const LinkEvent& event, FaultKind kind, std::size_t phase, Round extra);

  ChaosPlan plan_;
  std::uint64_t seed_ = 0;
  Round last_faulty_round_ = 0;
  mutable std::mutex mutex_;
  std::vector<FaultRecord> trace_;
  std::vector<FaultCounters> per_phase_;
};

}  // namespace idonly
