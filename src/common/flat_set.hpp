// Sorted-vector flat containers for hot-path quorum bookkeeping.
//
// The core protocols touch their quorum sets once per message per round —
// Θ(n²) probes per round across an all-to-all network — and the node-based
// std::set/std::map they used to sit on pay a heap allocation plus a
// pointer-chasing tree walk per probe. A FlatSet keeps its elements in one
// sorted contiguous vector: membership tests are cache-friendly binary
// searches, and the dominant insertion pattern (senders arrive in ascending
// id order because the engine routes members in ascending id order) hits an
// O(1) append fast path. FlatMap is the same idea for small key → value
// tables (quorum counters key by payload/candidate; a round sees a handful
// of distinct keys but thousands of probes).
//
// Deliberately minimal: only the operations the protocol layer uses. Both
// containers iterate in ascending key order, so replacing std::set/std::map
// never changes the deterministic iteration order protocol code relies on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <initializer_list>
#include <set>
#include <utility>
#include <vector>

namespace idonly {

template <typename T, typename Compare = std::less<T>>
class FlatSet {
 public:
  using value_type = T;
  using const_iterator = typename std::vector<T>::const_iterator;

  FlatSet() = default;

  FlatSet(std::initializer_list<T> init) {
    for (const T& v : init) insert(v);
  }

  /// Migration convenience: std::set iterates in ascending order, so the
  /// copy is a straight append.
  FlatSet(const std::set<T, Compare>& from) : values_(from.begin(), from.end()) {}  // NOLINT

  /// Returns true when the value was inserted (false: already present).
  bool insert(const T& value) {
    // Ascending-arrival fast path: the engine steps and routes members in
    // ascending id order, so most inserts land past the current back.
    if (values_.empty() || comp_(values_.back(), value)) {
      values_.push_back(value);
      return true;
    }
    const auto it = std::lower_bound(values_.begin(), values_.end(), value, comp_);
    if (it != values_.end() && !comp_(value, *it)) return false;
    values_.insert(it, value);
    return true;
  }

  /// Returns true when the value was present and removed.
  bool erase(const T& value) {
    const auto it = std::lower_bound(values_.begin(), values_.end(), value, comp_);
    if (it == values_.end() || comp_(value, *it)) return false;
    values_.erase(it);
    return true;
  }

  [[nodiscard]] bool contains(const T& value) const {
    const auto it = std::lower_bound(values_.begin(), values_.end(), value, comp_);
    return it != values_.end() && !comp_(value, *it);
  }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  void clear() noexcept { values_.clear(); }
  void reserve(std::size_t n) { values_.reserve(n); }

  [[nodiscard]] const_iterator begin() const noexcept { return values_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return values_.end(); }
  /// The underlying sorted storage (ascending).
  [[nodiscard]] const std::vector<T>& values() const noexcept { return values_; }

  friend bool operator==(const FlatSet& a, const FlatSet& b) { return a.values_ == b.values_; }

 private:
  std::vector<T> values_;
  [[no_unique_address]] Compare comp_;
};

template <typename Key, typename V, typename Compare = std::less<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, V>;
  using const_iterator = typename std::vector<value_type>::const_iterator;
  using iterator = typename std::vector<value_type>::iterator;

  FlatMap() = default;

  /// std::map semantics: default-construct on first access.
  V& operator[](const Key& key) {
    const auto it = lower_bound(key);
    if (it != entries_.end() && !comp_(key, it->first)) return it->second;
    return entries_.emplace(it, key, V{})->second;
  }

  [[nodiscard]] const_iterator find(const Key& key) const {
    const auto it = lower_bound(key);
    return it != entries_.end() && !comp_(key, it->first) ? it : entries_.end();
  }

  [[nodiscard]] bool contains(const Key& key) const { return find(key) != entries_.end(); }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  void clear() noexcept { entries_.clear(); }

  [[nodiscard]] const_iterator begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] const_iterator end() const noexcept { return entries_.end(); }

 private:
  [[nodiscard]] const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [this](const value_type& e, const Key& k) { return comp_(e.first, k); });
  }
  [[nodiscard]] iterator lower_bound(const Key& key) {
    return std::lower_bound(entries_.begin(), entries_.end(), key,
                            [this](const value_type& e, const Key& k) { return comp_(e.first, k); });
  }

  std::vector<value_type> entries_;
  [[no_unique_address]] Compare comp_;
};

}  // namespace idonly
