// Small descriptive-statistics helpers for the benches and the experiment
// CLI: summarize seeded runs as mean / stddev / min / percentiles without
// dragging in a stats library.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace idonly {

struct Summary {
  std::size_t count = 0;
  double mean = 0;
  double stddev = 0;
  double min = 0;
  double p50 = 0;
  double p95 = 0;
  double max = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Summarize samples (empty input → all-zero summary). Percentiles use the
/// nearest-rank method on a sorted copy.
[[nodiscard]] Summary summarize(std::vector<double> samples);

/// Exact percentile helper (q in [0, 1]) on already-sorted data.
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted, double q);

}  // namespace idonly
