// Flight-recorder tracing layer shared by every engine.
//
// PR 2's chaos engine guarantees that one seed reproduces byte-identical
// fault verdicts on the sync simulator, the async simulator, and the
// runtime. When a run *does* diverge — a real bug — that guarantee is only
// useful if we can see WHERE: this layer records structured per-node events
// (protocol events, frame-level link verdicts, round-clock transitions)
// into bounded ring buffers, exports them as JSONL (tooling) and Chrome
// `about://tracing` JSON (humans), and feeds the `trace_diff` tool
// (check/trace_diff.hpp) that pinpoints the first divergent record between
// two traces of the same seed.
//
// Record families:
//   * LINK VERDICTS (kLinkClean..kLinkCorrupt): one record per chaos
//     `decide()` call, keyed exactly like the LinkEvent. These are the
//     CANONICAL family — `canonical_jsonl()` emits only them, sorted by
//     (round, from, to, link_seq), with engine- and capture-order-dependent
//     fields stripped, so two traces of the same seed are byte-identical
//     across engines (the cross-engine contract, now at trace level).
//     Self-links (from == to) are excluded: engines differ in whether
//     loopback touches the wire at all, and it is never faulted.
//   * ENGINE EVENTS (kSend, kDeliver, kLateFrame): engine-local, useful for
//     debugging one run; excluded from the canonical export.
//   * PROTOCOL EVENTS (kProtocol): a ProtocolEvent captured via
//     TraceObserver; `detail` holds its rendering.
//   * CLOCK EVENTS (kClockBackoff, kClockShrink, kClockResync,
//     kWatchdogRestart): the self-healing runtime's recovery actions.
//
// Thread safety: every recorder method is safe to call from any thread (one
// mutex; tracing is opt-in and off the hot path — see DESIGN.md
// "Observability" for the overhead budget).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/chaos.hpp"
#include "common/observer.hpp"
#include "common/types.hpp"

namespace idonly {

enum class TraceEngine : std::uint8_t { kSync, kAsync, kRuntime };

[[nodiscard]] const char* to_string(TraceEngine engine) noexcept;

enum class TraceEventKind : std::uint8_t {
  // Canonical link-verdict family (one per chaos decide(); priority when a
  // verdict combines faults: drop > duplicate > delay > corrupt > clean —
  // a pure function of the verdict, so it reproduces across engines).
  kLinkClean,
  kLinkDrop,
  kLinkDuplicate,
  kLinkDelay,
  kLinkCorrupt,
  // Engine-local families (excluded from the canonical export).
  kSend,
  kDeliver,
  kLateFrame,
  kProtocol,
  kClockBackoff,
  kClockShrink,
  kClockResync,
  kWatchdogRestart,
};

[[nodiscard]] const char* to_string(TraceEventKind kind) noexcept;
/// True for the link-verdict family (the cross-engine-comparable records).
[[nodiscard]] bool is_canonical(TraceEventKind kind) noexcept;

/// One captured record. Field meaning varies by family:
///   link verdicts: node == to (receiver), link_seq = per-(round,from,to)
///     sequence, extra = delay rounds;
///   kSend: to = unicast target (extra = 1 marks broadcast, to unused);
///   kDeliver: from = sender;
///   kLateFrame: from = sender, extra = the frame's sent round;
///   clock events: extra = new duration (ms) / peer round / restart count.
struct TraceRecord {
  TraceEventKind kind{};
  NodeId node = 0;          ///< owning node (whose ring buffer holds it)
  Round round = 0;
  std::uint64_t seq = 0;    ///< per-node capture sequence (stamped by record())
  NodeId from = 0;
  NodeId to = 0;
  std::uint64_t link_seq = 0;
  std::int64_t extra = 0;
  std::string detail;       ///< protocol-event rendering; empty otherwise

  friend bool operator==(const TraceRecord&, const TraceRecord&) = default;
};

/// Record builders, shared by the recorder's convenience methods and the
/// parallel engines' per-lane staging buffers (which construct records
/// lock-free during the lane merge and flush them via record_batch()).
/// The capture `seq` is left 0 — record()/record_batch() stamp it.
[[nodiscard]] TraceRecord make_send_record(NodeId node, Round round,
                                           std::optional<NodeId> to) noexcept;
[[nodiscard]] TraceRecord make_deliver_record(NodeId node, Round round, NodeId from) noexcept;
[[nodiscard]] TraceRecord make_link_verdict_record(const LinkEvent& event,
                                                   const FaultDecision& verdict) noexcept;

class TraceRecorder;

/// ProtocolObserver adapter: forwards every event into the recorder (and
/// optionally on to a `next` observer, so a recorder can ride alongside an
/// InvariantMonitor without the process supporting observer lists).
class TraceObserver final : public ProtocolObserver {
 public:
  explicit TraceObserver(std::shared_ptr<TraceRecorder> recorder,
                         ProtocolObserver* next = nullptr) noexcept
      : recorder_(std::move(recorder)), next_(next) {}
  void on_event(const ProtocolEvent& event) override;

 private:
  std::shared_ptr<TraceRecorder> recorder_;
  ProtocolObserver* next_;
};

class TraceRecorder {
 public:
  /// Default per-node ring capacity: 16k records ≈ a few MB per busy node —
  /// enough for hundreds of rounds at small n; old records are evicted (and
  /// counted) rather than growing without bound.
  static constexpr std::size_t kDefaultCapacity = std::size_t{1} << 14;

  explicit TraceRecorder(TraceEngine engine, std::size_t per_node_capacity = kDefaultCapacity);

  /// Append one record to `rec.node`'s ring; stamps the per-node capture
  /// sequence and evicts the oldest record once the ring is full.
  void record(TraceRecord rec);

  /// Append a batch under ONE lock acquisition, preserving batch order.
  /// This is the parallel engines' flush path: each merge lane stages
  /// records for ITS nodes lock-free and flushes once per phase. Because a
  /// node's records are only ever staged by the lane that owns it, per-ring
  /// order — and therefore every export — is independent of the order in
  /// which concurrent lanes flush.
  void record_batch(std::span<TraceRecord> records);

  /// One chaos verdict exactly as the engine asked it. Self-links are still
  /// recorded (kept out of the canonical export, kept in the full trace).
  void record_link_verdict(const LinkEvent& event, const FaultDecision& verdict);
  void record_send(NodeId node, Round round, std::optional<NodeId> to);
  void record_deliver(NodeId node, Round round, NodeId from);
  void record_protocol(const ProtocolEvent& event);
  /// Clock family + kLateFrame; `extra` is the kind-specific payload.
  void record_clock(NodeId node, TraceEventKind kind, Round round, std::int64_t extra = 0);

  [[nodiscard]] TraceEngine engine() const noexcept { return engine_; }
  [[nodiscard]] std::size_t per_node_capacity() const noexcept { return capacity_; }
  /// Total records currently held across all rings.
  [[nodiscard]] std::size_t size() const;
  /// Records evicted by ring-buffer bounds (0 ⇒ the trace is complete).
  [[nodiscard]] std::uint64_t evicted() const;
  void clear();

  /// All records, grouped by node id, capture order within each node.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  /// Per-node ring bookkeeping, for shipping rings across a process
  /// boundary (the distributed shard engine's workers each record their own
  /// nodes and the coordinator splices the rings back together).
  struct RingStats {
    NodeId node = 0;
    std::uint64_t next_seq = 0;
    std::uint64_t evicted = 0;
  };
  [[nodiscard]] std::vector<RingStats> ring_stats() const;

  /// Splice one node's ring — captured by another recorder of the same
  /// capacity — into this one verbatim: records keep their capture seqs and
  /// the ring its eviction count, so every export over the merged recorder
  /// is byte-identical to a single-recorder run. The node must not already
  /// hold records here (shard workers own disjoint id ranges); throws
  /// std::invalid_argument when it does.
  void absorb_ring(NodeId node, std::vector<TraceRecord> records, std::uint64_t next_seq,
                   std::uint64_t evicted);
  /// Link-verdict records only, self-links removed, sorted by
  /// (round, from, to, link_seq) — engine- and thread-order-independent.
  [[nodiscard]] std::vector<TraceRecord> canonical() const;

  /// Full export: one header line (engine, record/eviction counts), then one
  /// JSON object per record in snapshot() order.
  [[nodiscard]] std::string jsonl() const;
  /// Canonical export: one JSON object per canonical() record, no header,
  /// no engine/node/capture-seq fields — byte-identical across engines for
  /// the same seed and logical traffic. This is what trace_diff compares.
  [[nodiscard]] std::string canonical_jsonl() const;
  /// Chrome `about://tracing` / Perfetto JSON: one instant event per record,
  /// pid = node, tid = sender, ts = round in fake-milliseconds.
  [[nodiscard]] std::string chrome_trace_json() const;

 private:
  struct NodeRing {
    std::deque<TraceRecord> records;
    std::uint64_t next_seq = 0;
    std::uint64_t evicted = 0;
  };

  void record_locked(TraceRecord rec);

  TraceEngine engine_;
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<NodeId, NodeRing> rings_;
};

/// The canonical export's strict-weak order: (round, from, to, link_seq,
/// kind). Exposed so the distributed coordinator's k-way export merge
/// (dist/shard_trace.hpp) sorts per-shard streams with EXACTLY the
/// comparator canonical() uses.
[[nodiscard]] bool canonical_record_less(const TraceRecord& a, const TraceRecord& b) noexcept;

/// Serialize one record as the full-export JSONL line (no trailing newline).
[[nodiscard]] std::string to_jsonl_line(const TraceRecord& rec, TraceEngine engine);
/// Serialize one record as a canonical line (link family only; the caller
/// is responsible for only passing canonical records).
[[nodiscard]] std::string to_canonical_line(const TraceRecord& rec);

}  // namespace idonly
