// The opinion/value domain of the paper's agreement problems.
//
// Consensus (Alg. 3) and approximate agreement (Alg. 4) operate on real
// numbers; parallel consensus (Alg. 5) additionally needs a distinguished
// "no opinion" element ⊥ used to fill in messages for ids a node never heard
// an input for. Value is the disjoint union (real ∪ {⊥}) with total ordering
// (⊥ sorts before every real, giving deterministic tie-breaks) and hashing so
// it can key quorum counters.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace idonly {

class Value {
 public:
  /// Default-constructed Value is ⊥ (no opinion).
  constexpr Value() noexcept = default;

  /// The distinguished "no opinion" element.
  [[nodiscard]] static constexpr Value bot() noexcept { return Value{}; }

  /// A real-valued opinion.
  [[nodiscard]] static constexpr Value real(double v) noexcept {
    Value out;
    out.is_bot_ = false;
    out.real_ = v;
    return out;
  }

  [[nodiscard]] constexpr bool is_bot() const noexcept { return is_bot_; }

  /// Precondition: !is_bot(). Returns the real payload.
  [[nodiscard]] constexpr double as_real() const noexcept { return real_; }

  /// Real payload, or `fallback` when ⊥.
  [[nodiscard]] constexpr double real_or(double fallback) const noexcept {
    return is_bot_ ? fallback : real_;
  }

  friend constexpr bool operator==(const Value& a, const Value& b) noexcept {
    return a.is_bot_ == b.is_bot_ && (a.is_bot_ || a.real_ == b.real_);
  }

  /// ⊥ < every real; reals ordered numerically.
  friend constexpr bool operator<(const Value& a, const Value& b) noexcept {
    if (a.is_bot_ != b.is_bot_) return a.is_bot_;
    if (a.is_bot_) return false;
    return a.real_ < b.real_;
  }

  [[nodiscard]] std::string to_string() const;

 private:
  double real_ = 0.0;
  bool is_bot_ = true;
};

struct ValueHash {
  [[nodiscard]] std::size_t operator()(const Value& v) const noexcept {
    if (v.is_bot()) return 0x9e3779b97f4a7c15ULL;
    return std::hash<double>{}(v.as_real());
  }
};

}  // namespace idonly
