#include "common/chaos.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "common/rng.hpp"

namespace idonly {

namespace {

// Fault-type salts: each verdict draws from an independent pure stream so
// e.g. raising the drop probability never perturbs delay lengths.
constexpr std::uint64_t kSaltDrop = 0;
constexpr std::uint64_t kSaltDuplicate = 1;
constexpr std::uint64_t kSaltDelay = 2;
constexpr std::uint64_t kSaltDelayLength = 3;
constexpr std::uint64_t kSaltCorrupt = 4;
constexpr std::uint64_t kSaltEntropy = 5;
constexpr std::uint64_t kSaltLinkDrop = 6;
constexpr std::uint64_t kSaltLinkDuplicate = 7;
constexpr std::uint64_t kSaltLinkDelay = 8;

void check_probability(double p, const char* what) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument(std::string("chaos plan: ") + what +
                                " probability must be in [0, 1]");
  }
}

bool in_set(const std::vector<NodeId>& set, NodeId id) noexcept {
  return std::find(set.begin(), set.end(), id) != set.end();
}

bool partition_cuts(const ChaosPartition& partition, NodeId from, NodeId to) noexcept {
  return (in_set(partition.side_a, from) && in_set(partition.side_b, to)) ||
         (in_set(partition.side_b, from) && in_set(partition.side_a, to));
}

}  // namespace

const char* to_string(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDuplicate: return "dup";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kPartitionDrop: return "partition";
    case FaultKind::kCrashDrop: return "crash";
  }
  return "?";
}

ChaosSchedule::ChaosSchedule(ChaosPlan plan, std::uint64_t seed)
    : plan_(std::move(plan)), seed_(seed) {
  for (const ChaosPhase& phase : plan_.phases) {
    if (phase.first_round > phase.last_round) {
      throw std::invalid_argument("chaos plan: phase round window is empty (first > last)");
    }
    if (phase.first_round < 1) {
      throw std::invalid_argument("chaos plan: rounds are 1-based");
    }
    check_probability(phase.drop, "drop");
    check_probability(phase.duplicate, "duplicate");
    check_probability(phase.corrupt, "corrupt");
    check_probability(phase.delay.probability, "delay");
    if (phase.delay.probability > 0.0 && phase.delay.max_extra_rounds < 1) {
      throw std::invalid_argument("chaos plan: delay max_extra_rounds must be >= 1");
    }
    for (const LinkFaultSpec& link : phase.link_faults) {
      check_probability(link.drop, "link drop");
      check_probability(link.duplicate, "link duplicate");
      check_probability(link.delay, "link delay");
    }
    for (const CrashWindow& crash : phase.crashes) {
      if (crash.first > crash.last) {
        throw std::invalid_argument("chaos plan: crash window is empty (first > last)");
      }
    }
    last_faulty_round_ = std::max(last_faulty_round_, phase.last_round);
  }
  per_phase_.resize(plan_.phases.size());
}

std::optional<std::size_t> ChaosSchedule::phase_for(Round round) const noexcept {
  std::optional<std::size_t> hit;
  for (std::size_t i = 0; i < plan_.phases.size(); ++i) {
    if (round >= plan_.phases[i].first_round && round <= plan_.phases[i].last_round) hit = i;
  }
  return hit;
}

double ChaosSchedule::coin(std::uint64_t seed, const LinkEvent& event,
                           std::uint64_t salt) noexcept {
  return static_cast<double>(word(seed, event, salt) >> 11) * 0x1.0p-53;
}

std::uint64_t ChaosSchedule::word(std::uint64_t seed, const LinkEvent& event,
                                  std::uint64_t salt) noexcept {
  // Hash-combine the full key through splitmix64: each field perturbs the
  // state before the next mix, so nearby keys land far apart.
  std::uint64_t state = seed;
  (void)splitmix64(state);
  state ^= static_cast<std::uint64_t>(event.round);
  (void)splitmix64(state);
  state ^= event.from;
  (void)splitmix64(state);
  state ^= event.to;
  (void)splitmix64(state);
  state ^= event.seq;
  (void)splitmix64(state);
  state ^= salt;
  return splitmix64(state);
}

FaultDecision ChaosSchedule::peek(const LinkEvent& event) const noexcept {
  FaultDecision decision;
  if (event.from == event.to) return decision;  // loopback is never wire
  const auto phase_index = phase_for(event.round);
  if (!phase_index.has_value()) return decision;
  const ChaosPhase& phase = plan_.phases[*phase_index];
  decision.phase = static_cast<int>(*phase_index);
  decision.entropy = word(seed_, event, kSaltEntropy);

  // Deterministic structural faults first: a crashed endpoint or a cut
  // partition kills the frame outright, no coin spent.
  for (const CrashWindow& crash : phase.crashes) {
    if ((crash.node == event.from || crash.node == event.to) && event.round >= crash.first &&
        event.round <= crash.last) {
      decision.drop = true;
      decision.drop_kind = FaultKind::kCrashDrop;
      return decision;
    }
  }
  for (const ChaosPartition& partition : phase.partitions) {
    if (partition_cuts(partition, event.from, event.to)) {
      decision.drop = true;
      decision.drop_kind = FaultKind::kPartitionDrop;
      return decision;
    }
  }

  // Per-link asymmetric faults stack on top of the phase-wide ones; the
  // link coins draw from separate salts so both can be active at once.
  double drop_p = phase.drop;
  double duplicate_p = phase.duplicate;
  double delay_p = phase.delay.probability;
  for (const LinkFaultSpec& link : phase.link_faults) {
    if (link.from != event.from || link.to != event.to) continue;
    if (link.drop > 0.0 && coin(seed_, event, kSaltLinkDrop) < link.drop) drop_p = 1.0;
    if (link.duplicate > 0.0 && coin(seed_, event, kSaltLinkDuplicate) < link.duplicate) {
      duplicate_p = 1.0;
    }
    if (link.delay > 0.0 && coin(seed_, event, kSaltLinkDelay) < link.delay) delay_p = 1.0;
  }

  if (drop_p > 0.0 && coin(seed_, event, kSaltDrop) < drop_p) {
    decision.drop = true;
    decision.drop_kind = FaultKind::kDrop;
    return decision;
  }
  if (duplicate_p > 0.0 && coin(seed_, event, kSaltDuplicate) < duplicate_p) {
    decision.duplicate = true;
  }
  if (delay_p > 0.0 && coin(seed_, event, kSaltDelay) < delay_p) {
    const auto span = static_cast<std::uint64_t>(std::max<Round>(phase.delay.max_extra_rounds, 1));
    decision.delay_rounds =
        1 + static_cast<Round>(word(seed_, event, kSaltDelayLength) % span);
  }
  if (phase.corrupt > 0.0 && coin(seed_, event, kSaltCorrupt) < phase.corrupt) {
    decision.corrupt = true;
  }
  return decision;
}

FaultDecision ChaosSchedule::decide(const LinkEvent& event) {
  const FaultDecision decision = peek(event);
  commit(event, decision);
  return decision;
}

void ChaosSchedule::commit(const LinkEvent& event, const FaultDecision& verdict) {
  if (!verdict.faulted()) return;
  std::scoped_lock lock(mutex_);
  commit_locked(event, verdict);
}

void ChaosSchedule::commit_batch(std::span<const std::pair<LinkEvent, FaultDecision>> staged) {
  if (staged.empty()) return;
  std::scoped_lock lock(mutex_);
  for (const auto& [event, verdict] : staged) commit_locked(event, verdict);
}

void ChaosSchedule::commit_locked(const LinkEvent& event, const FaultDecision& verdict) {
  // Record order within one verdict mirrors the historical decide() order:
  // (crash | partition | drop) terminally, else duplicate, delay, corrupt.
  if (verdict.drop) {
    record_locked(event, verdict.drop_kind, static_cast<std::size_t>(verdict.phase), 0);
    return;
  }
  if (verdict.duplicate) {
    record_locked(event, FaultKind::kDuplicate, static_cast<std::size_t>(verdict.phase), 0);
  }
  if (verdict.delay_rounds > 0) {
    record_locked(event, FaultKind::kDelay, static_cast<std::size_t>(verdict.phase),
                  verdict.delay_rounds);
  }
  if (verdict.corrupt) {
    record_locked(event, FaultKind::kCorrupt, static_cast<std::size_t>(verdict.phase), 0);
  }
}

void ChaosSchedule::record_locked(const LinkEvent& event, FaultKind kind, std::size_t phase,
                                  Round extra) {
  trace_.push_back(FaultRecord{event.round, event.from, event.to, event.seq, kind, extra});
  FaultCounters& counters = per_phase_[phase];
  switch (kind) {
    case FaultKind::kDrop: counters.drops += 1; break;
    case FaultKind::kDuplicate: counters.duplicates += 1; break;
    case FaultKind::kDelay: counters.delays += 1; break;
    case FaultKind::kCorrupt: counters.corrupts += 1; break;
    case FaultKind::kPartitionDrop: counters.partition_drops += 1; break;
    case FaultKind::kCrashDrop: counters.crash_drops += 1; break;
  }
}

std::vector<FaultRecord> ChaosSchedule::trace() const {
  std::scoped_lock lock(mutex_);
  return trace_;
}

std::vector<FaultRecord> ChaosSchedule::canonical_trace() const {
  std::vector<FaultRecord> sorted = trace();
  std::sort(sorted.begin(), sorted.end(), [](const FaultRecord& a, const FaultRecord& b) {
    if (a.round != b.round) return a.round < b.round;
    if (a.from != b.from) return a.from < b.from;
    if (a.to != b.to) return a.to < b.to;
    if (a.seq != b.seq) return a.seq < b.seq;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });
  return sorted;
}

std::string ChaosSchedule::canonical_trace_string() const {
  std::ostringstream os;
  for (const FaultRecord& r : canonical_trace()) {
    os << "r" << r.round << " " << r.from << "->" << r.to << " #" << r.seq << " "
       << to_string(r.kind);
    if (r.kind == FaultKind::kDelay) os << "+" << r.extra;
    os << "\n";
  }
  return os.str();
}

ChaosCounters ChaosSchedule::counters() const {
  std::scoped_lock lock(mutex_);
  ChaosCounters out;
  out.per_phase = per_phase_;
  return out;
}

void ChaosSchedule::clear_trace() {
  std::scoped_lock lock(mutex_);
  trace_.clear();
  per_phase_.assign(plan_.phases.size(), FaultCounters{});
}

}  // namespace idonly
