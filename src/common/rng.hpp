// Deterministic random number generation.
//
// Every stochastic choice in the library (adversary behaviour, input
// generation, churn schedules) flows from a single experiment seed so runs
// are exactly reproducible. We implement splitmix64 (for seeding) and
// xoshiro256** (for the stream) rather than depending on <random> engines
// whose streams are not guaranteed identical across standard libraries.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace idonly {

/// splitmix64 step — used to expand a single seed into xoshiro state and to
/// derive independent per-node seeds from (experiment_seed, node_id).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** — fast, high-quality, fully deterministic PRNG.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept;

  /// Uniform 64-bit word.
  [[nodiscard]] std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound) using Lemire rejection; bound > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with probability p.
  [[nodiscard]] bool chance(double p) noexcept;

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      using std::swap;
      swap(items[i - 1], items[below(i)]);
    }
  }

  /// Derive an independent child generator (e.g. one per node).
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Stable per-node seed derivation so adding nodes to a scenario does not
/// perturb the randomness of existing ones.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t experiment_seed, std::uint64_t stream) noexcept;

}  // namespace idonly
