// Run metrics collected by the simulators.
//
// The benchmark harness reproduces the paper's complexity *claims* (round
// complexity, message complexity, convergence rate) rather than testbed
// numbers, so the engine counts everything relevant: messages sent/delivered
// per kind, rounds executed, and per-node decision rounds.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "common/types.hpp"

namespace idonly {

/// Indexed by MsgKind (see net/message.hpp); kept as raw counters so the hot
/// path in the simulator is a single array increment.
struct MessageCounters {
  static constexpr std::size_t kKinds = 16;
  std::array<std::uint64_t, kKinds> sent{};
  std::array<std::uint64_t, kKinds> delivered{};

  [[nodiscard]] std::uint64_t total_sent() const noexcept;
  [[nodiscard]] std::uint64_t total_delivered() const noexcept;
};

struct Metrics {
  MessageCounters messages;
  Round rounds_executed = 0;
  /// Round at which each node reported done() (protocol termination).
  std::map<NodeId, Round> done_round;

  void reset();
  /// Human-readable one-line summary used by examples and benches.
  [[nodiscard]] std::string summary() const;
};

}  // namespace idonly
