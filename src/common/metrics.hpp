// Run metrics collected by the simulators.
//
// The benchmark harness reproduces the paper's complexity *claims* (round
// complexity, message complexity, convergence rate) rather than testbed
// numbers, so the engine counts everything relevant: messages sent/delivered
// per kind, rounds executed, and per-node decision rounds.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "common/types.hpp"

namespace idonly {

/// Indexed by MsgKind (see net/message.hpp); kept as raw counters so the hot
/// path in the simulator is a single array increment.
///
/// `sent` counts one per outgoing message (a broadcast is ONE send no matter
/// how many members receive it); `delivered` counts per-recipient, post
/// duplicate suppression. delivered may therefore exceed sent by up to the
/// member count, and undershoot it when recipients are gone or dedup fires.
struct MessageCounters {
  static constexpr std::size_t kKinds = 16;
  std::array<std::uint64_t, kKinds> sent{};
  std::array<std::uint64_t, kKinds> delivered{};

  [[nodiscard]] std::uint64_t total_sent() const noexcept;
  [[nodiscard]] std::uint64_t total_delivered() const noexcept;
};

/// Fan-out accounting for the mailbox layer (net/mailbox.hpp): how much
/// traffic the engine moved, how much of it was shared rather than copied,
/// and how much the once-per-message cached-hash dedup saved.
struct FanoutCounters {
  std::uint64_t deliveries = 0;       ///< per-recipient deliveries (post-dedup)
  std::uint64_t unique_payloads = 0;  ///< messages wrapped (hashed) once at send time
  std::uint64_t dedup_hits = 0;       ///< duplicate deposits suppressed via the cached hash
  std::uint64_t bytes_delivered = 0;  ///< wire-encoded bytes summed over deliveries

  void reset() { *this = FanoutCounters{}; }
};

struct Metrics {
  MessageCounters messages;
  FanoutCounters fanout;
  Round rounds_executed = 0;
  /// Round at which each node reported done() (protocol termination).
  std::map<NodeId, Round> done_round;

  void reset();
  /// Human-readable one-line summary used by examples and benches.
  [[nodiscard]] std::string summary() const;
};

}  // namespace idonly
