// Run metrics collected by the simulators.
//
// The benchmark harness reproduces the paper's complexity *claims* (round
// complexity, message complexity, convergence rate) rather than testbed
// numbers, so the engine counts everything relevant: messages sent/delivered
// per kind, rounds executed, and per-node decision rounds.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace idonly {

/// Indexed by MsgKind (see net/message.hpp); kept as raw counters so the hot
/// path in the simulator is a single array increment.
///
/// `sent` counts one per outgoing message (a broadcast is ONE send no matter
/// how many members receive it); `delivered` counts per-recipient, post
/// duplicate suppression. delivered may therefore exceed sent by up to the
/// member count, and undershoot it when recipients are gone or dedup fires.
struct MessageCounters {
  static constexpr std::size_t kKinds = 16;
  std::array<std::uint64_t, kKinds> sent{};
  std::array<std::uint64_t, kKinds> delivered{};

  [[nodiscard]] std::uint64_t total_sent() const noexcept;
  [[nodiscard]] std::uint64_t total_delivered() const noexcept;
};

/// Fan-out accounting for the mailbox layer (net/mailbox.hpp): how much
/// traffic the engine moved, how much of it was shared rather than copied,
/// and how much the once-per-message cached-hash dedup saved.
struct FanoutCounters {
  std::uint64_t deliveries = 0;       ///< per-recipient deliveries (post-dedup)
  std::uint64_t unique_payloads = 0;  ///< messages wrapped (hashed) once at send time
  std::uint64_t dedup_hits = 0;       ///< duplicate deposits suppressed via the cached hash
  std::uint64_t bytes_delivered = 0;  ///< wire-encoded bytes summed over deliveries
  /// Coalesced wire transfers: one per non-empty per-receiver round inbox
  /// (the datagrams a slab-framing wire would carry — see net/codec.hpp).
  /// `deliveries` is the per-message syscall baseline; deliveries/slab_sends
  /// is the coalescing factor the benches gate.
  std::uint64_t slab_sends = 0;
  /// Real sends the kernel refused or shortened (ENOBUFS, short sendto) —
  /// distinguishes kernel drops from injected chaos loss in soak runs.
  std::uint64_t send_failures = 0;
  /// Payload bytes the distributed coordinator store-and-forwarded in
  /// kDeliver frames (src/dist/). Zero when the workers exchange slabs over
  /// the direct mesh — the `--no-mesh` ablation's data-path cost, measurable.
  std::uint64_t coordinator_relay_bytes = 0;

  void reset() { *this = FanoutCounters{}; }

  FanoutCounters& operator+=(const FanoutCounters& other) {
    deliveries += other.deliveries;
    unique_payloads += other.unique_payloads;
    dedup_hits += other.dedup_hits;
    bytes_delivered += other.bytes_delivered;
    slab_sends += other.slab_sends;
    send_failures += other.send_failures;
    coordinator_relay_bytes += other.coordinator_relay_bytes;
    return *this;
  }
};

/// Compute/communication overlap accounting for the distributed shard
/// engine's data plane (src/dist/). In mesh mode workers exchange slabs
/// peer-to-peer with non-blocking I/O, so a round's transfer can complete
/// while the receiver is still stepping its own nodes; these counters make
/// the achieved overlap — and the residual serialization — measurable. In
/// relay mode (`--no-mesh`) `recv_stall_ns` instead measures time blocked
/// waiting for the coordinator's kDeliver, so the two modes are directly
/// comparable in BENCH_dist.json.
struct OverlapCounters {
  /// Rounds whose remote slabs had ALL arrived by the time the boundary
  /// merge wanted them (zero stall — communication fully hidden).
  std::uint64_t rounds_overlapped = 0;
  /// Nanoseconds blocked waiting for remote round input after local work
  /// finished (mesh: poll on peer sockets; relay: kDeliver wait).
  std::uint64_t recv_stall_ns = 0;
  /// Shard slabs sent worker-to-worker, bypassing the coordinator.
  std::uint64_t slabs_direct = 0;

  void reset() { *this = OverlapCounters{}; }

  OverlapCounters& operator+=(const OverlapCounters& other) {
    rounds_overlapped += other.rounds_overlapped;
    recv_stall_ns += other.recv_stall_ns;
    slabs_direct += other.slabs_direct;
    return *this;
  }
};

/// Wire-fault counts injected by one chaos phase (common/chaos.hpp). One
/// counter per fault verdict the schedule can hand an engine.
struct FaultCounters {
  std::uint64_t drops = 0;            ///< frames/messages discarded by coin
  std::uint64_t duplicates = 0;       ///< delivered twice
  std::uint64_t delays = 0;           ///< held for one or more extra rounds
  std::uint64_t corrupts = 0;         ///< one byte flipped (runtime engines)
  std::uint64_t partition_drops = 0;  ///< killed by a bidirectional partition
  std::uint64_t crash_drops = 0;      ///< killed by a crash window on an endpoint
  std::uint64_t truncations = 0;      ///< datagrams larger than the receive buffer (MSG_TRUNC)

  [[nodiscard]] std::uint64_t total() const noexcept;
  FaultCounters& operator+=(const FaultCounters& other) noexcept;
};

/// Full fault/recovery accounting for one chaos run: injected faults per
/// phase (filled by the ChaosSchedule) and the recovery actions the
/// self-healing runtime took in response (filled by RoundDriver/DriverPool).
struct ChaosCounters {
  std::vector<FaultCounters> per_phase;  ///< indexed by phase position in the plan
  std::uint64_t backoffs = 0;   ///< round-duration growths (late frames crossed threshold)
  std::uint64_t shrinks = 0;    ///< round-duration reductions after clean rounds
  std::uint64_t resyncs = 0;    ///< rounds fast-forwarded to catch up with peers
  std::uint64_t restarts = 0;   ///< wedged driver threads restarted by the watchdog

  [[nodiscard]] FaultCounters total_faults() const noexcept;
  /// Human-readable per-phase + recovery one-liner for benches and logs.
  [[nodiscard]] std::string summary() const;
};

/// One fuzz campaign's outcome accounting (src/fuzz/campaign.hpp). A
/// "boundary probe" is a deliberately non-resilient scenario (n <= 3f) whose
/// violations are expected and tracked separately — only resilient-scenario
/// failures make a campaign red.
struct CampaignCounters {
  std::uint64_t scenarios = 0;             ///< generated and executed
  std::uint64_t passed = 0;                ///< all expectations held, no violations
  std::uint64_t violations = 0;            ///< resilient runs with invariant violations
  std::uint64_t expectation_failures = 0;  ///< resilient runs with a failed expectation only
  std::uint64_t timeouts = 0;              ///< resilient runs that hit the round budget undecided
  std::uint64_t boundary_probes = 0;       ///< non-resilient (n <= 3f) scenarios executed
  std::uint64_t boundary_violations = 0;   ///< ... of which violated an invariant (expected)
  std::uint64_t minimized = 0;             ///< failures shrunk by the delta-debugging minimizer
  std::uint64_t generator_errors = 0;      ///< generated text failed to parse/round-trip (a bug)

  /// Human-readable one-liner for CLIs and logs.
  [[nodiscard]] std::string summary() const;
};

/// Prometheus-style text exposition of a campaign's counters, matching the
/// engine exposition's format.
[[nodiscard]] std::string prometheus_exposition(const CampaignCounters& campaign);

struct Metrics {
  MessageCounters messages;
  FanoutCounters fanout;
  /// Filled by distributed runs only; all-zero for in-process engines.
  OverlapCounters overlap;
  Round rounds_executed = 0;
  /// Round at which each node reported done() (protocol termination).
  std::map<NodeId, Round> done_round;

  void reset();
  /// Human-readable one-line summary used by examples and benches.
  [[nodiscard]] std::string summary() const;
};

/// Prometheus-style text exposition of every counter above (plus the chaos
/// fault/recovery counters when `chaos` is non-null, plus transport-level
/// wire faults when `wire_faults` is non-null): `# TYPE` headers and
/// one sample per line, suitable for a node-exporter textfile collector or
/// test assertions. Message kinds are labeled by their numeric MsgKind
/// index (the names live in net/, which common/ must not depend on);
/// zero-valued per-kind samples are omitted to keep the snapshot small.
///
/// `wire_faults` carries faults the TRANSPORT observed rather than chaos
/// injected — truncated datagrams (MSG_TRUNC), frames a shard worker could
/// not parse — as `idonly_wire_faults_total{fault=...}`. Together with
/// `idonly_fanout_send_failures_total` this makes a worker's wire errors
/// observable without grepping logs.
[[nodiscard]] std::string prometheus_exposition(const Metrics& metrics,
                                                const ChaosCounters* chaos = nullptr,
                                                const FaultCounters* wire_faults = nullptr);

}  // namespace idonly
