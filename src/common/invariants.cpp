#include "common/invariants.hpp"

#include <algorithm>

namespace idonly {

InvariantMonitor::InvariantMonitor(std::vector<Value> correct_inputs)
    : correct_inputs_(std::move(correct_inputs)) {}

void InvariantMonitor::on_event(const ProtocolEvent& event) {
  if (event.type != ProtocolEvent::Type::kDecided) return;
  std::scoped_lock lock(mutex_);

  const auto [it, inserted] = decisions_.emplace(event.node, event.value);
  if (!inserted) {
    if (!(it->second == event.value)) {
      agreement_violations_.push_back("node " + std::to_string(event.node) +
                                      " decided twice: " + it->second.to_string() + " then " +
                                      event.value.to_string());
    }
    return;
  }
  // Agreement: compare against any earlier decider (all earlier ones agree
  // with each other by induction, so one comparison suffices).
  for (const auto& [node, value] : decisions_) {
    if (node == event.node) continue;
    if (!(value == event.value)) {
      agreement_violations_.push_back("node " + std::to_string(event.node) + " decided " +
                                      event.value.to_string() + " but node " +
                                      std::to_string(node) + " decided " + value.to_string());
    }
    break;
  }
  if (!correct_inputs_.empty() &&
      std::find(correct_inputs_.begin(), correct_inputs_.end(), event.value) ==
          correct_inputs_.end()) {
    validity_violations_.push_back("node " + std::to_string(event.node) + " decided " +
                                   event.value.to_string() +
                                   " which is no correct node's input");
  }
}

void InvariantMonitor::set_termination_probe(Round budget, std::size_t min_deciders) {
  std::scoped_lock lock(mutex_);
  termination_budget_ = budget;
  min_deciders_ = min_deciders;
  liveness_violation_.clear();
}

void InvariantMonitor::finish(Round rounds_executed) {
  std::scoped_lock lock(mutex_);
  liveness_violation_.clear();
  if (termination_budget_ <= 0) return;
  if (rounds_executed < termination_budget_ || decisions_.size() >= min_deciders_) return;
  liveness_violation_ = "liveness: only " + std::to_string(decisions_.size()) + " of " +
                        std::to_string(min_deciders_) + " required node(s) decided within " +
                        std::to_string(termination_budget_) + " rounds";
}

bool InvariantMonitor::termination_ok() const {
  std::scoped_lock lock(mutex_);
  return liveness_violation_.empty();
}

bool InvariantMonitor::agreement_ok() const {
  std::scoped_lock lock(mutex_);
  return agreement_violations_.empty();
}

bool InvariantMonitor::validity_ok() const {
  std::scoped_lock lock(mutex_);
  return validity_violations_.empty();
}

std::size_t InvariantMonitor::decided_count() const {
  std::scoped_lock lock(mutex_);
  return decisions_.size();
}

std::vector<std::string> InvariantMonitor::violations() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::string> out = agreement_violations_;
  out.insert(out.end(), validity_violations_.begin(), validity_violations_.end());
  if (!liveness_violation_.empty()) out.push_back(liveness_violation_);
  return out;
}

}  // namespace idonly
