// Exact integer arithmetic for the paper's quorum thresholds.
//
// Every acceptance rule in the paper is of the form "received at least
// n_v/3 (resp. 2*n_v/3) messages", where n_v is the number of distinct nodes
// that have sent at least one message to v so far. Evaluating these with
// floating point would silently change the protocol (e.g. n_v = 4 requires
// 2 echoes for the n_v/3 rule, not 1.33 rounded down), so all comparisons go
// through these helpers, which cross-multiply in 64-bit integers.
#pragma once

#include <cstddef>
#include <cstdint>

namespace idonly {

/// True iff count >= n/3 exactly (i.e. 3*count >= n).
[[nodiscard]] constexpr bool at_least_one_third(std::size_t count, std::size_t n) noexcept {
  return 3 * static_cast<std::uint64_t>(count) >= static_cast<std::uint64_t>(n);
}

/// True iff count >= 2n/3 exactly (i.e. 3*count >= 2n).
[[nodiscard]] constexpr bool at_least_two_thirds(std::size_t count, std::size_t n) noexcept {
  return 3 * static_cast<std::uint64_t>(count) >= 2 * static_cast<std::uint64_t>(n);
}

/// True iff count < n/3 exactly (the consensus "switch to coordinator" rule).
[[nodiscard]] constexpr bool less_than_one_third(std::size_t count, std::size_t n) noexcept {
  return !at_least_one_third(count, n);
}

/// floor(n/3) — the number of extreme values discarded on each side by the
/// approximate-agreement algorithm.
[[nodiscard]] constexpr std::size_t floor_third(std::size_t n) noexcept { return n / 3; }

/// Maximum f tolerated for a given n under the optimal resiliency n > 3f.
[[nodiscard]] constexpr std::size_t max_tolerated_faults(std::size_t n) noexcept {
  return n == 0 ? 0 : (n - 1) / 3;
}

/// True iff the configuration satisfies the paper's resiliency assumption.
[[nodiscard]] constexpr bool resilient(std::size_t n, std::size_t f) noexcept { return n > 3 * f; }

// Imbs–Raynal two-phase reliable broadcast thresholds. The unknown-n
// adaptation replaces its n-f / (n+f)/2 bounds with fractions of n_v that
// are safe under the algorithm's stronger resiliency n > 5f:
// n - 2f > 3n/5 (join/witness) and n - f > 4n/5 (accept).

/// True iff count >= 3n/5 exactly (i.e. 5*count >= 3*n).
[[nodiscard]] constexpr bool at_least_three_fifths(std::size_t count, std::size_t n) noexcept {
  return 5 * static_cast<std::uint64_t>(count) >= 3 * static_cast<std::uint64_t>(n);
}

/// True iff count >= 4n/5 exactly (i.e. 5*count >= 4*n).
[[nodiscard]] constexpr bool at_least_four_fifths(std::size_t count, std::size_t n) noexcept {
  return 5 * static_cast<std::uint64_t>(count) >= 4 * static_cast<std::uint64_t>(n);
}

/// True iff the configuration satisfies the Imbs–Raynal resiliency n > 5f.
[[nodiscard]] constexpr bool resilient_imbs(std::size_t n, std::size_t f) noexcept {
  return n > 5 * f;
}

}  // namespace idonly
