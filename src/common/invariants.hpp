// Online safety-invariant monitoring for chaos runs.
//
// Chaos experiments inject faults while a protocol runs; the question each
// run answers is "did safety hold?". This observer watches the protocol
// event stream (common/observer.hpp) and checks the paper's two safety
// properties as decisions arrive:
//
//   * AGREEMENT — every correct node that decides, decides the same value,
//     and no node decides twice with different values.
//   * VALIDITY — every decision equals some correct node's input (the
//     paper's strong validity; skipped when the input set is not supplied).
//
// An optional BOUNDED-TERMINATION probe turns the monitor into a liveness
// check as well: arm it with a round budget (and a minimum decider count,
// default 1) and call finish() with the rounds the run actually consumed —
// a run that burned through the budget without enough deciders records a
// liveness violation. Fuzz campaigns use this to catch wedges (protocol
// stalls under churn/chaos) that no safety probe can see.
//
// Unlike EventLog this monitor is thread-safe: runtime chaos runs have one
// RoundDriver thread per node all reporting into one monitor. Attach only
// correct nodes' processes — Byzantine decisions are unconstrained.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/observer.hpp"

namespace idonly {

class InvariantMonitor final : public ProtocolObserver {
 public:
  /// `correct_inputs`: the correct nodes' input values, for the validity
  /// probe. Empty ⇒ validity is not checked (vacuously ok).
  explicit InvariantMonitor(std::vector<Value> correct_inputs = {});

  void on_event(const ProtocolEvent& event) override;

  /// Arm the bounded-termination probe: a finish() reporting that at least
  /// `budget` rounds elapsed while fewer than `min_deciders` nodes decided
  /// records a liveness violation. budget == 0 disarms the probe.
  void set_termination_probe(Round budget, std::size_t min_deciders = 1);

  /// Close the run: `rounds_executed` is how many rounds the engine ran.
  /// Evaluates the termination probe (idempotent — re-finishing replaces
  /// the previous liveness verdict rather than stacking violations).
  void finish(Round rounds_executed);

  [[nodiscard]] bool agreement_ok() const;
  [[nodiscard]] bool validity_ok() const;
  /// False only after a finish() that exhausted the armed budget.
  [[nodiscard]] bool termination_ok() const;
  [[nodiscard]] bool ok() const { return agreement_ok() && validity_ok() && termination_ok(); }

  [[nodiscard]] std::size_t decided_count() const;
  /// Human-readable description of every violation observed, in order.
  [[nodiscard]] std::vector<std::string> violations() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Value> correct_inputs_;
  std::map<NodeId, Value> decisions_;
  std::vector<std::string> agreement_violations_;
  std::vector<std::string> validity_violations_;
  Round termination_budget_ = 0;        ///< 0 = probe disarmed
  std::size_t min_deciders_ = 1;
  std::string liveness_violation_;      ///< empty = probe clean (or disarmed)
};

}  // namespace idonly
