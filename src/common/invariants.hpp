// Online safety-invariant monitoring for chaos runs.
//
// Chaos experiments inject faults while a protocol runs; the question each
// run answers is "did safety hold?". This observer watches the protocol
// event stream (common/observer.hpp) and checks the paper's two safety
// properties as decisions arrive:
//
//   * AGREEMENT — every correct node that decides, decides the same value,
//     and no node decides twice with different values.
//   * VALIDITY — every decision equals some correct node's input (the
//     paper's strong validity; skipped when the input set is not supplied).
//
// Unlike EventLog this monitor is thread-safe: runtime chaos runs have one
// RoundDriver thread per node all reporting into one monitor. Attach only
// correct nodes' processes — Byzantine decisions are unconstrained.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/observer.hpp"

namespace idonly {

class InvariantMonitor final : public ProtocolObserver {
 public:
  /// `correct_inputs`: the correct nodes' input values, for the validity
  /// probe. Empty ⇒ validity is not checked (vacuously ok).
  explicit InvariantMonitor(std::vector<Value> correct_inputs = {});

  void on_event(const ProtocolEvent& event) override;

  [[nodiscard]] bool agreement_ok() const;
  [[nodiscard]] bool validity_ok() const;
  [[nodiscard]] bool ok() const { return agreement_ok() && validity_ok(); }

  [[nodiscard]] std::size_t decided_count() const;
  /// Human-readable description of every violation observed, in order.
  [[nodiscard]] std::vector<std::string> violations() const;

 private:
  mutable std::mutex mutex_;
  std::vector<Value> correct_inputs_;
  std::map<NodeId, Value> decisions_;
  std::vector<std::string> agreement_violations_;
  std::vector<std::string> validity_violations_;
};

}  // namespace idonly
