#include "common/rng.hpp"

namespace idonly {

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // Expand the seed; xoshiro state must not be all-zero, which splitmix64
  // output never is for all four words simultaneously.
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  __uint128_t m = static_cast<__uint128_t>(next()) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept { return lo + (hi - lo) * uniform(); }

bool Rng::chance(double p) noexcept { return uniform() < p; }

Rng Rng::fork() noexcept { return Rng{next()}; }

std::uint64_t derive_seed(std::uint64_t experiment_seed, std::uint64_t stream) noexcept {
  std::uint64_t sm = experiment_seed ^ (0xd1b54a32d192ed03ULL * (stream + 1));
  (void)splitmix64(sm);
  return splitmix64(sm);
}

}  // namespace idonly
