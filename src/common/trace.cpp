#include "common/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace idonly {

namespace {

/// Minimal JSON string escaping for the `detail` field.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool canonical_record_less(const TraceRecord& a, const TraceRecord& b) noexcept {
  if (a.round != b.round) return a.round < b.round;
  if (a.from != b.from) return a.from < b.from;
  if (a.to != b.to) return a.to < b.to;
  if (a.link_seq != b.link_seq) return a.link_seq < b.link_seq;
  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
}

const char* to_string(TraceEngine engine) noexcept {
  switch (engine) {
    case TraceEngine::kSync: return "sync";
    case TraceEngine::kAsync: return "async";
    case TraceEngine::kRuntime: return "runtime";
  }
  return "?";
}

const char* to_string(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kLinkClean: return "link_clean";
    case TraceEventKind::kLinkDrop: return "link_drop";
    case TraceEventKind::kLinkDuplicate: return "link_dup";
    case TraceEventKind::kLinkDelay: return "link_delay";
    case TraceEventKind::kLinkCorrupt: return "link_corrupt";
    case TraceEventKind::kSend: return "send";
    case TraceEventKind::kDeliver: return "deliver";
    case TraceEventKind::kLateFrame: return "late_frame";
    case TraceEventKind::kProtocol: return "protocol";
    case TraceEventKind::kClockBackoff: return "backoff";
    case TraceEventKind::kClockShrink: return "shrink";
    case TraceEventKind::kClockResync: return "resync";
    case TraceEventKind::kWatchdogRestart: return "restart";
  }
  return "?";
}

bool is_canonical(TraceEventKind kind) noexcept {
  switch (kind) {
    case TraceEventKind::kLinkClean:
    case TraceEventKind::kLinkDrop:
    case TraceEventKind::kLinkDuplicate:
    case TraceEventKind::kLinkDelay:
    case TraceEventKind::kLinkCorrupt: return true;
    default: return false;
  }
}

TraceRecord make_send_record(NodeId node, Round round, std::optional<NodeId> to) noexcept {
  return TraceRecord{.kind = TraceEventKind::kSend,
                     .node = node,
                     .round = round,
                     .seq = 0,
                     .from = node,
                     .to = to.value_or(0),
                     .link_seq = 0,
                     .extra = to.has_value() ? 0 : 1,  // 1 = broadcast
                     .detail = {}};
}

TraceRecord make_deliver_record(NodeId node, Round round, NodeId from) noexcept {
  return TraceRecord{.kind = TraceEventKind::kDeliver,
                     .node = node,
                     .round = round,
                     .seq = 0,
                     .from = from,
                     .to = node,
                     .link_seq = 0,
                     .extra = 0,
                     .detail = {}};
}

TraceRecord make_link_verdict_record(const LinkEvent& event,
                                     const FaultDecision& verdict) noexcept {
  // Priority is a pure function of the verdict, so the chosen kind
  // reproduces across engines exactly like the verdict itself.
  TraceEventKind kind = TraceEventKind::kLinkClean;
  if (verdict.drop) {
    kind = TraceEventKind::kLinkDrop;
  } else if (verdict.duplicate) {
    kind = TraceEventKind::kLinkDuplicate;
  } else if (verdict.delay_rounds > 0) {
    kind = TraceEventKind::kLinkDelay;
  } else if (verdict.corrupt) {
    kind = TraceEventKind::kLinkCorrupt;
  }
  return TraceRecord{.kind = kind,
                     .node = event.to,
                     .round = event.round,
                     .seq = 0,
                     .from = event.from,
                     .to = event.to,
                     .link_seq = event.seq,
                     .extra = verdict.delay_rounds,
                     .detail = {}};
}

void TraceObserver::on_event(const ProtocolEvent& event) {
  if (recorder_ != nullptr) recorder_->record_protocol(event);
  if (next_ != nullptr) next_->on_event(event);
}

TraceRecorder::TraceRecorder(TraceEngine engine, std::size_t per_node_capacity)
    : engine_(engine), capacity_(per_node_capacity == 0 ? 1 : per_node_capacity) {}

void TraceRecorder::record(TraceRecord rec) {
  std::scoped_lock lock(mutex_);
  record_locked(std::move(rec));
}

void TraceRecorder::record_batch(std::span<TraceRecord> records) {
  if (records.empty()) return;
  std::scoped_lock lock(mutex_);
  for (TraceRecord& rec : records) record_locked(std::move(rec));
}

void TraceRecorder::record_locked(TraceRecord rec) {
  NodeRing& ring = rings_[rec.node];
  rec.seq = ring.next_seq++;
  if (ring.records.size() >= capacity_) {
    ring.records.pop_front();
    ring.evicted += 1;
  }
  ring.records.push_back(std::move(rec));
}

void TraceRecorder::record_link_verdict(const LinkEvent& event, const FaultDecision& verdict) {
  record(make_link_verdict_record(event, verdict));
}

void TraceRecorder::record_send(NodeId node, Round round, std::optional<NodeId> to) {
  record(make_send_record(node, round, to));
}

void TraceRecorder::record_deliver(NodeId node, Round round, NodeId from) {
  record(make_deliver_record(node, round, from));
}

void TraceRecorder::record_protocol(const ProtocolEvent& event) {
  record(TraceRecord{.kind = TraceEventKind::kProtocol,
                     .node = event.node,
                     .round = event.round,
                     .seq = 0,
                     .from = event.subject,
                     .to = event.node,
                     .link_seq = 0,
                     .extra = event.phase,
                     .detail = event.to_string()});
}

void TraceRecorder::record_clock(NodeId node, TraceEventKind kind, Round round,
                                 std::int64_t extra) {
  record(TraceRecord{.kind = kind,
                     .node = node,
                     .round = round,
                     .seq = 0,
                     .from = node,
                     .to = node,
                     .link_seq = 0,
                     .extra = extra,
                     .detail = {}});
}

std::size_t TraceRecorder::size() const {
  std::scoped_lock lock(mutex_);
  std::size_t total = 0;
  for (const auto& [id, ring] : rings_) total += ring.records.size();
  return total;
}

std::uint64_t TraceRecorder::evicted() const {
  std::scoped_lock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [id, ring] : rings_) total += ring.evicted;
  return total;
}

void TraceRecorder::clear() {
  std::scoped_lock lock(mutex_);
  rings_.clear();
}

std::vector<TraceRecord> TraceRecorder::snapshot() const {
  std::scoped_lock lock(mutex_);
  std::vector<TraceRecord> out;
  for (const auto& [id, ring] : rings_) {
    out.insert(out.end(), ring.records.begin(), ring.records.end());
  }
  return out;
}

std::vector<TraceRecorder::RingStats> TraceRecorder::ring_stats() const {
  std::scoped_lock lock(mutex_);
  std::vector<RingStats> out;
  out.reserve(rings_.size());
  for (const auto& [id, ring] : rings_) {
    out.push_back(RingStats{id, ring.next_seq, ring.evicted});
  }
  return out;
}

void TraceRecorder::absorb_ring(NodeId node, std::vector<TraceRecord> records,
                                std::uint64_t next_seq, std::uint64_t evicted) {
  std::scoped_lock lock(mutex_);
  auto [it, inserted] = rings_.try_emplace(node);
  if (!inserted) {
    throw std::invalid_argument("absorb_ring: node " + std::to_string(node) +
                                " already has records");
  }
  NodeRing& ring = it->second;
  ring.next_seq = next_seq;
  ring.evicted = evicted;
  for (TraceRecord& rec : records) {
    rec.node = node;
    ring.records.push_back(std::move(rec));
  }
}

std::vector<TraceRecord> TraceRecorder::canonical() const {
  std::vector<TraceRecord> out;
  for (TraceRecord& rec : snapshot()) {
    if (!is_canonical(rec.kind)) continue;
    if (rec.from == rec.to) continue;  // loopback: engine-dependent, never faulted
    out.push_back(std::move(rec));
  }
  std::sort(out.begin(), out.end(), canonical_record_less);
  return out;
}

std::string to_jsonl_line(const TraceRecord& rec, TraceEngine engine) {
  std::ostringstream os;
  os << "{\"engine\":\"" << to_string(engine) << "\",\"node\":" << rec.node
     << ",\"seq\":" << rec.seq << ",\"kind\":\"" << to_string(rec.kind)
     << "\",\"round\":" << rec.round << ",\"from\":" << rec.from << ",\"to\":" << rec.to
     << ",\"link_seq\":" << rec.link_seq << ",\"extra\":" << rec.extra;
  if (!rec.detail.empty()) os << ",\"detail\":\"" << json_escape(rec.detail) << "\"";
  os << "}";
  return os.str();
}

std::string to_canonical_line(const TraceRecord& rec) {
  std::ostringstream os;
  os << "{\"kind\":\"" << to_string(rec.kind) << "\",\"round\":" << rec.round
     << ",\"from\":" << rec.from << ",\"to\":" << rec.to << ",\"seq\":" << rec.link_seq
     << ",\"extra\":" << rec.extra << "}";
  return os.str();
}

std::string TraceRecorder::jsonl() const {
  std::ostringstream os;
  os << "{\"idonly_trace\":1,\"engine\":\"" << to_string(engine_)
     << "\",\"records\":" << size() << ",\"evicted\":" << evicted() << "}\n";
  for (const TraceRecord& rec : snapshot()) os << to_jsonl_line(rec, engine_) << "\n";
  return os.str();
}

std::string TraceRecorder::canonical_jsonl() const {
  std::ostringstream os;
  for (const TraceRecord& rec : canonical()) os << to_canonical_line(rec) << "\n";
  return os.str();
}

std::string TraceRecorder::chrome_trace_json() const {
  // Rounds have no wall-clock in the simulators, so the timeline is logical:
  // 1 round = 1000 fake microseconds, records spread by capture order.
  std::ostringstream os;
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceRecord& rec : snapshot()) {
    if (!first) os << ",";
    first = false;
    const std::int64_t ts =
        rec.round * 1000 + static_cast<std::int64_t>(rec.seq % 1000);
    os << "{\"name\":\"" << to_string(rec.kind) << "\",\"cat\":\""
       << (is_canonical(rec.kind) ? "link" : "engine") << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
       << ts << ",\"pid\":" << rec.node << ",\"tid\":" << rec.from << ",\"args\":{\"round\":"
       << rec.round << ",\"to\":" << rec.to << ",\"link_seq\":" << rec.link_seq
       << ",\"extra\":" << rec.extra;
    if (!rec.detail.empty()) os << ",\"detail\":\"" << json_escape(rec.detail) << "\"";
    os << "}}";
  }
  os << "]}";
  return os.str();
}

}  // namespace idonly
