#include "common/siphash.hpp"

namespace idonly {

namespace {

constexpr std::uint64_t rotl64(std::uint64_t x, int b) noexcept {
  return (x << b) | (x >> (64 - b));
}

std::uint64_t load_le64(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

struct SipState {
  std::uint64_t v0, v1, v2, v3;

  void round() noexcept {
    v0 += v1;
    v1 = rotl64(v1, 13);
    v1 ^= v0;
    v0 = rotl64(v0, 32);
    v2 += v3;
    v3 = rotl64(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl64(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl64(v1, 17);
    v1 ^= v2;
    v2 = rotl64(v2, 32);
  }
};

}  // namespace

std::uint64_t siphash24(const void* data, std::size_t size, const SipHashKey& key) {
  const auto* in = static_cast<const std::uint8_t*>(data);
  const std::uint64_t k0 = load_le64(key.data());
  const std::uint64_t k1 = load_le64(key.data() + 8);

  SipState s{0x736f6d6570736575ULL ^ k0, 0x646f72616e646f6dULL ^ k1,
             0x6c7967656e657261ULL ^ k0, 0x7465646279746573ULL ^ k1};

  const std::size_t blocks = size / 8;
  for (std::size_t i = 0; i < blocks; ++i) {
    const std::uint64_t m = load_le64(in + 8 * i);
    s.v3 ^= m;
    s.round();
    s.round();
    s.v0 ^= m;
  }

  // Final block: remaining bytes + length in the top byte.
  std::uint64_t last = static_cast<std::uint64_t>(size & 0xFF) << 56;
  const std::size_t tail = size & 7;
  for (std::size_t i = 0; i < tail; ++i) {
    last |= static_cast<std::uint64_t>(in[blocks * 8 + i]) << (8 * i);
  }
  s.v3 ^= last;
  s.round();
  s.round();
  s.v0 ^= last;

  s.v2 ^= 0xFF;
  s.round();
  s.round();
  s.round();
  s.round();
  return s.v0 ^ s.v1 ^ s.v2 ^ s.v3;
}

std::uint64_t siphash24(std::span<const std::byte> data, const SipHashKey& key) {
  return siphash24(data.data(), data.size(), key);
}

}  // namespace idonly
