#include "common/value.hpp"

#include <sstream>

namespace idonly {

std::string Value::to_string() const {
  if (is_bot_) return "⊥";
  std::ostringstream os;
  os << real_;
  return os.str();
}

}  // namespace idonly
