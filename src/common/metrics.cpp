#include "common/metrics.hpp"

#include <numeric>
#include <sstream>

namespace idonly {

std::uint64_t MessageCounters::total_sent() const noexcept {
  return std::accumulate(sent.begin(), sent.end(), std::uint64_t{0});
}

std::uint64_t MessageCounters::total_delivered() const noexcept {
  return std::accumulate(delivered.begin(), delivered.end(), std::uint64_t{0});
}

std::uint64_t FaultCounters::total() const noexcept {
  return drops + duplicates + delays + corrupts + partition_drops + crash_drops;
}

FaultCounters& FaultCounters::operator+=(const FaultCounters& other) noexcept {
  drops += other.drops;
  duplicates += other.duplicates;
  delays += other.delays;
  corrupts += other.corrupts;
  partition_drops += other.partition_drops;
  crash_drops += other.crash_drops;
  return *this;
}

FaultCounters ChaosCounters::total_faults() const noexcept {
  FaultCounters sum;
  for (const FaultCounters& phase : per_phase) sum += phase;
  return sum;
}

std::string ChaosCounters::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < per_phase.size(); ++i) {
    const FaultCounters& p = per_phase[i];
    os << "phase" << i << "[drop=" << p.drops << " dup=" << p.duplicates
       << " delay=" << p.delays << " corrupt=" << p.corrupts
       << " partition=" << p.partition_drops << " crash=" << p.crash_drops << "] ";
  }
  os << "recovery[backoffs=" << backoffs << " shrinks=" << shrinks << " resyncs=" << resyncs
     << " restarts=" << restarts << "]";
  return os.str();
}

void Metrics::reset() {
  messages = MessageCounters{};
  fanout.reset();
  rounds_executed = 0;
  done_round.clear();
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds_executed << " sent=" << messages.total_sent()
     << " delivered=" << messages.total_delivered() << " dedup_hits=" << fanout.dedup_hits
     << " bytes=" << fanout.bytes_delivered << " done_nodes=" << done_round.size();
  return os.str();
}

}  // namespace idonly
