#include "common/metrics.hpp"

#include <numeric>
#include <sstream>
#include <utility>

namespace idonly {

std::uint64_t MessageCounters::total_sent() const noexcept {
  return std::accumulate(sent.begin(), sent.end(), std::uint64_t{0});
}

std::uint64_t MessageCounters::total_delivered() const noexcept {
  return std::accumulate(delivered.begin(), delivered.end(), std::uint64_t{0});
}

std::uint64_t FaultCounters::total() const noexcept {
  return drops + duplicates + delays + corrupts + partition_drops + crash_drops + truncations;
}

FaultCounters& FaultCounters::operator+=(const FaultCounters& other) noexcept {
  drops += other.drops;
  duplicates += other.duplicates;
  delays += other.delays;
  corrupts += other.corrupts;
  partition_drops += other.partition_drops;
  crash_drops += other.crash_drops;
  truncations += other.truncations;
  return *this;
}

FaultCounters ChaosCounters::total_faults() const noexcept {
  FaultCounters sum;
  for (const FaultCounters& phase : per_phase) sum += phase;
  return sum;
}

std::string ChaosCounters::summary() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < per_phase.size(); ++i) {
    const FaultCounters& p = per_phase[i];
    os << "phase" << i << "[drop=" << p.drops << " dup=" << p.duplicates
       << " delay=" << p.delays << " corrupt=" << p.corrupts
       << " partition=" << p.partition_drops << " crash=" << p.crash_drops
       << " trunc=" << p.truncations << "] ";
  }
  os << "recovery[backoffs=" << backoffs << " shrinks=" << shrinks << " resyncs=" << resyncs
     << " restarts=" << restarts << "]";
  return os.str();
}

void Metrics::reset() {
  messages = MessageCounters{};
  fanout.reset();
  overlap.reset();
  rounds_executed = 0;
  done_round.clear();
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds_executed << " sent=" << messages.total_sent()
     << " delivered=" << messages.total_delivered() << " dedup_hits=" << fanout.dedup_hits
     << " bytes=" << fanout.bytes_delivered << " done_nodes=" << done_round.size();
  return os.str();
}

namespace {

void expose(std::ostringstream& os, const char* name, const char* type, std::uint64_t value) {
  os << "# TYPE " << name << " " << type << "\n" << name << " " << value << "\n";
}

}  // namespace

std::string CampaignCounters::summary() const {
  std::ostringstream os;
  os << "scenarios=" << scenarios << " passed=" << passed << " violations=" << violations
     << " expectation_failures=" << expectation_failures << " timeouts=" << timeouts
     << " boundary_probes=" << boundary_probes << " boundary_violations=" << boundary_violations
     << " minimized=" << minimized << " generator_errors=" << generator_errors;
  return os.str();
}

std::string prometheus_exposition(const CampaignCounters& campaign) {
  std::ostringstream os;
  expose(os, "idonly_fuzz_scenarios_total", "counter", campaign.scenarios);
  expose(os, "idonly_fuzz_passed_total", "counter", campaign.passed);
  expose(os, "idonly_fuzz_violations_total", "counter", campaign.violations);
  expose(os, "idonly_fuzz_expectation_failures_total", "counter", campaign.expectation_failures);
  expose(os, "idonly_fuzz_timeouts_total", "counter", campaign.timeouts);
  expose(os, "idonly_fuzz_boundary_probes_total", "counter", campaign.boundary_probes);
  expose(os, "idonly_fuzz_boundary_violations_total", "counter", campaign.boundary_violations);
  expose(os, "idonly_fuzz_minimized_total", "counter", campaign.minimized);
  expose(os, "idonly_fuzz_generator_errors_total", "counter", campaign.generator_errors);
  return os.str();
}

std::string prometheus_exposition(const Metrics& metrics, const ChaosCounters* chaos,
                                  const FaultCounters* wire_faults) {
  std::ostringstream os;
  expose(os, "idonly_rounds_executed", "counter",
         static_cast<std::uint64_t>(metrics.rounds_executed < 0 ? 0 : metrics.rounds_executed));

  os << "# TYPE idonly_messages_sent_total counter\n";
  for (std::size_t k = 0; k < MessageCounters::kKinds; ++k) {
    if (metrics.messages.sent[k] == 0) continue;
    os << "idonly_messages_sent_total{kind=\"" << k << "\"} " << metrics.messages.sent[k] << "\n";
  }
  os << "# TYPE idonly_messages_delivered_total counter\n";
  for (std::size_t k = 0; k < MessageCounters::kKinds; ++k) {
    if (metrics.messages.delivered[k] == 0) continue;
    os << "idonly_messages_delivered_total{kind=\"" << k << "\"} " << metrics.messages.delivered[k]
       << "\n";
  }

  expose(os, "idonly_fanout_deliveries_total", "counter", metrics.fanout.deliveries);
  expose(os, "idonly_fanout_unique_payloads_total", "counter", metrics.fanout.unique_payloads);
  expose(os, "idonly_fanout_dedup_hits_total", "counter", metrics.fanout.dedup_hits);
  expose(os, "idonly_fanout_bytes_delivered_total", "counter", metrics.fanout.bytes_delivered);
  expose(os, "idonly_fanout_slab_sends_total", "counter", metrics.fanout.slab_sends);
  expose(os, "idonly_fanout_send_failures_total", "counter", metrics.fanout.send_failures);
  expose(os, "idonly_fanout_coordinator_relay_bytes_total", "counter",
         metrics.fanout.coordinator_relay_bytes);
  expose(os, "idonly_overlap_rounds_total", "counter", metrics.overlap.rounds_overlapped);
  expose(os, "idonly_overlap_recv_stall_ns_total", "counter", metrics.overlap.recv_stall_ns);
  expose(os, "idonly_overlap_slabs_direct_total", "counter", metrics.overlap.slabs_direct);
  expose(os, "idonly_done_nodes", "gauge", metrics.done_round.size());

  if (chaos != nullptr) {
    os << "# TYPE idonly_chaos_faults_total counter\n";
    for (std::size_t i = 0; i < chaos->per_phase.size(); ++i) {
      const FaultCounters& p = chaos->per_phase[i];
      const std::pair<const char*, std::uint64_t> faults[] = {
          {"drop", p.drops},           {"dup", p.duplicates},
          {"delay", p.delays},         {"corrupt", p.corrupts},
          {"partition", p.partition_drops}, {"crash", p.crash_drops},
          {"trunc", p.truncations}};
      for (const auto& [fault, count] : faults) {
        if (count == 0) continue;
        os << "idonly_chaos_faults_total{phase=\"" << i << "\",fault=\"" << fault << "\"} "
           << count << "\n";
      }
    }
    os << "# TYPE idonly_recovery_actions_total counter\n";
    const std::pair<const char*, std::uint64_t> actions[] = {{"backoff", chaos->backoffs},
                                                             {"shrink", chaos->shrinks},
                                                             {"resync", chaos->resyncs},
                                                             {"restart", chaos->restarts}};
    for (const auto& [action, count] : actions) {
      os << "idonly_recovery_actions_total{action=\"" << action << "\"} " << count << "\n";
    }
  }
  if (wire_faults != nullptr) {
    // Transport-observed faults (not chaos-injected): every sample is
    // emitted — including zeros — because "no wire errors" is itself the
    // signal a soak dashboard alerts on.
    os << "# TYPE idonly_wire_faults_total counter\n";
    const std::pair<const char*, std::uint64_t> faults[] = {
        {"trunc", wire_faults->truncations}, {"drop", wire_faults->drops},
        {"dup", wire_faults->duplicates},    {"delay", wire_faults->delays},
        {"corrupt", wire_faults->corrupts}};
    for (const auto& [fault, count] : faults) {
      os << "idonly_wire_faults_total{fault=\"" << fault << "\"} " << count << "\n";
    }
  }
  return os.str();
}

}  // namespace idonly
