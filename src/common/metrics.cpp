#include "common/metrics.hpp"

#include <numeric>
#include <sstream>

namespace idonly {

std::uint64_t MessageCounters::total_sent() const noexcept {
  return std::accumulate(sent.begin(), sent.end(), std::uint64_t{0});
}

std::uint64_t MessageCounters::total_delivered() const noexcept {
  return std::accumulate(delivered.begin(), delivered.end(), std::uint64_t{0});
}

void Metrics::reset() {
  messages = MessageCounters{};
  fanout.reset();
  rounds_executed = 0;
  done_round.clear();
}

std::string Metrics::summary() const {
  std::ostringstream os;
  os << "rounds=" << rounds_executed << " sent=" << messages.total_sent()
     << " delivered=" << messages.total_delivered() << " dedup_hits=" << fanout.dedup_hits
     << " bytes=" << fanout.bytes_delivered << " done_nodes=" << done_round.size();
  return os.str();
}

}  // namespace idonly
