#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace idonly {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  if (q <= 0) return sorted.front();
  if (q >= 1) return sorted.back();
  // Nearest-rank: smallest rank with rank/n >= q. The product q·n needs an
  // epsilon guard before ceil: e.g. 0.3 * 10 evaluates to 3.0000000000000004
  // in IEEE double, which would otherwise ceil into rank 4 and return the
  // wrong sample (off by one whenever q·n is mathematically an integer).
  const double scaled = q * static_cast<double>(sorted.size());
  auto rank = static_cast<std::size_t>(std::ceil(scaled - 1e-9));
  if (rank < 1) rank = 1;
  if (rank > sorted.size()) rank = sorted.size();
  return sorted[rank - 1];
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double sum = 0;
  for (double x : samples) sum += x;
  s.mean = sum / static_cast<double>(samples.size());
  double sq = 0;
  for (double x : samples) sq += (x - s.mean) * (x - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(sq / static_cast<double>(samples.size() - 1))
                 : 0.0;
  s.min = samples.front();
  s.max = samples.back();
  s.p50 = percentile_sorted(samples, 0.50);
  s.p95 = percentile_sorted(samples, 0.95);
  return s;
}

std::string Summary::to_string() const {
  std::ostringstream os;
  os << "n=" << count << " mean=" << mean << " sd=" << stddev << " min=" << min
     << " p50=" << p50 << " p95=" << p95 << " max=" << max;
  return os.str();
}

}  // namespace idonly
