// Protocol event instrumentation.
//
// Core processes emit structured events (acceptance, decisions, coordinator
// changes, chain growth) to an optional, non-owning observer. Production
// deployments hang metrics/logging off this; tests assert on exact event
// streams instead of poking at internals.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/value.hpp"

namespace idonly {

struct ProtocolEvent {
  enum class Type : std::uint8_t {
    kAccepted,             ///< reliable broadcast: (m, s) accepted (value = m, subject = s)
    kDecided,              ///< consensus: output fixed (value; phase set)
    kOpinionAdopted,       ///< consensus: x_v changed by a quorum or coordinator
    kCoordinatorSelected,  ///< rotor: subject = selected coordinator
    kGoodOpinionAccepted,  ///< rotor: accepted opinion from previous coordinator (subject)
    kChainExtended,        ///< total order: chain grew (phase = new length)
  };

  Type type{};
  NodeId node = 0;          ///< emitting process
  Round round = 0;          ///< local round of the event
  Value value;              ///< payload / opinion when applicable
  NodeId subject = 0;       ///< source / coordinator when applicable
  std::int64_t phase = 0;   ///< phase or auxiliary count

  [[nodiscard]] std::string to_string() const;
};

class ProtocolObserver {
 public:
  virtual ~ProtocolObserver();
  virtual void on_event(const ProtocolEvent& event) = 0;
};

/// Simple collecting observer for tests and tools.
class EventLog final : public ProtocolObserver {
 public:
  void on_event(const ProtocolEvent& event) override { events_.push_back(event); }
  [[nodiscard]] const std::vector<ProtocolEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::vector<ProtocolEvent> of_type(ProtocolEvent::Type type) const;
  void clear() { events_.clear(); }

 private:
  std::vector<ProtocolEvent> events_;
};

}  // namespace idonly
