// Protocol event instrumentation.
//
// Core processes emit structured events (acceptance, decisions, coordinator
// changes, chain growth) to an optional, non-owning observer. Production
// deployments hang metrics/logging off this; tests assert on exact event
// streams instead of poking at internals.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "common/value.hpp"

namespace idonly {

struct ProtocolEvent {
  enum class Type : std::uint8_t {
    kAccepted,             ///< reliable broadcast: (m, s) accepted (value = m, subject = s)
    kDecided,              ///< consensus: output fixed (value; phase set)
    kOpinionAdopted,       ///< consensus: x_v changed by a quorum or coordinator
    kCoordinatorSelected,  ///< rotor: subject = selected coordinator
    kGoodOpinionAccepted,  ///< rotor: accepted opinion from previous coordinator (subject)
    kChainExtended,        ///< total order: chain grew (phase = new length)
  };

  Type type{};
  NodeId node = 0;          ///< emitting process
  Round round = 0;          ///< local round of the event
  Value value;              ///< payload / opinion when applicable
  NodeId subject = 0;       ///< source / coordinator when applicable
  std::int64_t phase = 0;   ///< phase or auxiliary count

  [[nodiscard]] std::string to_string() const;
};

class ProtocolObserver {
 public:
  virtual ~ProtocolObserver();
  virtual void on_event(const ProtocolEvent& event) = 0;
};

/// Simple collecting observer for tests and tools. NOT thread-safe: it is
/// the right choice only when every event comes from one thread (the
/// simulators step processes sequentially). Anything shared across runtime
/// driver threads must use ConcurrentEventLog below.
class EventLog final : public ProtocolObserver {
 public:
  void on_event(const ProtocolEvent& event) override { events_.push_back(event); }
  [[nodiscard]] const std::vector<ProtocolEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::vector<ProtocolEvent> of_type(ProtocolEvent::Type type) const;
  void clear() { events_.clear(); }

 private:
  std::vector<ProtocolEvent> events_;
};

/// Mutex-guarded collecting observer for multi-threaded runs: one instance
/// may be shared across RoundDriver threads (and survive watchdog
/// restarts). Readers get snapshot copies — the internal vector is never
/// exposed by reference, so a concurrent on_event cannot invalidate a
/// reader's view.
class ConcurrentEventLog final : public ProtocolObserver {
 public:
  void on_event(const ProtocolEvent& event) override {
    std::scoped_lock lock(mutex_);
    events_.push_back(event);
  }
  [[nodiscard]] std::vector<ProtocolEvent> events() const {
    std::scoped_lock lock(mutex_);
    return events_;
  }
  [[nodiscard]] std::vector<ProtocolEvent> of_type(ProtocolEvent::Type type) const;
  [[nodiscard]] std::size_t size() const {
    std::scoped_lock lock(mutex_);
    return events_.size();
  }
  void clear() {
    std::scoped_lock lock(mutex_);
    events_.clear();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<ProtocolEvent> events_;
};

}  // namespace idonly
