#include "common/observer.hpp"

#include <sstream>

namespace idonly {

ProtocolObserver::~ProtocolObserver() = default;

namespace {
const char* type_name(ProtocolEvent::Type type) {
  switch (type) {
    case ProtocolEvent::Type::kAccepted: return "accepted";
    case ProtocolEvent::Type::kDecided: return "decided";
    case ProtocolEvent::Type::kOpinionAdopted: return "opinion_adopted";
    case ProtocolEvent::Type::kCoordinatorSelected: return "coordinator_selected";
    case ProtocolEvent::Type::kGoodOpinionAccepted: return "good_opinion_accepted";
    case ProtocolEvent::Type::kChainExtended: return "chain_extended";
  }
  return "unknown";
}
}  // namespace

std::string ProtocolEvent::to_string() const {
  std::ostringstream os;
  os << type_name(type) << "{node=" << node << " r=" << round;
  if (!value.is_bot()) os << " value=" << value.to_string();
  if (subject != 0) os << " subject=" << subject;
  if (phase != 0) os << " phase=" << phase;
  os << "}";
  return os.str();
}

std::vector<ProtocolEvent> EventLog::of_type(ProtocolEvent::Type type) const {
  std::vector<ProtocolEvent> out;
  for (const ProtocolEvent& event : events_) {
    if (event.type == type) out.push_back(event);
  }
  return out;
}

std::vector<ProtocolEvent> ConcurrentEventLog::of_type(ProtocolEvent::Type type) const {
  std::scoped_lock lock(mutex_);
  std::vector<ProtocolEvent> out;
  for (const ProtocolEvent& event : events_) {
    if (event.type == type) out.push_back(event);
  }
  return out;
}

}  // namespace idonly
