#include "adversary/strategies.hpp"

#include <cassert>

namespace idonly {

// ---------------------------------------------------------------- Silent --
void SilentAdversary::on_round(RoundInfo, std::span<const Message>, std::vector<Outgoing>&) {}

// ----------------------------------------------------------------- Crash --
CrashAdversary::CrashAdversary(std::unique_ptr<Process> inner, Round crash_round)
    : ByzantineProcess(inner->id()), inner_(std::move(inner)), crash_round_(crash_round) {}

void CrashAdversary::on_round(RoundInfo round, std::span<const Message> inbox,
                              std::vector<Outgoing>& out) {
  if (round.local >= crash_round_) return;
  inner_->on_round(round, inbox, out);
}

// -------------------------------------------------------------- TwoFaced --
TwoFacedAdversary::TwoFacedAdversary(std::unique_ptr<Process> face_a,
                                     std::unique_ptr<Process> face_b,
                                     std::function<bool(NodeId)> side_a, AdversaryContext context)
    : ByzantineProcess(face_a->id()),
      face_a_(std::move(face_a)),
      face_b_(std::move(face_b)),
      side_a_(std::move(side_a)),
      context_(std::move(context)) {
  assert(face_a_->id() == face_b_->id() && "both faces impersonate the same id");
}

void TwoFacedAdversary::on_round(RoundInfo round, std::span<const Message> inbox,
                                 std::vector<Outgoing>& out) {
  // Both faces observe the full inbox (the adversary sees everything sent to
  // its id); their outputs are routed disjointly so recipient u only ever
  // sees one consistent persona.
  std::vector<Outgoing> out_a;
  std::vector<Outgoing> out_b;
  face_a_->on_round(round, inbox, out_a);
  face_b_->on_round(round, inbox, out_b);
  auto route_face = [&](std::vector<Outgoing>& face_out, bool to_side_a) {
    for (Outgoing& o : face_out) {
      if (o.to.has_value()) {
        if (side_a_(*o.to) == to_side_a) out.push_back(std::move(o));
      } else {
        // Expand the broadcast into unicasts to this face's side only.
        for (NodeId id : context_.all_ids) {
          if (side_a_(id) == to_side_a) out.push_back(Outgoing{id, o.msg});
        }
      }
    }
  };
  route_face(out_a, /*to_side_a=*/true);
  route_face(out_b, /*to_side_a=*/false);
}

// ----------------------------------------------------------- RandomNoise --
RandomNoiseAdversary::RandomNoiseAdversary(NodeId id, AdversaryContext context, Rng rng,
                                           double send_probability)
    : ByzantineProcess(id),
      context_(std::move(context)),
      rng_(rng),
      send_probability_(send_probability) {}

void RandomNoiseAdversary::on_round(RoundInfo, std::span<const Message>,
                                    std::vector<Outgoing>& out) {
  if (!rng_.chance(send_probability_)) return;
  // One to three random messages per round, broadcast or unicast.
  const auto count = 1 + rng_.below(3);
  for (std::uint64_t i = 0; i < count; ++i) {
    Message m;
    m.kind = static_cast<MsgKind>(rng_.below(16));
    // Subject: an existing id most of the time, occasionally a ghost id.
    if (!context_.all_ids.empty() && rng_.chance(0.8)) {
      m.subject = context_.all_ids[rng_.below(context_.all_ids.size())];
    } else {
      m.subject = 1'000'000 + rng_.below(1000);  // non-existent
    }
    m.value = rng_.chance(0.2) ? Value::bot() : Value::real(rng_.uniform(-100.0, 100.0));
    m.instance = static_cast<InstanceTag>(rng_.below(4));
    m.round_tag = static_cast<std::uint32_t>(rng_.below(64));
    if (rng_.chance(0.5) || context_.all_ids.empty()) {
      broadcast(out, m);
    } else {
      unicast(out, context_.all_ids[rng_.below(context_.all_ids.size())], m);
    }
  }
}

// ------------------------------------------------------------ ForgedEcho --
ForgedEchoAdversary::ForgedEchoAdversary(NodeId id, NodeId forged_source, Value forged_payload)
    : ByzantineProcess(id), forged_source_(forged_source), forged_payload_(forged_payload) {}

void ForgedEchoAdversary::on_round(RoundInfo round, std::span<const Message>,
                                   std::vector<Outgoing>& out) {
  // Announce ourselves (counts toward n_v — more weight for our echoes),
  // then flood the forged echo every round.
  if (round.local == 1) {
    broadcast(out, Message{.kind = MsgKind::kPresent});
  }
  Message echo;
  echo.kind = MsgKind::kEcho;
  echo.subject = forged_source_;
  echo.value = forged_payload_;
  broadcast(out, echo);
}

// ---------------------------------------------------------- RotorStuffer --
RotorStufferAdversary::RotorStufferAdversary(NodeId id, std::vector<NodeId> fake_ids,
                                             InstanceTag instance)
    : ByzantineProcess(id), fake_ids_(std::move(fake_ids)), instance_(instance) {}

void RotorStufferAdversary::on_round(RoundInfo round, std::span<const Message>,
                                     std::vector<Outgoing>& out) {
  if (round.local == 1) {
    Message init;
    init.kind = MsgKind::kInit;
    init.instance = instance_;
    broadcast(out, init);  // join the candidate pool ourselves
    return;
  }
  // Drip one fake candidate per round: every colluding stuffer echoes the
  // same fake id in the same round, maximizing the chance correct nodes
  // cross the n_v/3 relay threshold and produce a non-silent round.
  const std::size_t idx = static_cast<std::size_t>(round.local - 2);
  if (idx < fake_ids_.size()) {
    Message echo;
    echo.kind = MsgKind::kEcho;
    echo.subject = fake_ids_[idx];
    echo.instance = instance_;
    broadcast(out, echo);
  }
}

// ------------------------------------------------------------- VoteSplit --
VoteSplitAdversary::VoteSplitAdversary(NodeId id, AdversaryContext context)
    : ByzantineProcess(id), context_(std::move(context)) {}

void VoteSplitAdversary::on_round(RoundInfo round, std::span<const Message> inbox,
                                  std::vector<Outgoing>& out) {
  if (round.local <= 2) {
    // Participate in initialization so we count toward everyone's n_v.
    Message init;
    init.kind = round.local == 1 ? MsgKind::kInit : MsgKind::kPresent;
    broadcast(out, init);
    return;
  }
  // Mirror the phase traffic we observe: for every opinion-bearing kind seen
  // this round, send value 0 to the lower-id half and value 1 (or the
  // negated real) to the upper-id half of the correct nodes. This keeps both
  // camps just below/above quorum thresholds as long as the adversary has
  // enough mass — with n > 3f it never does.
  bool saw[3] = {false, false, false};
  for (const Message& m : inbox) {
    switch (m.kind) {
      case MsgKind::kInput: saw[0] = true; break;
      case MsgKind::kPrefer: saw[1] = true; break;
      case MsgKind::kStrongPrefer: saw[2] = true; break;
      default: break;
    }
  }
  const MsgKind kinds[3] = {MsgKind::kInput, MsgKind::kPrefer, MsgKind::kStrongPrefer};
  const std::size_t half = context_.correct_ids.size() / 2;
  for (int k = 0; k < 3; ++k) {
    if (!saw[k]) continue;
    for (std::size_t i = 0; i < context_.correct_ids.size(); ++i) {
      Message m;
      m.kind = kinds[k];
      m.value = Value::real(i < half ? 0.0 : 1.0);
      unicast(out, context_.correct_ids[i], m);
    }
  }
  // If anyone might treat us as coordinator, split the opinion too.
  for (std::size_t i = 0; i < context_.correct_ids.size(); ++i) {
    Message m;
    m.kind = MsgKind::kOpinion;
    m.value = Value::real(i < half ? 0.0 : 1.0);
    unicast(out, context_.correct_ids[i], m);
  }
}

// --------------------------------------------------------------- Whisper --
WhisperAdversary::WhisperAdversary(NodeId id, PairId pair, MsgKind kind, Value value,
                                   Round fire_round, std::vector<NodeId> targets)
    : ByzantineProcess(id),
      pair_(pair),
      kind_(kind),
      value_(value),
      fire_round_(fire_round),
      targets_(std::move(targets)) {}

void WhisperAdversary::on_round(RoundInfo round, std::span<const Message>,
                                std::vector<Outgoing>& out) {
  if (round.local == 1) {
    broadcast(out, Message{.kind = MsgKind::kInit});  // count toward n_v
    return;
  }
  if (round.local == fire_round_) {
    for (NodeId target : targets_) {
      Message m;
      m.kind = kind_;
      m.subject = pair_;
      m.value = value_;
      unicast(out, target, m);
    }
  }
}

// ---------------------------------------------------------------- Replay --
ReplayAdversary::ReplayAdversary(NodeId id, Round lag) : ByzantineProcess(id), lag_(lag) {}

void ReplayAdversary::on_round(RoundInfo round, std::span<const Message> inbox,
                               std::vector<Outgoing>& out) {
  if (round.local == 1) {
    broadcast(out, Message{.kind = MsgKind::kPresent});
  }
  recorded_[round.local].assign(inbox.begin(), inbox.end());
  const auto stale = recorded_.find(round.local - lag_);
  if (stale != recorded_.end()) {
    for (const Message& m : stale->second) {
      broadcast(out, m);  // sender is re-stamped with OUR id by the engine
    }
    recorded_.erase(stale);
  }
}

// ----------------------------------------------------------- EchoChamber --
EchoChamberAdversary::EchoChamberAdversary(NodeId id, AdversaryContext context)
    : ByzantineProcess(id), context_(std::move(context)) {}

void EchoChamberAdversary::on_round(RoundInfo round, std::span<const Message> inbox,
                                    std::vector<Outgoing>& out) {
  // Learn every node's current opinion from its input broadcasts.
  for (const Message& m : inbox) {
    if (m.kind == MsgKind::kInput && !m.value.is_bot()) last_opinion_[m.sender] = m.value;
  }
  if (round.local == 1) {
    broadcast(out, Message{.kind = MsgKind::kInit});  // count toward everyone's n_v
    return;
  }
  // From round 2 on, feed each correct node copies of its own opinion in
  // every phase position, plus a matching coordinator opinion in case we get
  // selected (an equivocating coordinator is part of this attack: it keeps
  // each camp on its own value through the resolve round). Nodes whose
  // opinion we have not observed yet get NOTHING — sending any default value
  // would push the network toward that value and *help* convergence.
  for (NodeId target : context_.correct_ids) {
    const auto it = last_opinion_.find(target);
    if (it == last_opinion_.end()) continue;
    for (MsgKind kind : {MsgKind::kInput, MsgKind::kPrefer, MsgKind::kStrongPrefer,
                         MsgKind::kOpinion}) {
      Message m;
      m.kind = kind;
      m.value = it->second;
      unicast(out, target, m);
    }
  }
}

// ---------------------------------------------------------- ExtremeValue --
ExtremeValueAdversary::ExtremeValueAdversary(NodeId id, AdversaryContext context, double lo,
                                             double hi)
    : ByzantineProcess(id), context_(std::move(context)), lo_(lo), hi_(hi) {}

void ExtremeValueAdversary::on_round(RoundInfo, std::span<const Message>,
                                     std::vector<Outgoing>& out) {
  // Pull the low half of the network further down and the high half further
  // up — the worst input pattern for the trimmed-mean rule.
  const std::size_t half = context_.correct_ids.size() / 2;
  for (std::size_t i = 0; i < context_.correct_ids.size(); ++i) {
    Message m;
    m.kind = MsgKind::kApproxValue;
    m.value = Value::real(i < half ? lo_ : hi_);
    unicast(out, context_.correct_ids[i], m);
  }
}

}  // namespace idonly
