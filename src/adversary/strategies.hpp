// Byzantine strategy library.
//
// Adversaries run inside the same engine as correct nodes (same Process
// interface) but ignore the algorithms. The model lets a Byzantine node:
//   * stay silent toward everyone or toward a chosen subset,
//   * send *different* (conflicting) messages to different recipients,
//   * claim to have received messages from other — possibly non-existent —
//     nodes (only the direct sender id is unforgeable),
//   * announce itself to only some nodes, or join late.
//
// The strategies here cover the attack surface the paper's lemmas defend
// against, plus the strongest attacks we could construct against each
// algorithm (used by the resiliency-boundary experiment E5, where they DO
// break agreement at n = 3f).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/value.hpp"

#include "common/rng.hpp"
#include "common/types.hpp"
#include "net/process.hpp"

namespace idonly {

/// Shared omniscient view handed to adversaries by the scenario builder:
/// Byzantine nodes "can behave as if they already know all the nodes".
struct AdversaryContext {
  std::vector<NodeId> all_ids;      ///< every node in the scenario
  std::vector<NodeId> correct_ids;  ///< the correct subset
};

/// Base with the byzantine() flag set.
class ByzantineProcess : public Process {
 public:
  using Process::Process;
  [[nodiscard]] bool byzantine() const final { return true; }
};

/// Sends nothing, ever — not even `present`. Exercises the "a Byzantine node
/// may not announce itself" part of the model: correct nodes must work with
/// n_v < n.
class SilentAdversary final : public ByzantineProcess {
 public:
  using ByzantineProcess::ByzantineProcess;
  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;
};

/// Runs a correct inner protocol until `crash_round` (local), then goes
/// silent forever — the classic crash-in-the-middle failure.
class CrashAdversary final : public ByzantineProcess {
 public:
  CrashAdversary(std::unique_ptr<Process> inner, Round crash_round);
  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

 private:
  std::unique_ptr<Process> inner_;
  Round crash_round_;
};

/// The generic equivocation attack: runs TWO correct protocol instances with
/// different inputs and shows face A to one half of the network and face B
/// to the other half. Protocol-agnostic — this is the strongest
/// "split-brain" adversary for any of the algorithms, and the one that
/// actually violates agreement once n ≤ 3f.
class TwoFacedAdversary final : public ByzantineProcess {
 public:
  /// `side_a(id)` decides which face a recipient sees.
  TwoFacedAdversary(std::unique_ptr<Process> face_a, std::unique_ptr<Process> face_b,
                    std::function<bool(NodeId)> side_a, AdversaryContext context);
  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

 private:
  std::unique_ptr<Process> face_a_;
  std::unique_ptr<Process> face_b_;
  std::function<bool(NodeId)> side_a_;
  AdversaryContext context_;
};

/// Broadcasts syntactically valid but semantically random protocol messages
/// every round: random kinds, random subjects (sometimes non-existent ids),
/// random values. A fuzzer for every quorum rule.
class RandomNoiseAdversary final : public ByzantineProcess {
 public:
  RandomNoiseAdversary(NodeId id, AdversaryContext context, Rng rng, double send_probability = 1.0);
  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

 private:
  AdversaryContext context_;
  Rng rng_;
  double send_probability_;
};

/// Attack on reliable broadcast: floods echo(m*, s*) for a message the
/// (correct, silent) source s* never sent, trying to get it accepted — the
/// unforgeability property must hold regardless.
class ForgedEchoAdversary final : public ByzantineProcess {
 public:
  ForgedEchoAdversary(NodeId id, NodeId forged_source, Value forged_payload);
  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

 private:
  NodeId forged_source_;
  Value forged_payload_;
};

/// Attack on the rotor-coordinator: participates in init, then drips echoes
/// for fake candidate ids (one new fake id per round, each echoed by ALL
/// colluding stuffers so correct nodes relay them) to stretch the candidate
/// set and delay/perturb the schedule. Lemma 6 shows at most 2f non-silent
/// rounds can be produced this way.
class RotorStufferAdversary final : public ByzantineProcess {
 public:
  RotorStufferAdversary(NodeId id, std::vector<NodeId> fake_ids, InstanceTag instance = 0);
  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

 private:
  std::vector<NodeId> fake_ids_;
  InstanceTag instance_;
};

/// Attack on consensus thresholds: echoes every quorum-adjacent message it
/// sees back with the opposite opinion to the half of the network that
/// leans the other way (classic vote-splitting). Works on kInput/kPrefer/
/// kStrongPrefer kinds; sends opinion(x) garbage when selected coordinator.
class VoteSplitAdversary final : public ByzantineProcess {
 public:
  VoteSplitAdversary(NodeId id, AdversaryContext context);
  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

 private:
  AdversaryContext context_;
};

/// Attack on parallel consensus' late-adoption rules: whisper messages about
/// a pair id NO correct node has as input — id:input / id:prefer /
/// id:strongprefer — to a chosen subset of nodes at a chosen local round.
/// Theorem 5's second half says no correct node may ever OUTPUT such a pair;
/// the tests drive this adversary through every adoption window (rounds
/// 2/3/5 of phase 1, and post-phase-1 where messages must be discarded).
class WhisperAdversary final : public ByzantineProcess {
 public:
  /// Sends `kind`(value) for pair `pair` to `targets` in local round
  /// `fire_round` (message arrives in fire_round + 1), after announcing
  /// itself in rounds 1–2 so it counts toward n_v.
  WhisperAdversary(NodeId id, PairId pair, MsgKind kind, Value value, Round fire_round,
                   std::vector<NodeId> targets);
  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

 private:
  PairId pair_;
  MsgKind kind_;
  Value value_;
  Round fire_round_;
  std::vector<NodeId> targets_;
};

/// Records everything it hears and re-broadcasts stale messages `lag` rounds
/// later — the model explicitly allows duplicates across rounds, and the
/// cumulative distinct-sender counting must make replays harmless.
class ReplayAdversary final : public ByzantineProcess {
 public:
  ReplayAdversary(NodeId id, Round lag);
  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

 private:
  Round lag_;
  std::map<Round, std::vector<Message>> recorded_;
};

/// The sharpest consensus attack: tell every node exactly what it wants to
/// hear. The adversary tracks each correct node's current opinion (from its
/// kInput broadcasts) and feeds it matching input/prefer/strongprefer/opinion
/// copies every round. At n = 3f this pushes BOTH camps over the 2n_v/3
/// termination threshold in the first phase — a clean agreement violation;
/// at n > 3f the f forged copies never tip any quorum (experiment E5).
class EchoChamberAdversary final : public ByzantineProcess {
 public:
  EchoChamberAdversary(NodeId id, AdversaryContext context);
  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

 private:
  AdversaryContext context_;
  std::map<NodeId, Value> last_opinion_;
};

/// Approximate-agreement attack: reports the most extreme value possible,
/// and *different* extremes to different halves (pulls each side outward).
class ExtremeValueAdversary final : public ByzantineProcess {
 public:
  ExtremeValueAdversary(NodeId id, AdversaryContext context, double lo, double hi);
  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override;

 private:
  AdversaryContext context_;
  double lo_;
  double hi_;
};

}  // namespace idonly
