// Constructive side of §"Synchrony is Necessary": the id-only algorithms
// are correct ONLY under lock-step rounds. Injecting delays between correct
// nodes (violating the model) must break liveness/safety in some runs —
// while the delay-free control and a Byzantine-only-delay run stay correct.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "core/consensus.hpp"
#include "core/reliable_broadcast.hpp"
#include "harness/scenario.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

struct Outcome {
  bool all_decided = false;
  bool agreement = true;
};

Outcome run_desynced_consensus(std::uint64_t seed, double delay_probability) {
  ScenarioConfig config;
  config.n_correct = 7;
  config.n_byzantine = 2;
  config.adversary = AdversaryKind::kSilent;
  config.seed = seed;
  const Scenario scenario = make_scenario(config);
  SyncSimulator sim;
  auto rng = std::make_shared<Rng>(derive_seed(seed, 0xDE1A));
  sim.set_delay_hook([rng, delay_probability](NodeId, NodeId, const Message&, Round) -> Round {
    return rng->chance(delay_probability) ? static_cast<Round>(1 + rng->below(3)) : 0;
  });
  auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
    return std::make_unique<ConsensusProcess>(id, Value::real(static_cast<double>(index % 2)));
  };
  populate(sim, scenario, factory);
  Outcome outcome;
  outcome.all_decided = sim.run_until_all_correct_done(250);
  std::optional<Value> first;
  for (NodeId id : scenario.correct_ids) {
    auto* p = sim.get<ConsensusProcess>(id);
    if (p == nullptr || !p->output().has_value()) continue;
    if (!first.has_value()) first = *p->output();
    outcome.agreement = outcome.agreement && *p->output() == *first;
  }
  return outcome;
}

TEST(SynchronyViolation, DelayFreeControlAlwaysCorrect) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto outcome = run_desynced_consensus(seed, /*delay_probability=*/0.0);
    EXPECT_TRUE(outcome.all_decided) << seed;
    EXPECT_TRUE(outcome.agreement) << seed;
  }
}

TEST(SynchronyViolation, HeavyDesyncBreaksConsensus) {
  // With half of all traffic arriving 1–3 rounds late, the per-round quorum
  // counting collapses; some run must lose a property (typically
  // termination, occasionally agreement). This is the model assumption
  // earning its keep.
  bool any_violation = false;
  for (std::uint64_t seed = 1; seed <= 10 && !any_violation; ++seed) {
    const auto outcome = run_desynced_consensus(seed, /*delay_probability=*/0.5);
    any_violation = !outcome.all_decided || !outcome.agreement;
  }
  EXPECT_TRUE(any_violation);
}

TEST(SynchronyViolation, MildDesyncToleratedSafetyBreaksUnderHeavy) {
  // Empirical finding worth pinning down: with the explicit no-preference
  // markers (see consensus.hpp), the algorithm tolerates mild
  // desynchronization outright — and when it does fail under heavy desync,
  // the failure mode is DISAGREEMENT, not mere non-termination. Safety
  // itself rests on the synchrony assumption.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto mild = run_desynced_consensus(seed, /*delay_probability=*/0.1);
    EXPECT_TRUE(mild.all_decided) << seed;
    EXPECT_TRUE(mild.agreement) << seed;
  }
  bool any_disagreement = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto heavy = run_desynced_consensus(seed, /*delay_probability=*/0.5);
    any_disagreement = any_disagreement || !heavy.agreement;
  }
  EXPECT_TRUE(any_disagreement);
}

TEST(SynchronyViolation, ReliableBroadcastToleratesDelayedByzantineTraffic) {
  // Delaying only the BYZANTINE nodes' messages stays WITHIN the model (the
  // adversary may always choose to send late) — properties must hold.
  ScenarioConfig config;
  config.n_correct = 7;
  config.n_byzantine = 2;
  config.adversary = AdversaryKind::kForgedEcho;
  config.seed = 3;
  const Scenario scenario = make_scenario(config);
  SyncSimulator sim;
  const std::set<NodeId> byz(scenario.byzantine_ids.begin(), scenario.byzantine_ids.end());
  sim.set_delay_hook([byz](NodeId from, NodeId, const Message&, Round) -> Round {
    return byz.contains(from) ? 2 : 0;
  });
  const NodeId source = scenario.correct_ids.front();
  auto factory = [&](NodeId id, std::size_t) -> std::unique_ptr<Process> {
    return std::make_unique<ReliableBroadcastProcess>(id, source, Value::real(4.0));
  };
  populate(sim, scenario, factory);
  sim.run_rounds(20);
  for (NodeId id : scenario.correct_ids) {
    auto* p = sim.get<ReliableBroadcastProcess>(id);
    ASSERT_TRUE(p->accepted()) << id;
    EXPECT_EQ(*p->accepted_payload(), Value::real(4.0));
  }
}

}  // namespace
}  // namespace idonly
