// Replicated KV store on the total-order chain: replicas apply the same
// write sequence and hold identical state, under concurrency, Byzantine
// noise, and churn.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/strategies.hpp"
#include "app/replicated_kv.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

TEST(KvOpCodec, RoundTrips) {
  for (std::uint32_t key : {0u, 1u, 999u, (1u << 24) - 1}) {
    for (std::uint32_t value : {0u, 42u, (1u << 24) - 1}) {
      const KvOp decoded = decode_op(encode_op(KvOp{key, value}));
      EXPECT_EQ(decoded.key, key);
      EXPECT_EQ(decoded.value, value);
    }
  }
}

struct Cluster {
  SyncSimulator sim;
  std::vector<NodeId> replicas;

  ReplicatedKvProcess* node(NodeId id) { return sim.get<ReplicatedKvProcess>(id); }

  void expect_consistent(const char* where) {
    const auto& reference = node(replicas.front())->store();
    for (NodeId id : replicas) {
      auto* replica = node(id);
      const auto& store = replica->store();
      // Chain-prefix ⇒ a replica's store is the reference store at some
      // earlier version; with equal versions the stores must be identical.
      if (replica->version() == node(replicas.front())->version()) {
        EXPECT_EQ(store, reference) << where << " replica " << id;
      }
    }
  }
};

Cluster make_cluster(std::vector<NodeId> ids) {
  Cluster cluster;
  cluster.replicas = ids;
  for (NodeId id : ids) {
    cluster.sim.add_process(std::make_unique<ReplicatedKvProcess>(id, /*founder=*/true));
  }
  return cluster;
}

TEST(ReplicatedKv, SingleWriterAllReplicasApply) {
  auto cluster = make_cluster({11, 22, 33, 44});
  cluster.sim.run_rounds(3);
  cluster.node(11)->submit_set(7, 100);
  cluster.sim.run_rounds(40);
  for (NodeId id : cluster.replicas) {
    EXPECT_EQ(cluster.node(id)->get(7), 100u) << id;
    EXPECT_EQ(cluster.node(id)->version(), 1u) << id;
  }
  cluster.expect_consistent("single write");
}

TEST(ReplicatedKv, LastWriterWinsInChainOrder) {
  auto cluster = make_cluster({11, 22, 33, 44});
  cluster.sim.run_rounds(3);
  cluster.node(11)->submit_set(5, 1);
  cluster.sim.run_rounds(2);
  cluster.node(22)->submit_set(5, 2);  // later round ⇒ later chain position
  cluster.sim.run_rounds(45);
  for (NodeId id : cluster.replicas) {
    EXPECT_EQ(cluster.node(id)->get(5), 2u) << id;
    EXPECT_EQ(cluster.node(id)->version(), 2u) << id;
  }
}

TEST(ReplicatedKv, ConcurrentWritesOrderedByWitnessId) {
  // Same round, two writers: the chain tie-break is witness id, so the
  // higher-id writer's value wins deterministically on every replica.
  auto cluster = make_cluster({11, 22, 33, 44});
  cluster.sim.run_rounds(3);
  cluster.node(44)->submit_set(9, 440);
  cluster.node(11)->submit_set(9, 110);
  cluster.sim.run_rounds(45);
  for (NodeId id : cluster.replicas) {
    EXPECT_EQ(cluster.node(id)->get(9), 440u) << id;
  }
  cluster.expect_consistent("concurrent");
}

TEST(ReplicatedKv, InterleavedWritersConverge) {
  auto cluster = make_cluster({11, 22, 33, 44, 55});
  cluster.sim.run_rounds(3);
  for (int i = 0; i < 12; ++i) {
    const NodeId writer = cluster.replicas[static_cast<std::size_t>(i) % 5];
    cluster.node(writer)->submit_set(static_cast<std::uint32_t>(i % 4),
                                     static_cast<std::uint32_t>(1000 + i));
    cluster.sim.run_rounds(1);
  }
  cluster.sim.run_rounds(50);
  const auto& reference = cluster.node(11)->store();
  EXPECT_EQ(reference.size(), 4u);
  for (NodeId id : cluster.replicas) {
    EXPECT_EQ(cluster.node(id)->version(), 12u) << id;
    EXPECT_EQ(cluster.node(id)->store(), reference) << id;
  }
}

TEST(ReplicatedKv, ByzantineNoiseCannotForgeWrites) {
  auto cluster = make_cluster({11, 22, 33, 44, 55, 66, 77});
  AdversaryContext context{{11, 22, 33, 44, 55, 66, 77, 99}, {11, 22, 33, 44, 55, 66, 77}};
  cluster.sim.add_process(std::make_unique<RandomNoiseAdversary>(99, context, Rng(4)));
  cluster.sim.run_rounds(3);
  cluster.node(33)->submit_set(1, 11);
  cluster.sim.run_rounds(55);
  // The legitimate write landed; stores agree across replicas. (A Byzantine
  // MEMBER may submit its own writes — that is allowed; key here is that
  // replicas stay identical regardless.)
  for (NodeId id : cluster.replicas) {
    EXPECT_EQ(cluster.node(id)->get(1), 11u) << id;
  }
  const auto& reference = cluster.node(11)->store();
  for (NodeId id : cluster.replicas) EXPECT_EQ(cluster.node(id)->store(), reference) << id;
}

TEST(ReplicatedKv, LeaverStopsCleanlyOthersContinue) {
  auto cluster = make_cluster({11, 22, 33, 44, 55});
  cluster.sim.run_rounds(3);
  cluster.node(11)->submit_set(3, 30);
  cluster.sim.run_rounds(2);
  cluster.node(55)->request_leave();
  cluster.sim.run_rounds(45);
  EXPECT_TRUE(cluster.node(55)->done());
  cluster.node(22)->submit_set(4, 40);
  cluster.sim.run_rounds(45);
  for (NodeId id : {11u, 22u, 33u, 44u}) {
    EXPECT_EQ(cluster.node(id)->get(3), 30u) << id;
    EXPECT_EQ(cluster.node(id)->get(4), 40u) << id;
  }
}

}  // namespace
}  // namespace idonly
