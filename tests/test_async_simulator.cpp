// Event-driven (async/semi-sync) engine tests.
#include <gtest/gtest.h>

#include "net/async_simulator.hpp"

namespace idonly {
namespace {

/// Minimal async process: broadcasts one message at start, records arrivals,
/// decides at its timer.
class Probe final : public AsyncProcess {
 public:
  Probe(NodeId id, Time deadline) : AsyncProcess(id), deadline_(deadline) {}

  void on_start(Time, std::vector<AsyncOutgoing>& out) override {
    Message m;
    m.kind = MsgKind::kPresent;
    out.push_back(AsyncOutgoing{std::nullopt, m});
  }
  void on_message(Time now, const Message& msg, std::vector<AsyncOutgoing>&) override {
    arrivals.emplace_back(now, msg.sender);
  }
  void on_timer(Time now, std::vector<AsyncOutgoing>&) override {
    fired = true;
    fire_time = now;
  }
  [[nodiscard]] std::optional<Time> timer_deadline() const override {
    return fired ? std::nullopt : std::optional<Time>(deadline_);
  }
  [[nodiscard]] bool decided() const override { return fired; }
  [[nodiscard]] Value decision() const override { return Value::bot(); }

  std::vector<std::pair<Time, NodeId>> arrivals;
  bool fired = false;
  Time fire_time = 0;

 private:
  Time deadline_;
};

TEST(AsyncSimulator, DeliversWithModelLatency) {
  AsyncSimulator sim([](NodeId, NodeId, const Message&, Time) { return 2.5; });
  auto a = std::make_unique<Probe>(1, 100.0);
  auto b = std::make_unique<Probe>(2, 100.0);
  auto* pb = b.get();
  sim.add_process(std::move(a));
  sim.add_process(std::move(b));
  sim.run(50.0);
  // b hears a's start broadcast (and its own echo — broadcast is
  // self-inclusive here too) at t = 2.5.
  ASSERT_EQ(pb->arrivals.size(), 2u);
  EXPECT_DOUBLE_EQ(pb->arrivals[0].first, 2.5);
}

TEST(AsyncSimulator, TimerFiresAtDeadline) {
  AsyncSimulator sim([](NodeId, NodeId, const Message&, Time) { return 1.0; });
  auto a = std::make_unique<Probe>(1, 7.0);
  auto* pa = a.get();
  sim.add_process(std::move(a));
  sim.run(50.0);
  EXPECT_TRUE(pa->fired);
  EXPECT_DOUBLE_EQ(pa->fire_time, 7.0);
}

TEST(AsyncSimulator, HorizonCutsDelivery) {
  AsyncSimulator sim([](NodeId, NodeId, const Message&, Time) { return 100.0; });
  auto a = std::make_unique<Probe>(1, 500.0);
  auto b = std::make_unique<Probe>(2, 500.0);
  auto* pb = b.get();
  sim.add_process(std::move(a));
  sim.add_process(std::move(b));
  sim.run(50.0);
  EXPECT_TRUE(pb->arrivals.empty());
  EXPECT_LE(sim.now(), 50.0);
}

TEST(AsyncSimulator, NegativeDelayDropsMessage) {
  AsyncSimulator sim([](NodeId, NodeId, const Message&, Time) { return -1.0; });
  auto a = std::make_unique<Probe>(1, 5.0);
  auto b = std::make_unique<Probe>(2, 5.0);
  auto* pb = b.get();
  sim.add_process(std::move(a));
  sim.add_process(std::move(b));
  sim.run(50.0);
  EXPECT_TRUE(pb->arrivals.empty());
}

TEST(AsyncSimulator, RearmedTimerSupersedesOldDeadline) {
  // A process that pushes its deadline back on every message must fire at
  // the LAST deadline only — stale queued timer events are skipped.
  class Backoff final : public AsyncProcess {
   public:
    using AsyncProcess::AsyncProcess;
    void on_start(Time, std::vector<AsyncOutgoing>& out) override {
      if (id() == 1) {
        Message m;
        m.kind = MsgKind::kPresent;
        out.push_back(AsyncOutgoing{std::nullopt, m});
      }
    }
    void on_message(Time now, const Message&, std::vector<AsyncOutgoing>&) override {
      deadline_ = now + 10.0;  // push back
    }
    void on_timer(Time now, std::vector<AsyncOutgoing>&) override {
      fired_at.push_back(now);
      deadline_.reset();
    }
    [[nodiscard]] std::optional<Time> timer_deadline() const override { return deadline_; }
    [[nodiscard]] bool decided() const override { return false; }
    [[nodiscard]] Value decision() const override { return Value::bot(); }

    std::vector<Time> fired_at;
    std::optional<Time> deadline_ = 3.0;
  };
  AsyncSimulator sim([](NodeId, NodeId, const Message&, Time) { return 1.0; });
  auto p = std::make_unique<Backoff>(2);
  auto* probe = p.get();
  sim.add_process(std::make_unique<Backoff>(1));
  sim.add_process(std::move(p));
  sim.run(100.0);
  // Node 2 hears node 1's start broadcast at t = 1 → deadline moves to 11;
  // the original t = 3 event must be skipped.
  ASSERT_EQ(probe->fired_at.size(), 1u);
  EXPECT_DOUBLE_EQ(probe->fired_at[0], 11.0);
}

TEST(AsyncSimulator, PerLinkAsymmetricDelays) {
  AsyncSimulator sim([](NodeId from, NodeId to, const Message&, Time) -> Time {
    return from == 1 && to == 2 ? 1.0 : 10.0;
  });
  auto a = std::make_unique<Probe>(1, 100.0);
  auto b = std::make_unique<Probe>(2, 100.0);
  auto* pb = b.get();
  sim.add_process(std::move(a));
  sim.add_process(std::move(b));
  sim.run(5.0);
  ASSERT_EQ(pb->arrivals.size(), 1u);
  EXPECT_EQ(pb->arrivals[0].second, 1u);
}

}  // namespace
}  // namespace idonly
