// Terminating reliable broadcast (appendix): common decision in O(f) rounds,
// ⊥ when the source stays quiet.
#include <gtest/gtest.h>

#include <tuple>

#include "core/terminating_rb.hpp"
#include "harness/scenario.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

struct TrbRun {
  bool all_done = false;
  std::vector<Value> outputs;
  Round rounds = 0;
};

TrbRun run_trb(std::size_t n_correct, std::size_t n_byz, AdversaryKind adversary,
               std::uint64_t seed, bool byzantine_source, double payload = 11.5) {
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = n_byz;
  config.adversary = adversary;
  config.seed = seed;
  const Scenario scenario = make_scenario(config);
  const NodeId source = byzantine_source && !scenario.byzantine_ids.empty()
                            ? scenario.byzantine_ids.front()
                            : scenario.correct_ids.front();
  SyncSimulator sim;
  auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
    const double p = index < n_correct ? payload : payload + 7.0 * double(index);
    return std::make_unique<TerminatingRbProcess>(id, source, Value::real(p));
  };
  populate(sim, scenario, factory);
  TrbRun run;
  run.all_done = sim.run_until_all_correct_done(300);
  run.rounds = sim.round();
  for (NodeId id : scenario.correct_ids) {
    auto* p = sim.get<TerminatingRbProcess>(id);
    if (p != nullptr && p->output().has_value()) run.outputs.push_back(*p->output());
  }
  return run;
}

TEST(TerminatingRb, CorrectSourceDeliversPayloadEverywhere) {
  const auto run = run_trb(7, 2, AdversaryKind::kSilent, 1, /*byzantine_source=*/false);
  EXPECT_TRUE(run.all_done);
  ASSERT_EQ(run.outputs.size(), 7u);
  for (const Value& v : run.outputs) EXPECT_EQ(v, Value::real(11.5));
}

TEST(TerminatingRb, SilentByzantineSourceDecidesBot) {
  const auto run = run_trb(7, 2, AdversaryKind::kSilent, 2, /*byzantine_source=*/true);
  EXPECT_TRUE(run.all_done);
  ASSERT_EQ(run.outputs.size(), 7u);
  for (const Value& v : run.outputs) EXPECT_TRUE(v.is_bot());
}

TEST(TerminatingRb, TwoFacedSourceStillYieldsCommonDecision) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto run = run_trb(7, 2, AdversaryKind::kTwoFaced, seed, /*byzantine_source=*/true);
    EXPECT_TRUE(run.all_done) << seed;
    ASSERT_EQ(run.outputs.size(), 7u) << seed;
    for (const Value& v : run.outputs) EXPECT_EQ(v, run.outputs.front()) << seed;
  }
}

class TrbSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, AdversaryKind, bool>> {};

TEST_P(TrbSweep, CommonDecisionAlways) {
  const auto [n_correct, adversary, byz_source] = GetParam();
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    const auto run = run_trb(n_correct, 2, adversary, seed, byz_source);
    EXPECT_TRUE(run.all_done) << to_string(adversary) << " seed=" << seed;
    ASSERT_EQ(run.outputs.size(), n_correct);
    for (const Value& v : run.outputs) {
      EXPECT_EQ(v, run.outputs.front()) << to_string(adversary) << " seed=" << seed;
    }
    if (!byz_source) {
      EXPECT_EQ(run.outputs.front(), Value::real(11.5)) << "correct source's payload wins";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TrbSweep,
    ::testing::Combine(::testing::Values<std::size_t>(7, 10),
                       ::testing::Values(AdversaryKind::kSilent, AdversaryKind::kNoise,
                                         AdversaryKind::kTwoFaced, AdversaryKind::kCrash,
                                         AdversaryKind::kEchoChamber),
                       ::testing::Bool()));

TEST(TerminatingRb, NoiseAdversaryHarmless) {
  const auto run = run_trb(10, 3, AdversaryKind::kNoise, 3, /*byzantine_source=*/false);
  EXPECT_TRUE(run.all_done);
  ASSERT_EQ(run.outputs.size(), 10u);
  for (const Value& v : run.outputs) EXPECT_EQ(v, Value::real(11.5));
}

}  // namespace
}  // namespace idonly
