// Engine tests: the synchronous round simulator must implement the paper's
// model exactly — lock-step delivery, self-inclusive broadcast, unforgeable
// sender stamping, per-round duplicate suppression, dynamic membership.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>

#include "common/rng.hpp"
#include "net/process.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

/// Scriptable process: records everything it receives; sends what the test
/// enqueues for each round.
class ScriptedProcess final : public Process {
 public:
  using Process::Process;

  void send_in_round(Round local, Outgoing out) { script_[local].push_back(std::move(out)); }

  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>& out) override {
    received_[round.local].assign(inbox.begin(), inbox.end());
    locals_.push_back(round.local);
    globals_.push_back(round.global);
    if (auto it = script_.find(round.local); it != script_.end()) {
      for (const Outgoing& o : it->second) out.push_back(o);
    }
  }

  std::map<Round, std::vector<Message>> received_;
  std::vector<Round> locals_;
  std::vector<Round> globals_;

 private:
  std::map<Round, std::vector<Outgoing>> script_;
};

Message text_msg(MsgKind kind, double v = 0) {
  Message m;
  m.kind = kind;
  m.value = Value::real(v);
  return m;
}

TEST(SyncSimulator, BroadcastDeliversNextRoundToAllIncludingSender) {
  SyncSimulator sim;
  auto a = std::make_unique<ScriptedProcess>(1);
  auto b = std::make_unique<ScriptedProcess>(2);
  a->send_in_round(1, Outgoing{std::nullopt, text_msg(MsgKind::kPresent, 1)});
  auto* pa = a.get();
  auto* pb = b.get();
  sim.add_process(std::move(a));
  sim.add_process(std::move(b));

  sim.step();  // round 1: a broadcasts
  EXPECT_TRUE(pa->received_[1].empty());
  EXPECT_TRUE(pb->received_[1].empty());
  sim.step();  // round 2: delivery
  ASSERT_EQ(pa->received_[2].size(), 1u) << "broadcast must be self-inclusive";
  ASSERT_EQ(pb->received_[2].size(), 1u);
  EXPECT_EQ(pb->received_[2][0].sender, 1u);
}

TEST(SyncSimulator, SenderIdIsStampedNotForgeable) {
  SyncSimulator sim;
  auto a = std::make_unique<ScriptedProcess>(1);
  Message forged = text_msg(MsgKind::kPresent, 9);
  forged.sender = 777;  // attempt to forge
  a->send_in_round(1, Outgoing{std::nullopt, forged});
  auto b = std::make_unique<ScriptedProcess>(2);
  auto* pb = b.get();
  sim.add_process(std::move(a));
  sim.add_process(std::move(b));
  sim.run_rounds(2);
  ASSERT_EQ(pb->received_[2].size(), 1u);
  EXPECT_EQ(pb->received_[2][0].sender, 1u) << "engine must overwrite the sender field";
}

TEST(SyncSimulator, UnicastReachesOnlyTarget) {
  SyncSimulator sim;
  auto a = std::make_unique<ScriptedProcess>(1);
  a->send_in_round(1, Outgoing{NodeId{3}, text_msg(MsgKind::kAck, 5)});
  auto b = std::make_unique<ScriptedProcess>(2);
  auto c = std::make_unique<ScriptedProcess>(3);
  auto* pb = b.get();
  auto* pc = c.get();
  sim.add_process(std::move(a));
  sim.add_process(std::move(b));
  sim.add_process(std::move(c));
  sim.run_rounds(2);
  EXPECT_TRUE(pb->received_[2].empty());
  ASSERT_EQ(pc->received_[2].size(), 1u);
  EXPECT_EQ(pc->received_[2][0].kind, MsgKind::kAck);
}

TEST(SyncSimulator, DuplicateMessagesFromSameSenderSameRoundAreDropped) {
  SyncSimulator sim;
  auto a = std::make_unique<ScriptedProcess>(1);
  // Identical duplicates must collapse; a distinct payload must survive.
  a->send_in_round(1, Outgoing{NodeId{2}, text_msg(MsgKind::kPresent, 1)});
  a->send_in_round(1, Outgoing{NodeId{2}, text_msg(MsgKind::kPresent, 1)});
  a->send_in_round(1, Outgoing{NodeId{2}, text_msg(MsgKind::kPresent, 2)});
  auto b = std::make_unique<ScriptedProcess>(2);
  auto* pb = b.get();
  sim.add_process(std::move(a));
  sim.add_process(std::move(b));
  sim.run_rounds(2);
  EXPECT_EQ(pb->received_[2].size(), 2u);
}

TEST(SyncSimulator, DuplicatesAcrossRoundsAreAllowed) {
  SyncSimulator sim;
  auto a = std::make_unique<ScriptedProcess>(1);
  a->send_in_round(1, Outgoing{NodeId{2}, text_msg(MsgKind::kPresent, 1)});
  a->send_in_round(2, Outgoing{NodeId{2}, text_msg(MsgKind::kPresent, 1)});
  auto b = std::make_unique<ScriptedProcess>(2);
  auto* pb = b.get();
  sim.add_process(std::move(a));
  sim.add_process(std::move(b));
  sim.run_rounds(3);
  EXPECT_EQ(pb->received_[2].size(), 1u);
  EXPECT_EQ(pb->received_[3].size(), 1u);
}

TEST(SyncSimulator, LateJoinerGetsLocalRoundOne) {
  SyncSimulator sim;
  sim.add_process(std::make_unique<ScriptedProcess>(1));
  sim.run_rounds(3);
  auto late = std::make_unique<ScriptedProcess>(9);
  auto* platee = late.get();
  sim.add_process(std::move(late));
  sim.run_rounds(2);
  ASSERT_EQ(platee->locals_.size(), 2u);
  EXPECT_EQ(platee->locals_[0], 1);
  EXPECT_EQ(platee->globals_[0], 4);
}

TEST(SyncSimulator, RemovedProcessStopsReceivingAndSending) {
  SyncSimulator sim;
  auto a = std::make_unique<ScriptedProcess>(1);
  for (Round r = 1; r <= 10; ++r) {
    a->send_in_round(r, Outgoing{std::nullopt, text_msg(MsgKind::kPresent, double(r))});
  }
  auto b = std::make_unique<ScriptedProcess>(2);
  auto* pb = b.get();
  sim.add_process(std::move(a));
  sim.add_process(std::move(b));
  sim.run_rounds(2);
  sim.remove_process(1);
  sim.run_rounds(2);
  // a's round-2 send was routed before removal, so round 3 still delivers;
  // nothing afterwards.
  EXPECT_EQ(pb->received_[3].size(), 1u);
  EXPECT_TRUE(pb->received_[4].empty());
  EXPECT_EQ(sim.member_count(), 1u);
  EXPECT_EQ(sim.find(1), nullptr);
}

TEST(SyncSimulator, MessageToRemovedNodeIsLost) {
  SyncSimulator sim;
  auto a = std::make_unique<ScriptedProcess>(1);
  a->send_in_round(2, Outgoing{NodeId{2}, text_msg(MsgKind::kPresent, 0)});
  sim.add_process(std::move(a));
  sim.add_process(std::make_unique<ScriptedProcess>(2));
  sim.step();
  sim.remove_process(2);
  EXPECT_NO_FATAL_FAILURE(sim.run_rounds(2));
}

TEST(SyncSimulator, MetricsCountSentAndDelivered) {
  SyncSimulator sim;
  auto a = std::make_unique<ScriptedProcess>(1);
  a->send_in_round(1, Outgoing{std::nullopt, text_msg(MsgKind::kPresent, 0)});
  sim.add_process(std::move(a));
  sim.add_process(std::make_unique<ScriptedProcess>(2));
  sim.run_rounds(2);
  // A broadcast is ONE outgoing message; delivery is counted per recipient.
  EXPECT_EQ(sim.metrics().messages.total_sent(), 1u);
  EXPECT_EQ(sim.metrics().messages.total_delivered(), 2u);
  EXPECT_LE(sim.metrics().messages.total_delivered(),
            sim.metrics().messages.total_sent() * sim.member_count());
  EXPECT_EQ(sim.metrics().rounds_executed, 2);
  // The fan-out layer saw one unique payload fanned to both members.
  EXPECT_EQ(sim.metrics().fanout.unique_payloads, 1u);
  EXPECT_EQ(sim.metrics().fanout.deliveries, 2u);
  EXPECT_GT(sim.metrics().fanout.bytes_delivered, 0u);
}

TEST(SyncSimulator, DoneRoundRecorded) {
  class DoneAfter3 final : public Process {
   public:
    using Process::Process;
    void on_round(RoundInfo round, std::span<const Message>, std::vector<Outgoing>&) override {
      done_ = done_ || round.local >= 3;
    }
    [[nodiscard]] bool done() const override { return done_; }

   private:
    bool done_ = false;
  };
  SyncSimulator sim;
  sim.add_process(std::make_unique<DoneAfter3>(4));
  EXPECT_TRUE(sim.run_until_all_correct_done(10));
  ASSERT_TRUE(sim.metrics().done_round.contains(4));
  EXPECT_EQ(sim.metrics().done_round.at(4), 3);
  EXPECT_EQ(sim.round(), 3);
}

TEST(SyncSimulator, RunUntilStopsEarly) {
  SyncSimulator sim;
  sim.add_process(std::make_unique<ScriptedProcess>(1));
  const bool hit = sim.run_until([&] { return sim.round() >= 5; }, 100);
  EXPECT_TRUE(hit);
  EXPECT_EQ(sim.round(), 5);
}

TEST(SyncSimulator, TraceRecordsRoutedMessages) {
  SyncSimulator sim;
  sim.enable_trace();
  auto a = std::make_unique<ScriptedProcess>(1);
  a->send_in_round(1, Outgoing{std::nullopt, text_msg(MsgKind::kPresent, 0)});
  a->send_in_round(2, Outgoing{NodeId{2}, text_msg(MsgKind::kAck, 0)});
  sim.add_process(std::move(a));
  sim.add_process(std::make_unique<ScriptedProcess>(2));
  sim.run_rounds(3);
  ASSERT_EQ(sim.trace().size(), 2u);
  EXPECT_EQ(sim.trace()[0].round, 1);
  EXPECT_FALSE(sim.trace()[0].to.has_value());
  EXPECT_EQ(sim.trace()[1].round, 2);
  EXPECT_EQ(sim.trace()[1].to, NodeId{2});
  EXPECT_EQ(sim.trace()[1].msg.sender, 1u);
  const std::string dump = sim.dump_trace();
  EXPECT_NE(dump.find("present"), std::string::npos);
  EXPECT_NE(dump.find("ack"), std::string::npos);
  EXPECT_TRUE(sim.dump_trace(Round{2}).find("present") == std::string::npos);
}

TEST(SyncSimulator, TraceRingBufferCapsMemory) {
  SyncSimulator sim;
  sim.enable_trace(/*capacity=*/4);
  auto a = std::make_unique<ScriptedProcess>(1);
  for (Round r = 1; r <= 10; ++r) {
    a->send_in_round(r, Outgoing{std::nullopt, text_msg(MsgKind::kPresent, double(r))});
  }
  sim.add_process(std::move(a));
  sim.run_rounds(10);
  EXPECT_EQ(sim.trace().size(), 4u);
  EXPECT_EQ(sim.trace().front().round, 7);
}

TEST(SyncSimulator, DelayHookPostponesDelivery) {
  SyncSimulator sim;
  sim.set_delay_hook([](NodeId, NodeId, const Message& m, Round) -> Round {
    return m.kind == MsgKind::kAck ? 2 : 0;
  });
  auto a = std::make_unique<ScriptedProcess>(1);
  a->send_in_round(1, Outgoing{NodeId{2}, text_msg(MsgKind::kAck, 0)});      // delayed by 2
  a->send_in_round(1, Outgoing{NodeId{2}, text_msg(MsgKind::kPresent, 0)});  // on time
  auto b = std::make_unique<ScriptedProcess>(2);
  auto* pb = b.get();
  sim.add_process(std::move(a));
  sim.add_process(std::move(b));
  sim.run_rounds(5);
  ASSERT_EQ(pb->received_[2].size(), 1u);
  EXPECT_EQ(pb->received_[2][0].kind, MsgKind::kPresent);
  ASSERT_EQ(pb->received_[4].size(), 1u) << "delayed by 2 extra rounds: 1 + 1 + 2 = round 4";
  EXPECT_EQ(pb->received_[4][0].kind, MsgKind::kAck);
}

TEST(SyncSimulator, DelayedMessageToRemovedNodeIsDropped) {
  SyncSimulator sim;
  sim.set_delay_hook([](NodeId, NodeId, const Message&, Round) -> Round { return 3; });
  auto a = std::make_unique<ScriptedProcess>(1);
  a->send_in_round(1, Outgoing{NodeId{2}, text_msg(MsgKind::kPresent, 0)});
  sim.add_process(std::move(a));
  sim.add_process(std::make_unique<ScriptedProcess>(2));
  sim.step();
  sim.remove_process(2);
  EXPECT_NO_FATAL_FAILURE(sim.run_rounds(5));
}

TEST(SyncSimulator, EngineFuzzRandomChurnAndTrafficNeverBreaks) {
  // Engine robustness: random joins, leaves, broadcasts, and unicasts to
  // possibly-absent targets across 300 rounds must never crash, deliver to
  // dead nodes, or corrupt bookkeeping. Deterministic per seed.
  class Chatterbox final : public Process {
   public:
    Chatterbox(NodeId id, Rng rng) : Process(id), rng_(rng) {}
    void on_round(RoundInfo, std::span<const Message> inbox,
                  std::vector<Outgoing>& out) override {
      received_total += inbox.size();
      if (rng_.chance(0.7)) {
        Message m;
        m.kind = static_cast<MsgKind>(rng_.below(16));
        m.value = Value::real(rng_.uniform(-1, 1));
        broadcast(out, m);
      }
      if (rng_.chance(0.3)) {
        Message m;
        m.kind = MsgKind::kAck;
        unicast(out, 1 + rng_.below(2000), m);  // target may not exist
      }
    }
    std::size_t received_total = 0;

   private:
    Rng rng_;
  };

  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SyncSimulator sim;
    Rng rng(seed);
    NodeId next_id = 1;
    std::vector<NodeId> live;
    std::size_t max_members = 0;
    for (int i = 0; i < 5; ++i) {
      live.push_back(next_id);
      sim.add_process(std::make_unique<Chatterbox>(next_id++, rng.fork()));
    }
    for (int round = 0; round < 300; ++round) {
      if (rng.chance(0.1)) {
        live.push_back(next_id);
        sim.add_process(std::make_unique<Chatterbox>(next_id++, rng.fork()));
      }
      if (live.size() > 3 && rng.chance(0.08)) {
        const std::size_t victim = rng.below(live.size());
        sim.remove_process(live[victim]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
      }
      max_members = std::max(max_members, live.size());
      ASSERT_NO_FATAL_FAILURE(sim.step()) << "seed=" << seed << " round=" << round;
    }
    sim.step();  // settle removals/joins issued in the final loop iteration
    EXPECT_EQ(sim.member_count(), live.size()) << seed;
    EXPECT_EQ(sim.round(), 301) << seed;
    EXPECT_GT(sim.metrics().messages.total_delivered(), 0u);
    // sent = outgoing messages; a broadcast reaches at most every member, so
    // deliveries can exceed sends but never sent × peak membership.
    EXPECT_LE(sim.metrics().messages.total_delivered(),
              sim.metrics().messages.total_sent() * max_members);
  }
}

TEST(SyncSimulator, AddDuplicateIdThrows) {
  SyncSimulator sim;
  sim.add_process(std::make_unique<ScriptedProcess>(1));
  // Live duplicate: rejected immediately, not at the next step().
  EXPECT_THROW(sim.add_process(std::make_unique<ScriptedProcess>(1)), std::invalid_argument);
  sim.step();
  // Still a duplicate after the join took effect.
  EXPECT_THROW(sim.add_process(std::make_unique<ScriptedProcess>(1)), std::invalid_argument);
  // Queued duplicate: two adds of the same id before any step.
  sim.add_process(std::make_unique<ScriptedProcess>(2));
  EXPECT_THROW(sim.add_process(std::make_unique<ScriptedProcess>(2)), std::invalid_argument);
  EXPECT_THROW(sim.add_process(nullptr), std::invalid_argument);
}

TEST(SyncSimulator, ReAddAfterRemoveSameRoundAllowed) {
  SyncSimulator sim;
  sim.add_process(std::make_unique<ScriptedProcess>(1));
  sim.add_process(std::make_unique<ScriptedProcess>(2));
  sim.step();
  // Removal queued this round frees the id for an incoming replacement.
  sim.remove_process(2);
  auto fresh = std::make_unique<ScriptedProcess>(2);
  auto* pfresh = fresh.get();
  EXPECT_NO_THROW(sim.add_process(std::move(fresh)));
  sim.run_rounds(2);
  EXPECT_EQ(sim.member_count(), 2u);
  EXPECT_EQ(sim.find(2), pfresh);
}

TEST(SyncSimulator, DelayedMessageNotResurrectedForReusedId) {
  // A message delayed in flight to node 2 must die with node 2's removal —
  // it must NOT be delivered to a NEW process that later re-uses id 2.
  SyncSimulator sim;
  sim.set_delay_hook([](NodeId, NodeId, const Message&, Round) -> Round { return 3; });
  auto a = std::make_unique<ScriptedProcess>(1);
  a->send_in_round(1, Outgoing{NodeId{2}, text_msg(MsgKind::kPresent, 7)});
  sim.add_process(std::move(a));
  sim.add_process(std::make_unique<ScriptedProcess>(2));
  sim.step();  // round 1: send routed, due in round 1 + 1 + 3 = 5
  sim.remove_process(2);
  sim.step();  // round 2: removal takes effect, in-flight message purged
  auto reborn = std::make_unique<ScriptedProcess>(2);
  auto* preborn = reborn.get();
  sim.add_process(std::move(reborn));
  sim.run_rounds(5);  // runs through the old due round
  for (const auto& [round, inbox] : preborn->received_) {
    EXPECT_TRUE(inbox.empty()) << "stale delayed message resurrected in local round " << round;
  }
}

TEST(SyncSimulator, MemberIdsSorted) {
  SyncSimulator sim;
  sim.add_process(std::make_unique<ScriptedProcess>(30));
  sim.add_process(std::make_unique<ScriptedProcess>(10));
  sim.add_process(std::make_unique<ScriptedProcess>(20));
  sim.step();
  EXPECT_EQ(sim.member_ids(), (std::vector<NodeId>{10, 20, 30}));
}

}  // namespace
}  // namespace idonly
