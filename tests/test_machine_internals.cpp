// Hand-driven state-machine tests: feed crafted inboxes round by round and
// assert the exact rule firings that end-to-end runs can't isolate — the
// parallel-consensus fill rules per phase, marker semantics, and the rotor's
// opinion-acceptance timing.
#include <gtest/gtest.h>

#include "core/parallel_consensus.hpp"
#include "core/rotor_coordinator.hpp"

namespace idonly {
namespace {

Message from(NodeId sender, MsgKind kind, PairId pair = 0, Value value = Value::bot()) {
  Message m;
  m.sender = sender;
  m.kind = kind;
  m.subject = pair;
  m.value = value;
  return m;
}

std::vector<Message> init_round(std::initializer_list<NodeId> senders) {
  std::vector<Message> inbox;
  for (NodeId s : senders) inbox.push_back(from(s, MsgKind::kInit));
  return inbox;
}

/// Drive a machine through rounds 1–2 (init) with members {1,2,3,4}.
void bootstrap(ParallelConsensusMachine& machine) {
  std::vector<Message> out;
  machine.on_round({}, out);                       // r1: our init broadcast
  out.clear();
  auto r2 = init_round({1, 2, 3, 4});
  machine.on_round(r2, out);                       // r2: echoes
  out.clear();
  std::vector<Message> r3;                         // r3 inbox: echoes (ignored here)
  for (NodeId s : {1u, 2u, 3u, 4u}) {
    Message echo = from(s, MsgKind::kEcho, s);
    r3.push_back(echo);
  }
  machine.on_round(r3, out);                       // r3 = phase 1 P1
}

bool contains_kind(const std::vector<Message>& msgs, MsgKind kind, PairId pair) {
  for (const Message& m : msgs) {
    if (m.kind == kind && m.subject == pair) return true;
  }
  return false;
}

TEST(ParallelMachine, HolderBroadcastsInputAtP1) {
  ParallelConsensusMachine machine(1, 0, {{.id = 9, .value = Value::real(5.0)}});
  std::vector<Message> out;
  machine.on_round({}, out);
  out.clear();
  auto r2 = init_round({1, 2, 3, 4});
  machine.on_round(r2, out);
  out.clear();
  machine.on_round({}, out);  // P1
  ASSERT_TRUE(contains_kind(out, MsgKind::kInput, 9));
  EXPECT_EQ(machine.n_v(), 4u);
}

TEST(ParallelMachine, BotFillMakesLoneWhisperResolveToNoOutput) {
  // Machine without the pair hears one Byzantine id:input at P2 (round 4):
  // it adopts the instance with ⊥, fills everyone else with input(⊥), and
  // broadcasts prefer(⊥) — exactly the Theorem 5 second-case walk.
  ParallelConsensusMachine machine(1, 0, {});
  bootstrap(machine);
  std::vector<Message> out;
  std::vector<Message> p2{from(9 /*byz member? not member!*/, MsgKind::kInput, 77,
                               Value::real(3.0))};
  // Non-members are discarded — use member 2 as the whisper relay instead.
  p2[0].sender = 2;
  machine.on_round(p2, out);  // P2
  ASSERT_EQ(machine.instance_count(), 1u);
  ASSERT_TRUE(contains_kind(out, MsgKind::kPrefer, 77));
  for (const Message& m : out) {
    if (m.kind == MsgKind::kPrefer && m.subject == 77) {
      EXPECT_TRUE(m.value.is_bot()) << "⊥ fills must dominate a lone whisper";
    }
  }
}

TEST(ParallelMachine, NonMemberWhisperIsDiscarded) {
  ParallelConsensusMachine machine(1, 0, {});
  bootstrap(machine);
  std::vector<Message> out;
  std::vector<Message> p2{from(99, MsgKind::kInput, 77, Value::real(3.0))};  // 99 ∉ members
  machine.on_round(p2, out);
  EXPECT_EQ(machine.instance_count(), 0u);
}

TEST(ParallelMachine, WrongInstanceTagIsDiscarded) {
  ParallelConsensusMachine machine(1, /*tag=*/5, {});
  bootstrap(machine);
  std::vector<Message> out;
  Message wrong = from(2, MsgKind::kInput, 77, Value::real(3.0));
  wrong.instance = 6;  // different instance
  std::vector<Message> p2{wrong};
  machine.on_round(p2, out);
  EXPECT_EQ(machine.instance_count(), 0u);
}

TEST(ParallelMachine, MembershipRestrictionFiltersSenders) {
  std::set<NodeId> restriction{1, 2};
  ParallelConsensusMachine machine(1, 0, {}, restriction);
  std::vector<Message> out;
  machine.on_round({}, out);
  out.clear();
  auto r2 = init_round({1, 2, 3, 4});  // 3, 4 are outside S
  machine.on_round(r2, out);
  out.clear();
  machine.on_round({}, out);
  EXPECT_EQ(machine.n_v(), 2u) << "only S members count toward n_v";
}

TEST(ParallelMachine, MarkerSuppressesBotFillAtP3) {
  // Phase-1 P3 fills silent members with prefer(⊥) (rule 2). A member that
  // says `nopreference` instead must NOT be filled — the observable
  // difference at n_v = 4: three silent members → three ⊥ fills → 2n_v/3
  // reached → strongprefer(⊥); one of them sending the marker instead drops
  // the ⊥ count to two → only the no-strong-preference marker goes out.
  auto drive_to_p3 = [&](std::vector<Message> p3, std::vector<Message>& out) {
    ParallelConsensusMachine machine(1, 0, {{.id = 7, .value = Value::real(1.0)}});
    bootstrap(machine);  // P1: broadcasts input(7, 1.0)
    std::vector<Message> scratch;
    // P2: only our own input echoes back (others silent → ⊥ fills → no
    // value quorum → we emit nopreference ourselves; irrelevant here).
    std::vector<Message> p2{from(1, MsgKind::kInput, 7, Value::real(1.0))};
    machine.on_round(p2, scratch);
    out.clear();
    machine.on_round(p3, out);
  };

  std::vector<Message> out;
  // Case A: members 2, 3, 4 completely silent at P3 → ⊥ fills for all three.
  drive_to_p3({from(1, MsgKind::kPrefer, 7, Value::bot())}, out);
  EXPECT_TRUE(contains_kind(out, MsgKind::kStrongPrefer, 7))
      << "three ⊥ fills + own prefer reach 2n_v/3";

  // Case B: members 2 and 3 send markers — no fills for them, and the ⊥
  // count (own prefer + one fill for member 4 = 2 of 4) drops below 2n_v/3.
  drive_to_p3({from(1, MsgKind::kPrefer, 7, Value::bot()),
               from(2, MsgKind::kNoPreference, 7),
               from(3, MsgKind::kNoPreference, 7)},
              out);
  EXPECT_FALSE(contains_kind(out, MsgKind::kStrongPrefer, 7))
      << "markers must not be substituted away";
  EXPECT_TRUE(contains_kind(out, MsgKind::kNoStrongPref, 7));
}

// ------------------------------------------------------------------ rotor --

TEST(RotorProcess, OpinionAcceptedExactlyOneRoundAfterSelection) {
  RotorProcess p(/*self=*/1, Value::real(4.0));
  std::vector<Outgoing> out;
  p.on_round({1, 1}, {}, out);
  out.clear();
  auto r2 = init_round({1, 2, 3});
  p.on_round({2, 2}, r2, out);
  out.clear();
  // Round 3 (rotor round 0): echoes for ids 1,2,3 from everyone → all become
  // candidates; selection = C[0] = 1 = self → we broadcast opinion.
  std::vector<Message> r3;
  for (NodeId s : {1u, 2u, 3u}) {
    for (NodeId candidate : {1u, 2u, 3u}) r3.push_back(from(s, MsgKind::kEcho, candidate));
  }
  p.on_round({3, 3}, r3, out);
  ASSERT_EQ(p.history().size(), 1u);
  EXPECT_EQ(p.history()[0].selected, NodeId{1});
  EXPECT_FALSE(p.history()[0].accepted_opinion.has_value()) << "no previous coordinator yet";
  bool sent_opinion = false;
  for (const auto& o : out) sent_opinion = sent_opinion || o.msg.kind == MsgKind::kOpinion;
  EXPECT_TRUE(sent_opinion);
  out.clear();
  // Round 4: our own opinion (self-delivery) arrives; acceptance recorded
  // against the PREVIOUS round's coordinator (us).
  std::vector<Message> r4{from(1, MsgKind::kOpinion, 0, Value::real(4.0))};
  p.on_round({4, 4}, r4, out);
  ASSERT_EQ(p.history().size(), 2u);
  EXPECT_EQ(p.history()[1].accepted_from, NodeId{1});
  EXPECT_EQ(p.history()[1].accepted_opinion, Value::real(4.0));
  EXPECT_EQ(p.history()[1].selected, NodeId{2}) << "round-robin advances";
}

TEST(RotorProcess, OpinionFromNonCoordinatorIgnored) {
  RotorProcess p(1, Value::real(0.0));
  std::vector<Outgoing> out;
  p.on_round({1, 1}, {}, out);
  out.clear();
  auto r2 = init_round({1, 2, 3});
  p.on_round({2, 2}, r2, out);
  out.clear();
  std::vector<Message> r3;
  for (NodeId s : {1u, 2u, 3u}) {
    for (NodeId candidate : {1u, 2u, 3u}) r3.push_back(from(s, MsgKind::kEcho, candidate));
  }
  p.on_round({3, 3}, r3, out);
  out.clear();
  // Round 4: opinion from node 3, but the previous coordinator was node 1.
  std::vector<Message> r4{from(3, MsgKind::kOpinion, 0, Value::real(9.0))};
  p.on_round({4, 4}, r4, out);
  EXPECT_FALSE(p.history()[1].accepted_opinion.has_value());
}

}  // namespace
}  // namespace idonly
