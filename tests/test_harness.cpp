// Harness tests: scenario construction must be deterministic, ids sparse and
// disjoint, adversary factory total, and quorum bookkeeping exact.
#include <gtest/gtest.h>

#include <set>

#include "core/participant_tracker.hpp"
#include "harness/scenario.hpp"

namespace idonly {
namespace {

TEST(Scenario, DeterministicInSeed) {
  ScenarioConfig config;
  config.n_correct = 10;
  config.n_byzantine = 3;
  config.seed = 99;
  const Scenario a = make_scenario(config);
  const Scenario b = make_scenario(config);
  EXPECT_EQ(a.correct_ids, b.correct_ids);
  EXPECT_EQ(a.byzantine_ids, b.byzantine_ids);
  config.seed = 100;
  const Scenario c = make_scenario(config);
  EXPECT_NE(a.correct_ids, c.correct_ids);
}

TEST(Scenario, IdsSparseDistinctAndDisjoint) {
  ScenarioConfig config;
  config.n_correct = 20;
  config.n_byzantine = 6;
  config.seed = 5;
  const Scenario scenario = make_scenario(config);
  EXPECT_EQ(scenario.correct_ids.size(), 20u);
  EXPECT_EQ(scenario.byzantine_ids.size(), 6u);
  std::set<NodeId> all(scenario.correct_ids.begin(), scenario.correct_ids.end());
  all.insert(scenario.byzantine_ids.begin(), scenario.byzantine_ids.end());
  EXPECT_EQ(all.size(), 26u) << "ids must be distinct across both groups";
  // Sparse: not consecutive (the id-only model's premise).
  bool any_gap = false;
  NodeId prev = 0;
  for (NodeId id : all) {
    if (prev != 0 && id > prev + 1) any_gap = true;
    prev = id;
  }
  EXPECT_TRUE(any_gap);
}

TEST(Scenario, AdversaryMixAssignsRoundRobin) {
  ScenarioConfig config;
  config.n_byzantine = 5;
  config.adversary_mix = {AdversaryKind::kSilent, AdversaryKind::kNoise};
  EXPECT_EQ(adversary_kind_for(config, 0), AdversaryKind::kSilent);
  EXPECT_EQ(adversary_kind_for(config, 1), AdversaryKind::kNoise);
  EXPECT_EQ(adversary_kind_for(config, 2), AdversaryKind::kSilent);
  config.adversary_mix.clear();
  config.adversary = AdversaryKind::kCrash;
  EXPECT_EQ(adversary_kind_for(config, 4), AdversaryKind::kCrash);
}

TEST(Scenario, MixKeepsByzantineIdsEvenWithNoneDefault) {
  ScenarioConfig config;
  config.n_correct = 4;
  config.n_byzantine = 2;
  config.adversary = AdversaryKind::kNone;
  config.adversary_mix = {AdversaryKind::kNoise};
  const Scenario scenario = make_scenario(config);
  EXPECT_EQ(scenario.byzantine_ids.size(), 2u);
}

TEST(Scenario, NoneAdversaryHasNoByzantineIds) {
  ScenarioConfig config;
  config.n_correct = 5;
  config.n_byzantine = 3;
  config.adversary = AdversaryKind::kNone;
  const Scenario scenario = make_scenario(config);
  EXPECT_TRUE(scenario.byzantine_ids.empty());
  EXPECT_EQ(scenario.n(), 5u);
}

TEST(Scenario, ContextListsEveryone) {
  ScenarioConfig config;
  config.n_correct = 4;
  config.n_byzantine = 2;
  const Scenario scenario = make_scenario(config);
  const AdversaryContext context = scenario.context();
  EXPECT_EQ(context.all_ids.size(), 6u);
  EXPECT_EQ(context.correct_ids.size(), 4u);
}

TEST(Scenario, AdversaryFactoryCoversEveryKind) {
  ScenarioConfig config;
  config.n_correct = 4;
  config.n_byzantine = 2;
  for (AdversaryKind kind : all_adversaries()) {
    config.adversary = kind;
    const Scenario scenario = make_scenario(config);
    Rng rng(1);
    auto factory = [](NodeId id, std::size_t) -> std::unique_ptr<Process> {
      return std::make_unique<SilentAdversary>(id);  // placeholder inner
    };
    auto adversary = make_adversary(scenario, kind, scenario.byzantine_ids[0], 0, rng, factory);
    ASSERT_NE(adversary, nullptr) << to_string(kind);
    EXPECT_TRUE(adversary->byzantine()) << to_string(kind);
    EXPECT_FALSE(to_string(kind).empty());
  }
}

// ------------------------------------------------------ quorum bookkeeping --

TEST(ParticipantTracker, CountsDistinctSendersAcrossRounds) {
  ParticipantTracker tracker;
  Message a;
  a.sender = 1;
  Message b;
  b.sender = 2;
  std::vector<Message> round1{a, b, a};
  tracker.note(round1);
  EXPECT_EQ(tracker.n_v(), 2u);
  std::vector<Message> round2{b};
  tracker.note(round2);
  EXPECT_EQ(tracker.n_v(), 2u);
  tracker.note(NodeId{3});
  EXPECT_EQ(tracker.n_v(), 3u);
  EXPECT_TRUE(tracker.knows(1));
  EXPECT_FALSE(tracker.knows(9));
}

TEST(QuorumCounter, DistinctSendersPerKey) {
  QuorumCounter<Value> counter;
  EXPECT_TRUE(counter.add(Value::real(1), 10));
  EXPECT_FALSE(counter.add(Value::real(1), 10)) << "same sender counted once";
  EXPECT_TRUE(counter.add(Value::real(1), 11));
  EXPECT_TRUE(counter.add(Value::real(2), 10));
  EXPECT_EQ(counter.count(Value::real(1)), 2u);
  EXPECT_EQ(counter.count(Value::real(2)), 1u);
  EXPECT_EQ(counter.count(Value::real(3)), 0u);
}

TEST(QuorumCounter, BestPicksLargestThenSmallestKey) {
  QuorumCounter<Value> counter;
  counter.add(Value::real(5), 1);
  counter.add(Value::real(5), 2);
  counter.add(Value::real(3), 3);
  counter.add(Value::real(3), 4);
  const auto best = counter.best();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->first, Value::real(3)) << "tie → smaller key (⊥ < reals, then numeric)";
  EXPECT_EQ(best->second, 2u);
  counter.add(Value::real(5), 5);
  EXPECT_EQ(counter.best()->first, Value::real(5));
}

TEST(QuorumCounter, EmptyHasNoBest) {
  QuorumCounter<NodeId> counter;
  EXPECT_FALSE(counter.best().has_value());
  counter.add(7, 1);
  counter.clear();
  EXPECT_FALSE(counter.best().has_value());
}

}  // namespace
}  // namespace idonly
