// Approximate agreement in dynamic networks (§Application to Dynamic
// Networks + §Discussion): the per-round guarantees survive joins/leaves
// subject to n > 3f per round, and a newcomer can converge toward the
// cluster by sampling only a subset of nodes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "adversary/strategies.hpp"
#include "core/approx_agreement.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

std::vector<double> estimates(SyncSimulator& sim, const std::vector<NodeId>& ids) {
  std::vector<double> out;
  for (NodeId id : ids) {
    if (auto* p = sim.get<ApproxAgreementProcess>(id); p != nullptr) out.push_back(p->value());
  }
  return out;
}

double range_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(xs.begin(), xs.end());
  return *hi - *lo;
}

TEST(DynamicApprox, ChurnEveryRoundStillContracts) {
  // 8 stable nodes; every round one extra node joins and one (previous
  // joiner) leaves — constant churn, n > 3f holds throughout (f = 0 here;
  // the point is membership instability, not faults).
  SyncSimulator sim;
  std::vector<NodeId> stable;
  for (NodeId id = 10; id < 90; id += 10) {
    stable.push_back(id);
    sim.add_process(std::make_unique<ApproxAgreementProcess>(
        id, static_cast<double>(id) / 10.0, /*iterations=*/40));
  }
  const double initial_range = range_of(estimates(sim, stable));
  NodeId churn_id = 1000;
  std::optional<NodeId> leaver;
  for (int round = 0; round < 12; ++round) {
    if (leaver.has_value()) sim.remove_process(*leaver);
    // Joiner's value is inside the current correct range — it cannot expand
    // the range, matching the paper's "depends on the inputs of nodes
    // entering" caveat.
    sim.add_process(std::make_unique<ApproxAgreementProcess>(++churn_id, 5.0, 40));
    leaver = churn_id;
    sim.step();
  }
  sim.run_rounds(4);
  const double final_range = range_of(estimates(sim, stable));
  EXPECT_LT(final_range, initial_range / 100.0);
}

TEST(DynamicApprox, InRangeJoinersNeverExpandRange) {
  SyncSimulator sim;
  std::vector<NodeId> stable{11, 22, 33, 44, 55, 66, 77};
  for (std::size_t i = 0; i < stable.size(); ++i) {
    sim.add_process(std::make_unique<ApproxAgreementProcess>(
        stable[i], static_cast<double>(i), /*iterations=*/30));
  }
  double prev_range = range_of(estimates(sim, stable));
  for (int round = 0; round < 10; ++round) {
    sim.step();
    if (round == 3) {
      sim.add_process(std::make_unique<ApproxAgreementProcess>(500, 3.0, 20));
    }
    const double range = range_of(estimates(sim, stable));
    EXPECT_LE(range, prev_range + 1e-12) << "round " << round;
    prev_range = range;
  }
}

TEST(DynamicApprox, OutOfRangeJoinerMayGrowRangeButReconverges) {
  // The paper's caveat: a joiner with an outlier input can re-expand the
  // range — but contraction resumes immediately afterwards.
  SyncSimulator sim;
  std::vector<NodeId> all{11, 22, 33, 44, 55};
  for (std::size_t i = 0; i < all.size(); ++i) {
    sim.add_process(std::make_unique<ApproxAgreementProcess>(
        all[i], static_cast<double>(i), /*iterations=*/30));
  }
  sim.run_rounds(6);
  const double tight = range_of(estimates(sim, all));
  sim.add_process(std::make_unique<ApproxAgreementProcess>(500, 100.0, 24));
  all.push_back(500);
  sim.run_rounds(1);  // the joiner has broadcast but not yet folded anything in
  const double expanded = range_of(estimates(sim, all));
  EXPECT_GT(expanded, tight);
  sim.run_rounds(12);
  const double reconverged = range_of(estimates(sim, all));
  EXPECT_LT(reconverged, expanded / 100.0);
}

TEST(DynamicApprox, ByzantinePresentThroughChurn) {
  // f = 2 extreme adversaries stay for the whole run while correct nodes
  // join; per-round n > 3f holds, so outputs stay in the correct range.
  SyncSimulator sim;
  std::vector<NodeId> correct{11, 22, 33, 44, 55, 66, 77};
  for (std::size_t i = 0; i < correct.size(); ++i) {
    sim.add_process(std::make_unique<ApproxAgreementProcess>(
        correct[i], 10.0 + static_cast<double>(i), /*iterations=*/30));
  }
  AdversaryContext context{correct, correct};
  sim.add_process(std::make_unique<ExtremeValueAdversary>(901, context, -1e9, 1e9));
  sim.add_process(std::make_unique<ExtremeValueAdversary>(902, context, -1e9, 1e9));
  sim.run_rounds(4);
  sim.add_process(std::make_unique<ApproxAgreementProcess>(88, 13.0, 20));
  correct.push_back(88);
  sim.run_rounds(16);
  const auto values = estimates(sim, correct);
  for (double v : values) {
    EXPECT_GE(v, 10.0 - 1e-9);
    EXPECT_LE(v, 16.0 + 1e-9);
  }
  EXPECT_LT(range_of(values), 6.0 / 100.0);
}

TEST(DynamicApprox, NewcomerConvergesFromSubsetSample) {
  // §Discussion: "the new node can execute Alg. 4 only with a subset of
  // nodes to get closer to the value of most of the nodes." Pure-rule
  // check: the cluster sits at 7.0; the newcomer samples only 4 of them
  // plus one Byzantine liar, and the trim rule still lands on the cluster.
  const std::vector<double> sample{7.0, 7.0, 7.0, 7.0, 1e9};  // 4 honest + 1 liar
  const auto estimate = approx_agree_step(sample);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_DOUBLE_EQ(*estimate, 7.0);

  // Starting far away, repeated subset sampling converges geometrically.
  double newcomer = 100.0;
  for (int i = 0; i < 6; ++i) {
    newcomer = *approx_agree_step({7.0, 7.0, 7.0, 7.0, newcomer, -1e6});
  }
  EXPECT_NEAR(newcomer, 7.0, 1.0);
}

}  // namespace
}  // namespace idonly
