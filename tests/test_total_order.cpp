// Dynamic total ordering (Alg. 6, Theorem 6): chain-prefix and chain-growth
// under event submission, Byzantine presence, and join/leave churn.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "adversary/strategies.hpp"
#include "core/total_order.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

struct Network {
  SyncSimulator sim;
  std::vector<NodeId> correct_ids;

  TotalOrderProcess* node(NodeId id) { return sim.get<TotalOrderProcess>(id); }

  /// Checks chain-prefix over all correct nodes' current chains.
  void expect_prefix_consistent(const char* where) {
    for (std::size_t i = 0; i < correct_ids.size(); ++i) {
      for (std::size_t j = i + 1; j < correct_ids.size(); ++j) {
        auto* a = node(correct_ids[i]);
        auto* b = node(correct_ids[j]);
        if (a == nullptr || b == nullptr) continue;
        const auto& ca = a->chain();
        const auto& cb = b->chain();
        const std::size_t k = std::min(ca.size(), cb.size());
        for (std::size_t e = 0; e < k; ++e) {
          ASSERT_EQ(ca[e], cb[e]) << where << ": chains diverge at entry " << e << " between "
                                  << correct_ids[i] << " and " << correct_ids[j];
        }
      }
    }
  }
};

Network make_founders(std::vector<NodeId> ids) {
  Network net;
  net.correct_ids = ids;
  for (NodeId id : ids) {
    net.sim.add_process(std::make_unique<TotalOrderProcess>(id, /*founder=*/true));
  }
  return net;
}

TEST(TotalOrder, FoundersAgreeOnRoundNumbers) {
  auto net = make_founders({11, 22, 33, 44});
  net.sim.run_rounds(6);
  const Round r = net.node(11)->protocol_round();
  EXPECT_GT(r, 0);
  for (NodeId id : net.correct_ids) EXPECT_EQ(net.node(id)->protocol_round(), r) << id;
}

TEST(TotalOrder, FoundersSeeEachOtherInMembership) {
  auto net = make_founders({11, 22, 33, 44});
  net.sim.run_rounds(4);
  for (NodeId id : net.correct_ids) {
    EXPECT_EQ(net.node(id)->membership().size(), 4u) << id;
  }
}

TEST(TotalOrder, SingleEventIsFinalizedEverywhere) {
  auto net = make_founders({11, 22, 33, 44});
  net.sim.run_rounds(3);
  net.node(22)->submit_event(3.5);
  // Finality lag: 5|S|/2 + 2 = 12 rounds after the instance, plus slack.
  net.sim.run_rounds(40);
  for (NodeId id : net.correct_ids) {
    const auto& chain = net.node(id)->chain();
    ASSERT_EQ(chain.size(), 1u) << id;
    EXPECT_EQ(chain[0].witness, 22u);
    EXPECT_DOUBLE_EQ(chain[0].event, 3.5);
  }
  net.expect_prefix_consistent("single event");
}

TEST(TotalOrder, ChainGrowthWithContinuousEvents) {
  auto net = make_founders({11, 22, 33, 44, 55});
  net.sim.run_rounds(3);
  for (int i = 0; i < 20; ++i) {
    net.node(11)->submit_event(100.0 + i);
    net.sim.run_rounds(1);
  }
  const std::size_t mid = net.node(22)->chain().size();
  net.sim.run_rounds(40);
  const std::size_t end = net.node(22)->chain().size();
  EXPECT_GT(end, mid);
  EXPECT_GE(end, 20u);
  net.expect_prefix_consistent("growth");
  // Events must appear in submission (round) order.
  const auto& chain = net.node(33)->chain();
  for (std::size_t i = 1; i < chain.size(); ++i) {
    EXPECT_LE(chain[i - 1].instance, chain[i].instance);
    if (chain[i - 1].witness == 11u && chain[i].witness == 11u) {
      EXPECT_LT(chain[i - 1].event, chain[i].event);
    }
  }
}

TEST(TotalOrder, ConcurrentEventsSameRoundBothOrdered) {
  auto net = make_founders({11, 22, 33, 44});
  net.sim.run_rounds(3);
  net.node(11)->submit_event(1.0);
  net.node(44)->submit_event(2.0);
  net.sim.run_rounds(40);
  for (NodeId id : net.correct_ids) {
    const auto& chain = net.node(id)->chain();
    ASSERT_EQ(chain.size(), 2u) << id;
    // Same instance; ties broken by witness id consistently.
    EXPECT_EQ(chain[0].instance, chain[1].instance);
    EXPECT_EQ(chain[0].witness, 11u);
    EXPECT_EQ(chain[1].witness, 44u);
  }
  net.expect_prefix_consistent("concurrent");
}

TEST(TotalOrder, PrefixHoldsWhileUnfinalized) {
  auto net = make_founders({11, 22, 33, 44});
  net.sim.run_rounds(3);
  for (int i = 0; i < 30; ++i) {
    net.node(33)->submit_event(double(i));
    net.sim.run_rounds(1);
    net.expect_prefix_consistent("rolling");
  }
}

TEST(TotalOrder, SilentByzantineDoesNotBlockFinality) {
  auto net = make_founders({11, 22, 33, 44, 55, 66, 77});
  net.sim.add_process(std::make_unique<SilentAdversary>(99));
  net.sim.run_rounds(3);
  net.node(11)->submit_event(5.0);
  net.sim.run_rounds(50);
  for (NodeId id : net.correct_ids) {
    ASSERT_EQ(net.node(id)->chain().size(), 1u) << id;
  }
  net.expect_prefix_consistent("byzantine-silent");
}

TEST(TotalOrder, NoiseByzantineCannotForgeEvents) {
  auto net = make_founders({11, 22, 33, 44, 55, 66, 77});
  AdversaryContext context{{11, 22, 33, 44, 55, 66, 77, 99}, {11, 22, 33, 44, 55, 66, 77}};
  net.sim.add_process(std::make_unique<RandomNoiseAdversary>(99, context, Rng(7)));
  net.sim.run_rounds(3);
  net.node(22)->submit_event(8.0);
  net.sim.run_rounds(60);
  net.expect_prefix_consistent("byzantine-noise");
  // Whatever junk 99 injected, correct nodes' chains contain the real event
  // and only entries witnessed by *members* — and at most one entry per
  // member per instance.
  const auto& chain = net.node(11)->chain();
  bool found = false;
  for (const auto& entry : chain) {
    if (entry.witness == 22u && entry.event == 8.0) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TotalOrder, LateJoinerAdoptsRoundAndParticipates) {
  auto net = make_founders({11, 22, 33, 44});
  net.sim.run_rounds(8);
  const Round incumbent_round = net.node(11)->protocol_round();
  auto joiner = std::make_unique<TotalOrderProcess>(88, /*founder=*/false);
  auto* pjoiner = joiner.get();
  net.sim.add_process(std::move(joiner));
  net.sim.run_rounds(5);
  EXPECT_EQ(pjoiner->protocol_round(), net.node(11)->protocol_round())
      << "joiner must adopt the incumbents' round counter (was " << incumbent_round << ")";
  // Joiner enters everyone's membership.
  for (NodeId id : net.correct_ids) {
    EXPECT_TRUE(net.node(id)->membership().contains(88)) << id;
  }
  // Joiner's events get ordered.
  pjoiner->submit_event(77.0);
  net.sim.run_rounds(45);
  bool found = false;
  for (const auto& entry : net.node(11)->chain()) {
    if (entry.witness == 88u) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(TotalOrder, SimultaneousJoinersBothIntegrate) {
  auto net = make_founders({11, 22, 33, 44});
  net.sim.run_rounds(8);
  auto j1 = std::make_unique<TotalOrderProcess>(77, /*founder=*/false);
  auto j2 = std::make_unique<TotalOrderProcess>(88, /*founder=*/false);
  auto* p1 = j1.get();
  auto* p2 = j2.get();
  net.sim.add_process(std::move(j1));
  net.sim.add_process(std::move(j2));
  net.sim.run_rounds(6);
  // Both adopt the incumbents' round and appear in everyone's S —
  // including each other's.
  EXPECT_EQ(p1->protocol_round(), net.node(11)->protocol_round());
  EXPECT_EQ(p2->protocol_round(), net.node(11)->protocol_round());
  for (NodeId id : net.correct_ids) {
    EXPECT_TRUE(net.node(id)->membership().contains(77)) << id;
    EXPECT_TRUE(net.node(id)->membership().contains(88)) << id;
  }
  EXPECT_TRUE(p1->membership().contains(88));
  EXPECT_TRUE(p2->membership().contains(77));
  // And both order events after integrating.
  p1->submit_event(71.0);
  p2->submit_event(81.0);
  net.sim.run_rounds(50);
  std::size_t found = 0;
  for (const auto& entry : net.node(22)->chain()) {
    if ((entry.witness == 77u && entry.event == 71.0) ||
        (entry.witness == 88u && entry.event == 81.0)) {
      found += 1;
    }
  }
  EXPECT_EQ(found, 2u);
  net.expect_prefix_consistent("simultaneous joiners");
}

TEST(TotalOrder, LeaverFinishesOutstandingInstancesThenDone) {
  auto net = make_founders({11, 22, 33, 44, 55});
  net.sim.run_rounds(3);
  net.node(11)->submit_event(1.0);
  net.sim.run_rounds(2);
  net.node(55)->request_leave();
  net.sim.run_rounds(40);
  EXPECT_TRUE(net.node(55)->done());
  // Remaining nodes drop 55 from membership and continue ordering.
  for (NodeId id : {11u, 22u, 33u, 44u}) {
    EXPECT_FALSE(net.node(id)->membership().contains(55)) << id;
  }
  net.node(22)->submit_event(2.0);
  net.sim.run_rounds(40);
  bool found = false;
  for (const auto& entry : net.node(11)->chain()) {
    if (entry.witness == 22u && entry.event == 2.0) found = true;
  }
  EXPECT_TRUE(found);
  net.correct_ids = {11, 22, 33, 44};
  net.expect_prefix_consistent("after-leave");
}

TEST(TotalOrder, FinalityLagStaysWithinTheoremBound) {
  // Theorem 6's clock: round r' is final once r − r' > 5|S|/2 + 2. At
  // quiescence the lag between the current round and the finalized prefix
  // must settle at that bound (plus the one-round refresh).
  auto net = make_founders({11, 22, 33, 44, 55});
  net.sim.run_rounds(3);
  net.node(11)->submit_event(1.0);
  net.sim.run_rounds(60);
  const auto* n11 = net.node(11);
  const Round lag = n11->protocol_round() - n11->finalized_upto();
  const Round bound = 5 * 5 / 2 + 2 + 2;  // 5|S|/2 + 2, integer slack + refresh
  EXPECT_LE(lag, bound) << "finality must not trail further than the theorem's envelope";
  EXPECT_GT(lag, 0);
}

TEST(TotalOrder, StaleEventTagsAreDiscarded) {
  // A Byzantine member (it DID join via `present`, so it is in S and may
  // submit events) broadcasts events with stale round tags; those must
  // never be collected. Its correctly-tagged events MAY be ordered — that
  // is legitimate behaviour for a member.
  class StaleEventAdversary final : public ByzantineProcess {
   public:
    using ByzantineProcess::ByzantineProcess;
    void on_round(RoundInfo round, std::span<const Message>,
                  std::vector<Outgoing>& out) override {
      if (round.local == 1) {
        broadcast(out, Message{.kind = MsgKind::kPresent});
        return;
      }
      if (round.local < 4) return;  // fire only once the tag is stale
      Message ev;
      ev.kind = MsgKind::kEvent;
      ev.value = Value::real(666.0);
      ev.round_tag = 1;  // permanently stale (receivers are at r ≥ 3)
      broadcast(out, ev);
    }
  };
  auto net = make_founders({11, 22, 33, 44, 55, 66, 77});
  net.sim.add_process(std::make_unique<StaleEventAdversary>(99));
  net.sim.run_rounds(3);
  net.node(22)->submit_event(8.0);
  net.sim.run_rounds(55);
  for (NodeId id : net.correct_ids) {
    for (const auto& entry : net.node(id)->chain()) {
      EXPECT_NE(entry.event, 666.0) << "stale-tagged events must be discarded";
    }
    ASSERT_EQ(net.node(id)->chain().size(), 1u) << id;
  }
}

TEST(TotalOrder, NonMemberEventsIgnored) {
  // A node that never announced itself (not in S) broadcasts correctly
  // tagged events — they must not enter any chain.
  class GhostEventAdversary final : public ByzantineProcess {
   public:
    using ByzantineProcess::ByzantineProcess;
    void on_round(RoundInfo round, std::span<const Message>,
                  std::vector<Outgoing>& out) override {
      // Never sends `present`; guesses the protocol round (local-2 matches
      // the founders' counter exactly).
      if (round.local < 3) return;
      Message ev;
      ev.kind = MsgKind::kEvent;
      ev.value = Value::real(13.0);
      ev.round_tag = static_cast<std::uint32_t>(round.local - 2);
      broadcast(out, ev);
    }
  };
  auto net = make_founders({11, 22, 33, 44});
  net.sim.add_process(std::make_unique<GhostEventAdversary>(99));
  net.sim.run_rounds(40);
  for (NodeId id : net.correct_ids) {
    EXPECT_TRUE(net.node(id)->chain().empty()) << id;
  }
}

TEST(TotalOrder, QueuedEventsDrainOnePerRound) {
  // "v witnesses an event m in round r" — one per round; a burst submitted
  // at once must appear in consecutive instances, in submission order.
  auto net = make_founders({11, 22, 33, 44});
  net.sim.run_rounds(3);
  net.node(11)->submit_event(1.0);
  net.node(11)->submit_event(2.0);
  net.node(11)->submit_event(3.0);
  net.sim.run_rounds(45);
  const auto& chain = net.node(22)->chain();
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_DOUBLE_EQ(chain[0].event, 1.0);
  EXPECT_DOUBLE_EQ(chain[1].event, 2.0);
  EXPECT_DOUBLE_EQ(chain[2].event, 3.0);
  EXPECT_EQ(chain[0].instance + 1, chain[1].instance);
  EXPECT_EQ(chain[1].instance + 1, chain[2].instance);
}

TEST(TotalOrder, FinalizedInstancesAreGarbageCollected) {
  // Long quiescent run: the number of retained machines must stay bounded
  // by the finality lag (≈ 5|S|/2 + 2 live instances), not grow with the
  // run length — while the chain keeps every finalized event.
  auto net = make_founders({11, 22, 33, 44, 55});
  net.sim.run_rounds(3);
  for (int i = 0; i < 30; ++i) {
    net.node(11)->submit_event(static_cast<double>(i));
    net.sim.run_rounds(1);
  }
  net.sim.run_rounds(40);
  const auto* node = net.node(11);
  EXPECT_GE(node->chain().size(), 30u);
  const std::size_t lag_bound = 5 * 5 / 2 + 2 + 4;  // finality lag + slack
  EXPECT_LE(node->retained_machines(), lag_bound)
      << "machines past finality must be freed";
  net.expect_prefix_consistent("gc");
}

TEST(TotalOrder, ByzantineAcksCannotDesyncJoiner) {
  // The joiner adopts the MAJORITY ack round; a Byzantine member answering
  // with wrong round numbers is outvoted as long as n > 3f (here one liar
  // among five correct ack senders).
  class BadAckAdversary final : public ByzantineProcess {
   public:
    using ByzantineProcess::ByzantineProcess;
    void on_round(RoundInfo round, std::span<const Message> inbox,
                  std::vector<Outgoing>& out) override {
      if (round.local == 1) {
        broadcast(out, Message{.kind = MsgKind::kPresent});  // join S legitimately
        return;
      }
      for (const Message& m : inbox) {
        if (m.kind == MsgKind::kPresent) {
          Message ack;
          ack.kind = MsgKind::kAck;
          ack.round_tag = 999;  // wildly wrong round number
          unicast(out, m.sender, ack);
        }
      }
    }
  };
  auto net = make_founders({11, 22, 33, 44, 55});
  net.sim.add_process(std::make_unique<BadAckAdversary>(99));
  net.sim.run_rounds(8);
  auto joiner = std::make_unique<TotalOrderProcess>(88, /*founder=*/false);
  auto* pjoiner = joiner.get();
  net.sim.add_process(std::move(joiner));
  net.sim.run_rounds(6);
  EXPECT_EQ(pjoiner->protocol_round(), net.node(11)->protocol_round())
      << "majority ack must beat the lying ack";
  // And the joiner still participates correctly afterwards.
  pjoiner->submit_event(4.0);
  net.sim.run_rounds(45);
  bool found = false;
  for (const auto& entry : net.node(22)->chain()) {
    if (entry.witness == 88u && entry.event == 4.0) found = true;
  }
  EXPECT_TRUE(found);
  net.expect_prefix_consistent("bad-ack");
}

TEST(TotalOrder, ChurnJoinAndLeaveKeepsChainConsistent) {
  auto net = make_founders({11, 22, 33, 44, 55});
  net.sim.run_rounds(4);
  for (int i = 0; i < 5; ++i) net.node(33)->submit_event(10.0 + i), net.sim.run_rounds(1);
  // One joins, one leaves, events keep flowing.
  net.sim.add_process(std::make_unique<TotalOrderProcess>(66, /*founder=*/false));
  net.sim.run_rounds(6);
  net.node(55)->request_leave();
  for (int i = 0; i < 5; ++i) net.node(22)->submit_event(20.0 + i), net.sim.run_rounds(1);
  net.sim.run_rounds(60);
  net.correct_ids = {11, 22, 33, 44};
  net.expect_prefix_consistent("churn");
  EXPECT_GE(net.node(11)->chain().size(), 10u);
}

}  // namespace
}  // namespace idonly
