// Golden round-count regressions: canonical configurations must keep their
// exact round/phase/message characteristics. Any drift means a protocol
// schedule changed — deliberate changes must update these numbers
// consciously, with the paper's bounds re-checked.
#include <gtest/gtest.h>

#include "harness/runner.hpp"

namespace idonly {
namespace {

ScenarioConfig config_for(std::size_t n_correct, std::size_t n_byz, AdversaryKind adversary,
                          std::uint64_t seed) {
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = n_byz;
  config.adversary = adversary;
  config.seed = seed;
  return config;
}

TEST(GoldenRounds, ReliableBroadcastAcceptsInRoundThree) {
  // Alg. 1's schedule: payload r1 → echo r2 → quorum r3. Forever.
  const auto run = run_reliable_broadcast(config_for(7, 2, AdversaryKind::kSilent, 1), 1.0);
  EXPECT_EQ(run.first_accept_round, 3);
  EXPECT_EQ(run.last_accept_round, 3);
}

TEST(GoldenRounds, ConsensusUnanimousIsSevenRounds) {
  // 2 init + one 5-round phase.
  const auto run = run_consensus(config_for(7, 2, AdversaryKind::kSilent, 1), {4.0});
  EXPECT_EQ(run.rounds, 7);
  EXPECT_EQ(run.max_decision_phase, 1);
}

TEST(GoldenRounds, ConsensusMixedSilentIsTwoPhases) {
  // Mixed inputs, silent adversary: the first coordinator round resolves it
  // (all-correct candidate set), termination at the end of phase 2.
  const auto run = run_consensus(config_for(7, 2, AdversaryKind::kSilent, 1), {0.0, 1.0});
  EXPECT_EQ(run.rounds, 12);
  EXPECT_EQ(run.max_decision_phase, 2);
}

TEST(GoldenRounds, RotorNoFaultsTerminatesAtNPlusThree) {
  // All n ids are candidates before the first selection; the wrap-around
  // repeat lands at rotor round n, i.e. local round n + 3.
  for (std::size_t n : {4u, 8u, 16u}) {
    const auto run = run_rotor(config_for(n, 0, AdversaryKind::kNone, 1));
    EXPECT_EQ(run.max_termination_round, static_cast<Round>(n) + 3) << n;
    EXPECT_EQ(run.first_good_round, 0) << n;
  }
}

TEST(GoldenRounds, ApproxAgreementMessageCount) {
  // One iteration = every node broadcasts once to everyone (self-inclusive):
  // exactly n·n messages from the correct side plus the adversary's unicasts.
  const auto run = run_approx_agreement(config_for(7, 0, AdversaryKind::kNone, 1),
                                        {0, 1, 2, 3, 4, 5, 6}, /*iterations=*/1);
  EXPECT_EQ(run.messages, 7u * 7u);
  EXPECT_EQ(run.rounds, 2);
}

TEST(GoldenRounds, ParallelConsensusUniversalPairIsSevenRounds) {
  const auto run = run_parallel_consensus(
      config_for(7, 2, AdversaryKind::kSilent, 1),
      std::vector<std::vector<InputPair>>(7, {{.id = 1, .value = Value::real(2.0)}}));
  EXPECT_EQ(run.rounds, 7);
}

TEST(GoldenRounds, MessageCountsAreSeedStable) {
  // Fixed seed ⇒ bit-identical traffic. Guards engine determinism.
  const auto a = run_consensus(config_for(10, 3, AdversaryKind::kNoise, 77), {0.0, 1.0});
  const auto b = run_consensus(config_for(10, 3, AdversaryKind::kNoise, 77), {0.0, 1.0});
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.rounds, b.rounds);
}

}  // namespace
}  // namespace idonly
