// Large-configuration smoke sweeps: the theorems are size-independent, so
// the properties must hold unchanged at the biggest sizes the suite can
// afford (n up to 65, f up to 21 — well past anything the small sweeps
// touch). One seed per configuration; the heavy randomization lives in the
// smaller, faster sweeps.
#include <gtest/gtest.h>

#include "common/thresholds.hpp"
#include "harness/runner.hpp"

namespace idonly {
namespace {

ScenarioConfig config_for(std::size_t n_correct, std::size_t n_byz, AdversaryKind adversary) {
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = n_byz;
  config.adversary = adversary;
  config.seed = 424242;
  return config;
}

class LargeScale : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LargeScale, ConsensusAtMaxFaults) {
  const std::size_t n = GetParam();
  const std::size_t f = max_tolerated_faults(n);
  const auto run = run_consensus(config_for(n - f, f, AdversaryKind::kTwoFaced), {0.0, 1.0});
  EXPECT_TRUE(run.all_decided);
  EXPECT_TRUE(run.agreement);
  EXPECT_TRUE(run.validity);
}

TEST_P(LargeScale, ReliableBroadcastAtMaxFaults) {
  const std::size_t n = GetParam();
  const std::size_t f = max_tolerated_faults(n);
  const auto run =
      run_reliable_broadcast(config_for(n - f, f, AdversaryKind::kForgedEcho), 6.5, false, 8);
  EXPECT_EQ(run.accepted_count, n - f);
  EXPECT_TRUE(run.agreement);
  EXPECT_EQ(run.first_accept_round, 3);
}

TEST_P(LargeScale, ApproxAgreementAtMaxFaults) {
  const std::size_t n = GetParam();
  const std::size_t f = max_tolerated_faults(n);
  std::vector<double> inputs;
  for (std::size_t i = 0; i < n - f; ++i) inputs.push_back(static_cast<double>(i));
  const auto run =
      run_approx_agreement(config_for(n - f, f, AdversaryKind::kExtreme), inputs, 4);
  EXPECT_TRUE(run.within_input_range);
  EXPECT_LE(run.output_range, run.input_range / 16.0 + 1e-9);
}

TEST_P(LargeScale, RotorAtMaxFaults) {
  const std::size_t n = GetParam();
  const std::size_t f = max_tolerated_faults(n);
  const auto run = run_rotor(config_for(n - f, f, AdversaryKind::kRotorStuffer));
  EXPECT_TRUE(run.all_terminated);
  EXPECT_TRUE(run.good_round_witnessed);
  EXPECT_LE(run.max_termination_round, 2 * static_cast<Round>(n) + 6);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LargeScale, ::testing::Values<std::size_t>(33, 49, 65));

}  // namespace
}  // namespace idonly
