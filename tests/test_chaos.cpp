// Deterministic chaos engine: plan validation, pure-function verdicts, and
// the cross-engine reproducibility contract — ONE schedule replays the SAME
// fault trace on the sync simulator, the async simulator, and the runtime
// transport stack, because every verdict is a pure function of
// (seed, LinkEvent) and the engines only differ in how they derive the key.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <variant>
#include <vector>

#include "common/chaos.hpp"
#include "common/invariants.hpp"
#include "core/consensus.hpp"
#include "harness/script.hpp"
#include "net/async_simulator.hpp"
#include "net/chaos_hooks.hpp"
#include "net/codec.hpp"
#include "net/sync_simulator.hpp"
#include "runtime/chaos_transport.hpp"
#include "runtime/inmemory_transport.hpp"

namespace idonly {
namespace {

ChaosPhase phase_window(Round first, Round last) {
  ChaosPhase phase;
  phase.first_round = first;
  phase.last_round = last;
  return phase;
}

// ------------------------------------------------------------- validation --

TEST(ChaosPlan_, RejectsOutOfRangeProbabilities) {
  for (double bad : {-0.1, 1.5}) {
    ChaosPhase phase = phase_window(1, 5);
    phase.drop = bad;
    EXPECT_THROW(ChaosSchedule(ChaosPlan{{phase}}, 1), std::invalid_argument);
    phase = phase_window(1, 5);
    phase.duplicate = bad;
    EXPECT_THROW(ChaosSchedule(ChaosPlan{{phase}}, 1), std::invalid_argument);
    phase = phase_window(1, 5);
    phase.corrupt = bad;
    EXPECT_THROW(ChaosSchedule(ChaosPlan{{phase}}, 1), std::invalid_argument);
    phase = phase_window(1, 5);
    phase.delay.probability = bad;
    EXPECT_THROW(ChaosSchedule(ChaosPlan{{phase}}, 1), std::invalid_argument);
    phase = phase_window(1, 5);
    phase.link_faults.push_back(LinkFaultSpec{1, 2, bad, 0.0, 0.0});
    EXPECT_THROW(ChaosSchedule(ChaosPlan{{phase}}, 1), std::invalid_argument);
  }
}

TEST(ChaosPlan_, RejectsEmptyWindowsAndBadDelaySpan) {
  EXPECT_THROW(ChaosSchedule(ChaosPlan{{phase_window(4, 2)}}, 1), std::invalid_argument);
  EXPECT_THROW(ChaosSchedule(ChaosPlan{{phase_window(0, 2)}}, 1), std::invalid_argument);

  ChaosPhase phase = phase_window(1, 5);
  phase.delay = DelaySpec{0.5, 0};
  EXPECT_THROW(ChaosSchedule(ChaosPlan{{phase}}, 1), std::invalid_argument);

  phase = phase_window(1, 5);
  phase.crashes.push_back(CrashWindow{7, 4, 2});
  EXPECT_THROW(ChaosSchedule(ChaosPlan{{phase}}, 1), std::invalid_argument);

  // A fully loaded valid plan constructs fine.
  phase = phase_window(2, 9);
  phase.drop = 1.0;
  phase.delay = DelaySpec{0.3, 4};
  phase.partitions.push_back(ChaosPartition{{1}, {2}});
  phase.crashes.push_back(CrashWindow{7, 2, 4});
  EXPECT_NO_THROW(ChaosSchedule(ChaosPlan{{phase}}, 1));
}

// ------------------------------------------------------------ pure coins --

TEST(ChaosCoin, DeterministicInRangeAndSaltSeparated) {
  const LinkEvent event{5, 11, 22, 1};
  const double first = ChaosSchedule::coin(42, event, 0);
  EXPECT_EQ(first, ChaosSchedule::coin(42, event, 0)) << "same key, same coin";
  EXPECT_GE(first, 0.0);
  EXPECT_LT(first, 1.0);
  // Independent streams: changing any key component lands elsewhere.
  EXPECT_NE(ChaosSchedule::word(42, event, 0), ChaosSchedule::word(42, event, 1));
  EXPECT_NE(ChaosSchedule::word(42, event, 0), ChaosSchedule::word(43, event, 0));
  EXPECT_NE(ChaosSchedule::word(42, event, 0),
            ChaosSchedule::word(42, LinkEvent{5, 11, 22, 2}, 0));
}

TEST(ChaosSchedule_, VerdictsArePureAcrossInstances) {
  ChaosPhase phase = phase_window(1, 30);
  phase.drop = 0.2;
  phase.duplicate = 0.2;
  phase.corrupt = 0.1;
  phase.delay = DelaySpec{0.2, 3};
  ChaosSchedule a(ChaosPlan{{phase}}, 7);
  ChaosSchedule b(ChaosPlan{{phase}}, 7);
  for (Round r = 1; r <= 30; ++r) {
    for (NodeId from : {1u, 2u, 3u}) {
      for (NodeId to : {1u, 2u, 3u}) {
        for (std::uint64_t seq = 0; seq < 2; ++seq) {
          const auto va = a.decide(LinkEvent{r, from, to, seq});
          const auto vb = b.decide(LinkEvent{r, from, to, seq});
          EXPECT_EQ(va.drop, vb.drop);
          EXPECT_EQ(va.duplicate, vb.duplicate);
          EXPECT_EQ(va.corrupt, vb.corrupt);
          EXPECT_EQ(va.delay_rounds, vb.delay_rounds);
        }
      }
    }
  }
  EXPECT_EQ(a.canonical_trace(), b.canonical_trace());
  EXPECT_FALSE(a.canonical_trace_string().empty());

  ChaosSchedule other_seed(ChaosPlan{{phase}}, 8);
  for (Round r = 1; r <= 30; ++r) {
    for (NodeId from : {1u, 2u, 3u}) {
      for (NodeId to : {1u, 2u, 3u}) (void)other_seed.decide(LinkEvent{r, from, to, 0});
    }
  }
  EXPECT_NE(a.canonical_trace_string(), other_seed.canonical_trace_string())
      << "a different seed must produce a different fault pattern";
}

TEST(ChaosSchedule_, SelfLinksAreNeverFaulted) {
  ChaosPhase phase = phase_window(1, 10);
  phase.drop = 1.0;
  ChaosSchedule chaos(ChaosPlan{{phase}}, 3);
  for (Round r = 1; r <= 10; ++r) {
    const auto verdict = chaos.decide(LinkEvent{r, 7, 7, 0});
    EXPECT_FALSE(verdict.drop) << "loopback is local memory, not wire";
  }
  EXPECT_TRUE(chaos.trace().empty());
}

TEST(ChaosSchedule_, PhaseWindowsApplyAndLaterPhasesWinOverlaps) {
  ChaosPhase dropper = phase_window(2, 3);
  dropper.drop = 1.0;
  ChaosPhase duper = phase_window(3, 4);
  duper.duplicate = 1.0;
  ChaosSchedule chaos(ChaosPlan{{dropper, duper}}, 5);
  EXPECT_EQ(chaos.last_faulty_round(), 4);
  EXPECT_FALSE(chaos.phase_for(1).has_value());
  EXPECT_EQ(chaos.phase_for(2), std::optional<std::size_t>(0));
  EXPECT_EQ(chaos.phase_for(3), std::optional<std::size_t>(1)) << "later phase wins";
  EXPECT_EQ(chaos.phase_for(4), std::optional<std::size_t>(1));

  EXPECT_FALSE(chaos.decide(LinkEvent{1, 1, 2, 0}).drop);
  EXPECT_TRUE(chaos.decide(LinkEvent{2, 1, 2, 0}).drop);
  const auto overlap = chaos.decide(LinkEvent{3, 1, 2, 0});
  EXPECT_FALSE(overlap.drop) << "round 3 runs phase 1, which never drops";
  EXPECT_TRUE(overlap.duplicate);
  EXPECT_TRUE(chaos.decide(LinkEvent{4, 1, 2, 0}).duplicate) << "phase 1 alone past round 3";
  EXPECT_FALSE(chaos.decide(LinkEvent{5, 1, 2, 0}).duplicate) << "quiet after last phase";

  const auto counters = chaos.counters();
  ASSERT_EQ(counters.per_phase.size(), 2u);
  EXPECT_EQ(counters.per_phase[0].drops, 1u);
  EXPECT_EQ(counters.per_phase[1].duplicates, 2u);
  EXPECT_EQ(counters.total_faults().total(), 3u);
}

TEST(ChaosSchedule_, PartitionCutsBothDirectionsAndSparesTheRest) {
  ChaosPhase phase = phase_window(1, 5);
  phase.partitions.push_back(ChaosPartition{{1, 2}, {3}});
  ChaosSchedule chaos(ChaosPlan{{phase}}, 9);
  EXPECT_TRUE(chaos.decide(LinkEvent{1, 1, 3, 0}).drop);
  EXPECT_TRUE(chaos.decide(LinkEvent{1, 3, 1, 0}).drop) << "bidirectional";
  EXPECT_TRUE(chaos.decide(LinkEvent{1, 2, 3, 0}).drop);
  EXPECT_FALSE(chaos.decide(LinkEvent{1, 1, 2, 0}).drop) << "intra-side traffic flows";
  EXPECT_FALSE(chaos.decide(LinkEvent{1, 4, 3, 0}).drop) << "bystander unaffected";
  EXPECT_FALSE(chaos.decide(LinkEvent{6, 1, 3, 0}).drop) << "healed after the phase";
  EXPECT_EQ(chaos.counters().per_phase[0].partition_drops, 3u);
}

TEST(ChaosSchedule_, CrashWindowSilencesEndpointThenRejoins) {
  ChaosPhase phase = phase_window(1, 10);
  phase.crashes.push_back(CrashWindow{5, 2, 3});
  ChaosSchedule chaos(ChaosPlan{{phase}}, 2);
  EXPECT_FALSE(chaos.decide(LinkEvent{1, 5, 1, 0}).drop) << "before the crash";
  EXPECT_TRUE(chaos.decide(LinkEvent{2, 5, 1, 0}).drop) << "crashed node sends nothing";
  EXPECT_TRUE(chaos.decide(LinkEvent{3, 1, 5, 0}).drop) << "crashed node receives nothing";
  EXPECT_FALSE(chaos.decide(LinkEvent{4, 5, 1, 0}).drop) << "rejoined";
  EXPECT_FALSE(chaos.decide(LinkEvent{2, 1, 2, 0}).drop) << "others keep talking";
  EXPECT_EQ(chaos.counters().per_phase[0].crash_drops, 2u);
}

TEST(ChaosSchedule_, LinkFaultsAreAsymmetric) {
  ChaosPhase phase = phase_window(1, 20);
  phase.link_faults.push_back(LinkFaultSpec{1, 2, /*drop=*/1.0, 0.0, 0.0});
  ChaosSchedule chaos(ChaosPlan{{phase}}, 4);
  for (Round r = 1; r <= 20; ++r) {
    EXPECT_TRUE(chaos.decide(LinkEvent{r, 1, 2, 0}).drop) << "faulted direction";
    EXPECT_FALSE(chaos.decide(LinkEvent{r, 2, 1, 0}).drop) << "reverse direction clean";
  }
}

// ------------------------------------------- cross-engine reproducibility --

// A process that broadcasts one message per round and ignores its inbox:
// with traffic independent of delivery, all three engines generate the same
// logical link events and the traces must match byte for byte.
class ChatterProcess final : public Process {
 public:
  using Process::Process;
  void on_round(RoundInfo /*round*/, std::span<const Message> /*inbox*/,
                std::vector<Outgoing>& out) override {
    broadcast(out, Message{.kind = MsgKind::kPresent});
  }
};

class AsyncChatter final : public AsyncProcess {
 public:
  AsyncChatter(NodeId id, Time period, int sends)
      : AsyncProcess(id), period_(period), remaining_(sends) {}
  void on_start(Time now, std::vector<AsyncOutgoing>& out) override { send(now, out); }
  void on_message(Time /*now*/, const Message& /*msg*/,
                  std::vector<AsyncOutgoing>& /*out*/) override {}
  void on_timer(Time now, std::vector<AsyncOutgoing>& out) override { send(now, out); }
  [[nodiscard]] std::optional<Time> timer_deadline() const override {
    return remaining_ > 0 ? std::optional<Time>(next_) : std::nullopt;
  }
  [[nodiscard]] bool decided() const override { return false; }
  [[nodiscard]] Value decision() const override { return Value::real(0.0); }

 private:
  void send(Time now, std::vector<AsyncOutgoing>& out) {
    out.push_back(AsyncOutgoing{std::nullopt, Message{.kind = MsgKind::kPresent}});
    remaining_ -= 1;
    next_ = now + period_;
  }
  Time period_;
  int remaining_;
  Time next_ = 0;
};

Frame framed(Round round, NodeId sender) {
  Frame frame;
  put_varint(static_cast<std::uint64_t>(round), frame);
  encode(Message{.sender = sender, .kind = MsgKind::kPresent}, frame);
  return frame;
}

TEST(ChaosCrossEngine, OneSeedOneTraceOnAllThreeEngines) {
  ChaosPhase phase = phase_window(2, 4);
  phase.drop = 0.25;
  phase.duplicate = 0.2;
  phase.corrupt = 0.15;
  phase.delay = DelaySpec{0.25, 2};
  const ChaosPlan plan{{phase}};
  const std::uint64_t seed = 99;
  const std::vector<NodeId> ids{10, 20, 30};
  constexpr Round kRounds = 6;

  // Sync engine: per-receiver routing through SyncSimulator::set_chaos.
  auto run_sync = [&] {
    auto chaos = std::make_shared<ChaosSchedule>(plan, seed);
    SyncSimulator sim;
    sim.set_chaos(chaos);
    for (NodeId id : ids) sim.add_process(std::make_unique<ChatterProcess>(id));
    sim.run_rounds(kRounds);
    return chaos->canonical_trace_string();
  };
  const std::string sync_trace = run_sync();
  EXPECT_FALSE(sync_trace.empty()) << "the plan must actually fire at these probabilities";
  EXPECT_EQ(sync_trace, run_sync()) << "repeated runs of one engine are byte-identical";

  // Async engine: time maps to rounds through the chaos delay model. One
  // send per node per round_duration=10 window ⇒ identical link events.
  auto async_chaos = std::make_shared<ChaosSchedule>(plan, seed);
  AsyncSimulator async_sim(make_chaos_delay_model(async_chaos, 10.0));
  for (NodeId id : ids) {
    async_sim.add_process(std::make_unique<AsyncChatter>(id, 10.0, kRounds));
  }
  async_sim.run(1000.0);
  EXPECT_EQ(sync_trace, async_chaos->canonical_trace_string());

  // Runtime engine: receive-side ChaosTransport recovers the link key from
  // the round header + codec sender — one broadcast per node per round.
  auto runtime_chaos = std::make_shared<ChaosSchedule>(plan, seed);
  InMemoryHub hub;
  std::vector<std::unique_ptr<ChaosTransport>> transports;
  for (NodeId id : ids) {
    transports.push_back(
        std::make_unique<ChaosTransport>(hub.make_endpoint(), runtime_chaos, id));
  }
  for (Round r = 1; r <= kRounds; ++r) {
    for (std::size_t i = 0; i < ids.size(); ++i) transports[i]->broadcast(framed(r, ids[i]));
    for (auto& transport : transports) (void)transport->drain_views();
  }
  EXPECT_EQ(sync_trace, runtime_chaos->canonical_trace_string());
}

// --------------------------------------------------- runtime verdict unit --

TEST(ChaosTransportUnit, AppliesDropDuplicateAndSparesSelf) {
  ChaosPhase phase = phase_window(1, 10);
  phase.drop = 1.0;
  auto chaos = std::make_shared<ChaosSchedule>(ChaosPlan{{phase}}, 1);
  InMemoryHub hub;
  ChaosTransport sender(hub.make_endpoint(), chaos, 1);
  ChaosTransport receiver(hub.make_endpoint(), chaos, 2);
  sender.broadcast(framed(1, 1));
  EXPECT_TRUE(receiver.drain_views().empty()) << "cross-link frame dropped";
  EXPECT_EQ(sender.drain_views().size(), 1u) << "self loopback exempt from chaos";

  ChaosPhase dup = phase_window(1, 10);
  dup.duplicate = 1.0;
  auto dup_chaos = std::make_shared<ChaosSchedule>(ChaosPlan{{dup}}, 1);
  InMemoryHub hub2;
  ChaosTransport dup_sender(hub2.make_endpoint(), dup_chaos, 1);
  ChaosTransport dup_receiver(hub2.make_endpoint(), dup_chaos, 2);
  dup_sender.broadcast(framed(1, 1));
  const auto views = dup_receiver.drain_views();
  ASSERT_EQ(views.size(), 2u);
  EXPECT_TRUE(std::equal(views[0].bytes.begin(), views[0].bytes.end(), views[1].bytes.begin(),
                         views[1].bytes.end()));
}

TEST(ChaosTransportUnit, CorruptionFlipsExactlyOnePayloadByte) {
  ChaosPhase phase = phase_window(1, 10);
  phase.corrupt = 1.0;
  auto chaos = std::make_shared<ChaosSchedule>(ChaosPlan{{phase}}, 6);
  InMemoryHub hub;
  ChaosTransport sender(hub.make_endpoint(), chaos, 1);
  ChaosTransport receiver(hub.make_endpoint(), chaos, 2);
  const Frame original = framed(3, 1);
  sender.broadcast(original);
  const auto views = receiver.drain_views();
  ASSERT_EQ(views.size(), 1u);
  ASSERT_EQ(views[0].bytes.size(), original.size());
  std::size_t diffs = 0;
  std::size_t diff_pos = 0;
  for (std::size_t i = 0; i < original.size(); ++i) {
    if (views[0].bytes[i] != original[i]) {
      diffs += 1;
      diff_pos = i;
    }
  }
  EXPECT_EQ(diffs, 1u);
  EXPECT_GE(diff_pos, 1u) << "the round header must stay intact (it keys the schedule)";
}

TEST(ChaosTransportUnit, DelayHoldsFrameForItsVerdictThenReleasesIntact) {
  ChaosPhase phase = phase_window(1, 10);
  phase.delay = DelaySpec{1.0, 1};  // always exactly one extra drain
  auto chaos = std::make_shared<ChaosSchedule>(ChaosPlan{{phase}}, 3);
  InMemoryHub hub;
  ChaosTransport sender(hub.make_endpoint(), chaos, 1);
  ChaosTransport receiver(hub.make_endpoint(), chaos, 2);
  const Frame original = framed(1, 1);
  sender.broadcast(original);
  EXPECT_TRUE(receiver.drain_views().empty());
  EXPECT_EQ(receiver.held_count(), 1u);
  const auto views = receiver.drain_views();
  ASSERT_EQ(views.size(), 1u);
  EXPECT_TRUE(std::equal(views[0].bytes.begin(), views[0].bytes.end(), original.begin(),
                         original.end()));
  EXPECT_EQ(receiver.held_count(), 0u);
}

// ----------------------------------------------- sync consensus + monitor --

TEST(ChaosConsensus, SurvivesBurstLossWithInvariantMonitorClean) {
  const std::vector<NodeId> ids{1, 2, 3, 4, 5, 6, 7, 8, 9};
  ChaosPhase phase = phase_window(2, 6);
  phase.drop = 0.1;
  auto chaos = std::make_shared<ChaosSchedule>(ChaosPlan{{phase}}, 5);
  SyncSimulator sim;
  sim.set_chaos(chaos);
  std::vector<Value> inputs;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    inputs.push_back(Value::real(static_cast<double>(i % 2)));
    sim.add_process(std::make_unique<ConsensusProcess>(ids[i], inputs.back()));
  }
  InvariantMonitor monitor(inputs);
  for (NodeId id : ids) sim.get<ConsensusProcess>(id)->set_observer(&monitor);

  ASSERT_TRUE(sim.run_until_all_correct_done(300));
  EXPECT_TRUE(monitor.ok()) << (monitor.violations().empty() ? ""
                                                             : monitor.violations().front());
  EXPECT_EQ(monitor.decided_count(), ids.size());
  EXPECT_GT(chaos->counters().total_faults().total(), 0u) << "the burst must have actually fired";

  std::optional<Value> first;
  for (NodeId id : ids) {
    const auto output = sim.get<ConsensusProcess>(id)->output();
    ASSERT_TRUE(output.has_value());
    if (!first.has_value()) first = *output;
    EXPECT_EQ(*output, *first);
  }
}

// ----------------------------------------------------------- script DSL ----

TEST(ChaosScript, ParsesFullChaosLine) {
  const auto parsed = parse_script(
      "protocol consensus\n"
      "nodes 6\n"
      "chaos 2-4 drop=0.5 dup=0.1 corrupt=0.05 delay=0.2:3 partition=0-1 crash=2:3-4\n"
      "expect agreement\n");
  ASSERT_TRUE(std::holds_alternative<ScenarioScript>(parsed));
  const auto& script = std::get<ScenarioScript>(parsed);
  ASSERT_EQ(script.chaos_phases.size(), 1u);
  const ChaosPhaseSpec& spec = script.chaos_phases[0];
  EXPECT_EQ(spec.first_round, 2);
  EXPECT_EQ(spec.last_round, 4);
  EXPECT_DOUBLE_EQ(spec.drop, 0.5);
  EXPECT_DOUBLE_EQ(spec.duplicate, 0.1);
  EXPECT_DOUBLE_EQ(spec.corrupt, 0.05);
  EXPECT_DOUBLE_EQ(spec.delay_probability, 0.2);
  EXPECT_EQ(spec.delay_max_extra, 3);
  ASSERT_TRUE(spec.partition.has_value());
  EXPECT_EQ(spec.partition->first, 0u);
  EXPECT_EQ(spec.partition->second, 1u);
  ASSERT_EQ(spec.crashes.size(), 1u);
  EXPECT_EQ(spec.crashes[0].index, 2u);
  EXPECT_EQ(spec.crashes[0].first, 3);
  EXPECT_EQ(spec.crashes[0].last, 4);
}

TEST(ChaosScript, RejectsMalformedChaosLines) {
  const char* bad[] = {
      "protocol consensus\nchaos 4-2 drop=0.1\n",      // inverted window
      "protocol consensus\nchaos 1-2 drop=1.5\n",      // probability out of range
      "protocol consensus\nchaos 1-2 bogus=0.1\n",     // unknown fault key
      "protocol consensus\nchaos 1-2\n",               // no fault spec at all
      "protocol rb\nchaos 1-2 drop=0.1\n",             // chaos-unsupported protocol
  };
  for (const char* text : bad) {
    EXPECT_TRUE(std::holds_alternative<ParseError>(parse_script(text))) << text;
  }
}

TEST(ChaosScript, MaterializesIndicesAgainstSortedIds) {
  ChaosPhaseSpec spec;
  spec.first_round = 2;
  spec.last_round = 4;
  spec.drop = 0.25;
  spec.partition = {1, 2};
  spec.crashes.push_back(ChaosPhaseSpec::CrashSpec{3, 2, 3});
  const std::vector<NodeId> ids{5, 6, 7, 8};
  const ChaosPlan plan = materialize_chaos_plan({spec}, ids);
  ASSERT_EQ(plan.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.phases[0].drop, 0.25);
  ASSERT_EQ(plan.phases[0].partitions.size(), 1u);
  EXPECT_EQ(plan.phases[0].partitions[0].side_a, (std::vector<NodeId>{6, 7}));
  EXPECT_EQ(plan.phases[0].partitions[0].side_b, (std::vector<NodeId>{5, 8}));
  ASSERT_EQ(plan.phases[0].crashes.size(), 1u);
  EXPECT_EQ(plan.phases[0].crashes[0].node, 8u);

  ChaosPhaseSpec out_of_range;
  out_of_range.partition = {0, 9};
  EXPECT_THROW(materialize_chaos_plan({out_of_range}, ids), std::invalid_argument);
}

}  // namespace
}  // namespace idonly
