// Adversary strategy unit tests: each strategy must behave as documented —
// the protocols' property tests then show none of them break n > 3f runs.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/strategies.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

class Recorder final : public Process {
 public:
  using Process::Process;
  void on_round(RoundInfo round, std::span<const Message> inbox,
                std::vector<Outgoing>&) override {
    for (const Message& m : inbox) received.emplace_back(round.global, m);
  }
  std::vector<std::pair<Round, Message>> received;
};

class Chatter final : public Process {
 public:
  Chatter(NodeId id, double value) : Process(id), value_(value) {}
  void on_round(RoundInfo, std::span<const Message>, std::vector<Outgoing>& out) override {
    Message m;
    m.kind = MsgKind::kInput;
    m.value = Value::real(value_);
    broadcast(out, m);
  }

 private:
  double value_;
};

TEST(Adversary, SilentNeverSends) {
  SyncSimulator sim;
  auto rec = std::make_unique<Recorder>(1);
  auto* prec = rec.get();
  sim.add_process(std::move(rec));
  sim.add_process(std::make_unique<SilentAdversary>(2));
  sim.run_rounds(5);
  EXPECT_TRUE(prec->received.empty());
}

TEST(Adversary, ByzantineFlagSet) {
  SilentAdversary a(1);
  EXPECT_TRUE(a.byzantine());
  Recorder r(2);
  EXPECT_FALSE(r.byzantine());
}

TEST(Adversary, CrashStopsAtConfiguredRound) {
  SyncSimulator sim;
  auto rec = std::make_unique<Recorder>(1);
  auto* prec = rec.get();
  sim.add_process(std::move(rec));
  sim.add_process(
      std::make_unique<CrashAdversary>(std::make_unique<Chatter>(2, 5.0), /*crash_round=*/3));
  sim.run_rounds(6);
  // Sends in rounds 1,2 → delivered rounds 2,3; nothing after.
  std::size_t before = 0;
  std::size_t after = 0;
  for (const auto& [round, msg] : prec->received) (round <= 3 ? before : after) += 1;
  EXPECT_EQ(before, 2u);
  EXPECT_EQ(after, 0u);
}

TEST(Adversary, TwoFacedShowsDifferentFacesToDifferentSides) {
  SyncSimulator sim;
  auto rec_a = std::make_unique<Recorder>(1);
  auto rec_b = std::make_unique<Recorder>(2);
  auto* pa = rec_a.get();
  auto* pb = rec_b.get();
  sim.add_process(std::move(rec_a));
  sim.add_process(std::move(rec_b));
  AdversaryContext context{{1, 2, 3}, {1, 2}};
  auto side_a = [](NodeId id) { return id == 1; };
  sim.add_process(std::make_unique<TwoFacedAdversary>(std::make_unique<Chatter>(3, 0.0),
                                                      std::make_unique<Chatter>(3, 1.0), side_a,
                                                      context));
  sim.run_rounds(3);
  ASSERT_FALSE(pa->received.empty());
  ASSERT_FALSE(pb->received.empty());
  for (const auto& [round, msg] : pa->received) {
    EXPECT_EQ(msg.value, Value::real(0.0));
    EXPECT_EQ(msg.sender, 3u) << "both faces impersonate the same id";
  }
  for (const auto& [round, msg] : pb->received) EXPECT_EQ(msg.value, Value::real(1.0));
}

TEST(Adversary, ForgedEchoTargetsSource) {
  SyncSimulator sim;
  auto rec = std::make_unique<Recorder>(1);
  auto* prec = rec.get();
  sim.add_process(std::move(rec));
  sim.add_process(std::make_unique<ForgedEchoAdversary>(2, /*forged_source=*/50,
                                                        Value::real(666.0)));
  sim.run_rounds(3);
  bool saw_echo = false;
  for (const auto& [round, msg] : prec->received) {
    if (msg.kind == MsgKind::kEcho) {
      saw_echo = true;
      EXPECT_EQ(msg.subject, 50u);
      EXPECT_EQ(msg.value, Value::real(666.0));
      EXPECT_EQ(msg.sender, 2u) << "cannot forge the direct sender";
    }
  }
  EXPECT_TRUE(saw_echo);
}

TEST(Adversary, RotorStufferDripsOneFakePerRound) {
  SyncSimulator sim;
  auto rec = std::make_unique<Recorder>(1);
  auto* prec = rec.get();
  sim.add_process(std::move(rec));
  sim.add_process(std::make_unique<RotorStufferAdversary>(2, std::vector<NodeId>{900, 901}));
  sim.run_rounds(5);
  std::vector<NodeId> fakes;
  for (const auto& [round, msg] : prec->received) {
    if (msg.kind == MsgKind::kEcho) fakes.push_back(msg.subject);
  }
  EXPECT_EQ(fakes, (std::vector<NodeId>{900, 901}));
}

TEST(Adversary, NoiseIsDeterministicPerSeed) {
  auto run_once = [] {
    SyncSimulator sim;
    auto rec = std::make_unique<Recorder>(1);
    auto* prec = rec.get();
    sim.add_process(std::move(rec));
    AdversaryContext context{{1, 2}, {1}};
    sim.add_process(std::make_unique<RandomNoiseAdversary>(2, context, Rng(99)));
    sim.run_rounds(6);
    return prec->received.size();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Adversary, ExtremeSendsOppositeExtremesToHalves) {
  SyncSimulator sim;
  auto rec_lo = std::make_unique<Recorder>(1);
  auto rec_hi = std::make_unique<Recorder>(2);
  auto* plo = rec_lo.get();
  auto* phi = rec_hi.get();
  sim.add_process(std::move(rec_lo));
  sim.add_process(std::move(rec_hi));
  AdversaryContext context{{1, 2, 3}, {1, 2}};
  sim.add_process(std::make_unique<ExtremeValueAdversary>(3, context, -9.0, 9.0));
  sim.run_rounds(2);
  ASSERT_FALSE(plo->received.empty());
  ASSERT_FALSE(phi->received.empty());
  EXPECT_EQ(plo->received[0].second.value, Value::real(-9.0));
  EXPECT_EQ(phi->received[0].second.value, Value::real(9.0));
}

}  // namespace
}  // namespace idonly
