// Fuzz subsystem: generator determinism (one seed ⇒ one byte-identical
// scenario AND one canonical trace, for every thread count), campaign
// determinism across worker-pool sizes, delta-debugging minimization of a
// deliberately injected boundary violation, and the bounded-termination
// (liveness) probe — including the E10 n = 3f repro the probe exists for.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/invariants.hpp"
#include "common/trace.hpp"
#include "common/value.hpp"
#include "fuzz/campaign.hpp"
#include "fuzz/generator.hpp"
#include "fuzz/minimizer.hpp"
#include "fuzz/scn_writer.hpp"
#include "harness/script.hpp"

namespace idonly {
namespace {

// ------------------------------------------------- generator determinism --

TEST(GeneratorDeterminism, SameSeedYieldsByteIdenticalScenarios) {
  const ScenarioGenerator generator;
  for (std::uint64_t seed : {1ull, 7ull, 1854ull}) {
    const GeneratedScenario a = generator.generate(seed);
    const GeneratedScenario b = ScenarioGenerator().generate(seed);
    EXPECT_EQ(a.text, b.text) << "seed " << seed;
    EXPECT_EQ(a.script, b.script);
    EXPECT_EQ(a.past_boundary, b.past_boundary);
  }
  EXPECT_NE(generator.generate(1).text, generator.generate(2).text);
}

TEST(GeneratorDeterminism, EveryGeneratedScenarioRoundTripsAndStaysResilient) {
  const ScenarioGenerator generator;
  bool saw_totalorder = false;
  bool saw_chaos = false;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const GeneratedScenario scenario = generator.generate(seed);
    SCOPED_TRACE("seed " + std::to_string(seed));
    EXPECT_TRUE(round_trips(scenario.script));
    EXPECT_FALSE(scenario.past_boundary)
        << "past_boundary_probability defaults to 0";
    const std::size_t n =
        scenario.script.config.n_correct + scenario.script.config.n_byzantine;
    EXPECT_GT(n, 3 * scenario.script.config.n_byzantine);
    saw_totalorder = saw_totalorder || scenario.script.protocol == ScriptProtocol::kTotalOrder;
    saw_chaos = saw_chaos || !scenario.script.chaos_phases.empty();
  }
  EXPECT_TRUE(saw_totalorder) << "50 seeds should cover both protocols";
  EXPECT_TRUE(saw_chaos);
}

TEST(GeneratorDeterminism, PastBoundaryModePinsNAtExactlyThreeF) {
  GeneratorOptions options;
  options.past_boundary_probability = 1.0;
  const ScenarioGenerator generator(options);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const GeneratedScenario scenario = generator.generate(seed);
    ASSERT_TRUE(scenario.past_boundary);
    const std::size_t f = scenario.script.config.n_byzantine;
    ASSERT_GT(f, 0u);
    EXPECT_EQ(scenario.script.config.n_correct + f, 3 * f) << "seed " << seed;
  }
}

// One generated scenario, one canonical trace: the trace must be
// byte-identical across engine worker counts — the property the repro
// bundles' threads-1-vs-2 diff guards in production.
TEST(GeneratorDeterminism, CanonicalTraceIsByteIdenticalAcrossThreadCounts) {
  const ScenarioGenerator generator;
  // Deterministically pick the first seed whose scenario has chaos (so the
  // canonical trace — link verdicts — is non-empty).
  ScenarioScript script;
  for (std::uint64_t seed = 1;; ++seed) {
    ASSERT_LE(seed, 50u) << "no chaos scenario in the first 50 seeds?";
    const GeneratedScenario scenario = generator.generate(seed);
    if (!scenario.script.chaos_phases.empty()) {
      script = scenario.script;
      break;
    }
  }

  auto traced_run = [&script](unsigned threads) {
    ScriptOptions options;
    options.recorder = std::make_shared<TraceRecorder>(TraceEngine::kSync);
    options.threads = threads;
    (void)run_script(script, options);
    return options.recorder->canonical_jsonl();
  };
  const std::string trace1 = traced_run(1);
  EXPECT_FALSE(trace1.empty());
  EXPECT_EQ(trace1, traced_run(2));
  EXPECT_EQ(trace1, traced_run(8));
}

// -------------------------------------------------- campaign determinism --

TEST(CampaignDeterminism, ReportIsIdenticalForEveryJobsValue) {
  CampaignOptions options;
  options.scenarios = 30;
  options.base_seed = 7;
  options.minimize = false;
  // Past-boundary probes exercise the failure path without going red.
  options.generator.past_boundary_probability = 0.3;

  options.jobs = 1;
  const CampaignReport serial = CampaignRunner(options).run();
  options.jobs = 4;
  const CampaignReport parallel = CampaignRunner(options).run();

  EXPECT_EQ(serial.ok, parallel.ok);
  EXPECT_EQ(serial.summary(), parallel.summary());
  ASSERT_EQ(serial.failures.size(), parallel.failures.size());
  for (std::size_t i = 0; i < serial.failures.size(); ++i) {
    EXPECT_EQ(serial.failures[i].seed, parallel.failures[i].seed);
    EXPECT_EQ(serial.failures[i].scenario_text, parallel.failures[i].scenario_text);
    EXPECT_EQ(serial.failures[i].first_violation, parallel.failures[i].first_violation);
  }
  EXPECT_EQ(serial.counters.scenarios, 30u);
  EXPECT_GT(serial.counters.boundary_probes, 0u)
      << "30 draws at p=0.3 must include boundary probes";
  EXPECT_EQ(serial.counters.boundary_probes, parallel.counters.boundary_probes);
  EXPECT_EQ(serial.counters.boundary_violations, parallel.counters.boundary_violations);
}

TEST(CampaignDeterminism, ResilientCampaignSliceStaysGreen) {
  // A slice of the CI campaign: all-resilient scenarios must produce zero
  // failures (the 2000-seed sweep runs in the CI fuzz job; this is tier-1's
  // canary against generator-envelope regressions).
  CampaignOptions options;
  options.scenarios = 25;
  options.base_seed = 1;
  options.minimize = false;
  const CampaignReport report = CampaignRunner(options).run();
  EXPECT_TRUE(report.ok) << report.summary();
  EXPECT_EQ(report.counters.violations, 0u);
  EXPECT_EQ(report.counters.passed, 25u);
}

// ------------------------------------------------------------ minimizer --

// Deliberate bug injection at the resilience wall: n = 3f (4 correct + 2
// echochamber) with an early partition — the id-only failure mode where the
// cut side locks a smaller membership — padded with inert later chaos
// phases. The minimizer must strip the padding while preserving the
// agreement-violation signature.
const char* kInjectedBoundaryViolation =
    "protocol consensus\n"
    "nodes 4\n"
    "byzantine 2 echochamber\n"
    "inputs 0,1\n"
    "seed 7\n"
    "max-rounds 400\n"
    "liveness 400\n"
    "chaos 4-6 partition=0-1\n"
    "chaos 7-9 drop=0.10\n"
    "chaos 12-14 corrupt=0.1 dup=0.2\n"
    "chaos 18-20 dup=0.15\n"
    "expect termination\n"
    "expect agreement\n"
    "expect no-violations\n";

TEST(Minimizer, ShrinksInjectedBoundaryViolationToTinyRepro) {
  const auto parsed = parse_script(kInjectedBoundaryViolation);
  ASSERT_TRUE(std::holds_alternative<ScenarioScript>(parsed));
  const ScenarioScript& script = std::get<ScenarioScript>(parsed);

  const ScriptRun baseline = run_script(script);
  ASSERT_FALSE(baseline.violations.empty()) << "fixture must actually violate";
  ASSERT_EQ(classify_failure(baseline).invariant, "agreement");

  const MinimizeResult result = ScenarioMinimizer().minimize(script);
  EXPECT_EQ(result.signature.cls, FailureClass::kViolation);
  EXPECT_EQ(result.signature.invariant, "agreement");
  EXPECT_GT(result.improvements, 0u);

  // The acceptance bar: a minimized boundary repro fits in one glance.
  EXPECT_LE(result.script.config.n_correct + result.script.config.n_byzantine, 8u);
  EXPECT_LE(result.script.chaos_phases.size(), 2u);

  // The artifact is a standalone repro: its text reparses to the minimized
  // script and re-running it reproduces the same failure.
  const auto reparsed = parse_script(result.text);
  ASSERT_TRUE(std::holds_alternative<ScenarioScript>(reparsed));
  EXPECT_EQ(std::get<ScenarioScript>(reparsed), result.script);
  const ScriptRun rerun = run_script(result.script);
  EXPECT_EQ(classify_failure(rerun), result.signature);
}

TEST(Minimizer, RejectsAPassingScript) {
  ScenarioScript script;
  script.config.n_correct = 4;
  script.config.seed = 3;
  script.max_rounds = 50;
  script.expectations = {Expectation::kTermination, Expectation::kAgreement};
  EXPECT_THROW((void)ScenarioMinimizer().minimize(script), std::invalid_argument);
}

TEST(Minimizer, ClassifiesViolationFamiliesByPhrasing) {
  ScriptRun run;
  run.violations = {"liveness: only 0 of 1 required node(s) decided within 40 rounds"};
  EXPECT_EQ(classify_failure(run).invariant, "liveness");
  run.violations = {"node 9's chain is not a prefix of the longest chain"};
  EXPECT_EQ(classify_failure(run).invariant, "chain");
  run.violations = {"node 9 decided 7 which is no correct node's input"};
  EXPECT_EQ(classify_failure(run).invariant, "validity");
  run.violations = {"node 9 decided 1 but node 3 decided 0"};
  EXPECT_EQ(classify_failure(run).invariant, "agreement");
  run.violations.clear();
  run.all_satisfied = false;
  EXPECT_EQ(classify_failure(run).cls, FailureClass::kExpectationFailure);
  run.all_satisfied = true;
  EXPECT_EQ(classify_failure(run).cls, FailureClass::kNone);
}

// ------------------------------------------------------- liveness probe --

ProtocolEvent decided(NodeId node, double value) {
  ProtocolEvent event;
  event.type = ProtocolEvent::Type::kDecided;
  event.node = node;
  event.round = 5;
  event.value = Value::real(value);
  return event;
}

TEST(LivenessProbe, FiresOnlyWhenTheBudgetElapsesWithTooFewDeciders) {
  InvariantMonitor monitor;
  monitor.set_termination_probe(/*budget=*/40, /*min_deciders=*/2);
  monitor.on_event(decided(1, 0.0));

  monitor.finish(/*rounds_executed=*/39);
  EXPECT_TRUE(monitor.termination_ok()) << "budget not yet exhausted";

  monitor.finish(/*rounds_executed=*/40);
  EXPECT_FALSE(monitor.termination_ok());
  ASSERT_EQ(monitor.violations().size(), 1u);
  EXPECT_EQ(monitor.violations().front(),
            "liveness: only 1 of 2 required node(s) decided within 40 rounds");

  // finish() is idempotent: the second decider clears the verdict.
  monitor.on_event(decided(2, 0.0));
  monitor.finish(40);
  EXPECT_TRUE(monitor.termination_ok());
  EXPECT_TRUE(monitor.violations().empty());
}

TEST(LivenessProbe, DisarmedProbeNeverFires) {
  InvariantMonitor monitor;
  monitor.finish(10'000);
  EXPECT_TRUE(monitor.termination_ok());
  monitor.set_termination_probe(50);
  monitor.set_termination_probe(0);  // disarm again
  monitor.finish(10'000);
  EXPECT_TRUE(monitor.ok());
}

// The E10 repro: at n = 3f the early partition lets the cut side decide
// alone — safety, not liveness, is what breaks first, and the probe's job is
// to make sure a script at the wall cannot silently neither-decide-nor-fail.
TEST(LivenessProbe, BoundaryReproFailsLoudlyNotSilently) {
  const char* text =
      "protocol consensus\n"
      "nodes 4\n"
      "byzantine 2 echochamber\n"
      "inputs 0,1\n"
      "seed 7\n"
      "max-rounds 400\n"
      "liveness 400\n"
      "chaos 4-6 partition=0-1\n"
      "chaos 7-9 drop=0.10\n"
      "expect termination\n";
  const auto parsed = parse_script(text);
  ASSERT_TRUE(std::holds_alternative<ScenarioScript>(parsed));
  const ScriptRun run = run_script(std::get<ScenarioScript>(parsed));
  ASSERT_FALSE(run.violations.empty())
      << "the n = 3f partition repro must surface a violation";
  EXPECT_EQ(classify_failure(run).invariant, "agreement");
}

}  // namespace
}  // namespace idonly
