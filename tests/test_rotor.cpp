// Rotor-coordinator (Alg. 2): Theorem 2 — every correct node terminates in
// O(n) rounds and a good round (common, correct coordinator) is witnessed
// before termination, with the opinion accepted the round after.
#include <gtest/gtest.h>

#include <tuple>

#include "common/thresholds.hpp"
#include "core/rotor_coordinator.hpp"
#include "harness/runner.hpp"

namespace idonly {
namespace {

ScenarioConfig config_for(std::size_t n_correct, std::size_t n_byz, AdversaryKind adversary,
                          std::uint64_t seed) {
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = n_byz;
  config.adversary = adversary;
  config.seed = seed;
  return config;
}

TEST(RotorCore, Round1EmitsInit) {
  RotorCore core(5);
  std::vector<Message> out;
  core.round1(out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, MsgKind::kInit);
}

TEST(RotorCore, Round2EchoesEveryInitSender) {
  RotorCore core(5);
  std::vector<Message> inbox;
  for (NodeId id : {7u, 9u, 11u}) {
    Message m;
    m.sender = id;
    m.kind = MsgKind::kInit;
    inbox.push_back(m);
  }
  std::vector<Message> out;
  core.round2(inbox, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].kind, MsgKind::kEcho);
  EXPECT_EQ(out[0].subject, 7u);
  EXPECT_EQ(out[2].subject, 11u);
}

TEST(RotorCore, CandidateAcceptedAtTwoThirdsAndSelectedInIdOrder) {
  RotorCore core(1);
  // Echoes for candidate 50 from 3 of 4 participants → 2/3 quorum.
  std::vector<Message> inbox;
  for (NodeId sender : {1u, 2u, 3u}) {
    Message m;
    m.sender = sender;
    m.kind = MsgKind::kEcho;
    m.subject = 50;
    inbox.push_back(m);
    Message m2 = m;
    m2.subject = 40;
    inbox.push_back(m2);
  }
  core.absorb(inbox);
  auto result = core.step(/*n_v=*/4, /*r=*/0);
  ASSERT_TRUE(result.coordinator.has_value());
  EXPECT_EQ(*result.coordinator, 40u) << "C_v is ordered by id; r=0 selects the smallest";
  EXPECT_FALSE(result.repeated);
  auto result2 = core.step(4, 1);
  EXPECT_EQ(*result2.coordinator, 50u);
  auto result3 = core.step(4, 2);
  EXPECT_TRUE(result3.repeated) << "r=2 wraps to C_v[0], already selected";
}

TEST(RotorCore, BelowOneThirdNeitherRelayedNorAccepted) {
  RotorCore core(1);
  Message m;
  m.sender = 9;
  m.kind = MsgKind::kEcho;
  m.subject = 50;
  std::vector<Message> inbox{m};
  core.absorb(inbox);
  auto result = core.step(/*n_v=*/8, /*r=*/0);
  EXPECT_TRUE(result.relay.empty());
  EXPECT_FALSE(result.coordinator.has_value());
}

TEST(RotorCore, OneThirdTriggersRelayOnly) {
  RotorCore core(1);
  std::vector<Message> inbox;
  for (NodeId sender : {1u, 2u}) {
    Message m;
    m.sender = sender;
    m.kind = MsgKind::kEcho;
    m.subject = 50;
    inbox.push_back(m);
  }
  core.absorb(inbox);
  auto result = core.step(/*n_v=*/6, /*r=*/0);  // 2 >= 6/3, 2 < 4
  ASSERT_EQ(result.relay.size(), 1u);
  EXPECT_EQ(result.relay[0].subject, 50u);
  EXPECT_TRUE(core.candidates().empty());
}

TEST(RotorCore, EmptyCandidateSetSelectsNobody) {
  RotorCore core(1);
  auto result = core.step(4, 0);
  EXPECT_FALSE(result.coordinator.has_value());
  EXPECT_FALSE(result.repeated);
}

TEST(Rotor, AllCorrectTerminateWithGoodRound) {
  const auto run = run_rotor(config_for(7, 0, AdversaryKind::kNone, 1));
  EXPECT_TRUE(run.all_terminated);
  EXPECT_TRUE(run.good_round_witnessed);
  EXPECT_TRUE(run.good_opinion_accepted);
  ASSERT_TRUE(run.first_good_round.has_value());
  EXPECT_EQ(*run.first_good_round, 0) << "with no faults the first selection is already good";
}

TEST(Rotor, TerminatesWithinLinearRounds) {
  for (std::size_t n_correct : {4u, 7u, 13u}) {
    const auto run = run_rotor(config_for(n_correct, 0, AdversaryKind::kNone, 2));
    EXPECT_TRUE(run.all_terminated);
    // Theorem 2: at most n selections; +2 init rounds +1 repeat round slack.
    EXPECT_LE(run.max_termination_round, static_cast<Round>(n_correct) + 4) << n_correct;
  }
}

using RotorSweepParam =
    std::tuple<std::size_t, std::size_t, AdversaryKind, std::uint64_t>;

class RotorSweep : public ::testing::TestWithParam<RotorSweepParam> {};

TEST_P(RotorSweep, Theorem2Holds) {
  const auto [n_correct, n_byz, adversary, seed] = GetParam();
  if (!resilient(n_correct + n_byz, n_byz)) GTEST_SKIP() << "n <= 3f not in scope";
  const auto run = run_rotor(config_for(n_correct, n_byz, adversary, seed));
  EXPECT_TRUE(run.all_terminated);
  EXPECT_TRUE(run.good_round_witnessed);
  EXPECT_TRUE(run.good_opinion_accepted);
  // O(n) termination: |C_v| ≤ n and at most f late candidate insertions can
  // postpone the wrap-around, so 2n+6 is a safe linear envelope.
  EXPECT_LE(run.max_termination_round, 2 * static_cast<Round>(n_correct + n_byz) + 6);
}

INSTANTIATE_TEST_SUITE_P(
    Adversaries, RotorSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 7, 10),
                       ::testing::Values<std::size_t>(1, 2),
                       ::testing::Values(AdversaryKind::kSilent, AdversaryKind::kNoise,
                                         AdversaryKind::kRotorStuffer, AdversaryKind::kTwoFaced,
                                         AdversaryKind::kCrash),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

TEST(Rotor, StufferCannotInjectFakeCandidates) {
  // Fake ids echoed only by the f stuffers can never reach n_v/3 at a
  // correct node (Lemma 2), so candidate sets stay within real ids. We
  // verify via the run still terminating promptly and good round holding.
  const auto run = run_rotor(config_for(7, 2, AdversaryKind::kRotorStuffer, 4));
  EXPECT_TRUE(run.all_terminated);
  EXPECT_TRUE(run.good_round_witnessed);
  EXPECT_LE(run.max_termination_round, 9 + 4);
}

}  // namespace
}  // namespace idonly
