// Long-horizon soak tests: hundreds of protocol rounds with continuous
// traffic and periodic churn — resource bounds (instance GC), chain
// integrity, and state-machine stability over time.
#include <gtest/gtest.h>

#include <memory>

#include "adversary/strategies.hpp"
#include "app/replicated_kv.hpp"
#include "common/rng.hpp"
#include "core/total_order.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

TEST(Soak, LedgerTwoHundredRoundsWithChurnAndNoise) {
  SyncSimulator sim;
  std::vector<NodeId> members{11, 22, 33, 44, 55, 66, 77};
  for (NodeId id : members) {
    sim.add_process(std::make_unique<TotalOrderProcess>(id, /*founder=*/true));
  }
  AdversaryContext context{members, members};
  sim.add_process(std::make_unique<RandomNoiseAdversary>(901, context, Rng(17)));
  sim.add_process(std::make_unique<SilentAdversary>(902));
  sim.run_rounds(3);
  auto node = [&sim](NodeId id) { return sim.get<TotalOrderProcess>(id); };

  Rng rng(99);
  NodeId next_joiner = 1000;
  int events = 0;
  std::vector<NodeId> stable = members;  // the five founders we never remove
  stable.resize(5);
  std::vector<NodeId> revolving{66, 77};
  for (int round = 0; round < 200; ++round) {
    // Continuous traffic from stable members.
    if (round % 2 == 0) {
      node(stable[rng.below(stable.size())])->submit_event(static_cast<double>(events++));
    }
    // Periodic churn on the revolving seats.
    if (round % 40 == 20 && !revolving.empty()) {
      if (auto* leaver = node(revolving.front()); leaver != nullptr) leaver->request_leave();
      revolving.erase(revolving.begin());
    }
    if (round % 40 == 35) {
      sim.add_process(std::make_unique<TotalOrderProcess>(++next_joiner, /*founder=*/false));
      revolving.push_back(next_joiner);
    }
    sim.step();
  }
  sim.run_rounds(60);  // drain

  // Chain grew with the traffic and stayed prefix-consistent.
  const auto& reference = node(stable[0])->chain();
  EXPECT_GT(reference.size(), 80u);
  for (NodeId id : stable) {
    const auto& chain = node(id)->chain();
    const std::size_t k = std::min(chain.size(), reference.size());
    for (std::size_t e = 0; e < k; ++e) {
      ASSERT_EQ(chain[e], reference[e]) << "divergence at " << e << " node " << id;
    }
    // Instance GC held: retained machines bounded by the finality lag.
    EXPECT_LE(node(id)->retained_machines(), 30u) << id;
  }
  // Events from stable members are strictly ordered by submission index.
  int last_seen = -1;
  for (const auto& entry : reference) {
    if (entry.event < 100000.0) {
      EXPECT_GT(static_cast<int>(entry.event), last_seen - 200) << "sanity";
      last_seen = static_cast<int>(entry.event);
    }
  }
}

TEST(Soak, ReplicatedKvHundredsOfWrites) {
  SyncSimulator sim;
  const std::vector<NodeId> replicas{10, 20, 30, 40, 50};
  for (NodeId id : replicas) {
    sim.add_process(std::make_unique<ReplicatedKvProcess>(id, /*founder=*/true));
  }
  sim.run_rounds(3);
  auto node = [&sim](NodeId id) { return sim.get<ReplicatedKvProcess>(id); };

  Rng rng(5);
  const int kWrites = 150;
  for (int i = 0; i < kWrites; ++i) {
    const NodeId writer = replicas[rng.below(replicas.size())];
    node(writer)->submit_set(static_cast<std::uint32_t>(rng.below(16)),
                             static_cast<std::uint32_t>(i));
    sim.step();
  }
  sim.run_rounds(50);

  const auto& reference = node(10)->store();
  for (NodeId id : replicas) {
    EXPECT_EQ(node(id)->version(), static_cast<std::size_t>(kWrites)) << id;
    EXPECT_EQ(node(id)->store(), reference) << id;
  }
  // Every key's final value is the LAST write to it in chain order.
  std::map<std::uint32_t, std::uint32_t> replay;
  for (const auto& entry : node(10)->ordering().chain()) {
    const KvOp op = decode_op(entry.event);
    replay[op.key] = op.value;
  }
  EXPECT_EQ(replay, reference);
}

}  // namespace
}  // namespace idonly
