// §Synchrony is Necessary: the partition constructions must produce
// disagreement exactly when the lemmas say they can — and synchrony-like
// configurations must stay safe.
#include <gtest/gtest.h>

#include "impossibility/async_partition.hpp"

namespace idonly {
namespace {

TEST(Impossibility, AsyncPartitionForcesDisagreement) {
  // Lemma (asynchronous): cross traffic delayed past both sides' decisions →
  // A decides 1, B decides 0.
  PartitionConfig config;
  config.cross_delay = 1000.0;
  config.decide_timeout = 10.0;
  const auto result = run_partition_execution(config);
  EXPECT_TRUE(result.all_decided);
  EXPECT_TRUE(result.disagreement);
  for (double d : result.decisions_a) EXPECT_DOUBLE_EQ(d, 1.0);
  for (double d : result.decisions_b) EXPECT_DOUBLE_EQ(d, 0.0);
}

TEST(Impossibility, FastCrossTrafficPreservesAgreement) {
  // When the timeout dominates the true delay bound (a de-facto synchronous
  // configuration) everyone hears everyone and decides identically.
  PartitionConfig config;
  config.cross_delay = 2.0;
  config.intra_delay = 1.0;
  config.decide_timeout = 10.0;
  config.n_a = 5;
  config.n_b = 4;  // majority exists → common majority decision
  const auto result = run_partition_execution(config);
  EXPECT_TRUE(result.all_decided);
  EXPECT_FALSE(result.disagreement);
}

TEST(Impossibility, DisagreementIsDelayTimeoutRace) {
  // Sweep the cross delay through the timeout: disagreement appears exactly
  // when cross_delay > timeout (decisions happen before cross arrivals).
  PartitionConfig config;
  config.decide_timeout = 10.0;
  config.n_a = 4;
  config.n_b = 3;
  for (double cross : {1.0, 5.0, 9.0}) {
    config.cross_delay = cross;
    EXPECT_FALSE(run_partition_execution(config).disagreement) << cross;
  }
  for (double cross : {11.0, 50.0, 1000.0}) {
    config.cross_delay = cross;
    EXPECT_TRUE(run_partition_execution(config).disagreement) << cross;
  }
}

TEST(Impossibility, SemiSyncRateHighWhenDeltaExceedsTimeout) {
  // Semi-synchronous lemma: Δ unknown to the nodes. Against Δ = 10·T the
  // adversary (near-bound cross delays) wins essentially always.
  const double rate = semi_sync_disagreement_rate(4, 4, /*delta=*/100.0, /*timeout=*/10.0,
                                                  /*trials=*/50, /*seed=*/1);
  EXPECT_GT(rate, 0.9);
}

TEST(Impossibility, SemiSyncRateZeroWhenTimeoutCoversDelta) {
  const double rate = semi_sync_disagreement_rate(4, 4, /*delta=*/5.0, /*timeout=*/10.0,
                                                  /*trials=*/50, /*seed=*/2);
  EXPECT_DOUBLE_EQ(rate, 0.0);
}

TEST(Impossibility, RateMonotoneInDelta) {
  // The sharp transition the lemma predicts: rate is (weakly) increasing in
  // Δ/T across the boundary.
  double prev = -1.0;
  for (double delta : {2.0, 8.0, 12.0, 40.0, 200.0}) {
    const double rate =
        semi_sync_disagreement_rate(4, 4, delta, /*timeout=*/10.0, /*trials=*/40, /*seed=*/3);
    EXPECT_GE(rate + 0.15, prev) << "delta=" << delta;  // slack for sampling noise
    prev = rate;
  }
}

}  // namespace
}  // namespace idonly
