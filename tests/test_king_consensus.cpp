// Rotor-based king consensus (the paper draft's original construction):
// agreement + validity with O(n)-round termination, and the ablation
// contrast with Alg. 3's early termination.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "common/thresholds.hpp"
#include "core/king_consensus.hpp"
#include "harness/scenario.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

struct KingRun {
  bool all_done = false;
  std::vector<Value> outputs;
  bool agreement = false;
  bool validity = false;
  Round rounds = 0;
};

KingRun run_king(std::size_t n_correct, std::size_t n_byz, AdversaryKind adversary,
                 std::uint64_t seed, const std::vector<double>& inputs,
                 Round max_rounds = 2000) {
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = n_byz;
  config.adversary = adversary;
  config.seed = seed;
  const Scenario scenario = make_scenario(config);
  SyncSimulator sim;
  auto factory = [&](NodeId id, std::size_t index) -> std::unique_ptr<Process> {
    const double input = index < n_correct ? inputs[index % inputs.size()]
                                           : static_cast<double>(index % 2);
    return std::make_unique<KingConsensusProcess>(id, Value::real(input));
  };
  populate(sim, scenario, factory);
  KingRun run;
  run.all_done = sim.run_until_all_correct_done(max_rounds);
  run.rounds = sim.round();
  for (NodeId id : scenario.correct_ids) {
    auto* p = sim.get<KingConsensusProcess>(id);
    if (p != nullptr && p->output().has_value()) run.outputs.push_back(*p->output());
  }
  run.agreement = run.outputs.size() == n_correct &&
                  std::all_of(run.outputs.begin(), run.outputs.end(),
                              [&](const Value& v) { return v == run.outputs.front(); });
  if (run.agreement) {
    for (std::size_t i = 0; i < n_correct; ++i) {
      if (Value::real(inputs[i % inputs.size()]) == run.outputs.front()) run.validity = true;
    }
  }
  return run;
}

TEST(KingConsensus, UnanimousInputsPreserved) {
  const auto run = run_king(7, 2, AdversaryKind::kSilent, 1, {3.0});
  EXPECT_TRUE(run.all_done);
  EXPECT_TRUE(run.agreement);
  ASSERT_FALSE(run.outputs.empty());
  EXPECT_EQ(run.outputs.front(), Value::real(3.0));
}

TEST(KingConsensus, MixedInputsAgree) {
  const auto run = run_king(7, 2, AdversaryKind::kTwoFaced, 2, {0.0, 1.0});
  EXPECT_TRUE(run.all_done);
  EXPECT_TRUE(run.agreement);
  EXPECT_TRUE(run.validity);
}

TEST(KingConsensus, TerminatesWithinLinearRounds) {
  const auto run = run_king(10, 3, AdversaryKind::kVoteSplit, 3, {0.0, 1.0});
  EXPECT_TRUE(run.all_done);
  // Rotor terminates within ~2n selections; 5 rounds per phase + 2 init.
  EXPECT_LE(run.rounds, 5 * (2 * 13 + 6) + 2);
}

using KingSweepParam = std::tuple<std::size_t, std::size_t, AdversaryKind, std::uint64_t>;
class KingSweep : public ::testing::TestWithParam<KingSweepParam> {};

TEST_P(KingSweep, AgreementValidity) {
  const auto [n_correct, n_byz, adversary, seed] = GetParam();
  if (!resilient(n_correct + n_byz, n_byz)) GTEST_SKIP();
  const auto run = run_king(n_correct, n_byz, adversary, seed, {0.0, 1.0, 1.0});
  EXPECT_TRUE(run.all_done);
  EXPECT_TRUE(run.agreement);
  EXPECT_TRUE(run.validity);
}

INSTANTIATE_TEST_SUITE_P(
    Adversaries, KingSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 7, 10),
                       ::testing::Values<std::size_t>(1, 2),
                       ::testing::Values(AdversaryKind::kSilent, AdversaryKind::kNoise,
                                         AdversaryKind::kTwoFaced, AdversaryKind::kEchoChamber,
                                         AdversaryKind::kReplay),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(KingConsensus, SlowerThanEarlyTerminatingOnUnanimousInputs) {
  // The ablation behind Alg. 3's design: early termination decides a
  // unanimous instance in one phase; the king variant always runs the full
  // rotor schedule.
  const auto king = run_king(7, 2, AdversaryKind::kSilent, 4, {5.0});
  ScenarioConfig config;
  config.n_correct = 7;
  config.n_byzantine = 2;
  config.adversary = AdversaryKind::kSilent;
  config.seed = 4;
  // Compare simulated rounds until everyone decided.
  const Scenario scenario = make_scenario(config);
  SyncSimulator sim;
  auto factory = [&](NodeId id, std::size_t) -> std::unique_ptr<Process> {
    return std::make_unique<KingConsensusProcess>(id, Value::real(5.0));
  };
  populate(sim, scenario, factory);
  sim.run_until_all_correct_done(2000);
  EXPECT_GT(king.rounds, 7) << "king must outlast Alg. 3's single unanimous phase (7 rounds)";
}

}  // namespace
}  // namespace idonly
