// Reliable broadcast (Alg. 1): correctness, unforgeability, relay — swept
// over system sizes, adversary strategies, and seeds (Theorem 1).
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "check/explorer.hpp"
#include "common/thresholds.hpp"
#include "core/reliable_broadcast.hpp"
#include "harness/runner.hpp"
#include "net/sync_simulator.hpp"

namespace idonly {
namespace {

ScenarioConfig config_for(std::size_t n_correct, std::size_t n_byz, AdversaryKind adversary,
                          std::uint64_t seed) {
  ScenarioConfig config;
  config.n_correct = n_correct;
  config.n_byzantine = n_byz;
  config.adversary = adversary;
  config.seed = seed;
  return config;
}

TEST(ReliableBroadcast, CorrectSourceAcceptedByRoundThree) {
  // Lemma 1's proof shows acceptance already in round 3 when s is correct.
  const auto run = run_reliable_broadcast(config_for(7, 2, AdversaryKind::kSilent, 1), 42.0);
  EXPECT_EQ(run.accepted_count, 7u);
  EXPECT_TRUE(run.agreement);
  ASSERT_TRUE(run.first_accept_round.has_value());
  EXPECT_EQ(*run.first_accept_round, 3);
  EXPECT_EQ(*run.last_accept_round, 3);
}

TEST(ReliableBroadcast, WorksWithoutAnyByzantine) {
  const auto run = run_reliable_broadcast(config_for(4, 0, AdversaryKind::kNone, 3), 1.0);
  EXPECT_EQ(run.accepted_count, 4u);
  EXPECT_TRUE(run.agreement);
}

TEST(ReliableBroadcast, MinimalSystemFourNodesOneFault) {
  const auto run = run_reliable_broadcast(config_for(3, 1, AdversaryKind::kSilent, 7), 5.0);
  EXPECT_EQ(run.accepted_count, 3u);
  EXPECT_TRUE(run.agreement);
}

TEST(ReliableBroadcast, ForgedEchoNeverAccepted) {
  // The adversary floods echo(666, s*) for a payload the correct, designated
  // source never sent. Unforgeability: nothing but the real payload may be
  // accepted. The forged source here IS the broadcast source (the harness
  // picks correct_ids.front() for both), so acceptance of 666 would be a
  // direct unforgeability violation.
  const auto run = run_reliable_broadcast(config_for(7, 2, AdversaryKind::kForgedEcho, 11), 42.0);
  EXPECT_EQ(run.accepted_count, 7u);
  EXPECT_TRUE(run.agreement);
  EXPECT_TRUE(run.relay_ok);
}

TEST(ReliableBroadcast, SilentByzantineSourceAcceptsNothing) {
  // Unforgeability for a quiet source: no correct node ever accepts.
  const auto run =
      run_reliable_broadcast(config_for(7, 2, AdversaryKind::kSilent, 5), 0.0,
                             /*byzantine_source=*/true);
  EXPECT_EQ(run.accepted_count, 0u);
}

TEST(ReliableBroadcast, TwoFacedSourceCannotSplitAcceptance) {
  // A two-faced source sends payload a to one half and payload b to the
  // other. Relay + agreement: acceptors (if any) must agree on ONE payload
  // and accept within one round of each other.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto run = run_reliable_broadcast(config_for(7, 2, AdversaryKind::kTwoFaced, seed), 0.0,
                                            /*byzantine_source=*/true);
    EXPECT_TRUE(run.agreement) << "seed=" << seed;
    EXPECT_TRUE(run.relay_ok) << "seed=" << seed;
    EXPECT_TRUE(run.accepted_count == 0 || run.accepted_count == 7) << "seed=" << seed;
  }
}

// Property sweep: all three RB properties across sizes × adversaries × seeds.
using RbSweepParam = std::tuple<std::size_t /*n_correct*/, std::size_t /*n_byz*/, AdversaryKind,
                                std::uint64_t /*seed*/>;

class RbSweep : public ::testing::TestWithParam<RbSweepParam> {};

TEST_P(RbSweep, CorrectSourcePropertiesHold) {
  const auto [n_correct, n_byz, adversary, seed] = GetParam();
  if (!resilient(n_correct + n_byz, n_byz)) GTEST_SKIP() << "n <= 3f not in scope";
  const auto run =
      run_reliable_broadcast(config_for(n_correct, n_byz, adversary, seed), 3.25);
  // Correctness: every correct node accepts the payload.
  EXPECT_EQ(run.accepted_count, n_correct);
  EXPECT_TRUE(run.agreement);
  // Relay: acceptance rounds differ by at most one.
  EXPECT_TRUE(run.relay_ok);
}

TEST_P(RbSweep, ByzantineSourceCannotCauseDisagreement) {
  const auto [n_correct, n_byz, adversary, seed] = GetParam();
  if (n_byz == 0) GTEST_SKIP() << "needs a Byzantine source";
  if (!resilient(n_correct + n_byz, n_byz)) GTEST_SKIP() << "n <= 3f not in scope";
  const auto run = run_reliable_broadcast(config_for(n_correct, n_byz, adversary, seed), 0.0,
                                          /*byzantine_source=*/true);
  EXPECT_TRUE(run.agreement);
  EXPECT_TRUE(run.relay_ok);
  // All-or-nothing within one extra round is implied by relay_ok; at the
  // horizon, acceptance must not be a strict split that stopped relaying.
  if (run.accepted_count > 0) {
    EXPECT_EQ(run.accepted_count, n_correct);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RbSweep,
    ::testing::Combine(::testing::Values<std::size_t>(4, 7, 10, 16),
                       ::testing::Values<std::size_t>(1, 2),
                       ::testing::Values(AdversaryKind::kSilent, AdversaryKind::kNoise,
                                         AdversaryKind::kForgedEcho, AdversaryKind::kTwoFaced),
                       ::testing::Values<std::uint64_t>(1, 2, 3)));

INSTANTIATE_TEST_SUITE_P(
    MaxFaults, RbSweep,
    ::testing::Combine(::testing::Values<std::size_t>(9, 13),
                       ::testing::Values<std::size_t>(4),  // n = 13/17, f = 4 = max
                       ::testing::Values(AdversaryKind::kSilent, AdversaryKind::kNoise,
                                         AdversaryKind::kTwoFaced),
                       ::testing::Values<std::uint64_t>(1, 2)));

TEST(ReliableBroadcast, PartialPayloadTriggersRelayCascade) {
  // A Byzantine source unicasts the payload to exactly ⌈n_v/3⌉ nodes and
  // nothing else. Those nodes echo (round 2); their 3 echoes reach the
  // n_v/3 relay threshold at everyone (round 3), the full cascade of 7
  // echoes lands in round 4, and ALL correct nodes accept simultaneously —
  // the relay property exercised in its non-trivial multi-hop regime.
  SyncSimulator sim;
  const std::vector<NodeId> correct{10, 20, 30, 40, 50, 60, 70};
  const NodeId byz_source = 99;
  for (NodeId id : correct) {
    sim.add_process(std::make_unique<ReliableBroadcastProcess>(id, byz_source, Value::bot()));
  }
  Message payload;
  payload.kind = MsgKind::kPayload;
  payload.subject = byz_source;
  payload.value = Value::real(8.0);
  ByzSchedule schedule(1);
  schedule[0] = ByzAction{payload, {10, 20, 30}};  // 3 echoes ≥ n_v/3 everywhere
  sim.add_process(std::make_unique<ScriptedByzantine>(byz_source, schedule));
  sim.run_rounds(8);
  std::vector<Round> accept_rounds;
  for (NodeId id : correct) {
    const auto* p = sim.get<ReliableBroadcastProcess>(id);
    ASSERT_TRUE(p->accepted()) << id;
    EXPECT_EQ(*p->accepted_payload(), Value::real(8.0));
    accept_rounds.push_back(*p->accept_round());
  }
  for (Round r : accept_rounds) EXPECT_EQ(r, 4) << "relay cascade adds exactly one round";
}

TEST(ReliableBroadcast, PayloadBelowRelayThresholdNeverAccepted) {
  // Same attack with one fewer initial receiver: 2 echoes < n_v/3 of 8 —
  // the cascade never ignites and nobody accepts.
  SyncSimulator sim;
  const std::vector<NodeId> correct{10, 20, 30, 40, 50, 60, 70};
  const NodeId byz_source = 99;
  for (NodeId id : correct) {
    sim.add_process(std::make_unique<ReliableBroadcastProcess>(id, byz_source, Value::bot()));
  }
  Message payload;
  payload.kind = MsgKind::kPayload;
  payload.subject = byz_source;
  payload.value = Value::real(8.0);
  ByzSchedule schedule(1);
  schedule[0] = ByzAction{payload, {10, 20}};
  sim.add_process(std::make_unique<ScriptedByzantine>(byz_source, schedule));
  sim.run_rounds(12);
  for (NodeId id : correct) {
    EXPECT_FALSE(sim.get<ReliableBroadcastProcess>(id)->accepted()) << id;
  }
}

TEST(ReliableBroadcast, NodesStopEchoingAfterAcceptance) {
  // Protocol hygiene via the engine trace: once a node accepts, it must not
  // broadcast further echoes ("not accepted already" guard of Alg. 1).
  ScenarioConfig config = config_for(7, 0, AdversaryKind::kNone, 1);
  const Scenario scenario = make_scenario(config);
  SyncSimulator sim;
  sim.enable_trace();
  const NodeId source = scenario.correct_ids.front();
  auto factory = [&](NodeId id, std::size_t) -> std::unique_ptr<Process> {
    return std::make_unique<ReliableBroadcastProcess>(id, source, Value::real(1.0));
  };
  populate(sim, scenario, factory);
  sim.run_rounds(10);
  // Acceptance happens in local round 3; echoes are sent in rounds 2 and 3
  // (the round-3 echo precedes the accept check in pseudocode order).
  for (const auto& entry : sim.trace()) {
    if (entry.msg.kind == MsgKind::kEcho) {
      EXPECT_LE(entry.round, 3) << "echo after acceptance from " << entry.from;
    }
  }
}

TEST(ReliableBroadcast, NvGrowsOnlyWithDistinctSenders) {
  // Direct unit check on the process: n_v counts distinct ids cumulatively.
  ReliableBroadcastProcess p(/*self=*/1, /*source=*/2, Value::real(1.0));
  std::vector<Outgoing> out;
  Message from3;
  from3.sender = 3;
  from3.kind = MsgKind::kPresent;
  std::vector<Message> inbox{from3, from3};
  p.on_round(RoundInfo{1, 1}, inbox, out);
  EXPECT_EQ(p.n_v(), 1u);
  p.on_round(RoundInfo{2, 2}, inbox, out);
  EXPECT_EQ(p.n_v(), 1u) << "same sender again must not inflate n_v";
}

}  // namespace
}  // namespace idonly
